#!/usr/bin/env python
"""Beyond one link: the paper's comparison on a small network.

The paper analyses a single bottleneck; real reservation protocols
(RSVP and friends) are network-wide.  This example builds the classic
parking-lot topology — one long route crossing three links, with cross
traffic on each — and replays the comparison with max-min fair sharing
(the best-effort ideal) versus ILP admission control with unit
reservations.

Run:
    python examples/network_study.py
"""

import networkx as nx

from repro.loads import AlgebraicLoad, GeometricLoad
from repro.network import NetworkComparison, NetworkTopology
from repro.utility import AdaptiveUtility


def build_parking_lot(cross_load) -> NetworkTopology:
    graph = nx.path_graph(["a", "b", "c", "d"])
    nx.set_edge_attributes(graph, 40.0, "capacity")
    u = AdaptiveUtility()
    return NetworkTopology.from_graph(
        graph,
        paths={
            "long": ["a", "b", "c", "d"],
            "x1": ["a", "b"],
            "x2": ["b", "c"],
            "x3": ["c", "d"],
        },
        loads={
            "long": GeometricLoad.from_mean(12.0),
            "x1": cross_load,
            "x2": cross_load,
            "x3": cross_load,
        },
        utilities={name: u for name in ("long", "x1", "x2", "x3")},
    )


def study(label: str, cross_load) -> None:
    topo = build_parking_lot(cross_load)
    cmp = NetworkComparison(topo, draws=400, seed=17)
    be = cmp.best_effort()
    res = cmp.reservation()

    print(f"--- {label} cross traffic ---")
    print(f"{'route':>8} {'offered':>8} {'BE utility':>11} {'R utility':>10}")
    for name, route in topo.routes.items():
        print(
            f"{name:>8} {route.load.mean:8.1f} {be.per_route[name]:11.3f} "
            f"{res.per_route[name]:10.3f}"
        )
    print(
        f"network normalised: BE={be.normalised:.4f} R={res.normalised:.4f} "
        f"gap={res.normalised - be.normalised:+.4f}"
    )
    factor = cmp.bandwidth_gap_factor()
    print(
        f"uniform overbuild for best-effort parity: x{factor:.3f} "
        f"({100.0 * (factor - 1.0):.1f}% more capacity on every link)"
    )
    print(
        f"ILP-vs-greedy admission utility difference: "
        f"{cmp.admission_optimality_gap():+.4f}\n"
    )


def main() -> None:
    print("parking-lot network, 3 links x capacity 40, adaptive apps\n")
    study("geometric (light-tailed)", GeometricLoad.from_mean(25.0))
    study("algebraic z=2.5 (heavy-tailed)", AlgebraicLoad.from_mean(2.5, 25.0))
    print(
        "the single-link conclusion generalises: light-tailed cross "
        "traffic needs only a thin overbuild, heavy-tailed cross traffic "
        "keeps a material reservation advantage on every link."
    )


if __name__ == "__main__":
    main()
