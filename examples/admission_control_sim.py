#!/usr/bin/env python
"""Admission control, live: simulate what the paper's model predicts.

The paper's variable-load model is static — flows see one census
sample.  This example runs the dynamic flow-level simulator (exact
birth-death dynamics for a Poisson census) under both architectures,
measures per-flow utilities, and puts the analytic B(C)/R(C) next to
the simulated values.  It also scores flows at the worst of S census
samples, showing the Section 5.1 effect live.

Run:
    python examples/admission_control_sim.py
"""

from repro.loads import PoissonLoad
from repro.models import VariableLoadModel
from repro.simulation import (
    AdmitAll,
    BirthDeathProcess,
    FlowSimulator,
    Link,
    ThresholdAdmission,
    census_total_variation,
    empirical_mean_census,
    mean_utilities,
    sampled_worst_utilities,
)
from repro.utility import AdaptiveUtility


def main() -> None:
    load = PoissonLoad(50.0)
    utility = AdaptiveUtility()
    capacity = 52.0
    horizon, warmup = 800.0, 80.0

    model = VariableLoadModel(load, utility)
    process = BirthDeathProcess(load)

    print("flow-level simulation vs the static model")
    print(f"load: Poisson(mean={load.mean:.0f}); capacity C={capacity:.0f}; "
          f"k_max={model.k_max(capacity)}\n")

    def progress(events: int, t: float) -> None:
        print(f"  ... {events} events simulated, t={t:.0f}/{horizon:.0f}",
              flush=True)

    best_effort_run = FlowSimulator(process, Link(capacity), AdmitAll()).run(
        horizon, warmup=warmup, seed=7,
        progress=progress, progress_every=25_000,
    )
    reserved_run = FlowSimulator(
        process, Link(capacity), ThresholdAdmission.from_utility(utility)
    ).run(horizon, warmup=warmup, seed=8,
          progress=progress, progress_every=25_000)

    print(
        f"census check: simulated mean "
        f"{empirical_mean_census(best_effort_run):.2f} vs target {load.mean:.2f}; "
        f"TV distance {census_total_variation(best_effort_run, load):.4f}"
    )

    sim_be, _ = mean_utilities(best_effort_run, utility)
    _, sim_res = mean_utilities(reserved_run, utility)
    print("\nmean per-flow utility")
    print(f"{'architecture':>16} {'simulated':>10} {'analytic':>10}")
    print(f"{'best-effort':>16} {sim_be:10.4f} {model.best_effort(capacity):10.4f}")
    print(f"{'reservations':>16} {sim_res:10.4f} {model.reservation(capacity):10.4f}")

    print("\nworst-of-S scoring (Section 5.1, measured on the same runs)")
    print(f"{'S':>4} {'best-effort':>12} {'reservations':>13}")
    for samples in (1, 3, 10, 30):
        be, _ = sampled_worst_utilities(best_effort_run, utility, samples, seed=1)
        _, res = sampled_worst_utilities(reserved_run, utility, samples, seed=1)
        print(f"{samples:4d} {be:12.4f} {res:13.4f}")
    print(
        "\nbest-effort scores decay with S while admitted flows, whose "
        "census is capped at k_max, are partly insulated.  Under the "
        "tightly-peaked Poisson census the effect is mild — exactly the "
        "paper's Section 5.1 observation ('multiple samplings has little "
        "effect on the Poisson case'); rerun the analytic SamplingModel "
        "with the exponential or algebraic load to see it bite."
    )


if __name__ == "__main__":
    main()
