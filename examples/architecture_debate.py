#!/usr/bin/env python
"""The whole debate on one screen: all six cases, Section 6 verdicts.

Sweeps the paper's complete grid — three load distributions times two
utility classes — and prints, per case, the quantities the paper's
discussion section keys on: gap persistence, bandwidth-gap trend, and
the cheap-bandwidth limit of the equalizing ratio.  Ends with the
paper's (carefully hedged) conclusions, derived live from the numbers.

Run:
    python examples/architecture_debate.py
"""

import numpy as np

from repro.experiments.params import PaperConfig
from repro.models import ArchitectureComparison


def verdict(gamma_limit: float, gap_trend: str) -> str:
    if gamma_limit > 1.05 or gap_trend == "increasing":
        return "reservations keep a durable edge"
    if gamma_limit > 1.005:
        return "weak case for reservations"
    return "provisioning wins"


def main() -> None:
    config = PaperConfig(kbar=100.0)
    capacities = list(np.linspace(50.0, 800.0, 9))

    print("Best-Effort versus Reservations — the six cases (k_bar = 100)\n")
    header = (
        f"{'load':<12} {'utility':<9} {'delta(2k)':>10} {'Delta(2k)':>10} "
        f"{'Delta trend':>12} {'gamma(p->0)':>12}  verdict"
    )
    print(header)
    print("-" * len(header))

    results = {}
    for load_name in ("poisson", "exponential", "algebraic"):
        for util_name in ("rigid", "adaptive"):
            cmp = ArchitectureComparison(
                config.load(load_name), config.utility(util_name)
            )
            report = cmp.sweep(capacities)
            trend = report.bandwidth_gap_trend()
            delta2k = cmp.variable_load.performance_gap(200.0)
            gap2k = cmp.variable_load.bandwidth_gap(200.0)
            gamma = cmp.welfare.equalizing_ratio(0.005)
            results[(load_name, util_name)] = (delta2k, gap2k, trend, gamma)
            print(
                f"{load_name:<12} {util_name:<9} {delta2k:10.5f} {gap2k:10.2f} "
                f"{trend:>12} {gamma:12.4f}  {verdict(gamma, trend)}"
            )

    print("\nSection 6, recomputed:")
    print(
        "- rigid applications: significant gaps under every load, even "
        f"Poisson (gamma ~ {results[('poisson', 'rigid')][3]:.2f} — the "
        "paper's 'reservations worth ~10% extra cost')"
    )
    print(
        "- adaptivity changes the picture: Poisson and exponential gaps "
        f"collapse (gamma ~ {results[('exponential', 'adaptive')][3]:.3f})"
    )
    print(
        "- the algebraic (heavy-tailed) load is the holdout: the bandwidth "
        f"gap keeps growing ({results[('algebraic', 'adaptive')][2]}) and "
        f"gamma stays at {results[('algebraic', 'adaptive')][3]:.3f} > 1 "
        "no matter how cheap bandwidth gets"
    )
    print(
        "- so the answer turns on future load statistics — exactly the "
        "paper's closing point about self-similar traffic."
    )


if __name__ == "__main__":
    main()
