#!/usr/bin/env python
"""Provisioning planner: a provider's capacity decision, per the paper.

Section 4's welfare model answers the provider's actual question: given
the price of bandwidth, how much capacity should I build, under each
architecture — and is the reservation machinery worth its complexity?

This example sweeps bandwidth prices for a chosen load/utility pair,
prints the welfare-optimal capacities and welfares, and the equalizing
price ratio gamma(p) — the fraction of extra per-unit cost the
reservation architecture could carry and still win.

Run:
    python examples/provisioning_planner.py [poisson|exponential|algebraic]
"""

import sys

import numpy as np

from repro.experiments.params import PaperConfig
from repro.models import Architecture, VariableLoadModel, WelfareModel


def plan(load_name: str) -> None:
    config = PaperConfig(kbar=100.0)
    load = config.load(load_name)
    utility = config.utility("adaptive")
    model = VariableLoadModel(load, utility)
    welfare = WelfareModel(model)

    print(f"provisioning plan — {load_name} load, adaptive applications")
    print(f"mean offered load: {load.mean:.0f} flows\n")
    print(
        f"{'price':>8} {'C_best_effort':>14} {'C_reservation':>14} "
        f"{'W_B':>8} {'W_R':>8} {'gamma':>7}"
    )
    for price in (0.2, 0.1, 0.05, 0.02, 0.01, 0.005):
        cb = welfare.optimal_capacity(price, Architecture.BEST_EFFORT)
        cr = welfare.optimal_capacity(price, Architecture.RESERVATION)
        wb = welfare.welfare_best_effort(price)
        wr = welfare.welfare_reservation(price)
        gamma = welfare.equalizing_ratio(price)
        print(
            f"{price:8.3f} {cb:14.1f} {cr:14.1f} {wb:8.2f} {wr:8.2f} {gamma:7.4f}"
        )

    # the whole gamma curve via the fast envelope sweep
    prices = np.geomspace(0.003, 0.2, 10)
    curve = welfare.ratio_curve(prices)
    print("\nequalizing price ratio gamma(p) (envelope sweep):")
    for p, g in zip(curve["price"], curve["gamma"]):
        bar = "#" * int(round((g - 1.0) * 200.0)) if np.isfinite(g) else ""
        print(f"  p={p:7.4f}  gamma={g:7.4f}  {bar}")

    tail = curve["gamma"][np.isfinite(curve["gamma"])]
    if len(tail) and tail[0] > 1.02:
        print(
            "\ncheap-bandwidth verdict: gamma stays above 1 — reservations "
            "keep a durable edge under this load (heavy tails)"
        )
    else:
        print(
            "\ncheap-bandwidth verdict: gamma -> 1 — overprovisioning "
            "eventually beats admission control here"
        )


def main() -> None:
    load_name = sys.argv[1] if len(sys.argv) > 1 else "algebraic"
    if load_name not in {"poisson", "exponential", "algebraic"}:
        raise SystemExit(f"unknown load {load_name!r}")
    plan(load_name)


if __name__ == "__main__":
    main()
