#!/usr/bin/env python
"""Quickstart: should your network take reservations?

The one-screen version of the paper: pick a load distribution and an
application utility, and compare the two architectures — utilities,
performance gap, bandwidth gap, and the complexity budget reservations
would have to stay under to be worth it.

Run:
    python examples/quickstart.py
"""

from repro import ArchitectureComparison, GeometricLoad
from repro.utility import AdaptiveUtility


def main() -> None:
    # an "exponential" offered load averaging 100 simultaneous flows,
    # carrying adaptive audio/video applications (the paper's Eq. 2)
    load = GeometricLoad.from_mean(100.0)
    utility = AdaptiveUtility()
    comparison = ArchitectureComparison(load, utility)

    print("Best-Effort versus Reservations — quickstart")
    print(f"load: {load!r} (mean {load.mean:.0f} flows)")
    print(f"utility: {utility!r}\n")

    print(f"{'C':>6} {'k_max':>6} {'B(C)':>8} {'R(C)':>8} "
          f"{'delta':>9} {'Delta':>8} {'P(overload)':>12}")
    for capacity in (50.0, 100.0, 150.0, 200.0, 400.0, 800.0):
        pt = comparison.at(capacity)
        print(
            f"{capacity:6.0f} {pt.k_max:6d} {pt.best_effort:8.4f} "
            f"{pt.reservation:8.4f} {pt.performance_gap:9.5f} "
            f"{pt.bandwidth_gap:8.3f} {pt.overload_probability:12.4f}"
        )

    # the Section 4 decision rule: how much extra per-unit bandwidth
    # cost can the reservation architecture carry before best-effort
    # becomes the better buy?
    price = 0.05  # bandwidth price in utility units
    budget = comparison.break_even_complexity_cost(price)
    print(
        f"\nat bandwidth price {price}: reservations are worth up to "
        f"{100.0 * budget:.1f}% extra per-unit bandwidth cost"
    )
    if budget < 0.02:
        print("verdict: provisioning wins — keep the network best-effort-only")
    else:
        print("verdict: admission control earns its complexity here")


if __name__ == "__main__":
    main()
