#!/usr/bin/env python
"""End-to-end: record a flow trace, ship it, analyse it, decide.

The operator workflow the package supports: a measurement box records
per-flow arrival/departure times (here: produced by the simulator, in
the real world by a flow collector), writes them as CSV, and an
analysis box later reads the file, derives the census, identifies the
load distribution and issues the architecture verdict.

Run:
    python examples/trace_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.loads import AlgebraicLoad
from repro.simulation import AdmitAll, BirthDeathProcess, FlowSimulator, Link
from repro.traces import (
    FlowTrace,
    analyze_trace,
    census_samples,
    mean_census,
    read_trace,
    write_trace,
)
from repro.utility import AdaptiveUtility


def measurement_box(path: Path) -> None:
    """Record a long window of traffic (ground truth hidden).

    Heavy-tailed censuses mix slowly, so the window must be long: a
    short capture systematically *under*-estimates the tail (run this
    with horizon=3000 to watch the verdict flip to best-effort — the
    finite-observation trap the paper's Section 6 caveats imply).
    """
    truth = AlgebraicLoad.from_mean(2.6, 40.0)
    result = FlowSimulator(BirthDeathProcess(truth), Link(60.0), AdmitAll()).run(
        15_000.0, warmup=0.0, seed=42
    )
    trace = FlowTrace.from_simulation(result, site="pop-17", vantage="edge")
    write_trace(trace, path)
    print(f"measurement box: recorded {len(trace)} flows -> {path.name}")


def analysis_box(path: Path) -> None:
    """Read the file cold and produce the verdict."""
    trace = read_trace(path)
    print(
        f"analysis box: loaded {len(trace)} flows from {trace.metadata.get('site')}"
        f" (horizon {trace.horizon:.0f})"
    )
    print(f"time-average census: {mean_census(trace, warmup=1500.0):.1f} flows")
    sample = census_samples(trace, 8, warmup=1500.0, seed=1)
    print(f"example census samples: {sorted(sample.tolist())}")

    recommendation = analyze_trace(
        trace, AdaptiveUtility(), price=0.01, samples=5000, warmup=1500.0
    )
    print()
    print(recommendation.summary())


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "pop17_trace.csv"
        measurement_box(path)
        analysis_box(path)


if __name__ == "__main__":
    main()
