#!/usr/bin/env python
"""Heavy-tail sensitivity study: the z -> 2+ frontier and beyond.

The paper's sharpest results live at the heavy-tail edge: as the
algebraic power z approaches 2, the reservation advantage climbs to its
conjectured maximum (bandwidth ratio e, equalizing ratio e) — and the
Section 5 extensions (sampling, retrying) blow past it.  This example
maps that frontier with the continuum closed forms, then confirms two
points with the discrete model at paper scale.

Run:
    python examples/heavy_tail_study.py
"""

import math

from repro.continuum import (
    AdaptiveAlgebraicContinuum,
    RigidAlgebraicContinuum,
    adaptive_algebraic_ratio_limit,
    retrying_rigid_ratio,
    sampling_rigid_ratio,
)
from repro.loads import AlgebraicLoad
from repro.models import VariableLoadModel
from repro.utility import AdaptiveUtility, RigidUtility


def main() -> None:
    print("the z -> 2+ frontier (continuum closed forms)\n")
    print(
        f"{'z':>6} {'basic ratio':>12} {'ramp a=.5':>10} "
        f"{'sampling S=5':>13} {'retrying a=.1':>14}"
    )
    for z in (4.0, 3.0, 2.5, 2.2, 2.1, 2.05):
        basic = RigidAlgebraicContinuum(z).gap_ratio()
        ramp = AdaptiveAlgebraicContinuum(z, 0.5).gap_ratio()
        sampling = sampling_rigid_ratio(z, 5)
        retrying = retrying_rigid_ratio(z, 0.1)
        print(
            f"{z:6.2f} {basic:12.4f} {ramp:10.4f} {sampling:13.4g} {retrying:14.4g}"
        )
    print(
        f"\nbasic-model bound: ratio -> e = {math.e:.5f} as z -> 2+ "
        "(the paper's conjectured maximum);"
    )
    print("the extensions diverge — no bound survives sampling or retries.\n")

    print("adaptivity softens the frontier (z -> 2+ limit by dead zone a):")
    for a in (0.1, 0.3, 0.5, 0.7, 0.9):
        print(f"  a={a:.1f}: limit ratio = {adaptive_algebraic_ratio_limit(a):.4f}")

    print("\ndiscrete model at paper scale (k_bar = 100): the gap ratio in action")
    print(f"{'z':>6} {'utility':>9} {'Delta(400)/400':>15} {'Delta(800)/800':>15}")
    for z in (3.0, 2.5):
        load = AlgebraicLoad.from_mean(z, 100.0)
        for utility, name in ((RigidUtility(1.0), "rigid"), (AdaptiveUtility(), "adaptive")):
            model = VariableLoadModel(load, utility)
            r400 = model.bandwidth_gap(400.0) / 400.0
            r800 = model.bandwidth_gap(800.0) / 800.0
            print(f"{z:6.2f} {name:>9} {r400:15.4f} {r800:15.4f}")
    print(
        "\nthe per-capacity ratio is roughly constant — the linear growth "
        "the paper proves in the continuum survives in the discrete model."
    )

    gamma_reversal_demo()


def gamma_reversal_demo() -> None:
    """Section 5.2's welfare reversal, computed at paper scale."""
    import numpy as np

    from repro.models import ExtensionWelfare, RetryingModel

    print("\nretrying welfare reversal: gamma(p) is no longer monotone")
    load = AlgebraicLoad.from_mean(3.0, 100.0)
    retry = RetryingModel(load, AdaptiveUtility(), alpha=0.1)
    welfare = ExtensionWelfare(retry, load.mean, c_min=220.0, c_max=8000.0)
    lo, hi = welfare.price_range()
    for p in np.geomspace(lo * 1.3, hi * 0.7, 8):
        gamma = welfare.equalizing_ratio(float(p))
        print(f"  p={p:9.5f}  gamma={gamma:7.4f}")
    print(
        "  gamma peaks at an interior price and *decreases* as bandwidth "
        "gets cheaper — with retries, cheap bandwidth no longer erases "
        "the case for reservations (paper Section 5.2)."
    )


if __name__ == "__main__":
    main()
