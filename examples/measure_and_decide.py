#!/usr/bin/env python
"""Measure, identify, decide: the paper's closing advice as a pipeline.

The paper ends by saying the architecture question hinges on the load
distributions future networks will face.  This example plays operator:
it "measures" a census (here: simulated from a hidden ground truth),
identifies the distribution family by maximum likelihood, checks the
tail with a Hill estimator, and runs the comparative analysis on the
identified law to produce a provisioning verdict.

Run:
    python examples/measure_and_decide.py
"""

import numpy as np

from repro.inference import chi_square_gof, fit_all, recommend_architecture
from repro.loads import AlgebraicLoad, GeometricLoad, PoissonLoad
from repro.utility import AdaptiveUtility


def operator_view(name: str, samples: np.ndarray, price: float) -> None:
    print(f"--- network {name}: {len(samples)} census measurements ---")
    selection = fit_all(samples)
    print("family fits (AIC, lower is better):")
    for family in selection.ranking():
        fit = selection.fits[family]
        print(f"  {family:<12} AIC={fit.aic:12.1f}  {fit.load!r}")
    stat, p = chi_square_gof(selection.best.load, samples)
    print(f"goodness of fit for the winner: chi2={stat:.1f}, p={p:.3f}")

    rec = recommend_architecture(samples, AdaptiveUtility(), price=price)
    print(rec.summary())
    print()


def main() -> None:
    rng = np.random.default_rng(2026)
    price = 0.01  # cheap bandwidth: the regime where the debate is sharpest

    # three hidden ground truths, same mean offered load
    scenarios = {
        "campus (steady)": PoissonLoad(60.0),
        "regional ISP (bursty)": GeometricLoad.from_mean(60.0),
        "backbone (self-similar)": AlgebraicLoad.from_mean(2.6, 60.0),
    }
    for name, truth in scenarios.items():
        samples = truth.sample(rng, 4_000)
        operator_view(name, samples, price)

    print(
        "same mean load, three verdicts — the distribution's tail, not its "
        "average, decides the architecture question.  (Section 6 of the "
        "paper, in one run.)"
    )


if __name__ == "__main__":
    main()
