"""Tests for the rigid x exponential continuum closed forms."""

import math

import pytest

from repro.continuum import ContinuumModel, RigidExponentialContinuum
from repro.errors import ModelError
from repro.loads import ExponentialLoad
from repro.utility import RigidUtility


@pytest.fixture(params=[0.5, 1.0, 2.0])
def case(request):
    beta = request.param
    closed = RigidExponentialContinuum(beta)
    numeric = ContinuumModel(
        ExponentialLoad(beta), RigidUtility(1.0), k_max_override=lambda c: c
    )
    return closed, numeric


class TestClosedFormsAgainstQuadrature:
    def test_best_effort(self, case):
        closed, numeric = case
        for c in (0.3, 1.0, 3.0, 8.0):
            assert closed.total_best_effort(c) == pytest.approx(
                numeric.total_best_effort(c), abs=1e-9
            )

    def test_reservation(self, case):
        closed, numeric = case
        for c in (0.3, 1.0, 3.0, 8.0):
            assert closed.total_reservation(c) == pytest.approx(
                numeric.total_reservation(c), abs=1e-9
            )

    def test_performance_gap(self, case):
        closed, numeric = case
        for c in (0.5, 2.0, 5.0):
            assert closed.performance_gap(c) == pytest.approx(
                numeric.performance_gap(c), abs=1e-8
            )

    def test_bandwidth_gap(self, case):
        closed, numeric = case
        for c in (0.5, 2.0, 5.0):
            assert closed.bandwidth_gap(c) == pytest.approx(
                numeric.bandwidth_gap(c), rel=1e-5
            )


class TestPaperFormulas:
    def test_delta_equation(self):
        # beta*Delta = ln(1 + beta(C + Delta)) — the paper's implicit form
        m = RigidExponentialContinuum(1.0)
        for c in (1.0, 5.0, 50.0):
            delta = m.bandwidth_gap(c)
            assert delta == pytest.approx(math.log1p(c + delta), abs=1e-9)

    def test_delta_grows_logarithmically(self):
        m = RigidExponentialContinuum(1.0)
        # Delta(C^2) ~ 2 Delta(C) asymptotically
        d1 = m.bandwidth_gap(1e4)
        d2 = m.bandwidth_gap(1e8)
        assert d2 / d1 == pytest.approx(2.0, rel=0.05)

    def test_gap_is_bc_exp_minus_bc(self):
        m = RigidExponentialContinuum(2.0)
        c = 1.7
        assert m.performance_gap(c) == pytest.approx(
            2.0 * c * math.exp(-2.0 * c)
        )

    def test_asymptotic_gap_formula(self):
        m = RigidExponentialContinuum(1.0)
        c = 1e4
        assert m.bandwidth_gap_asymptotic(c) == pytest.approx(
            m.bandwidth_gap(c), rel=0.15
        )


class TestWelfare:
    def test_h_solves_its_equation_on_the_upper_branch(self):
        m = RigidExponentialContinuum(1.0)
        for p in (0.3, 0.1, 0.01):
            h = m.h(p)
            assert h * math.exp(-h) == pytest.approx(p, rel=1e-10)
            assert h >= 1.0  # the largest root

    def test_welfare_formulas_are_maxima(self):
        m = RigidExponentialContinuum(1.0)
        p = 0.05
        c_star = m.optimal_capacity_best_effort(p)
        w_star = m.welfare_best_effort(p)
        for c in (0.5 * c_star, 0.9 * c_star, 1.1 * c_star, 2.0 * c_star):
            assert m.total_best_effort(c) - p * c <= w_star + 1e-12

    def test_reservation_welfare_formula(self):
        m = RigidExponentialContinuum(1.0)
        p = 0.05
        c = m.optimal_capacity_reservation(p)
        direct = m.total_reservation(c) - p * c
        assert m.welfare_reservation(p) == pytest.approx(direct, rel=1e-10)

    def test_equalizing_ratio_equalises(self):
        m = RigidExponentialContinuum(1.0)
        for p in (0.2, 0.05, 0.005):
            gamma = m.equalizing_ratio(p)
            assert m.welfare_reservation(gamma * p) == pytest.approx(
                m.welfare_best_effort(p), abs=1e-10
            )

    def test_gamma_converges_to_one(self):
        m = RigidExponentialContinuum(1.0)
        gammas = [m.equalizing_ratio(p) for p in (0.1, 1e-3, 1e-6, 1e-10)]
        assert all(b < a for a, b in zip(gammas, gammas[1:]))
        assert gammas[-1] < 1.15

    def test_gamma_asymptotic_tracks_exact(self):
        m = RigidExponentialContinuum(1.0)
        for p in (1e-6, 1e-10):
            assert m.equalizing_ratio_asymptotic(p) == pytest.approx(
                m.equalizing_ratio(p), rel=0.03
            )

    def test_price_domain_guard(self):
        m = RigidExponentialContinuum(1.0)
        with pytest.raises(ModelError):
            m.welfare_best_effort(0.5)  # above 1/e
        with pytest.raises(ModelError):
            m.welfare_reservation(0.0)
