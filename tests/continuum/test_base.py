"""Tests for the generic continuum quadrature engine."""

import pytest

from repro.continuum import ContinuumModel
from repro.errors import ModelError
from repro.loads import ExponentialLoad, ParetoLoad
from repro.utility import (
    AdaptiveUtility,
    ExponentialElasticUtility,
    PiecewiseLinearUtility,
    RigidUtility,
)


class TestKMax:
    def test_override_wins(self):
        m = ContinuumModel(
            ExponentialLoad(1.0), RigidUtility(1.0), k_max_override=lambda c: 0.5 * c
        )
        assert m.k_max(10.0) == 5.0

    def test_utility_hint_used(self):
        m = ContinuumModel(ExponentialLoad(1.0), PiecewiseLinearUtility(0.5))
        assert m.k_max(7.0) == 7.0

    def test_numeric_optimum_for_smooth_utility(self):
        m = ContinuumModel(ExponentialLoad(0.5), AdaptiveUtility())
        # kappa calibration puts the continuum optimum exactly at C
        assert m.k_max(10.0) == pytest.approx(10.0, rel=1e-3)

    def test_elastic_raises(self):
        m = ContinuumModel(ExponentialLoad(1.0), ExponentialElasticUtility())
        with pytest.raises(ModelError, match="elastic"):
            m.k_max(3.0)

    def test_zero_capacity(self):
        m = ContinuumModel(ExponentialLoad(1.0), RigidUtility(1.0))
        assert m.k_max(0.0) == 0.0


class TestTotals:
    def test_best_effort_bounded_by_mean(self):
        m = ContinuumModel(ParetoLoad(3.0), AdaptiveUtility())
        for c in (1.0, 4.0, 16.0):
            assert 0.0 <= m.total_best_effort(c) <= m.mean_load

    def test_reservation_dominates(self):
        m = ContinuumModel(
            ParetoLoad(3.0), PiecewiseLinearUtility(0.5), k_max_override=lambda c: c
        )
        for c in (1.3, 3.0, 12.0):
            assert m.reservation(c) >= m.best_effort(c) - 1e-10

    def test_zero_capacity_zero_utility(self):
        m = ContinuumModel(ExponentialLoad(1.0), AdaptiveUtility())
        assert m.total_best_effort(0.0) == 0.0
        assert m.total_reservation(0.0) == 0.0

    def test_smooth_utility_with_heavy_tail(self):
        # the adaptive (Eq. 2) utility, which has no closed form, runs
        # through the same machinery
        m = ContinuumModel(ParetoLoad(3.0), AdaptiveUtility())
        assert 0.0 < m.best_effort(4.0) < m.reservation(4.0) < 1.0

    def test_rejects_negative_capacity(self):
        m = ContinuumModel(ExponentialLoad(1.0), AdaptiveUtility())
        with pytest.raises(ValueError):
            m.total_best_effort(-1.0)


class TestGap:
    def test_gap_solves_equation(self):
        m = ContinuumModel(
            ExponentialLoad(1.0), PiecewiseLinearUtility(0.5), k_max_override=lambda c: c
        )
        c = 2.0
        gap = m.bandwidth_gap(c)
        assert gap > 0.0
        assert m.best_effort(c + gap) == pytest.approx(m.reservation(c), abs=1e-8)

    def test_gap_zero_when_indistinguishable(self):
        m = ContinuumModel(
            ExponentialLoad(1.0), PiecewiseLinearUtility(0.0), k_max_override=lambda c: c
        )
        assert m.bandwidth_gap(2.0) == 0.0
