"""Extreme-capacity (C >= 10^4) coverage for the continuum asymptotics.

The continuum closed forms were exercised at figure-scale capacities
(C <= ~10^3); the mean-field engine's crossover story is about
populations and capacities orders of magnitude beyond that.  These
tests drive the asymptotic entry points at C in {10^4, 10^5, 10^6},
check the closed forms stay finite and ordered out there, and pin the
continuum values against the mean-field fluid fixed point — two
independent large-N routes that must land on the same answers.
"""

import math

import numpy as np
import pytest

from repro.continuum import (
    AdaptiveAlgebraicContinuum,
    AdaptiveExponentialContinuum,
    RigidAlgebraicContinuum,
    RigidExponentialContinuum,
)
from repro.experiments import DEFAULT_CONFIG
from repro.meanfield import MeanFieldSimulator
from repro.simulation import Link, PoissonProcess

EXTREME_CAPACITIES = (1.0e4, 1.0e5, 1.0e6)


class TestRigidExponentialExtreme:
    @pytest.mark.parametrize("capacity", EXTREME_CAPACITIES)
    def test_values_saturate_and_stay_ordered(self, capacity):
        model = RigidExponentialContinuum()
        best_effort = model.best_effort(capacity)
        reservation = model.reservation(capacity)
        assert 0.0 <= best_effort <= reservation <= 1.0
        assert reservation == pytest.approx(1.0, abs=1e-12)
        assert model.performance_gap(capacity) == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("capacity", EXTREME_CAPACITIES)
    def test_bandwidth_gap_tracks_its_asymptotic_form(self, capacity):
        model = RigidExponentialContinuum()
        exact = model.bandwidth_gap(capacity)
        asymptotic = model.bandwidth_gap_asymptotic(capacity)
        # Delta ~ ln(beta C): relative agreement tightens with C
        assert exact == pytest.approx(asymptotic, rel=0.15)

    def test_bandwidth_gap_asymptotic_error_decreases_with_capacity(self):
        model = RigidExponentialContinuum()
        errors = [
            abs(model.bandwidth_gap(c) - model.bandwidth_gap_asymptotic(c))
            / model.bandwidth_gap(c)
            for c in EXTREME_CAPACITIES
        ]
        assert errors == sorted(errors, reverse=True)

    def test_batch_kernels_agree_with_scalars_at_extreme_capacity(self):
        model = RigidExponentialContinuum()
        caps = np.asarray(EXTREME_CAPACITIES)
        np.testing.assert_allclose(
            model.bandwidth_gap_batch(caps),
            [model.bandwidth_gap(c) for c in caps],
            rtol=1e-9,
        )


class TestAdaptiveExponentialExtreme:
    def test_bandwidth_gap_approaches_its_finite_limit(self):
        model = AdaptiveExponentialContinuum(DEFAULT_CONFIG.ramp_a)
        errors = [
            abs(model.bandwidth_gap(c) - model.bandwidth_gap_limit())
            for c in (5.0, 10.0, 15.0, 20.0)
        ]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 1e-6

    @pytest.mark.parametrize("capacity", EXTREME_CAPACITIES)
    def test_bandwidth_gap_saturates_to_zero_past_float_resolution(self, capacity):
        # beyond C ~ 30/beta the utility gap underflows the solver's
        # floor: the architectures are float-indistinguishable, and the
        # contract is a clean zero rather than cancellation noise
        model = AdaptiveExponentialContinuum(DEFAULT_CONFIG.ramp_a)
        assert model.bandwidth_gap(capacity) == 0.0

    @pytest.mark.parametrize("capacity", EXTREME_CAPACITIES)
    def test_gap_vanishes_at_extreme_capacity(self, capacity):
        model = AdaptiveExponentialContinuum(DEFAULT_CONFIG.ramp_a)
        assert model.performance_gap(capacity) == pytest.approx(0.0, abs=1e-12)


class TestAlgebraicExtreme:
    @pytest.mark.parametrize("capacity", EXTREME_CAPACITIES)
    def test_rigid_algebraic_stays_finite_and_ordered(self, capacity):
        model = RigidAlgebraicContinuum(DEFAULT_CONFIG.z)
        best_effort = model.best_effort(capacity)
        reservation = model.reservation(capacity)
        assert 0.0 <= best_effort <= reservation <= 1.0
        assert math.isfinite(model.bandwidth_gap(capacity))
        # power-law tail: Delta grows linearly in C, unlike the
        # exponential case's logarithm
        assert model.bandwidth_gap(capacity) > model.bandwidth_gap(capacity / 10.0)

    @pytest.mark.parametrize("capacity", EXTREME_CAPACITIES)
    def test_adaptive_algebraic_gap_decays_polynomially(self, capacity):
        model = AdaptiveAlgebraicContinuum(DEFAULT_CONFIG.z, DEFAULT_CONFIG.ramp_a)
        gap = model.performance_gap(capacity)
        assert 0.0 <= gap < (1.0 / capacity) ** (DEFAULT_CONFIG.z - 2.0)


class TestFluidCrossAnchor:
    """Continuum closed forms vs the mean-field fluid fixed point.

    For a Poisson census at mean ``kbar`` the fluid engine collapses
    the population onto ``n* = kbar``; at extreme capacity the
    continuum's census integral is equally dominated by its mean.
    Two independent large-N reductions — quadrature over a continuum
    density vs an ODE fixed point — must agree out here.
    """

    @pytest.mark.parametrize("capacity", EXTREME_CAPACITIES)
    def test_exponential_continuum_agrees_with_the_fluid_point(self, capacity):
        kbar = DEFAULT_CONFIG.sim_kbar
        continuum = AdaptiveExponentialContinuum(
            DEFAULT_CONFIG.ramp_a, beta=1.0 / kbar
        )
        sim = MeanFieldSimulator(PoissonProcess(kbar), Link(capacity))
        fluid = sim.fluid_values(DEFAULT_CONFIG.utility("adaptive"))
        assert continuum.best_effort(capacity) == pytest.approx(
            fluid["best_effort"], abs=1e-6
        )
        assert continuum.reservation(capacity) == pytest.approx(
            fluid["reservation"], abs=1e-6
        )

    def test_fluid_point_is_capacity_independent(self):
        # the census dynamics never see C: one solve must serve any grid
        sim = MeanFieldSimulator(PoissonProcess(DEFAULT_CONFIG.sim_kbar), Link(1.0e4))
        equilibrium = sim.equilibrium()
        assert equilibrium.census == pytest.approx(DEFAULT_CONFIG.sim_kbar, abs=1e-9)
        values = sim.best_effort_batch(
            DEFAULT_CONFIG.utility("adaptive"), np.asarray(EXTREME_CAPACITIES)
        )
        np.testing.assert_allclose(values, 1.0, atol=1e-9)
