"""Tests for the rigid x algebraic continuum closed forms."""

import math

import pytest

from repro.continuum import ContinuumModel, RigidAlgebraicContinuum
from repro.errors import ModelError
from repro.loads import ParetoLoad
from repro.utility import RigidUtility


@pytest.fixture(params=[2.3, 3.0, 4.0])
def case(request):
    z = request.param
    closed = RigidAlgebraicContinuum(z)
    numeric = ContinuumModel(
        ParetoLoad(z), RigidUtility(1.0), k_max_override=lambda c: c
    )
    return closed, numeric


class TestClosedFormsAgainstQuadrature:
    def test_best_effort(self, case):
        closed, numeric = case
        for c in (1.2, 2.0, 6.0, 20.0):
            assert closed.best_effort(c) == pytest.approx(
                numeric.best_effort(c), abs=1e-9
            )

    def test_reservation(self, case):
        closed, numeric = case
        for c in (1.2, 2.0, 6.0, 20.0):
            assert closed.reservation(c) == pytest.approx(
                numeric.reservation(c), abs=1e-9
            )

    def test_bandwidth_gap(self, case):
        closed, numeric = case
        for c in (2.0, 6.0, 20.0):
            assert closed.bandwidth_gap(c) == pytest.approx(
                numeric.bandwidth_gap(c), rel=1e-5
            )


class TestPaperFormulas:
    def test_mean_load(self):
        assert RigidAlgebraicContinuum(3.0).mean_load == pytest.approx(2.0)

    def test_delta_exactly_linear(self):
        m = RigidAlgebraicContinuum(3.0)
        # Delta(C)/C constant for all C >= 1
        ratios = [m.bandwidth_gap(c) / c for c in (1.5, 4.0, 40.0, 4000.0)]
        assert max(ratios) - min(ratios) < 1e-12

    def test_gap_ratio_formula(self):
        # (z-1)^{1/(z-2)}: 2 at z=3, sqrt(3)... at z=4 -> 3^(1/2)
        assert RigidAlgebraicContinuum(3.0).gap_ratio() == pytest.approx(2.0)
        assert RigidAlgebraicContinuum(4.0).gap_ratio() == pytest.approx(
            math.sqrt(3.0)
        )

    def test_worst_case_limits(self):
        assert RigidAlgebraicContinuum.worst_case_gap_ratio() == math.e
        assert RigidAlgebraicContinuum.worst_case_delta_over_c() == math.e - 1.0
        # the ratio approaches e from below as z -> 2+
        near = RigidAlgebraicContinuum(2.001).gap_ratio()
        assert near == pytest.approx(math.e, abs=0.01)
        assert near < math.e

    def test_performance_gap_decays_as_power(self):
        m = RigidAlgebraicContinuum(3.0)
        assert m.performance_gap(10.0) / m.performance_gap(20.0) == pytest.approx(
            2.0 ** (3.0 - 2.0), rel=1e-10
        )

    def test_capacity_domain_guard(self):
        with pytest.raises(ModelError):
            RigidAlgebraicContinuum(3.0).best_effort(0.5)


class TestWelfare:
    def test_welfare_formulas_are_maxima(self):
        m = RigidAlgebraicContinuum(3.0)
        p = 0.1
        c_star = m.optimal_capacity_best_effort(p)
        w_star = m.welfare_best_effort(p)
        for c in (0.6 * c_star, 0.95 * c_star, 1.05 * c_star, 1.8 * c_star):
            assert m.total_best_effort(c) - p * c <= w_star + 1e-12

    def test_reservation_welfare_closed_form(self):
        # W_R(p) = k_bar (1 - p^{(z-2)/(z-1)})
        m = RigidAlgebraicContinuum(3.0)
        for p in (0.5, 0.1, 0.01):
            c = m.optimal_capacity_reservation(p)
            direct = m.total_reservation(c) - p * c
            assert m.welfare_reservation(p) == pytest.approx(direct, rel=1e-10)

    def test_gamma_is_constant_and_exact(self):
        m = RigidAlgebraicContinuum(3.0)
        for p in (0.3, 0.03, 0.003):
            gamma = m.equalizing_ratio(p)
            assert gamma == pytest.approx(2.0)
            assert m.welfare_reservation(gamma * p) == pytest.approx(
                m.welfare_best_effort(p), abs=1e-10
            )

    def test_gamma_approaches_e(self):
        assert RigidAlgebraicContinuum(2.0005).equalizing_ratio() == pytest.approx(
            math.e, abs=0.002
        )

    def test_price_domain_guard(self):
        with pytest.raises(ModelError):
            RigidAlgebraicContinuum(3.0).welfare_best_effort(1.5)
