"""Tests for the continuum sampling model."""

import pytest

from repro.continuum import ContinuumModel, ContinuumSamplingModel
from repro.loads import ExponentialLoad, ParetoLoad
from repro.utility import PiecewiseLinearUtility, RigidUtility


class TestReduction:
    @pytest.mark.parametrize(
        "load", [ExponentialLoad(1.0), ParetoLoad(3.0)], ids=["exp", "pareto"]
    )
    def test_s1_best_effort_equals_base_model(self, load):
        # E_Q[pi(C/k)] == V_B/k_bar: the size-biased identity
        u = PiecewiseLinearUtility(0.5)
        s1 = ContinuumSamplingModel(load, u, 1)
        base = ContinuumModel(load, u, k_max_override=lambda c: c)
        for c in (1.5, 3.0, 8.0):
            assert s1.best_effort(c) == pytest.approx(base.best_effort(c), abs=1e-8)

    @pytest.mark.parametrize(
        "load", [ExponentialLoad(1.0), ParetoLoad(3.0)], ids=["exp", "pareto"]
    )
    def test_s1_reservation_equals_base_model(self, load):
        u = RigidUtility(1.0)
        s1 = ContinuumSamplingModel(load, u, 1)
        base = ContinuumModel(load, u, k_max_override=lambda c: c)
        for c in (1.5, 3.0, 8.0):
            assert s1.reservation(c) == pytest.approx(base.reservation(c), abs=1e-8)


class TestShape:
    def test_best_effort_decreasing_in_s(self):
        u = PiecewiseLinearUtility(0.5)
        load = ExponentialLoad(1.0)
        c = 2.0
        values = [
            ContinuumSamplingModel(load, u, s).best_effort(c) for s in (1, 3, 9)
        ]
        assert values[0] > values[1] > values[2]

    def test_reservation_insensitive_to_s_for_ramp(self):
        # admitted ramp flows always see capped loads (b >= 1 -> pi = 1),
        # so S does not change the reservation utility
        u = PiecewiseLinearUtility(0.5)
        load = ParetoLoad(3.0)
        c = 4.0
        r1 = ContinuumSamplingModel(load, u, 1).reservation(c)
        r9 = ContinuumSamplingModel(load, u, 9).reservation(c)
        assert r1 == pytest.approx(r9, abs=1e-9)

    def test_gap_widens_with_s(self):
        u = RigidUtility(1.0)
        load = ExponentialLoad(1.0)
        c = 3.0
        gaps = [
            ContinuumSamplingModel(load, u, s).performance_gap(c) for s in (1, 4, 16)
        ]
        assert gaps[0] < gaps[1] < gaps[2]

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            ContinuumSamplingModel(ExponentialLoad(1.0), RigidUtility(1.0), 0)

    def test_zero_capacity(self):
        m = ContinuumSamplingModel(ExponentialLoad(1.0), RigidUtility(1.0), 3)
        assert m.best_effort(0.0) == 0.0
        assert m.reservation(0.0) == 0.0
