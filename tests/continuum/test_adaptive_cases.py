"""Tests for the ramp (adaptive) continuum closed forms, both loads."""

import math

import pytest

from repro.continuum import (
    AdaptiveAlgebraicContinuum,
    AdaptiveExponentialContinuum,
    ContinuumModel,
    RigidAlgebraicContinuum,
    RigidExponentialContinuum,
    best_effort_loss_coefficient,
    gap_ratio_limit,
)
from repro.loads import ExponentialLoad, ParetoLoad
from repro.utility import PiecewiseLinearUtility


class TestAdaptiveExponential:
    @pytest.mark.parametrize("a", [0.0, 0.3, 0.5, 0.9])
    def test_best_effort_matches_quadrature(self, a):
        closed = AdaptiveExponentialContinuum(a, beta=1.0)
        numeric = ContinuumModel(
            ExponentialLoad(1.0), PiecewiseLinearUtility(a), k_max_override=lambda c: c
        )
        for c in (0.4, 1.0, 3.0, 9.0):
            assert closed.total_best_effort(c) == pytest.approx(
                numeric.total_best_effort(c), abs=1e-9
            )

    def test_reservation_same_as_rigid(self):
        ae = AdaptiveExponentialContinuum(0.5, beta=1.0)
        re = RigidExponentialContinuum(1.0)
        for c in (0.5, 2.0, 8.0):
            assert ae.total_reservation(c) == re.total_reservation(c)

    def test_a_zero_collapses_architectures(self):
        ae = AdaptiveExponentialContinuum(0.0, beta=1.0)
        for c in (0.5, 2.0, 8.0):
            assert ae.performance_gap(c) == pytest.approx(0.0, abs=1e-12)
        assert ae.bandwidth_gap_limit() == 0.0

    def test_delta_converges_to_minus_log(self):
        # the approach to the limit is governed by e^{-C(1-a)/a}, so
        # each a gets its own capacity and tolerance
        for a, c, tol in ((0.25, 10.0, 1e-8), (0.5, 15.0, 1e-6), (0.75, 22.0, 2e-3)):
            m = AdaptiveExponentialContinuum(a, beta=1.0)
            assert m.bandwidth_gap(c) == pytest.approx(
                -math.log(1.0 - a), abs=tol
            )

    def test_delta_limit_scales_with_beta(self):
        m = AdaptiveExponentialContinuum(0.5, beta=2.0)
        assert m.bandwidth_gap_limit() == pytest.approx(-math.log(0.5) / 2.0)

    def test_marginal_matches_derivative(self):
        m = AdaptiveExponentialContinuum(0.5, beta=1.0)
        c, h = 2.0, 1e-6
        fd = (m.total_best_effort(c + h) - m.total_best_effort(c - h)) / (2 * h)
        assert m.marginal_best_effort(c) == pytest.approx(fd, rel=1e-5)

    def test_welfare_optimum_is_largest_root(self):
        m = AdaptiveExponentialContinuum(0.5, beta=1.0)
        p = 0.05
        c_star = m.optimal_capacity_best_effort(p)
        assert m.marginal_best_effort(c_star) == pytest.approx(p, rel=1e-8)
        # beyond the peak: marginal decreasing there
        assert m.marginal_best_effort(c_star + 0.5) < p

    def test_equalizing_ratio_equalises(self):
        m = AdaptiveExponentialContinuum(0.5, beta=1.0)
        for p in (0.1, 0.01):
            gamma = m.equalizing_ratio(p)
            assert gamma >= 1.0
            assert m.welfare_reservation(gamma * p) == pytest.approx(
                m.welfare_best_effort(p), rel=1e-8
            )

    def test_gamma_below_rigid_case(self):
        # adaptivity weakens the case for reservations
        adaptive = AdaptiveExponentialContinuum(0.5, beta=1.0)
        rigid = RigidExponentialContinuum(1.0)
        p = 0.05
        assert adaptive.equalizing_ratio(p) < rigid.equalizing_ratio(p)


class TestAdaptiveAlgebraic:
    @pytest.mark.parametrize("a", [0.0, 0.3, 0.5, 0.9])
    @pytest.mark.parametrize("z", [2.5, 3.0, 4.0])
    def test_best_effort_matches_quadrature(self, z, a):
        closed = AdaptiveAlgebraicContinuum(z, a)
        numeric = ContinuumModel(
            ParetoLoad(z), PiecewiseLinearUtility(a), k_max_override=lambda c: c
        )
        for c in (1.5, 3.0, 12.0):
            assert closed.best_effort(c) == pytest.approx(
                numeric.best_effort(c), abs=1e-9
            )

    def test_loss_coefficient_limits(self):
        # a -> 0: equals the reservation coefficient; a -> 1: rigid k_bar
        z = 3.0
        assert best_effort_loss_coefficient(z, 0.0) == pytest.approx(1.0 / (z - 2.0))
        assert best_effort_loss_coefficient(z, 0.9999) == pytest.approx(
            (z - 1.0) / (z - 2.0), rel=1e-3
        )

    def test_loss_coefficient_increasing_in_a(self):
        values = [best_effort_loss_coefficient(3.0, a) for a in (0.1, 0.4, 0.7, 0.95)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_delta_linear_with_adaptive_slope(self):
        m = AdaptiveAlgebraicContinuum(3.0, 0.5)
        ratios = [m.bandwidth_gap(c) / c for c in (1.5, 15.0, 1500.0)]
        assert max(ratios) - min(ratios) < 1e-12
        # the slope is below the rigid slope (1.0 at z=3)
        assert 0.0 < ratios[0] < RigidAlgebraicContinuum(3.0).gap_ratio() - 1.0

    def test_known_ratio_at_z3_a_half(self):
        # c_B = 1.5, c_R = 1 at z=3 -> ratio 1.5
        assert AdaptiveAlgebraicContinuum(3.0, 0.5).gap_ratio() == pytest.approx(1.5)

    def test_gap_ratio_limit_formula(self):
        # a^{-a/(1-a)}: 1 at a=0, e as a->1
        assert gap_ratio_limit(0.0) == 1.0
        assert gap_ratio_limit(0.5) == pytest.approx(2.0)
        assert gap_ratio_limit(0.9999) == pytest.approx(math.e, rel=1e-3)

    def test_ratio_approaches_limit_as_z_to_two(self):
        for a in (0.3, 0.7):
            near = AdaptiveAlgebraicContinuum(2.0005, a).gap_ratio()
            assert near == pytest.approx(gap_ratio_limit(a), rel=0.01)

    def test_equalizing_ratio_constant_and_equal_to_gap_ratio(self):
        # the paper's asymptotic identity: lim gamma(p) = lim (C+Delta)/C
        m = AdaptiveAlgebraicContinuum(3.0, 0.5)
        g1 = m.equalizing_ratio(0.1)
        g2 = m.equalizing_ratio(0.001)
        assert g1 == pytest.approx(g2, rel=1e-6)
        assert g1 == pytest.approx(m.gap_ratio(), rel=1e-6)

    def test_welfare_identity(self):
        m = AdaptiveAlgebraicContinuum(3.0, 0.5)
        for p in (0.2, 0.02):
            gamma = m.equalizing_ratio(p)
            assert m.welfare_reservation(gamma * p) == pytest.approx(
                m.welfare_best_effort(p), abs=1e-10
            )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveAlgebraicContinuum(2.0, 0.5)
        with pytest.raises(ValueError):
            AdaptiveAlgebraicContinuum(3.0, 1.0)
