"""Tests for the power-law-satiation case and its Delta trichotomy."""

import pytest

from repro.continuum import AlgebraicTailAlgebraicContinuum, ContinuumModel
from repro.errors import ModelError
from repro.loads import ParetoLoad
from repro.utility import AlgebraicTailUtility


def quadrature_twin(model: AlgebraicTailAlgebraicContinuum) -> ContinuumModel:
    return ContinuumModel(
        ParetoLoad(model.z),
        AlgebraicTailUtility(model.tau),
        k_max_override=model.k_max,
    )


class TestClosedForms:
    @pytest.mark.parametrize(
        "z,tau", [(3.0, 2.0), (3.0, 0.5), (4.0, 0.6), (4.5, 1.2)]
    )
    def test_totals_match_quadrature(self, z, tau):
        closed = AlgebraicTailAlgebraicContinuum(z, tau)
        numeric = quadrature_twin(closed)
        c_min = (tau + 1.0) ** (1.0 / tau) + 0.5
        for c in (c_min, 2.0 * c_min, 20.0):
            assert closed.total_best_effort(c) == pytest.approx(
                numeric.total_best_effort(c), abs=1e-9
            )
            assert closed.total_reservation(c) == pytest.approx(
                numeric.total_reservation(c), abs=1e-9
            )

    def test_k_max_below_capacity(self):
        m = AlgebraicTailAlgebraicContinuum(3.5, 1.0)
        assert m.k_max(100.0) == pytest.approx(50.0)

    def test_reservation_dominates(self):
        m = AlgebraicTailAlgebraicContinuum(3.5, 1.0)
        for c in (3.0, 10.0, 100.0):
            assert m.reservation(c) >= m.best_effort(c) - 1e-12

    def test_resonant_case_rejected(self):
        with pytest.raises(ModelError, match="resonant"):
            AlgebraicTailAlgebraicContinuum(3.0, 1.0)

    def test_domain_guards(self):
        m = AlgebraicTailAlgebraicContinuum(3.0, 2.0)
        with pytest.raises(ModelError):
            m.best_effort(0.5)
        with pytest.raises(ModelError):
            m.total_reservation(1.2)  # k_max < 1 there
        with pytest.raises(ValueError):
            AlgebraicTailAlgebraicContinuum(2.0, 1.0)
        with pytest.raises(ValueError):
            AlgebraicTailAlgebraicContinuum(3.0, -1.0)


class TestGapTrichotomy:
    """The paper: Delta ~ C if tau > z-2; ~ C^{tau+3-z} otherwise."""

    @pytest.mark.parametrize(
        "z,tau,expected",
        [
            (3.0, 2.0, 1.0),  # tau > z-2: linear
            (3.0, 0.5, 0.5),  # z-3 < tau < z-2: sublinear increase
            (4.5, 1.2, -0.3),  # tau < z-3: the gap *shrinks*
            (4.5, 0.9, -0.6),
        ],
    )
    def test_growth_exponent(self, z, tau, expected):
        m = AlgebraicTailAlgebraicContinuum(z, tau)
        assert m.gap_growth_exponent() == pytest.approx(expected)
        assert m.measured_growth_exponent(c_lo=500.0, c_hi=50_000.0) == pytest.approx(
            expected, abs=0.03
        )

    def test_shared_tail_coefficient_cancels(self):
        # D_B - D_R must be a pure C^{2-z} power: the C^-tau parts are
        # identical between architectures
        m = AlgebraicTailAlgebraicContinuum(4.5, 0.9)
        z = m.z
        g10 = m.total_reservation(10.0) - m.total_best_effort(10.0)
        g40 = m.total_reservation(40.0) - m.total_best_effort(40.0)
        assert g10 / g40 == pytest.approx(4.0 ** (z - 2.0), rel=1e-9)

    def test_decreasing_gap_case_really_decreases(self):
        m = AlgebraicTailAlgebraicContinuum(4.5, 0.9)
        assert m.bandwidth_gap(2000.0) < m.bandwidth_gap(200.0)

    def test_linear_case_approaches_constant_ratio(self):
        # Delta/C converges (with a slowly decaying C^-tau correction,
        # unlike the ramp case where it is constant exactly)
        m = AlgebraicTailAlgebraicContinuum(3.0, 2.0)
        ratios = [m.bandwidth_gap(c) / c for c in (1e3, 1e4, 1e5)]
        assert abs(ratios[2] - ratios[1]) < abs(ratios[1] - ratios[0])
        assert max(ratios) - min(ratios) < 0.01 * ratios[0]
