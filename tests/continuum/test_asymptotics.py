"""Tests for the asymptotic laws and the extension limit formulas."""

import math

import pytest

from repro.continuum import (
    DELTA_OVER_C_BOUND,
    GAMMA_BOUND,
    ContinuumSamplingModel,
    adaptive_algebraic_ratio,
    adaptive_algebraic_ratio_limit,
    retrying_adaptive_ratio,
    retrying_rigid_ratio,
    rigid_algebraic_ratio,
    sampling_adaptive_ratio,
    sampling_exponential_gap,
    sampling_rigid_ratio,
)
from repro.loads import ParetoLoad
from repro.utility import PiecewiseLinearUtility, RigidUtility


class TestBasicModelBounds:
    def test_constants(self):
        assert GAMMA_BOUND == math.e
        assert DELTA_OVER_C_BOUND == math.e - 1.0

    def test_rigid_ratio_below_e_everywhere(self):
        for z in (2.01, 2.5, 3.0, 5.0, 10.0):
            assert 1.0 < rigid_algebraic_ratio(z) < math.e

    def test_rigid_ratio_decreasing_in_z(self):
        values = [rigid_algebraic_ratio(z) for z in (2.1, 2.5, 3.0, 4.0, 8.0)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_adaptive_ratio_below_rigid(self):
        for z in (2.5, 3.0, 4.0):
            for a in (0.2, 0.5, 0.8):
                assert adaptive_algebraic_ratio(z, a) < rigid_algebraic_ratio(z)

    def test_adaptive_limit_range(self):
        # spans [1, e) over a in [0, 1)
        assert adaptive_algebraic_ratio_limit(0.0) == 1.0
        assert adaptive_algebraic_ratio_limit(0.99999) == pytest.approx(
            math.e, rel=1e-4
        )

    def test_invalid_z_rejected(self):
        with pytest.raises(ValueError):
            rigid_algebraic_ratio(2.0)


class TestSamplingBreaksTheBound:
    def test_s1_recovers_basic_model(self):
        for z in (2.5, 3.0):
            assert sampling_rigid_ratio(z, 1) == rigid_algebraic_ratio(z)

    def test_ratio_grows_with_s(self):
        values = [sampling_rigid_ratio(3.0, s) for s in (1, 2, 5, 20)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_divergence_as_z_to_two(self):
        # for S > 1 the ratio blows past e (the paper's bound removal)
        assert sampling_rigid_ratio(2.05, 3) > 100.0
        assert sampling_rigid_ratio(2.01, 2) > 1e10

    def test_adaptive_version_also_diverges(self):
        assert sampling_adaptive_ratio(2.05, 0.5, 3) > 10.0

    def test_adaptive_s1_recovers_basic(self):
        for a in (0.3, 0.7):
            assert sampling_adaptive_ratio(3.0, a, 1) == pytest.approx(
                adaptive_algebraic_ratio(3.0, a)
            )

    def test_measured_against_continuum_quadrature(self):
        # the headline identity: measured (C+Delta)/C -> (S(z-1))^{1/(z-2)}
        z, s = 3.0, 4
        model = ContinuumSamplingModel(ParetoLoad(z), RigidUtility(1.0), s)
        c = 300.0
        measured = (c + model.bandwidth_gap(c)) / c
        assert measured == pytest.approx(sampling_rigid_ratio(z, s), rel=0.01)

    def test_adaptive_measured_against_quadrature(self):
        z, a, s = 3.0, 0.5, 3
        model = ContinuumSamplingModel(ParetoLoad(z), PiecewiseLinearUtility(a), s)
        c = 300.0
        measured = (c + model.bandwidth_gap(c)) / c
        assert measured == pytest.approx(sampling_adaptive_ratio(z, a, s), rel=0.02)

    def test_exponential_gap_form(self):
        # delta_S(C) ~ e^{-bC}(S(1+bC)-1); S=1 recovers the basic
        # model's delta = bC e^{-bC}
        c = 3.0
        assert sampling_exponential_gap(1.0, c, 1) == pytest.approx(
            c * math.exp(-c), abs=1e-12
        )
        # and grows linearly in S at fixed C
        g2 = sampling_exponential_gap(1.0, c, 2)
        g4 = sampling_exponential_gap(1.0, c, 4)
        assert g4 > g2 > sampling_exponential_gap(1.0, c, 1)

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            sampling_rigid_ratio(3.0, 0)


class TestRetryingBreaksTheBound:
    def test_rigid_formula(self):
        assert retrying_rigid_ratio(3.0, 0.1) == pytest.approx(20.0)

    def test_alpha_one_recovers_basic_model(self):
        # a full-utility penalty per retry reproduces the reject-forever
        # disutility, hence the basic ratio
        for z in (2.5, 3.0):
            assert retrying_rigid_ratio(z, 1.0) == pytest.approx(
                rigid_algebraic_ratio(z)
            )

    def test_smaller_alpha_larger_advantage(self):
        values = [retrying_rigid_ratio(3.0, a) for a in (1.0, 0.5, 0.1, 0.01)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_divergence_as_z_to_two(self):
        assert retrying_rigid_ratio(2.05, 0.1) > 1e10

    def test_adaptive_version(self):
        # adaptive ratio below rigid at the same alpha
        assert retrying_adaptive_ratio(3.0, 0.5, 0.1) < retrying_rigid_ratio(3.0, 0.1)
        assert retrying_adaptive_ratio(2.05, 0.5, 0.1) > 1e3

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            retrying_rigid_ratio(3.0, 0.0)
        with pytest.raises(ValueError):
            retrying_rigid_ratio(3.0, 1.5)
