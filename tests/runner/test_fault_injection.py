"""Kill a run mid-flight; the cache must contain only valid entries.

These tests drive the real CLI in a subprocess (the only honest way
to test SIGKILL) with experiments slow enough (~1-2 s) that the kill
reliably lands while workers are computing.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.ioutils import TMP_MARKER
from repro.runner.cache import CACHE_SCHEMA, payload_sha256

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def _spawn_run_all(cache_dir, ids, jobs):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "run-all", *ids, "--fast",
         "--jobs", str(jobs), "--cache-dir", str(cache_dir)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        start_new_session=True,  # so killpg reaches the pool workers too
    )


def _assert_cache_is_clean(cache_dir):
    """Every surviving entry parses, self-verifies, and isn't a temp."""
    entries = list(pathlib.Path(cache_dir).rglob("*.json"))
    for path in entries:
        assert TMP_MARKER not in path.name
        entry = json.loads(path.read_text())  # parses: not truncated
        assert entry["schema"] == CACHE_SCHEMA
        assert entry["payload_sha256"] == payload_sha256(entry["result"])
    return entries


@pytest.mark.slow
class TestKillMidRun:
    def test_sigkill_leaves_no_partial_entries(self, tmp_path):
        ids = ["T1", "F2", "T5", "F3"]
        proc = _spawn_run_all(tmp_path, ids, jobs=2)
        # wait for the pre-work banner, then let computation begin.
        # The pause must stay well under the post-banner runtime (the
        # shared-tail tables made the fast sweeps sub-second) or the
        # run finishes cleanly before the kill lands.
        banner = proc.stderr.readline()
        assert b"run-all" in banner
        time.sleep(0.15)
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        assert proc.returncode != 0
        _assert_cache_is_clean(tmp_path)

    def test_rerun_after_kill_completes_and_reuses_survivors(self, tmp_path):
        ids = ["T4", "C1", "T1"]
        # a clean first pass seeds T4/C1; then a killed pass must not
        # corrupt them, and the final pass serves them from cache
        seed = _spawn_run_all(tmp_path, ids[:2], jobs=1)
        assert seed.wait(timeout=120) == 0
        seeded = {p.name for p in _assert_cache_is_clean(tmp_path)}

        proc = _spawn_run_all(tmp_path, ids, jobs=2)
        proc.stderr.readline()
        time.sleep(0.15)
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        surviving = {p.name for p in _assert_cache_is_clean(tmp_path)}
        assert seeded <= surviving

        final = _spawn_run_all(tmp_path, ids, jobs=1)
        assert final.wait(timeout=300) == 0
        _assert_cache_is_clean(tmp_path)
