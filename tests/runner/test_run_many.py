"""The batch executor: cache traffic, force/no-cache, errors, obs merging."""

import hashlib

import numpy as np
import pytest

from repro import obs, runner
from repro.experiments.params import FAST_CONFIG

#: Cheap experiments (each well under 100 ms at FAST_CONFIG) so the
#: whole module stays fast; F4/T3 style heavyweights live in benchmarks.
FAST_IDS = ["F1", "T2", "T4", "C1"]


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _entry_digests(report):
    return {
        o.exp_id: hashlib.sha256(
            runner.cache._canonical_json(o.entry).encode()
        ).hexdigest()
        for o in report.outcomes
    }


class TestRunMany:
    def test_cold_then_warm(self, tmp_path):
        cold = runner.run_many(FAST_IDS, config=FAST_CONFIG, cache_dir=tmp_path)
        assert cold.ok
        assert cold.counts() == {runner.STATUS_COMPUTED: len(FAST_IDS)}
        warm = runner.run_many(FAST_IDS, config=FAST_CONFIG, cache_dir=tmp_path)
        assert warm.counts() == {runner.STATUS_CACHED: len(FAST_IDS)}

    def test_two_cold_runs_are_bit_identical(self, tmp_path):
        a = runner.run_many(FAST_IDS, config=FAST_CONFIG, cache_dir=tmp_path / "a")
        b = runner.run_many(FAST_IDS, config=FAST_CONFIG, cache_dir=tmp_path / "b")
        assert _entry_digests(a) == _entry_digests(b)

    def test_warm_results_decode_to_cold_values(self, tmp_path):
        cold = runner.run_many(["F1"], config=FAST_CONFIG, cache_dir=tmp_path)
        warm = runner.run_many(["F1"], config=FAST_CONFIG, cache_dir=tmp_path)
        cold_series = cold.outcomes[0].result()
        warm_series = warm.outcomes[0].result()
        assert set(cold_series) == set(warm_series)
        for key in cold_series:
            np.testing.assert_array_equal(cold_series[key], warm_series[key])

    def test_cache_counters_via_obs(self, tmp_path):
        obs.enable()
        runner.run_many(FAST_IDS, config=FAST_CONFIG, cache_dir=tmp_path)
        snap = obs.snapshot()
        assert snap["counters"]["runner.cache.misses"] == len(FAST_IDS)
        assert snap["counters"]["runner.cache.writes"] == len(FAST_IDS)
        runner.run_many(FAST_IDS, config=FAST_CONFIG, cache_dir=tmp_path)
        snap = obs.snapshot()
        assert snap["counters"]["runner.cache.hits"] == len(FAST_IDS)

    def test_corrupt_entry_recovers_and_counts(self, tmp_path):
        from repro.experiments import registry

        obs.enable()
        runner.run_many(["T2"], config=FAST_CONFIG, cache_dir=tmp_path)
        path = runner.ResultCache(tmp_path).entry_path(
            registry.get("T2"), FAST_CONFIG
        )
        path.write_text("{not json")
        report = runner.run_many(["T2"], config=FAST_CONFIG, cache_dir=tmp_path)
        assert report.counts() == {runner.STATUS_COMPUTED: 1}
        assert obs.snapshot()["counters"]["runner.cache.corrupt"] == 1
        # the recomputed entry is valid again
        warm = runner.run_many(["T2"], config=FAST_CONFIG, cache_dir=tmp_path)
        assert warm.counts() == {runner.STATUS_CACHED: 1}

    def test_force_recomputes_but_rewrites(self, tmp_path):
        runner.run_many(["T2"], config=FAST_CONFIG, cache_dir=tmp_path)
        forced = runner.run_many(
            ["T2"], config=FAST_CONFIG, cache_dir=tmp_path, force=True
        )
        assert forced.counts() == {runner.STATUS_COMPUTED: 1}
        warm = runner.run_many(["T2"], config=FAST_CONFIG, cache_dir=tmp_path)
        assert warm.counts() == {runner.STATUS_CACHED: 1}

    def test_no_cache_leaves_disk_untouched(self, tmp_path):
        report = runner.run_many(
            ["T2"], config=FAST_CONFIG, cache_dir=tmp_path, use_cache=False
        )
        assert report.counts() == {runner.STATUS_COMPUTED: 1}
        assert report.cache_dir is None
        assert not list(tmp_path.iterdir())
        # results still decode without a cache behind them
        assert report.outcomes[0].result()

    def test_unknown_id_fails_fast(self, tmp_path):
        with pytest.raises(KeyError, match="unknown experiment 'NOPE'"):
            runner.run_many(["F1", "NOPE"], cache_dir=tmp_path)
        assert not list(tmp_path.iterdir())  # nothing ran

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            runner.run_many(["F1"], jobs=0, use_cache=False)

    def test_outcomes_follow_requested_order(self, tmp_path):
        ids = ["T4", "F1", "T2"]
        report = runner.run_many(ids, config=FAST_CONFIG, cache_dir=tmp_path)
        assert [o.exp_id for o in report.outcomes] == ids

    def test_error_outcome_survives_batch(self, tmp_path, monkeypatch):
        from repro.experiments import registry

        broken = registry.Experiment(
            "X0", "always fails", lambda config=None: 1 / 0
        )
        monkeypatch.setitem(registry.EXPERIMENTS, "X0", broken)
        report = runner.run_many(
            ["F1", "X0"], config=FAST_CONFIG, cache_dir=tmp_path
        )
        assert not report.ok
        by_id = {o.exp_id: o for o in report.outcomes}
        assert by_id["F1"].ok
        assert by_id["X0"].status == runner.STATUS_ERROR
        assert "ZeroDivisionError" in by_id["X0"].error
        assert by_id["X0"].result() is None

    def test_pool_path_merges_worker_metrics_and_spans(self, tmp_path):
        obs.enable()
        report = runner.run_many(
            FAST_IDS, config=FAST_CONFIG, cache_dir=tmp_path, jobs=2
        )
        assert report.counts() == {runner.STATUS_COMPUTED: len(FAST_IDS)}
        assert report.metrics is not None
        # worker spans arrive tagged and adopted into the parent tracer
        assert len(report.worker_spans) >= len(FAST_IDS)
        roots = obs.trace_roots()
        tagged = [r for r in roots if r.labels.get("worker")]
        assert len(tagged) >= len(FAST_IDS)

    def test_report_to_dict_schema(self, tmp_path):
        report = runner.run_many(["F1"], config=FAST_CONFIG, cache_dir=tmp_path)
        payload = report.to_dict()
        assert payload["schema"] == "repro.runner.report/v1"
        assert payload["counts"] == {"computed": 1}
        assert payload["experiments"][0]["id"] == "F1"
