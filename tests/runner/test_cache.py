"""The content-addressed result cache: digests, round-trips, recovery."""

import hashlib
import json
import pathlib

import numpy as np
import pytest

from repro.experiments import registry
from repro.experiments.checkpoints import Checkpoint
from repro.experiments.params import FAST_CONFIG, PaperConfig
from repro.ioutils import TMP_MARKER
from repro.runner import cache as cache_mod
from repro.runner.cache import (
    CACHE_SCHEMA,
    ResultCache,
    build_entry,
    cache_key,
    code_fingerprint,
    config_digest,
    decode_result,
    encode_result,
)


class TestDigests:
    def test_config_digest_is_stable(self):
        assert config_digest(FAST_CONFIG) == config_digest(FAST_CONFIG)

    def test_config_digest_distinguishes_configs(self):
        assert config_digest(FAST_CONFIG) != config_digest(None)
        tweaked = PaperConfig(kbar=PaperConfig().kbar * 2)
        assert config_digest(tweaked) != config_digest(PaperConfig())

    def test_code_fingerprint_covers_package_source(self):
        import repro

        root = pathlib.Path(repro.__file__).parent
        assert code_fingerprint() == code_fingerprint()  # cached + stable
        assert any(root.rglob("*.py"))

    def test_cache_key_depends_on_id_and_config(self):
        f1 = registry.get("F1")
        t2 = registry.get("T2")
        assert cache_key(f1, FAST_CONFIG) != cache_key(t2, FAST_CONFIG)
        assert cache_key(f1, FAST_CONFIG) != cache_key(f1, None)

    def test_lambda_registered_ids_digest_their_target(self):
        # S5.1's run is a lambda; its cache identity must come from
        # the declared target, not the lambda's qualname
        s51 = registry.get("S5.1")
        name = cache_mod.target_name(s51)
        assert "lambda" not in name
        assert name.endswith("sampling_series")


class TestEncodeDecode:
    def test_series_round_trip(self):
        result = {"x": np.array([1.0, 2.0]), "y": np.array([0.5, 0.25])}
        kind, payload = encode_result(result)
        assert kind == "series"
        back = decode_result(kind, payload)
        assert set(back) == {"x", "y"}
        np.testing.assert_array_equal(back["x"], result["x"])

    def test_checkpoints_round_trip(self):
        rows = [
            Checkpoint("T9", "made up", 1.0, 1.0 + 1e-12, True),
            Checkpoint("T9", "also made up", 2.0, 3.0, False),
        ]
        kind, payload = encode_result(rows)
        assert kind == "checkpoints"
        back = decode_result(kind, payload)
        assert back == rows

    def test_fallback_is_repr(self):
        kind, payload = encode_result(3.5)
        assert kind == "repr"
        assert decode_result(kind, payload) == "3.5"

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown cached result kind"):
            decode_result("pickle", {})


class TestResultCache:
    def test_store_then_load(self, tmp_path):
        exp = registry.get("T2")
        cache = ResultCache(tmp_path)
        stored = cache.store(exp, FAST_CONFIG, exp.run(FAST_CONFIG))
        loaded = cache.load(exp, FAST_CONFIG)
        assert loaded == stored
        assert loaded["schema"] == CACHE_SCHEMA

    def test_miss_on_other_config(self, tmp_path):
        exp = registry.get("T2")
        cache = ResultCache(tmp_path)
        cache.store(exp, FAST_CONFIG, exp.run(FAST_CONFIG))
        assert cache.load(exp, None) is None

    def test_two_cold_runs_write_identical_bytes(self, tmp_path):
        exp = registry.get("T2")
        digests = []
        for sub in ("a", "b"):
            cache = ResultCache(tmp_path / sub)
            cache.store(exp, FAST_CONFIG, exp.run(FAST_CONFIG))
            path = cache.entry_path(exp, FAST_CONFIG)
            digests.append(hashlib.sha256(path.read_bytes()).hexdigest())
        assert digests[0] == digests[1]

    def test_corrupt_entry_is_deleted_and_treated_as_miss(self, tmp_path):
        exp = registry.get("T2")
        cache = ResultCache(tmp_path)
        cache.store(exp, FAST_CONFIG, exp.run(FAST_CONFIG))
        path = cache.entry_path(exp, FAST_CONFIG)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.load(exp, FAST_CONFIG) is None
        assert not path.exists()

    def test_tampered_payload_fails_self_verification(self, tmp_path):
        exp = registry.get("T2")
        cache = ResultCache(tmp_path)
        cache.store(exp, FAST_CONFIG, exp.run(FAST_CONFIG))
        path = cache.entry_path(exp, FAST_CONFIG)
        entry = json.loads(path.read_text())
        entry["result"][0]["measured"] = 123.456  # forged number
        path.write_text(json.dumps(entry))
        assert cache.load(exp, FAST_CONFIG) is None

    def test_sweep_removes_orphaned_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        orphan = tmp_path / "T2" / f"deadbeef{TMP_MARKER}xyz"
        orphan.parent.mkdir(parents=True)
        orphan.write_text("half-written")
        removed = cache.sweep()
        assert orphan in removed
        assert not orphan.exists()

    def test_entry_path_is_filesystem_safe(self, tmp_path):
        exp = registry.get("S5.1")
        path = ResultCache(tmp_path).entry_path(exp, None)
        assert path.parent.name == "S5_1"

    def test_build_entry_matches_store(self, tmp_path):
        exp = registry.get("T2")
        result = exp.run(FAST_CONFIG)
        assert build_entry(exp, FAST_CONFIG, result) == ResultCache(
            tmp_path
        ).store(exp, FAST_CONFIG, result)
