"""The ``run-all`` subcommand and the cache flags on ``run``."""

import json

import pytest

from repro import obs
from repro.cli import main


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


ARGS = ["run-all", "F1", "T2", "T4", "--fast"]


class TestRunAll:
    def test_cold_then_warm_text(self, tmp_path, capsys):
        cache = str(tmp_path)
        assert main(ARGS + ["--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert "3 experiment(s)" in captured.err
        rows = [ln for ln in captured.out.splitlines() if not ln.startswith("--")]
        assert len(rows) == 3 and all("computed" in row for row in rows)
        assert "3 computed" in captured.out
        assert main(ARGS + ["--cache-dir", cache]) == 0
        assert "3 cached" in capsys.readouterr().out

    def test_json_envelope(self, tmp_path, capsys):
        assert main(ARGS + ["--cache-dir", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"_meta", "result"}
        assert payload["_meta"]["schema"] == "repro.runner.report/v1"
        assert payload["_meta"]["counts"] == {"computed": 3}
        assert [row["id"] for row in payload["result"]] == ["F1", "T2", "T4"]

    def test_second_json_run_is_fully_cache_served(self, tmp_path, capsys):
        cache = str(tmp_path)
        assert main(ARGS + ["--cache-dir", cache, "--json"]) == 0
        capsys.readouterr()
        assert main(ARGS + ["--cache-dir", cache, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["_meta"]["counts"] == {"cached": 3}

    def test_unknown_id_exits_2(self, tmp_path, capsys):
        assert main(["run-all", "NOPE", "--cache-dir", str(tmp_path)]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self, tmp_path, capsys):
        code = main(ARGS + ["--cache-dir", str(tmp_path), "--jobs", "0"])
        assert code == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_no_cache_writes_nothing(self, tmp_path, capsys):
        assert main(ARGS + ["--cache-dir", str(tmp_path), "--no-cache"]) == 0
        assert not list(tmp_path.iterdir())

    def test_profile_merges_into_one_report(self, tmp_path, capsys):
        code = main(ARGS + ["--cache-dir", str(tmp_path), "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "metrics" in out


class TestRunCacheFlags:
    def test_run_without_cache_dir_never_touches_disk(self, tmp_path, capsys):
        assert main(["run", "F1", "--fast", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "cache" not in payload["_meta"]

    def test_run_miss_then_hit(self, tmp_path, capsys):
        cache = str(tmp_path)
        args = ["run", "T2", "--fast", "--json", "--cache-dir", cache]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["_meta"]["cache"] == "miss"
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["_meta"]["cache"] == "hit"
        assert second["result"] == first["result"]

    def test_run_force_recomputes(self, tmp_path, capsys):
        cache = str(tmp_path)
        base = ["run", "T2", "--fast", "--json", "--cache-dir", cache]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--force"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["_meta"]["cache"] == "miss"
