"""The bounded LRU used by the model-layer value caches."""

from repro.caching import ROUND_DECIMALS, BoundedCache


class TestBoundedCache:
    def test_round_trip(self):
        cache = BoundedCache()
        cache.put(200.0, 1.5)
        assert cache.get(200.0) == 1.5
        assert 200.0 in cache
        assert cache.get(999.0) is None

    def test_float_keys_are_rounded(self):
        cache = BoundedCache()
        eps = 10 ** -(ROUND_DECIMALS + 3)
        cache.put(1.0, "a")
        assert cache.get(1.0 + eps) == "a"  # same key after rounding

    def test_eviction_is_lru(self):
        cache = BoundedCache(maxsize=2)
        cache.put(1.0, "a")
        cache.put(2.0, "b")
        cache.get(1.0)  # refresh 1.0 -> 2.0 is now least recent
        cache.put(3.0, "c")
        assert cache.get(2.0) is None
        assert cache.get(1.0) == "a"
        assert len(cache) == 2

    def test_size_never_exceeds_maxsize(self):
        cache = BoundedCache(maxsize=8)
        for i in range(100):
            cache.put(float(i), i)
        assert len(cache) == 8
        assert cache.maxsize == 8

    def test_clear(self):
        cache = BoundedCache()
        cache.put(1.0, "a")
        cache.clear()
        assert len(cache) == 0
        assert cache.get(1.0) is None


class TestModelCachesAreBounded:
    def test_variable_load_capacity_caches(self):
        from repro.loads import PoissonLoad
        from repro.models.variable_load import VariableLoadModel
        from repro.utility import AdaptiveUtility

        model = VariableLoadModel(PoissonLoad(12.0), AdaptiveUtility())
        for capacity in range(5, 40):
            model.best_effort(float(capacity))
        assert len(model._b_cache) <= model._b_cache.maxsize

    def test_retrying_fixed_point_cache(self):
        from repro.loads import PoissonLoad
        from repro.models.retrying import RetryingModel
        from repro.utility import AdaptiveUtility

        model = RetryingModel(PoissonLoad(12.0), AdaptiveUtility())
        value = model.reservation(24.0)
        assert value == model.reservation(24.0)  # cache hit, same answer
        assert len(model._fixed_point_cache) >= 1
