"""Golden-value pins for the paper figures (CI quality gate).

``tests/golden/figures.json`` stores δ(C), Δ(C) and γ(p) at canonical
grid points per figure, generated from the scalar reference path at
the paper's parameters (k̄ = 100, κ = 0.62086, z = 3).  Every quantity
is asserted twice — once through the scalar API and once through the
vectorised batch API — so CI catches a regression in either path *and*
any drift between them.  Regenerate deliberately with

    PYTHONPATH=src python tests/golden/generate.py

Failure messages name the figure and the grid point so a red CI run
points straight at the number that moved.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.continuum import (
    RigidExponentialContinuum,
    retrying_rigid_ratio,
    sampling_rigid_ratio,
)
from repro.experiments.params import DEFAULT_CONFIG
from repro.models import (
    RetryingModel,
    SamplingModel,
    VariableLoadModel,
    WelfareModel,
)

GOLDEN = pathlib.Path(__file__).parent / "golden" / "figures.json"
FIGURES = {"figure2": "poisson", "figure3": "exponential", "figure4": "algebraic"}

#: Relative agreement demanded of both paths against the stored values.
RTOL = 1e-7

#: Absolute slack for near-zero gaps: the gap solvers resolve roots to
#: an absolute x-tolerance, so gaps in the 1e-8 range carry absolute
#: (not relative) error; 1e-9 is comfortably above the solver floor
#: and far below any value the figures actually plot.
ATOL = 1e-9


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


def _models(load_name):
    cfg = DEFAULT_CONFIG
    return VariableLoadModel(cfg.load(load_name), cfg.utility("adaptive"))


def _assert_pointwise(figure, quantity, grid, got, want, path):
    got = np.asarray(got, dtype=float)
    want = np.asarray(want, dtype=float)
    ok = np.isclose(got, want, rtol=RTOL, atol=ATOL, equal_nan=True)
    if not np.all(ok):
        i = int(np.flatnonzero(~ok)[0])
        raise AssertionError(
            f"{figure} {quantity} via {path} diverged from golden at "
            f"grid point {grid[i]!r}: got {got[i]!r}, expected {want[i]!r} "
            f"(rtol {RTOL:g}, atol {ATOL:g})"
        )


@pytest.mark.parametrize("figure", sorted(FIGURES))
def test_delta_scalar_and_batch(figure, golden):
    entry = golden[figure]
    caps = entry["capacity"]
    model = _models(entry["load"])
    scalar = [model.performance_gap(float(c)) for c in caps]
    _assert_pointwise(figure, "delta(C)", caps, scalar, entry["delta"], "scalar")
    batch = _models(entry["load"]).performance_gap_batch(np.asarray(caps))
    _assert_pointwise(figure, "delta(C)", caps, batch, entry["delta"], "batch")


@pytest.mark.parametrize("figure", sorted(FIGURES))
def test_bandwidth_gap_scalar_and_batch(figure, golden):
    entry = golden[figure]
    caps = entry["capacity"]
    model = _models(entry["load"])
    scalar = [model.bandwidth_gap(float(c)) for c in caps]
    _assert_pointwise(figure, "Delta(C)", caps, scalar, entry["Delta"], "scalar")
    batch = _models(entry["load"]).bandwidth_gap_batch(np.asarray(caps))
    _assert_pointwise(figure, "Delta(C)", caps, batch, entry["Delta"], "batch")


@pytest.mark.parametrize("figure", sorted(FIGURES))
def test_gamma_curve(figure, golden):
    entry = golden[figure]
    prices = entry["price"]
    want = [np.nan if g is None else g for g in entry["gamma"]]
    welfare = WelfareModel(_models(entry["load"]))
    curve = welfare.ratio_curve(prices)
    _assert_pointwise(figure, "gamma(p)", prices, curve["gamma"], want, "ratio_curve")
    batch = welfare.equalizing_ratio_batch(np.asarray(prices))
    _assert_pointwise(figure, "gamma(p)", prices, batch, want, "batch")


@pytest.mark.parametrize("quantity", ["best_effort", "delta", "Delta"])
def test_algebraic_shared_tables_scalar_and_batch(quantity, golden):
    """Pin the shared zeta-table / polynomial-tail path end to end.

    The capacities straddle the planner's series levels (TAIL at
    n = 512 below ~200, n = 1024 above), so these pins exercise the
    memoised moment-tail tables, the certified Maclaurin polynomial
    and the level-grouping of the batch path — on the heavy-tailed
    algebraic load where a regression in any of them moves B(C) far
    beyond the 1e-7 pin.
    """
    entry = golden["algebraic_shared_tables"]
    caps = entry["capacity"]
    model = _models(entry["load"])
    scalar_fn = {
        "best_effort": model.best_effort,
        "delta": model.performance_gap,
        "Delta": model.bandwidth_gap,
    }[quantity]
    scalar = [scalar_fn(float(c)) for c in caps]
    _assert_pointwise(
        "algebraic_shared_tables", quantity, caps, scalar, entry[quantity], "scalar"
    )
    fresh = _models(entry["load"])
    batch_fn = {
        "best_effort": fresh.best_effort_batch,
        "delta": fresh.performance_gap_batch,
        "Delta": fresh.bandwidth_gap_batch,
    }[quantity]
    batch = batch_fn(np.asarray(caps))
    _assert_pointwise(
        "algebraic_shared_tables", quantity, caps, batch, entry[quantity], "batch"
    )


def test_continuum_gamma_scalar_and_batch(golden):
    entry = golden["continuum_rigid_exp"]
    prices = entry["price"]
    cont = RigidExponentialContinuum(1.0)
    scalar = [cont.equalizing_ratio(float(p)) for p in prices]
    _assert_pointwise(
        "continuum_rigid_exp", "gamma(p)", prices, scalar, entry["gamma"], "scalar"
    )
    batch = cont.equalizing_ratio_batch(np.asarray(prices))
    _assert_pointwise(
        "continuum_rigid_exp", "gamma(p)", prices, batch, entry["gamma"], "batch"
    )


def _sampling_model(entry):
    cfg = DEFAULT_CONFIG
    return SamplingModel(
        cfg.load(entry["load"]), cfg.utility("adaptive"), entry["samples"]
    )


def test_sampling_T4_delta_scalar_and_batch(golden):
    entry = golden["sampling_T4"]
    caps = entry["capacity"]
    model = _sampling_model(entry)
    scalar = [model.performance_gap(float(c)) for c in caps]
    _assert_pointwise("sampling_T4", "delta(C)", caps, scalar, entry["delta"], "scalar")
    batch = _sampling_model(entry).performance_gap_batch(np.asarray(caps))
    _assert_pointwise("sampling_T4", "delta(C)", caps, batch, entry["delta"], "batch")


def test_sampling_T4_bandwidth_gap_scalar_and_batch(golden):
    entry = golden["sampling_T4"]
    caps = entry["capacity"]
    model = _sampling_model(entry)
    scalar = [model.bandwidth_gap(float(c)) for c in caps]
    _assert_pointwise("sampling_T4", "Delta(C)", caps, scalar, entry["Delta"], "scalar")
    batch = _sampling_model(entry).bandwidth_gap_batch(np.asarray(caps))
    _assert_pointwise("sampling_T4", "Delta(C)", caps, batch, entry["Delta"], "batch")


def test_sampling_T4_closed_form_ratios(golden):
    entry = golden["sampling_T4"]
    assert sampling_rigid_ratio(DEFAULT_CONFIG.z, 3) == pytest.approx(
        entry["rigid_ratio_z3_s3"], rel=RTOL
    )
    assert sampling_rigid_ratio(2.1, 3) == pytest.approx(
        entry["rigid_ratio_z2p1_s3"], rel=RTOL
    )


def _retrying_model(entry):
    cfg = DEFAULT_CONFIG
    return RetryingModel(
        cfg.load(entry["load"]), cfg.utility("adaptive"), alpha=entry["alpha"]
    )


@pytest.mark.parametrize("quantity", ["best_effort", "reservation", "delta"])
def test_retrying_T5_curves_scalar_and_batch(quantity, golden):
    entry = golden["retrying_T5"]
    caps = entry["capacity"]
    model = _retrying_model(entry)
    scalar_fn = {
        "best_effort": model.best_effort,
        "reservation": model.reservation,
        "delta": model.performance_gap,
    }[quantity]
    scalar = [scalar_fn(float(c)) for c in caps]
    _assert_pointwise(
        "retrying_T5", quantity, caps, scalar, entry[quantity], "scalar"
    )
    fresh = _retrying_model(entry)
    grid = np.asarray(caps)
    batch = {
        "best_effort": lambda: fresh.best_effort_batch(grid),
        "reservation": lambda: fresh.reservation_batch(grid),
        # delta~ = R~ - B, unclipped, exactly as the scalar path defines it
        "delta": lambda: fresh.reservation_batch(grid) - fresh.best_effort_batch(grid),
    }[quantity]()
    _assert_pointwise("retrying_T5", quantity, caps, batch, entry[quantity], "batch")


def test_retrying_T5_closed_form_ratios(golden):
    entry = golden["retrying_T5"]
    assert retrying_rigid_ratio(DEFAULT_CONFIG.z, entry["alpha"]) == pytest.approx(
        entry["rigid_ratio"], rel=RTOL
    )
    assert retrying_rigid_ratio(2.1, entry["alpha"]) == pytest.approx(
        entry["rigid_ratio_z2p1"], rel=RTOL
    )


@pytest.mark.parametrize("quantity", ["best_effort", "reservation", "gap"])
def test_meanfield_fluid_surfaces(quantity, golden):
    # the fluid solve + Gauss-Hermite diffusion functionals are fully
    # deterministic, so the engine must reproduce its pins bit-for-bit
    # (within RTOL) on every machine
    from repro.meanfield import MeanFieldSimulator
    from repro.simulation import BirthDeathProcess, Link

    entry = golden["meanfield"]
    caps = np.asarray(entry["capacity"], dtype=float)
    cfg = DEFAULT_CONFIG
    sim = MeanFieldSimulator(
        BirthDeathProcess(cfg.load(entry["load"])), Link(cfg.kbar)
    )
    adaptive = cfg.utility("adaptive")
    batch = {
        "best_effort": lambda: sim.best_effort_batch(adaptive, caps),
        "reservation": lambda: sim.reservation_batch(adaptive, caps),
        "gap": lambda: sim.gap_batch(adaptive, caps),
    }[quantity]()
    _assert_pointwise("meanfield", quantity, caps, batch, entry[quantity], "batch")


def test_traces_replay_pins(golden):
    # seeded workload generation + the occupancy sweep + the paired
    # estimators are all deterministic, so a fresh replay must land on
    # the pinned B-hat/R-hat/gap to rtol 1e-7 and the exact flow count
    from repro.traces.summary import SPEC_KEYS, replay_summary

    entry = golden["traces"]
    assert entry["replays"], "golden traces section is empty"
    for pinned in entry["replays"]:
        spec = {key: pinned[key] for key in SPEC_KEYS}
        fresh = replay_summary(spec)
        label = f"traces:{pinned['workload']}"
        assert fresh["flows"] == pinned["flows"], (
            f"{label}: flow count drifted — got {fresh['flows']}, "
            f"pinned {pinned['flows']}"
        )
        for quantity in ("best_effort", "reservation", "gap", "mean_census"):
            _assert_pointwise(
                label,
                quantity,
                [spec["seed"]],
                [fresh[quantity]],
                [pinned[quantity]],
                "replay",
            )
