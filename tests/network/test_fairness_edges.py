"""Edge cases of max-min filling: weights, slack links, degenerate counts."""

import pytest

from repro.loads import PoissonLoad
from repro.network import (
    NetworkTopology,
    Route,
    allocation_is_feasible,
    max_min_allocation,
)
from repro.utility import AdaptiveUtility


def make_topology(capacities, route_links, demands=None):
    routes = [
        Route(
            name,
            tuple(links),
            PoissonLoad(5.0),
            AdaptiveUtility(),
            demand=(demands or {}).get(name, 1.0),
        )
        for name, links in route_links.items()
    ]
    return NetworkTopology(capacities, routes)


class TestWeightedFilling:
    def test_demands_scale_the_common_level(self):
        # 2 flows of demand 3 and 3 flows of demand 1 on capacity 18:
        # level = 18 / (2*3 + 3*1) = 2 -> shares 6 and 2
        topo = make_topology(
            {"l": 18.0}, {"big": ("l",), "small": ("l",)}, demands={"big": 3.0}
        )
        shares = max_min_allocation({"big": 2, "small": 3}, topo)
        assert shares["big"] == pytest.approx(6.0)
        assert shares["small"] == pytest.approx(2.0)
        assert shares["big"] / shares["small"] == pytest.approx(3.0)

    def test_weighted_allocation_saturates_the_link(self):
        topo = make_topology(
            {"l": 18.0}, {"big": ("l",), "small": ("l",)}, demands={"big": 3.0}
        )
        counts = {"big": 2, "small": 3}
        shares = max_min_allocation(counts, topo)
        usage = sum(counts[name] * shares[name] for name in counts)
        assert usage == pytest.approx(18.0)
        assert allocation_is_feasible(counts, shares, topo)


class TestDegenerateCounts:
    def test_all_zero_counts_yield_all_zero_shares(self):
        topo = make_topology({"l": 10.0}, {"a": ("l",), "b": ("l",)})
        shares = max_min_allocation({"a": 0, "b": 0}, topo)
        assert shares == {"a": 0.0, "b": 0.0}

    def test_empty_counts_mapping_is_all_zero(self):
        topo = make_topology({"l": 10.0}, {"a": ("l",)})
        assert max_min_allocation({}, topo) == {"a": 0.0}

    def test_single_flow_takes_the_whole_link(self):
        topo = make_topology({"l": 7.0}, {"a": ("l",), "b": ("l",)})
        shares = max_min_allocation({"a": 1}, topo)
        assert shares["a"] == pytest.approx(7.0)
        assert shares["b"] == 0.0

    def test_repeated_calls_do_not_mutate_the_topology(self):
        # progressive filling works on a scratch copy of the capacity
        # map; a second identical call must see pristine capacities
        topo = make_topology({"l": 12.0}, {"a": ("l",)})
        first = max_min_allocation({"a": 4}, topo)
        second = max_min_allocation({"a": 4}, topo)
        assert first == second
        assert topo.capacities == {"l": 12.0}


class TestUntouchedLinks:
    def test_idle_link_gets_no_charge(self):
        # route a only crosses l1; l2's capacity must stay untouched
        topo = make_topology({"l1": 4.0, "l2": 100.0}, {"a": ("l1", "l2")})
        shares = max_min_allocation({"a": 8}, topo)
        assert shares["a"] == pytest.approx(0.5)

    def test_second_bottleneck_binds_after_the_first_freeze(self):
        # x saturates l1 together with thru; y then fills l2 alone
        topo = make_topology(
            {"l1": 6.0, "l2": 6.0},
            {"thru": ("l1", "l2"), "x": ("l1",), "y": ("l2",)},
        )
        counts = {"thru": 2, "x": 4, "y": 1}
        shares = max_min_allocation(counts, topo)
        assert shares["thru"] == pytest.approx(1.0)
        assert shares["x"] == pytest.approx(1.0)
        assert shares["y"] == pytest.approx(4.0)
        assert allocation_is_feasible(counts, shares, topo)


class TestFeasibilityCheck:
    def test_overcommitted_shares_are_flagged(self):
        topo = make_topology({"l": 10.0}, {"a": ("l",)})
        assert not allocation_is_feasible({"a": 3}, {"a": 4.0}, topo)

    def test_exactly_full_is_feasible(self):
        topo = make_topology({"l": 10.0}, {"a": ("l",)})
        assert allocation_is_feasible({"a": 5}, {"a": 2.0}, topo)
