"""Tests for max-min fair allocation."""

import pytest

from repro.errors import ModelError
from repro.loads import PoissonLoad
from repro.network import (
    NetworkTopology,
    Route,
    allocation_is_feasible,
    max_min_allocation,
)
from repro.utility import AdaptiveUtility


def make_topology(capacities, route_links):
    routes = [
        Route(name, tuple(links), PoissonLoad(5.0), AdaptiveUtility())
        for name, links in route_links.items()
    ]
    return NetworkTopology(capacities, routes)


class TestSingleLink:
    def test_equal_split_reduces_to_paper_model(self):
        topo = make_topology({"l": 12.0}, {"r": ("l",)})
        shares = max_min_allocation({"r": 4}, topo)
        assert shares["r"] == pytest.approx(3.0)

    def test_zero_flows_zero_share(self):
        topo = make_topology({"l": 12.0}, {"r": ("l",)})
        assert max_min_allocation({"r": 0}, topo)["r"] == 0.0

    def test_two_classes_share_equally(self):
        topo = make_topology({"l": 12.0}, {"a": ("l",), "b": ("l",)})
        shares = max_min_allocation({"a": 2, "b": 4}, topo)
        assert shares["a"] == shares["b"] == pytest.approx(2.0)


class TestParkingLot:
    """The classic multi-link fairness example."""

    def setup_method(self):
        self.topo = make_topology(
            {"l1": 10.0, "l2": 10.0},
            {"long": ("l1", "l2"), "x1": ("l1",), "x2": ("l2",)},
        )

    def test_long_route_gets_bottleneck_share(self):
        shares = max_min_allocation({"long": 5, "x1": 5, "x2": 5}, self.topo)
        # every link carries 10 flows over capacity 10 -> all shares 1
        assert shares["long"] == pytest.approx(1.0)
        assert shares["x1"] == pytest.approx(1.0)

    def test_cross_traffic_takes_the_slack(self):
        shares = max_min_allocation({"long": 5, "x1": 15, "x2": 1}, self.topo)
        # l1 is the bottleneck: 20 flows over 10 -> level 0.5 for long+x1
        assert shares["long"] == pytest.approx(0.5)
        assert shares["x1"] == pytest.approx(0.5)
        # x2 then fills l2's slack: (10 - 5*0.5)/1 = 7.5
        assert shares["x2"] == pytest.approx(7.5)

    def test_feasibility_always(self):
        for counts in ({"long": 7, "x1": 3, "x2": 12}, {"long": 1, "x1": 0, "x2": 40}):
            shares = max_min_allocation(counts, self.topo)
            assert allocation_is_feasible(counts, shares, self.topo)

    def test_max_min_property(self):
        # no route's share can be raised without lowering a route with
        # an equal-or-smaller share: check the bottleneck link is full
        counts = {"long": 5, "x1": 15, "x2": 1}
        shares = max_min_allocation(counts, self.topo)
        usage_l1 = 5 * shares["long"] + 15 * shares["x1"]
        assert usage_l1 == pytest.approx(10.0)


class TestValidation:
    def test_unknown_route_rejected(self):
        topo = make_topology({"l": 10.0}, {"r": ("l",)})
        with pytest.raises(ModelError):
            max_min_allocation({"ghost": 3}, topo)

    def test_negative_count_rejected(self):
        topo = make_topology({"l": 10.0}, {"r": ("l",)})
        with pytest.raises(ModelError):
            max_min_allocation({"r": -1}, topo)
