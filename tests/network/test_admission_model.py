"""Tests for network admission and the Monte Carlo comparison."""

import pytest

from repro.errors import ModelError
from repro.loads import GeometricLoad, PoissonLoad
from repro.network import (
    NetworkComparison,
    NetworkTopology,
    Route,
    admit_flows,
    greedy_admit_flows,
)
from repro.utility import AdaptiveUtility, RigidUtility


def parking_lot(load_mean=15.0, capacity=40.0, utility=None):
    u = utility or AdaptiveUtility()
    return NetworkTopology(
        {"l1": capacity, "l2": capacity, "l3": capacity},
        [
            Route("long", ("l1", "l2", "l3"), GeometricLoad.from_mean(load_mean), u),
            Route("x1", ("l1",), GeometricLoad.from_mean(load_mean), u),
            Route("x2", ("l2",), GeometricLoad.from_mean(load_mean), u),
            Route("x3", ("l3",), GeometricLoad.from_mean(load_mean), u),
        ],
    )


class TestAdmitFlows:
    def test_respects_link_capacities(self):
        topo = parking_lot(capacity=10.0)
        admitted = admit_flows({"long": 20, "x1": 20, "x2": 20, "x3": 20}, topo)
        for link in topo.link_names:
            usage = sum(
                admitted[name] for name in topo.routes_through(link)
            )
            assert usage <= topo.capacities[link] + 1e-9

    def test_admits_everyone_when_room(self):
        topo = parking_lot(capacity=100.0)
        counts = {"long": 5, "x1": 5, "x2": 5, "x3": 5}
        assert admit_flows(counts, topo) == counts

    def test_maximises_total_admitted(self):
        # one long flow uses three links' worth; the ILP must prefer
        # cross traffic when the links are scarce
        topo = parking_lot(capacity=10.0)
        admitted = admit_flows({"long": 10, "x1": 10, "x2": 10, "x3": 10}, topo)
        assert admitted["x1"] == admitted["x2"] == admitted["x3"] == 10
        assert admitted["long"] == 0

    def test_weights_flip_the_preference(self):
        topo = parking_lot(capacity=10.0)
        admitted = admit_flows(
            {"long": 10, "x1": 10, "x2": 10, "x3": 10},
            topo,
            weights={"long": 10.0},
        )
        assert admitted["long"] == 10

    def test_empty_census(self):
        topo = parking_lot()
        assert admit_flows({}, topo) == {name: 0 for name in topo.route_names}

    def test_greedy_never_violates_capacity(self):
        topo = parking_lot(capacity=10.0)
        admitted = greedy_admit_flows(
            {"long": 20, "x1": 3, "x2": 20, "x3": 0}, topo
        )
        for link in topo.link_names:
            usage = sum(admitted[name] for name in topo.routes_through(link))
            assert usage <= topo.capacities[link] + 1e-9

    def test_ilp_at_least_as_many_as_greedy(self):
        topo = parking_lot(capacity=12.0)
        counts = {"long": 9, "x1": 7, "x2": 11, "x3": 2}
        total_ilp = sum(admit_flows(counts, topo).values())
        total_greedy = sum(greedy_admit_flows(counts, topo).values())
        assert total_ilp >= total_greedy


class TestNetworkComparison:
    def test_reservation_dominates_best_effort(self):
        cmp = NetworkComparison(parking_lot(capacity=30.0), draws=120, seed=3)
        assert cmp.performance_gap() >= -0.01  # MC noise allowance

    def test_reproducible_with_seed(self):
        t = parking_lot()
        a = NetworkComparison(t, draws=60, seed=5).best_effort().normalised
        b = NetworkComparison(t, draws=60, seed=5).best_effort().normalised
        assert a == b

    def test_scaling_raises_best_effort(self):
        cmp = NetworkComparison(parking_lot(capacity=30.0), draws=80, seed=7)
        assert cmp.best_effort(scale=2.0).normalised > cmp.best_effort().normalised

    def test_bandwidth_gap_factor_closes_the_gap(self):
        cmp = NetworkComparison(
            parking_lot(capacity=30.0, utility=RigidUtility(1.0)), draws=80, seed=9
        )
        factor = cmp.bandwidth_gap_factor()
        assert factor > 1.0
        scaled_be = cmp.best_effort(scale=factor).normalised
        assert scaled_be == pytest.approx(cmp.reservation().normalised, abs=0.01)

    def test_admitted_flows_guaranteed_unit_share(self):
        # every admitted flow's share is >= 1 by construction
        from repro.network import admit_flows, max_min_allocation

        topo = parking_lot(capacity=10.0)
        counts = {"long": 9, "x1": 14, "x2": 3, "x3": 8}
        admitted = admit_flows(counts, topo)
        shares = max_min_allocation(admitted, topo)
        for name, n in admitted.items():
            if n > 0:
                assert shares[name] >= 1.0 - 1e-9

    def test_admission_ablation_runs(self):
        cmp = NetworkComparison(parking_lot(capacity=20.0), draws=40, seed=11)
        gap = cmp.admission_optimality_gap()
        assert abs(gap) < 0.2  # small either way; just a sanity bound

    def test_invalid_construction(self):
        with pytest.raises(ModelError):
            NetworkComparison(parking_lot(), draws=0)
        with pytest.raises(ModelError):
            NetworkComparison(parking_lot(), admission="magic")


class TestHeavyTailNetwork:
    def test_heavy_cross_traffic_hurts_the_long_route(self):
        from repro.loads import AlgebraicLoad

        u = AdaptiveUtility()
        steady = NetworkTopology(
            {"l1": 30.0, "l2": 30.0},
            [
                Route("long", ("l1", "l2"), PoissonLoad(10.0), u),
                Route("x1", ("l1",), PoissonLoad(10.0), u),
            ],
        )
        heavy = NetworkTopology(
            {"l1": 30.0, "l2": 30.0},
            [
                Route("long", ("l1", "l2"), PoissonLoad(10.0), u),
                Route("x1", ("l1",), AlgebraicLoad.from_mean(3.0, 10.0), u),
            ],
        )
        be_steady = NetworkComparison(steady, draws=300, seed=13).best_effort()
        be_heavy = NetworkComparison(heavy, draws=300, seed=13).best_effort()
        # the heavy-tailed class hurts *itself*: same mean offered load,
        # but V(k) = k pi(C/k) is concave in k, so census variance cuts
        # the delivered utility (the paper's "best effort performance
        # degrades under the wider variance in load")
        assert be_heavy.per_route["x1"] < 0.85 * be_steady.per_route["x1"]
        # while the long route, sharing l1 with it, is *not* hurt on
        # average — heavy tails mean frequent underloads that adaptive
        # flows exploit (Section 3.3's underload observation)
        assert be_heavy.per_route["long"] > 0.95 * be_steady.per_route["long"]
