"""Tests for network topologies."""

import networkx as nx
import pytest

from repro.errors import ModelError
from repro.loads import PoissonLoad
from repro.network import NetworkTopology, Route
from repro.utility import AdaptiveUtility


def simple_route(name="r", links=("l1",), mean=5.0):
    return Route(name, tuple(links), PoissonLoad(mean), AdaptiveUtility())


class TestRoute:
    def test_requires_links(self):
        with pytest.raises(ModelError):
            Route("r", (), PoissonLoad(5.0), AdaptiveUtility())

    def test_rejects_repeated_link(self):
        with pytest.raises(ModelError):
            Route("r", ("l1", "l1"), PoissonLoad(5.0), AdaptiveUtility())


class TestNetworkTopology:
    def test_basic_accessors(self):
        topo = NetworkTopology(
            {"l1": 10.0, "l2": 20.0},
            [simple_route("a", ("l1",)), simple_route("b", ("l1", "l2"))],
        )
        assert topo.link_names == ("l1", "l2")
        assert topo.route_names == ("a", "b")
        assert topo.routes_through("l1") == ("a", "b")
        assert topo.routes_through("l2") == ("b",)

    def test_validation(self):
        with pytest.raises(ModelError):
            NetworkTopology({}, [simple_route()])
        with pytest.raises(ModelError):
            NetworkTopology({"l1": 0.0}, [simple_route()])
        with pytest.raises(ModelError):
            NetworkTopology({"l1": 10.0}, [])
        with pytest.raises(ModelError):
            NetworkTopology({"l1": 10.0}, [simple_route(links=("missing",))])
        with pytest.raises(ModelError):
            NetworkTopology(
                {"l1": 10.0}, [simple_route("same"), simple_route("same")]
            )

    def test_scaled(self):
        topo = NetworkTopology({"l1": 10.0}, [simple_route()])
        bigger = topo.scaled(2.5)
        assert bigger.capacities["l1"] == 25.0
        with pytest.raises(ModelError):
            topo.scaled(0.0)

    def test_unknown_link_query(self):
        topo = NetworkTopology({"l1": 10.0}, [simple_route()])
        with pytest.raises(ModelError):
            topo.routes_through("nope")


class TestFromGraph:
    def test_builds_links_from_edges(self):
        g = nx.Graph()
        g.add_edge("a", "b", capacity=10.0)
        g.add_edge("b", "c", capacity=20.0)
        topo = NetworkTopology.from_graph(
            g,
            paths={"r1": ["a", "b", "c"], "r2": ["b", "c"]},
            loads={"r1": PoissonLoad(3.0), "r2": PoissonLoad(4.0)},
            utilities={"r1": AdaptiveUtility(), "r2": AdaptiveUtility()},
        )
        assert set(topo.capacities) == {"a-b", "b-c"}
        assert topo.routes["r1"].links == ("a-b", "b-c")
        assert topo.routes["r2"].links == ("b-c",)

    def test_missing_edge_rejected(self):
        g = nx.Graph()
        g.add_edge("a", "b", capacity=10.0)
        with pytest.raises(ModelError):
            NetworkTopology.from_graph(
                g,
                paths={"r": ["a", "c"]},
                loads={"r": PoissonLoad(3.0)},
                utilities={"r": AdaptiveUtility()},
            )

    def test_missing_capacity_attr_rejected(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(ModelError):
            NetworkTopology.from_graph(
                g,
                paths={"r": ["a", "b"]},
                loads={"r": PoissonLoad(3.0)},
                utilities={"r": AdaptiveUtility()},
            )
