"""Property-based tests: max-min fairness on random topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loads import PoissonLoad
from repro.network import (
    NetworkTopology,
    Route,
    admit_flows,
    allocation_is_feasible,
    max_min_allocation,
)
from repro.utility import AdaptiveUtility

N_LINKS = 4


@st.composite
def random_network_case(draw):
    """A random topology over N_LINKS links plus a random census."""
    capacities = {
        f"l{i}": draw(st.floats(min_value=2.0, max_value=50.0))
        for i in range(N_LINKS)
    }
    n_routes = draw(st.integers(min_value=1, max_value=5))
    routes = []
    counts = {}
    for r in range(n_routes):
        size = draw(st.integers(min_value=1, max_value=N_LINKS))
        links = draw(
            st.permutations([f"l{i}" for i in range(N_LINKS)]).map(
                lambda p, s=size: tuple(p[:s])
            )
        )
        name = f"r{r}"
        routes.append(Route(name, links, PoissonLoad(5.0), AdaptiveUtility()))
        counts[name] = draw(st.integers(min_value=0, max_value=30))
    return NetworkTopology(capacities, routes), counts


class TestMaxMinProperties:
    @given(case=random_network_case())
    @settings(max_examples=120, deadline=None)
    def test_always_feasible(self, case):
        topology, counts = case
        shares = max_min_allocation(counts, topology)
        assert allocation_is_feasible(counts, shares, topology)

    @given(case=random_network_case())
    @settings(max_examples=120, deadline=None)
    def test_shares_positive_for_active_routes(self, case):
        topology, counts = case
        shares = max_min_allocation(counts, topology)
        for name, k in counts.items():
            if k > 0:
                assert shares[name] > 0.0
            else:
                assert shares[name] == 0.0

    @given(case=random_network_case())
    @settings(max_examples=80, deadline=None)
    def test_every_active_route_hits_a_saturated_link(self, case):
        # max-min optimality certificate: each route's share is pinned
        # by some fully-used link it traverses
        topology, counts = case
        shares = max_min_allocation(counts, topology)
        usage = {
            link: sum(
                counts.get(name, 0) * shares[name]
                for name in topology.routes_through(link)
            )
            for link in topology.link_names
        }
        for name, k in counts.items():
            if k == 0:
                continue
            saturated = any(
                usage[link] >= topology.capacities[link] * (1.0 - 1e-6)
                for link in topology.routes[name].links
            )
            assert saturated, (name, shares, usage)

    @given(case=random_network_case())
    @settings(max_examples=60, deadline=None)
    def test_adding_flows_never_raises_own_share(self, case):
        topology, counts = case
        target = next((n for n, k in counts.items() if k > 0), None)
        if target is None:
            return
        before = max_min_allocation(counts, topology)[target]
        heavier = dict(counts)
        heavier[target] += 5
        after = max_min_allocation(heavier, topology)[target]
        assert after <= before + 1e-9

    @given(case=random_network_case(), factor=st.floats(min_value=1.1, max_value=4.0))
    @settings(max_examples=60, deadline=None)
    def test_scaling_capacity_scales_shares(self, case, factor):
        # max-min allocation is positively homogeneous in capacities
        topology, counts = case
        base = max_min_allocation(counts, topology)
        scaled = max_min_allocation(counts, topology.scaled(factor))
        for name in topology.route_names:
            assert scaled[name] == pytest.approx(factor * base[name], rel=1e-9)


class TestAdmissionProperties:
    @given(case=random_network_case())
    @settings(max_examples=40, deadline=None)
    def test_ilp_respects_capacity_and_bounds(self, case):
        topology, counts = case
        admitted = admit_flows(counts, topology)
        for name, n in admitted.items():
            assert 0 <= n <= counts.get(name, 0)
        for link in topology.link_names:
            usage = sum(admitted[name] for name in topology.routes_through(link))
            assert usage <= topology.capacities[link] + 1e-6

    @given(case=random_network_case())
    @settings(max_examples=40, deadline=None)
    def test_admitted_flows_get_unit_share(self, case):
        topology, counts = case
        admitted = admit_flows(counts, topology)
        if sum(admitted.values()) == 0:
            return
        shares = max_min_allocation(admitted, topology)
        for name, n in admitted.items():
            if n > 0:
                assert shares[name] >= 1.0 - 1e-6
