"""Tests for heterogeneous per-flow demands on the network."""

import pytest

from repro.errors import ModelError
from repro.extensions import ScaledUtility
from repro.loads import PoissonLoad
from repro.network import (
    NetworkComparison,
    NetworkTopology,
    Route,
    admit_flows,
    allocation_is_feasible,
    greedy_admit_flows,
    max_min_allocation,
)
from repro.utility import AdaptiveUtility


def two_class_link(capacity=30.0):
    return NetworkTopology(
        {"l": capacity},
        [
            Route("thin", ("l",), PoissonLoad(10.0), AdaptiveUtility(), demand=1.0),
            Route(
                "fat",
                ("l",),
                PoissonLoad(5.0),
                ScaledUtility(AdaptiveUtility(), 2.0),
                demand=2.0,
            ),
        ],
    )


class TestWeightedMaxMin:
    def test_shares_proportional_to_demand(self):
        topo = two_class_link(30.0)
        shares = max_min_allocation({"thin": 10, "fat": 5}, topo)
        # common level 30/(10*1 + 5*2) = 1.5
        assert shares["thin"] == pytest.approx(1.5)
        assert shares["fat"] == pytest.approx(3.0)

    def test_feasible_with_demands(self):
        topo = two_class_link(30.0)
        counts = {"thin": 17, "fat": 9}
        shares = max_min_allocation(counts, topo)
        assert allocation_is_feasible(counts, shares, topo)

    def test_unit_demands_unchanged(self):
        # demand = 1 everywhere reduces to the unweighted allocation
        topo = NetworkTopology(
            {"l": 12.0},
            [Route("r", ("l",), PoissonLoad(5.0), AdaptiveUtility())],
        )
        assert max_min_allocation({"r": 4}, topo)["r"] == pytest.approx(3.0)


class TestDemandAwareAdmission:
    def test_ilp_charges_demand_units(self):
        topo = two_class_link(30.0)
        admitted = admit_flows({"thin": 40, "fat": 40}, topo)
        usage = admitted["thin"] * 1.0 + admitted["fat"] * 2.0
        assert usage <= 30.0 + 1e-9
        # utilitarian count-max admits thin flows preferentially
        assert admitted["thin"] > admitted["fat"]

    def test_greedy_charges_demand_units(self):
        topo = two_class_link(30.0)
        admitted = greedy_admit_flows({"thin": 40, "fat": 40}, topo)
        usage = admitted["thin"] * 1.0 + admitted["fat"] * 2.0
        assert usage <= 30.0 + 1e-9

    def test_admitted_get_their_reservation(self):
        topo = two_class_link(30.0)
        admitted = admit_flows({"thin": 25, "fat": 10}, topo)
        shares = max_min_allocation(admitted, topo)
        if admitted["thin"] > 0:
            assert shares["thin"] >= 1.0 - 1e-9
        if admitted["fat"] > 0:
            assert shares["fat"] >= 2.0 - 1e-9

    def test_comparison_still_ordered(self):
        cmp = NetworkComparison(two_class_link(30.0), draws=120, seed=21)
        assert cmp.performance_gap() >= -0.01


class TestValidation:
    def test_nonpositive_demand_rejected(self):
        with pytest.raises(ModelError):
            Route("r", ("l",), PoissonLoad(5.0), AdaptiveUtility(), demand=0.0)

    def test_from_graph_demands(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge("a", "b", capacity=10.0)
        topo = NetworkTopology.from_graph(
            g,
            paths={"r": ["a", "b"]},
            loads={"r": PoissonLoad(3.0)},
            utilities={"r": AdaptiveUtility()},
            demands={"r": 2.5},
        )
        assert topo.routes["r"].demand == 2.5
