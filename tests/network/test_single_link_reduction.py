"""N1: a one-link, one-route network must reproduce the paper's model.

The benchmark suite gates this reduction too (bench_network.py); this
test keeps it in tier-1 so a regression shows up on every push, not
only in the benchmark job.
"""

import pytest

from repro.loads import PoissonLoad
from repro.models import VariableLoadModel
from repro.network import NetworkComparison, NetworkTopology, Route
from repro.utility import AdaptiveUtility


@pytest.fixture(scope="module")
def comparison():
    load = PoissonLoad(20.0)
    topo = NetworkTopology(
        {"l": 22.0}, [Route("r", ("l",), load, AdaptiveUtility())]
    )
    return NetworkComparison(topo, draws=4000, seed=23)


@pytest.fixture(scope="module")
def paper_model():
    return VariableLoadModel(PoissonLoad(20.0), AdaptiveUtility())


class TestSingleLinkReduction:
    def test_best_effort_matches_the_scalar_model(self, comparison, paper_model):
        assert comparison.best_effort().normalised == pytest.approx(
            paper_model.best_effort(22.0), abs=0.02
        )

    def test_reservation_matches_the_scalar_model(self, comparison, paper_model):
        assert comparison.reservation().normalised == pytest.approx(
            paper_model.reservation(22.0), abs=0.02
        )

    def test_performance_gap_matches_the_scalar_model(self, comparison, paper_model):
        assert comparison.performance_gap() == pytest.approx(
            paper_model.performance_gap(22.0), abs=0.02
        )

    def test_reservation_dominates_best_effort(self, comparison):
        # CRN census: both architectures see identical draws, so the
        # dominance holds draw-for-draw, not only in expectation
        assert (
            comparison.reservation().normalised
            >= comparison.best_effort().normalised - 1e-12
        )
