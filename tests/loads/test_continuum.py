"""Tests for the continuum load densities."""

import math

import pytest
from scipy import integrate as spi

from repro.loads import ExponentialLoad, ParetoLoad


class TestExponentialLoad:
    def test_normalised(self):
        load = ExponentialLoad(0.7)
        total, _ = spi.quad(load.pdf, 0.0, 200.0)
        assert total == pytest.approx(1.0, abs=1e-8)

    def test_mean(self):
        assert ExponentialLoad(0.25).mean == 4.0

    def test_sf(self):
        load = ExponentialLoad(2.0)
        assert load.sf(1.5) == pytest.approx(math.exp(-3.0))
        assert load.sf(0.0) == 1.0

    def test_mean_tail_closed_form(self):
        load = ExponentialLoad(1.3)
        for x in (0.5, 2.0, 6.0):
            brute, _ = spi.quad(lambda k: k * load.pdf(k), x, 100.0)
            assert load.mean_tail(x) == pytest.approx(brute, rel=1e-8)

    def test_partial_mean_complements_tail(self):
        load = ExponentialLoad(1.0)
        assert load.partial_mean(2.0) + load.mean_tail(2.0) == pytest.approx(
            load.mean
        )

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            ExponentialLoad(0.0)


class TestParetoLoad:
    def test_normalised(self):
        load = ParetoLoad(3.0)
        total, _ = spi.quad(load.pdf, 1.0, math.inf)
        assert total == pytest.approx(1.0, abs=1e-8)

    def test_paper_mean(self):
        # k_bar = (z-1)/(z-2)
        assert ParetoLoad(3.0).mean == pytest.approx(2.0)
        assert ParetoLoad(2.5).mean == pytest.approx(3.0)

    def test_sf_power_law(self):
        load = ParetoLoad(3.0)
        assert load.sf(4.0) == pytest.approx(4.0**-2)
        assert load.sf(0.5) == 1.0

    def test_mean_tail_closed_form(self):
        load = ParetoLoad(3.5)
        for x in (1.5, 3.0, 10.0):
            brute, _ = spi.quad(lambda k: k * load.pdf(k), x, math.inf)
            assert load.mean_tail(x) == pytest.approx(brute, rel=1e-8)

    def test_support_starts_at_one(self):
        load = ParetoLoad(3.0)
        assert load.pdf(0.99) == 0.0
        assert load.pdf(1.01) > 0.0

    def test_requires_finite_mean(self):
        with pytest.raises(ValueError):
            ParetoLoad(2.0)
