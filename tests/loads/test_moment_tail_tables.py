"""Moment-tail tables ``S_j(n) = sum_{k>=n} k**(1-j) P(k)``.

These capacity-independent tables are the load half of the shared tail
series; a silent error in any entry moves every TAIL-mode ``B(C)`` in
every sweep.  The first two rows have closed-form anchors for *any*
load (``S_0(n) = mean_tail(n)``, ``S_1(n) = sf(n-1)``), and the whole
table obeys the exact downward recurrence

    S_j(n) = sum_{n <= k < 2n} k**(1-j) P(k) + S_j(2n)

which cross-checks the algebraic load's zeta-expansion closed form
against direct finite summation — the two paths share no code.
"""

import numpy as np
import pytest

from repro.loads import AlgebraicLoad, GeometricLoad, PoissonLoad
from repro.numerics.series import TAIL_DEGREE

Z_PAPER = 3.0
KBAR = 100.0


def _block_sums(load, n, degree):
    """Direct ``sum_{n <= k < 2n} k**(1-j) P(k)`` for j = 0..degree."""
    ks = np.arange(n, 2 * n, dtype=float)
    terms = ks * np.asarray(load.pmf_array(ks), dtype=float)
    out = np.empty(degree + 1)
    for j in range(degree + 1):
        out[j] = terms.sum()
        terms /= ks
    return out


class TestAnchors:
    @pytest.mark.parametrize(
        "load,level",
        [
            (GeometricLoad.from_mean(10.0), 64),
            (GeometricLoad.from_mean(KBAR), 1024),
            (AlgebraicLoad.from_mean(Z_PAPER, KBAR), 512),
            (AlgebraicLoad.from_mean(Z_PAPER, KBAR), 2048),
        ],
    )
    def test_first_two_rows(self, load, level):
        table = load.moment_tail_table(level, TAIL_DEGREE)
        assert table is not None
        assert table[0] == pytest.approx(load.mean_tail(level), rel=1e-11)
        assert table[1] == pytest.approx(load.sf(level - 1), rel=1e-11)

    def test_rows_decrease_geometrically(self):
        # S_{j+1}(n) <= S_j(n) / n for k >= n >= 1: each extra power of
        # 1/k costs at least a factor n
        load = AlgebraicLoad.from_mean(Z_PAPER, KBAR)
        table = load.moment_tail_table(512, TAIL_DEGREE)
        assert np.all(table[1:] <= table[:-1] / 512.0 * (1.0 + 1e-12))
        assert np.all(table >= 0.0)


class TestDownwardRecurrence:
    @pytest.mark.parametrize("level", [512, 1024])
    def test_algebraic_closed_form(self, level):
        """zeta-expansion tables at n and 2n agree through direct sums."""
        load = AlgebraicLoad.from_mean(Z_PAPER, KBAR)
        near = load.moment_tail_table(level, TAIL_DEGREE)
        far = load.moment_tail_table(2 * level, TAIL_DEGREE)
        block = _block_sums(load, level, TAIL_DEGREE)
        # rows the tail polynomial actually feels hold to roundoff; the
        # deepest rows (magnitudes ~ n**(1-j), down near 1e-280) pick up
        # a few digits of high-order Hurwitz-zeta error but enter the
        # polynomial damped by ~2**-j, so ppb agreement is ample there
        np.testing.assert_allclose(
            near[:49], (block + far)[:49], rtol=5e-13, atol=0.0
        )
        np.testing.assert_allclose(near, block + far, rtol=1e-7, atol=0.0)

    def test_geometric_brute_table(self):
        load = GeometricLoad.from_mean(KBAR)
        near = load.moment_tail_table(1024, TAIL_DEGREE)
        far = load.moment_tail_table(2048, TAIL_DEGREE)
        block = _block_sums(load, 1024, TAIL_DEGREE)
        np.testing.assert_allclose(near, block + far, rtol=1e-10, atol=1e-300)


class TestInfeasibleLevels:
    def test_algebraic_below_shift_guard_is_none(self):
        # below n ~ 4*lam the binomial expansion is uncertified and the
        # z = 3 brute fallback provably cannot converge within the array
        # cap, so the load must report None rather than burn millions of
        # pmf evaluations discovering it
        load = AlgebraicLoad.from_mean(Z_PAPER, KBAR)
        assert load.lam > 64.0  # the guard is active at this level
        assert load.moment_tail_table(256, TAIL_DEGREE) is None

    def test_poisson_exhausted_tail_is_zeros(self):
        # at n = 1024 a mean-100 Poisson tail underflows to exactly 0;
        # the contract is an all-zero table, not None (the polynomial
        # path stays valid, the tail simply contributes nothing)
        load = PoissonLoad(KBAR)
        assert load.mean_tail(1024) == 0.0
        table = load.moment_tail_table(1024, TAIL_DEGREE)
        assert table is not None
        np.testing.assert_array_equal(table, np.zeros(TAIL_DEGREE + 1))

    def test_invalid_arguments_rejected(self):
        load = GeometricLoad.from_mean(10.0)
        with pytest.raises(ValueError):
            load.moment_tail_table(0, TAIL_DEGREE)
        with pytest.raises(ValueError):
            load.moment_tail_table(64, -1)
