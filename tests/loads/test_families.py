"""Family-specific tests for the three discrete load distributions."""

import math

import pytest

from repro.errors import CalibrationError
from repro.loads import AlgebraicLoad, GeometricLoad, PoissonLoad, standard_loads


class TestPoissonLoad:
    def test_pmf_formula(self):
        load = PoissonLoad(4.0)
        assert load.pmf(2) == pytest.approx(math.exp(-4.0) * 16.0 / 2.0)

    def test_mean_tail_identity(self):
        # sum_{k>=n} k P(k) = nu P(K >= n-1)
        load = PoissonLoad(9.0)
        for n in (1, 5, 9, 20):
            brute = sum(k * load.pmf(k) for k in range(n, 200))
            assert load.mean_tail(n) == pytest.approx(brute, rel=1e-10)

    def test_deep_tail_precision(self):
        # the Poisson case's headline claim needs sf accurate at 1e-15+
        load = PoissonLoad(100.0)
        assert 0.0 < load.sf(200) < 1e-15

    def test_invalid_nu(self):
        with pytest.raises(ValueError):
            PoissonLoad(0.0)


class TestGeometricLoad:
    def test_paper_mean_formula(self):
        # the paper: k_bar = (e^beta - 1)^-1
        load = GeometricLoad(0.25)
        assert load.mean == pytest.approx(1.0 / (math.exp(0.25) - 1.0))

    def test_pmf_formula(self):
        load = GeometricLoad(0.5)
        q = math.exp(-0.5)
        assert load.pmf(3) == pytest.approx((1.0 - q) * q**3)

    def test_sf_closed_form(self):
        load = GeometricLoad(0.5)
        assert load.sf(4) == pytest.approx(math.exp(-0.5 * 5))

    def test_mean_tail_identity(self):
        load = GeometricLoad.from_mean(8.0)
        for n in (0, 1, 4, 16):
            brute = sum(k * load.pmf(k) for k in range(n, 2000))
            assert load.mean_tail(n) == pytest.approx(brute, rel=1e-10)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GeometricLoad(0.0)
        with pytest.raises(ValueError):
            GeometricLoad.from_mean(-2.0)


class TestAlgebraicLoad:
    def test_tail_power_law(self):
        load = AlgebraicLoad(3.0, 5.0)
        # pmf(k)/pmf(2k) -> 2^z for large k
        ratio = load.pmf(4000) / load.pmf(8000)
        assert ratio == pytest.approx(2.0**3, rel=0.01)

    def test_requires_z_above_two(self):
        with pytest.raises(ValueError):
            AlgebraicLoad(2.0, 1.0)
        with pytest.raises(ValueError):
            AlgebraicLoad(1.5, 1.0)

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            AlgebraicLoad(3.0, -0.5)

    def test_mean_below_floor_uncalibratable(self):
        # at lam = 0 the mean has a positive floor; below it must raise
        with pytest.raises(CalibrationError):
            AlgebraicLoad.from_mean(3.0, 0.5)

    def test_support_starts_at_one(self):
        load = AlgebraicLoad(3.0, 2.0)
        assert load.pmf(0) == 0.0
        assert load.pmf(1) > 0.0
        assert load.support_min == 1

    def test_sf_closed_form_vs_brute(self):
        load = AlgebraicLoad.from_mean(3.0, 10.0)
        for k in (1, 5, 20):
            brute = sum(load.pmf(j) for j in range(k + 1, 400_000))
            assert load.sf(k) == pytest.approx(brute, rel=1e-3)

    def test_mean_tail_closed_form_vs_brute(self):
        load = AlgebraicLoad.from_mean(4.0, 10.0)  # faster tail for brute sum
        for n in (2, 10, 30):
            brute = sum(k * load.pmf(k) for k in range(n, 400_000))
            assert load.mean_tail(n) == pytest.approx(brute, rel=1e-4)

    def test_heavier_tail_than_geometric_at_same_mean(self):
        alg = AlgebraicLoad.from_mean(3.0, 20.0)
        geo = GeometricLoad.from_mean(20.0)
        assert alg.sf(200) > geo.sf(200)


class TestStandardLoads:
    def test_all_three_families_at_kbar(self):
        loads = standard_loads(kbar=50.0)
        assert set(loads) == {"poisson", "exponential", "algebraic"}
        for load in loads.values():
            assert load.mean == pytest.approx(50.0, rel=1e-6)

    def test_z_parameter_passed_through(self):
        loads = standard_loads(kbar=50.0, z=2.5)
        assert loads["algebraic"].z == 2.5
