"""Tests for the size-biased census and max-of-S order statistics."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.loads import (
    AlgebraicLoad,
    GeometricLoad,
    MaxOfSLoad,
    PoissonLoad,
    SizeBiasedLoad,
)

BASES = [
    PoissonLoad(8.0),
    GeometricLoad.from_mean(8.0),
    AlgebraicLoad.from_mean(3.0, 8.0),
]
IDS = ["poisson", "geometric", "algebraic"]


@pytest.mark.parametrize("base", BASES, ids=IDS)
class TestSizeBiasedLoad:
    def test_pmf_is_k_weighted(self, base):
        q = SizeBiasedLoad(base)
        for k in (1, 3, 8, 20):
            assert q.pmf(k) == pytest.approx(k * base.pmf(k) / base.mean)

    def test_zero_at_zero(self, base):
        assert SizeBiasedLoad(base).pmf(0) == 0.0

    def test_normalised(self, base):
        # the size-biased tail decays one power slower than the base,
        # so close the sum with the exact sf at the cut
        q = SizeBiasedLoad(base)
        cut = 4000
        total = sum(q.pmf(k) for k in range(1, cut + 1))
        assert total + q.sf(cut) == pytest.approx(1.0, abs=1e-9)

    def test_sf_matches_brute_sum(self, base):
        q = SizeBiasedLoad(base)
        for k in (1, 5, 12):
            brute = sum(q.pmf(j) for j in range(k + 1, 40_000))
            assert q.sf(k) == pytest.approx(brute, rel=1e-3)

    def test_stochastically_larger_than_base(self, base):
        # size biasing shifts mass upward: sf_Q(k) >= sf_P(k)
        q = SizeBiasedLoad(base)
        for k in (1, 4, 8, 16, 32):
            assert q.sf(k) >= base.sf(k) - 1e-12

    def test_mean_not_available(self, base):
        with pytest.raises(ModelError):
            _ = SizeBiasedLoad(base).mean


@pytest.mark.parametrize("base", BASES, ids=IDS)
class TestMaxOfSLoad:
    def test_s_equal_one_is_identity(self, base):
        m = MaxOfSLoad(base, 1)
        for k in (0, 1, 5, 12):
            assert m.pmf(k) == pytest.approx(base.pmf(k), abs=1e-12)

    def test_cdf_power_identity(self, base):
        m = MaxOfSLoad(base, 4)
        for k in (2, 6, 15):
            assert m.cdf(k) == pytest.approx(base.cdf(k) ** 4, abs=1e-9)

    def test_pmf_normalised(self, base):
        m = MaxOfSLoad(base, 3)
        total = sum(m.pmf(k) for k in range(0, 3000))
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_max_stochastically_larger(self, base):
        m = MaxOfSLoad(base, 5)
        for k in (1, 4, 8, 16):
            assert m.sf(k) >= base.sf(k) - 1e-12

    def test_deep_tail_linearisation(self, base):
        # for tiny base tails, P(max > k) ~ S * sf(k)
        m = MaxOfSLoad(base, 6)
        k = 400 if base.sf(400) > 0 else 50
        sf1 = base.sf(k)
        if sf1 < 1e-9 and sf1 > 0.0:
            assert m.sf(k) == pytest.approx(6.0 * sf1, rel=1e-6)

    def test_invalid_samples(self, base):
        with pytest.raises(ValueError):
            MaxOfSLoad(base, 0)


class TestMonteCarloAgreement:
    def test_max_of_s_against_simulation(self):
        rng = np.random.default_rng(42)
        base = PoissonLoad(6.0)
        s = 3
        m = MaxOfSLoad(base, s)
        draws = rng.poisson(6.0, size=(20_000, s)).max(axis=1)
        for k in (4, 6, 8, 10):
            empirical = float(np.mean(draws <= k))
            assert m.cdf(k) == pytest.approx(empirical, abs=0.02)

    def test_size_biased_against_weighted_simulation(self):
        rng = np.random.default_rng(7)
        base = GeometricLoad.from_mean(5.0)
        q = SizeBiasedLoad(base)
        # sample base, weight by k (importance weighting)
        ks = rng.geometric(1.0 - base.ratio, size=100_000) - 1
        weights = ks / ks.mean()
        for k in (2, 5, 10):
            empirical = float(np.mean(weights * (ks == k)))
            assert q.pmf(k) == pytest.approx(empirical, abs=0.01)
