"""Tests for the load distributions' random samplers."""

import numpy as np
import pytest

from repro.loads import AlgebraicLoad, GeometricLoad, PoissonLoad

LOADS = [
    PoissonLoad(20.0),
    GeometricLoad.from_mean(20.0),
    AlgebraicLoad.from_mean(3.0, 20.0),
]
IDS = ["poisson", "geometric", "algebraic"]


@pytest.mark.parametrize("load", LOADS, ids=IDS)
class TestSamplers:
    def test_sample_mean_near_target(self, load):
        rng = np.random.default_rng(3)
        draws = load.sample(rng, 50_000)
        tol = 2.0 if load.name == "algebraic" else 0.5  # heavy-tail variance
        assert float(draws.mean()) == pytest.approx(load.mean, abs=tol)

    def test_respects_support(self, load):
        rng = np.random.default_rng(4)
        draws = load.sample(rng, 5_000)
        assert draws.min() >= load.support_min

    def test_pmf_frequencies_match(self, load):
        rng = np.random.default_rng(5)
        draws = load.sample(rng, 80_000)
        for k in (int(load.mean) - 2, int(load.mean), int(load.mean) + 5):
            empirical = float(np.mean(draws == k))
            assert empirical == pytest.approx(load.pmf(k), abs=0.005)

    def test_reproducible_with_seed(self, load):
        d1 = load.sample(np.random.default_rng(7), 100)
        d2 = load.sample(np.random.default_rng(7), 100)
        np.testing.assert_array_equal(d1, d2)

    def test_zero_size(self, load):
        assert len(load.sample(np.random.default_rng(0), 0)) == 0

    def test_negative_size_rejected(self, load):
        with pytest.raises(ValueError):
            load.sample(np.random.default_rng(0), -1)


class TestAlgebraicTailSampling:
    def test_deep_tail_frequency(self):
        # the hybrid sampler's bisection branch must hit the right rate
        load = AlgebraicLoad.from_mean(3.0, 20.0)
        rng = np.random.default_rng(11)
        draws = load.sample(rng, 400_000)
        threshold = 400
        assert float(np.mean(draws > threshold)) == pytest.approx(
            load.sf(threshold), rel=0.25
        )

    def test_invert_sf_consistency(self):
        load = AlgebraicLoad.from_mean(3.0, 20.0)
        for target in (1e-3, 1e-5, 1e-7):
            k = load._invert_sf(target, 10)
            assert load.sf(k) <= target < load.sf(k - 1)
