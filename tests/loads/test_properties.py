"""Property-based tests of the discrete load-distribution contract."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loads import AlgebraicLoad, GeometricLoad, PoissonLoad

LOADS = [
    PoissonLoad(12.0),
    PoissonLoad(100.0),
    GeometricLoad.from_mean(12.0),
    GeometricLoad.from_mean(100.0),
    AlgebraicLoad.from_mean(3.0, 12.0),
    AlgebraicLoad.from_mean(2.5, 12.0),
    AlgebraicLoad.from_mean(4.0, 40.0),
]
IDS = [repr(load) for load in LOADS]


@pytest.mark.parametrize("load", LOADS, ids=IDS)
class TestLoadContract:
    def test_pmf_normalised(self, load):
        # pmf sums to 1 minus a tail bounded by sf at the cut
        cut = int(40 * load.mean)
        total = float(np.sum(load.pmf_array(np.arange(cut + 1, dtype=float))))
        assert total + load.sf(cut) == pytest.approx(1.0, abs=1e-6)

    def test_mean_matches_pmf_sum(self, load):
        cut = int(400 * load.mean)
        ks = np.arange(cut, dtype=float)
        partial = float(np.dot(ks, load.pmf_array(ks)))
        assert partial + load.mean_tail(cut) == pytest.approx(load.mean, rel=1e-9)

    def test_sf_is_a_survival_function(self, load):
        values = [load.sf(k) for k in range(0, int(8 * load.mean), 3)]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert all(b <= a + 1e-15 for a, b in zip(values, values[1:]))

    def test_sf_consistent_with_pmf(self, load):
        for k in (0, 1, 5, int(load.mean), int(3 * load.mean)):
            direct = load.sf(k) - load.sf(k + 1)
            assert direct == pytest.approx(load.pmf(k + 1), abs=1e-12)

    def test_mean_tail_decreasing(self, load):
        points = [1, 2, 5, int(load.mean), int(4 * load.mean)]
        tails = [load.mean_tail(n) for n in points]
        assert all(b <= a + 1e-12 for a, b in zip(tails, tails[1:]))

    def test_mean_tail_consistent_with_pmf(self, load):
        n = int(load.mean)
        direct = load.mean_tail(n) - load.mean_tail(n + 1)
        assert direct == pytest.approx(n * load.pmf(n), rel=1e-9, abs=1e-12)

    def test_mean_tail_at_support_start_is_mean(self, load):
        assert load.mean_tail(load.support_min) == pytest.approx(load.mean)

    def test_pmf_array_matches_scalar(self, load):
        ks = np.arange(0, 60, dtype=float)
        np.testing.assert_allclose(
            load.pmf_array(ks),
            [load.pmf(int(k)) for k in ks],
            rtol=1e-12,
        )

    def test_continuous_pmf_interpolates(self, load):
        for k in (2, 7, int(load.mean)):
            if k < load.support_min:
                continue
            assert load.continuous_pmf(float(k)) == pytest.approx(
                load.pmf(k), rel=1e-9
            )

    def test_rescaled_hits_target_mean(self, load):
        target = 1.7 * load.mean
        assert load.rescaled(target).mean == pytest.approx(target, rel=1e-6)

    def test_rescaled_preserves_family(self, load):
        assert type(load.rescaled(2.0 * load.mean)) is type(load)

    def test_invalid_k_rejected(self, load):
        with pytest.raises(ValueError):
            load.pmf(-1)
        with pytest.raises(ValueError):
            load.sf(-3)


class TestHypothesisMeans:
    @given(mean=st.floats(min_value=0.5, max_value=500.0))
    @settings(max_examples=40, deadline=None)
    def test_geometric_mean_roundtrip(self, mean):
        assert GeometricLoad.from_mean(mean).mean == pytest.approx(mean, rel=1e-9)

    @given(
        z=st.floats(min_value=2.2, max_value=5.0),
        mean=st.floats(min_value=5.0, max_value=300.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_algebraic_mean_roundtrip(self, z, mean):
        assert AlgebraicLoad.from_mean(z, mean).mean == pytest.approx(mean, rel=1e-6)

    @given(mean=st.floats(min_value=0.5, max_value=500.0))
    @settings(max_examples=40, deadline=None)
    def test_poisson_mean_is_nu(self, mean):
        assert PoissonLoad(mean).mean == mean
