"""End-to-end telemetry: multi-process journal, hotspot attribution."""

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.experiments.params import DEFAULT_CONFIG
from repro.models import VariableLoadModel
from repro.obs.events import read_journal


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    obs.close_journal()
    yield
    obs.disable()
    obs.reset()
    obs.close_journal()


class TestRunnerJournal:
    def test_pool_workers_share_the_journal(self, tmp_path, capsys):
        journal = tmp_path / "runner.jsonl"
        cache = tmp_path / "cache"
        assert (
            main(
                [
                    "run-all", "F1", "T1", "--fast", "--jobs", "2",
                    "--cache-dir", str(cache),
                    "--events-json", str(journal),
                ]
            )
            == 0
        )
        capsys.readouterr()
        events, damaged = read_journal(journal)
        assert damaged == 0
        kinds = [e["event"] for e in events]
        assert kinds[0] == "journal.open"
        assert "runner.batch.start" in kinds
        assert "runner.batch.finish" in kinds
        assert kinds.count("cache.miss") == 2
        assert kinds.count("runner.task.start") == 2
        assert kinds.count("runner.task.finish") == 2
        # worker processes joined the journal and stamped their own pids
        parent_pid = events[0]["pid"]
        heartbeats = [
            e for e in events if e["event"] == "runner.worker.heartbeat"
        ]
        assert heartbeats
        assert all(e["pid"] != parent_pid for e in heartbeats)
        task_events = [
            e for e in events if e["event"] == "runner.task.start"
        ]
        assert all(e["pid"] != parent_pid for e in task_events)
        # one run id spans parent and workers
        assert len({e["run"] for e in events}) == 1

    def test_second_pass_journals_cache_hits(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = ["run-all", "F1", "--fast", "--cache-dir", str(cache)]
        assert main(args) == 0
        journal = tmp_path / "warm.jsonl"
        assert main(args + ["--events-json", str(journal)]) == 0
        capsys.readouterr()
        events, _ = read_journal(journal)
        kinds = [e["event"] for e in events]
        assert "cache.hit" in kinds
        assert "cache.miss" not in kinds


class TestHotspotAttribution:
    def test_algebraic_delta_sweep_attributes_most_wall_time(
        self, tmp_path, capsys
    ):
        """Acceptance criterion: on a 128-point algebraic delta(C)
        sweep, `repro obs hotspots` attributes >= 80% of wall time to
        named spans."""
        cfg = DEFAULT_CONFIG
        model = VariableLoadModel(
            cfg.load("algebraic"), cfg.utility("adaptive")
        )
        caps = np.linspace(20.0, 220.0, 128)
        obs.enable()
        t0 = time.perf_counter()
        model.performance_gap_batch(caps)
        wall = time.perf_counter() - t0
        trace_path = tmp_path / "sweep.json"
        trace_path.write_text(obs.trace_json())
        obs.disable()
        assert (
            main(["obs", "hotspots", str(trace_path), "--json",
                  "--wall", str(wall)]) == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["coverage"] >= 0.80, report
        names = {row["name"] for row in report["hotspots"]}
        assert "model.total_best_effort_batch" in names
        assert "batch.share_weighted_sums" in names
