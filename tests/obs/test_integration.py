"""Instrumentation wiring: solvers, quadrature, optimizers, simulator."""

import numpy as np
import pytest

from repro import obs
from repro.loads import PoissonLoad
from repro.models import FixedLoadModel, VariableLoadModel
from repro.numerics.optimize import argmax_int, maximize_scalar
from repro.numerics.quadrature import integrate
from repro.numerics.solvers import (
    SolverDiagnostics,
    find_root,
    find_root_diag,
    last_diagnostics,
)
from repro.simulation import AdmitAll, BirthDeathProcess, FlowSimulator, Link
from repro.utility import AdaptiveUtility, RigidUtility


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSolverDiagnostics:
    def test_diag_reports_iterations_and_residual(self):
        root, diag = find_root_diag(lambda x: x * x - 9.0, 0.0, 10.0)
        assert root == pytest.approx(3.0)
        assert isinstance(diag, SolverDiagnostics)
        assert diag.converged and diag.met_tolerance
        assert diag.iterations > 0
        assert diag.function_calls >= diag.iterations
        assert abs(diag.residual) < 1e-9

    def test_diag_endpoint_shortcuts(self):
        _, diag = find_root_diag(lambda x: x, 0.0, 1.0)
        assert diag.iterations == 0 and diag.residual == 0.0

    def test_diag_records_bracket_expansion(self):
        root, diag = find_root_diag(
            lambda x: x - 50.0, 0.0, 1.0, expand=True, label="expanded"
        )
        assert root == pytest.approx(50.0)
        assert diag.bracket_expanded
        assert diag.label == "expanded"

    def test_last_diagnostics_tracks_diagnosed_solves(self):
        find_root_diag(lambda x: x - 2.0, 0.0, 5.0, label="first")
        find_root_diag(lambda x: x - 4.0, 0.0, 5.0, label="second")
        assert last_diagnostics().label == "second"

    def test_find_root_meters_without_allocating_diagnostics(self):
        obs.enable()
        find_root(lambda x: x - 1.5, 0.0, 5.0, label="observed")
        # aggregate metrics recorded, but no per-solve record kept
        assert obs.counter("solver.find_root.calls").value == 1.0
        previous = last_diagnostics()
        assert previous is None or previous.label != "observed"

    def test_solver_metrics_recorded(self):
        obs.enable()
        find_root(lambda x: x * x - 2.0, 0.0, 2.0)
        find_root(lambda x: x - 50.0, 0.0, 1.0, expand=True)
        counters = obs.snapshot()["counters"]
        assert counters["solver.find_root.calls"] == 2.0
        assert counters["solver.find_root.iterations"] > 0
        assert counters["solver.bracket_expansions"] == 1.0
        # |f(root)| is sampled: the first solve (calls == 0) pays for it
        assert obs.snapshot()["histograms"]["solver.find_root.residual"]["count"] == 1

    def test_residual_sampling_stride(self):
        from repro.numerics.solvers import RESIDUAL_SAMPLE_EVERY

        obs.enable()
        for _ in range(RESIDUAL_SAMPLE_EVERY + 1):
            find_root(lambda x: x * x - 2.0, 0.0, 2.0)
        hist = obs.snapshot()["histograms"]["solver.find_root.residual"]
        # solves 0 and RESIDUAL_SAMPLE_EVERY are sampled, the rest skip
        assert hist["count"] == 2
        # diag solves are always recorded exactly, sampling aside
        find_root_diag(lambda x: x * x - 2.0, 0.0, 2.0)
        hist = obs.snapshot()["histograms"]["solver.find_root.residual"]
        assert hist["count"] == 3

    def test_solver_metrics_silent_when_disabled(self):
        find_root(lambda x: x - 1.0, 0.0, 5.0)
        assert obs.snapshot()["counters"] == {}


class TestQuadratureMetrics:
    def test_evaluations_counted_when_enabled(self):
        obs.enable()
        value = integrate(lambda x: x, 0.0, 1.0, points=[0.5])
        assert value == pytest.approx(0.5)
        counters = obs.snapshot()["counters"]
        assert counters["quadrature.integrals"] == 1.0
        assert counters["quadrature.pieces"] == 2.0
        assert counters["quadrature.evaluations"] > 0

    def test_silent_when_disabled(self):
        integrate(lambda x: x, 0.0, 1.0)
        assert obs.snapshot()["counters"] == {}


class TestOptimizerMetrics:
    def test_maximize_scalar_counted(self):
        obs.enable()
        x, v = maximize_scalar(lambda x: -(x - 2.0) ** 2, 0.0, 5.0, grid=16)
        assert x == pytest.approx(2.0, abs=1e-6)
        counters = obs.snapshot()["counters"]
        assert counters["optimize.maximize_scalar.calls"] == 1.0
        assert counters["optimize.maximize_scalar.evaluations"] == 17.0

    def test_argmax_int_evaluations_counted(self):
        obs.enable()
        k, v = argmax_int(lambda k: -abs(k - 1000), 0, 100_000)
        assert k == 1000
        counters = obs.snapshot()["counters"]
        assert counters["optimize.argmax_int.calls"] == 1.0
        # far fewer probes than the brute-force 100k scan
        assert 0 < counters["optimize.argmax_int.evaluations"] < 10_000

    def test_k_max_search_and_cache_hits_counted(self):
        obs.enable()
        model = FixedLoadModel(AdaptiveUtility())
        model.k_max(64.0)
        model.k_max(64.0)
        counters = obs.snapshot()["counters"]
        assert counters["model.k_max.searches"] == 1.0
        assert counters["model.k_max.cache_hits"] == 1.0


class TestSimulatorInstrumentation:
    def _run(self, **kwargs):
        process = BirthDeathProcess(PoissonLoad(15.0))
        return FlowSimulator(process, Link(20.0), AdmitAll()).run(
            40.0, seed=3, **kwargs
        )

    def test_progress_hook_called_every_n_events(self):
        ticks = []
        self._run(progress=lambda events, t: ticks.append((events, t)),
                  progress_every=250)
        assert len(ticks) >= 2
        assert [e for e, _ in ticks] == [250 * (i + 1) for i in range(len(ticks))]
        times = [t for _, t in ticks]
        assert times == sorted(times)

    def test_progress_every_validated(self):
        with pytest.raises(ValueError):
            self._run(progress=lambda e, t: None, progress_every=0)

    def test_no_progress_by_default(self):
        result = self._run()
        assert len(result.flows) > 0

    def test_simulation_metrics_recorded(self):
        obs.enable()
        result = self._run()
        counters = obs.snapshot()["counters"]
        admitted = int(np.sum(result.flows.admitted))
        assert counters["sim.events"] > 0
        assert counters["sim.flows.admitted"] == float(admitted)
        assert counters["sim.flows.rejected"] == float(
            len(result.flows) - admitted
        )
        assert obs.gauge("sim.event_rate").value > 0.0

    def test_simulation_silent_when_disabled(self):
        self._run()
        assert obs.snapshot()["counters"] == {}


class TestModelLevelCounters:
    def test_variable_load_sweep_touches_solver_counters(self):
        obs.enable()
        model = VariableLoadModel(PoissonLoad(20.0), RigidUtility(1.0))
        model.bandwidth_gap(15.0)
        counters = obs.snapshot()["counters"]
        assert counters.get("solver.find_root.calls", 0) >= 1
        assert counters.get("model.k_max.searches", 0) >= 1
