"""CLI observability: --profile, --trace-json, the profile subcommand."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.experiments import profiling, registry
from repro.experiments.params import FAST_CONFIG


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestRunProfile:
    def test_profile_prints_span_tree_and_metrics(self, capsys):
        assert main(["run", "F1", "--fast", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "experiment" in out
        assert "metrics" in out

    def test_profile_disabled_after_run(self, capsys):
        main(["run", "F1", "--fast", "--profile"])
        assert not obs.enabled()

    def test_trace_json_written(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["run", "F1", "--fast", "--trace-json", str(trace_path)]
        ) == 0
        payload = json.loads(trace_path.read_text())
        assert payload[0]["name"] == "experiment"
        assert payload[0]["labels"] == {"id": "F1"}

    def test_plain_run_leaves_obs_untouched(self, capsys):
        assert main(["run", "F1", "--fast"]) == 0
        assert not obs.enabled()
        assert obs.trace_roots() == []


class TestRunJsonEnvelope:
    def test_meta_and_result_in_uniform_envelope(self, capsys):
        assert main(["run", "F1", "--fast", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"_meta", "result"}
        assert "bandwidth" in payload["result"] and "utility" in payload["result"]
        assert payload["_meta"]["experiment"] == "F1"
        assert payload["_meta"]["elapsed_seconds"] >= 0.0
        assert payload["_meta"]["config"] == "fast"
        assert "metrics" not in payload["_meta"]

    def test_meta_includes_metrics_under_profile(self, capsys):
        assert main(["run", "F1", "--fast", "--json", "--profile"]) == 0
        out = capsys.readouterr().out
        # stdout is the JSON payload followed by the profile report
        payload = json.loads(out[: out.index("\n== ") + 1] if "\n== " in out
                             else out)
        assert "counters" in payload["_meta"]["metrics"]

    def test_checkpoint_json_gets_same_envelope(self, capsys):
        assert main(["run", "T2", "--fast", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"_meta", "result"}
        assert payload["_meta"]["experiment"] == "T2"
        assert isinstance(payload["result"], list)
        assert all("measured" in row for row in payload["result"])


class TestProfileSubcommand:
    def test_only_subset_text_report(self, capsys):
        assert main(["profile", "--only", "F1", "T2"]) == 0
        out = capsys.readouterr().out
        assert "F1" in out and "T2" in out
        assert "ok" in out

    def test_json_report_shape(self, capsys):
        assert main(["profile", "--only", "F1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.obs.profile/v1"
        assert payload["config"] == "fast"
        entries = payload["experiments"]
        assert [e["id"] for e in entries] == ["F1"]
        assert entries[0]["ok"] is True
        assert entries[0]["seconds"] >= 0.0
        assert isinstance(entries[0]["counters"], dict)

    def test_out_writes_report_file(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        assert main(["profile", "--only", "F1", "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["experiments"][0]["id"] == "F1"


class TestProfilingModule:
    def test_run_profiled_counter_deltas_are_per_experiment(self):
        obs.enable()
        # pre-existing counts must not leak into the deltas
        obs.counter("solver.find_root.calls").inc(500)
        exp = registry.get("T2")
        result, entry = profiling.run_profiled(exp, FAST_CONFIG)
        assert entry.ok and entry.error is None
        assert result is not None
        assert entry.counters.get("solver.find_root.calls", 0) < 500

    def test_run_profiled_captures_exceptions(self):
        obs.enable()
        broken = registry.Experiment(
            "X0", "always fails", lambda config=None: 1 / 0
        )
        result, entry = profiling.run_profiled(broken, FAST_CONFIG)
        assert result is None
        assert not entry.ok
        assert "ZeroDivisionError" in entry.error
        assert entry.to_dict()["error"] == entry.error

    def test_profile_all_covers_every_registered_experiment(self):
        # ids only — actually running all experiments is the CLI's job
        obs.enable()
        entries = profiling.profile_all(FAST_CONFIG, only=["F1", "T2"])
        assert [e.exp_id for e in entries] == ["F1", "T2"]
        report = profiling.report_dict(entries, config_name="fast")
        assert report["total_seconds"] == pytest.approx(
            sum(e.seconds for e in entries)
        )
        text = profiling.render_entries(entries)
        assert "2/2 ok" in text
