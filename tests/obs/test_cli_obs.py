"""CLI: the ``obs`` telemetry subcommands and ``--events-json`` wiring."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs import ledger
from repro.obs.events import read_journal
from repro.obs.traceview import validate_chrome_trace


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    obs.close_journal()
    yield
    obs.disable()
    obs.reset()
    obs.close_journal()


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    """A real --trace-json dump from one fast experiment run."""
    path = tmp_path_factory.mktemp("trace") / "spans.json"
    assert main(["run", "F1", "--fast", "--trace-json", str(path)]) == 0
    obs.disable()
    obs.reset()
    return path


def _ledger_with(tmp_path, values, *, direction=ledger.HIGHER_IS_BETTER):
    path = tmp_path / "history.jsonl"
    ledger.append_entries(
        path,
        [
            ledger.make_entry(
                "bench_t",
                "metric",
                v,
                direction=direction,
                config_digest="cfg000000000",
                sha="test",
            )
            for v in values
        ],
    )
    return path


class TestTail:
    def test_tail_renders_journal(self, tmp_path, capsys):
        path = tmp_path / "j.jsonl"
        obs.open_journal(path, command="unit")
        obs.emit("cache.hit", experiment="F1")
        obs.close_journal()
        assert main(["obs", "tail", str(path)]) == 0
        out = capsys.readouterr().out
        assert "journal.open" in out
        assert "cache.hit" in out
        assert "experiment=F1" in out

    def test_tail_event_filter(self, tmp_path, capsys):
        path = tmp_path / "j.jsonl"
        obs.open_journal(path, command="unit")
        obs.emit("keep.me")
        obs.emit("drop.me")
        obs.close_journal()
        assert main(["obs", "tail", str(path), "--event", "keep.me"]) == 0
        out = capsys.readouterr().out
        assert "keep.me" in out
        assert "drop.me" not in out

    def test_tail_reports_damaged_lines(self, tmp_path, capsys):
        path = tmp_path / "j.jsonl"
        obs.open_journal(path, header=False)
        obs.emit("fine")
        obs.close_journal()
        with open(path, "a") as fh:
            fh.write("{broken\n")
        assert main(["obs", "tail", str(path)]) == 0
        captured = capsys.readouterr()
        assert "fine" in captured.out
        assert "1 damaged line(s) skipped" in captured.err

    def test_tail_missing_journal_exits_2(self, tmp_path, capsys):
        assert main(["obs", "tail", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read journal" in capsys.readouterr().err


class TestHotspotsCommand:
    def test_hotspots_table(self, trace_file, capsys):
        assert main(["obs", "hotspots", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "experiment" in out
        assert "spans" in out

    def test_hotspots_json_with_wall(self, trace_file, capsys):
        assert (
            main(["obs", "hotspots", str(trace_file), "--json",
                  "--wall", "1000"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.obs/hotspots/v1"
        assert payload["hotspots"]
        assert 0.0 <= payload["coverage"] <= 1.0

    def test_bad_trace_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "an array"}')
        assert main(["obs", "hotspots", str(bad)]) == 2
        assert "cannot load trace" in capsys.readouterr().err
        assert main(["obs", "hotspots", str(tmp_path / "absent.json")]) == 2


class TestChromeTraceCommand:
    def test_export_validates_and_writes(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "chrome.json"
        assert (
            main(["obs", "chrome-trace", str(trace_file),
                  "--out", str(out_path)]) == 0
        )
        assert "perfetto" in capsys.readouterr().err
        trace = json.loads(out_path.read_text())
        assert validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"]}
        assert "experiment" in names


class TestRegressCommand:
    def test_ok_ledger_exits_0(self, tmp_path, capsys):
        path = _ledger_with(tmp_path, [10.0, 10.1, 9.9, 10.0, 10.05])
        assert main(["obs", "regress", "--history", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_1(self, tmp_path, capsys):
        path = _ledger_with(tmp_path, [10.0, 10.0, 10.0, 10.0, 8.0])
        assert main(["obs", "regress", "--history", str(path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_json_report(self, tmp_path, capsys):
        path = _ledger_with(tmp_path, [10.0, 10.0, 10.0, 8.0])
        assert (
            main(["obs", "regress", "--history", str(path), "--json"]) == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["series"][0]["status"] == "regression"

    def test_knobs_change_the_verdict(self, tmp_path):
        # the same 8% dip passes at the default 10% floor and fails
        # with the floor tightened to 5%
        path = _ledger_with(tmp_path, [10.0, 10.0, 10.0, 9.2])
        assert main(["obs", "regress", "--history", str(path)]) == 0
        assert (
            main(["obs", "regress", "--history", str(path),
                  "--rel-floor", "0.05"]) == 1
        )

    def test_missing_ledger_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "none.jsonl"
        assert main(["obs", "regress", "--history", str(missing)]) == 2
        assert "no ledger" in capsys.readouterr().err


class TestLedgerCheckCommand:
    def test_clean_ledger_passes(self, tmp_path, capsys):
        path = _ledger_with(tmp_path, [1.0, 2.0])
        assert main(["obs", "ledger-check", "--history", str(path)]) == 0
        assert "2 entries, schema ok" in capsys.readouterr().out

    def test_schema_drift_exits_1(self, tmp_path, capsys):
        path = _ledger_with(tmp_path, [1.0])
        with open(path, "a") as fh:
            fh.write(json.dumps({"schema": "repro.obs/ledger/v1"}) + "\n")
        assert main(["obs", "ledger-check", "--history", str(path)]) == 1
        assert "schema drift" in capsys.readouterr().err

    def test_missing_ledger_exits_2(self, tmp_path):
        assert (
            main(["obs", "ledger-check", "--history",
                  str(tmp_path / "none.jsonl")]) == 2
        )


class TestEventsJsonWiring:
    def test_run_journal_brackets_command(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        assert (
            main(["run", "F1", "--fast", "--events-json", str(journal)]) == 0
        )
        capsys.readouterr()
        events, damaged = read_journal(journal)
        assert damaged == 0
        kinds = [e["event"] for e in events]
        assert kinds[0] == "journal.open"
        assert kinds[1] == "cli.start"
        assert kinds[-2] == "cli.finish"
        assert kinds[-1] == "journal.close"
        finish = events[-2]["fields"]
        assert finish == {"command": "run", "status": 0}
        # one run id correlates every event
        assert len({e["run"] for e in events}) == 1

    def test_verify_emits_suite_events(self, tmp_path, capsys):
        journal = tmp_path / "verify.jsonl"
        assert (
            main(["verify", "--only", "B1", "--events-json",
                  str(journal)]) == 0
        )
        capsys.readouterr()
        events, _ = read_journal(journal)
        kinds = [e["event"] for e in events]
        assert "verify.suite.start" in kinds
        assert "verify.invariant" in kinds
        assert "verify.suite.finish" in kinds
        inv = next(e for e in events if e["event"] == "verify.invariant")
        assert inv["fields"]["id"] == "B1"
        assert inv["fields"]["passed"] is True
        finish = next(
            e for e in events if e["event"] == "verify.suite.finish"
        )
        assert finish["fields"]["passed"] is True
        assert finish["fields"]["failed"] == []
