"""Bench-history ledger: schema, robust regression gate, CLI contract."""

import json
import pathlib
import shutil

import pytest

from repro.obs import ledger
from repro.obs.ledger import (
    HIGHER_IS_BETTER,
    LEDGER_SCHEMA,
    LOWER_IS_BETTER,
    append_entries,
    check_history,
    detect_regressions,
    digest_config,
    load_history,
    make_entry,
    validate_entry,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
REAL_HISTORY = REPO_ROOT / "benchmarks" / "results" / "history.jsonl"


def _entry(value, *, metric="speedup", direction=HIGHER_IS_BETTER,
           gated=True, digest="abc123def456"):
    return make_entry(
        "bench_x",
        metric,
        value,
        direction=direction,
        config_digest=digest,
        gated=gated,
        sha="deadbeef",
    )


class TestEntries:
    def test_make_entry_is_schema_complete(self):
        entry = _entry(12.5)
        assert validate_entry(entry) == []
        assert entry["schema"] == LEDGER_SCHEMA
        assert entry["value"] == 12.5
        assert entry["git_sha"] == "deadbeef"

    def test_make_entry_rejects_bad_direction(self):
        with pytest.raises(ValueError, match="direction"):
            make_entry("b", "m", 1.0, direction="sideways",
                       config_digest="x")

    def test_validate_entry_flags_each_defect(self):
        assert validate_entry("not a dict")
        assert any("missing key" in p for p in validate_entry({}))
        bad = _entry(1.0)
        bad["value"] = "fast"
        assert any("numeric" in p for p in validate_entry(bad))
        bad = _entry(1.0)
        bad["gated"] = "yes"
        assert any("boolean" in p for p in validate_entry(bad))
        bad = _entry(1.0)
        bad["schema"] = "repro.obs/ledger/v99"
        assert any("schema" in p for p in validate_entry(bad))

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        n = append_entries(path, [_entry(1.0), _entry(2.0)])
        assert n == 2
        entries, damaged = load_history(path)
        assert damaged == 0
        assert [e["value"] for e in entries] == [1.0, 2.0]

    def test_append_refuses_malformed(self, tmp_path):
        path = tmp_path / "history.jsonl"
        bad = _entry(1.0)
        del bad["direction"]
        with pytest.raises(ValueError, match="malformed"):
            append_entries(path, [bad])
        assert not path.exists()

    def test_load_skips_damage_unless_strict(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_entries(path, [_entry(1.0)])
        with open(path, "a") as fh:
            fh.write("{truncated\n")
            fh.write(json.dumps({"schema": LEDGER_SCHEMA}) + "\n")
        entries, damaged = load_history(path)
        assert len(entries) == 1 and damaged == 2
        with pytest.raises(ValueError, match=":2:"):
            load_history(path, strict=True)

    def test_digest_config_stable_and_order_independent(self):
        a = digest_config({"x": 1, "y": [2, 3]})
        b = digest_config({"y": [2, 3], "x": 1})
        assert a == b
        assert len(a) == 12
        assert digest_config({"x": 2}) != a


class TestRegressionGate:
    def _series(self, values, **kwargs):
        return [_entry(v, **kwargs) for v in values]

    def test_stable_series_ok(self):
        report = detect_regressions(self._series([10.0, 10.1, 9.9, 10.05]))
        assert report.ok
        (verdict,) = report.verdicts
        assert verdict.status == "ok"
        assert verdict.baseline_points == 3

    def test_twenty_percent_drop_flags_higher_is_better(self):
        report = detect_regressions(self._series([10.0, 10.1, 9.9, 8.0]))
        assert not report.ok
        (verdict,) = report.regressions
        assert verdict.deviation == pytest.approx(2.0)
        assert verdict.status == "regression"

    def test_twenty_percent_rise_flags_lower_is_better(self):
        report = detect_regressions(
            self._series([5.0, 5.05, 4.95, 6.0],
                         direction=LOWER_IS_BETTER)
        )
        assert not report.ok

    def test_improvement_never_flags(self):
        # a 50% speedup gain is not a regression
        report = detect_regressions(self._series([10.0, 10.0, 10.0, 15.0]))
        assert report.ok
        # nor is a 50% drop in a lower-is-better metric
        report = detect_regressions(
            self._series([5.0, 5.0, 5.0, 2.5], direction=LOWER_IS_BETTER)
        )
        assert report.ok

    def test_ungated_series_reports_informational(self):
        report = detect_regressions(
            self._series([10.0, 10.0, 10.0, 5.0], gated=False)
        )
        assert report.ok
        (verdict,) = report.verdicts
        assert verdict.status == "informational"

    def test_insufficient_history_passes(self):
        report = detect_regressions(self._series([10.0, 1.0]))
        assert report.ok
        (verdict,) = report.verdicts
        assert verdict.status == "insufficient-history"

    def test_noisy_series_needs_mad_scaled_deviation(self):
        # baseline MAD is large; a deviation inside the robust band
        # must not flag even though it exceeds the relative floor
        noisy = [10.0, 14.0, 6.0, 13.0, 7.0, 12.0, 8.0, 11.0, 7.6]
        report = detect_regressions(self._series(noisy))
        assert report.ok

    def test_rel_floor_absorbs_tiny_mad(self):
        # near-identical baselines make MAD ~ 0; the relative floor
        # keeps a 5% wiggle from flagging
        report = detect_regressions(
            self._series([10.0, 10.0, 10.0, 10.0, 9.5])
        )
        assert report.ok

    def test_window_limits_baseline(self):
        # old bad epoch beyond the window must not drag the median
        values = [1.0] * 10 + [10.0] * 8 + [9.8]
        report = detect_regressions(self._series(values), window=8)
        assert report.ok
        (verdict,) = report.verdicts
        assert verdict.baseline_median == pytest.approx(10.0)

    def test_series_keyed_by_config_digest(self):
        # same metric under two digests = two independent series
        entries = self._series([10.0, 10.0, 10.0, 10.0], digest="aaa") + \
            self._series([2.0, 2.0, 2.0, 2.0], digest="bbb")
        report = detect_regressions(entries)
        assert len(report.verdicts) == 2
        assert report.ok

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            detect_regressions([], window=0)

    def test_report_render_and_dict(self):
        report = detect_regressions(self._series([10.0, 10.0, 10.0, 8.0]))
        text = report.render()
        assert "REGRESSION" in text
        assert "bench_x:speedup" in text
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["series"][0]["status"] == "regression"
        empty = detect_regressions([])
        assert "empty ledger" in empty.render()


@pytest.mark.skipif(
    not REAL_HISTORY.exists(), reason="committed ledger not present"
)
class TestRealLedger:
    def test_real_ledger_passes_the_gate(self):
        report = check_history(REAL_HISTORY)
        assert report.ok, report.render()
        assert report.damaged_lines == 0
        assert len(report.verdicts) >= 3

    def test_synthetic_slowdown_detected_in_copied_ledger(self, tmp_path):
        """Acceptance criterion: copy the real ledger, degrade every
        gated series by 20%, and the gate must flag each one."""
        copy = tmp_path / "history.jsonl"
        shutil.copy(REAL_HISTORY, copy)
        entries, _ = load_history(copy)
        gated = {}
        for e in entries:
            if e["gated"]:
                gated[(e["bench_id"], e["metric"], e["config_digest"])] = e
        assert gated, "committed ledger has no gated series"
        degraded = []
        for (bench, metric, digest), last in gated.items():
            # stabilise the baseline at the latest value, then append
            # a point 20% worse in the series' adverse direction
            stable = [
                make_entry(bench, metric, float(last["value"]),
                           direction=last["direction"],
                           config_digest=digest, sha="stab")
                for _ in range(ledger.DEFAULT_WINDOW)
            ]
            factor = (
                0.8 if last["direction"] == HIGHER_IS_BETTER else 1.2
            )
            worse = make_entry(bench, metric, float(last["value"]) * factor,
                               direction=last["direction"],
                               config_digest=digest, sha="slow")
            degraded.append((bench, metric))
            append_entries(copy, stable + [worse])
        report = check_history(copy)
        assert not report.ok
        flagged = {(v.bench_id, v.metric) for v in report.regressions}
        assert flagged == set(degraded), report.render()
