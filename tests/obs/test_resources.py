"""Resource profiling: peak RSS, gauges, tracemalloc opt-in, no-op path."""

import pytest

from repro import obs
from repro.obs import resources
from repro.obs.events import read_journal
from repro.obs.tracing import NULL_SPAN


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    obs.close_journal()
    resources.disable_alloc_tracing()
    yield
    obs.disable()
    obs.reset()
    obs.close_journal()
    resources.disable_alloc_tracing()


class TestPeakRss:
    def test_positive_and_monotone(self):
        first = resources.peak_rss_bytes()
        assert first > 0
        ballast = bytearray(8 * 1024 * 1024)
        second = resources.peak_rss_bytes()
        assert second >= first
        del ballast


class TestProfileBlock:
    def test_disabled_path_is_the_shared_null_span(self):
        assert resources.profile_block("x") is NULL_SPAN

    def test_enabled_sets_peak_rss_gauge(self):
        obs.enable()
        with resources.profile_block("kernel"):
            pass
        value = obs.gauge("resources.kernel.peak_rss_bytes").value
        assert value > 0

    def test_journal_only_emits_sample_event(self, tmp_path):
        # metrics off but journal open: the block must still record
        path = tmp_path / "events.jsonl"
        obs.open_journal(path, header=False)
        with resources.profile_block("era", replications=32):
            pass
        obs.close_journal()
        events, _ = read_journal(path)
        sample = next(e for e in events if e["event"] == "resources.sample")
        assert sample["fields"]["label"] == "era"
        assert sample["fields"]["replications"] == 32
        assert sample["fields"]["peak_rss_bytes"] > 0

    def test_tracemalloc_fields_when_tracing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs.open_journal(path, header=False)
        obs.enable()
        resources.enable_alloc_tracing()
        with resources.profile_block("alloc"):
            junk = [bytes(1024) for _ in range(200)]
        del junk
        obs.close_journal()
        assert (
            obs.gauge("resources.alloc.alloc_peak_bytes").value > 0
        )
        events, _ = read_journal(path)
        sample = next(e for e in events if e["event"] == "resources.sample")
        fields = sample["fields"]
        assert fields["alloc_peak_bytes"] >= 200 * 1024
        assert "alloc_net_bytes" in fields
        assert fields["top_allocations"]
        assert all(
            {"site", "size_bytes", "count"} <= set(row)
            for row in fields["top_allocations"]
        )

    def test_env_var_opts_in(self, monkeypatch):
        monkeypatch.setenv(resources.TRACEMALLOC_ENV, "1")
        obs.enable()
        with resources.profile_block("envblock"):
            data = list(range(1000))
        del data
        assert obs.gauge("resources.envblock.alloc_peak_bytes").value > 0
        # the block started tracemalloc; clean it up
        assert resources.alloc_tracing_active()

    def test_exceptions_propagate(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with resources.profile_block("boom"):
                raise RuntimeError("no")
        # the sample was still taken on the way out
        assert obs.gauge("resources.boom.peak_rss_bytes").value > 0


class TestTracingToggles:
    def test_enable_disable_idempotent(self):
        resources.enable_alloc_tracing()
        resources.enable_alloc_tracing()
        assert resources.alloc_tracing_active()
        resources.disable_alloc_tracing()
        resources.disable_alloc_tracing()
        assert not resources.alloc_tracing_active()
