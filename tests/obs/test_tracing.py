"""Span nesting, timing monotonicity, disabled no-op path, JSON export."""

import json
import time

import pytest

from repro import obs
from repro.obs.tracing import NULL_SPAN, SpanRecord, Tracer


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestTracer:
    def test_nesting_structure(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("child_a"):
                pass
            with tracer.span("child_b"):
                with tracer.span("grandchild"):
                    pass
        roots = tracer.roots()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["child_a", "child_b"]
        assert roots[0].children[1].children[0].name == "grandchild"

    def test_timing_monotonic_and_nested_within_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.003)
        outer = tracer.roots()[0]
        inner = outer.children[0]
        assert outer.end >= outer.start
        assert inner.duration >= 0.003
        assert outer.duration >= inner.duration
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots()] == ["first", "second"]

    def test_labels_and_annotate(self):
        tracer = Tracer()
        with tracer.span("s", experiment="F3") as live:
            live.annotate(points=25)
        record = tracer.roots()[0]
        assert record.labels == {"experiment": "F3", "points": 25}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("no")
        record = tracer.roots()[0]
        assert record.labels["error"] == "RuntimeError"
        assert record.end is not None

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.roots() == []

    def test_json_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer", exp="F1"):
            with tracer.span("inner"):
                pass
        payload = json.loads(tracer.to_json())
        assert payload[0]["name"] == "outer"
        assert payload[0]["labels"] == {"exp": "F1"}
        assert payload[0]["children"][0]["name"] == "inner"
        assert payload[0]["duration_seconds"] >= 0.0


class TestDisabledFastPath:
    def test_span_returns_shared_noop(self):
        assert obs.span("a") is NULL_SPAN
        assert obs.span("b", k=1) is obs.span("c")

    def test_noop_span_records_nothing(self):
        with obs.span("invisible"):
            pass
        assert obs.trace_roots() == []

    def test_noop_annotate(self):
        with obs.span("invisible") as live:
            live.annotate(k=1)  # must not raise

    def test_timed_disabled_passthrough(self):
        @obs.timed()
        def f(x):
            return x + 1

        assert f(1) == 2
        assert obs.trace_roots() == []

    def test_metrics_not_recorded_by_guarded_code(self):
        # the instrumented-code pattern: check, then touch
        if obs.enabled():  # pragma: no cover - must be False here
            obs.counter("should.not.exist").inc()
        assert obs.registry().get("should.not.exist") is None


class TestModuleApi:
    def test_enable_disable_roundtrip(self):
        assert not obs.enabled()
        obs.enable()
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()

    def test_enabled_span_recorded(self):
        obs.enable()
        with obs.span("live", tag="x"):
            pass
        roots = obs.trace_roots()
        assert roots[0].name == "live"
        assert roots[0].labels == {"tag": "x"}

    def test_timed_enabled_records_span(self):
        obs.enable()

        @obs.timed("work.unit", kind="test")
        def f(x):
            return 2 * x

        assert f(21) == 42
        record = obs.trace_roots()[0]
        assert record.name == "work.unit"
        assert record.labels == {"kind": "test"}

    def test_timed_default_name_is_qualname(self):
        obs.enable()

        @obs.timed()
        def some_function():
            return 1

        some_function()
        assert "some_function" in obs.trace_roots()[0].name

    def test_session_context_restores_state(self):
        obs.counter("leftover").inc()
        with obs.session() as (reg, tracer):
            assert obs.enabled()
            # session resets by default: the leftover counter is gone
            assert reg.get("leftover") is None
            obs.counter("inside").inc()
            with obs.span("s"):
                pass
        assert not obs.enabled()
        # data recorded during the session stays readable after it
        assert obs.registry().get("inside").value == 1.0
        assert obs.trace_roots()[0].name == "s"

    def test_enable_swaps_in_fresh_sinks(self):
        obs.enable()
        obs.counter("old").inc()
        fresh = obs.MetricsRegistry()
        obs.enable(registry=fresh)
        assert obs.registry() is fresh
        assert obs.registry().get("old") is None

    def test_render_report_contains_both_sections(self):
        obs.enable()
        with obs.span("phase"):
            obs.counter("things").inc(3)
        text = obs.render_report()
        assert "span tree" in text
        assert "phase" in text
        assert "things" in text


class TestSpanRecordToDict:
    def test_open_span_duration_is_live(self):
        record = SpanRecord("open")
        record.start = time.perf_counter()
        assert record.duration >= 0.0
        assert "duration_seconds" in record.to_dict()
