"""Trace export: Chrome trace schema, hotspot math, trace-file loading."""

import json

import pytest

from repro import obs
from repro.obs.tracing import SpanRecord, Tracer
from repro.obs.traceview import (
    TRACE_SCHEMA,
    chrome_trace,
    hotspots,
    load_trace_file,
    render_hotspots,
    spans_from_trace_json,
    validate_chrome_trace,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _span(name, start, end, children=(), **labels):
    record = SpanRecord(name, labels or None)
    record.start = start
    record.end = end
    record.children = list(children)
    return record


def _recorded_forest():
    """A real (live-clock) forest from the tracer."""
    tracer = Tracer()
    with tracer.span("experiment", experiment="F2"):
        with tracer.span("batch.find_roots"):
            pass
        with tracer.span("batch.find_roots"):
            pass
        with tracer.span("model.total"):
            with tracer.span("quad"):
                pass
    with tracer.span("verify"):
        pass
    return tracer.roots()


class TestChromeTrace:
    def test_exported_trace_validates_against_schema(self):
        # the acceptance-criterion test: exporter output passes its
        # own schema validator with zero violations
        trace = chrome_trace(_recorded_forest(), run_id="r-x")
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"] == {"schema": TRACE_SCHEMA, "run": "r-x"}
        assert trace["displayTimeUnit"] == "ms"

    def test_trace_json_serialisable_and_structure(self):
        trace = chrome_trace(_recorded_forest())
        payload = json.loads(json.dumps(trace))
        events = payload["traceEvents"]
        # one metadata track-name event per root, X events for spans
        metas = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert [m["args"]["name"] for m in metas] == [
            "root:experiment",
            "root:verify",
        ]
        assert {e["name"] for e in xs} >= {
            "experiment",
            "batch.find_roots",
            "model.total",
            "quad",
            "verify",
        }
        # each root is its own track, starting at ts = 0
        roots = [e for e in xs if e["name"] in ("experiment", "verify")]
        assert sorted(e["tid"] for e in roots) == [0, 1]
        assert all(e["ts"] == 0.0 for e in roots)

    def test_live_children_keep_true_offsets(self):
        trace = chrome_trace(_recorded_forest())
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        by_name = {}
        for e in xs:
            by_name.setdefault(e["name"], []).append(e)
        parent = by_name["experiment"][0]
        for child in by_name["batch.find_roots"] + by_name["model.total"]:
            assert child["ts"] >= parent["ts"]
            assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1.0

    def test_pinned_children_pack_sequentially(self):
        # rehydrated spans (from worker JSON) have start pinned to 0
        child_a = _span("a", 0.0, 0.002)
        child_b = _span("b", 0.0, 0.003)
        root = _span("root", 0.0, 0.006, [child_a, child_b])
        trace = chrome_trace([root])
        assert validate_chrome_trace(trace) == []
        xs = {e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
        assert xs["a"]["ts"] == 0.0
        # b starts where a ended, not on top of it
        assert xs["b"]["ts"] == pytest.approx(xs["a"]["dur"])

    def test_worker_label_becomes_pid(self):
        root = _span("chunk", 0.0, 0.001, worker=3)
        trace = chrome_trace([root])
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert xs[0]["pid"] == 3
        assert xs[0]["args"]["worker"] == 3

    def test_empty_forest(self):
        trace = chrome_trace([])
        assert validate_chrome_trace(trace) == []
        assert trace["traceEvents"] == []


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []

    def test_flags_bad_events(self):
        trace = {
            "traceEvents": [
                {"name": "ok", "ph": "X", "ts": 0, "dur": 1, "pid": 0, "tid": 0},
                {"name": "", "ph": "X", "ts": 0, "dur": 1, "pid": 0, "tid": 0},
                {"name": "neg", "ph": "X", "ts": -1, "dur": 1, "pid": 0, "tid": 0},
                {"name": "nan", "ph": "X", "ts": 0, "dur": float("nan"),
                 "pid": 0, "tid": 0},
                {"name": "badpid", "ph": "X", "ts": 0, "dur": 1, "pid": "x",
                 "tid": 0},
                {"name": "phase", "ph": "B", "pid": 0, "tid": 0},
                "not an object",
            ]
        }
        errors = validate_chrome_trace(trace)
        assert len(errors) == 6
        assert any("empty name" in e for e in errors)
        assert any("unsupported phase" in e for e in errors)


class TestHotspots:
    def test_self_time_subtracts_children_and_sums_to_traced(self):
        quad = _span("quad", 0.0, 0.3)
        solve = _span("solve", 0.0, 0.7, [quad])
        root = _span("sweep", 0.0, 1.0, [solve])
        report = hotspots([root])
        rows = {r["name"]: r for r in report["hotspots"]}
        assert rows["sweep"]["self_seconds"] == pytest.approx(0.3)
        assert rows["solve"]["self_seconds"] == pytest.approx(0.4)
        assert rows["quad"]["self_seconds"] == pytest.approx(0.3)
        total_self = sum(r["self_seconds"] for r in report["hotspots"])
        assert total_self == pytest.approx(report["traced_seconds"])
        assert report["traced_seconds"] == pytest.approx(1.0)
        assert report["spans"] == 3

    def test_rows_sorted_by_self_time_descending(self):
        report = hotspots(
            [
                _span("big", 0.0, 1.0),
                _span("small", 0.0, 0.1),
                _span("medium", 0.0, 0.5),
            ]
        )
        names = [r["name"] for r in report["hotspots"]]
        assert names == ["big", "medium", "small"]

    def test_same_name_spans_aggregate(self):
        report = hotspots([_span("f", 0.0, 0.2), _span("f", 0.0, 0.4)])
        (row,) = report["hotspots"]
        assert row["count"] == 2
        assert row["cumulative_seconds"] == pytest.approx(0.6)
        assert row["mean_seconds"] == pytest.approx(0.3)
        assert row["p50_seconds"] in (pytest.approx(0.2), pytest.approx(0.4))
        assert row["p99_seconds"] == pytest.approx(0.4)

    def test_clock_skew_clamped_at_zero(self):
        # a child reported longer than its parent must not go negative
        child = _span("child", 0.0, 0.5)
        root = _span("root", 0.0, 0.3, [child])
        report = hotspots([root])
        rows = {r["name"]: r for r in report["hotspots"]}
        assert rows["root"]["self_seconds"] == 0.0

    def test_coverage_against_wall_clock(self):
        report = hotspots([_span("r", 0.0, 0.8)], wall_seconds=1.0)
        assert report["coverage"] == pytest.approx(0.8)
        over = hotspots([_span("r", 0.0, 2.0)], wall_seconds=1.0)
        assert over["coverage"] == 1.0  # capped

    def test_render_mentions_rows_and_totals(self):
        report = hotspots([_span("kernel", 0.0, 0.5)], wall_seconds=1.0)
        text = render_hotspots(report)
        assert "kernel" in text
        assert "coverage 50.0%" in text
        assert render_hotspots(hotspots([])) == "(no spans recorded)"

    def test_render_top_limits_rows(self):
        report = hotspots([_span(f"s{i}", 0.0, 0.1 * (i + 1)) for i in range(5)])
        text = render_hotspots(report, top=2)
        assert "s4" in text and "s3" in text
        assert "s0" not in text


class TestTraceFileLoading:
    def test_round_trip_through_trace_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", experiment="F1"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "spans.json"
        path.write_text(tracer.to_json())
        roots = load_trace_file(path)
        assert [r.name for r in roots] == ["outer"]
        assert roots[0].labels == {"experiment": "F1"}
        assert [c.name for c in roots[0].children] == ["inner"]
        # rehydrated forests export a valid trace
        assert validate_chrome_trace(chrome_trace(roots)) == []

    def test_non_array_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON array"):
            spans_from_trace_json({"not": "a list"})
