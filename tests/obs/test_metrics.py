"""Registry semantics: counters, gauges, histograms, export."""

import json
import math
import threading

import pytest

from repro.obs.metrics import (
    HISTOGRAM_SAMPLE_CAP,
    CallCounter,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricTypeMismatchError,
    share_lock,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("c")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1.0)

    def test_thread_safe_increments(self):
        c = Counter("c")

        def worker():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestGauge:
    def test_nan_before_first_set(self):
        assert math.isnan(Gauge("g").value)

    def test_set_overwrites(self):
        g = Gauge("g")
        g.set(5.0)
        g.set(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5
        stats = h.export()
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["p50"] == pytest.approx(2.0, abs=1.0)

    def test_empty_export(self):
        assert Histogram("h").export() == {"count": 0}
        assert math.isnan(Histogram("h").mean)

    def test_sample_buffer_stays_bounded(self):
        h = Histogram("h")
        for i in range(3 * HISTOGRAM_SAMPLE_CAP):
            h.observe(float(i))
        assert h.count == 3 * HISTOGRAM_SAMPLE_CAP
        assert len(h._samples) == HISTOGRAM_SAMPLE_CAP
        # exact stats still exact despite the bounded buffer
        assert h.export()["max"] == float(3 * HISTOGRAM_SAMPLE_CAP - 1)

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101.0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert len(reg) == 0
        assert reg.counter("a").value == 0.0

    def test_get_returns_none_for_unknown(self):
        assert MetricsRegistry().get("nope") is None

    def test_snapshot_groups_and_sorts(self):
        reg = MetricsRegistry()
        reg.counter("z.calls").inc(2)
        reg.counter("a.calls").inc(1)
        reg.gauge("rate").set(9.0)
        reg.histogram("resid").observe(0.5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.calls", "z.calls"]
        assert snap["gauges"]["rate"] == 9.0
        assert snap["histograms"]["resid"]["count"] == 1

    def test_json_export_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("calls").inc(3)
        reg.gauge("rate").set(1.5)
        reg.histogram("h").observe(2.0)
        payload = json.loads(reg.to_json())
        assert payload["counters"]["calls"] == 3.0
        assert payload["gauges"]["rate"] == 1.5
        assert payload["histograms"]["h"]["mean"] == 2.0

    def test_render_text_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("calls").inc()
        reg.gauge("rate").set(2.0)
        reg.histogram("h").observe(1.0)
        text = reg.render_text()
        assert "calls" in text and "rate" in text and "h" in text

    def test_render_text_empty(self):
        assert "no metrics" in MetricsRegistry().render_text()


class TestSnapshotTypeTags:
    def test_snapshot_tags_every_instrument_kind(self):
        reg = MetricsRegistry()
        reg.counter("calls").inc()
        reg.gauge("rate").set(1.0)
        reg.histogram("resid").observe(0.5)
        snap = reg.snapshot()
        assert snap["types"] == {
            "calls": "counter",
            "rate": "gauge",
            "resid": "histogram",
        }

    def test_kind_clash_is_the_dedicated_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricTypeMismatchError):
            reg.histogram("x")
        # and it still is a TypeError for legacy catchers
        assert issubclass(MetricTypeMismatchError, TypeError)

    def test_absorb_rejects_kind_clash_with_local_registry(self):
        reg = MetricsRegistry()
        reg.counter("m").inc(2)
        incoming = {"gauges": {"m": 1.0}, "types": {"m": "gauge"}}
        with pytest.raises(MetricTypeMismatchError, match="gauge"):
            reg.absorb_snapshot(incoming)
        # nothing was folded in before the failure
        assert reg.counter("m").value == 2.0

    def test_absorb_rejects_internally_inconsistent_snapshot(self):
        reg = MetricsRegistry()
        corrupt = {
            "counters": {"m": 3.0},
            "types": {"m": "histogram"},  # tag disagrees with section
        }
        with pytest.raises(MetricTypeMismatchError, match="corrupt"):
            reg.absorb_snapshot(corrupt)

    def test_absorb_accepts_untagged_legacy_snapshot(self):
        # snapshots from before the types section must still merge
        reg = MetricsRegistry()
        reg.absorb_snapshot({"counters": {"m": 3.0}})
        assert reg.counter("m").value == 3.0


class TestSharedLockBatches:
    def test_share_lock_returns_common_lock(self):
        a, b, h = Counter("a"), Counter("b"), Histogram("h")
        lock = share_lock(a, b, h)
        assert a._lock is lock and b._lock is lock and h._lock is lock

    def test_batched_updates_visible(self):
        a, b, h = Counter("a"), Counter("b"), Histogram("h")
        lock = share_lock(a, b, h)
        with lock:
            a.inc_unlocked()
            b.inc_unlocked(7.0)
            h.observe_unlocked(0.5)
        assert a.value == 1.0
        assert b.value == 7.0
        assert h.count == 1 and h.sum == 0.5

    def test_batch_and_plain_increments_race_safely(self):
        a, b = Counter("a"), Counter("b")
        lock = share_lock(a, b)

        def batched():
            for _ in range(10_000):
                with lock:
                    a.inc_unlocked()
                    b.inc_unlocked()

        def plain():
            for _ in range(10_000):
                a.inc()
                b.inc()

        threads = [threading.Thread(target=batched) for _ in range(3)]
        threads += [threading.Thread(target=plain) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert a.value == 60_000
        assert b.value == 60_000

    def test_registry_reset_bumps_generation(self):
        reg = MetricsRegistry()
        gen = reg.generation
        reg.counter("c").inc()
        reg.reset()
        assert reg.generation == gen + 1


class TestCallCounter:
    def test_counts_and_delegates(self):
        counted = CallCounter(lambda x: x * 2)
        assert counted(3) == 6
        assert counted(4) == 8
        assert counted.calls == 2
