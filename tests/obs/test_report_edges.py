"""Report/export edge cases: empty sinks, concurrent export, absorb."""

import threading

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.report import render_report, render_span_tree


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestEmptySinks:
    def test_empty_registry_and_trace_render(self):
        text = render_report(MetricsRegistry(), [])
        assert "(no spans recorded)" in text
        assert "(no metrics recorded)" in text

    def test_empty_registry_snapshot_shape(self):
        snap = MetricsRegistry().snapshot()
        assert snap == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "types": {},
        }

    def test_render_span_tree_empty(self):
        assert render_span_tree([]) == "(no spans recorded)"

    def test_empty_histogram_renders_as_empty(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        assert "(empty)" in reg.render_text()


class TestAbsorbEdges:
    def test_absorb_empty_histogram_stats_is_noop(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(3.0)
        h.absorb({"count": 0})
        assert h.count == 1
        assert h.sum == 3.0

    def test_absorb_snapshot_with_empty_histogram_section(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        incoming = {
            "counters": {},
            "gauges": {},
            "histograms": {"h": {"count": 0}},
            "types": {"h": "histogram"},
        }
        reg.absorb_snapshot(incoming)
        assert reg.histogram("h").count == 1

    def test_absorb_snapshot_skips_nan_gauges(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(5.0)
        reg.absorb_snapshot(
            {"gauges": {"g": float("nan")}, "types": {"g": "gauge"}}
        )
        assert reg.gauge("g").value == 5.0

    def test_merge_snapshots_of_nothing(self):
        merged = merge_snapshots([])
        assert merged["counters"] == {}
        merged = merge_snapshots(
            [MetricsRegistry().snapshot(), MetricsRegistry().snapshot()]
        )
        assert merged["types"] == {}


class TestConcurrentExport:
    def test_snapshot_during_writes_never_corrupts(self):
        """Exports taken while writers hammer the registry must stay
        self-consistent: every name typed, every value finite-typed."""
        reg = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def writer(i):
            n = 0
            while not stop.is_set():
                reg.counter(f"c{i}").inc()
                reg.gauge(f"g{i}").set(n)
                reg.histogram(f"h{i}").observe(n % 7)
                n += 1

        def exporter():
            while not stop.is_set():
                try:
                    snap = reg.snapshot()
                    for section in ("counters", "gauges"):
                        for name, value in snap[section].items():
                            assert isinstance(value, float)
                            assert snap["types"][name] in (
                                "counter",
                                "gauge",
                            )
                    for name, stats in snap["histograms"].items():
                        assert snap["types"][name] == "histogram"
                        if stats["count"]:
                            assert stats["sum"] >= 0.0
                    reg.render_text()
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(3)
        ] + [threading.Thread(target=exporter) for _ in range(2)]
        for t in threads:
            t.start()
        timer = threading.Timer(0.3, stop.set)
        timer.start()
        for t in threads:
            t.join(timeout=10.0)
        timer.cancel()
        stop.set()
        assert not errors, errors[0]

    def test_concurrent_absorb_and_snapshot(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        worker.counter("tasks").inc(5)
        worker.histogram("residual").observe(1e-9)
        snap = worker.snapshot()
        stop = threading.Event()
        errors = []

        def absorber():
            while not stop.is_set():
                try:
                    parent.absorb_snapshot(snap)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=absorber) for _ in range(4)]
        for t in threads:
            t.start()
        stop_timer = threading.Timer(0.2, stop.set)
        stop_timer.start()
        for t in threads:
            t.join(timeout=10.0)
        stop_timer.cancel()
        stop.set()
        assert not errors, errors[0]
        # counts remain exact multiples of the absorbed amounts
        assert parent.counter("tasks").value % 5 == 0
        assert parent.histogram("residual").count > 0
