"""Event journal: round-trip, rotation, damage tolerance, env sharing."""

import json
import os
import threading

import pytest

from repro import obs
from repro.obs import events
from repro.obs.events import (
    EVENT_SCHEMA,
    EVENTS_ENV,
    EventJournal,
    follow_events,
    new_run_id,
    parse_events,
    read_journal,
    render_event,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    obs.close_journal()
    yield
    obs.disable()
    obs.reset()
    obs.close_journal()


class TestEventJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventJournal(path, run_id="r-test") as j:
            j.emit("alpha", x=1)
            j.emit("beta", label="hi", value=2.5)
        got, damaged = read_journal(path)
        assert damaged == 0
        assert [e["event"] for e in got] == ["alpha", "beta"]
        assert all(e["schema"] == EVENT_SCHEMA for e in got)
        assert all(e["run"] == "r-test" for e in got)
        assert all(e["pid"] == os.getpid() for e in got)
        assert got[0]["fields"] == {"x": 1}
        assert got[1]["fields"] == {"label": "hi", "value": 2.5}

    def test_seq_and_monotonic_t_increase(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventJournal(path) as j:
            for _ in range(5):
                j.emit("tick")
        got, _ = read_journal(path)
        seqs = [e["seq"] for e in got]
        assert seqs == sorted(seqs) and len(set(seqs)) == 5
        ts = [e["t"] for e in got]
        assert ts == sorted(ts)
        assert all(t >= 0.0 for t in ts)

    def test_unserialisable_fields_stringified_not_raised(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventJournal(path) as j:
            j.emit("weird", payload=object())
        got, damaged = read_journal(path)
        assert damaged == 0
        assert "object" in got[0]["fields"]["payload"]

    def test_emit_open_header_is_self_describing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventJournal(path) as j:
            j.emit_open(command="test")
        (header,), _ = read_journal(path)
        assert header["event"] == "journal.open"
        fields = header["fields"]
        assert {"git_sha", "python", "package_version", "argv"} <= set(fields)
        assert fields["command"] == "test"

    def test_thread_safe_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventJournal(path) as j:

            def hammer():
                for _ in range(200):
                    j.emit("hit")

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        got, damaged = read_journal(path)
        assert damaged == 0
        assert len(got) == 800
        assert sorted(e["seq"] for e in got) == list(range(1, 801))

    def test_bad_constructor_args_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EventJournal(tmp_path / "x.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            EventJournal(tmp_path / "x.jsonl", backups=0)


class TestRotation:
    def test_rotation_shifts_backups_and_marks(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventJournal(path, max_bytes=600, backups=2) as j:
            for i in range(40):
                j.emit("fill", i=i, pad="x" * 40)
        assert path.exists()
        assert path.with_name("events.jsonl.1").exists()
        assert path.with_name("events.jsonl.2").exists()
        assert not path.with_name("events.jsonl.3").exists()
        live, damaged = read_journal(path)
        assert damaged == 0
        # a fresh generation always starts with the rotate marker
        assert live[0]["event"] == "journal.rotate"
        # nothing vanished except generations beyond the backup cap
        total = len(live)
        for i in (1, 2):
            gen, d = read_journal(path.with_name(f"events.jsonl.{i}"))
            assert d == 0
            total += len(gen)
        assert total <= 40 + 40  # events + rotate markers
        assert os.path.getsize(path) <= 600 + 200  # one line of slack

    def test_no_rotation_without_max_bytes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventJournal(path) as j:
            for i in range(200):
                j.emit("fill", i=i)
        assert not path.with_name("events.jsonl.1").exists()
        got, _ = read_journal(path)
        assert len(got) == 200


class TestDamageTolerance:
    def test_truncated_trailing_line_skipped_and_counted(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventJournal(path) as j:
            j.emit("ok.one")
            j.emit("ok.two")
        # simulate a writer killed mid-line
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema":"repro.obs/events/v1","event":"half')
        got, damaged = read_journal(path)
        assert [e["event"] for e in got] == ["ok.one", "ok.two"]
        assert damaged == 1

    def test_foreign_and_blank_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = [
            "",
            "not json at all",
            json.dumps({"schema": "other/v9", "event": "foreign"}),
            json.dumps({"schema": EVENT_SCHEMA, "event": "mine"}),
        ]
        path.write_text("\n".join(lines) + "\n")
        got, damaged = read_journal(path)
        assert [e["event"] for e in got] == ["mine"]
        assert damaged == 2  # blank lines are not damage

    def test_parse_events_strict_raises(self):
        with pytest.raises(ValueError):
            list(parse_events(["{bad json"], strict=True))
        with pytest.raises(ValueError):
            list(parse_events([json.dumps({"schema": "other"})], strict=True))


class TestModuleJournal:
    def test_emit_noop_without_journal(self):
        obs.emit("nobody.listening", x=1)  # must not raise

    def test_open_emit_close_cycle(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs.open_journal(path, command="unit")
        obs.emit("during", n=7)
        obs.close_journal()
        got, _ = read_journal(path)
        assert [e["event"] for e in got] == [
            "journal.open",
            "during",
            "journal.close",
        ]
        # close is idempotent and deactivates
        obs.close_journal()
        assert events.journal() is None

    def test_share_env_exports_and_restores(self, tmp_path, monkeypatch):
        monkeypatch.delenv(EVENTS_ENV, raising=False)
        monkeypatch.delenv(EVENTS_ENV + "_RUN", raising=False)
        path = tmp_path / "events.jsonl"
        j = obs.open_journal(path, header=False)
        with obs.share_journal_env():
            assert os.environ[EVENTS_ENV] == str(path)
            assert os.environ[EVENTS_ENV + "_RUN"] == j.run_id
        assert EVENTS_ENV not in os.environ
        assert EVENTS_ENV + "_RUN" not in os.environ

    def test_share_env_noop_without_journal(self, monkeypatch):
        monkeypatch.delenv(EVENTS_ENV, raising=False)
        with obs.share_journal_env():
            assert EVENTS_ENV not in os.environ

    def test_ensure_journal_from_env_joins_run(self, tmp_path, monkeypatch):
        path = tmp_path / "events.jsonl"
        monkeypatch.setenv(EVENTS_ENV, str(path))
        monkeypatch.setenv(EVENTS_ENV + "_RUN", "r-parent")
        j = obs.ensure_journal_from_env()
        assert j is not None and j.run_id == "r-parent"
        # idempotent: same journal object on repeat calls
        assert obs.ensure_journal_from_env() is j
        obs.close_journal()
        got, _ = read_journal(path)
        # workers announce themselves instead of re-writing the header
        assert got[0]["event"] == "worker.online"
        assert got[0]["run"] == "r-parent"

    def test_ensure_journal_from_env_without_env(self, monkeypatch):
        monkeypatch.delenv(EVENTS_ENV, raising=False)
        assert obs.ensure_journal_from_env() is None


class TestFollow:
    def test_follow_yields_appended_events_until_stopped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        j = EventJournal(path, run_id="r-follow")
        j.emit("first")
        seen = []
        done = threading.Event()

        def consume():
            for event in follow_events(
                path, poll_seconds=0.01, stop=done.is_set
            ):
                seen.append(event["event"])

        t = threading.Thread(target=consume)
        t.start()
        j.emit("second")
        j.close()
        for _ in range(200):
            if len(seen) >= 2:
                break
            threading.Event().wait(0.01)
        done.set()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert seen[:2] == ["first", "second"]

    def test_follow_survives_missing_file_then_stop(self, tmp_path):
        done = threading.Event()
        done.set()
        got = list(
            follow_events(tmp_path / "never.jsonl", poll_seconds=0.01,
                          stop=done.is_set)
        )
        assert got == []


class TestRendering:
    def test_render_event_compact_line(self):
        record = {
            "schema": EVENT_SCHEMA,
            "event": "cache.hit",
            "run": "r-abc",
            "pid": 123,
            "seq": 4,
            "t": 1.5,
            "fields": {"experiment": "F1", "ratio": 0.123456789,
                       "tags": ["a", "b"]},
        }
        line = render_event(record)
        assert "cache.hit" in line
        assert "r-abc" in line
        assert "pid=123" in line
        assert "experiment=F1" in line
        assert "0.123457" in line  # floats compacted to 6 significant digits

    def test_new_run_id_unique(self):
        ids = {new_run_id() for _ in range(50)}
        assert len(ids) == 50
        assert all(i.startswith("r-") for i in ids)
