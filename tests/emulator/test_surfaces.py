"""Surface fitting, certification refusal and domain policing.

These tests drive the Chebyshev machinery with cheap synthetic
functions so the contract — dense-sample certification, refuse rather
than extrapolate, serialisation fidelity — is exercised without the
exact solvers in the loop.  The real-solver integration lives in
``test_bank.py`` and the EM invariants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.emulator import (
    CertificationError,
    ChebyshevSurface,
    ErrorBudget,
    OutOfDomainError,
    fit_surface,
    fit_surface_2d,
    surface_from_dict,
    surfaces_summary,
)
from repro.emulator.surfaces import BOUND_FLOOR, SAFETY_FACTOR


def smooth(xs):
    """An analytic stand-in: entire, gap-like shape, cheap."""
    xs = np.asarray(xs, dtype=float)
    return np.exp(-xs / 100.0) + 0.01 * xs


@pytest.fixture(scope="module")
def surface():
    return fit_surface(
        smooth,
        quantity="delta",
        load="poisson",
        utility="adaptive",
        xname="capacity",
        lo=20.0,
        hi=400.0,
        degree=16,
        budget=ErrorBudget(atol=1e-6),
    )


class TestCertification:
    def test_certified_bound_is_safety_factor_times_observed(self, surface):
        assert surface.certified_bound == pytest.approx(
            max(SAFETY_FACTOR * surface.observed_residual, BOUND_FLOOR)
        )
        assert surface.certified_bound <= surface.allowance

    def test_fresh_probes_stay_inside_the_bound(self, surface):
        # disjoint from both the fit nodes and the certification grid
        xs = 20.0 + (400.0 - 20.0) * (np.arange(37) + np.sqrt(0.5)) / 37
        err = np.abs(surface.evaluate(xs) - smooth(xs))
        assert float(np.max(err)) <= surface.certified_bound

    def test_underparameterised_fit_refuses_to_certify(self):
        # a kink is unreachable for a low-degree polynomial at this atol
        with pytest.raises(CertificationError, match="exceeds the allowance"):
            fit_surface(
                lambda xs: np.abs(np.asarray(xs) - 200.0),
                quantity="delta",
                load="poisson",
                utility="adaptive",
                xname="capacity",
                lo=20.0,
                hi=400.0,
                degree=8,
                budget=ErrorBudget(atol=1e-8),
            )

    def test_non_finite_exact_values_refuse(self):
        def blows_up(xs):
            xs = np.asarray(xs, dtype=float)
            return np.where(xs > 300.0, np.inf, xs)

        with pytest.raises(CertificationError, match="non-finite"):
            fit_surface(
                blows_up,
                quantity="delta",
                load="poisson",
                utility="adaptive",
                xname="capacity",
                lo=20.0,
                hi=400.0,
                degree=8,
                budget=ErrorBudget(atol=1.0),
            )

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            ErrorBudget(atol=-1.0)
        with pytest.raises(ValueError):
            ErrorBudget(atol=0.0, rtol=0.0)

    def test_degenerate_domain_rejected(self):
        with pytest.raises(ValueError, match="lo < hi"):
            fit_surface(
                smooth,
                quantity="delta",
                load="poisson",
                utility="adaptive",
                xname="capacity",
                lo=400.0,
                hi=20.0,
                degree=8,
                budget=ErrorBudget(atol=1.0),
            )


class TestDomainPolicing:
    @pytest.mark.parametrize("x", [10.0, 19.999, 400.001, 900.0])
    def test_eval_scalar_refuses_out_of_domain(self, surface, x):
        with pytest.raises(OutOfDomainError, match="outside the fitted"):
            surface.eval_scalar(x)

    def test_evaluate_refuses_and_names_the_offender(self, surface):
        with pytest.raises(OutOfDomainError, match="first offender 900"):
            surface.evaluate([50.0, 900.0])

    def test_endpoints_are_inside(self, surface):
        assert surface.eval_scalar(20.0) == pytest.approx(smooth(20.0), abs=1e-5)
        assert surface.eval_scalar(400.0) == pytest.approx(smooth(400.0), abs=1e-5)

    def test_contains_is_elementwise(self, surface):
        np.testing.assert_array_equal(
            surface.contains([10.0, 20.0, 200.0, 400.0, 401.0]),
            [False, True, True, True, False],
        )


class TestEvaluation:
    def test_clenshaw_matches_numpy_chebval(self, surface):
        # eval_scalar is a hand-rolled recurrence; hold it to the
        # vectorised numpy evaluation at float precision
        xs = np.linspace(20.0, 400.0, 101)
        vec = surface.evaluate(xs)
        scl = np.array([surface.eval_scalar(x) for x in xs])
        np.testing.assert_allclose(scl, vec, rtol=1e-12, atol=1e-12)

    def test_log_x_surface(self):
        surf = fit_surface(
            lambda ps: np.log(np.asarray(ps)) ** 2,
            quantity="gamma",
            load="poisson",
            utility="adaptive",
            xname="price",
            lo=1e-3,
            hi=0.3,
            degree=12,
            budget=ErrorBudget(atol=1e-6),
            log_x=True,
        )
        ps = np.geomspace(1e-3, 0.3, 23)
        np.testing.assert_allclose(
            surf.evaluate(ps), np.log(ps) ** 2, atol=surf.certified_bound
        )
        assert surf.eval_scalar(0.01) == pytest.approx(np.log(0.01) ** 2, abs=1e-6)


class TestSerialisation:
    def test_round_trip_preserves_everything(self, surface):
        clone = ChebyshevSurface.from_dict(surface.to_dict())
        assert clone == surface
        assert clone.eval_scalar(123.0) == surface.eval_scalar(123.0)

    def test_kind_dispatch(self, surface):
        assert surface_from_dict(surface.to_dict()) == surface
        with pytest.raises(ValueError, match="unknown surface kind"):
            surface_from_dict({**surface.to_dict(), "kind": "spline"})

    def test_summary_renders_every_surface(self, surface):
        text = surfaces_summary([surface])
        assert "delta/poisson/adaptive" in text
        assert "bound" in text


class TestSurface2D:
    @pytest.fixture(scope="class")
    def surface2d(self):
        return fit_surface_2d(
            lambda xs, p: smooth(xs) * (1.0 + p),
            quantity="delta",
            load="poisson",
            utility="adaptive",
            xname="capacity",
            pname="kbar",
            x_lo=20.0,
            x_hi=400.0,
            p_lo=0.1,
            p_hi=0.9,
            degree_x=12,
            degree_p=4,
            budget=ErrorBudget(atol=1e-6),
        )

    def test_accuracy_across_the_parameter_axis(self, surface2d):
        xs = np.linspace(25.0, 390.0, 31)
        for p in (0.1, 0.37, 0.9):
            np.testing.assert_allclose(
                surface2d.evaluate(xs, p),
                smooth(xs) * (1.0 + p),
                atol=surface2d.certified_bound,
            )

    def test_out_of_domain_on_either_axis_refuses(self, surface2d):
        with pytest.raises(OutOfDomainError):
            surface2d.evaluate([500.0], 0.5)
        with pytest.raises(OutOfDomainError):
            surface2d.evaluate([100.0], 0.95)

    def test_round_trip(self, surface2d):
        clone = surface_from_dict(surface2d.to_dict())
        assert clone == surface2d
        np.testing.assert_array_equal(
            clone.evaluate([100.0], 0.5), surface2d.evaluate([100.0], 0.5)
        )
