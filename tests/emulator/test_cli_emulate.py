"""The ``emulate fit`` / ``emulate check`` CLI round trip."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.emulator import SCHEMA


@pytest.fixture(scope="module")
def bank_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("emulate") / "bank.json"
    assert main(["emulate", "fit", "--out", str(path)]) == 0
    return path


class TestFit:
    def test_bank_file_is_schema_tagged_and_complete(self, bank_path):
        payload = json.loads(bank_path.read_text())
        assert payload["schema"] == SCHEMA
        # three quantities x three loads, adaptive utility only
        assert len(payload["surfaces"]) == 9
        keys = {
            f"{s['quantity']}/{s['load']}/{s['utility']}"
            for s in payload["surfaces"]
        }
        assert "delta/poisson/adaptive" in keys
        assert "gamma/algebraic/adaptive" in keys
        for surf in payload["surfaces"]:
            assert surf["certified_bound"] > 0.0


class TestCheck:
    def test_saved_bank_passes_fresh_probes(self, bank_path, capsys):
        assert (
            main(["emulate", "check", "--bank", str(bank_path), "--probes", "13"])
            == 0
        )
        out = capsys.readouterr().out
        assert "ok  " in out
        assert "delta/poisson/adaptive" in out
        assert "FAIL" not in out

    def test_json_report(self, bank_path, capsys):
        assert (
            main(
                [
                    "emulate",
                    "check",
                    "--bank",
                    str(bank_path),
                    "--probes",
                    "13",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert len(payload["surfaces"]) == 9
        assert all(row["residual"] <= 1.0 for row in payload["surfaces"])

    def test_unreadable_bank_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bank.json"
        bad.write_text("{not json")
        assert main(["emulate", "check", "--bank", str(bad)]) == 2
        assert "cannot load bank" in capsys.readouterr().err

    def test_wrong_schema_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bank.json"
        bad.write_text(json.dumps({"schema": "repro.emulator/v999", "surfaces": []}))
        assert main(["emulate", "check", "--bank", str(bad)]) == 2
        assert "cannot load bank" in capsys.readouterr().err
