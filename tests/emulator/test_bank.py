"""The surface bank against the real exact solvers.

A reduced bank (one quantity x load pair plus gamma) keeps the fit
under a second; the full nine-surface bank is exercised by the EM
invariants and ``benchmarks/bench_service.py``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.emulator import (
    DOMAINS,
    SurfaceBank,
    check_bank,
    exact_scalar,
    exact_values,
    fit_bank,
    replace_axis,
)
from repro.experiments.params import DEFAULT_CONFIG


@pytest.fixture(scope="module")
def small_bank():
    return fit_bank(quantities=("delta", "gamma"), loads=("poisson",))


class TestFitBank:
    def test_one_surface_per_quantity_load_pair(self, small_bank):
        assert len(small_bank) == 2
        assert small_bank.lookup("delta", "poisson", "adaptive") is not None
        assert small_bank.lookup("gamma", "poisson", "adaptive") is not None

    def test_unfitted_triples_return_none(self, small_bank):
        assert small_bank.lookup("delta", "exponential", "adaptive") is None
        assert small_bank.lookup("delta", "poisson", "rigid") is None
        assert small_bank.lookup_2d("delta", "poisson", "adaptive") is None

    def test_every_surface_is_certified(self, small_bank):
        for surf in small_bank.all_surfaces():
            assert surf.certified_bound <= surf.allowance
            assert surf.observed_residual <= surf.certified_bound

    def test_surfaces_agree_with_the_exact_engines(self, small_bank):
        surf = small_bank.lookup("delta", "poisson", "adaptive")
        lo, hi = DOMAINS["delta"]
        xs = lo + (hi - lo) * (np.arange(17) + np.sqrt(2.0) % 1.0) / 17
        exact = exact_values("delta", DEFAULT_CONFIG, "poisson", "adaptive", xs)
        err = np.abs(surf.evaluate(xs) - exact)
        assert float(np.max(err)) <= surf.certified_bound

    def test_exact_scalar_matches_exact_values(self):
        xs = np.array([80.0, 150.0])
        batch = exact_values("delta", DEFAULT_CONFIG, "poisson", "adaptive", xs)
        for x, ref in zip(xs, batch):
            got = exact_scalar("delta", DEFAULT_CONFIG, "poisson", "adaptive", float(x))
            assert got == pytest.approx(ref, rel=1e-9, abs=1e-9)


class TestCheckBank:
    def test_fresh_probe_report(self, small_bank):
        rows = check_bank(small_bank, probes=13)
        assert len(rows) == len(small_bank)
        for row in rows:
            assert set(row) >= {"surface", "residual", "certified_bound", "ok"}
            assert row["ok"], row
            assert 0.0 <= row["residual"] <= 1.0


class TestPersistence:
    def test_save_load_round_trip(self, small_bank, tmp_path):
        path = small_bank.save(tmp_path / "bank.json")
        clone = SurfaceBank.load(path)
        assert clone.config_digest == small_bank.config_digest
        assert len(clone) == len(small_bank)
        surf, orig = (
            b.lookup("delta", "poisson", "adaptive") for b in (clone, small_bank)
        )
        assert surf == orig
        assert surf.eval_scalar(123.0) == orig.eval_scalar(123.0)

    def test_schema_tag(self, small_bank, tmp_path):
        path = small_bank.save(tmp_path / "bank.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.emulator/v1"
        with pytest.raises(ValueError, match="schema"):
            SurfaceBank.from_dict({**payload, "schema": "repro.emulator/v999"})


class TestReplaceAxis:
    def test_delta_replaces_capacities(self):
        cfg = replace_axis(DEFAULT_CONFIG, "delta", np.array([42.0, 99.0]))
        assert cfg.capacities == (42.0, 99.0)
        assert cfg.prices == DEFAULT_CONFIG.prices

    def test_gamma_replaces_prices(self):
        cfg = replace_axis(DEFAULT_CONFIG, "gamma", np.array([0.01, 0.1]))
        assert cfg.prices == (0.01, 0.1)
        assert cfg.capacities == DEFAULT_CONFIG.capacities
