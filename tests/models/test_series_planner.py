"""Planner-level guarantees of the shared tail series.

Two properties carry the whole refactor:

1. **Scalar/batch plans cannot diverge.**  The scalar entry points
   delegate to the batch planner on one-element grids, so a grid and
   its individual points must receive identical (mode, level) plans
   and identical truncation points — the historical bug was a one-ulp
   libm/numpy disagreement at a decision boundary flipping the level
   between the two paths.
2. **Plans are sound.**  Whatever mode the planner picks, the value it
   produces must match a deep dense reference within the model's
   tolerance, and the precomputed per-level capacity ceilings must sit
   on the conservative side of the bounds they summarise.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loads import AlgebraicLoad
from repro.models import VariableLoadModel
from repro.models.variable_load import _MODE_DENSE, _MODE_TAIL
from repro.utility import AdaptiveUtility, RigidUtility
from repro.verify import strategies

_ALG = AlgebraicLoad.from_mean(3.0, 100.0)
_ADAPTIVE = AdaptiveUtility()


class TestPlanParity:
    """Grid plans equal the per-point plans, elementwise (satellite 1)."""

    @given(
        model=strategies.models(),
        caps=st.lists(
            strategies.capacities(0.5, 400.0), min_size=1, max_size=6
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_plan_batch_matches_singletons(self, model, caps):
        grid = np.asarray(caps, dtype=float)
        modes, levels = model._plan_batch(grid)
        for i, c in enumerate(caps):
            mode_i, level_i = model._plan(float(c))
            assert (int(modes[i]), int(levels[i])) == (mode_i, level_i)

    @given(
        model=strategies.models(),
        caps=st.lists(
            strategies.capacities(0.5, 400.0), min_size=1, max_size=6
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_truncation_batch_matches_scalar(self, model, caps):
        grid = np.asarray(caps, dtype=float)
        batch = model._truncation_points_batch(grid)
        for i, c in enumerate(caps):
            scalar = model._truncation_point(float(c))
            assert int(batch[i]) == (-1 if scalar is None else scalar)

    @given(
        model=strategies.models(),
        capacity=strategies.capacities(0.5, 400.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_scalar_and_batch_values_agree(self, model, capacity):
        scalar = model.total_best_effort(capacity)
        batch = float(model.total_best_effort_batch(np.array([capacity]))[0])
        assert batch == pytest.approx(scalar, rel=1e-11, abs=1e-13)


class TestPlanSoundness:
    def test_tail_mode_matches_deep_dense_reference(self):
        """TAIL-mode B(C) agrees with brute summation to the tolerance.

        The reference head stops at 2^21 flows, where the omitted
        algebraic tail is bounded by pi(C/2^21) * mean_tail(2^21)
        ~ 3e-11 — well under the model tolerance the plan promises.
        """
        model = VariableLoadModel(_ALG, _ADAPTIVE)
        deep = 1 << 21
        for capacity in (60.0, 150.0, 300.0):
            mode, level = model._plan(capacity)
            assert mode == _MODE_TAIL  # the case under test
            assert level < deep
            reference = model._dense_total(capacity, deep)
            slack = model._tail_bound(deep, capacity)
            got = model.total_best_effort(capacity)
            assert got == pytest.approx(
                reference, abs=2.0 * model._tol + slack
            )

    def test_ceilings_sit_on_the_conservative_side(self):
        model = VariableLoadModel(_ALG, _ADAPTIVE)
        levels, c_dense, c_tail = model._plan_ceilings()
        mac = model._maclaurin
        for n, cd, ct in zip(levels, c_dense, c_tail):
            mt = _ALG.mean_tail(int(n))
            if np.isfinite(cd):
                # just inside the DENSE ceiling the plain bound clears tol
                b = (cd / n) * (1.0 - 1e-9)
                assert min(1.0, _ADAPTIVE.value(b)) * mt < model._tol
            if np.isfinite(ct) and ct > 0.0:
                b = (ct / n) * (1.0 - 1e-9)
                assert float(mac.remainder_bound(b)) * mt <= 0.5 * model._tol
                # and just outside it does not (the bisection is tight)
                b_out = (ct / n) * (1.0 + 1e-6)
                assert float(mac.remainder_bound(b_out)) * mt > 0.5 * model._tol

    def test_ceilings_shared_across_equal_models(self):
        a = VariableLoadModel(_ALG, _ADAPTIVE)
        b = VariableLoadModel(AlgebraicLoad.from_mean(3.0, 100.0), _ADAPTIVE)
        assert a._plan_ceilings() is b._plan_ceilings()

    def test_dense_mode_for_light_tails(self):
        # a mean-100 Poisson tail is gone by n = 256: every figure-range
        # capacity must plan DENSE at the lowest level, never TAIL/EM
        from repro.loads import PoissonLoad

        model = VariableLoadModel(PoissonLoad(100.0), _ADAPTIVE)
        modes, levels = model._plan_batch(np.linspace(20.0, 220.0, 9))
        assert np.all(modes == _MODE_DENSE)
        assert np.all(levels == 256)


class TestEulerMaclaurinDegenerateBreakpoints:
    def test_analytically_zero_tail_short_circuits(self):
        """Rigid utility, tiny capacity: the whole tail is exactly zero.

        Every share beyond the split point is below the rigid threshold,
        so the tail must come back 0.0 without handing quadrature an
        identically-zero integrand whose breakpoints map outside (0, 1]
        (the degenerate-interval warning this regression test pins down).
        """
        model = VariableLoadModel(_ALG, RigidUtility(1.0))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert model._euler_maclaurin_tail(4096, 1.0) == 0.0
            assert model._euler_maclaurin_tail(4096, 4095.0) == 0.0

    def test_just_above_threshold_is_positive(self):
        model = VariableLoadModel(_ALG, RigidUtility(1.0))
        assert model._euler_maclaurin_tail(4096, 4200.0) > 0.0
