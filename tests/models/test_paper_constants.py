"""Pinning the paper's exact constants and identities.

Small, surgical tests that would catch any silent drift in the
quantities the whole reproduction hangs on.
"""

import math

import pytest

from repro.continuum import (
    DELTA_OVER_C_BOUND,
    GAMMA_BOUND,
    RigidAlgebraicContinuum,
    adaptive_algebraic_ratio_limit,
    gap_ratio_limit,
    retrying_rigid_ratio,
    rigid_algebraic_ratio,
    sampling_rigid_ratio,
)
from repro.loads import KBAR_PAPER
from repro.models import ALPHA_PAPER
from repro.utility import KAPPA_PAPER


class TestPaperConstants:
    def test_kbar(self):
        assert KBAR_PAPER == 100.0

    def test_kappa(self):
        assert KAPPA_PAPER == 0.62086

    def test_alpha(self):
        assert ALPHA_PAPER == 0.1

    def test_conjectured_bounds(self):
        assert GAMMA_BOUND == math.e
        assert DELTA_OVER_C_BOUND == math.e - 1.0


class TestExactIdentities:
    def test_z3_rigid_ratio_is_exactly_two(self):
        # (z-1)^{1/(z-2)} = 2 at z = 3: the paper's gamma -> 2 quote
        assert rigid_algebraic_ratio(3.0) == pytest.approx(2.0, abs=1e-12)

    def test_z4_rigid_ratio_is_sqrt_three(self):
        assert rigid_algebraic_ratio(4.0) == pytest.approx(math.sqrt(3.0))

    def test_a_half_limit_is_exactly_two(self):
        # a^{-a/(1-a)} at a = 1/2: (1/2)^{-1} = 2
        assert gap_ratio_limit(0.5) == pytest.approx(2.0, abs=1e-12)
        assert adaptive_algebraic_ratio_limit(0.5) == pytest.approx(2.0, abs=1e-12)

    def test_sampling_ratio_s3_z3(self):
        # (S(z-1))^{1/(z-2)} = 6 exactly
        assert sampling_rigid_ratio(3.0, 3) == pytest.approx(6.0, abs=1e-12)

    def test_retrying_ratio_alpha_tenth_z3(self):
        # ((z-1)/alpha)^{1/(z-2)} = 20 exactly
        assert retrying_rigid_ratio(3.0, 0.1) == pytest.approx(20.0, abs=1e-12)

    def test_mean_load_z3(self):
        # k_bar = (z-1)/(z-2) = 2 at z = 3
        assert RigidAlgebraicContinuum(3.0).mean_load == pytest.approx(2.0)

    def test_bounds_approached_from_below(self):
        values = [rigid_algebraic_ratio(z) for z in (2.1, 2.01, 2.001, 2.0001)]
        assert all(b > a for a, b in zip(values, values[1:]))
        assert values[-1] < math.e
        assert math.e - values[-1] < 2e-4
