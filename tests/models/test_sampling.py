"""Tests for the Section 5.1 sampling extension."""

import numpy as np
import pytest

from repro.loads import GeometricLoad, PoissonLoad, SizeBiasedLoad
from repro.models import SamplingModel, VariableLoadModel
from repro.utility import AdaptiveUtility, RigidUtility


class TestReductionToBasicModel:
    def test_s1_best_effort_equals_basic(self, any_load, inelastic_utility):
        s1 = SamplingModel(any_load, inelastic_utility, 1)
        base = VariableLoadModel(any_load, inelastic_utility)
        for c in (4.0, 12.0, 30.0):
            assert s1.best_effort(c) == pytest.approx(base.best_effort(c), abs=1e-8)

    def test_s1_reservation_equals_basic(self, any_load, inelastic_utility):
        s1 = SamplingModel(any_load, inelastic_utility, 1)
        base = VariableLoadModel(any_load, inelastic_utility)
        for c in (4.0, 12.0, 30.0):
            assert s1.reservation(c) == pytest.approx(base.reservation(c), abs=1e-8)


class TestMonotonicityInS:
    def test_best_effort_decreasing_in_s(self, geometric_load, adaptive):
        # more samples -> worse maximum -> lower utility
        c = 15.0
        values = [
            SamplingModel(geometric_load, adaptive, s).best_effort(c)
            for s in (1, 2, 5, 15)
        ]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_reservation_bounded_below_by_cap_utility(self, geometric_load, adaptive):
        # admitted flows never see loads beyond k_max, so even S -> inf
        # keeps reservation utility near pi(C/kmax) times admit prob
        c = 15.0
        m = SamplingModel(geometric_load, adaptive, 50)
        kmax = m.k_max(c)
        floor = (
            adaptive.value(c / kmax)
            * SizeBiasedLoad(geometric_load).cdf(kmax)
        )
        assert m.reservation(c) >= floor - 1e-9

    def test_gap_widens_with_s(self, geometric_load, adaptive):
        c = 15.0
        gaps = [
            SamplingModel(geometric_load, adaptive, s).performance_gap(c)
            for s in (1, 5, 20)
        ]
        assert gaps[0] < gaps[1] < gaps[2]


class TestAgainstMonteCarlo:
    def _simulate(self, load, utility, capacity, samples, n=60_000, seed=3):
        rng = np.random.default_rng(seed)
        q = SizeBiasedLoad(load)
        # inverse-cdf sampling of Q over a truncated support
        support = np.arange(1, 600)
        pmf = np.array([q.pmf(int(k)) for k in support])
        pmf = pmf / pmf.sum()
        kmax = VariableLoadModel(load, utility).k_max(capacity)
        draws = rng.choice(support, size=(n, samples), p=pmf)

        # best-effort: utility at the max of S draws
        worst = draws.max(axis=1)
        be = float(np.mean(utility(capacity / worst)))

        # reservations: first draw decides admission, later draws capped
        first = draws[:, 0]
        admit_prob = np.where(first <= kmax, 1.0, kmax / first)
        admitted = rng.random(n) < admit_prob
        capped = np.minimum(draws, kmax)
        capped[:, 0] = np.where(first <= kmax, first, kmax)
        worst_adm = capped.max(axis=1)
        scores = np.where(admitted, utility(capacity / worst_adm), 0.0)
        res = float(np.mean(scores))
        return be, res

    def test_best_effort_matches_simulation(self):
        load = PoissonLoad(12.0)
        u = AdaptiveUtility()
        m = SamplingModel(load, u, 4)
        c = 14.0
        be_sim, _ = self._simulate(load, u, c, 4)
        assert m.best_effort(c) == pytest.approx(be_sim, abs=0.01)

    def test_reservation_matches_simulation(self):
        load = GeometricLoad.from_mean(12.0)
        u = RigidUtility(1.0)
        m = SamplingModel(load, u, 3)
        c = 10.0
        _, res_sim = self._simulate(load, u, c, 3)
        assert m.reservation(c) == pytest.approx(res_sim, abs=0.01)

    def test_adaptive_reservation_matches_simulation(self):
        load = GeometricLoad.from_mean(12.0)
        u = AdaptiveUtility()
        m = SamplingModel(load, u, 5)
        c = 16.0
        _, res_sim = self._simulate(load, u, c, 5)
        assert m.reservation(c) == pytest.approx(res_sim, abs=0.01)


class TestGapSolver:
    def test_bandwidth_gap_solves_equation(self, geometric_load, adaptive):
        m = SamplingModel(geometric_load, adaptive, 8)
        c = 12.0
        gap = m.bandwidth_gap(c)
        assert gap > 0.0
        assert m.best_effort(c + gap) == pytest.approx(m.reservation(c), abs=1e-6)

    def test_sweep_shape(self, geometric_load, adaptive):
        out = SamplingModel(geometric_load, adaptive, 4).sweep([6.0, 12.0, 24.0])
        assert len(out["bandwidth_gap"]) == 3
        assert np.all(out["performance_gap"] >= 0.0)

    def test_invalid_samples(self, geometric_load, adaptive):
        with pytest.raises(ValueError):
            SamplingModel(geometric_load, adaptive, 0)

    def test_zero_capacity(self, geometric_load, adaptive):
        m = SamplingModel(geometric_load, adaptive, 3)
        assert m.best_effort(0.0) == 0.0
        assert m.reservation(0.0) == 0.0
