"""Footnote 9: reservations can help even *elastic* applications.

The paper's footnote 9 observes that with retries "even with elastic
applications (e.g. pi(b) = 1 - e^-b) the reservation-capable network
can provide higher utility" — provided one abandons the (infinite)
utility-maximising k_max and imposes a finite threshold.  These tests
reproduce that observation and exercise the k_max_override plumbing it
requires.
"""

import pytest

from repro.errors import ModelError
from repro.loads import AlgebraicLoad, GeometricLoad
from repro.models import FixedLoadModel, RetryingModel, VariableLoadModel
from repro.utility import AdaptiveUtility, ExponentialElasticUtility


class TestKMaxOverride:
    def test_override_bypasses_optimisation(self):
        m = FixedLoadModel(ExponentialElasticUtility(), k_max_override=lambda c: 2 * c)
        assert m.k_max(10.0) == 20

    def test_override_in_variable_load_model(self):
        load = GeometricLoad.from_mean(12.0)
        m = VariableLoadModel(
            load, ExponentialElasticUtility(), k_max_override=lambda c: int(c)
        )
        assert m.k_max(10.0) == 10
        assert 0.0 < m.reservation(10.0) < 1.0

    def test_without_override_elastic_raises(self):
        load = GeometricLoad.from_mean(12.0)
        m = VariableLoadModel(
            load, ExponentialElasticUtility(), k_max_limit=500
        )
        with pytest.raises(ModelError, match="elastic"):
            m.reservation(10.0)

    def test_override_wins_over_analytic_hint(self):
        m = FixedLoadModel(AdaptiveUtility(), k_max_override=lambda c: 7)
        assert m.k_max(100.0) == 7


class TestFootnote9:
    """The headline claim: elastic apps + retries -> reservations win."""

    def test_elastic_basic_model_prefers_best_effort(self):
        # without retries, rejecting an elastic flow is pure loss
        load = AlgebraicLoad.from_mean(3.0, 12.0)
        u = ExponentialElasticUtility()
        m = VariableLoadModel(load, u, k_max_override=lambda c: int(0.8 * c))
        c = 24.0
        assert m.reservation(c) < m.best_effort(c)

    def test_elastic_with_retries_prefers_reservations(self):
        # with (free) retries, blocked flows return later and are served
        # at protected shares; under a heavy-tailed census this beats
        # diluting everyone simultaneously
        load = AlgebraicLoad.from_mean(3.0, 12.0)
        u = ExponentialElasticUtility()
        c = 24.0
        retry = RetryingModel(
            load, u, alpha=0.0, k_max_override=lambda cap: int(0.8 * cap)
        )
        base = VariableLoadModel(load, u)
        assert retry.reservation(c) > base.best_effort(c)

    def test_advantage_survives_moderate_retry_penalty(self):
        load = AlgebraicLoad.from_mean(3.0, 12.0)
        u = ExponentialElasticUtility()
        c = 24.0
        retry = RetryingModel(
            load, u, alpha=0.05, k_max_override=lambda cap: int(0.8 * cap)
        )
        base = VariableLoadModel(load, u)
        assert retry.reservation(c) > base.best_effort(c)

    def test_advantage_dies_with_harsh_penalty(self):
        load = AlgebraicLoad.from_mean(3.0, 12.0)
        u = ExponentialElasticUtility()
        c = 24.0
        retry = RetryingModel(
            load, u, alpha=1.0, k_max_override=lambda cap: int(0.8 * cap)
        )
        base = VariableLoadModel(load, u)
        assert retry.reservation(c) < base.best_effort(c)

    def test_threshold_choice_matters(self):
        # too tight a threshold blocks too much; too loose protects
        # nothing: the advantage peaks at an interior k_max
        load = AlgebraicLoad.from_mean(3.0, 12.0)
        u = ExponentialElasticUtility()
        c = 24.0

        def retry_value(mult):
            m = RetryingModel(
                load, u, alpha=0.02, k_max_override=lambda cap: max(1, int(mult * cap))
            )
            return m.reservation(c)

        middle = retry_value(1.0)
        loose = retry_value(3.0)
        assert middle > loose  # protection matters under overload
