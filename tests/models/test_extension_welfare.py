"""Tests for welfare analysis over the Section 5 extension models."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.loads import AlgebraicLoad, GeometricLoad
from repro.models import (
    ExtensionWelfare,
    RetryingModel,
    SamplingModel,
    VariableLoadModel,
    WelfareModel,
)
from repro.utility import AdaptiveUtility


@pytest.fixture(scope="module")
def retry_welfare():
    load = AlgebraicLoad.from_mean(3.0, 12.0)
    retry = RetryingModel(load, AdaptiveUtility(), alpha=0.1)
    return (
        ExtensionWelfare(retry, load.mean, c_min=30.0, c_max=1200.0, points=100),
        load,
    )


class TestEnvelope:
    def test_reservation_welfare_dominates(self, retry_welfare):
        welfare, _ = retry_welfare
        lo, hi = welfare.price_range()
        for p in np.geomspace(lo * 1.2, hi * 0.8, 5):
            assert welfare.welfare_reservation(float(p)) >= (
                welfare.welfare_best_effort(float(p)) - 1e-6
            )

    def test_welfare_decreasing_in_price(self, retry_welfare):
        welfare, _ = retry_welfare
        lo, hi = welfare.price_range()
        ps = np.geomspace(lo * 1.2, hi * 0.8, 6)
        values = [welfare.welfare_best_effort(float(p)) for p in ps]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_price_outside_envelope_raises(self, retry_welfare):
        welfare, _ = retry_welfare
        _, hi = welfare.price_range()
        with pytest.raises(ModelError):
            welfare.welfare_best_effort(10.0 * hi)

    def test_bad_construction(self, retry_welfare):
        _, load = retry_welfare
        retry = RetryingModel(load, AdaptiveUtility(), alpha=0.1)
        with pytest.raises(ModelError):
            ExtensionWelfare(retry, 0.0)
        with pytest.raises(ModelError):
            ExtensionWelfare(retry, load.mean, c_min=100.0, c_max=50.0)


class TestSamplingConsistency:
    def test_s1_matches_base_welfare_model(self):
        # S = 1 sampling is the basic model, so its envelope gamma must
        # track WelfareModel's
        load = GeometricLoad.from_mean(12.0)
        u = AdaptiveUtility()
        s1 = SamplingModel(load, u, 1)
        ext = ExtensionWelfare(s1, load.mean, c_min=8.0, c_max=400.0, points=140)
        base = WelfareModel(VariableLoadModel(load, u))
        for p in (0.05, 0.02):
            assert ext.equalizing_ratio(p) == pytest.approx(
                base.equalizing_ratio(p), rel=0.05
            )

    def test_sampling_raises_gamma(self):
        load = GeometricLoad.from_mean(12.0)
        u = AdaptiveUtility()
        s1 = ExtensionWelfare(
            SamplingModel(load, u, 1), load.mean, c_min=8.0, c_max=400.0
        )
        s8 = ExtensionWelfare(
            SamplingModel(load, u, 8), load.mean, c_min=8.0, c_max=400.0
        )
        p = 0.03
        assert s8.equalizing_ratio(p) > s1.equalizing_ratio(p)


class TestRetryNonMonotonicity:
    """The paper's Section 5.2 reversal: gamma(p) peaks then falls."""

    def test_gamma_exceeds_basic_model(self, retry_welfare):
        welfare, load = retry_welfare
        base = WelfareModel(VariableLoadModel(load, AdaptiveUtility()))
        p = 0.02
        assert welfare.equalizing_ratio(p) > base.equalizing_ratio(p)

    def test_gamma_non_monotone_with_interior_peak(self, retry_welfare):
        welfare, _ = retry_welfare
        lo, hi = welfare.price_range()
        ps = np.geomspace(lo * 1.3, hi * 0.7, 14)
        curve = welfare.ratio_curve(ps)
        gamma = curve["gamma"][~np.isnan(curve["gamma"])]
        peak = int(np.argmax(gamma))
        # the peak is interior: gamma decreases for very small p (the
        # paper's "now decreases for very small p")
        assert 0 < peak < len(gamma) - 1

    def test_ratio_curve_nan_outside_range(self, retry_welfare):
        welfare, _ = retry_welfare
        curve = welfare.ratio_curve([1e9])
        assert np.isnan(curve["gamma"][0])


class TestLegendreProperties:
    def test_welfare_convex_decreasing_in_price(self, retry_welfare):
        # the discrete Legendre transform is convex and decreasing
        welfare, _ = retry_welfare
        lo, hi = welfare.price_range()
        ps = np.geomspace(lo * 1.2, hi * 0.8, 9)
        w = np.array([welfare.welfare_reservation(float(p)) for p in ps])
        assert np.all(np.diff(w) < 0.0)
        # convexity along the (nonuniform) grid via second difference
        for i in range(1, len(ps) - 1):
            slope_left = (w[i] - w[i - 1]) / (ps[i] - ps[i - 1])
            slope_right = (w[i + 1] - w[i]) / (ps[i + 1] - ps[i])
            assert slope_right >= slope_left - 1e-9

    def test_optimal_capacity_decreasing_in_price(self, retry_welfare):
        welfare, _ = retry_welfare
        lo, hi = welfare.price_range()
        ps = np.geomspace(lo * 1.2, hi * 0.8, 6)
        caps = [welfare.optimal_capacity("reservation", float(p)) for p in ps]
        assert all(b <= a for a, b in zip(caps, caps[1:]))
