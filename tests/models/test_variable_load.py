"""Tests for the Section 3.1 discrete variable-load model."""

import pytest

import repro.models.variable_load as vlm
from repro.loads import AlgebraicLoad, GeometricLoad
from repro.models import VariableLoadModel
from repro.utility import AdaptiveUtility, PiecewiseLinearUtility, RigidUtility


def brute_force_best_effort(load, utility, capacity, terms=100_000):
    """Reference implementation: direct truncated sum."""
    total = 0.0
    for k in range(1, terms):
        p = load.pmf(k)
        if p == 0.0 and k > 4 * load.mean:
            break
        total += p * k * utility.value(capacity / k)
    return total / load.mean


class TestBestEffort:
    def test_matches_brute_force(self, any_load, inelastic_utility):
        m = VariableLoadModel(any_load, inelastic_utility)
        for c in (4.0, 12.0, 30.0):
            expected = brute_force_best_effort(any_load, inelastic_utility, c)
            assert m.best_effort(c) == pytest.approx(expected, abs=2e-5)

    def test_zero_capacity(self, poisson_load, adaptive):
        assert VariableLoadModel(poisson_load, adaptive).best_effort(0.0) == 0.0

    def test_monotone_in_capacity(self, any_load, inelastic_utility):
        m = VariableLoadModel(any_load, inelastic_utility)
        values = [m.best_effort(c) for c in (5.0, 10.0, 20.0, 40.0, 80.0)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_approaches_one(self, poisson_load, adaptive):
        m = VariableLoadModel(poisson_load, adaptive)
        assert m.best_effort(2000.0) == pytest.approx(1.0, abs=1e-3)

    def test_rejects_negative_capacity(self, poisson_load, adaptive):
        with pytest.raises(ValueError):
            VariableLoadModel(poisson_load, adaptive).best_effort(-1.0)

    def test_caching_returns_identical_values(self, poisson_load, adaptive):
        m = VariableLoadModel(poisson_load, adaptive)
        assert m.best_effort(17.0) == m.best_effort(17.0)


class TestEulerMaclaurinTail:
    def test_em_mode_matches_brute_force(self):
        load = AlgebraicLoad.from_mean(3.0, 12.0)
        u = AdaptiveUtility()
        direct = VariableLoadModel(load, u)
        c = 40.0
        expected = direct.total_best_effort(c)
        # shrink the brute-force cap to force the EM path
        original = vlm.BRUTE_FORCE_CAP
        vlm.BRUTE_FORCE_CAP = 1 << 12
        try:
            em_model = VariableLoadModel(load, u)
            got = em_model.total_best_effort(c)
        finally:
            vlm.BRUTE_FORCE_CAP = original
        assert got == pytest.approx(expected, abs=1e-7)

    def test_em_mode_geometric(self):
        load = GeometricLoad.from_mean(12.0)
        u = AdaptiveUtility()
        expected = VariableLoadModel(load, u).total_best_effort(25.0)
        original = vlm.BRUTE_FORCE_CAP
        vlm.BRUTE_FORCE_CAP = 1 << 10
        try:
            got = VariableLoadModel(load, u).total_best_effort(25.0)
        finally:
            vlm.BRUTE_FORCE_CAP = original
        assert got == pytest.approx(expected, abs=1e-7)


class TestReservation:
    def test_dominates_best_effort(self, any_load, inelastic_utility):
        # the paper's R(C) >= B(C), strict in all considered cases
        m = VariableLoadModel(any_load, inelastic_utility)
        for c in (3.0, 8.0, 15.0, 24.0, 60.0):
            assert m.reservation(c) >= m.best_effort(c) - 1e-12

    def test_strictly_better_under_overload(self, any_load, inelastic_utility):
        m = VariableLoadModel(any_load, inelastic_utility)
        c = 0.5 * any_load.mean
        assert m.reservation(c) > m.best_effort(c)

    def test_matches_definition(self, geometric_load, rigid):
        m = VariableLoadModel(geometric_load, rigid)
        c = 8.0
        kmax = m.k_max(c)
        expected = sum(
            geometric_load.pmf(k) * k for k in range(1, kmax + 1)
        ) + kmax * geometric_load.sf(kmax)
        assert m.total_reservation(c) == pytest.approx(expected, rel=1e-9)

    def test_zero_capacity(self, poisson_load, adaptive):
        assert VariableLoadModel(poisson_load, adaptive).reservation(0.0) == 0.0

    def test_below_support_yields_zero(self):
        load = AlgebraicLoad.from_mean(3.0, 12.0)
        m = VariableLoadModel(load, RigidUtility(1.0))
        assert m.reservation(0.5) == 0.0


class TestGaps:
    def test_performance_gap_nonnegative(self, any_load, inelastic_utility):
        m = VariableLoadModel(any_load, inelastic_utility)
        for c in (2.0, 10.0, 30.0, 100.0):
            assert m.performance_gap(c) >= 0.0

    def test_bandwidth_gap_solves_its_equation(self, any_load, inelastic_utility):
        m = VariableLoadModel(any_load, inelastic_utility)
        c = 8.0
        gap = m.bandwidth_gap(c)
        target = m.reservation(c)
        assert gap > 0.0
        if isinstance(inelastic_utility, RigidUtility):
            # B is a step function of C for rigid utilities: the gap is
            # the crossing point, bracketed within one step
            assert m.best_effort(c + gap + 0.51) >= target - 1e-9
            assert m.best_effort(c + max(gap - 0.51, 0.0)) <= target + 1e-9
        else:
            assert m.best_effort(c + gap) == pytest.approx(target, abs=1e-6)

    def test_gap_zero_when_gap_below_floor(self, poisson_load, adaptive):
        m = VariableLoadModel(poisson_load, adaptive)
        # far overprovisioned: utilities agree to machine precision
        assert m.bandwidth_gap(60.0 * poisson_load.mean) == 0.0

    def test_rigid_gap_larger_than_adaptive(self, any_load):
        rigid = VariableLoadModel(any_load, RigidUtility(1.0))
        adaptive = VariableLoadModel(any_load, AdaptiveUtility())
        c = any_load.mean
        assert rigid.bandwidth_gap(c) > adaptive.bandwidth_gap(c)

    def test_ramp_gap_decreases_with_adaptivity(self, geometric_load):
        c = geometric_load.mean
        gaps = [
            VariableLoadModel(geometric_load, PiecewiseLinearUtility(a)).bandwidth_gap(c)
            for a in (0.9, 0.5, 0.2)
        ]
        assert gaps[0] > gaps[1] > gaps[2]


class TestBlockingAndOverload:
    def test_overload_probability_is_sf_at_kmax(self, geometric_load, rigid):
        m = VariableLoadModel(geometric_load, rigid)
        c = 10.0
        assert m.overload_probability(c) == pytest.approx(
            geometric_load.sf(m.k_max(c))
        )

    def test_blocking_fraction_definition(self, geometric_load, rigid):
        m = VariableLoadModel(geometric_load, rigid)
        c = 10.0
        kmax = m.k_max(c)
        expected = sum(
            geometric_load.pmf(k) * (k - kmax) for k in range(kmax + 1, 3000)
        ) / geometric_load.mean
        assert m.blocking_fraction(c) == pytest.approx(expected, rel=1e-6)

    def test_blocking_decreases_with_capacity(self, any_load, rigid):
        m = VariableLoadModel(any_load, rigid)
        values = [m.blocking_fraction(c) for c in (5.0, 15.0, 40.0)]
        assert values[0] > values[1] > values[2]


class TestSweep:
    def test_sweep_matches_pointwise(self, geometric_load, adaptive):
        m = VariableLoadModel(geometric_load, adaptive)
        caps = [5.0, 10.0, 20.0]
        out = m.sweep(caps)
        for i, c in enumerate(caps):
            assert out["best_effort"][i] == pytest.approx(m.best_effort(c))
            assert out["reservation"][i] == pytest.approx(m.reservation(c))
            assert out["bandwidth_gap"][i] == pytest.approx(m.bandwidth_gap(c))

    def test_sweep_without_gaps(self, geometric_load, adaptive):
        out = VariableLoadModel(geometric_load, adaptive).sweep(
            [5.0, 10.0], include_gaps=False
        )
        assert "bandwidth_gap" not in out

    def test_progress_callback_called(self, geometric_load, adaptive):
        seen = []
        VariableLoadModel(geometric_load, adaptive).sweep(
            [5.0, 10.0], include_gaps=False, progress=lambda i, n: seen.append((i, n))
        )
        assert seen == [(1, 2), (2, 2)]


class TestMarginals:
    def test_best_effort_marginal_positive(self, geometric_load, adaptive):
        m = VariableLoadModel(geometric_load, adaptive)
        assert m.best_effort_marginal(10.0) > 0.0

    def test_marginal_matches_slope(self, geometric_load, adaptive):
        m = VariableLoadModel(geometric_load, adaptive)
        c, h = 15.0, 0.5
        slope = (m.total_best_effort(c + h) - m.total_best_effort(c - h)) / (2 * h)
        assert m.best_effort_marginal(c) == pytest.approx(slope, rel=0.01)

    def test_invalid_tol_rejected(self, geometric_load, adaptive):
        with pytest.raises(ValueError):
            VariableLoadModel(geometric_load, adaptive, tol=0.0)


class TestThresholdSensitivity:
    """Suboptimal admission thresholds (trunk-reservation style)."""

    def test_optimum_at_k_max(self, geometric_load, adaptive):
        m = VariableLoadModel(geometric_load, adaptive)
        c = geometric_load.mean
        k_star = m.k_max(c)
        best = m.reservation_at_threshold(c, k_star)
        for k in (k_star - 3, k_star - 1, k_star + 1, k_star + 3):
            if k >= 1:
                assert m.reservation_at_threshold(c, k) <= best + 1e-12

    def test_matches_reservation_at_k_max(self, geometric_load, adaptive):
        m = VariableLoadModel(geometric_load, adaptive)
        c = 1.2 * geometric_load.mean
        assert m.reservation_at_threshold(c, m.k_max(c)) == pytest.approx(
            m.reservation(c), abs=1e-12
        )

    def test_huge_threshold_approaches_best_effort(self, geometric_load, adaptive):
        m = VariableLoadModel(geometric_load, adaptive)
        c = geometric_load.mean
        loose = m.reservation_at_threshold(c, int(40 * geometric_load.mean))
        assert loose == pytest.approx(m.best_effort(c), abs=1e-3)

    def test_zero_threshold(self, geometric_load, adaptive):
        m = VariableLoadModel(geometric_load, adaptive)
        assert m.reservation_at_threshold(10.0, 0) == 0.0

    def test_rigid_cliff_below_capacity(self, geometric_load, rigid):
        # rigid flows still succeed when the threshold is *below*
        # capacity, but utility is left on the table
        m = VariableLoadModel(geometric_load, rigid)
        c = geometric_load.mean
        tight = m.reservation_at_threshold(c, int(c) // 2)
        assert 0.0 < tight < m.reservation(c)

    def test_rigid_threshold_above_capacity_hurts(self, geometric_load, rigid):
        # admitting more rigid flows than capacity serves reintroduces
        # the best-effort failure mode
        m = VariableLoadModel(geometric_load, rigid)
        c = geometric_load.mean
        over = m.reservation_at_threshold(c, int(2 * c))
        assert over < m.reservation(c)

    def test_invalid_threshold(self, geometric_load, adaptive):
        m = VariableLoadModel(geometric_load, adaptive)
        with pytest.raises(ValueError):
            m.reservation_at_threshold(10.0, -1)


class TestCapacityPlanning:
    """Inverse queries: capacity for a target service level."""

    def test_best_effort_inverse(self, geometric_load, adaptive):
        m = VariableLoadModel(geometric_load, adaptive)
        c = m.capacity_for_best_effort(0.7)
        assert m.best_effort(c) == pytest.approx(0.7, abs=1e-6)

    def test_reservation_inverse(self, geometric_load, adaptive):
        m = VariableLoadModel(geometric_load, adaptive)
        c = m.capacity_for_reservation(0.7)
        assert m.reservation(c) == pytest.approx(0.7, abs=1e-6)

    def test_reservation_needs_less_capacity(self, any_load, adaptive):
        m = VariableLoadModel(any_load, adaptive)
        assert m.capacity_for_reservation(0.6) <= m.capacity_for_best_effort(0.6)

    def test_gap_consistency(self, geometric_load, adaptive):
        # capacity_for_best_effort(R(C)) - C is exactly the bandwidth gap
        m = VariableLoadModel(geometric_load, adaptive)
        c = geometric_load.mean
        target = m.reservation(c)
        assert m.capacity_for_best_effort(target) - c == pytest.approx(
            m.bandwidth_gap(c), abs=1e-6
        )

    def test_invalid_target(self, geometric_load, adaptive):
        m = VariableLoadModel(geometric_load, adaptive)
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                m.capacity_for_best_effort(bad)
