"""Tests for the Section 5.2 retrying extension."""

import pytest

from repro.errors import ModelError
from repro.loads import GeometricLoad
from repro.models import RetryingModel, VariableLoadModel
from repro.utility import AdaptiveUtility


class TestOfferedLoadFixedPoint:
    def test_inflation_is_self_consistent(self, geometric_load, rigid):
        m = RetryingModel(geometric_load, rigid, alpha=0.1)
        c = 2.0 * geometric_load.mean
        inflated = m.offered_mean(c)
        theta = m.blocking_probability(c)
        assert inflated == pytest.approx(
            geometric_load.mean / (1.0 - theta), rel=1e-6
        )

    def test_inflation_exceeds_intrinsic(self, any_load, rigid):
        # capacity comfortably above the mean: blocking is present but
        # the retry load converges
        m = RetryingModel(any_load, rigid, alpha=0.1)
        assert m.offered_mean(2.0 * any_load.mean) > any_load.mean

    def test_inflation_vanishes_when_unblocked(self, poisson_load, rigid):
        m = RetryingModel(poisson_load, rigid, alpha=0.1)
        big_c = 8.0 * poisson_load.mean
        assert m.retries_per_flow(big_c) == pytest.approx(0.0, abs=1e-9)

    def test_heavy_blocking_raises(self, algebraic_load, rigid):
        m = RetryingModel(algebraic_load, rigid, alpha=0.1)
        with pytest.raises(ModelError, match="blocking"):
            m.offered_mean(0.05 * algebraic_load.mean)

    def test_fixed_point_cached(self, geometric_load, rigid):
        m = RetryingModel(geometric_load, rigid, alpha=0.1)
        c = 2.0 * geometric_load.mean
        assert m.offered_mean(c) == m.offered_mean(c)


class TestRetryUtility:
    def test_alpha_zero_beats_basic_model(self, geometric_load, adaptive):
        # free retries: every flow is eventually admitted, so the
        # reservation utility exceeds the basic (reject-forever) model
        # (capacity must exceed the mean or the retry load diverges)
        retry = RetryingModel(geometric_load, adaptive, alpha=0.0)
        base = VariableLoadModel(geometric_load, adaptive)
        c = 2.0 * geometric_load.mean
        assert retry.reservation(c) > base.reservation(c)

    def test_utility_decreasing_in_alpha(self, geometric_load, adaptive):
        c = 2.0 * geometric_load.mean
        values = [
            RetryingModel(geometric_load, adaptive, alpha=a).reservation(c)
            for a in (0.0, 0.1, 0.3)
        ]
        assert values[0] > values[1] > values[2]

    def test_best_effort_unchanged(self, geometric_load, adaptive):
        retry = RetryingModel(geometric_load, adaptive, alpha=0.1)
        base = VariableLoadModel(geometric_load, adaptive)
        for c in (5.0, 12.0, 30.0):
            assert retry.best_effort(c) == base.best_effort(c)

    def test_large_capacity_approaches_one(self, geometric_load, adaptive):
        m = RetryingModel(geometric_load, adaptive, alpha=0.1)
        assert m.reservation(12.0 * geometric_load.mean) == pytest.approx(
            1.0, abs=0.05
        )

    def test_gap_can_exceed_basic_model(self, algebraic_load, adaptive):
        # the paper: retrying amplifies the algebraic-load gaps
        retry = RetryingModel(algebraic_load, adaptive, alpha=0.1)
        base = VariableLoadModel(algebraic_load, adaptive)
        c = 4.0 * algebraic_load.mean
        assert retry.performance_gap(c) > base.performance_gap(c)

    def test_invalid_alpha(self, geometric_load, adaptive):
        with pytest.raises(ValueError):
            RetryingModel(geometric_load, adaptive, alpha=-0.1)

    def test_zero_capacity(self, geometric_load, adaptive):
        assert RetryingModel(geometric_load, adaptive).reservation(0.0) == 0.0


class TestGapSolver:
    def test_bandwidth_gap_solves_equation(self, geometric_load, adaptive):
        m = RetryingModel(geometric_load, adaptive, alpha=0.1)
        c = 2.0 * geometric_load.mean
        gap = m.bandwidth_gap(c)
        if gap > 0.0:
            assert m.best_effort(c + gap) == pytest.approx(
                m.reservation(c), abs=1e-6
            )

    def test_gap_zero_when_retries_erase_advantage(self):
        # with a savage retry penalty, reservations fall below best
        # effort at moderate capacity; the gap clips to zero
        load = GeometricLoad.from_mean(12.0)
        m = RetryingModel(load, AdaptiveUtility(), alpha=1.0)
        c = 2.0 * load.mean
        assert m.reservation(c) < m.best_effort(c)
        assert m.bandwidth_gap(c) == 0.0

    def test_sweep_shape(self, geometric_load, adaptive):
        out = RetryingModel(geometric_load, adaptive, alpha=0.1).sweep(
            [18.0, 24.0, 36.0]
        )
        assert len(out["capacity"]) == 3
        assert "performance_gap" in out
