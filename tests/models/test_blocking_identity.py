"""Blocked-mass identity behind ``blocking_fraction``.

``theta(C)`` rests on the closed-form rearrangement

    sum_{k > kmax} P(k) (k - kmax) = mean_tail(kmax + 1) - kmax * sf(kmax)

whose two terms cancel to a small difference once ``kmax`` is deep in
the tail — exactly where a sign or off-by-one error would hide.  The
cross-check is a direct truncated sum; for the heavy-tailed algebraic
load the truncated sum is itself corrected by the analytic integral
remainder (Euler–Maclaurin midpoint rule)

    sum_{k > K} (k - kmax) P(k) ~ A * (1/U - (lam + kmax) / (2 U^2)),
    U = lam + K + 1/2,  A = 1/norm

so the reference is meaningful even though the z = 3 tail keeps ~0.5%
of the blocked mass beyond any affordable truncation.  The identity
was verified correct during PR 7 — this file keeps it that way.
"""

import numpy as np
import pytest
from scipy import special

from repro.loads import AlgebraicLoad, GeometricLoad, PoissonLoad

KBAR = 100.0

#: Truncation length of the direct reference sums (in flows past kmax).
_BRUTE_TERMS = 1 << 22


def _identity(load, kmax: int) -> float:
    return load.mean_tail(kmax + 1) - kmax * load.sf(kmax)


def _brute_blocked_mass(load, kmax: int, terms: int) -> float:
    """``sum_{kmax < k <= kmax + terms} P(k) (k - kmax)``, chunked."""
    total = 0.0
    chunk = 1 << 19
    for start in range(kmax + 1, kmax + terms + 1, chunk):
        ks = np.arange(start, min(start + chunk, kmax + terms + 1), dtype=float)
        pmf = np.asarray(load.pmf_array(ks), dtype=float)
        total += float(np.dot(pmf, ks - kmax))
    return total


class TestLightTails:
    """Poisson/geometric tails die fast: the plain truncated sum is exact."""

    @pytest.mark.parametrize("kmax", [1, 10, 80, 100, 130, 200])
    def test_poisson(self, kmax):
        load = PoissonLoad(KBAR)
        brute = _brute_blocked_mass(load, kmax, 4096)
        assert _identity(load, kmax) == pytest.approx(
            brute, rel=1e-10, abs=1e-300
        )

    @pytest.mark.parametrize("kmax", [1, 10, 100, 500, 1500])
    def test_geometric(self, kmax):
        load = GeometricLoad.from_mean(KBAR)
        brute = _brute_blocked_mass(load, kmax, 8192)
        assert _identity(load, kmax) == pytest.approx(
            brute, rel=1e-10, abs=1e-300
        )


class TestAlgebraicHeavyTail:
    """z = 3: the cancellation regime plus a corrected deep reference."""

    @pytest.mark.parametrize("kmax", [1, 100, 1000, 100_000])
    def test_identity_matches_corrected_brute(self, kmax):
        load = AlgebraicLoad.from_mean(3.0, KBAR)
        brute = _brute_blocked_mass(load, kmax, _BRUTE_TERMS)
        # analytic remainder past K = kmax + _BRUTE_TERMS (see module
        # docstring): at kmax = 1e5 it carries ~5% of the blocked mass,
        # so an error in either closed-form term would not survive this
        amplitude = 1.0 / special.zeta(load.z, load.lam + 1.0)
        big_u = load.lam + kmax + _BRUTE_TERMS + 0.5
        remainder = amplitude * (
            1.0 / big_u - (load.lam + kmax) / (2.0 * big_u**2)
        )
        assert _identity(load, kmax) == pytest.approx(
            brute + remainder, rel=1e-9
        )

    def test_remainder_is_material_at_deep_kmax(self):
        # guard against the reference degenerating into "identity vs
        # itself": the correction must be a visible share of the total
        load = AlgebraicLoad.from_mean(3.0, KBAR)
        kmax = 100_000
        brute = _brute_blocked_mass(load, kmax, _BRUTE_TERMS)
        assert (_identity(load, kmax) - brute) / _identity(load, kmax) > 0.01


class TestBlockingFractionEndToEnd:
    def test_uses_the_identity(self):
        from repro.models import VariableLoadModel
        from repro.utility import AdaptiveUtility

        load = GeometricLoad.from_mean(KBAR)
        model = VariableLoadModel(load, AdaptiveUtility())
        capacity = 90.0
        kmax = model.k_max(capacity)
        brute = _brute_blocked_mass(load, kmax, 8192)
        assert model.blocking_fraction(capacity) == pytest.approx(
            brute / KBAR, rel=1e-10
        )

    def test_saturates_at_one_for_tiny_capacity(self):
        from repro.models import VariableLoadModel
        from repro.utility import AdaptiveUtility

        model = VariableLoadModel(GeometricLoad.from_mean(KBAR), AdaptiveUtility())
        assert model.blocking_fraction(0.0) == 1.0
