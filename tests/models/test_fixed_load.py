"""Tests for the Section 2 fixed-load model."""

import pytest

from repro.errors import ModelError
from repro.models import Architecture, FixedLoadModel
from repro.utility import (
    AdaptiveUtility,
    AlgebraicTailUtility,
    ExponentialElasticUtility,
    PiecewiseLinearUtility,
    RigidUtility,
)


class TestTotalUtility:
    def test_matches_definition(self, adaptive):
        m = FixedLoadModel(adaptive)
        assert m.total_utility(7, 10.0) == pytest.approx(
            7 * adaptive.value(10.0 / 7)
        )

    def test_zero_flows(self, adaptive):
        assert FixedLoadModel(adaptive).total_utility(0, 10.0) == 0.0

    def test_rejects_fractional_flows(self, adaptive):
        with pytest.raises(ValueError):
            FixedLoadModel(adaptive).total_utility(1.5, 10.0)


class TestKMax:
    def test_rigid_is_floor(self):
        m = FixedLoadModel(RigidUtility(1.0))
        assert m.k_max(10.0) == 10
        assert m.k_max(10.9) == 10

    def test_rigid_with_demand(self):
        m = FixedLoadModel(RigidUtility(2.0))
        assert m.k_max(10.0) == 5

    def test_adaptive_near_capacity(self):
        # paper footnote 4: kappa calibrated so k_max(C) = C
        m = FixedLoadModel(AdaptiveUtility())
        for c in (25.0, 100.0, 333.0):
            assert abs(m.k_max(c) - c) <= 1

    def test_algebraic_tail_below_capacity(self):
        m = FixedLoadModel(AlgebraicTailUtility(1.0))
        assert m.k_max(100.0) == pytest.approx(50, abs=1)

    def test_zero_capacity(self, adaptive):
        assert FixedLoadModel(adaptive).k_max(0.0) == 0

    def test_elastic_raises_with_explanation(self):
        m = FixedLoadModel(ExponentialElasticUtility(), k_max_limit=500)
        with pytest.raises(ModelError, match="elastic"):
            m.k_max(10.0)

    def test_cache_consistency(self, adaptive):
        m = FixedLoadModel(adaptive)
        assert m.k_max(50.0) == m.k_max(50.0)

    def test_hint_walkout_handles_offset_hints(self):
        # a ramp's analytic k_max is exact; perturb via a scaled variant
        m = FixedLoadModel(PiecewiseLinearUtility(0.5))
        assert m.k_max(40.0) == 40


class TestCompare:
    def test_underload_ties(self, adaptive):
        m = FixedLoadModel(adaptive)
        cmp = m.compare(offered_flows=5, capacity=100.0)
        assert cmp.best_effort_total == cmp.reservation_total
        assert cmp.preferred is Architecture.BEST_EFFORT

    def test_overload_prefers_reservations_rigid(self):
        m = FixedLoadModel(RigidUtility(1.0))
        cmp = m.compare(offered_flows=15, capacity=10.0)
        assert cmp.best_effort_total == 0.0
        assert cmp.reservation_total == 10.0
        assert cmp.preferred is Architecture.RESERVATION
        assert cmp.advantage == 10.0

    def test_overload_prefers_reservations_adaptive(self):
        m = FixedLoadModel(AdaptiveUtility())
        cmp = m.compare(offered_flows=40, capacity=10.0)
        assert cmp.reservation_total > cmp.best_effort_total
        assert cmp.preferred is Architecture.RESERVATION

    def test_adaptive_overload_degrades_gently(self):
        # the paper: adaptive V(k) declines gently past k_max, unlike
        # the rigid cliff
        m = FixedLoadModel(AdaptiveUtility())
        capacity = 10.0
        at_peak = m.total_utility(m.k_max(capacity), capacity)
        just_past = m.total_utility(m.k_max(capacity) + 1, capacity)
        assert 0.0 < at_peak - just_past < 0.05 * at_peak

    def test_rejects_negative_offered(self, adaptive):
        with pytest.raises(ValueError):
            FixedLoadModel(adaptive).compare(-1, 10.0)


class TestNeedsAdmissionControl:
    def test_inelastic_families(self):
        for u in (RigidUtility(1.0), AdaptiveUtility(), PiecewiseLinearUtility(0.5)):
            assert FixedLoadModel(u).needs_admission_control()

    def test_elastic_family(self):
        assert not FixedLoadModel(ExponentialElasticUtility()).needs_admission_control()


class TestRigidClosedForm:
    def test_static_helper(self):
        assert FixedLoadModel.rigid_k_max(10.5) == 10
        assert FixedLoadModel.rigid_k_max(10.5, b_hat=2.0) == 5

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            FixedLoadModel.rigid_k_max(-1.0)
