"""Property-based tests of the paper's structural invariants.

The domain is drawn from :mod:`repro.verify.strategies`, the shared
strategy library, so these properties range over every load family and
utility shape the paper sweeps — not just one hand-picked model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loads import GeometricLoad
from repro.models import SamplingModel, VariableLoadModel
from repro.utility import AdaptiveUtility, PiecewiseLinearUtility
from repro.verify import strategies

# fixed instances for the properties that vary a *parameter* rather
# than the whole model (hypothesis calls are many; models memoise pmfs)
_GEO = GeometricLoad.from_mean(10.0)
_ADAPTIVE = AdaptiveUtility()


class TestReservationDominance:
    """R(C) >= B(C): admission control can only help total utility."""

    @given(model=strategies.models(), capacity=strategies.capacities())
    @settings(max_examples=80, deadline=None)
    def test_across_the_paper_domain(self, model, capacity):
        assert model.reservation(capacity) >= model.best_effort(capacity) - 1e-10


class TestMonotonicity:
    @given(model=strategies.models(), pair=strategies.capacity_pairs())
    @settings(max_examples=60, deadline=None)
    def test_best_effort_monotone_in_capacity(self, model, pair):
        lo, hi = pair
        assert model.best_effort(lo) <= model.best_effort(hi) + 1e-10

    @given(model=strategies.models(), pair=strategies.capacity_pairs())
    @settings(max_examples=60, deadline=None)
    def test_reservation_monotone_in_capacity(self, model, pair):
        lo, hi = pair
        assert model.reservation(lo) <= model.reservation(hi) + 1e-10


class TestBounds:
    @given(model=strategies.models(), capacity=strategies.capacities(0.0, 200.0))
    @settings(max_examples=60, deadline=None)
    def test_utilities_in_unit_interval(self, model, capacity):
        for value in (model.best_effort(capacity), model.reservation(capacity)):
            assert -1e-12 <= value <= 1.0 + 1e-9

    @given(capacity=strategies.capacities(1.0, 60.0))
    @settings(max_examples=30, deadline=None)
    def test_bandwidth_gap_nonnegative(self, capacity):
        model = VariableLoadModel(_GEO, _ADAPTIVE)
        assert model.bandwidth_gap(capacity) >= 0.0

    @given(model=strategies.models(), capacity=strategies.capacities(1.0, 60.0))
    @settings(max_examples=30, deadline=None)
    def test_blocking_fraction_in_unit_interval(self, model, capacity):
        assert 0.0 <= model.blocking_fraction(capacity) <= 1.0


class TestAdaptivityOrdering:
    @given(
        a=st.floats(min_value=0.05, max_value=0.9),
        load=strategies.loads(),
        capacity=strategies.capacities(2.0, 40.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_ramp_best_effort_decreasing_in_a(self, a, load, capacity):
        # a less adaptive application extracts (weakly) less utility
        # from the same best-effort network
        more = VariableLoadModel(load, PiecewiseLinearUtility(a * 0.5))
        less = VariableLoadModel(load, PiecewiseLinearUtility(a))
        assert more.best_effort(capacity) >= less.best_effort(capacity) - 1e-10


class TestSamplingOrdering:
    @given(load=strategies.loads(), capacity=strategies.capacities(2.0, 50.0))
    @settings(max_examples=20, deadline=None)
    def test_more_samples_never_raise_best_effort(self, load, capacity):
        s2 = SamplingModel(load, _ADAPTIVE, 2)
        s6 = SamplingModel(load, _ADAPTIVE, 6)
        assert s6.best_effort(capacity) <= s2.best_effort(capacity) + 1e-10

    @given(model=strategies.sampling_models(), capacity=strategies.capacities(2.0, 50.0))
    @settings(max_examples=20, deadline=None)
    def test_sampling_reservation_dominates_its_best_effort(self, model, capacity):
        assert model.reservation(capacity) >= model.best_effort(capacity) - 1e-10
