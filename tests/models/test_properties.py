"""Property-based tests of the paper's structural invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loads import GeometricLoad, PoissonLoad
from repro.models import SamplingModel, VariableLoadModel
from repro.utility import AdaptiveUtility, PiecewiseLinearUtility

# module-level models reused across examples (hypothesis calls are many)
_GEO = GeometricLoad.from_mean(10.0)
_POI = PoissonLoad(10.0)
_ADAPTIVE = AdaptiveUtility()
_MODEL_GEO = VariableLoadModel(_GEO, _ADAPTIVE)
_MODEL_POI = VariableLoadModel(_POI, _ADAPTIVE)


class TestReservationDominance:
    """R(C) >= B(C): admission control can only help total utility."""

    @given(capacity=st.floats(min_value=0.5, max_value=120.0))
    @settings(max_examples=60, deadline=None)
    def test_geometric_adaptive(self, capacity):
        assert _MODEL_GEO.reservation(capacity) >= _MODEL_GEO.best_effort(
            capacity
        ) - 1e-10

    @given(capacity=st.floats(min_value=0.5, max_value=120.0))
    @settings(max_examples=60, deadline=None)
    def test_poisson_adaptive(self, capacity):
        assert _MODEL_POI.reservation(capacity) >= _MODEL_POI.best_effort(
            capacity
        ) - 1e-10


class TestMonotonicity:
    @given(
        c1=st.floats(min_value=1.0, max_value=100.0),
        c2=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_best_effort_monotone_in_capacity(self, c1, c2):
        lo, hi = min(c1, c2), max(c1, c2)
        assert _MODEL_GEO.best_effort(lo) <= _MODEL_GEO.best_effort(hi) + 1e-10

    @given(
        c1=st.floats(min_value=1.0, max_value=100.0),
        c2=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_reservation_monotone_in_capacity(self, c1, c2):
        lo, hi = min(c1, c2), max(c1, c2)
        assert _MODEL_GEO.reservation(lo) <= _MODEL_GEO.reservation(hi) + 1e-10


class TestBounds:
    @given(capacity=st.floats(min_value=0.0, max_value=200.0))
    @settings(max_examples=60, deadline=None)
    def test_utilities_in_unit_interval(self, capacity):
        for value in (
            _MODEL_GEO.best_effort(capacity),
            _MODEL_GEO.reservation(capacity),
        ):
            assert -1e-12 <= value <= 1.0 + 1e-9

    @given(capacity=st.floats(min_value=1.0, max_value=60.0))
    @settings(max_examples=30, deadline=None)
    def test_bandwidth_gap_nonnegative(self, capacity):
        assert _MODEL_GEO.bandwidth_gap(capacity) >= 0.0

    @given(capacity=st.floats(min_value=1.0, max_value=60.0))
    @settings(max_examples=30, deadline=None)
    def test_blocking_fraction_in_unit_interval(self, capacity):
        assert 0.0 <= _MODEL_GEO.blocking_fraction(capacity) <= 1.0


class TestAdaptivityOrdering:
    @given(
        a=st.floats(min_value=0.05, max_value=0.9),
        capacity=st.floats(min_value=2.0, max_value=40.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_ramp_best_effort_decreasing_in_a(self, a, capacity):
        # a less adaptive application extracts (weakly) less utility
        # from the same best-effort network
        more = VariableLoadModel(_GEO, PiecewiseLinearUtility(a * 0.5))
        less = VariableLoadModel(_GEO, PiecewiseLinearUtility(a))
        assert more.best_effort(capacity) >= less.best_effort(capacity) - 1e-10


class TestSamplingOrdering:
    @given(capacity=st.floats(min_value=2.0, max_value=50.0))
    @settings(max_examples=20, deadline=None)
    def test_more_samples_never_raise_best_effort(self, capacity):
        s2 = SamplingModel(_GEO, _ADAPTIVE, 2)
        s6 = SamplingModel(_GEO, _ADAPTIVE, 6)
        assert s6.best_effort(capacity) <= s2.best_effort(capacity) + 1e-10

    @given(capacity=st.floats(min_value=2.0, max_value=50.0))
    @settings(max_examples=20, deadline=None)
    def test_sampling_reservation_dominates_its_best_effort(self, capacity):
        s = SamplingModel(_GEO, _ADAPTIVE, 5)
        assert s.reservation(capacity) >= s.best_effort(capacity) - 1e-10
