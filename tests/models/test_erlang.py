"""Tests for the Erlang-B module and the loss-system cross-checks."""

import math

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import carried_utility, erlang_b, erlang_b_inverse
from repro.simulation import (
    FlowSimulator,
    Link,
    PoissonProcess,
    ThresholdAdmission,
)


class TestErlangB:
    def test_known_values(self):
        # classic table entries
        assert erlang_b(1, 1.0) == pytest.approx(0.5)
        assert erlang_b(2, 1.0) == pytest.approx(0.2)
        assert erlang_b(5, 3.0) == pytest.approx(0.11005, abs=1e-4)

    def test_direct_formula_small_cases(self):
        # B(c, a) = (a^c/c!) / sum a^j/j!
        for c, a in ((3, 2.0), (6, 4.5), (10, 8.0)):
            direct = (a**c / math.factorial(c)) / sum(
                a**j / math.factorial(j) for j in range(c + 1)
            )
            assert erlang_b(c, a) == pytest.approx(direct, rel=1e-12)

    def test_monotonicity(self):
        # decreasing in circuits, increasing in load
        assert erlang_b(10, 8.0) > erlang_b(12, 8.0)
        assert erlang_b(10, 8.0) < erlang_b(10, 10.0)

    def test_edge_cases(self):
        assert erlang_b(0, 5.0) == 1.0
        assert erlang_b(5, 0.0) == 0.0
        with pytest.raises(ModelError):
            erlang_b(-1, 5.0)
        with pytest.raises(ModelError):
            erlang_b(5, -1.0)

    def test_large_system_stability(self):
        # the recurrence must survive loads where a^c/c! overflows
        value = erlang_b(1000, 950.0)
        assert 0.0 < value < 1.0

    def test_carried_utility_complement(self):
        assert carried_utility(10, 8.0) == pytest.approx(1.0 - erlang_b(10, 8.0))


class TestErlangBInverse:
    def test_inverse_brackets_the_target(self):
        for a, target in ((20.0, 0.01), (100.0, 0.001), (5.0, 0.1)):
            c = erlang_b_inverse(a, target)
            assert erlang_b(c, a) <= target
            assert erlang_b(c - 1, a) > target

    def test_zero_load(self):
        assert erlang_b_inverse(0.0, 0.01) == 0

    def test_invalid_target(self):
        with pytest.raises(ModelError):
            erlang_b_inverse(10.0, 0.0)
        with pytest.raises(ModelError):
            erlang_b_inverse(10.0, 1.5)


class TestLossSystemSimulation:
    def test_simulated_blocking_matches_erlang(self):
        offered, circuits = 20.0, 24
        sim = FlowSimulator(
            PoissonProcess(offered, mu=1.0),
            Link(float(circuits)),
            ThresholdAdmission(circuits),
            lost_calls_cleared=True,
        )
        res = sim.run(3000.0, warmup=300.0, seed=13)
        mask = res.completed_mask()
        blocked = 1.0 - float(res.flows.admitted[mask].mean())
        assert blocked == pytest.approx(erlang_b(circuits, offered), abs=0.01)

    def test_census_never_exceeds_circuits(self):
        sim = FlowSimulator(
            PoissonProcess(30.0),
            Link(10.0),
            ThresholdAdmission(10),
            lost_calls_cleared=True,
        )
        res = sim.run(200.0, warmup=20.0, seed=5)
        assert res.trajectory.census.max() <= 10

    def test_cleared_flows_have_zero_duration(self):
        sim = FlowSimulator(
            PoissonProcess(30.0),
            Link(10.0),
            ThresholdAdmission(10),
            lost_calls_cleared=True,
        )
        res = sim.run(200.0, warmup=20.0, seed=5)
        rejected = ~res.flows.admitted
        assert np.all(
            res.flows.departure[rejected] == res.flows.arrival[rejected]
        )

    def test_static_and_erlang_blocking_are_different_functionals(self):
        # the paper's static blocking is the expected *excess demand*
        # fraction of an unconstrained census; Erlang-B is the arrival
        # blocking of the truncated loss system.  They agree on the
        # order of magnitude but not the value — worth pinning down so
        # nobody conflates them.
        from repro.loads import PoissonLoad
        from repro.models import VariableLoadModel
        from repro.utility import RigidUtility

        offered, circuits = 20.0, 24
        static = VariableLoadModel(PoissonLoad(offered), RigidUtility(1.0))
        theta = static.blocking_fraction(float(circuits))
        eb = erlang_b(circuits, offered)
        assert 0.05 < theta / eb < 1.0  # static excess < Erlang blocking here
        # both vanish as circuits grow
        assert static.blocking_fraction(2.0 * offered) < 1e-3
        assert erlang_b(int(2 * offered), offered) < 1e-3

    def test_incompatible_with_retries(self):
        with pytest.raises(ModelError):
            FlowSimulator(
                PoissonProcess(5.0),
                Link(5.0),
                ThresholdAdmission(5),
                retry_rate=1.0,
                lost_calls_cleared=True,
            )
