"""Tests for the ArchitectureComparison orchestrator."""

import pytest

from repro.models import (
    ArchitectureComparison,
    RetryingModel,
    SamplingModel,
)


@pytest.fixture
def comparison(geometric_load, adaptive):
    return ArchitectureComparison(geometric_load, adaptive)


class TestAt:
    def test_point_fields_consistent(self, comparison):
        pt = comparison.at(15.0)
        assert pt.capacity == 15.0
        assert pt.reservation >= pt.best_effort
        assert pt.performance_gap == pytest.approx(
            pt.reservation - pt.best_effort, abs=1e-12
        )
        assert pt.bandwidth_gap >= 0.0
        assert 0.0 <= pt.overload_probability <= 1.0

    def test_point_matches_underlying_model(self, comparison):
        pt = comparison.at(12.0)
        m = comparison.variable_load
        assert pt.best_effort == m.best_effort(12.0)
        assert pt.k_max == m.k_max(12.0)

    def test_as_dict_round_trips(self, comparison):
        d = comparison.at(10.0).as_dict()
        assert set(d) == {
            "capacity",
            "k_max",
            "best_effort",
            "reservation",
            "performance_gap",
            "bandwidth_gap",
            "overload_probability",
        }


class TestSweep:
    def test_report_aggregates(self, comparison):
        report = comparison.sweep([6.0, 9.0, 12.0, 18.0, 24.0, 36.0])
        assert len(report.points) == 6
        assert report.max_performance_gap > 0.0
        assert report.max_bandwidth_gap > 0.0
        assert report.bandwidth_gap_trend() in {"increasing", "decreasing", "flat"}

    def test_trend_needs_enough_points(self, comparison):
        report = comparison.sweep([6.0, 12.0])
        with pytest.raises(ValueError):
            report.bandwidth_gap_trend()

    def test_sweep_with_prices_produces_gamma(self, comparison):
        report = comparison.sweep([6.0, 12.0], prices=[0.05, 0.1])
        assert len(report.gamma_values) == 2

    def test_geometric_adaptive_gap_eventually_decreases(self, comparison):
        # the paper: exponential + adaptive -> Delta vanishes at large C
        report = comparison.sweep([24.0, 36.0, 48.0, 72.0, 96.0, 144.0])
        assert report.bandwidth_gap_trend() == "decreasing"


class TestExtensionFactories:
    def test_with_sampling(self, comparison):
        m = comparison.with_sampling(5)
        assert isinstance(m, SamplingModel)
        assert m.samples == 5

    def test_with_retries(self, comparison):
        m = comparison.with_retries(alpha=0.2)
        assert isinstance(m, RetryingModel)
        assert m.alpha == 0.2

    def test_welfare_lazy_and_cached(self, comparison):
        assert comparison.welfare is comparison.welfare

    def test_break_even_complexity_cost(self, comparison):
        cost = comparison.break_even_complexity_cost(0.05)
        assert cost >= 0.0
        assert cost == pytest.approx(
            comparison.welfare.equalizing_ratio(0.05) - 1.0
        )

    def test_fixed_load_shares_utility(self, comparison):
        assert comparison.fixed_load.utility is comparison.utility
