"""Tests for the Section 4 welfare model."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import Architecture, VariableLoadModel, WelfareModel
from repro.utility import AdaptiveUtility, RigidUtility


@pytest.fixture
def rigid_welfare(geometric_load):
    return WelfareModel(VariableLoadModel(geometric_load, RigidUtility(1.0)))


@pytest.fixture
def adaptive_welfare(geometric_load):
    return WelfareModel(VariableLoadModel(geometric_load, AdaptiveUtility()))


class TestProvisioning:
    def test_reservation_capacity_decreases_with_price(self, rigid_welfare):
        caps = [
            rigid_welfare.optimal_capacity(p, Architecture.RESERVATION)
            for p in (0.02, 0.05, 0.15)
        ]
        assert caps[0] >= caps[1] >= caps[2]

    def test_rigid_best_effort_optimum_is_a_welfare_max(self, rigid_welfare):
        p = 0.05
        c_star = rigid_welfare.optimal_capacity(p, Architecture.BEST_EFFORT)
        w_star = rigid_welfare.welfare_best_effort(p)
        model = rigid_welfare.model
        for c in np.arange(0.0, 4.0 * model.mean_load, 1.0):
            w = model.total_best_effort(float(c)) - p * float(c)
            assert w <= w_star + 1e-9

    def test_rigid_reservation_optimum_is_a_welfare_max(self, rigid_welfare):
        p = 0.05
        w_star = rigid_welfare.welfare_reservation(p)
        model = rigid_welfare.model
        for c in np.arange(0.0, 6.0 * model.mean_load, 1.0):
            w = model.total_reservation(float(c)) - p * float(c)
            assert w <= w_star + 1e-9

    def test_smooth_optimum_satisfies_foc(self, adaptive_welfare):
        p = 0.05
        c_star = adaptive_welfare.optimal_capacity(p, Architecture.BEST_EFFORT)
        marginal = adaptive_welfare.model.best_effort_marginal(c_star)
        assert marginal == pytest.approx(p, rel=1e-3)

    def test_smooth_optimum_beats_neighbours(self, adaptive_welfare):
        p = 0.05
        c_star = adaptive_welfare.optimal_capacity(p, Architecture.BEST_EFFORT)
        w_star = adaptive_welfare.welfare_best_effort(p)
        model = adaptive_welfare.model
        for c in (0.5 * c_star, 0.9 * c_star, 1.1 * c_star, 2.0 * c_star):
            assert model.total_best_effort(c) - p * c <= w_star + 1e-9

    def test_exorbitant_price_builds_nothing(self, adaptive_welfare):
        decision = adaptive_welfare.provision(5.0, Architecture.BEST_EFFORT)
        assert decision.capacity == 0.0
        assert decision.welfare == 0.0

    def test_invalid_price_rejected(self, adaptive_welfare):
        with pytest.raises(ValueError):
            adaptive_welfare.provision(0.0, Architecture.BEST_EFFORT)


class TestWelfareOrdering:
    @pytest.mark.parametrize("price", [0.02, 0.05, 0.1])
    def test_reservation_welfare_dominates(
        self, rigid_welfare, adaptive_welfare, price
    ):
        # W_R(p) >= W_B(p) always (the paper's inequality)
        for w in (rigid_welfare, adaptive_welfare):
            assert w.welfare_reservation(price) >= w.welfare_best_effort(price) - 1e-9

    def test_welfare_decreasing_in_price(self, adaptive_welfare):
        values = [
            adaptive_welfare.welfare_reservation(p) for p in (0.01, 0.05, 0.2)
        ]
        assert values[0] > values[1] > values[2]


class TestEqualizingRatio:
    def test_at_least_one(self, rigid_welfare, adaptive_welfare):
        for w in (rigid_welfare, adaptive_welfare):
            assert w.equalizing_ratio(0.05) >= 1.0 - 1e-9

    def test_equalizing_price_equalises(self, rigid_welfare):
        p = 0.05
        p_hat = rigid_welfare.equalizing_price(p)
        assert rigid_welfare.welfare_reservation(p_hat) == pytest.approx(
            rigid_welfare.welfare_best_effort(p), rel=1e-6
        )

    def test_adaptive_ratio_smaller_than_rigid(
        self, rigid_welfare, adaptive_welfare
    ):
        # adaptivity shrinks the case for reservations
        p = 0.05
        assert adaptive_welfare.equalizing_ratio(p) < rigid_welfare.equalizing_ratio(p)

    def test_zero_welfare_price_raises(self, rigid_welfare):
        # price above the largest best-effort increment: W_B = 0
        with pytest.raises(ModelError):
            rigid_welfare.equalizing_price(0.9)


class TestEnvelope:
    def test_envelope_monotone(self, adaptive_welfare):
        env = adaptive_welfare.envelope(Architecture.BEST_EFFORT)
        assert np.all(np.diff(env["price"]) < 0.0)
        assert np.all(np.diff(env["welfare"]) > 0.0)
        assert np.all(np.diff(env["capacity"]) > 0.0)

    def test_envelope_welfare_matches_exact(self, adaptive_welfare):
        env = adaptive_welfare.envelope(Architecture.BEST_EFFORT)
        # pick an interior tabulated price and compare with the exact optimiser
        idx = len(env["price"]) // 2
        p = float(env["price"][idx])
        exact = adaptive_welfare.welfare_best_effort(p)
        assert env["welfare"][idx] == pytest.approx(exact, rel=1e-3)

    def test_rigid_envelope_tabulates_steps(self, rigid_welfare):
        env = rigid_welfare.envelope(Architecture.RESERVATION)
        assert np.all(np.diff(env["price"]) < 0.0)
        # reservation increments are survival probabilities <= 1
        assert np.all(env["price"] <= 1.0)

    def test_ratio_curve_matches_exact(self, rigid_welfare):
        prices = [0.03, 0.08]
        curve = rigid_welfare.ratio_curve(prices)
        for p, gamma in zip(curve["price"], curve["gamma"]):
            exact = rigid_welfare.equalizing_ratio(float(p))
            assert gamma == pytest.approx(exact, rel=0.05)

    def test_ratio_curve_nan_outside_range(self, adaptive_welfare):
        curve = adaptive_welfare.ratio_curve([1e9])
        assert np.isnan(curve["gamma"][0])
