"""The ``meanfield`` CLI subcommand: rendering, caching, refusals."""

import json

import pytest

from repro import obs
from repro.cli import main


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


CAPS = ["--capacities", "60", "80", "120"]


class TestRendering:
    def test_text_table_and_point_estimate(self, capsys):
        assert main(["meanfield", *CAPS]) == 0
        out = capsys.readouterr().out
        assert "load=poisson utility=adaptive N=100" in out
        assert "point estimate at C=55" in out
        assert "+/-" in out

    def test_json_envelope(self, capsys):
        assert main(["meanfield", *CAPS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["_meta"]["load"] == "poisson"
        assert payload["_meta"]["utility"] == "adaptive"
        result = payload["result"]
        assert result["capacity"] == [60.0, 80.0, 120.0]
        assert len(result["best_effort"]) == 3
        # monotone blocking relief along the sweep
        assert result["best_effort"] == sorted(result["best_effort"])
        assert result["point_gap"][0] >= 0.0

    def test_population_override_rescales_the_fluid_point(self, capsys):
        assert main(["meanfield", *CAPS, "--population", "50", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["population"] == [50.0]
        assert payload["result"]["cv"][0] == pytest.approx(50.0**-0.5)

    def test_point_matches_the_engine_contract(self, capsys):
        from repro.experiments import DEFAULT_CONFIG
        from repro.meanfield import MeanFieldSimulator
        from repro.simulation import BirthDeathProcess, Link

        assert main(["meanfield", *CAPS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        expected = (
            MeanFieldSimulator(
                BirthDeathProcess(DEFAULT_CONFIG.load("poisson")),
                Link(DEFAULT_CONFIG.sim_capacity),
            )
            .paired_gap(
                DEFAULT_CONFIG.utility("adaptive"),
                DEFAULT_CONFIG.sim_replications,
                DEFAULT_CONFIG.sim_horizon,
                warmup=DEFAULT_CONFIG.sim_warmup,
            )
            .summary()
        )
        assert payload["result"]["point_best_effort"][0] == pytest.approx(
            expected["best_effort"], rel=1e-12
        )
        assert payload["result"]["point_gap_ci"][0] == pytest.approx(
            expected["gap_ci"], rel=1e-12
        )


class TestCaching:
    def test_cold_then_warm_cache(self, tmp_path, capsys):
        cache = str(tmp_path)
        assert main(["meanfield", *CAPS, "--cache-dir", cache, "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["_meta"]["cache"] == "miss"
        assert main(["meanfield", *CAPS, "--cache-dir", cache, "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["_meta"]["cache"] == "hit"
        assert warm["result"] == cold["result"]

    def test_population_override_readdresses_the_cache(self, tmp_path, capsys):
        cache = str(tmp_path)
        assert main(["meanfield", *CAPS, "--cache-dir", cache, "--json"]) == 0
        capsys.readouterr()
        assert main(
            ["meanfield", *CAPS, "--population", "64", "--cache-dir", cache, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["_meta"]["cache"] == "miss"
        assert payload["result"]["population"] == [64.0]


class TestRefusals:
    def test_heavy_tail_refused_with_exit_1(self, tmp_path, capsys):
        cache = str(tmp_path)
        assert main(["meanfield", "--load", "exponential", "--cache-dir", cache]) == 1
        err = capsys.readouterr().err
        assert "CV" in err
        # refusals are never cached
        assert not any(tmp_path.iterdir())

    @pytest.mark.parametrize(
        "argv",
        [
            ["meanfield", "--population", "-5"],
            ["meanfield", "--capacities", "0"],
        ],
    )
    def test_invalid_arguments_exit_nonzero(self, argv):
        with pytest.raises(SystemExit):
            main(argv)
