"""Tests for the Gaussian census and OU-priced confidence intervals."""

import math

import numpy as np
import pytest

from repro.errors import ModelError
from repro.meanfield import (
    DriftField,
    GaussianCensus,
    MeanFieldEstimate,
    solve_fixed_point,
    window_variance_factor,
    z_quantile,
)
from repro.meanfield.fluid import FluidFixedPoint
from repro.simulation import PoissonProcess


def _census(mean: float = 50.0) -> GaussianCensus:
    return GaussianCensus(solve_fixed_point(DriftField(PoissonProcess(mean))))


class TestWindowVarianceFactor:
    def test_long_window_limit_is_two_tau_over_t(self):
        # tau/T -> 0: c(r) ~ 2r (the classic 2 tau / T variance decay)
        r = 1e-4
        assert window_variance_factor(r) == pytest.approx(2.0 * r, rel=1e-3)

    def test_short_window_limit_is_one(self):
        assert window_variance_factor(1e9) == pytest.approx(1.0)

    def test_monotone_increasing_in_ratio(self):
        ratios = np.geomspace(1e-4, 1e3, 30)
        values = [window_variance_factor(r) for r in ratios]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_zero_ratio_gives_zero(self):
        assert window_variance_factor(0.0) == 0.0

    def test_never_exceeds_one(self):
        assert all(window_variance_factor(r) <= 1.0 for r in (0.1, 1.0, 10.0))


class TestGaussianCensus:
    def test_expectation_of_identity_is_the_mean(self):
        census = _census(50.0)
        assert census.expect(lambda n: n) == pytest.approx(50.0, rel=1e-9)

    def test_moments_reproduce_the_variance(self):
        census = _census(50.0)
        mean, var = census.moments(lambda n: n)
        assert mean == pytest.approx(50.0, rel=1e-9)
        assert var == pytest.approx(50.0, rel=1e-6)

    def test_nodes_are_clamped_nonnegative(self):
        nodes, weights = _census(4.0).nodes()
        assert np.all(nodes >= 0.0)
        assert np.sum(weights) == pytest.approx(1.0, rel=1e-12)

    def test_coefficient_of_variation(self):
        census = _census(100.0)
        assert census.coefficient_of_variation == pytest.approx(0.1, rel=1e-6)

    def test_sem_scales_with_inverse_sqrt_replications(self):
        census = _census(50.0)
        sem4 = census.time_average_sem(lambda n: n, window=100.0, replications=4)
        sem16 = census.time_average_sem(lambda n: n, window=100.0, replications=16)
        assert sem4 / sem16 == pytest.approx(2.0, rel=1e-9)

    def test_sem_shrinks_with_longer_windows(self):
        census = _census(50.0)
        short = census.time_average_sem(lambda n: n, window=10.0, replications=8)
        long = census.time_average_sem(lambda n: n, window=1000.0, replications=8)
        assert long < short

    def test_degenerate_budget_gives_infinite_sem(self):
        census = _census(50.0)
        assert census.time_average_sem(lambda n: n, window=0.0, replications=8) == math.inf

    def test_unstable_fixed_point_refused(self):
        bad = FluidFixedPoint(
            census=10.0, drift_jacobian=0.5, intensity=20.0, converged=True
        )
        with pytest.raises(ModelError, match="unstable"):
            GaussianCensus(bad)

    def test_unconverged_fixed_point_refused(self):
        bad = FluidFixedPoint(
            census=10.0, drift_jacobian=-1.0, intensity=20.0, converged=False
        )
        with pytest.raises(ModelError, match="unconverged"):
            GaussianCensus(bad)


class TestMeanFieldEstimate:
    def test_contract_fields(self):
        est = MeanFieldEstimate(
            mean=0.5,
            ci_halfwidth=0.01,
            level=0.95,
            replications=8,
            horizon=100.0,
            warmup=10.0,
        )
        assert est.effective_window == pytest.approx(90.0)

    def test_invalid_level_rejected(self):
        with pytest.raises(ModelError, match="level"):
            MeanFieldEstimate(
                mean=0.5, ci_halfwidth=0.01, level=1.5,
                replications=8, horizon=100.0, warmup=0.0,
            )

    def test_invalid_replications_rejected(self):
        with pytest.raises(ModelError, match="replications"):
            MeanFieldEstimate(
                mean=0.5, ci_halfwidth=0.01, level=0.95,
                replications=0, horizon=100.0, warmup=0.0,
            )

    def test_z_quantile_matches_the_normal_table(self):
        assert z_quantile(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_quantile(0.99) == pytest.approx(2.575829, abs=1e-5)
