"""Tests for the population-scaling vocabulary."""

import pytest

from repro.errors import ModelError
from repro.meanfield import (
    BASE_POPULATION,
    CANONICAL_SCALES,
    PopulationScale,
    SCALING_REGIMES,
)


class TestPopulationScale:
    def test_capacity_scales_with_provisioning(self):
        scale = PopulationScale(population=100.0, replications=8)
        assert scale.capacity() == pytest.approx(110.0)
        assert scale.capacity(provisioning=2.0) == pytest.approx(200.0)

    def test_fixed_budget_regime_shrinks_replications(self):
        scale = PopulationScale(
            population=4 * BASE_POPULATION, replications=8, regime="fixed_budget"
        )
        assert scale.scaled_replications() == 2

    def test_fixed_budget_never_drops_below_one_replication(self):
        scale = PopulationScale(
            population=1e6, replications=4, regime="fixed_budget"
        )
        assert scale.scaled_replications() == 1

    def test_other_regimes_keep_the_budget(self):
        for regime in ("fluid", "diffusion"):
            scale = PopulationScale(population=400.0, replications=8, regime=regime)
            assert scale.scaled_replications() == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population": 0.0, "replications": 8},
            {"population": 100.0, "replications": 0},
            {"population": 100.0, "replications": 8, "regime": "warp"},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ModelError):
            PopulationScale(**kwargs)

    def test_canonical_scales_probe_the_fluid_regime(self):
        assert len(CANONICAL_SCALES) >= 3
        populations = [scale.population for scale in CANONICAL_SCALES]
        assert populations == sorted(populations)
        assert all(scale.regime in SCALING_REGIMES for scale in CANONICAL_SCALES)
