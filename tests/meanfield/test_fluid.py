"""Tests for the fluid layer: drift derivation and the ODE integrator."""

import math

import numpy as np
import pytest

from repro.errors import ConvergenceError, ModelError
from repro.loads import GeometricLoad, PoissonLoad
from repro.meanfield import (
    DriftField,
    default_initial_census,
    integrate,
    solve_fixed_point,
)
from repro.simulation import BirthDeathProcess, PoissonProcess
from repro.simulation.processes import DemandProcess, ParetoBatchProcess


class _ExplosiveProcess(DemandProcess):
    """Super-linear births: drift is positive everywhere, no fixed point."""

    def arrival_rate(self, census: int) -> float:
        return 2.0 * census + 1.0

    def departure_rate(self, census: int) -> float:
        return float(census)

    def batch_size(self, rng) -> int:
        return 1


class _StatefulProcess(_ExplosiveProcess):
    def advance_to(self, t: float) -> None:
        self._t = t


class TestDriftField:
    def test_rates_match_process_on_the_lattice(self):
        process = BirthDeathProcess(PoissonLoad(10.0))
        field = DriftField(process)
        census = np.arange(0, 30)
        np.testing.assert_allclose(
            field.arrival(census.astype(float)), process.arrival_rates(census)
        )
        np.testing.assert_allclose(
            field.departure(census.astype(float)), process.departure_rates(census)
        )

    def test_fractional_census_interpolates_linearly(self):
        field = DriftField(BirthDeathProcess(PoissonLoad(10.0)))
        lo, hi = field.arrival(7.0), field.arrival(8.0)
        assert field.arrival(7.25) == pytest.approx(0.75 * lo + 0.25 * hi)

    def test_scalar_and_array_evaluation_agree(self):
        field = DriftField(PoissonProcess(25.0))
        assert field.drift(12.5) == pytest.approx(float(field.drift(np.array([12.5]))[0]))

    def test_negative_census_clamped_to_zero(self):
        field = DriftField(PoissonProcess(25.0))
        assert field.drift(-3.0) == field.drift(0.0)

    def test_stateful_process_refused(self):
        with pytest.raises(ModelError, match="state"):
            DriftField(_StatefulProcess())

    def test_batch_arrival_process_refused(self):
        with pytest.raises(ModelError, match="batch"):
            DriftField(ParetoBatchProcess(5.0))

    def test_jacobian_is_negative_at_stable_point(self):
        field = DriftField(PoissonProcess(50.0))
        assert field.jacobian(50.0) == pytest.approx(-1.0)


class TestFixedPoint:
    def test_poisson_process_fixed_point_is_exact(self):
        fp = solve_fixed_point(DriftField(PoissonProcess(50.0)))
        assert fp.census == pytest.approx(50.0, abs=1e-9)
        assert fp.converged and fp.stable
        # OU variance reproduces the exact Poisson census variance
        assert fp.variance == pytest.approx(50.0, rel=1e-9)
        assert fp.relaxation_time == pytest.approx(1.0, rel=1e-9)

    @pytest.mark.parametrize("mean", [25.0, 100.0, 400.0])
    def test_birth_death_poisson_matches_load_mean(self, mean):
        fp = solve_fixed_point(DriftField(BirthDeathProcess(PoissonLoad(mean))))
        assert fp.census == pytest.approx(mean, rel=1e-9)

    def test_birth_death_geometric_matches_load_mean(self):
        load = GeometricLoad.from_mean(40.0)
        fp = solve_fixed_point(DriftField(BirthDeathProcess(load)))
        assert fp.census == pytest.approx(load.mean, rel=1e-9)
        # geometric census variance is n*/(1-q); detailed balance gives
        # birth rate (k+1)P(k+1)/P(k) = q(k+1), so sigma^2 = mean/(1-q)
        q = 1.0 - 1.0 / (1.0 + load.mean)
        assert fp.variance == pytest.approx(load.mean / (1.0 - q), rel=1e-6)

    def test_explosive_process_raises_convergence_error(self):
        with pytest.raises(ConvergenceError):
            solve_fixed_point(DriftField(_ExplosiveProcess()), max_steps=500)

    def test_default_initial_census_prefers_mean_hint(self):
        assert default_initial_census(PoissonProcess(30.0)) == 30.0
        assert default_initial_census(BirthDeathProcess(PoissonLoad(12.0))) == 12.0


class TestIntegrator:
    def test_trajectory_follows_the_linear_ode_exactly(self):
        # PoissonProcess drift is b(n) = m - n: n(t) = m + (n0 - m) e^-t
        field = DriftField(PoissonProcess(50.0))
        traj = integrate(field, 10.0, horizon=3.0, rtol=1e-9, atol=1e-9)
        expected = 50.0 + (10.0 - 50.0) * np.exp(-traj.times)
        np.testing.assert_allclose(traj.census, expected, rtol=1e-6, atol=1e-6)
        assert traj.horizon == pytest.approx(3.0)

    def test_equilibrium_run_engages_the_stiff_branch(self):
        # contraction rate ~1: once h grows past ~1.5 the exponential-
        # Euler branch must take over (it is exact for this linear ODE)
        traj = integrate(DriftField(PoissonProcess(50.0)), 10.0)
        assert traj.stiff_steps > 0
        assert traj.fixed_point.census == pytest.approx(50.0, abs=1e-9)

    def test_negative_initial_census_rejected(self):
        with pytest.raises(ModelError, match=">= 0"):
            integrate(DriftField(PoissonProcess(5.0)), -1.0)

    def test_trajectory_is_decimated_to_store_budget(self):
        traj = integrate(DriftField(PoissonProcess(50.0)), 10.0, horizon=5.0, store=16)
        assert len(traj.times) <= 16
        assert len(traj.times) == len(traj.census)

    def test_unstable_fixed_point_reported_unstable(self):
        fp = solve_fixed_point(DriftField(PoissonProcess(50.0)))
        assert fp.stable
        assert math.isfinite(fp.stddev)
