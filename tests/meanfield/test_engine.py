"""Tests for the mean-field engine: contract parity and the envelope."""

import numpy as np
import pytest

from repro.errors import ModelError, OutOfDomainError
from repro.experiments import DEFAULT_CONFIG
from repro.loads import PoissonLoad
from repro.meanfield import MeanFieldSimulator, meanfield_gap
from repro.models import VariableLoadModel
from repro.simulation import BirthDeathProcess, Link, PoissonProcess
from repro.simulation.processes import ParetoBatchProcess

UTILITY = DEFAULT_CONFIG.utility("adaptive")


def _sim(mean: float = 50.0, capacity: float = 55.0) -> MeanFieldSimulator:
    return MeanFieldSimulator(PoissonProcess(mean), Link(capacity))


class TestEnvelope:
    def test_poisson_load_is_inside_the_envelope(self):
        verdict = _sim().validity()
        assert verdict["ok"] is True
        assert verdict["reasons"] == []
        assert verdict["cv"] == pytest.approx(np.sqrt(50.0) / 50.0)

    def test_heavy_tailed_census_is_refused(self):
        # geometric census: CV ~ 1, far beyond the Gaussian closure
        load = DEFAULT_CONFIG.load("exponential")
        sim = MeanFieldSimulator(BirthDeathProcess(load), Link(110.0))
        assert sim.validity()["ok"] is False
        with pytest.raises(OutOfDomainError, match="CV"):
            sim.paired_gap(UTILITY, 8, 100.0)

    def test_batch_arrival_process_is_refused_at_construction(self):
        with pytest.raises(OutOfDomainError, match="batch"):
            MeanFieldSimulator(ParetoBatchProcess(5.0), Link(10.0))

    def test_refusal_is_an_out_of_domain_error(self):
        # the service layer keys its 400-vs-500 mapping on this type
        load = DEFAULT_CONFIG.load("algebraic")
        sim = MeanFieldSimulator(BirthDeathProcess(load), Link(110.0))
        with pytest.raises(OutOfDomainError):
            sim.gap_batch(UTILITY, [100.0])


class TestEstimatorContract:
    def test_summary_keys_match_the_ensemble_contract(self):
        from repro.simulation.ensemble import PairedGapResult

        mf = _sim().paired_gap(UTILITY, 12, 200.0, warmup=50.0).summary()
        ens = PairedGapResult(
            best_effort=np.full(4, 0.5),
            reservation=np.full(4, 0.5),
            gap=np.zeros(4),
        ).summary()
        assert set(mf) == set(ens)
        assert mf["replications"] == 12
        assert mf["level"] == 0.95

    def test_values_match_the_analytic_model(self):
        result = _sim().paired_gap(UTILITY, 12, 200.0, warmup=50.0)
        model = VariableLoadModel(PoissonLoad(50.0), UTILITY)
        summary = result.summary()
        assert summary["best_effort"] == pytest.approx(
            model.best_effort(55.0), abs=2e-4
        )
        assert summary["reservation"] == pytest.approx(
            model.reservation(55.0), abs=2e-4
        )
        assert summary["gap"] == pytest.approx(
            model.performance_gap(55.0), abs=5e-5
        )

    def test_paired_gap_ci_is_tighter_than_marginals(self):
        # the CRN analogue: the paired functional cancels shared
        # census noise, so its CI must beat both marginal CIs
        result = _sim().paired_gap(UTILITY, 12, 200.0, warmup=50.0)
        assert result.gap.ci_halfwidth < 0.2 * result.best_effort.ci_halfwidth
        assert result.gap.ci_halfwidth < 0.2 * result.reservation.ci_halfwidth

    def test_ci_scales_with_budget(self):
        small = _sim().paired_gap(UTILITY, 4, 100.0, warmup=50.0)
        large = _sim().paired_gap(UTILITY, 16, 100.0, warmup=50.0)
        assert large.gap.ci_halfwidth == pytest.approx(
            small.gap.ci_halfwidth / 2.0, rel=1e-9
        )

    def test_invalid_warmup_rejected(self):
        with pytest.raises(ModelError, match="warmup"):
            _sim().utility_estimates(UTILITY, replications=8, horizon=10.0, warmup=10.0)

    def test_module_level_gap_matches_the_method(self):
        direct = meanfield_gap(
            PoissonProcess(50.0), Link(55.0), UTILITY, 12, 200.0, warmup=50.0
        ).summary()
        method = _sim().paired_gap(UTILITY, 12, 200.0, warmup=50.0).summary()
        assert direct == method


class TestBatchEntryPoints:
    def test_gap_is_reservation_minus_best_effort(self):
        sim = _sim()
        caps = np.linspace(40.0, 90.0, 6)
        np.testing.assert_allclose(
            sim.gap_batch(UTILITY, caps),
            sim.reservation_batch(UTILITY, caps) - sim.best_effort_batch(UTILITY, caps),
            atol=1e-14,
        )

    def test_one_solve_serves_the_whole_grid(self):
        sim = _sim()
        first = sim.equilibrium()
        sim.gap_batch(UTILITY, np.linspace(30.0, 120.0, 50))
        assert sim.equilibrium() is first

    def test_batch_agrees_with_scalar_evaluation(self):
        sim = _sim()
        batch = sim.best_effort_batch(UTILITY, [55.0, 70.0])
        single = sim.best_effort_batch(UTILITY, [55.0])
        assert batch[0] == pytest.approx(float(single[0]), rel=1e-12)

    def test_fluid_values_gap_vanishes_when_capacity_exceeds_kmax(self):
        # at C where k_max(C) >= n*, both architectures admit everyone
        values = _sim(50.0, 80.0).fluid_values(UTILITY)
        assert values["gap"] == 0.0
        assert values["best_effort"] == values["reservation"]
