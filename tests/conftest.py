"""Shared fixtures for the test suite.

Most model tests run at a small mean load (k_bar = 12) so the infinite
sums and root finds are instant; the paper-scale (k_bar = 100) runs
live in the dedicated ``test_paper_*`` modules.
"""

from __future__ import annotations

import pytest

from repro.loads import AlgebraicLoad, GeometricLoad, PoissonLoad
from repro.utility import (
    AdaptiveUtility,
    AlgebraicTailUtility,
    ExponentialElasticUtility,
    HyperbolicElasticUtility,
    PiecewiseLinearUtility,
    PowerLowUtility,
    RigidUtility,
)

#: Small mean used by the fast model tests.
SMALL_MEAN = 12.0


@pytest.fixture
def poisson_load():
    return PoissonLoad(SMALL_MEAN)


@pytest.fixture
def geometric_load():
    return GeometricLoad.from_mean(SMALL_MEAN)


@pytest.fixture
def algebraic_load():
    return AlgebraicLoad.from_mean(3.0, SMALL_MEAN)


@pytest.fixture(params=["poisson", "exponential", "algebraic"])
def any_load(request):
    if request.param == "poisson":
        return PoissonLoad(SMALL_MEAN)
    if request.param == "exponential":
        return GeometricLoad.from_mean(SMALL_MEAN)
    return AlgebraicLoad.from_mean(3.0, SMALL_MEAN)


@pytest.fixture
def rigid():
    return RigidUtility(1.0)


@pytest.fixture
def adaptive():
    return AdaptiveUtility()


@pytest.fixture(params=["rigid", "adaptive"])
def inelastic_utility(request):
    return RigidUtility(1.0) if request.param == "rigid" else AdaptiveUtility()


def all_utilities():
    """Every concrete utility family at representative parameters."""
    return [
        RigidUtility(1.0),
        RigidUtility(2.5),
        AdaptiveUtility(),
        AdaptiveUtility(kappa=1.5),
        PiecewiseLinearUtility(0.0),
        PiecewiseLinearUtility(0.5),
        PiecewiseLinearUtility(0.9),
        ExponentialElasticUtility(),
        ExponentialElasticUtility(rate=3.0),
        HyperbolicElasticUtility(),
        HyperbolicElasticUtility(half=0.25),
        AlgebraicTailUtility(1.0),
        AlgebraicTailUtility(2.5),
        PowerLowUtility(2.0),
        PowerLowUtility(4.0),
    ]
