"""Tests for model selection, goodness-of-fit, and tail estimation."""

import numpy as np
import pytest

from repro.inference import chi_square_gof, fit_all, hill_estimate
from repro.loads import AlgebraicLoad, GeometricLoad, PoissonLoad


class TestFitAll:
    @pytest.mark.parametrize(
        "true,expected",
        [
            (PoissonLoad(30.0), "poisson"),
            (GeometricLoad.from_mean(30.0), "exponential"),
            (AlgebraicLoad.from_mean(3.0, 30.0), "algebraic"),
        ],
        ids=["poisson", "geometric", "algebraic"],
    )
    def test_identifies_true_family(self, true, expected):
        samples = true.sample(np.random.default_rng(11), 8_000)
        assert fit_all(samples).best_name == expected

    def test_ranking_sorted_by_aic(self):
        samples = PoissonLoad(20.0).sample(np.random.default_rng(12), 3_000)
        sel = fit_all(samples)
        aics = [sel.fits[name].aic for name in sel.ranking()]
        assert aics == sorted(aics)

    def test_zeros_exclude_algebraic(self):
        samples = GeometricLoad.from_mean(5.0).sample(np.random.default_rng(13), 3_000)
        assert samples.min() == 0
        sel = fit_all(samples)
        assert "algebraic" not in sel.fits


class TestChiSquareGof:
    def test_accepts_true_model(self):
        true = PoissonLoad(15.0)
        samples = true.sample(np.random.default_rng(14), 5_000)
        _, p = chi_square_gof(true, samples)
        assert p > 0.01

    def test_rejects_wrong_model(self):
        samples = AlgebraicLoad.from_mean(3.0, 15.0).sample(
            np.random.default_rng(15), 5_000
        )
        _, p = chi_square_gof(PoissonLoad(15.0), samples)
        assert p < 1e-6

    def test_pooling_handles_sparse_tail(self):
        samples = GeometricLoad.from_mean(40.0).sample(
            np.random.default_rng(16), 2_000
        )
        stat, p = chi_square_gof(GeometricLoad.from_mean(40.0), samples)
        assert np.isfinite(stat) and 0.0 <= p <= 1.0


class TestHillEstimate:
    def test_pure_pareto_recovery(self):
        # continuous Pareto with survival power alpha = 2 -> z = 3
        rng = np.random.default_rng(17)
        draws = np.ceil((1.0 - rng.random(50_000)) ** (-1.0 / 2.0)).astype(int)
        est = hill_estimate(draws, fraction=0.05)
        assert est.z_hat == pytest.approx(3.0, abs=0.35)
        assert est.heavy_tailed

    def test_light_tail_reads_heavy_z(self):
        samples = PoissonLoad(30.0).sample(np.random.default_rng(18), 20_000)
        est = hill_estimate(samples)
        assert est.z_hat > 6.0
        assert not est.heavy_tailed

    def test_shifted_algebraic_flagged_heavy(self):
        samples = AlgebraicLoad.from_mean(3.0, 30.0).sample(
            np.random.default_rng(19), 50_000
        )
        est = hill_estimate(samples, fraction=0.02)
        assert est.heavy_tailed
        # the shift biases Hill low; it must still land near the truth
        assert 2.0 < est.z_hat < 3.6

    def test_degenerate_top_values(self):
        est = hill_estimate([5] * 50 + [1] * 50, fraction=0.2)
        assert est.z_hat == np.inf

    def test_input_validation(self):
        with pytest.raises(ValueError):
            hill_estimate([1, 2, 3])
        with pytest.raises(ValueError):
            hill_estimate(np.arange(100), fraction=1.5)


class TestNearCriticalTail:
    """z near 2: the regime where the architecture question is sharpest."""

    def test_mle_recovers_z_near_two(self):
        true = AlgebraicLoad.from_mean(2.2, 30.0)
        samples = true.sample(np.random.default_rng(31), 30_000)
        from repro.inference import fit_algebraic

        fit = fit_algebraic(samples)
        assert fit.load.z == pytest.approx(2.2, abs=0.1)

    def test_hill_tracks_near_critical_tail(self):
        true = AlgebraicLoad.from_mean(2.2, 30.0)
        samples = true.sample(np.random.default_rng(31), 30_000)
        est = hill_estimate(samples, fraction=0.02)
        assert est.z_hat == pytest.approx(2.2, abs=0.3)
        assert est.heavy_tailed
