"""Tests for the bootstrap verdict."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.inference import bootstrap_verdict
from repro.loads import PoissonLoad
from repro.utility import AdaptiveUtility

SHORT_SWEEP = tuple(30.0 * m for m in (1.0, 1.5, 2.0, 3.0, 4.0, 6.0))


class TestBootstrapVerdict:
    def test_poisson_decisively_best_effort(self):
        samples = PoissonLoad(30.0).sample(np.random.default_rng(1), 1500)
        verdict = bootstrap_verdict(
            samples,
            AdaptiveUtility(),
            price=0.01,
            n_resamples=6,
            capacity_sweep=SHORT_SWEEP,
        )
        assert verdict.reservation_fraction == 0.0
        assert verdict.decisive
        assert verdict.budget_interval[1] < 0.01

    def test_summary_mentions_decisiveness(self):
        samples = PoissonLoad(30.0).sample(np.random.default_rng(2), 1000)
        verdict = bootstrap_verdict(
            samples,
            AdaptiveUtility(),
            n_resamples=4,
            capacity_sweep=SHORT_SWEEP,
        )
        text = verdict.summary()
        assert "resamples" in text
        assert "decisive" in text

    def test_z_interval_absent_for_poisson(self):
        samples = PoissonLoad(30.0).sample(np.random.default_rng(3), 1000)
        verdict = bootstrap_verdict(
            samples,
            AdaptiveUtility(),
            n_resamples=4,
            capacity_sweep=SHORT_SWEEP,
        )
        # Poisson wins every fit, so no z values accumulate
        assert verdict.z_interval is None

    def test_budget_interval_ordered(self):
        samples = PoissonLoad(30.0).sample(np.random.default_rng(4), 1000)
        verdict = bootstrap_verdict(
            samples,
            AdaptiveUtility(),
            n_resamples=5,
            capacity_sweep=SHORT_SWEEP,
        )
        lo, hi = verdict.budget_interval
        assert lo <= hi

    def test_input_validation(self):
        with pytest.raises(ModelError):
            bootstrap_verdict([1, 2, 3], AdaptiveUtility())
        samples = PoissonLoad(10.0).sample(np.random.default_rng(5), 100)
        with pytest.raises(ModelError):
            bootstrap_verdict(samples, AdaptiveUtility(), n_resamples=1)

    def test_reproducible_with_seed(self):
        samples = PoissonLoad(30.0).sample(np.random.default_rng(6), 800)
        a = bootstrap_verdict(
            samples, AdaptiveUtility(), n_resamples=3, seed=9,
            capacity_sweep=SHORT_SWEEP,
        )
        b = bootstrap_verdict(
            samples, AdaptiveUtility(), n_resamples=3, seed=9,
            capacity_sweep=SHORT_SWEEP,
        )
        assert a.budget_interval == b.budget_interval
