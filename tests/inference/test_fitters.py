"""Tests for the census-family MLE fitters."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.inference import fit_algebraic, fit_geometric, fit_poisson
from repro.loads import AlgebraicLoad, GeometricLoad, PoissonLoad


class TestPoissonFit:
    def test_recovers_parameter(self):
        true = PoissonLoad(25.0)
        samples = true.sample(np.random.default_rng(1), 20_000)
        fit = fit_poisson(samples)
        assert fit.load.nu == pytest.approx(25.0, abs=0.3)
        assert fit.n_parameters == 1

    def test_mle_is_sample_mean(self):
        samples = np.array([3, 5, 7, 9])
        assert fit_poisson(samples).load.nu == 6.0

    def test_loglik_peaks_at_mle(self):
        samples = PoissonLoad(10.0).sample(np.random.default_rng(2), 2000)
        mle = fit_poisson(samples)
        from repro.inference.fitters import _log_likelihood

        for off in (0.8, 1.2):
            assert _log_likelihood(PoissonLoad(10.0 * off), samples) < mle.log_likelihood

    def test_rejects_bad_samples(self):
        with pytest.raises(ValueError):
            fit_poisson([1.5, 2.0])
        with pytest.raises(ValueError):
            fit_poisson([3])
        with pytest.raises(CalibrationError):
            fit_poisson([0, 0, 0])


class TestGeometricFit:
    def test_recovers_mean(self):
        true = GeometricLoad.from_mean(15.0)
        samples = true.sample(np.random.default_rng(3), 20_000)
        fit = fit_geometric(samples)
        assert fit.load.mean == pytest.approx(15.0, abs=0.5)

    def test_mle_formula(self):
        samples = np.array([0, 2, 4])
        fit = fit_geometric(samples)
        assert fit.load.ratio == pytest.approx(2.0 / 3.0)  # q = m/(1+m)


class TestAlgebraicFit:
    def test_recovers_parameters(self):
        true = AlgebraicLoad.from_mean(3.0, 30.0)
        samples = true.sample(np.random.default_rng(4), 20_000)
        fit = fit_algebraic(samples)
        assert fit.load.z == pytest.approx(3.0, abs=0.25)
        assert fit.load.mean == pytest.approx(30.0, rel=0.2)
        assert fit.n_parameters == 2

    def test_beats_wrong_parameters(self):
        true = AlgebraicLoad.from_mean(2.5, 20.0)
        samples = true.sample(np.random.default_rng(5), 10_000)
        fit = fit_algebraic(samples)
        from repro.inference.fitters import _log_likelihood

        assert fit.log_likelihood >= _log_likelihood(
            AlgebraicLoad.from_mean(4.0, 20.0), samples
        )

    def test_rejects_zero_support(self):
        with pytest.raises(ValueError):
            fit_algebraic([0, 1, 2, 3])


class TestInformationCriteria:
    def test_aic_and_bic_formulas(self):
        samples = PoissonLoad(10.0).sample(np.random.default_rng(6), 500)
        fit = fit_poisson(samples)
        assert fit.aic == pytest.approx(2.0 - 2.0 * fit.log_likelihood)
        assert fit.bic == pytest.approx(
            np.log(500) - 2.0 * fit.log_likelihood
        )
