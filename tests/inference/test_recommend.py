"""Tests for the end-to-end architecture recommendation pipeline."""

import numpy as np

from repro.inference import recommend_architecture
from repro.loads import AlgebraicLoad, PoissonLoad
from repro.utility import AdaptiveUtility, RigidUtility


class TestRecommendation:
    def test_heavy_tailed_census_recommends_reservations(self):
        samples = AlgebraicLoad.from_mean(3.0, 50.0).sample(
            np.random.default_rng(21), 5_000
        )
        rec = recommend_architecture(samples, AdaptiveUtility(), price=0.01)
        assert rec.load_family == "algebraic"
        assert rec.bandwidth_gap_trend == "increasing"
        assert rec.reservations_recommended

    def test_poisson_adaptive_recommends_best_effort(self):
        samples = PoissonLoad(50.0).sample(np.random.default_rng(22), 5_000)
        rec = recommend_architecture(samples, AdaptiveUtility(), price=0.01)
        assert rec.load_family == "poisson"
        assert not rec.reservations_recommended

    def test_rigid_apps_strengthen_the_case(self):
        samples = PoissonLoad(50.0).sample(np.random.default_rng(23), 5_000)
        adaptive = recommend_architecture(samples, AdaptiveUtility(), price=0.05)
        rigid = recommend_architecture(samples, RigidUtility(1.0), price=0.05)
        assert rigid.complexity_budget > adaptive.complexity_budget

    def test_summary_contains_verdict(self):
        samples = PoissonLoad(40.0).sample(np.random.default_rng(24), 2_000)
        rec = recommend_architecture(samples, AdaptiveUtility(), price=0.05)
        text = rec.summary()
        assert "identified census family" in text
        assert "verdict" in text

    def test_custom_capacity_sweep(self):
        samples = PoissonLoad(40.0).sample(np.random.default_rng(25), 2_000)
        rec = recommend_architecture(
            samples,
            AdaptiveUtility(),
            price=0.05,
            capacity_sweep=tuple(40.0 * m for m in (1.0, 1.5, 2.0, 3.0, 4.0, 6.0)),
        )
        assert rec.bandwidth_gap_trend in {"increasing", "decreasing", "flat"}

    def test_tail_estimate_attached_when_possible(self):
        samples = AlgebraicLoad.from_mean(3.0, 40.0).sample(
            np.random.default_rng(26), 3_000
        )
        rec = recommend_architecture(samples, AdaptiveUtility())
        assert rec.tail is not None
        assert rec.tail.heavy_tailed


class TestRecommendationBranches:
    def test_tiny_samples_skip_the_tail_estimate(self):
        samples = PoissonLoad(30.0).sample(np.random.default_rng(27), 8)
        rec = recommend_architecture(samples, AdaptiveUtility(), price=0.05)
        assert rec.tail is None
        assert "Hill tail estimate" not in rec.summary()

    def test_mostly_zero_samples_skip_the_tail_estimate(self):
        # enough samples but fewer than 10 nonzero observations
        samples = np.array([0] * 40 + [3, 5, 2, 4, 1])
        rec = recommend_architecture(samples, AdaptiveUtility(), price=0.05)
        assert rec.tail is None

    def test_summary_reports_the_tail_when_present(self):
        samples = AlgebraicLoad.from_mean(3.0, 40.0).sample(
            np.random.default_rng(28), 3_000
        )
        text = recommend_architecture(samples, AdaptiveUtility()).summary()
        assert "Hill tail estimate" in text
        assert "heavy-tailed" in text

    def test_budget_branch_alone_recommends_reservations(self):
        # a flat gap trend with a material complexity budget must still
        # return the reservation verdict (the `or` in the property)
        samples = PoissonLoad(50.0).sample(np.random.default_rng(29), 5_000)
        rec = recommend_architecture(samples, RigidUtility(1.0), price=0.05)
        if rec.complexity_budget > 0.02:
            assert rec.reservations_recommended

    def test_price_is_recorded_verbatim(self):
        samples = PoissonLoad(30.0).sample(np.random.default_rng(30), 500)
        rec = recommend_architecture(samples, AdaptiveUtility(), price=0.125)
        assert rec.price == 0.125
        assert "price 0.125" in rec.summary()
