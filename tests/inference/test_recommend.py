"""Tests for the end-to-end architecture recommendation pipeline."""

import numpy as np

from repro.inference import recommend_architecture
from repro.loads import AlgebraicLoad, PoissonLoad
from repro.utility import AdaptiveUtility, RigidUtility


class TestRecommendation:
    def test_heavy_tailed_census_recommends_reservations(self):
        samples = AlgebraicLoad.from_mean(3.0, 50.0).sample(
            np.random.default_rng(21), 5_000
        )
        rec = recommend_architecture(samples, AdaptiveUtility(), price=0.01)
        assert rec.load_family == "algebraic"
        assert rec.bandwidth_gap_trend == "increasing"
        assert rec.reservations_recommended

    def test_poisson_adaptive_recommends_best_effort(self):
        samples = PoissonLoad(50.0).sample(np.random.default_rng(22), 5_000)
        rec = recommend_architecture(samples, AdaptiveUtility(), price=0.01)
        assert rec.load_family == "poisson"
        assert not rec.reservations_recommended

    def test_rigid_apps_strengthen_the_case(self):
        samples = PoissonLoad(50.0).sample(np.random.default_rng(23), 5_000)
        adaptive = recommend_architecture(samples, AdaptiveUtility(), price=0.05)
        rigid = recommend_architecture(samples, RigidUtility(1.0), price=0.05)
        assert rigid.complexity_budget > adaptive.complexity_budget

    def test_summary_contains_verdict(self):
        samples = PoissonLoad(40.0).sample(np.random.default_rng(24), 2_000)
        rec = recommend_architecture(samples, AdaptiveUtility(), price=0.05)
        text = rec.summary()
        assert "identified census family" in text
        assert "verdict" in text

    def test_custom_capacity_sweep(self):
        samples = PoissonLoad(40.0).sample(np.random.default_rng(25), 2_000)
        rec = recommend_architecture(
            samples,
            AdaptiveUtility(),
            price=0.05,
            capacity_sweep=tuple(40.0 * m for m in (1.0, 1.5, 2.0, 3.0, 4.0, 6.0)),
        )
        assert rec.bandwidth_gap_trend in {"increasing", "decreasing", "flat"}

    def test_tail_estimate_attached_when_possible(self):
        samples = AlgebraicLoad.from_mean(3.0, 40.0).sample(
            np.random.default_rng(26), 3_000
        )
        rec = recommend_architecture(samples, AdaptiveUtility())
        assert rec.tail is not None
        assert rec.tail.heavy_tailed
