"""Regenerate ``figures.json`` from the scalar reference path.

Run from the repository root:

    PYTHONPATH=src python tests/golden/generate.py

The golden values pin the paper-parameter figures (k_bar = 100,
kappa = 0.62086, z = 3) at ~10 canonical grid points each:

- ``delta``  — performance gap δ(C) = R(C) − B(C), Figures 2–4;
- ``Delta``  — bandwidth gap Δ(C) with B(C + Δ) = R(C), Figures 2–4;
- ``gamma``  — discrete welfare price-ratio curve γ(p) per figure;
- ``continuum_gamma`` — closed-form rigid/exponential γ(p) overlay.

Values come from the *scalar* code path on purpose: the golden test
then holds both the scalar and the vectorised batch paths to the same
numbers, so a regression in either (or a drift between them) fails CI.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.continuum import RigidExponentialContinuum
from repro.experiments.params import DEFAULT_CONFIG
from repro.models import VariableLoadModel, WelfareModel

OUT = pathlib.Path(__file__).parent / "figures.json"

#: Canonical capacity grid (absolute units, k_bar = 100): spans the
#: under- to over-provisioned range where every figure quantity is
#: well-conditioned.
CAPACITIES = [60.0, 70.0, 80.0, 90.0, 100.0, 110.0, 120.0, 130.0, 140.0, 160.0]

#: Price grid for the welfare ratio curves.
PRICES = list(np.geomspace(1e-3, 0.2, 10))

#: Price grid for the continuum closed-form overlay.
CONTINUUM_PRICES = list(np.geomspace(1e-5, 0.2, 10))

FIGURES = {"figure2": "poisson", "figure3": "exponential", "figure4": "algebraic"}


def main() -> int:
    cfg = DEFAULT_CONFIG
    payload: dict = {
        "_meta": {
            "generator": "tests/golden/generate.py",
            "kbar": cfg.kbar,
            "kappa": cfg.kappa,
            "z": cfg.z,
            "utility": "adaptive",
            "rtol": 1e-7,
        }
    }
    for figure, load_name in FIGURES.items():
        model = VariableLoadModel(cfg.load(load_name), cfg.utility("adaptive"))
        welfare = WelfareModel(model)
        curve = welfare.ratio_curve(PRICES)
        payload[figure] = {
            "load": load_name,
            "capacity": CAPACITIES,
            "delta": [model.performance_gap(c) for c in CAPACITIES],
            "Delta": [model.bandwidth_gap(c) for c in CAPACITIES],
            "price": PRICES,
            "gamma": [None if not np.isfinite(g) else float(g) for g in curve["gamma"]],
        }
    cont = RigidExponentialContinuum(1.0)
    payload["continuum_rigid_exp"] = {
        "price": CONTINUUM_PRICES,
        "gamma": [cont.equalizing_ratio(p) for p in CONTINUUM_PRICES],
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
