"""Regenerate ``figures.json`` from the scalar reference path.

Run from the repository root:

    PYTHONPATH=src python tests/golden/generate.py

The golden values pin the paper-parameter figures (k_bar = 100,
kappa = 0.62086, z = 3) at ~10 canonical grid points each:

- ``delta``  — performance gap δ(C) = R(C) − B(C), Figures 2–4;
- ``Delta``  — bandwidth gap Δ(C) with B(C + Δ) = R(C), Figures 2–4;
- ``gamma``  — discrete welfare price-ratio curve γ(p) per figure;
- ``algebraic_shared_tables`` — B(C), δ(C) and Δ(C) for the algebraic
  load at capacities straddling the shared zeta-table series levels,
  pinning the memoised polynomial-tail evaluation path end to end;
- ``continuum_gamma`` — closed-form rigid/exponential γ(p) overlay;
- ``sampling_T4`` — Section 5.1 worst-of-S curves behind checkpoints
  T4.1–T4.5 (exp/adaptive, S from the config) plus the closed-form
  ``(S(z-1))^{1/(z-2)}`` ratios;
- ``retrying_T5`` — Section 5.2 retry curves behind checkpoints
  T5.1–T5.6 (alg/adaptive, alpha from the config; capacities start at
  1.3 k̄ because the retry fixed point needs C ≳ 1.2 k̄) plus the
  closed-form ``((z-1)/alpha)^{1/(z-2)}`` ratios;
- ``meanfield`` — the fluid-diffusion engine's B̂(C)/R̂(C)/gap over the
  canonical capacities (Poisson census, Gauss–Hermite closure): the
  quadrature is deterministic, so the pins hold the whole fluid solve +
  diffusion functional chain bit-stable.

Values come from the *scalar* code path on purpose: the golden test
then holds both the scalar and the vectorised batch paths to the same
numbers, so a regression in either (or a drift between them) fails CI.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.continuum import (
    RigidExponentialContinuum,
    retrying_rigid_ratio,
    sampling_rigid_ratio,
)
from repro.experiments.params import DEFAULT_CONFIG
from repro.models import (
    RetryingModel,
    SamplingModel,
    VariableLoadModel,
    WelfareModel,
)

OUT = pathlib.Path(__file__).parent / "figures.json"

#: Canonical capacity grid (absolute units, k_bar = 100): spans the
#: under- to over-provisioned range where every figure quantity is
#: well-conditioned.
CAPACITIES = [60.0, 70.0, 80.0, 90.0, 100.0, 110.0, 120.0, 130.0, 140.0, 160.0]

#: Price grid for the welfare ratio curves.
PRICES = list(np.geomspace(1e-3, 0.2, 10))

#: Price grid for the continuum closed-form overlay.
CONTINUUM_PRICES = list(np.geomspace(1e-5, 0.2, 10))

FIGURES = {"figure2": "poisson", "figure3": "exponential", "figure4": "algebraic"}

#: Capacity grid for the retry curves: the fixed point is only defined
#: for C comfortably above the intrinsic mean (C >= ~1.2 k_bar).
RETRY_CAPACITIES = [130.0, 150.0, 200.0, 250.0, 300.0, 400.0]

#: Capacity grid for the shared-table pins (heavy-tailed algebraic
#: load through the memoised zeta-table / polynomial-tail path):
#: chosen to straddle the planner's series levels — TAIL at n = 512
#: for small capacities, n = 1024 past ~200 — including capacities
#: outside the figure grids above.
SHARED_TABLE_CAPACITIES = [20.0, 60.0, 100.0, 160.0, 220.0]


def main() -> int:
    cfg = DEFAULT_CONFIG
    payload: dict = {
        "_meta": {
            "generator": "tests/golden/generate.py",
            "kbar": cfg.kbar,
            "kappa": cfg.kappa,
            "z": cfg.z,
            "utility": "adaptive",
            "rtol": 1e-7,
        }
    }
    for figure, load_name in FIGURES.items():
        model = VariableLoadModel(cfg.load(load_name), cfg.utility("adaptive"))
        welfare = WelfareModel(model)
        curve = welfare.ratio_curve(PRICES)
        payload[figure] = {
            "load": load_name,
            "capacity": CAPACITIES,
            "delta": [model.performance_gap(c) for c in CAPACITIES],
            "Delta": [model.bandwidth_gap(c) for c in CAPACITIES],
            "price": PRICES,
            "gamma": [None if not np.isfinite(g) else float(g) for g in curve["gamma"]],
        }
    shared = VariableLoadModel(cfg.load("algebraic"), cfg.utility("adaptive"))
    payload["algebraic_shared_tables"] = {
        "load": "algebraic",
        "capacity": SHARED_TABLE_CAPACITIES,
        "best_effort": [shared.best_effort(c) for c in SHARED_TABLE_CAPACITIES],
        "delta": [shared.performance_gap(c) for c in SHARED_TABLE_CAPACITIES],
        "Delta": [shared.bandwidth_gap(c) for c in SHARED_TABLE_CAPACITIES],
    }

    cont = RigidExponentialContinuum(1.0)
    payload["continuum_rigid_exp"] = {
        "price": CONTINUUM_PRICES,
        "gamma": [cont.equalizing_ratio(p) for p in CONTINUUM_PRICES],
    }

    sampled = SamplingModel(
        cfg.load("exponential"), cfg.utility("adaptive"), cfg.samples
    )
    payload["sampling_T4"] = {
        "load": "exponential",
        "samples": cfg.samples,
        "capacity": CAPACITIES,
        "delta": [sampled.performance_gap(c) for c in CAPACITIES],
        "Delta": [sampled.bandwidth_gap(c) for c in CAPACITIES],
        "rigid_ratio_z3_s3": sampling_rigid_ratio(cfg.z, 3),
        "rigid_ratio_z2p1_s3": sampling_rigid_ratio(2.1, 3),
    }

    retry = RetryingModel(
        cfg.load("algebraic"), cfg.utility("adaptive"), alpha=cfg.alpha
    )
    payload["retrying_T5"] = {
        "load": "algebraic",
        "alpha": cfg.alpha,
        "capacity": RETRY_CAPACITIES,
        "best_effort": [retry.best_effort(c) for c in RETRY_CAPACITIES],
        "reservation": [retry.reservation(c) for c in RETRY_CAPACITIES],
        "delta": [retry.performance_gap(c) for c in RETRY_CAPACITIES],
        "rigid_ratio": retrying_rigid_ratio(cfg.z, cfg.alpha),
        "rigid_ratio_z2p1": retrying_rigid_ratio(2.1, cfg.alpha),
    }

    from repro.meanfield import MeanFieldSimulator
    from repro.simulation import BirthDeathProcess, Link

    meanfield = MeanFieldSimulator(
        BirthDeathProcess(cfg.load("poisson")), Link(cfg.kbar)
    )
    adaptive = cfg.utility("adaptive")
    payload["meanfield"] = {
        "load": "poisson",
        "capacity": CAPACITIES,
        "best_effort": [
            float(v) for v in meanfield.best_effort_batch(adaptive, CAPACITIES)
        ],
        "reservation": [
            float(v) for v in meanfield.reservation_batch(adaptive, CAPACITIES)
        ],
        "gap": [float(v) for v in meanfield.gap_batch(adaptive, CAPACITIES)],
    }
    from repro.traces.summary import DEFAULT_REPLAY_SPECS, replay_summary

    payload["traces"] = {
        "tolerance": "rtol 1e-7",
        "replays": [replay_summary(dict(spec)) for spec in DEFAULT_REPLAY_SPECS],
    }

    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
