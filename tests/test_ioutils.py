"""Atomic writes and temp-file sweeping (`repro.ioutils`)."""

import pytest

from repro.ioutils import TMP_MARKER, atomic_write_text, sweep_tmp_files


class TestAtomicWriteText:
    def test_writes_content_and_creates_parents(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.txt"
        returned = atomic_write_text(path, "hello\n")
        assert returned == path
        assert path.read_text() == "hello\n"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_file_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "x")
        leftovers = [p for p in tmp_path.iterdir() if TMP_MARKER in p.name]
        assert leftovers == []

    def test_failed_write_leaves_target_untouched(self, tmp_path, monkeypatch):
        import os

        path = tmp_path / "out.txt"
        path.write_text("original")

        def boom(src, dst):
            raise OSError("simulated replace failure")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="simulated"):
            atomic_write_text(path, "clobber")
        assert path.read_text() == "original"
        # the temp file was cleaned up on the way out
        assert [p for p in tmp_path.iterdir() if TMP_MARKER in p.name] == []


class TestSweepTmpFiles:
    def test_removes_only_temp_files(self, tmp_path):
        keep = tmp_path / "entry.json"
        keep.write_text("{}")
        orphan = tmp_path / "sub" / f"entry.json{TMP_MARKER}abc123"
        orphan.parent.mkdir()
        orphan.write_text("partial")
        removed = sweep_tmp_files(tmp_path)
        assert removed == [orphan]
        assert keep.exists() and not orphan.exists()

    def test_missing_directory_is_a_noop(self, tmp_path):
        assert sweep_tmp_files(tmp_path / "nope") == []
