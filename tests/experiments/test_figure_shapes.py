"""Figure-shape assertions at reduced scale.

The benchmark harness checks shapes at paper scale; these tests assert
the same qualitative structure on the FAST grids so a broken model
shape fails the ordinary test run, not just the benches.
"""

import numpy as np
import pytest

from repro.experiments import FAST_CONFIG, figure2, figure3, figure4
from repro.experiments.figures import retrying_series, sampling_series


@pytest.fixture(scope="module")
def fig2():
    return figure2(FAST_CONFIG)


@pytest.fixture(scope="module")
def fig3():
    return figure3(FAST_CONFIG)


@pytest.fixture(scope="module")
def fig4():
    return figure4(FAST_CONFIG)


class TestFigure2Shapes:
    def test_reservation_dominates_everywhere(self, fig2):
        for tag in ("rigid", "adaptive"):
            assert np.all(
                fig2[f"reservation_{tag}"] >= fig2[f"best_effort_{tag}"] - 1e-12
            )

    def test_poisson_gap_vanishes_past_kbar(self, fig2):
        late = fig2["capacity"] >= 2.0 * FAST_CONFIG.kbar
        assert np.all(fig2["bandwidth_gap_rigid"][late] < 1e-6)
        assert np.all(fig2["bandwidth_gap_adaptive"][late] < 1e-6)

    def test_adaptive_gamma_is_one(self, fig2):
        gamma = fig2["gamma_adaptive"]
        assert np.nanmedian(gamma) < 1.01


class TestFigure3Shapes:
    def test_rigid_gap_monotone_increasing(self, fig3):
        gaps = fig3["bandwidth_gap_rigid"]
        assert np.all(np.diff(gaps) > -1e-6)

    def test_adaptive_gap_peaks_then_decays(self, fig3):
        gaps = fig3["bandwidth_gap_adaptive"]
        peak = int(np.argmax(gaps))
        assert gaps[-1] < gaps[peak]

    def test_utilities_rise_with_capacity(self, fig3):
        for tag in ("rigid", "adaptive"):
            assert np.all(np.diff(fig3[f"best_effort_{tag}"]) > -1e-12)


class TestFigure4Shapes:
    def test_rigid_gap_grows_linearly(self, fig4):
        caps = fig4["capacity"]
        hi = caps >= 2.0 * FAST_CONFIG.kbar
        slope = np.polyfit(caps[hi], fig4["bandwidth_gap_rigid"][hi], 1)[0]
        assert slope == pytest.approx(1.0, abs=0.35)

    def test_adaptive_slope_far_smaller(self, fig4):
        caps = fig4["capacity"]
        hi = caps >= 2.0 * FAST_CONFIG.kbar
        rigid = np.polyfit(caps[hi], fig4["bandwidth_gap_rigid"][hi], 1)[0]
        adaptive = np.polyfit(caps[hi], fig4["bandwidth_gap_adaptive"][hi], 1)[0]
        assert 0.0 < adaptive < rigid / 20.0

    def test_gamma_bounded_away_from_one(self, fig4):
        gamma = fig4["gamma_rigid"]
        ok = ~np.isnan(gamma)
        assert gamma[ok].min() > 1.7


class TestExtensionSeries:
    def test_sampling_widens_gaps_everywhere(self):
        series = sampling_series("exponential", "adaptive", FAST_CONFIG)
        assert np.all(
            series["performance_gap_sampling"]
            >= series["performance_gap_basic"] - 1e-12
        )

    def test_retrying_amplifies_algebraic_gaps(self):
        series = retrying_series("algebraic", "adaptive", FAST_CONFIG)
        late = series["capacity"] >= 3.0 * FAST_CONFIG.kbar
        ratio = series["performance_gap_retrying"][late] / np.maximum(
            series["performance_gap_basic"][late], 1e-12
        )
        assert np.all(ratio > 3.0)

    def test_retrying_sweep_respects_validity_floor(self):
        series = retrying_series("algebraic", "adaptive", FAST_CONFIG)
        assert series["capacity"].min() >= 2.0 * FAST_CONFIG.kbar


class TestSamplingWelfareInvariance:
    def test_small_p_gamma_unchanged_by_sampling_exponential(self):
        """Section 5.1: sampling does not alter gamma(p->0) for the
        exponential load — provisioning still wins asymptotically."""
        from repro.loads import GeometricLoad
        from repro.models import ExtensionWelfare, SamplingModel
        from repro.utility import AdaptiveUtility

        load = GeometricLoad.from_mean(FAST_CONFIG.kbar)
        u = AdaptiveUtility()
        welfare = ExtensionWelfare(
            SamplingModel(load, u, 10),
            load.mean,
            c_min=0.3 * FAST_CONFIG.kbar,
            c_max=40.0 * FAST_CONFIG.kbar,
            points=140,
        )
        lo, _ = welfare.price_range()
        small_p = max(2.0 * lo, 1e-4)
        assert welfare.equalizing_ratio(small_p) < 1.1


class TestContinuumSeries:
    def test_c1_registered_and_shaped(self):
        from repro.experiments import continuum_series, get

        assert get("C1").run is continuum_series
        series = continuum_series(FAST_CONFIG, points=12)
        caps = series["capacity_over_kbar"]
        for tag in ("rigid_exp", "adaptive_exp", "rigid_alg", "adaptive_alg"):
            b = series[f"best_effort_{tag}"]
            r = series[f"reservation_{tag}"]
            assert np.all(r >= b - 1e-12), tag
            assert np.all(np.diff(b) > 0.0), tag
        # the algebraic gaps are exactly linear in C
        for tag in ("rigid_alg", "adaptive_alg"):
            ratio = series[f"bandwidth_gap_{tag}"] / caps
            assert np.ptp(ratio) < 1e-9, tag

    def test_c1_discrete_overlay_agreement(self):
        # the continuum rigid-exp Delta at C = 2 k_bar is close to the
        # discrete model's (scaled by k_bar) — the paper's "completely
        # equivalent in the asymptotic case" statement, at finite C
        from repro.continuum import RigidExponentialContinuum
        from repro.loads import GeometricLoad
        from repro.models import VariableLoadModel
        from repro.utility import RigidUtility

        kbar = 100.0
        discrete = VariableLoadModel(
            GeometricLoad.from_mean(kbar), RigidUtility(1.0)
        ).bandwidth_gap(2.0 * kbar)
        continuum = kbar * RigidExponentialContinuum(1.0).bandwidth_gap(2.0)
        assert discrete == pytest.approx(continuum, rel=0.15)
