"""Tests for the experiment harness: params, registry, report, CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.experiments import (
    DEFAULT_CONFIG,
    EXPERIMENTS,
    FAST_CONFIG,
    PaperConfig,
    figure1,
    get,
)
from repro.experiments.checkpoints import Checkpoint
from repro.experiments.report import (
    markdown_checkpoint_table,
    render,
    render_checkpoints,
    render_series,
    to_json,
)


class TestPaperConfig:
    def test_default_constants_match_paper(self):
        assert DEFAULT_CONFIG.kbar == 100.0
        assert DEFAULT_CONFIG.kappa == pytest.approx(0.62086)
        assert DEFAULT_CONFIG.z == 3.0
        assert DEFAULT_CONFIG.alpha == 0.1

    def test_loads_have_paper_mean(self):
        small = PaperConfig(kbar=20.0)
        for name in ("poisson", "exponential", "algebraic"):
            assert small.load(name).mean == pytest.approx(20.0, rel=1e-6)

    def test_utilities(self):
        assert DEFAULT_CONFIG.utility("rigid").b_hat == 1.0
        assert DEFAULT_CONFIG.utility("adaptive").kappa == pytest.approx(0.62086)

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.load("weibull")
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.utility("elastic")


class TestRegistry:
    def test_all_figures_and_tables_registered(self):
        for exp_id in ("F1", "F2", "F3", "F4", "T1", "T2", "T3", "T4", "T5"):
            assert exp_id in EXPERIMENTS

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known ids"):
            get("F9")

    def test_figure1_series(self):
        out = figure1(FAST_CONFIG)
        assert out["utility"][0] == 0.0
        assert out["utility"][-1] == pytest.approx(1.0, abs=1e-4)
        assert np.all(np.diff(out["utility"]) >= 0.0)


class TestReport:
    def test_render_series_scalar_header(self):
        text = render_series({"alpha": np.array([0.1]), "x": np.array([1.0, 2.0])})
        assert "alpha=0.1" in text
        assert "x" in text

    def test_render_series_mixed_lengths(self):
        text = render_series(
            {"x": np.array([1.0, 2.0, 3.0]), "p": np.array([0.1, 0.2])}
        )
        assert "x" in text and "p" in text

    def test_render_checkpoints_summary_line(self):
        rows = [
            Checkpoint("X1", "thing", "~1", 1.0, True),
            Checkpoint("X2", "other", "~2", 3.0, False),
        ]
        text = render_checkpoints(rows)
        assert "1/2 checkpoints" in text
        assert "DIFFERS" in text

    def test_to_json_round_trips(self):
        rows = [Checkpoint("X1", "thing", "~1", 1.0, True)]
        payload = json.loads(to_json(rows))
        assert payload["_meta"] == {}
        assert payload["result"][0]["id"] == "X1"
        series = json.loads(to_json({"x": np.array([1.0, 2.0])}))
        assert series["result"]["x"] == [1.0, 2.0]

    def test_to_json_envelope_is_uniform_across_shapes(self):
        # dicts, checkpoint lists and scalars all share one envelope
        for result in ({"x": np.array([1.0, 2.0])},
                       [Checkpoint("X1", "t", "~1", 1.0, True)],
                       3.5):
            payload = json.loads(to_json(result, meta={"config": "fast"}))
            assert set(payload) == {"_meta", "result"}
            assert payload["_meta"]["config"] == "fast"

    def test_markdown_table(self):
        rows = [Checkpoint("X1", "thing", "~1", 1.0, True)]
        table = markdown_checkpoint_table(rows)
        assert table.startswith("| id |")
        assert "| X1 |" in table

    def test_render_dispatch(self):
        assert "x" in render({"x": np.array([1.0, 2.0])})
        assert "checkpoints match" in render(
            [Checkpoint("X1", "t", "~1", 1.0, True)]
        )


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "F2" in out and "T5" in out

    def test_run_figure1(self, capsys):
        assert main(["run", "F1", "--fast"]) == 0
        assert "utility" in capsys.readouterr().out

    def test_run_json(self, capsys):
        assert main(["run", "F1", "--fast", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "bandwidth" in payload["result"]

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "F9"]) == 2
        assert "known ids" in capsys.readouterr().err


class TestCliExport:
    def test_export_writes_files(self, tmp_path, capsys):
        assert main(["export", "F1", "--out", str(tmp_path), "--fast"]) == 0
        out = capsys.readouterr().out
        assert "F1" in out
        assert any(p.suffix == ".csv" for p in tmp_path.iterdir())

    def test_export_rejects_checkpoint_ids(self, tmp_path, capsys):
        assert main(["export", "T1", "--out", str(tmp_path)]) == 2
        assert "checkpoint table" in capsys.readouterr().err

    def test_export_unknown_id(self, tmp_path, capsys):
        assert main(["export", "F9", "--out", str(tmp_path)]) == 2
        assert "known ids" in capsys.readouterr().err


class TestCliAnalyzeTrace:
    def _write_poisson_trace(self, tmp_path):
        import numpy as np

        from repro.traces import FlowTrace, write_trace

        rng = np.random.default_rng(0)
        n = 2000
        arrivals = np.sort(rng.random(n) * 400.0)
        durations = rng.exponential(1.0, n)
        trace = FlowTrace(arrivals, arrivals + durations, horizon=410.0)
        return write_trace(trace, tmp_path / "trace.csv")

    def test_analyze_trace_prints_verdict(self, tmp_path, capsys):
        path = self._write_poisson_trace(tmp_path)
        assert main(["analyze-trace", str(path), "--samples", "1200"]) == 0
        out = capsys.readouterr().out
        assert "identified census family" in out
        assert "verdict" in out

    def test_analyze_trace_rigid_utility(self, tmp_path, capsys):
        path = self._write_poisson_trace(tmp_path)
        assert main(
            ["analyze-trace", str(path), "--utility", "rigid", "--samples", "1200"]
        ) == 0
        assert "verdict" in capsys.readouterr().out
