"""The paper's quoted numbers as a test suite (k_bar = 100 scale).

These are the headline reproduction tests: each asserts that one value
quoted in the paper's prose comes out of our models inside its matching
band.  They run at full paper scale and take a few seconds each.
"""

import pytest

from repro.experiments.checkpoints import (
    continuum_checkpoints,
    retrying_checkpoints,
    sampling_checkpoints,
    section3_checkpoints,
    welfare_checkpoints,
)


@pytest.mark.parametrize(
    "suite",
    [
        section3_checkpoints,
        continuum_checkpoints,
        welfare_checkpoints,
        sampling_checkpoints,
        retrying_checkpoints,
    ],
    ids=["section3", "continuum", "welfare", "sampling", "retrying"],
)
def test_every_checkpoint_matches_the_paper(suite):
    rows = suite()
    failures = [row.row() for row in rows if not row.matches]
    assert not failures, "paper checkpoints diverged:\n" + "\n".join(failures)
