"""Tests for CSV/gnuplot export."""

import numpy as np
import pytest

from repro.experiments.export import export_figure, write_csv, write_gnuplot


@pytest.fixture
def series():
    return {
        "capacity": np.array([10.0, 20.0, 30.0]),
        "best_effort_rigid": np.array([0.1, 0.4, 0.7]),
        "bandwidth_gap_rigid": np.array([5.0, 6.0, 7.0]),
        "gamma_price_rigid": np.array([0.01, 0.1]),
        "gamma_rigid": np.array([1.5, 1.8]),
        "alpha": np.array([0.1]),
    }


class TestWriteCsv:
    def test_blocks_split_by_length(self, series, tmp_path):
        paths = write_csv(series, tmp_path / "fig")
        assert len(paths) == 2
        assert all(p.exists() for p in paths)

    def test_scalar_becomes_comment(self, series, tmp_path):
        paths = write_csv(series, tmp_path / "fig")
        content = paths[0].read_text()
        assert content.startswith("# alpha=0.1")

    def test_round_trips_through_numpy(self, series, tmp_path):
        paths = write_csv(series, tmp_path / "fig")
        big = next(p for p in paths if "capacity" in p.read_text())
        # skip_header jumps the parameter-comment line; genfromtxt would
        # otherwise eat it as the (commented) header row
        data = np.genfromtxt(big, delimiter=",", names=True, skip_header=1)
        np.testing.assert_allclose(data["capacity"], series["capacity"])
        np.testing.assert_allclose(
            data["best_effort_rigid"], series["best_effort_rigid"]
        )

    def test_empty_series_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv({"alpha": np.array([0.1])}, tmp_path / "x")


class TestWriteGnuplot:
    def test_script_references_csv_and_columns(self, series, tmp_path):
        gp = write_gnuplot(
            series,
            tmp_path / "panel",
            x_column="capacity",
            y_columns=["best_effort_rigid"],
            title="Panel A",
        )
        text = gp.read_text()
        assert "panel.csv" in text
        assert "Panel A" in text
        assert "using 1:2" in text
        assert (tmp_path / "panel.csv").exists()

    def test_mismatched_lengths_rejected(self, series, tmp_path):
        with pytest.raises(ValueError):
            write_gnuplot(
                series,
                tmp_path / "bad",
                x_column="capacity",
                y_columns=["gamma_rigid"],
            )

    def test_logscale_flag(self, series, tmp_path):
        gp = write_gnuplot(
            series,
            tmp_path / "log",
            x_column="gamma_price_rigid",
            y_columns=["gamma_rigid"],
            logscale_x=True,
        )
        assert "set logscale x" in gp.read_text()


class TestExportFigure:
    def test_full_figure_export(self, series, tmp_path):
        written = export_figure(series, tmp_path, "fig_test")
        names = {p.name for p in written}
        assert any(n.endswith(".csv") for n in names)
        assert any(n.endswith(".gp") for n in names)
        # the gamma panel gets its own script
        assert "fig_test_gamma_rigid.gp" in names

    def test_real_figure_series(self, tmp_path):
        from repro.experiments import FAST_CONFIG, figure1

        written = export_figure(figure1(FAST_CONFIG), tmp_path, "figure1")
        assert any(p.suffix == ".csv" for p in written)
