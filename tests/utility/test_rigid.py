"""Tests for the rigid (Eq. 1) utility."""

import numpy as np
import pytest

from repro.utility import RigidUtility


class TestRigidUtility:
    def test_step_at_threshold(self):
        u = RigidUtility(1.0)
        assert u.value(0.999999) == 0.0
        assert u.value(1.0) == 1.0
        assert u.value(5.0) == 1.0

    def test_custom_threshold(self):
        u = RigidUtility(2.5)
        assert u.value(2.49) == 0.0
        assert u.value(2.5) == 1.0
        assert u.b_hat == 2.5

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            RigidUtility(0.0)
        with pytest.raises(ValueError):
            RigidUtility(-1.0)

    def test_derivative_zero(self):
        u = RigidUtility(1.0)
        assert u.derivative(0.5) == 0.0
        assert u.derivative(2.0) == 0.0

    def test_k_max_floor(self):
        u = RigidUtility(1.0)
        assert u.k_max(10.0) == 10
        assert u.k_max(10.7) == 10
        assert u.k_max(0.5) == 0

    def test_k_max_scales_with_threshold(self):
        u = RigidUtility(2.0)
        assert u.k_max(10.0) == 5
        assert u.k_max(9.9) == 4

    def test_fixed_load_total_cliff(self):
        # the paper's point: one flow too many destroys all utility
        u = RigidUtility(1.0)
        assert u.fixed_load_total(10, 10.0) == 10.0
        assert u.fixed_load_total(11, 10.0) == 0.0

    def test_breakpoints_at_threshold(self):
        assert RigidUtility(2.5).breakpoints() == (2.5,)

    def test_vectorised_step(self):
        u = RigidUtility(1.0)
        out = u(np.array([0.0, 0.5, 1.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 1.0, 1.0])
