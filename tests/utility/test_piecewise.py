"""Tests for the continuum ramp utility."""

import pytest

from repro.utility import PiecewiseLinearUtility, RigidUtility


class TestPiecewiseLinearUtility:
    def test_three_regions(self):
        u = PiecewiseLinearUtility(0.4)
        assert u.value(0.2) == 0.0
        assert u.value(0.4) == 0.0
        assert u.value(0.7) == pytest.approx((0.7 - 0.4) / 0.6)
        assert u.value(1.0) == 1.0
        assert u.value(3.0) == 1.0

    def test_a_zero_is_clipped_identity(self):
        u = PiecewiseLinearUtility(0.0)
        assert u.value(0.5) == 0.5
        assert u.value(2.0) == 1.0

    def test_invalid_a_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinearUtility(1.0)
        with pytest.raises(ValueError):
            PiecewiseLinearUtility(-0.1)

    def test_derivative_on_ramp(self):
        u = PiecewiseLinearUtility(0.5)
        assert u.derivative(0.75) == pytest.approx(2.0)
        assert u.derivative(0.25) == 0.0
        assert u.derivative(1.5) == 0.0

    def test_k_max_is_capacity(self):
        u = PiecewiseLinearUtility(0.5)
        assert u.k_max(37.0) == 37.0

    def test_rigid_limit_object(self):
        u = PiecewiseLinearUtility(0.9)
        assert u.as_rigid_limit() == RigidUtility(1.0)

    def test_approaches_rigid_as_a_to_one(self):
        near = PiecewiseLinearUtility(0.999)
        rigid = RigidUtility(1.0)
        for b in (0.5, 0.9, 0.998, 1.0, 2.0):
            assert abs(near.value(b) - rigid.value(b)) < 0.51
        # at a ramp point just below 1 the two differ by < ramp width
        assert near.value(0.9995) == pytest.approx(0.5, abs=0.01)

    def test_breakpoints(self):
        assert PiecewiseLinearUtility(0.5).breakpoints() == (0.5, 1.0)
        assert PiecewiseLinearUtility(0.0).breakpoints() == (1.0,)

    def test_fixed_load_optimum_at_one_unit_per_flow(self):
        # V(k) = k pi(C/k): for a > 0, admitting past C reduces V
        u = PiecewiseLinearUtility(0.5)
        capacity = 60.0
        assert u.fixed_load_total(60, capacity) == pytest.approx(60.0)
        assert u.fixed_load_total(61, capacity) < 60.0
        assert u.fixed_load_total(59, capacity) == pytest.approx(59.0)
