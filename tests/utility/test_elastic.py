"""Tests for the elastic (everywhere-concave) utilities."""

import math

import pytest

from repro.utility import ExponentialElasticUtility, HyperbolicElasticUtility


class TestExponentialElastic:
    def test_form(self):
        u = ExponentialElasticUtility(rate=2.0)
        assert u.value(1.0) == pytest.approx(1.0 - math.exp(-2.0))

    def test_derivative_exact(self):
        u = ExponentialElasticUtility(rate=2.0)
        for b in (0.0, 0.5, 3.0):
            assert u.derivative(b) == pytest.approx(2.0 * math.exp(-2.0 * b))

    def test_strictly_concave_everywhere(self):
        u = ExponentialElasticUtility()
        h = 1e-4
        for b in (0.01, 0.5, 2.0, 8.0):
            second = u.value(b + h) - 2 * u.value(b) + u.value(b - h) if b > h else -1
            assert second < 0.0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ExponentialElasticUtility(rate=0.0)


class TestHyperbolicElastic:
    def test_half_saturation(self):
        u = HyperbolicElasticUtility(half=2.0)
        assert u.value(2.0) == pytest.approx(0.5)

    def test_algebraic_tail(self):
        # 1 - pi ~ half / b for large b
        u = HyperbolicElasticUtility(half=1.0)
        b = 1000.0
        assert 1.0 - u.value(b) == pytest.approx(1.0 / b, rel=1e-2)

    def test_derivative_exact(self):
        u = HyperbolicElasticUtility(half=1.5)
        for b in (0.0, 1.0, 4.0):
            assert u.derivative(b) == pytest.approx(1.5 / (1.5 + b) ** 2)

    def test_invalid_half(self):
        with pytest.raises(ValueError):
            HyperbolicElasticUtility(half=-1.0)


class TestElasticNeverWantsAdmissionControl:
    """Section 2: concave utilities make V(k) increase forever."""

    @pytest.mark.parametrize(
        "utility",
        [ExponentialElasticUtility(), HyperbolicElasticUtility()],
        ids=["exp", "hyperbolic"],
    )
    def test_v_monotone_in_k(self, utility):
        capacity = 20.0
        values = [utility.fixed_load_total(k, capacity) for k in range(1, 400)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
