"""Property-based tests of the utility-function contract.

Every concrete family must satisfy the paper's normalisation: zero at
zero bandwidth, nondecreasing, approaching one — and the vectorised
path must agree with the scalar path exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import all_utilities

UTILITIES = all_utilities()
IDS = [repr(u) for u in UTILITIES]


@pytest.mark.parametrize("utility", UTILITIES, ids=IDS)
class TestUtilityContract:
    def test_zero_at_zero(self, utility):
        assert utility.value(0.0) == 0.0

    def test_approaches_one(self, utility):
        assert utility.value(1e6) == pytest.approx(1.0, abs=1e-4)

    def test_bounded_in_unit_interval(self, utility):
        bs = np.linspace(0.0, 50.0, 400)
        values = utility(bs)
        assert np.all(values >= 0.0) and np.all(values <= 1.0)

    def test_nondecreasing(self, utility):
        bs = np.linspace(0.0, 20.0, 1000)
        values = utility(bs)
        assert np.all(np.diff(values) >= -1e-12)

    def test_vectorised_matches_scalar(self, utility):
        bs = np.array([0.0, 0.1, 0.49999, 0.5, 0.99, 1.0, 1.01, 3.7, 100.0])
        vec = utility(bs)
        scalar = np.array([utility.value(float(b)) for b in bs])
        # np.exp and math.exp may differ in the last ulp
        np.testing.assert_allclose(vec, scalar, rtol=0, atol=5e-16)

    def test_negative_bandwidth_rejected(self, utility):
        with pytest.raises(ValueError):
            utility.value(-0.5)

    def test_derivative_nonnegative(self, utility):
        for b in (0.05, 0.3, 0.7, 1.3, 4.0):
            assert utility.derivative(b) >= -1e-9

    def test_equality_and_hash_by_parameters(self, utility):
        clone = eval(repr(utility), _EVAL_NAMESPACE)  # round-trip via repr
        assert clone == utility
        assert hash(clone) == hash(utility)

    def test_fixed_load_total_zero_flows(self, utility):
        assert utility.fixed_load_total(0, 10.0) == 0.0

    def test_fixed_load_total_rejects_negative(self, utility):
        with pytest.raises(ValueError):
            utility.fixed_load_total(-1, 10.0)
        with pytest.raises(ValueError):
            utility.fixed_load_total(1, -1.0)


from repro.utility import (  # noqa: E402  (namespace for repr round-trip)
    AdaptiveUtility,
    AlgebraicTailUtility,
    ExponentialElasticUtility,
    HyperbolicElasticUtility,
    PiecewiseLinearUtility,
    PowerLowUtility,
    RigidUtility,
)

_EVAL_NAMESPACE = {
    "AdaptiveUtility": AdaptiveUtility,
    "AlgebraicTailUtility": AlgebraicTailUtility,
    "ExponentialElasticUtility": ExponentialElasticUtility,
    "HyperbolicElasticUtility": HyperbolicElasticUtility,
    "PiecewiseLinearUtility": PiecewiseLinearUtility,
    "PowerLowUtility": PowerLowUtility,
    "RigidUtility": RigidUtility,
}


class TestHypothesisProperties:
    @given(
        b1=st.floats(min_value=0.0, max_value=100.0),
        b2=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_adaptive_monotone_everywhere(self, b1, b2):
        u = AdaptiveUtility()
        lo, hi = min(b1, b2), max(b1, b2)
        assert u.value(lo) <= u.value(hi) + 1e-15

    @given(
        a=st.floats(min_value=0.0, max_value=0.99),
        b=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_ramp_between_rigid_and_identity(self, a, b):
        # the ramp is sandwiched between the rigid step (above) at b>=1
        # and dominates it below
        ramp = PiecewiseLinearUtility(a)
        rigid = RigidUtility(1.0)
        assert ramp.value(b) >= rigid.value(b) - 1e-15

    @given(scale=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=60, deadline=None)
    def test_more_adaptive_ramp_never_worse(self, scale):
        # decreasing a pointwise increases utility
        lo = PiecewiseLinearUtility(scale * 0.5)
        hi = PiecewiseLinearUtility(scale)
        for b in (0.1, 0.3, 0.6, 0.9, 1.5):
            assert lo.value(b) >= hi.value(b) - 1e-15
