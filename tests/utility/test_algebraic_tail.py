"""Tests for the power-law satiation utilities (Section 3.3/footnote 8)."""

import pytest

from repro.utility import AlgebraicTailUtility, PowerLowUtility


class TestAlgebraicTailUtility:
    def test_dead_zone_and_tail(self):
        u = AlgebraicTailUtility(2.0)
        assert u.value(0.5) == 0.0
        assert u.value(1.0) == 0.0
        assert u.value(2.0) == pytest.approx(1.0 - 2.0**-2)
        assert u.value(100.0) == pytest.approx(1.0 - 1e-4)

    def test_k_max_below_capacity(self):
        # flows keep gaining past one unit, so fewer are admitted
        u = AlgebraicTailUtility(1.0)
        assert u.k_max(100.0) == pytest.approx(50.0)  # (tau+1)^{-1/tau} = 1/2

    def test_k_max_is_the_fixed_load_argmax(self):
        u = AlgebraicTailUtility(2.0)
        capacity = 300.0
        k_star = u.k_max(capacity)
        center = int(round(k_star))
        best = max(
            range(center - 5, center + 6),
            key=lambda k: u.fixed_load_total(k, capacity),
        )
        assert abs(best - k_star) <= 1.0

    def test_derivative(self):
        u = AlgebraicTailUtility(2.0)
        assert u.derivative(0.5) == 0.0
        assert u.derivative(2.0) == pytest.approx(2.0 * 2.0**-3)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            AlgebraicTailUtility(0.0)


class TestPowerLowUtility:
    def test_convex_rise_and_saturation(self):
        u = PowerLowUtility(2.0)
        assert u.value(0.5) == 0.25
        assert u.value(1.0) == 1.0
        assert u.value(2.0) == 1.0

    def test_r_one_is_linear_clip(self):
        u = PowerLowUtility(1.0)
        assert u.value(0.3) == pytest.approx(0.3)

    def test_k_max_is_capacity(self):
        assert PowerLowUtility(3.0).k_max(42.0) == 42.0

    def test_fixed_load_confirms_k_max(self):
        u = PowerLowUtility(3.0)
        capacity = 50.0
        assert u.fixed_load_total(50, capacity) == pytest.approx(50.0)
        assert u.fixed_load_total(51, capacity) < 50.0

    def test_derivative(self):
        u = PowerLowUtility(2.0)
        assert u.derivative(0.5) == pytest.approx(1.0)
        assert u.derivative(2.0) == 0.0

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            PowerLowUtility(0.5)
