"""Direct tests of the UtilityFunction base-class machinery."""


import numpy as np
import pytest

from repro.utility import AdaptiveUtility, RigidUtility
from repro.utility.base import UtilityFunction


class _Quadratic(UtilityFunction):
    """Minimal subclass exercising every base-class default."""

    name = "quadratic-test"

    def value(self, b: float) -> float:
        if b < 0.0:
            raise ValueError("negative bandwidth")
        return min(1.0, b * b)

    def __repr__(self) -> str:
        return "_Quadratic()"


class TestBaseDefaults:
    def test_default_vectorisation_loops_value(self):
        u = _Quadratic()
        out = u(np.array([0.0, 0.5, 1.0, 2.0]))
        np.testing.assert_allclose(out, [0.0, 0.25, 1.0, 1.0])

    def test_default_derivative_central_difference(self):
        u = _Quadratic()
        assert u.derivative(0.4) == pytest.approx(0.8, rel=1e-5)

    def test_default_derivative_one_sided_at_origin(self):
        u = _Quadratic()
        # forward difference at 0: (h^2 - 0)/h = h ~ 0
        assert u.derivative(0.0) == pytest.approx(0.0, abs=1e-5)

    def test_default_derivative_rejects_negative(self):
        with pytest.raises(ValueError):
            _Quadratic().derivative(-0.1)

    def test_default_breakpoints(self):
        assert _Quadratic().breakpoints() == (1.0,)

    def test_fixed_load_total_formula(self):
        u = _Quadratic()
        assert u.fixed_load_total(4, 2.0) == pytest.approx(4 * 0.25)

    def test_equality_requires_same_type(self):
        # two different classes never compare equal, even with
        # parameter-free reprs
        assert _Quadratic() == _Quadratic()
        assert _Quadratic() != RigidUtility(1.0)
        assert AdaptiveUtility() != RigidUtility(1.0)

    def test_hash_consistent_with_equality(self):
        assert hash(_Quadratic()) == hash(_Quadratic())
        cache = {AdaptiveUtility(): "a", RigidUtility(1.0): "r"}
        assert cache[AdaptiveUtility()] == "a"

    def test_scalar_call_passthrough(self):
        u = _Quadratic()
        assert u(0.5) == 0.25
        assert isinstance(u(0.5), float)
