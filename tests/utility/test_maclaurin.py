"""Certified Maclaurin machinery behind the shared tail series.

The models replace deep series tails with the polynomial identity
``sum_{k>=n} P(k) k pi(C/k) = sum_j a_j C**j S_j(n)``, which is only
sound if (a) the retained coefficients ``a_j`` are the *exact* Maclaurin
coefficients and (b) the geometric-envelope remainder certificate really
bounds the truncation error — the planner's TAIL ceilings trust it
blindly.  These tests pin both, plus the ``maclaurin() is None``
contract for non-smooth utilities that must keep their dense paths.
"""

import math

import numpy as np
import pytest

from repro.numerics.series import TAIL_DEGREE
from repro.utility import AdaptiveUtility, RigidUtility
from repro.utility.base import MaclaurinExpansion


class TestMaclaurinExpansion:
    def test_horner_evaluation(self):
        exp = MaclaurinExpansion([1.0, -2.0, 3.0], radius=1.0, bound=4.0)
        b = np.array([0.0, 0.25, 0.5])
        np.testing.assert_allclose(exp(b), 1.0 - 2.0 * b + 3.0 * b * b)
        assert exp.degree == 2

    def test_remainder_bound_formula(self):
        exp = MaclaurinExpansion([0.0, 0.0, 1.0], radius=2.0, bound=5.0)
        t = 0.5 / 2.0
        assert exp.remainder_bound(0.5) == pytest.approx(5.0 * t**3 / (1.0 - t))

    def test_remainder_bound_inf_near_radius(self):
        exp = MaclaurinExpansion([0.0, 1.0], radius=1.0, bound=2.0)
        # past t = 0.96875 the geometric bound is declared useless
        assert np.isinf(exp.remainder_bound(0.97))
        assert np.isinf(exp.remainder_bound(1.5))
        assert np.isfinite(exp.remainder_bound(0.9))

    def test_invalid_envelope_rejected(self):
        with pytest.raises(ValueError):
            MaclaurinExpansion([1.0], radius=0.0, bound=1.0)
        with pytest.raises(ValueError):
            MaclaurinExpansion([1.0], radius=1.0, bound=-1.0)


class TestAdaptiveMaclaurin:
    def test_low_order_coefficients_exact(self):
        # pi(b) = 1 - exp(-b^2/(kappa+b)) = b^2/kappa - b^3/kappa^2 + ...
        u = AdaptiveUtility()
        a = u.maclaurin(TAIL_DEGREE).coefficients
        assert a[0] == 0.0
        assert a[1] == 0.0
        assert a[2] == pytest.approx(1.0 / u.kappa, rel=1e-14)
        assert a[3] == pytest.approx(-1.0 / u.kappa**2, rel=1e-14)
        # e^2/2 kicks in at b^4: a_4 = 1/kappa^3 - 1/(2 kappa^2)
        assert a[4] == pytest.approx(
            1.0 / u.kappa**3 - 0.5 / u.kappa**2, rel=1e-13
        )

    def test_envelope_bounds_every_coefficient(self):
        mac = AdaptiveUtility().maclaurin(TAIL_DEGREE)
        j = np.arange(mac.coefficients.size, dtype=float)
        assert np.all(
            np.abs(mac.coefficients) <= mac.bound / mac.radius**j * (1.0 + 1e-12)
        )

    def test_certificate_is_sound(self):
        """|pi(b) - poly(b)| <= remainder_bound(b) across the usable range."""
        u = AdaptiveUtility()
        mac = u.maclaurin(TAIL_DEGREE)
        b = np.linspace(0.0, 0.95 * 0.96875 * mac.radius, 200)
        err = np.abs(u(b) - mac(b))
        assert np.all(err <= mac.remainder_bound(b) + 1e-16)

    def test_polynomial_is_machine_accurate_well_inside(self):
        # where the planner actually operates (b <= ~0.45) the truncated
        # series is exact to roundoff, not merely within the certificate
        u = AdaptiveUtility()
        mac = u.maclaurin(TAIL_DEGREE)
        b = np.linspace(0.0, 0.45, 64)
        np.testing.assert_allclose(mac(b), u(b), rtol=0.0, atol=5e-15)

    def test_radius_is_a_fraction_of_kappa(self):
        u = AdaptiveUtility()
        mac = u.maclaurin(TAIL_DEGREE)
        assert 0.0 < mac.radius < u.kappa
        rho = mac.radius
        assert mac.bound == pytest.approx(
            1.0 + math.exp(rho * rho / (u.kappa - rho)), rel=1e-13
        )

    def test_expansion_is_cached_per_degree(self):
        u = AdaptiveUtility()
        assert u.maclaurin(TAIL_DEGREE) is u.maclaurin(TAIL_DEGREE)

    def test_too_small_degree_returns_none(self):
        assert AdaptiveUtility().maclaurin(1) is None


class TestNonSmoothUtilities:
    def test_rigid_has_no_expansion(self):
        # a step function has no power series at the origin: the models
        # must see None and keep their dense/integral paths
        assert RigidUtility(1.0).maclaurin(TAIL_DEGREE) is None

    def test_base_default_is_none(self):
        class _Minimal(RigidUtility):
            pass

        assert _Minimal(1.0).maclaurin(TAIL_DEGREE) is None
