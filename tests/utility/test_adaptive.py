"""Tests for the adaptive (Eq. 2) utility and its kappa calibration."""

import math

import pytest

from repro.utility import KAPPA_PAPER, AdaptiveUtility, calibrate_kappa
from repro.utility.adaptive import _stationarity_residual


class TestAdaptiveUtility:
    def test_functional_form(self):
        u = AdaptiveUtility(kappa=0.5)
        b = 1.7
        assert u.value(b) == pytest.approx(1.0 - math.exp(-b * b / (0.5 + b)))

    def test_small_b_quadratic(self):
        # pi(b) ~ b^2/kappa near the origin (paper's stated behaviour)
        u = AdaptiveUtility()
        b = 1e-4
        assert u.value(b) == pytest.approx(b * b / u.kappa, rel=1e-3)

    def test_large_b_exponential_approach(self):
        # pi(b) ~ 1 - e^-b for large b (paper's stated behaviour)
        u = AdaptiveUtility()
        b = 30.0
        assert 1.0 - u.value(b) == pytest.approx(math.exp(-b), rel=0.05)

    def test_derivative_matches_finite_difference(self):
        u = AdaptiveUtility()
        for b in (0.1, 0.62, 1.0, 3.0, 10.0):
            h = 1e-7
            fd = (u.value(b + h) - u.value(b - h)) / (2.0 * h)
            assert u.derivative(b) == pytest.approx(fd, rel=1e-5)

    def test_convex_then_concave(self):
        u = AdaptiveUtility()
        h = 1e-4
        second = lambda b: u.value(b + h) - 2 * u.value(b) + u.value(b - h)  # noqa: E731
        assert second(0.1) > 0.0  # convex near origin
        assert second(3.0) < 0.0  # concave at satiation

    def test_invalid_kappa_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveUtility(kappa=0.0)


class TestKappaCalibration:
    def test_reproduces_paper_constant(self):
        # the paper's footnote 4: kappa = 0.62086
        assert calibrate_kappa() == pytest.approx(KAPPA_PAPER, abs=5e-6)

    def test_stationarity_residual_vanishes_at_solution(self):
        kappa = calibrate_kappa()
        assert abs(_stationarity_residual(kappa)) < 1e-10

    def test_calibrated_utility_peaks_v_at_c(self):
        # with the calibrated kappa, V(k) = k pi(C/k) peaks at k = C
        u = AdaptiveUtility(calibrate_kappa())
        capacity = 200.0
        values = {k: u.fixed_load_total(k, capacity) for k in range(150, 251)}
        best = max(values, key=values.get)
        assert abs(best - capacity) <= 1

    def test_uncalibrated_kappa_shifts_peak(self):
        u = AdaptiveUtility(kappa=2.0)
        capacity = 200.0
        values = {k: u.fixed_load_total(k, capacity) for k in range(50, 400)}
        best = max(values, key=values.get)
        assert abs(best - capacity) > 5
