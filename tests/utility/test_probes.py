"""Tests for the Section 2 elastic/inelastic classification probes."""

import pytest

from repro.utility import (
    AdaptiveUtility,
    AlgebraicTailUtility,
    ExponentialElasticUtility,
    HyperbolicElasticUtility,
    PiecewiseLinearUtility,
    PowerLowUtility,
    RigidUtility,
    UtilityClass,
    classify,
    is_convex_near_origin,
    is_strictly_concave_on,
)


class TestConvexityProbes:
    def test_adaptive_convex_near_origin(self):
        assert is_convex_near_origin(AdaptiveUtility())

    def test_elastic_not_convex_near_origin(self):
        assert not is_convex_near_origin(ExponentialElasticUtility())

    def test_elastic_concave_everywhere(self):
        assert is_strictly_concave_on(ExponentialElasticUtility(), 0.0, 8.0)
        assert is_strictly_concave_on(HyperbolicElasticUtility(), 0.0, 8.0)

    def test_adaptive_not_concave_everywhere(self):
        assert not is_strictly_concave_on(AdaptiveUtility(), 0.0, 8.0)

    def test_power_low_convex(self):
        assert is_convex_near_origin(PowerLowUtility(2.0))

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            is_strictly_concave_on(AdaptiveUtility(), 3.0, 1.0)


class TestClassify:
    @pytest.mark.parametrize(
        "utility",
        [
            RigidUtility(1.0),
            AdaptiveUtility(),
            PiecewiseLinearUtility(0.5),
            AlgebraicTailUtility(2.0),
            PowerLowUtility(2.0),
        ],
        ids=["rigid", "adaptive", "ramp", "alg-tail", "power-low"],
    )
    def test_inelastic_families(self, utility):
        assert classify(utility) is UtilityClass.INELASTIC

    @pytest.mark.parametrize(
        "utility",
        [ExponentialElasticUtility(), HyperbolicElasticUtility()],
        ids=["exp", "hyperbolic"],
    )
    def test_elastic_families(self, utility):
        assert classify(utility) is UtilityClass.ELASTIC
