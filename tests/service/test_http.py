"""The async HTTP surface end to end: real sockets, real clients.

A single background server (ephemeral port) is shared per module;
every test talks to it through :class:`ServiceClient` or a raw
request, including a concurrent burst that forces the cache-miss
fallback path under parallel load.
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.emulator import DOMAINS, exact_scalar, fit_bank
from repro.experiments.params import DEFAULT_CONFIG
from repro.runner.cache import ResultCache
from repro.service import (
    BackgroundServer,
    EmulatorService,
    ServiceClient,
    ServiceClientError,
)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    bank = fit_bank(quantities=("delta", "gamma"), loads=("poisson",))
    cache = ResultCache(tmp_path_factory.mktemp("svc-cache"))
    service = EmulatorService(bank=bank, cache=cache)
    with BackgroundServer(service) as running:
        yield running


@pytest.fixture()
def client(server):
    host, port = server.address
    with ServiceClient(host, port) as c:
        yield c


class TestEndpoints:
    def test_healthz(self, client):
        reply = client.health()
        assert reply["ok"] is True
        assert reply["surfaces"] == 2

    def test_surfaces_metadata(self, client):
        info = client.surfaces()
        keys = {s["quantity"] + "/" + s["load"] for s in info["surfaces"]}
        assert keys == {"delta/poisson", "gamma/poisson"}
        assert all("coefficients" not in s for s in info["surfaces"])

    def test_point_get_roundtrip(self, client):
        reply = client.request(
            "GET", "/v1/point?quantity=delta&load=poisson&utility=adaptive&x=120"
        )
        assert reply["source"] == "surface"
        exact = exact_scalar("delta", DEFAULT_CONFIG, "poisson", "adaptive", 120.0)
        assert abs(reply["value"] - exact) <= reply["certified_bound"]

    def test_point_post_roundtrip(self, client):
        reply = client.point("gamma", "poisson", "adaptive", 0.01)
        assert reply["source"] == "surface"
        assert 1.0 < reply["value"] < 2.8

    def test_batch_post_mixed_sources(self, client):
        hi = DOMAINS["delta"][1]
        reply = client.batch("delta", "poisson", "adaptive", [100.0, hi * 2.0])
        assert reply["source"] == "mixed"
        assert reply["sources"] == {"surface": 1, "exact": 1}

    def test_metrics_counts_requests(self, client):
        # metering is live only while obs is enabled (the `repro serve`
        # entry enables it; tests opt in explicitly)
        obs.reset()
        obs.enable()
        try:
            client.point("delta", "poisson", "adaptive", 100.0)
            metrics = client.metrics()
            counters = metrics["metrics"]["counters"]
            assert metrics["enabled"] is True
            assert counters.get("service.http.point.requests", 0) >= 1
            assert counters.get("service.points.surface", 0) >= 1
        finally:
            obs.disable()
            obs.reset()

    def test_keep_alive_reuses_one_connection(self, client):
        # several requests through the same client must not reconnect
        for x in (50.0, 100.0, 200.0):
            assert client.point("delta", "poisson", "adaptive", x)["value"] >= 0.0


class TestErrorMapping:
    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceClientError) as exc:
            client.request("GET", "/v1/nope")
        assert exc.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServiceClientError) as exc:
            client.request("GET", "/v1/batch")
        assert exc.value.status == 405

    def test_bad_quantity_is_400(self, client):
        with pytest.raises(ServiceClientError) as exc:
            client.point("theta", "poisson", "adaptive", 100.0)
        assert exc.value.status == 400

    def test_malformed_body_is_400(self, client):
        with pytest.raises(ServiceClientError) as exc:
            client.request("POST", "/v1/point", {"quantity": "delta"})
        assert exc.value.status == 400

    def test_non_numeric_x_is_400(self, client):
        with pytest.raises(ServiceClientError) as exc:
            client.request(
                "GET", "/v1/point?quantity=delta&load=poisson&utility=adaptive&x=abc"
            )
        assert exc.value.status == 400


class TestConcurrency:
    def test_parallel_clients_hitting_the_fallback(self, server):
        # every worker sends a mix of surface hits and *uncached*
        # out-of-domain points, so the exact-fallback ladder runs under
        # real request concurrency
        host, port = server.address
        hi = DOMAINS["delta"][1]
        errors = []
        replies = []

        def worker(idx: int):
            try:
                with ServiceClient(host, port) as c:
                    for i in range(10):
                        x = 50.0 + 7.0 * ((idx * 10 + i) % 40)
                        replies.append(c.point("delta", "poisson", "adaptive", x))
                    burst = c.batch(
                        "delta", "poisson", "adaptive", [hi * 2.0, hi * 2.5]
                    )
                    assert burst["source"] == "exact"
                    replies.append(burst)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(replies) == 6 * 11
        exact = exact_scalar("delta", DEFAULT_CONFIG, "poisson", "adaptive", hi * 2.0)
        bursts = [r for r in replies if r.get("source") == "exact"]
        assert bursts and all(
            r["values"][0] == pytest.approx(exact, rel=1e-9) for r in bursts
        )


class TestMeanFieldEngineHint:
    def test_point_roundtrip_with_engine_hint(self, client):
        reply = client.point(
            "delta", "poisson", "adaptive", 110.0, engine="meanfield"
        )
        assert reply["source"] == "meanfield"
        exact = exact_scalar("delta", DEFAULT_CONFIG, "poisson", "adaptive", 110.0)
        assert reply["value"] == pytest.approx(exact, abs=2e-3)

    def test_batch_roundtrip_with_engine_hint(self, client):
        reply = client.batch(
            "delta", "poisson", "adaptive", [100.0, 120.0], engine="meanfield"
        )
        assert reply["source"] == "meanfield"
        assert reply["sources"]["meanfield"] == 2

    def test_engine_hint_via_query_string(self, client):
        reply = client.request(
            "GET",
            "/v1/point?quantity=delta&load=poisson&utility=adaptive"
            "&x=110&engine=meanfield",
        )
        assert reply["source"] == "meanfield"

    def test_out_of_envelope_refusal_maps_to_400(self, client):
        with pytest.raises(ServiceClientError) as exc:
            client.point(
                "delta", "exponential", "adaptive", 110.0, engine="meanfield"
            )
        assert exc.value.status == 400
        assert "OutOfDomainError" in str(exc.value)

    def test_unknown_engine_is_400(self, client):
        with pytest.raises(ServiceClientError) as exc:
            client.point("delta", "poisson", "adaptive", 110.0, engine="warp")
        assert exc.value.status == 400

    def test_non_delta_quantity_with_engine_is_400(self, client):
        with pytest.raises(ServiceClientError) as exc:
            client.point("gamma", "poisson", "adaptive", 110.0, engine="meanfield")
        assert exc.value.status == 400
