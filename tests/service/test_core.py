"""The service query engine: surface fast path, cache fallback, locks.

The fixture bank fits only ``delta``/``gamma`` over the poisson load so
the module stays fast; every other triple exercises the exact-fallback
ladder, which is precisely what these tests are about.
"""

from __future__ import annotations

import dataclasses
import threading

import numpy as np
import pytest

from repro.emulator import DOMAINS, exact_scalar, fit_bank
from repro.experiments.params import DEFAULT_CONFIG
from repro.runner.cache import ResultCache
from repro.service import EmulatorService, QueryError


@pytest.fixture(scope="module")
def bank():
    return fit_bank(quantities=("delta", "gamma"), loads=("poisson",))


@pytest.fixture()
def service(bank, tmp_path):
    return EmulatorService(bank=bank, cache=ResultCache(tmp_path / "cache"))


class TestPointQueries:
    def test_in_domain_point_comes_from_the_surface(self, service):
        reply = service.point("delta", "poisson", "adaptive", 120.0)
        assert reply["source"] == "surface"
        exact = exact_scalar("delta", DEFAULT_CONFIG, "poisson", "adaptive", 120.0)
        assert abs(reply["value"] - exact) <= reply["certified_bound"]

    def test_out_of_domain_point_falls_back_to_exact(self, service):
        hi = DOMAINS["delta"][1]
        reply = service.point("delta", "poisson", "adaptive", hi * 2.0)
        assert reply["source"] == "exact"
        assert reply["certified_bound"] is None
        exact = exact_scalar("delta", DEFAULT_CONFIG, "poisson", "adaptive", hi * 2.0)
        assert reply["value"] == pytest.approx(exact, rel=1e-9, abs=1e-12)

    def test_unfitted_utility_is_always_exact(self, service):
        reply = service.point("delta", "poisson", "rigid", 120.0)
        assert reply["source"] == "exact"

    def test_surface_values_are_clipped_nonnegative(self, service):
        # delta and Delta are gaps (>= 0 exactly); any fit wiggle below
        # zero must not leak out of the service
        lo, hi = DOMAINS["delta"]
        replies = service.batch(
            "delta", "poisson", "adaptive", np.linspace(lo, hi, 101)
        )
        assert min(replies["values"]) >= 0.0

    @pytest.mark.parametrize("x", [0.0, -5.0, float("inf"), float("nan")])
    def test_bad_points_are_rejected(self, service, x):
        with pytest.raises(QueryError):
            service.point("delta", "poisson", "adaptive", x)

    @pytest.mark.parametrize(
        "triple",
        [
            ("theta", "poisson", "adaptive"),
            ("delta", "bimodal", "adaptive"),
            ("delta", "poisson", "elastic"),
        ],
    )
    def test_unknown_names_are_rejected(self, service, triple):
        with pytest.raises(QueryError):
            service.point(*triple, 120.0)


class TestBatchQueries:
    def test_mixed_grid_splits_by_domain(self, service):
        hi = DOMAINS["delta"][1]
        reply = service.batch("delta", "poisson", "adaptive", [100.0, hi * 2.0])
        assert reply["source"] == "mixed"
        assert reply["sources"] == {"surface": 1, "exact": 1}
        assert reply["certified_bound"] is not None
        exact_out = exact_scalar(
            "delta", DEFAULT_CONFIG, "poisson", "adaptive", hi * 2.0
        )
        assert reply["values"][1] == pytest.approx(exact_out, rel=1e-9, abs=1e-12)

    def test_empty_grid_rejected(self, service):
        with pytest.raises(QueryError):
            service.batch("delta", "poisson", "adaptive", [])

    def test_kbar_what_if_routes_to_exact_without_a_2d_surface(self, service):
        reply = service.batch(
            "delta", "poisson", "adaptive", [100.0, 150.0], kbar=80.0
        )
        assert reply["source"] == "exact"
        assert len(reply["values"]) == 2

    def test_gamma_served_from_its_log_surface(self, service):
        reply = service.batch("gamma", "poisson", "adaptive", [1e-3, 0.01, 0.3])
        assert reply["source"] == "surface"
        # gamma in (1, e) per the paper's welfare bound
        assert all(1.0 < v < np.e for v in reply["values"])


class TestCacheFallback:
    def test_second_miss_is_a_disk_hit(self, service):
        hi = DOMAINS["delta"][1]
        grid = [hi * 1.5, hi * 2.0]
        first = service.batch("delta", "poisson", "adaptive", grid)
        entries = list(service.cache.root.rglob("*.json"))
        assert len(entries) == 1  # the miss was stored
        mtime = entries[0].stat().st_mtime_ns
        second = service.batch("delta", "poisson", "adaptive", grid)
        assert second["values"] == first["values"]
        # served from the entry, not recomputed-and-rewritten
        assert entries[0].stat().st_mtime_ns == mtime

    def test_concurrent_cold_misses_agree(self, service):
        # the per-triple lock serialises the thundering herd; every
        # thread must see the same exact answer and no exceptions
        hi = DOMAINS["delta"][1]
        grid = [hi * 3.0, hi * 4.0]
        results, errors = [], []

        def query():
            try:
                results.append(
                    tuple(service.batch("delta", "poisson", "adaptive", grid)["values"])
                )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=query) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(set(results)) == 1
        expected = tuple(
            exact_scalar("delta", DEFAULT_CONFIG, "poisson", "adaptive", x)
            for x in grid
        )
        assert results[0] == pytest.approx(expected, rel=1e-9)
        # the herd resolved to a single stored computation
        assert len(list(service.cache.root.rglob("*.json"))) == 1

    def test_service_without_a_cache_still_answers(self, bank):
        svc = EmulatorService(bank=bank, cache=None)
        hi = DOMAINS["delta"][1]
        reply = svc.point("delta", "poisson", "adaptive", hi * 2.0)
        assert reply["source"] == "exact"


class TestDescribe:
    def test_metadata_without_coefficients(self, service):
        info = service.describe()
        assert info["config_digest"] == service.bank.config_digest
        assert len(info["surfaces"]) == 2
        assert all("coefficients" not in s for s in info["surfaces"])
        assert info["cache"] is True


class TestMeanFieldEngine:
    def test_explicit_hint_answers_from_the_engine(self, service):
        from repro.meanfield import MeanFieldSimulator
        from repro.simulation import BirthDeathProcess, Link

        grid = [100.0, 110.0, 130.0]
        reply = service.batch(
            "delta", "poisson", "adaptive", grid, engine="meanfield"
        )
        assert reply["source"] == "meanfield"
        assert reply["sources"] == {"surface": 0, "exact": 0, "meanfield": 3}
        assert reply["certified_bound"] is None
        expected = MeanFieldSimulator(
            BirthDeathProcess(DEFAULT_CONFIG.load("poisson")),
            Link(DEFAULT_CONFIG.kbar),
        ).gap_batch(DEFAULT_CONFIG.utility("adaptive"), grid)
        assert reply["values"] == pytest.approx(list(expected), rel=1e-12)

    def test_meanfield_gap_tracks_the_exact_delta(self, service):
        # the O(1/N) diffusion answer vs the exact solver at N = 100:
        # close, but served without any simulation or series sum
        reply = service.point(
            "delta", "poisson", "adaptive", 110.0, engine="meanfield"
        )
        assert reply["source"] == "meanfield"
        exact = exact_scalar("delta", DEFAULT_CONFIG, "poisson", "adaptive", 110.0)
        assert reply["value"] == pytest.approx(exact, abs=2e-3)

    def test_kbar_override_scales_the_population(self, service):
        reply = service.batch(
            "delta", "poisson", "adaptive", [55.0], kbar=50.0, engine="meanfield"
        )
        assert reply["kbar"] == 50.0
        exact = exact_scalar(
            "delta",
            dataclasses.replace(DEFAULT_CONFIG, kbar=50.0),
            "poisson",
            "adaptive",
            55.0,
        )
        assert reply["values"][0] == pytest.approx(exact, abs=2e-3)

    def test_simulator_is_memoised_per_load_and_population(self, service):
        service.batch("delta", "poisson", "adaptive", [100.0], engine="meanfield")
        first = dict(service._meanfield_sims)
        service.batch("delta", "poisson", "rigid", [120.0], engine="meanfield")
        assert dict(service._meanfield_sims) == first
        service.batch(
            "delta", "poisson", "adaptive", [55.0], kbar=50.0, engine="meanfield"
        )
        assert len(service._meanfield_sims) == len(first) + 1

    def test_non_delta_quantities_are_refused(self, service):
        with pytest.raises(QueryError, match="delta"):
            service.batch("gamma", "poisson", "adaptive", [100.0], engine="meanfield")

    def test_unknown_engine_is_refused(self, service):
        with pytest.raises(QueryError, match="engine"):
            service.batch("delta", "poisson", "adaptive", [100.0], engine="warp")

    def test_out_of_envelope_load_is_refused_not_extrapolated(self, service):
        from repro.errors import OutOfDomainError

        with pytest.raises(OutOfDomainError):
            service.batch(
                "delta", "exponential", "adaptive", [100.0], engine="meanfield"
            )

    def test_describe_advertises_the_engine_hint(self, service):
        assert service.describe()["engines"] == ["meanfield"]
