"""Tests for the frozen-result provenance registry (freeze + verify)."""

import dataclasses
import json
import shutil

import pytest

from repro.errors import ProvenanceError
from repro.experiments.params import DEFAULT_CONFIG, PaperConfig
from repro.models import VariableLoadModel
from repro.provenance import (
    COMPONENTS,
    MANIFEST_NAME,
    PROVENANCE_SCHEMA,
    Manifest,
    freeze,
    sha256_file,
    verify,
)
from repro.provenance.freeze import TRACES_SUMMARY

#: A deliberately small replay spec so freeze/verify run in ~a second.
TINY_SPEC = {
    "workload": "poisson",
    "rate": 25.0,
    "horizon": 60.0,
    "seed": 7,
    "chunk_flows": 1024,
    "capacity": 27.5,
    "windows": 4,
    "warmup": 10.0,
}


@pytest.fixture(scope="module")
def source_root(tmp_path_factory):
    """A synthetic repo root whose pins are exactly what verify recomputes."""
    root = tmp_path_factory.mktemp("source")
    cfg = DEFAULT_CONFIG
    caps = [60.0, 90.0]
    figures = {}
    for name, load in (
        ("figure2", "poisson"),
        ("figure3", "exponential"),
        ("figure4", "algebraic"),
    ):
        model = VariableLoadModel(cfg.load(load), cfg.utility("adaptive"))
        figures[name] = {
            "capacity": caps,
            "delta": [model.performance_gap(c) for c in caps],
        }
    shared = VariableLoadModel(cfg.load("algebraic"), cfg.utility("adaptive"))
    figures["algebraic_shared_tables"] = {
        "capacity": caps,
        "best_effort": [shared.best_effort(c) for c in caps],
    }
    golden = root / "tests" / "golden" / "figures.json"
    golden.parent.mkdir(parents=True)
    golden.write_text(json.dumps(figures, indent=2) + "\n")

    bench = {
        "BENCH_batch.json": {
            "cases": [{"matches_rtol_1e9": True}, {"matches_rtol_1e9": True}],
            "headline": {"matches_rtol_1e9": True},
        },
        "BENCH_ensemble.json": {"headline": {"exact_parity": True}},
        "BENCH_meanfield.json": {"gate": {"gap_compatible": True}},
        "BENCH_service.json": {"accuracy": {"worst_residual_bound_units": 0.4}},
        "BENCH_traces.json": {
            "headline": {"constant_memory": True, "flows": 1_099_720}
        },
        "BENCH_ungated.json": {"timing": {"seconds": 1.0}},
    }
    for name, payload in bench.items():
        (root / name).write_text(json.dumps(payload, indent=2) + "\n")
    return root


@pytest.fixture(scope="module")
def snapshot(source_root, tmp_path_factory):
    """A full freeze of the synthetic root (shared; copy before tampering)."""
    snap = tmp_path_factory.mktemp("snapshots") / "snap"
    freeze(snap, source_root=source_root, trace_specs=[TINY_SPEC])
    return snap


def _tampered_copy(snapshot, tmp_path):
    copy = tmp_path / "copy"
    shutil.copytree(snapshot, copy)
    return copy


def _rehash(snapshot, rel):
    """Update the manifest hash for one artifact (simulates a clean edit)."""
    manifest = Manifest.load(snapshot)
    path = snapshot / rel
    artifacts = dict(manifest.artifacts)
    artifacts[rel] = {"sha256": sha256_file(path), "bytes": path.stat().st_size}
    dataclasses.replace(manifest, artifacts=artifacts).save(snapshot)


class TestFreeze:
    def test_manifest_inventories_every_artifact(self, snapshot):
        manifest = Manifest.load(snapshot)
        assert manifest.schema == PROVENANCE_SCHEMA
        assert "golden/figures.json" in manifest.artifacts
        assert TRACES_SUMMARY in manifest.artifacts
        assert "bench/BENCH_batch.json" in manifest.artifacts
        assert "bench/BENCH_ungated.json" in manifest.artifacts
        for entry in manifest.artifacts.values():
            assert len(entry["sha256"]) == 64
            assert entry["bytes"] > 0
        assert set(manifest.recompute) == {"golden", "bench", "traces"}

    def test_hashes_match_the_files(self, snapshot):
        manifest = Manifest.load(snapshot)
        for rel, entry in manifest.artifacts.items():
            assert sha256_file(snapshot / rel) == entry["sha256"], rel

    def test_trace_summary_carries_its_spec(self, snapshot):
        summary = json.loads((snapshot / TRACES_SUMMARY).read_text())
        assert summary["schema"] == "repro.provenance.traces/v1"
        (entry,) = summary["replays"]
        for key, value in TINY_SPEC.items():
            assert entry[key] == value
        assert entry["flows"] > 0 and entry["gap"] == pytest.approx(
            entry["reservation"] - entry["best_effort"]
        )

    def test_unknown_component_rejected(self, tmp_path, source_root):
        with pytest.raises(ProvenanceError, match="unknown components"):
            freeze(tmp_path / "s", source_root=source_root, include=("benches",))

    def test_empty_component_list_rejected(self, tmp_path, source_root):
        with pytest.raises(ProvenanceError, match="nothing to freeze"):
            freeze(tmp_path / "s", source_root=source_root, include=())

    def test_missing_golden_pins_rejected(self, tmp_path):
        empty = tmp_path / "empty-root"
        empty.mkdir()
        with pytest.raises(ProvenanceError, match="golden pins"):
            freeze(tmp_path / "s", source_root=empty, include=("golden",))

    def test_components_constant_is_the_full_set(self):
        assert COMPONENTS == ("golden", "bench", "traces")


class TestVerify:
    def test_clean_snapshot_passes_every_check(self, snapshot):
        report = verify(snapshot)
        assert report.ok, report.render()
        ids = {check.check_id for check in report.checks}
        assert "config_digest" in ids
        assert f"hash:{TRACES_SUMMARY}" in ids
        assert "golden:figure2:delta" in ids
        assert "golden:algebraic_shared_tables:best_effort" in ids
        assert "bench:BENCH_batch.json" in ids
        assert "traces:poisson:seed7" in ids
        assert "PASSED" in report.render()

    def test_tampered_artifact_fails_the_hash_check(self, snapshot, tmp_path):
        copy = _tampered_copy(snapshot, tmp_path)
        path = copy / TRACES_SUMMARY
        path.write_text(path.read_text() + "\n")
        report = verify(copy)
        assert not report.ok
        assert any(
            c.check_id == f"hash:{TRACES_SUMMARY}" for c in report.failures
        )
        assert "FAILED" in report.render()

    def test_missing_artifact_fails_the_hash_check(self, snapshot, tmp_path):
        copy = _tampered_copy(snapshot, tmp_path)
        (copy / "bench" / "BENCH_ungated.json").unlink()
        report = verify(copy)
        failed = {c.check_id for c in report.failures}
        assert "hash:bench/BENCH_ungated.json" in failed

    def test_drifted_replay_numbers_fail_the_recompute(self, snapshot, tmp_path):
        copy = _tampered_copy(snapshot, tmp_path)
        path = copy / TRACES_SUMMARY
        payload = json.loads(path.read_text())
        payload["replays"][0]["gap"] *= 1.01
        path.write_text(json.dumps(payload, indent=2) + "\n")
        _rehash(copy, TRACES_SUMMARY)
        report = verify(copy)
        failed = {c.check_id for c in report.failures}
        # hash is clean (the manifest was updated); the recompute is not
        assert f"hash:{TRACES_SUMMARY}" not in failed
        assert "traces:poisson:seed7" in failed

    def test_drifted_flow_count_is_called_out(self, snapshot, tmp_path):
        copy = _tampered_copy(snapshot, tmp_path)
        path = copy / TRACES_SUMMARY
        payload = json.loads(path.read_text())
        payload["replays"][0]["flows"] += 1
        path.write_text(json.dumps(payload, indent=2) + "\n")
        _rehash(copy, TRACES_SUMMARY)
        report = verify(copy)
        (failure,) = [
            c for c in report.failures if c.check_id == "traces:poisson:seed7"
        ]
        assert "flow count drifted" in failure.detail

    def test_drifted_golden_delta_fails_the_recompute(self, snapshot, tmp_path):
        copy = _tampered_copy(snapshot, tmp_path)
        path = copy / "golden" / "figures.json"
        payload = json.loads(path.read_text())
        payload["figure2"]["delta"][0] += 1e-3
        path.write_text(json.dumps(payload, indent=2) + "\n")
        _rehash(copy, "golden/figures.json")
        report = verify(copy)
        failed = {c.check_id for c in report.failures}
        assert "golden:figure2:delta" in failed
        assert "golden:figure3:delta" not in failed

    def test_failed_bench_gate_is_reported(self, snapshot, tmp_path):
        copy = _tampered_copy(snapshot, tmp_path)
        path = copy / "bench" / "BENCH_meanfield.json"
        path.write_text(json.dumps({"gate": {"gap_compatible": False}}) + "\n")
        _rehash(copy, "bench/BENCH_meanfield.json")
        report = verify(copy)
        failed = {c.check_id for c in report.failures}
        assert "bench:BENCH_meanfield.json" in failed

    def test_undersized_replay_fails_the_traces_gate(self, snapshot, tmp_path):
        copy = _tampered_copy(snapshot, tmp_path)
        path = copy / "bench" / "BENCH_traces.json"
        path.write_text(
            json.dumps({"headline": {"constant_memory": True, "flows": 10}})
            + "\n"
        )
        _rehash(copy, "bench/BENCH_traces.json")
        report = verify(copy)
        failed = {c.check_id for c in report.failures}
        assert "bench:BENCH_traces.json" in failed

    def test_config_drift_fails_the_digest_check(self, tmp_path):
        snap = tmp_path / "snap"
        freeze(snap, include=("traces",), trace_specs=[TINY_SPEC])
        report = verify(
            snap, config=PaperConfig(kbar=DEFAULT_CONFIG.kbar + 1.0)
        )
        (digest,) = [c for c in report.checks if c.check_id == "config_digest"]
        assert not digest.passed and "config drifted" in digest.detail

    def test_report_round_trips_to_json(self, snapshot):
        report = verify(snapshot)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert len(payload["checks"]) == len(report.checks)


class TestManifestStructure:
    def test_not_a_snapshot(self, tmp_path):
        with pytest.raises(ProvenanceError, match=MANIFEST_NAME):
            Manifest.load(tmp_path)

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{nope")
        with pytest.raises(ProvenanceError, match="corrupt"):
            Manifest.load(tmp_path)

    def test_wrong_schema(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text('{"schema": "other/v2"}')
        with pytest.raises(ProvenanceError, match="schema"):
            Manifest.load(tmp_path)

    def test_missing_keys(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"schema": PROVENANCE_SCHEMA, "git_sha": "x"})
        )
        with pytest.raises(ProvenanceError, match="missing manifest key"):
            Manifest.load(tmp_path)

    def test_verify_refuses_a_non_snapshot(self, tmp_path):
        with pytest.raises(ProvenanceError):
            verify(tmp_path)
