"""Structural checks on the example scripts.

The examples are full runs (up to minutes); here we verify they parse,
import cleanly, and follow the repository's conventions (a ``main``
entry point guarded by ``__main__``), so a broken import cannot hide
until someone runs them by hand.
"""

import ast
import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.stem for p in EXAMPLE_FILES}
    assert "quickstart" in names
    assert len(EXAMPLE_FILES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES])
class TestExampleStructure:
    def test_parses(self, path):
        ast.parse(path.read_text())

    def test_has_docstring(self, path):
        module = ast.parse(path.read_text())
        assert ast.get_docstring(module), f"{path.name} needs a module docstring"

    def test_has_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source

    def test_defines_main(self, path):
        module = ast.parse(path.read_text())
        names = {
            node.name for node in module.body if isinstance(node, ast.FunctionDef)
        }
        assert "main" in names

    def test_imports_resolve(self, path):
        # import the module without executing main()
        spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        saved = sys.modules.get(spec.name)
        try:
            spec.loader.exec_module(module)
        finally:
            if saved is not None:
                sys.modules[spec.name] = saved
            else:
                sys.modules.pop(spec.name, None)
        assert callable(module.main)


def test_quickstart_runs_end_to_end(capsys):
    """The smallest example actually executes in test time."""
    spec = importlib.util.spec_from_file_location(
        "example_quickstart_run", EXAMPLES_DIR / "quickstart.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    out = capsys.readouterr().out
    assert "verdict" in out
    assert "k_max" in out
