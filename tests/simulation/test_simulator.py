"""Tests for the flow simulator engine."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.loads import PoissonLoad
from repro.simulation import (
    AdmitAll,
    BirthDeathProcess,
    FlowSimulator,
    Link,
    PoissonProcess,
    ThresholdAdmission,
)


def small_sim(admission=None, capacity=12.0):
    proc = BirthDeathProcess(PoissonLoad(10.0))
    return FlowSimulator(proc, Link(capacity), admission)


class TestRun:
    def test_reproducible_with_seed(self):
        r1 = small_sim().run(50.0, seed=11)
        r2 = small_sim().run(50.0, seed=11)
        np.testing.assert_array_equal(r1.trajectory.times, r2.trajectory.times)
        np.testing.assert_array_equal(r1.flows.arrival, r2.flows.arrival)

    def test_different_seeds_differ(self):
        r1 = small_sim().run(50.0, seed=1)
        r2 = small_sim().run(50.0, seed=2)
        assert len(r1.trajectory.times) != len(r2.trajectory.times) or not np.array_equal(
            r1.trajectory.times, r2.trajectory.times
        )

    def test_census_is_conserved(self):
        # trajectory census equals arrivals-minus-departures at all times
        res = small_sim().run(40.0, seed=3)
        t = res.trajectory
        for i in (0, len(t.times) // 2, len(t.times) - 1):
            now = t.times[i]
            alive = np.sum(
                (res.flows.arrival <= now) & (res.flows.departure > now)
            )
            assert t.census[i] == alive

    def test_admitted_never_exceeds_threshold(self):
        policy = ThresholdAdmission(8)
        res = small_sim(policy).run(80.0, seed=5)
        assert res.trajectory.admitted.max() <= 8

    def test_admit_all_census_equals_admitted(self):
        res = small_sim(AdmitAll()).run(40.0, seed=7)
        np.testing.assert_array_equal(res.trajectory.census, res.trajectory.admitted)

    def test_incomplete_flows_excluded_from_completed_mask(self):
        res = small_sim().run(30.0, warmup=5.0, seed=9)
        mask = res.completed_mask()
        assert np.all(np.isfinite(res.flows.departure[mask]))
        assert np.all(res.flows.arrival[mask] >= 5.0)

    def test_initial_census_seeding(self):
        res = small_sim().run(10.0, seed=1, initial_census=25)
        assert res.trajectory.census[0] == 25

    def test_invalid_horizon_and_warmup(self):
        with pytest.raises(ValueError):
            small_sim().run(0.0)
        with pytest.raises(ValueError):
            small_sim().run(10.0, warmup=10.0)

    def test_max_events_guard(self):
        with pytest.raises(ModelError, match="events"):
            small_sim().run(1000.0, seed=1, max_events=50)

    def test_budget_error_carries_diagnostics(self):
        from repro.errors import SimulationBudgetError

        with pytest.raises(SimulationBudgetError) as excinfo:
            small_sim().run(1000.0, seed=1, max_events=50)
        err = excinfo.value
        assert isinstance(err, ModelError)
        assert err.events == 50
        assert err.horizon == 1000.0
        assert 0.0 < err.reached_t < err.horizon
        # the message gives the operator every number needed to re-run
        assert "50" in str(err) and "1000" in str(err)

    def test_result_records_events_and_outcome(self):
        res = small_sim().run(30.0, seed=2)
        assert res.outcome == "completed"
        assert res.events == len(res.trajectory.times) - 1

    def test_seed_and_stream_mutually_exclusive(self):
        from repro.simulation import ReplicationStream, spawn_children

        stream = ReplicationStream(spawn_children(1, 1)[0])
        with pytest.raises(ValueError, match="mutually exclusive"):
            small_sim().run(10.0, seed=1, stream=stream)


class TestReadmission:
    def test_waiting_flows_promoted(self):
        # tight threshold forces rejections; readmission must hand
        # freed slots to waiting flows (admit_time > arrival)
        policy = ThresholdAdmission(6, readmit_waiting=True)
        proc = BirthDeathProcess(PoissonLoad(10.0))
        res = FlowSimulator(proc, Link(8.0), policy).run(120.0, seed=13)
        promoted = res.flows.admit_time > res.flows.arrival
        assert np.any(promoted & np.isfinite(res.flows.admit_time))

    def test_no_promotion_without_flag(self):
        policy = ThresholdAdmission(6, readmit_waiting=False)
        proc = BirthDeathProcess(PoissonLoad(10.0))
        res = FlowSimulator(proc, Link(8.0), policy).run(120.0, seed=13)
        admitted = res.flows.admitted
        assert np.all(
            res.flows.admit_time[admitted] == res.flows.arrival[admitted]
        )


class TestTrajectory:
    def test_value_at_lookup(self):
        res = small_sim().run(30.0, seed=2)
        t = res.trajectory
        mid = (t.times[3] + t.times[4]) / 2.0
        assert t.value_at(np.array([mid]))[0] == t.census[3]

    def test_segment_durations_sum_to_horizon(self):
        res = small_sim().run(30.0, seed=2)
        total = res.trajectory.segment_durations().sum()
        assert total == pytest.approx(30.0, abs=1e-9)

    def test_mismatched_arrays_rejected(self):
        from repro.simulation import Trajectory

        with pytest.raises(ValueError):
            Trajectory(
                times=np.array([0.0, 1.0]),
                census=np.array([1.0]),
                admitted=np.array([1.0, 1.0]),
                horizon=2.0,
            )


class TestWithPoissonProcess:
    def test_mm_infty_census_mean(self):
        proc = PoissonProcess(30.0, mu=2.0)  # mean census 15
        sim = FlowSimulator(proc, Link(20.0))
        res = sim.run(400.0, warmup=50.0, seed=21)
        from repro.simulation import empirical_mean_census

        assert empirical_mean_census(res) == pytest.approx(15.0, abs=1.0)
