"""Tests for the event queue."""

import pytest

from repro.simulation import Event, EventKind, EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, EventKind.ARRIVAL)
        q.push(1.0, EventKind.DEPARTURE)
        q.push(2.0, EventKind.ARRIVAL)
        times = [q.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_fifo_for_simultaneous_events(self):
        q = EventQueue()
        first = q.push(1.0, EventKind.ARRIVAL, payload="a")
        second = q.push(1.0, EventKind.ARRIVAL, payload="b")
        assert first.seq < second.seq
        assert q.pop().payload == "a"
        assert q.pop().payload == "b"

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(1.0, EventKind.SESSION)
        assert q.peek().time == 1.0
        assert len(q) == 1

    def test_empty_behaviour(self):
        q = EventQueue()
        assert not q
        assert q.peek() is None
        with pytest.raises(IndexError):
            q.pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.ARRIVAL)

    def test_event_ordering_dataclass(self):
        e1 = Event(time=1.0, seq=0, kind=EventKind.ARRIVAL)
        e2 = Event(time=1.0, seq=1, kind=EventKind.DEPARTURE)
        assert e1 < e2
