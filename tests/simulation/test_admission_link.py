"""Tests for admission policies and the shared link."""

import pytest

from repro.simulation import AdmitAll, Link, ThresholdAdmission
from repro.utility import AdaptiveUtility, RigidUtility


class TestAdmitAll:
    def test_always_admits(self):
        policy = AdmitAll()
        assert policy.admits(0, 10.0)
        assert policy.admits(10_000, 0.1)
        assert policy.threshold(5.0) == float("inf")


class TestThresholdAdmission:
    def test_fixed_threshold(self):
        policy = ThresholdAdmission(5)
        assert policy.admits(4, 10.0)
        assert not policy.admits(5, 10.0)

    def test_callable_threshold(self):
        policy = ThresholdAdmission(lambda c: c / 2.0)
        assert policy.threshold(10.0) == 5.0
        assert policy.admits(4, 10.0)
        assert not policy.admits(5, 10.0)

    def test_from_utility_rigid(self):
        policy = ThresholdAdmission.from_utility(RigidUtility(2.0))
        assert policy.threshold(10.0) == 5
        assert policy.admits(4, 10.0)
        assert not policy.admits(5, 10.0)

    def test_from_utility_adaptive_near_capacity(self):
        policy = ThresholdAdmission.from_utility(AdaptiveUtility())
        assert policy.threshold(50.0) == pytest.approx(50, abs=1)

    def test_readmit_flag(self):
        assert not ThresholdAdmission(5).readmit_waiting
        assert ThresholdAdmission(5, readmit_waiting=True).readmit_waiting

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ThresholdAdmission(-1)


class TestLink:
    def test_equal_shares(self):
        link = Link(12.0)
        assert link.share(4) == 3.0
        assert link.share(1) == 12.0

    def test_zero_flows_convention(self):
        assert Link(12.0).share(0) == 12.0

    def test_instantaneous_utility(self):
        link = Link(12.0)
        u = RigidUtility(1.0)
        assert link.instantaneous_utility(u, 12) == 1.0
        assert link.instantaneous_utility(u, 13) == 0.0
        assert link.instantaneous_utility(u, 0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            Link(-1.0)
        with pytest.raises(ValueError):
            Link(1.0).share(-1)
