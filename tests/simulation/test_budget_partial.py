"""Regression tests: budget exhaustion must not discard finished work.

``run_until`` grows the ensemble batch by batch; before the fix, a
:class:`SimulationBudgetError` raised by any batch threw away the
Welford state of every *completed* batch.  The error now carries an
``AdaptiveEstimate`` over the replications that did finish, so
equal-budget comparisons (the mean-field crossover bench) can read the
partial answer instead of re-simulating.
"""

import numpy as np
import pytest

from repro.errors import SimulationBudgetError
from repro.simulation import EnsembleSimulator, Link, PoissonProcess
from repro.simulation.stats import AdaptiveEstimate


class _BudgetAfterFirstBatch(EnsembleSimulator):
    """Runs the first ``_run`` normally, exhausts the budget on the next.

    Batches are statistically identical, so a deterministic failure
    point needs engineering: real budget blowups depend on the drawn
    event counts and cannot be pinned to the second batch reliably.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0

    def _run(self, children, horizon, **kwargs):
        self.calls += 1
        if self.calls > 1:
            raise SimulationBudgetError(
                events=999, reached_t=horizon / 2.0, horizon=horizon
            )
        return super()._run(children, horizon, **kwargs)


def test_partial_welford_state_survives_budget_exhaustion():
    ens = _BudgetAfterFirstBatch(PoissonProcess(5.0), Link(6.0))
    with pytest.raises(SimulationBudgetError) as excinfo:
        ens.run_until(
            lambda r: r.mean_census(),
            20.0,
            ci_halfwidth=1e-9,  # unreachable: forces a second batch
            seed=7,
            batch_size=4,
            min_replications=2,
            max_replications=16,
        )
    partial = excinfo.value.partial
    assert isinstance(partial, AdaptiveEstimate)
    assert partial.replications == 4  # exactly the completed first batch
    assert not partial.converged
    assert partial.target == 1e-9
    assert np.isfinite(partial.mean) and partial.mean > 0.0
    assert np.isfinite(partial.ci_halfwidth)
    # the preserved state is advertised, not silent
    assert "partial estimate over 4" in str(excinfo.value)


def test_first_batch_failure_carries_no_partial():
    ens = _BudgetAfterFirstBatch(PoissonProcess(5.0), Link(6.0))
    ens.calls = 1  # next _run call is the first batch and it fails
    with pytest.raises(SimulationBudgetError) as excinfo:
        ens.run_until(
            lambda r: r.mean_census(),
            20.0,
            ci_halfwidth=1e-9,
            seed=7,
            batch_size=4,
            min_replications=2,
            max_replications=16,
        )
    assert excinfo.value.partial is None


def test_real_budget_exhaustion_still_raises():
    ens = EnsembleSimulator(PoissonProcess(5.0), Link(6.0))
    with pytest.raises(SimulationBudgetError):
        ens.run_until(
            lambda r: r.mean_census(),
            200.0,
            ci_halfwidth=1e-9,
            seed=7,
            batch_size=4,
            min_replications=2,
            max_replications=8,
            max_events=10,
        )


def test_partial_preserves_the_batch_statistics():
    # the partial mean must equal the Welford mean of batch one's
    # statistic values, bit for bit
    probe = EnsembleSimulator(PoissonProcess(5.0), Link(6.0))
    reference = probe.run(4, 20.0, seed=7).mean_census()
    ens = _BudgetAfterFirstBatch(PoissonProcess(5.0), Link(6.0))
    with pytest.raises(SimulationBudgetError) as excinfo:
        ens.run_until(
            lambda r: r.mean_census(),
            20.0,
            ci_halfwidth=1e-9,
            seed=7,
            batch_size=4,
            min_replications=2,
            max_replications=16,
        )
    assert excinfo.value.partial.mean == pytest.approx(
        float(np.mean(reference)), rel=1e-12
    )
