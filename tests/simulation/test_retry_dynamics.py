"""Dynamic retries in the simulator vs the Section 5.2 static model."""

import numpy as np
import pytest

from repro.loads import GeometricLoad
from repro.models import RetryingModel
from repro.simulation import (
    BirthDeathProcess,
    FlowSimulator,
    Link,
    ThresholdAdmission,
    retry_adjusted_utilities,
)
from repro.utility import AdaptiveUtility


def run_with_retries(capacity, retry_rate, horizon=1500.0, seed=5):
    load = GeometricLoad.from_mean(10.0)
    utility = AdaptiveUtility()
    sim = FlowSimulator(
        BirthDeathProcess(load),
        Link(capacity),
        ThresholdAdmission.from_utility(utility),
        retry_rate=retry_rate,
    )
    return sim.run(horizon, warmup=horizon / 5, seed=seed)


class TestRetryMechanics:
    def test_retries_admit_waiting_flows(self):
        res = run_with_retries(15.0, retry_rate=3.0)
        mask = res.completed_mask()
        late_admits = (
            res.flows.admit_time[mask] > res.flows.arrival[mask] + 1e-12
        )
        assert np.any(late_admits & np.isfinite(res.flows.admit_time[mask]))

    def test_failed_attempts_counted(self):
        res = run_with_retries(15.0, retry_rate=3.0)
        mask = res.completed_mask()
        assert res.flows.failed_attempts[mask].max() >= 2.0
        # admitted-on-arrival flows have zero failures
        on_arrival = res.flows.admit_time[mask] == res.flows.arrival[mask]
        assert np.all(res.flows.failed_attempts[mask][on_arrival] == 0.0)

    def test_no_retries_without_rate(self):
        res = run_with_retries(15.0, retry_rate=0.0)
        mask = res.completed_mask()
        admitted = res.flows.admitted[mask]
        assert np.all(
            res.flows.admit_time[mask][admitted] == res.flows.arrival[mask][admitted]
        )

    def test_admission_count_never_exceeds_threshold(self):
        res = run_with_retries(15.0, retry_rate=5.0)
        assert res.trajectory.admitted.max() <= 15

    def test_negative_retry_rate_rejected(self):
        load = GeometricLoad.from_mean(10.0)
        with pytest.raises(ValueError):
            FlowSimulator(
                BirthDeathProcess(load), Link(10.0), retry_rate=-1.0
            )


class TestAgainstStaticModel:
    def test_retry_count_decreases_with_capacity(self):
        low = run_with_retries(15.0, retry_rate=3.0)
        high = run_with_retries(25.0, retry_rate=3.0, seed=6)
        d_low = float(low.flows.failed_attempts[low.completed_mask()].mean())
        d_high = float(high.flows.failed_attempts[high.completed_mask()].mean())
        assert d_high < d_low

    def test_retry_count_in_static_model_ballpark(self):
        # the dynamic D and the static D = theta/(1-theta) agree within
        # a factor of ~2 (they model retries differently: timed
        # re-attempts vs iid-census attempts)
        res = run_with_retries(15.0, retry_rate=3.0, horizon=3000.0)
        d_sim = float(res.flows.failed_attempts[res.completed_mask()].mean())
        static = RetryingModel(
            GeometricLoad.from_mean(10.0), AdaptiveUtility(), alpha=0.1
        ).retries_per_flow(15.0)
        assert 0.4 * static < d_sim < 2.5 * static

    def test_faster_retries_admit_more_flows(self):
        slow = run_with_retries(15.0, retry_rate=0.5)
        fast = run_with_retries(15.0, retry_rate=8.0)
        frac_slow = float(slow.flows.admitted[slow.completed_mask()].mean())
        frac_fast = float(fast.flows.admitted[fast.completed_mask()].mean())
        assert frac_fast > frac_slow


class TestRetryAdjustedUtilities:
    def test_penalty_reduces_reservation_score(self):
        res = run_with_retries(15.0, retry_rate=3.0)
        from repro.simulation import mean_utilities
        from repro.utility import AdaptiveUtility

        u = AdaptiveUtility()
        _, raw = mean_utilities(res, u)
        _, penalised = retry_adjusted_utilities(res, u, alpha=0.2)
        assert penalised < raw
        # and the reduction equals alpha times the mean failure count
        mask = res.completed_mask()
        failures = float(res.flows.failed_attempts[mask].mean())
        assert raw - penalised == pytest.approx(0.2 * failures, abs=1e-9)

    def test_best_effort_unchanged(self):
        res = run_with_retries(15.0, retry_rate=3.0)
        from repro.simulation import mean_utilities
        from repro.utility import AdaptiveUtility

        u = AdaptiveUtility()
        be_raw, _ = mean_utilities(res, u)
        be_pen, _ = retry_adjusted_utilities(res, u, alpha=0.5)
        assert be_pen == be_raw

    def test_invalid_alpha(self):
        res = run_with_retries(15.0, retry_rate=3.0)
        from repro.utility import AdaptiveUtility

        with pytest.raises(ValueError):
            retry_adjusted_utilities(res, AdaptiveUtility(), alpha=-0.1)
