"""Tests for the regime-switching demand process."""

import numpy as np
import pytest

from repro.extensions import MixtureLoad
from repro.loads import GeometricLoad, PoissonLoad
from repro.simulation import (
    AdmitAll,
    FlowSimulator,
    Link,
    RegimeSwitchingProcess,
    census_total_variation,
    empirical_mean_census,
)


class TestConstruction:
    def test_mean_census_is_mixture_mean(self):
        proc = RegimeSwitchingProcess(
            [(2.0, PoissonLoad(8.0)), (1.0, PoissonLoad(24.0))]
        )
        assert proc.mean_census == pytest.approx((2 * 8.0 + 24.0) / 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RegimeSwitchingProcess([])
        with pytest.raises(ValueError):
            RegimeSwitchingProcess([(-1.0, PoissonLoad(5.0))])
        with pytest.raises(ValueError):
            RegimeSwitchingProcess([(1.0, PoissonLoad(5.0))], switch_rate=0.0)

    def test_rates_come_from_active_regime(self):
        proc = RegimeSwitchingProcess(
            [(1.0, PoissonLoad(5.0)), (1.0, PoissonLoad(50.0))], seed=1
        )
        # Poisson regimes have constant birth rates nu * mu
        rate = proc.arrival_rate(10)
        assert rate in (pytest.approx(5.0), pytest.approx(50.0))


class TestModulator:
    def test_advance_switches_regimes(self):
        proc = RegimeSwitchingProcess(
            [(1.0, PoissonLoad(5.0)), (1.0, PoissonLoad(50.0))],
            switch_rate=1.0,
            seed=2,
        )
        seen = set()
        for t in np.linspace(0.0, 200.0, 2001):
            proc.advance_to(float(t))
            seen.add(proc.regime)
        assert seen == {0, 1}

    def test_no_switch_before_first_event(self):
        proc = RegimeSwitchingProcess(
            [(1.0, PoissonLoad(5.0)), (1.0, PoissonLoad(50.0))],
            switch_rate=1e-9,
            seed=3,
        )
        start = proc.regime
        proc.advance_to(10.0)
        assert proc.regime == start


class TestAgainstMixtureLoad:
    def test_census_converges_to_mixture(self):
        components = [(2.0, PoissonLoad(8.0)), (1.0, PoissonLoad(24.0))]
        proc = RegimeSwitchingProcess(components, switch_rate=0.02, seed=3)
        res = FlowSimulator(proc, Link(20.0), AdmitAll()).run(
            8000.0, warmup=500.0, seed=9
        )
        mixture = MixtureLoad(components)
        assert empirical_mean_census(res) == pytest.approx(mixture.mean, abs=0.8)
        assert census_total_variation(res, mixture) < 0.05

    def test_census_is_not_either_component(self):
        components = [(1.0, PoissonLoad(6.0)), (1.0, PoissonLoad(30.0))]
        proc = RegimeSwitchingProcess(components, switch_rate=0.02, seed=4)
        res = FlowSimulator(proc, Link(20.0), AdmitAll()).run(
            6000.0, warmup=400.0, seed=11
        )
        # the bimodal census is far from both pure regimes
        assert census_total_variation(res, PoissonLoad(6.0)) > 0.3
        assert census_total_variation(res, PoissonLoad(30.0)) > 0.3

    def test_fast_switching_blurs_toward_average_rate(self):
        # switching much faster than the census relaxes averages the
        # *rates*, collapsing the census toward a single-regime law —
        # the regime where the mixture abstraction breaks down
        components = [(1.0, PoissonLoad(6.0)), (1.0, PoissonLoad(30.0))]
        fast = RegimeSwitchingProcess(components, switch_rate=50.0, seed=5)
        res = FlowSimulator(fast, Link(20.0), AdmitAll()).run(
            3000.0, warmup=300.0, seed=13
        )
        blended = PoissonLoad(18.0)  # average arrival rate / mu
        mixture = MixtureLoad(components)
        assert census_total_variation(res, blended) < census_total_variation(
            res, mixture
        )

    def test_geometric_regimes_also_supported(self):
        components = [
            (1.0, GeometricLoad.from_mean(5.0)),
            (1.0, GeometricLoad.from_mean(15.0)),
        ]
        proc = RegimeSwitchingProcess(components, switch_rate=0.05, seed=6)
        res = FlowSimulator(proc, Link(15.0), AdmitAll()).run(
            3000.0, warmup=300.0, seed=15
        )
        assert empirical_mean_census(res) > 0.0
