"""Tests for the measurement helpers."""

import numpy as np
import pytest

from repro.loads import PoissonLoad
from repro.simulation import (
    AdmitAll,
    BirthDeathProcess,
    FlowSimulator,
    Link,
    ThresholdAdmission,
    arrival_census_distribution,
    census_distribution,
    census_total_variation,
    empirical_mean_census,
    mean_utilities,
    sampled_worst_utilities,
)
from repro.utility import AdaptiveUtility, RigidUtility


@pytest.fixture(scope="module")
def run():
    load = PoissonLoad(10.0)
    proc = BirthDeathProcess(load)
    policy = ThresholdAdmission.from_utility(AdaptiveUtility())
    sim = FlowSimulator(proc, Link(12.0), policy)
    return sim.run(600.0, warmup=60.0, seed=17), load


class TestCensusDistribution:
    def test_probabilities_normalised(self, run):
        result, _ = run
        _, probs = census_distribution(result)
        assert probs.sum() == pytest.approx(1.0, abs=1e-12)
        assert np.all(probs >= 0.0)

    def test_mean_near_target(self, run):
        result, load = run
        assert empirical_mean_census(result) == pytest.approx(load.mean, abs=0.5)

    def test_total_variation_small(self, run):
        result, load = run
        assert census_total_variation(result, load) < 0.08

    def test_admitted_histogram_respects_threshold(self, run):
        result, _ = run
        values, _ = census_distribution(result, use_admitted=True)
        assert values.max() <= 12

    def test_warmup_respected(self):
        # a run whose early census is wildly off: warmup must hide it
        load = PoissonLoad(10.0)
        sim = FlowSimulator(BirthDeathProcess(load), Link(12.0), AdmitAll())
        res = sim.run(300.0, warmup=100.0, seed=23, initial_census=60)
        assert empirical_mean_census(res) == pytest.approx(load.mean, abs=1.0)


class TestMeanUtilities:
    def test_reservation_dominates_best_effort(self, run):
        result, _ = run
        be, res = mean_utilities(result, AdaptiveUtility())
        assert 0.0 < be < 1.0
        assert res >= be - 0.02  # sampling noise allowance

    def test_rigid_best_effort_matches_static_model(self, run):
        # a rigid flow's lifetime-mean utility is the fraction of its
        # lifetime with census <= C; flow-averaged this is exactly the
        # static model's B(C)
        from repro.models import VariableLoadModel

        result, load = run
        be_rigid, _ = mean_utilities(result, RigidUtility(1.0))
        model = VariableLoadModel(load, RigidUtility(1.0))
        assert be_rigid == pytest.approx(model.best_effort(result.capacity), abs=0.05)

    def test_rejects_empty_window(self):
        load = PoissonLoad(10.0)
        sim = FlowSimulator(BirthDeathProcess(load), Link(12.0))
        res = sim.run(2.0, warmup=1.99, seed=3)
        with pytest.raises(ValueError):
            mean_utilities(res, AdaptiveUtility())


class TestSampledWorstUtilities:
    def test_more_samples_lower_scores(self, run):
        result, _ = run
        be1, _ = sampled_worst_utilities(result, AdaptiveUtility(), 1, seed=1)
        be8, _ = sampled_worst_utilities(result, AdaptiveUtility(), 8, seed=1)
        assert be8 < be1

    def test_reservation_insulated_from_worst_case(self, run):
        result, _ = run
        _, res1 = sampled_worst_utilities(result, AdaptiveUtility(), 1, seed=2)
        _, res8 = sampled_worst_utilities(result, AdaptiveUtility(), 8, seed=2)
        # admitted flows see capped loads, so extra samples cost far
        # less than on the best-effort side
        be1, _ = sampled_worst_utilities(result, AdaptiveUtility(), 1, seed=2)
        be8, _ = sampled_worst_utilities(result, AdaptiveUtility(), 8, seed=2)
        assert (res1 - res8) < (be1 - be8) + 0.03
        assert res8 >= res1 - 0.08

    def test_invalid_samples(self, run):
        result, _ = run
        with pytest.raises(ValueError):
            sampled_worst_utilities(result, AdaptiveUtility(), 0)


class TestArrivalCensus:
    def test_histogram_normalised(self, run):
        result, _ = run
        _, probs = arrival_census_distribution(result)
        assert probs.sum() == pytest.approx(1.0)


def _synthetic_result(*, trajectory_horizon: float, warmup: float):
    """A hand-built single-segment run (census 4 from t = 0)."""
    from repro.simulation import Trajectory
    from repro.simulation.simulator import FlowLog, SimulationResult

    empty = np.array([], dtype=float)
    return SimulationResult(
        trajectory=Trajectory(
            times=np.array([0.0]),
            census=np.array([4.0]),
            admitted=np.array([4.0]),
            horizon=trajectory_horizon,
        ),
        flows=FlowLog(
            arrival=empty,
            departure=empty,
            admit_time=empty,
            census_at_arrival=empty,
        ),
        capacity=12.0,
        warmup=warmup,
        horizon=10.0,
    )


class TestWindowEdgeCases:
    def test_zero_warmup_counts_initial_segment(self):
        # warmup == 0 must weight the t = 0 segment too: the pmf mass
        # sums to one over the full horizon, including the census the
        # run was seeded with
        sim = FlowSimulator(BirthDeathProcess(PoissonLoad(10.0)), Link(12.0))
        result = sim.run(5.0, warmup=0.0, seed=29, initial_census=30)
        values, probs = census_distribution(result)
        assert probs.sum() == pytest.approx(1.0, abs=1e-12)
        assert values.max() >= 30  # the seeded level carries weight
        # over this short horizon the decaying transient dominates, so
        # a zero warmup must pull the mean well above the load's 10
        assert empirical_mean_census(result) > 12.0

    def test_single_segment_trajectory(self):
        # a run whose demand never fires an event before the horizon
        # has exactly one segment; the pmf must be a point mass
        result = _synthetic_result(trajectory_horizon=10.0, warmup=2.0)
        values, probs = census_distribution(result)
        np.testing.assert_array_equal(values, [4.0])
        np.testing.assert_array_equal(probs, [1.0])
        assert empirical_mean_census(result) == pytest.approx(4.0)

    def test_empty_post_warmup_window_raises(self):
        # every gram of trajectory mass sits before the warmup cut:
        # the window [warmup, horizon] is empty and must be refused
        result = _synthetic_result(trajectory_horizon=5.0, warmup=6.0)
        with pytest.raises(ValueError, match="no trajectory mass"):
            census_distribution(result)

    def test_invalid_window_rejected_at_construction(self):
        with pytest.raises(ValueError, match="warmup"):
            _synthetic_result(trajectory_horizon=10.0, warmup=10.0)
