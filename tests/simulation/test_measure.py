"""Tests for the measurement helpers."""

import numpy as np
import pytest

from repro.loads import PoissonLoad
from repro.simulation import (
    AdmitAll,
    BirthDeathProcess,
    FlowSimulator,
    Link,
    ThresholdAdmission,
    arrival_census_distribution,
    census_distribution,
    census_total_variation,
    empirical_mean_census,
    mean_utilities,
    sampled_worst_utilities,
)
from repro.utility import AdaptiveUtility, RigidUtility


@pytest.fixture(scope="module")
def run():
    load = PoissonLoad(10.0)
    proc = BirthDeathProcess(load)
    policy = ThresholdAdmission.from_utility(AdaptiveUtility())
    sim = FlowSimulator(proc, Link(12.0), policy)
    return sim.run(600.0, warmup=60.0, seed=17), load


class TestCensusDistribution:
    def test_probabilities_normalised(self, run):
        result, _ = run
        _, probs = census_distribution(result)
        assert probs.sum() == pytest.approx(1.0, abs=1e-12)
        assert np.all(probs >= 0.0)

    def test_mean_near_target(self, run):
        result, load = run
        assert empirical_mean_census(result) == pytest.approx(load.mean, abs=0.5)

    def test_total_variation_small(self, run):
        result, load = run
        assert census_total_variation(result, load) < 0.08

    def test_admitted_histogram_respects_threshold(self, run):
        result, _ = run
        values, _ = census_distribution(result, use_admitted=True)
        assert values.max() <= 12

    def test_warmup_respected(self):
        # a run whose early census is wildly off: warmup must hide it
        load = PoissonLoad(10.0)
        sim = FlowSimulator(BirthDeathProcess(load), Link(12.0), AdmitAll())
        res = sim.run(300.0, warmup=100.0, seed=23, initial_census=60)
        assert empirical_mean_census(res) == pytest.approx(load.mean, abs=1.0)


class TestMeanUtilities:
    def test_reservation_dominates_best_effort(self, run):
        result, _ = run
        be, res = mean_utilities(result, AdaptiveUtility())
        assert 0.0 < be < 1.0
        assert res >= be - 0.02  # sampling noise allowance

    def test_rigid_best_effort_matches_static_model(self, run):
        # a rigid flow's lifetime-mean utility is the fraction of its
        # lifetime with census <= C; flow-averaged this is exactly the
        # static model's B(C)
        from repro.models import VariableLoadModel

        result, load = run
        be_rigid, _ = mean_utilities(result, RigidUtility(1.0))
        model = VariableLoadModel(load, RigidUtility(1.0))
        assert be_rigid == pytest.approx(model.best_effort(result.capacity), abs=0.05)

    def test_rejects_empty_window(self):
        load = PoissonLoad(10.0)
        sim = FlowSimulator(BirthDeathProcess(load), Link(12.0))
        res = sim.run(2.0, warmup=1.99, seed=3)
        with pytest.raises(ValueError):
            mean_utilities(res, AdaptiveUtility())


class TestSampledWorstUtilities:
    def test_more_samples_lower_scores(self, run):
        result, _ = run
        be1, _ = sampled_worst_utilities(result, AdaptiveUtility(), 1, seed=1)
        be8, _ = sampled_worst_utilities(result, AdaptiveUtility(), 8, seed=1)
        assert be8 < be1

    def test_reservation_insulated_from_worst_case(self, run):
        result, _ = run
        _, res1 = sampled_worst_utilities(result, AdaptiveUtility(), 1, seed=2)
        _, res8 = sampled_worst_utilities(result, AdaptiveUtility(), 8, seed=2)
        # admitted flows see capped loads, so extra samples cost far
        # less than on the best-effort side
        be1, _ = sampled_worst_utilities(result, AdaptiveUtility(), 1, seed=2)
        be8, _ = sampled_worst_utilities(result, AdaptiveUtility(), 8, seed=2)
        assert (res1 - res8) < (be1 - be8) + 0.03
        assert res8 >= res1 - 0.08

    def test_invalid_samples(self, run):
        result, _ = run
        with pytest.raises(ValueError):
            sampled_worst_utilities(result, AdaptiveUtility(), 0)


class TestArrivalCensus:
    def test_histogram_normalised(self, run):
        result, _ = run
        _, probs = arrival_census_distribution(result)
        assert probs.sum() == pytest.approx(1.0)
