"""Simulation-vs-analytic validation: the Section 3 premise, measured.

The paper's variable-load model claims a flow's expected utility is the
size-biased census average of ``pi(C/k)``.  The simulator provides the
actual dynamics; these tests check the static model's predictions for
``B(C)`` and ``R(C)`` against long simulated runs.
"""

import pytest

from repro.loads import GeometricLoad, PoissonLoad
from repro.models import VariableLoadModel
from repro.simulation import (
    AdmitAll,
    BirthDeathProcess,
    FlowSimulator,
    Link,
    ThresholdAdmission,
    census_total_variation,
    mean_utilities,
)
from repro.utility import AdaptiveUtility, RigidUtility


def run_both_architectures(load, utility, capacity, horizon=800.0, seed=29):
    proc = BirthDeathProcess(load)
    best_effort = FlowSimulator(proc, Link(capacity), AdmitAll()).run(
        horizon, warmup=horizon / 8, seed=seed
    )
    reserved = FlowSimulator(
        proc, Link(capacity), ThresholdAdmission.from_utility(utility)
    ).run(horizon, warmup=horizon / 8, seed=seed + 1)
    return best_effort, reserved


class TestPoissonValidation:
    @pytest.fixture(scope="class")
    def setup(self):
        load = PoissonLoad(10.0)
        utility = AdaptiveUtility()
        capacity = 11.0
        model = VariableLoadModel(load, utility)
        be_run, res_run = run_both_architectures(load, utility, capacity)
        return load, utility, capacity, model, be_run, res_run

    def test_census_matches_target(self, setup):
        load, _, _, _, be_run, _ = setup
        assert census_total_variation(be_run, load) < 0.08

    def test_best_effort_utility_matches_model(self, setup):
        _, utility, capacity, model, be_run, _ = setup
        sim_be, _ = mean_utilities(be_run, utility)
        assert sim_be == pytest.approx(model.best_effort(capacity), abs=0.03)

    def test_reservation_utility_matches_model(self, setup):
        _, utility, capacity, model, _, res_run = setup
        _, sim_res = mean_utilities(res_run, utility)
        assert sim_res == pytest.approx(model.reservation(capacity), abs=0.03)

    def test_simulated_gap_sign_matches_model(self, setup):
        _, utility, capacity, model, be_run, res_run = setup
        sim_be, _ = mean_utilities(be_run, utility)
        _, sim_res = mean_utilities(res_run, utility)
        assert model.performance_gap(capacity) > 0.0
        assert sim_res > sim_be - 0.01


class TestGeometricValidation:
    def test_rigid_best_effort_matches_model(self):
        # geometric census mixes slowly; a small mean keeps it honest
        load = GeometricLoad.from_mean(6.0)
        utility = RigidUtility(1.0)
        capacity = 8.0
        model = VariableLoadModel(load, utility)
        proc = BirthDeathProcess(load)
        run = FlowSimulator(proc, Link(capacity), AdmitAll()).run(
            3000.0, warmup=600.0, seed=31
        )
        sim_be, _ = mean_utilities(run, utility)
        assert sim_be == pytest.approx(model.best_effort(capacity), abs=0.05)

    def test_adaptive_architectures_ordered(self):
        load = GeometricLoad.from_mean(6.0)
        utility = AdaptiveUtility()
        capacity = 6.0
        be_run, res_run = run_both_architectures(
            load, utility, capacity, horizon=2000.0
        )
        sim_be, _ = mean_utilities(be_run, utility)
        _, sim_res = mean_utilities(res_run, utility)
        model = VariableLoadModel(load, utility)
        # both within tolerance, and ordered as the paper requires
        assert sim_be == pytest.approx(model.best_effort(capacity), abs=0.05)
        assert sim_res >= sim_be - 0.02
