"""Tests for the vectorized ensemble engine."""

import numpy as np
import pytest

from repro import obs
from repro.errors import ModelError, SimulationBudgetError
from repro.loads import PoissonLoad
from repro.models import VariableLoadModel
from repro.simulation import (
    AdmissionPolicy,
    AdmitAll,
    BirthDeathProcess,
    EnsembleSimulator,
    FlowSimulator,
    Link,
    PoissonProcess,
    RegimeSwitchingProcess,
    ReplicationStream,
    ThresholdAdmission,
    paired_gap,
    spawn_children,
)
from repro.simulation.ensemble import _merge_results
from repro.utility import AdaptiveUtility


def small_ensemble(admission=None, **kwargs):
    return EnsembleSimulator(
        BirthDeathProcess(PoissonLoad(10.0)), Link(12.0), admission, **kwargs
    )


class TestRun:
    def test_shapes_and_padding(self):
        result = small_ensemble().run(5, 30.0, seed=1)
        assert result.replications == 5
        assert result.times.shape == result.census.shape == result.admitted.shape
        # padding is (horizon, 0, 0) beyond each row's valid prefix
        r = int(np.argmin(result.counts))
        c = int(result.counts[r])
        if c < result.times.shape[1]:
            assert result.times[r, c:].max() == result.times[r, c:].min() == 30.0
            assert result.census[r, c:].max() == 0.0
        assert result.engine == "vectorized"

    def test_reproducible(self):
        a = small_ensemble().run(4, 25.0, seed=9)
        b = small_ensemble().run(4, 25.0, seed=9)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.census, b.census)

    def test_jobs_identical_to_sequential(self):
        a = small_ensemble().run(6, 25.0, seed=5, jobs=1)
        b = small_ensemble().run(6, 25.0, seed=5, jobs=2)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.census, b.census)
        np.testing.assert_array_equal(a.admitted, b.admitted)
        np.testing.assert_array_equal(a.arrivals, b.arrivals)
        np.testing.assert_array_equal(a.admissions, b.admissions)

    def test_events_property(self):
        result = small_ensemble().run(3, 20.0, seed=2)
        np.testing.assert_array_equal(result.events, result.counts - 1)
        assert (result.events > 0).all()

    def test_mean_census_near_target(self):
        result = small_ensemble().run(16, 120.0, warmup=20.0, seed=3)
        assert result.mean_census().mean() == pytest.approx(10.0, abs=1.0)

    def test_census_distribution_normalised(self):
        result = small_ensemble().run(4, 50.0, warmup=5.0, seed=4)
        _, probs = result.census_distribution()
        assert probs.sum() == pytest.approx(1.0, abs=1e-12)

    def test_budget_error_diagnostics(self):
        with pytest.raises(SimulationBudgetError) as excinfo:
            small_ensemble().run(4, 1000.0, seed=1, max_events=64)
        err = excinfo.value
        assert err.events == 64
        assert 0.0 <= err.reached_t < err.horizon == 1000.0

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            small_ensemble().run(0, 10.0)
        with pytest.raises(ValueError):
            small_ensemble().run(2, 0.0)
        with pytest.raises(ValueError):
            small_ensemble().run(2, 10.0, warmup=10.0)
        with pytest.raises(ValueError):
            small_ensemble().run(2, 10.0, jobs=0)
        with pytest.raises(ValueError):
            EnsembleSimulator(
                BirthDeathProcess(PoissonLoad(5.0)), Link(5.0), retry_rate=-1.0
            )
        with pytest.raises(ValueError):
            EnsembleSimulator(
                BirthDeathProcess(PoissonLoad(5.0)), Link(5.0), block=0
            )
        with pytest.raises(ModelError):
            EnsembleSimulator(
                BirthDeathProcess(PoissonLoad(5.0)),
                Link(5.0),
                ThresholdAdmission(3, readmit_waiting=True),
                lost_calls_cleared=True,
            )


class TestScalarFallback:
    def test_stateful_process_falls_back(self):
        proc = RegimeSwitchingProcess(
            [(1.0, PoissonLoad(6.0)), (1.0, PoissonLoad(12.0))], seed=2
        )
        ens = EnsembleSimulator(proc, Link(10.0))
        assert ens.vectorization_fallback() == "stateful_process"
        result = ens.run(3, 15.0, seed=6)
        assert result.engine == "scalar"
        assert result.replications == 3

    def test_custom_admission_falls_back(self):
        class EveryOther(AdmissionPolicy):
            def admits(self, admitted, capacity):
                return admitted % 2 == 0

        ens = EnsembleSimulator(
            BirthDeathProcess(PoissonLoad(8.0)), Link(10.0), EveryOther()
        )
        assert ens.vectorization_fallback() == "custom_admission"
        assert ens.run(2, 10.0, seed=7).engine == "scalar"

    def test_fallback_counters_metered(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.tracing import Tracer

        obs.enable(MetricsRegistry(), Tracer())
        try:
            class Never(AdmissionPolicy):
                def admits(self, admitted, capacity):
                    return False

            EnsembleSimulator(
                BirthDeathProcess(PoissonLoad(8.0)), Link(10.0), Never()
            ).run(3, 10.0, seed=8)
            counters = obs.snapshot()["counters"]
            assert counters["ensemble.fallback.scalar"] == 3
            assert counters["ensemble.fallback.custom_admission"] == 3
        finally:
            obs.disable()

    def test_fallback_matches_vectorized_shape_contract(self):
        # the scalar path must produce the same padded layout the
        # vectorized one does (trajectory() round-trips both)
        proc = RegimeSwitchingProcess([(1.0, PoissonLoad(6.0))], seed=3)
        result = EnsembleSimulator(proc, Link(10.0)).run(2, 12.0, seed=9)
        sim = FlowSimulator(proc, Link(10.0))
        children = spawn_children(9, 2)
        for r in range(2):
            scalar = sim.run(12.0, stream=ReplicationStream(children[r]))
            tr = result.trajectory(r)
            np.testing.assert_array_equal(scalar.trajectory.times, tr.times)
            np.testing.assert_array_equal(scalar.trajectory.census, tr.census)


class TestRunUntil:
    def test_converges_and_matches_run(self):
        ens = small_ensemble()
        utility = AdaptiveUtility()
        estimate = ens.run_until(
            lambda r: r.utility_estimates(utility)[0],
            60.0,
            ci_halfwidth=0.05,
            warmup=10.0,
            seed=12,
            batch_size=4,
            min_replications=4,
            max_replications=64,
        )
        assert estimate.converged
        assert estimate.ci_halfwidth <= 0.05
        # adaptive consumption must replay exactly run(R)'s ensemble
        replay = ens.run(estimate.replications, 60.0, warmup=10.0, seed=12)
        values = replay.utility_estimates(utility)[0]
        assert estimate.mean == pytest.approx(values.mean(), rel=1e-12)

    def test_budget_exhaustion_reported(self):
        estimate = small_ensemble().run_until(
            lambda r: r.mean_census(),
            30.0,
            ci_halfwidth=1e-9,
            seed=13,
            batch_size=4,
            min_replications=4,
            max_replications=8,
        )
        assert not estimate.converged
        assert estimate.replications == 8

    def test_validation_errors(self):
        ens = small_ensemble()
        with pytest.raises(ValueError):
            ens.run_until(lambda r: r.mean_census(), 10.0, ci_halfwidth=0.0)
        with pytest.raises(ValueError):
            ens.run_until(
                lambda r: r.mean_census(), 10.0, ci_halfwidth=0.1, batch_size=0
            )
        with pytest.raises(ValueError):
            ens.run_until(
                lambda r: r.mean_census(),
                10.0,
                ci_halfwidth=0.1,
                min_replications=8,
                max_replications=4,
            )
        with pytest.raises(ValueError, match="one value per replication"):
            ens.run_until(
                lambda r: np.array([1.0]),
                10.0,
                ci_halfwidth=0.1,
                batch_size=4,
                min_replications=4,
                max_replications=8,
            )


class TestPairedGap:
    def test_crn_shares_census_trajectory(self):
        # in the basic model the census dynamics are admission-blind,
        # so CRN pairing makes the BE and RES trajectories identical
        load = PoissonLoad(10.0)
        be = EnsembleSimulator(
            BirthDeathProcess(load), Link(12.0), AdmitAll()
        ).run(6, 40.0, seed=21)
        res = EnsembleSimulator(
            BirthDeathProcess(load),
            Link(12.0),
            ThresholdAdmission(8, readmit_waiting=True),
        ).run(6, 40.0, seed=21)
        np.testing.assert_array_equal(be.times, res.times)
        np.testing.assert_array_equal(be.census, res.census)
        np.testing.assert_array_equal(
            res.admitted, np.minimum(res.census, 8.0)
        )

    def test_gap_matches_analytic_delta(self):
        load = PoissonLoad(10.0)
        utility = AdaptiveUtility()
        model = VariableLoadModel(load, utility)
        capacity = 12.0
        gap = paired_gap(
            BirthDeathProcess(load),
            Link(capacity),
            utility,
            24,
            150.0,
            warmup=25.0,
            seed=31,
        )
        summary = gap.summary()
        analytic = float(model.reservation(capacity)) - float(
            model.best_effort(capacity)
        )
        assert summary["gap"] == pytest.approx(
            analytic, abs=summary["gap_ci"] + 5e-3
        )
        assert summary["gap_ci"] < summary["best_effort_ci"]
        assert gap.gap_mean == summary["gap"]
        assert gap.gap_ci == summary["gap_ci"]

    def test_explicit_policies_respected(self):
        load = PoissonLoad(10.0)
        gap = paired_gap(
            BirthDeathProcess(load),
            Link(12.0),
            AdaptiveUtility(),
            4,
            20.0,
            seed=41,
            reservation=ThresholdAdmission(5),
        )
        assert len(gap.gap) == 4


class TestMerge:
    def test_merge_repads_to_widest(self):
        a = small_ensemble().run(2, 20.0, seed=51)
        b = small_ensemble().run(3, 20.0, seed=52)
        merged = _merge_results([a, b])
        assert merged.replications == 5
        assert merged.times.shape[1] == max(a.times.shape[1], b.times.shape[1])
        np.testing.assert_array_equal(merged.counts[:2], a.counts)
        np.testing.assert_array_equal(merged.counts[2:], b.counts)
        # re-padding keeps every valid prefix intact
        c = int(a.counts[0])
        np.testing.assert_array_equal(merged.times[0, :c], a.times[0, :c])

    def test_single_part_passthrough(self):
        part = small_ensemble().run(2, 20.0, seed=53)
        assert _merge_results([part]) is part


class TestUtilityEstimates:
    def test_best_effort_matches_analytic(self):
        load = PoissonLoad(10.0)
        utility = AdaptiveUtility()
        model = VariableLoadModel(load, utility)
        result = EnsembleSimulator(
            BirthDeathProcess(load), Link(12.0), AdmitAll()
        ).run(24, 150.0, warmup=25.0, seed=61)
        be, res = result.utility_estimates(utility)
        assert be.mean() == pytest.approx(
            float(model.best_effort(12.0)), abs=0.02
        )
        # admit-all: every flow is admitted, so both estimates agree
        np.testing.assert_allclose(res, be, rtol=1e-12)

    def test_lost_calls_cleared_matches_erlang_b(self):
        # Poisson arrivals + exponential holding + threshold C with
        # clearing is M/M/C/C: the pooled blocking fraction must land
        # on the Erlang-B formula
        from repro.models.erlang import erlang_b

        offered, circuits = 5.0, 7
        result = EnsembleSimulator(
            PoissonProcess(offered),
            Link(float(circuits)),
            ThresholdAdmission(circuits),
            lost_calls_cleared=True,
        ).run(16, 300.0, warmup=30.0, seed=71)
        blocking = 1.0 - result.admissions.sum() / result.arrivals.sum()
        assert blocking == pytest.approx(
            erlang_b(circuits, offered), abs=0.015
        )

    def test_lost_calls_cleared_uses_arrival_fraction(self):
        load = PoissonLoad(10.0)
        result = EnsembleSimulator(
            BirthDeathProcess(load),
            Link(12.0),
            ThresholdAdmission(6),
            lost_calls_cleared=True,
        ).run(8, 60.0, warmup=10.0, seed=62)
        assert result.lost_calls_cleared
        _, res = result.utility_estimates(AdaptiveUtility())
        # rejection fraction must bite: strictly below the admitted-only
        # average (threshold 6 under offered mean 10 rejects plenty)
        assert (result.admissions < result.arrivals).all()
        assert np.all(res < 1.0)
