"""Edge-case coverage for the measurement helpers and event engine."""

import numpy as np
import pytest

from repro.loads import PoissonLoad
from repro.simulation import (
    AdmitAll,
    BirthDeathProcess,
    DeterministicHolding,
    FlowSimulator,
    GeneralHoldingSimulator,
    Link,
    census_distribution,
    mean_utilities,
)
from repro.utility import AdaptiveUtility, RigidUtility


class TestMeasurementIdentities:
    @pytest.fixture(scope="class")
    def run(self):
        proc = BirthDeathProcess(PoissonLoad(10.0))
        return FlowSimulator(proc, Link(12.0), AdmitAll()).run(
            300.0, warmup=30.0, seed=41
        )

    def test_admit_all_architectures_coincide(self, run):
        # with no admission control the two accountings are identical
        be, res = mean_utilities(run, AdaptiveUtility())
        assert res == pytest.approx(be, abs=1e-12)

    def test_rigid_utility_is_a_probability(self, run):
        # rigid per-flow scores are time-fractions, hence in [0, 1]
        be, _ = mean_utilities(run, RigidUtility(1.0))
        assert 0.0 <= be <= 1.0

    def test_census_distribution_support_is_integers(self, run):
        values, probs = census_distribution(run)
        assert np.allclose(values, np.round(values))
        assert probs.min() >= 0.0

    def test_flow_conservation(self, run):
        # every completed flow departed after arriving
        mask = run.completed_mask()
        assert np.all(
            run.flows.departure[mask] >= run.flows.arrival[mask]
        )


class TestCalendarEngineEdges:
    def test_single_flow_at_a_time(self):
        # arrival rate so low the system is almost always empty
        sim = GeneralHoldingSimulator(
            0.05, DeterministicHolding(1.0), Link(5.0)
        )
        res = sim.run(400.0, warmup=40.0, seed=43)
        values, probs = census_distribution(res)
        # overwhelmingly in state 0
        state0 = probs[np.where(values == 0)[0]]
        assert state0.size == 1 and state0[0] > 0.9

    def test_deterministic_holding_exact_durations(self):
        sim = GeneralHoldingSimulator(
            5.0, DeterministicHolding(2.0), Link(50.0)
        )
        res = sim.run(100.0, warmup=10.0, seed=45)
        mask = res.completed_mask()
        durations = res.flows.departure[mask] - res.flows.arrival[mask]
        np.testing.assert_allclose(durations, 2.0)

    def test_trajectory_times_sorted(self):
        sim = GeneralHoldingSimulator(
            10.0, DeterministicHolding(0.5), Link(20.0)
        )
        res = sim.run(50.0, seed=47)
        assert np.all(np.diff(res.trajectory.times) >= 0.0)
