"""Tests for the streaming ensemble statistics."""

import math

import numpy as np
import pytest

from repro.simulation import AdaptiveEstimate, RunningStat


class TestRunningStat:
    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        values = rng.normal(2.0, 1.5, size=257)
        stat = RunningStat()
        stat.push(values)
        assert stat.count == 257
        assert stat.mean == pytest.approx(values.mean(), rel=1e-12)
        assert stat.variance == pytest.approx(values.var(ddof=1), rel=1e-10)
        assert stat.sem == pytest.approx(
            values.std(ddof=1) / math.sqrt(257), rel=1e-10
        )

    def test_incremental_equals_batch(self):
        rng = np.random.default_rng(4)
        values = rng.exponential(size=100)
        one = RunningStat()
        one.push(values)
        many = RunningStat()
        for v in values:
            many.push(v)
        assert many.mean == pytest.approx(one.mean, rel=1e-12)
        assert many.variance == pytest.approx(one.variance, rel=1e-10)

    def test_merge_equals_pooled(self):
        rng = np.random.default_rng(5)
        a_vals, b_vals = rng.normal(size=40), rng.normal(loc=3.0, size=17)
        a, b, pooled = RunningStat(), RunningStat(), RunningStat()
        a.push(a_vals)
        b.push(b_vals)
        pooled.push(np.concatenate([a_vals, b_vals]))
        a.merge(b)
        assert a.count == pooled.count
        assert a.mean == pytest.approx(pooled.mean, rel=1e-12)
        assert a.variance == pytest.approx(pooled.variance, rel=1e-10)

    def test_merge_empty_is_noop(self):
        stat = RunningStat()
        stat.push(np.array([1.0, 2.0]))
        stat.merge(RunningStat())
        assert stat.count == 2
        assert stat.mean == pytest.approx(1.5)

    def test_degenerate_counts(self):
        stat = RunningStat()
        assert math.isnan(stat.variance)
        assert math.isinf(stat.ci_halfwidth())
        stat.push(1.0)
        assert math.isnan(stat.variance)
        assert math.isinf(stat.ci_halfwidth())
        stat.push(2.0)
        assert math.isfinite(stat.ci_halfwidth())

    def test_ci_matches_student_t(self):
        # n = 4, sample variance 1 -> halfwidth = t_{0.975, 3} / 2
        stat = RunningStat()
        stat.push(np.array([-1.0, 0.0, 1.0, 0.0]))
        sem = math.sqrt(stat.variance / 4)
        assert stat.ci_halfwidth(0.95) == pytest.approx(3.182446 * sem, rel=1e-5)
        assert stat.ci_halfwidth(0.99) > stat.ci_halfwidth(0.95)


class TestAdaptiveEstimate:
    def test_fields(self):
        est = AdaptiveEstimate(
            mean=0.5,
            ci_halfwidth=0.01,
            level=0.95,
            replications=16,
            converged=True,
            target=0.02,
        )
        assert est.converged
        assert est.ci_halfwidth <= est.target

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            AdaptiveEstimate(
                mean=0.0,
                ci_halfwidth=0.1,
                level=0.95,
                replications=2,
                converged=False,
                target=0.0,
            )
