"""Property tests: ensemble trajectories == scalar-stream trajectories.

The ensemble engine's whole contract is that vectorization changes
*nothing*: replication ``r`` of an ensemble is event-for-event
identical to ``FlowSimulator.run(stream=...)`` on seed child ``r``.
These hypothesis tests drive both engines over randomly drawn
configurations (process family, admission policy, retry/readmit/
clearing modes, horizons, seeds) and require bitwise-equal
trajectories and window counters every time.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loads import PoissonLoad
from repro.simulation import (
    AdmitAll,
    BirthDeathProcess,
    EnsembleSimulator,
    FlowSimulator,
    Link,
    ParetoBatchProcess,
    PoissonProcess,
    ReplicationStream,
    ThresholdAdmission,
    spawn_children,
)

CAPACITY = 10.0


def _process(name):
    if name == "bd":
        return BirthDeathProcess(PoissonLoad(8.0))
    if name == "poisson":
        return PoissonProcess(7.0)
    return ParetoBatchProcess(3.0, shape=1.7)


def _policy(name):
    if name == "admit_all":
        return AdmitAll()
    if name == "threshold":
        return ThresholdAdmission(6)
    return ThresholdAdmission(6, readmit_waiting=True)


def _assert_parity(process, admission, *, horizon, seed, reps, **kwargs):
    ensemble = EnsembleSimulator(process, Link(CAPACITY), admission, **kwargs)
    result = ensemble.run(reps, horizon, seed=seed)
    assert result.engine == "vectorized"
    scalar = FlowSimulator(process, Link(CAPACITY), admission, **kwargs)
    for r, child in enumerate(spawn_children(seed, reps)):
        run = scalar.run(horizon, stream=ReplicationStream(child))
        trajectory = result.trajectory(r)
        np.testing.assert_array_equal(run.trajectory.times, trajectory.times)
        np.testing.assert_array_equal(run.trajectory.census, trajectory.census)
        np.testing.assert_array_equal(
            run.trajectory.admitted, trajectory.admitted
        )
        assert run.events == result.events[r]


class TestTrajectoryParity:
    @given(
        process=st.sampled_from(["bd", "poisson", "pareto"]),
        policy=st.sampled_from(["admit_all", "threshold", "readmit"]),
        horizon=st.floats(min_value=2.0, max_value=30.0),
        seed=st.integers(min_value=0, max_value=2**31),
        reps=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_processes_and_policies(
        self, process, policy, horizon, seed, reps
    ):
        _assert_parity(
            _process(process),
            _policy(policy),
            horizon=horizon,
            seed=seed,
            reps=reps,
        )

    @given(
        retry_rate=st.floats(min_value=0.05, max_value=1.0),
        horizon=st.floats(min_value=2.0, max_value=25.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=10, deadline=None)
    def test_retry_dynamics(self, retry_rate, horizon, seed):
        _assert_parity(
            BirthDeathProcess(PoissonLoad(8.0)),
            ThresholdAdmission(6),
            horizon=horizon,
            seed=seed,
            reps=3,
            retry_rate=retry_rate,
        )

    @given(
        process=st.sampled_from(["bd", "pareto"]),
        horizon=st.floats(min_value=2.0, max_value=25.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=10, deadline=None)
    def test_lost_calls_cleared(self, process, horizon, seed):
        _assert_parity(
            _process(process),
            ThresholdAdmission(6),
            horizon=horizon,
            seed=seed,
            reps=3,
            lost_calls_cleared=True,
        )

    @given(
        block=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=10, deadline=None)
    def test_parity_holds_at_any_block_size(self, block, seed):
        # block size sets the refill cadence (and therefore the draw
        # values), so both engines must agree at *every* block size,
        # including tiny ones that force refills mid-run
        process = BirthDeathProcess(PoissonLoad(8.0))
        result = EnsembleSimulator(process, Link(CAPACITY), block=block).run(
            3, 15.0, seed=seed
        )
        scalar = FlowSimulator(process, Link(CAPACITY))
        for r, child in enumerate(spawn_children(seed, 3)):
            run = scalar.run(
                15.0, stream=ReplicationStream(child, block=block)
            )
            trajectory = result.trajectory(r)
            np.testing.assert_array_equal(
                run.trajectory.times, trajectory.times
            )
            np.testing.assert_array_equal(
                run.trajectory.census, trajectory.census
            )
