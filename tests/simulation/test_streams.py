"""Tests for the replication stream protocol."""

import numpy as np
import pytest

from repro.loads import PoissonLoad
from repro.simulation import (
    AdmitAll,
    BirthDeathProcess,
    FlowSimulator,
    GeneratorDraws,
    Link,
    ParetoBatchProcess,
    ReplicationStream,
    ThresholdAdmission,
    spawn_children,
    spawn_streams,
)
from repro.simulation.streams import BatchedStreams, event_layout


class TestSpawn:
    def test_children_deterministic(self):
        a = spawn_children(42, 5)
        b = spawn_children(42, 5)
        assert [c.entropy for c in a] == [c.entropy for c in b]
        assert [c.spawn_key for c in a] == [c.spawn_key for c in b]

    def test_prefix_stable_across_counts(self):
        # child r depends only on (seed, r): growing an ensemble keeps
        # every existing replication's stream
        small = spawn_children(7, 3)
        large = spawn_children(7, 8)
        assert [c.spawn_key for c in small] == [c.spawn_key for c in large[:3]]

    def test_negative_replications_rejected(self):
        with pytest.raises(ValueError):
            spawn_children(1, -1)

    def test_spawn_streams_counts(self):
        streams = spawn_streams(3, 4, block=64)
        assert len(streams) == 4
        assert all(s.block == 64 for s in streams)


class TestEventLayout:
    def test_admission_independent(self):
        # CRN pairing requires both architectures to consume identical
        # draws, so the layout may depend only on the process
        proc = BirthDeathProcess(PoissonLoad(5.0))
        layouts = {
            tuple(sorted(event_layout(proc, adm).items()))
            for adm in (
                AdmitAll(),
                ThresholdAdmission(3),
                ThresholdAdmission(3, readmit_waiting=True),
            )
        }
        assert len(layouts) == 1

    def test_unit_batch_layout(self):
        layout = event_layout(BirthDeathProcess(PoissonLoad(5.0)), AdmitAll())
        assert layout["uniforms"] == 3
        assert layout["batch_slot"] is None
        assert layout["promote_slot"] == 2

    def test_batch_process_layout(self):
        layout = event_layout(ParetoBatchProcess(2.0), AdmitAll())
        assert layout["uniforms"] == 4
        assert layout["batch_slot"] == 3


class TestReplicationStream:
    def test_requires_bind(self):
        stream = ReplicationStream(1)
        with pytest.raises(RuntimeError, match="bind"):
            stream.waiting_time(1.0)

    def test_rebind_after_start_rejected(self):
        proc = BirthDeathProcess(PoissonLoad(5.0))
        stream = ReplicationStream(1)
        stream.bind(proc, AdmitAll())
        stream.waiting_time(1.0)
        with pytest.raises(RuntimeError, match="single-use"):
            stream.bind(ParetoBatchProcess(2.0), AdmitAll())

    def test_rebind_same_layout_allowed(self):
        proc = BirthDeathProcess(PoissonLoad(5.0))
        stream = ReplicationStream(1)
        stream.bind(proc, AdmitAll())
        stream.waiting_time(1.0)
        stream.bind(proc, ThresholdAdmission(3))  # same layout: fine

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            ReplicationStream(1, block=0)

    def test_waiting_time_matches_raw_generator(self):
        # the stream must serve the generator's own standard
        # exponentials, scaled exactly as z * (1/total)
        child = spawn_children(9, 1)[0]
        stream = ReplicationStream(child, block=8)
        stream.bind(BirthDeathProcess(PoissonLoad(5.0)), AdmitAll())
        raw = np.random.default_rng(child).standard_exponential(8)
        got = [stream.waiting_time(2.0) for _ in range(8)]
        np.testing.assert_array_equal(got, raw * (1.0 / 2.0))

    def test_pick_in_range_and_deterministic(self):
        child = spawn_children(9, 1)[0]
        stream = ReplicationStream(child, block=8)
        stream.bind(BirthDeathProcess(PoissonLoad(5.0)), AdmitAll())
        stream.waiting_time(1.0)
        stream.classify(1.0)
        for n in (1, 2, 1000):
            assert 0 <= stream.pick(n) < n
            assert 0 <= stream.promote_pick(n) < n


class TestGeneratorDraws:
    def test_matches_legacy_sequence(self):
        # GeneratorDraws must reproduce the historical per-call RNG
        # usage bit for bit, so pre-stream seeds stay valid
        draws = GeneratorDraws(np.random.default_rng(5))
        ref = np.random.default_rng(5)
        assert draws.waiting_time(3.0) == ref.exponential(1.0 / 3.0)
        assert draws.classify(3.0) == ref.random() * 3.0
        assert draws.pick(7) == int(ref.integers(7))

    def test_seeded_run_unchanged_by_stream_refactor(self):
        # two identically seeded runs stay identical (regression guard
        # for the draw-source indirection in FlowSimulator.run)
        sim = FlowSimulator(
            BirthDeathProcess(PoissonLoad(8.0)), Link(10.0), ThresholdAdmission(7)
        )
        r1 = sim.run(30.0, seed=77)
        r2 = sim.run(30.0, seed=77)
        np.testing.assert_array_equal(r1.trajectory.times, r2.trajectory.times)


class TestBatchedStreams:
    def test_bitwise_match_with_scalar_streams(self):
        # row r of the batched buffers must serve the same values the
        # scalar stream for child r serves, in the same event order
        proc = BirthDeathProcess(PoissonLoad(5.0))
        children = spawn_children(3, 4)
        batched = BatchedStreams(children, proc, AdmitAll(), block=16)
        batched.refill()
        uniforms = batched.uniforms_per_event
        for r, child in enumerate(children):
            stream = ReplicationStream(child, block=16)
            stream.bind(proc, AdmitAll())
            for event in range(16):
                z = stream.waiting_time(1.0)
                assert batched.exp[r, event] == z
                draw = stream.classify(1.0)
                assert batched.uni[r, event * uniforms] == draw

    def test_compact_keeps_survivor_rows(self):
        proc = BirthDeathProcess(PoissonLoad(5.0))
        batched = BatchedStreams(spawn_children(3, 4), proc, AdmitAll(), block=8)
        batched.refill()
        exp_before = batched.exp.copy()
        live = np.array([True, False, True, False])
        batched.compact(live)
        np.testing.assert_array_equal(batched.exp, exp_before[live])
        batched.refill()  # survivors refill from their own generators
        assert batched.exp.shape == (2, 8)

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            BatchedStreams(
                spawn_children(1, 1),
                BirthDeathProcess(PoissonLoad(5.0)),
                AdmitAll(),
                block=0,
            )
