"""Tests for the M/G/inf engine and the insensitivity property."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.loads import PoissonLoad
from repro.simulation import (
    DeterministicHolding,
    ExponentialHolding,
    GeneralHoldingSimulator,
    Link,
    LogNormalHolding,
    ParetoHolding,
    ThresholdAdmission,
    census_total_variation,
    empirical_mean_census,
    mean_utilities,
)
from repro.utility import AdaptiveUtility


class TestHoldingDistributions:
    @pytest.mark.parametrize(
        "holding",
        [
            ExponentialHolding(2.0),
            DeterministicHolding(2.0),
            ParetoHolding(2.0, t_min=1.0),
            LogNormalHolding(2.0, 1.0),
        ],
        ids=["exp", "det", "pareto", "lognormal"],
    )
    def test_sample_mean_matches(self, holding):
        rng = np.random.default_rng(1)
        draws = holding.sample(rng, 100_000)
        assert np.all(draws > 0.0)
        tol = 0.15 if isinstance(holding, ParetoHolding) else 0.05
        assert float(draws.mean()) == pytest.approx(holding.mean, rel=tol)

    def test_pareto_mean_formula(self):
        assert ParetoHolding(1.8, t_min=0.8 / 1.8).mean == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialHolding(0.0)
        with pytest.raises(ValueError):
            ParetoHolding(1.0)
        with pytest.raises(ValueError):
            LogNormalHolding(1.0, 0.0)
        with pytest.raises(ValueError):
            DeterministicHolding(-1.0)


class TestInsensitivity:
    """Poisson census regardless of the holding-time law."""

    @pytest.mark.parametrize(
        "holding,horizon",
        [
            (ExponentialHolding(1.0), 800.0),
            (DeterministicHolding(1.0), 800.0),
            (LogNormalHolding(1.0, 1.2), 1000.0),
            (ParetoHolding(1.8, t_min=0.8 / 1.8), 6000.0),  # slow mixing
        ],
        ids=["exp", "det", "lognormal", "pareto"],
    )
    def test_census_is_poisson(self, holding, horizon):
        rate = 20.0
        sim = GeneralHoldingSimulator(rate, holding, Link(25.0))
        res = sim.run(horizon, warmup=horizon / 4, seed=3)
        target = PoissonLoad(rate * holding.mean)
        assert empirical_mean_census(res) == pytest.approx(target.mean, abs=1.2)
        assert census_total_variation(res, target) < 0.06

    def test_mean_census_prediction(self):
        sim = GeneralHoldingSimulator(
            8.0, DeterministicHolding(2.5), Link(30.0)
        )
        assert sim.mean_census == 20.0


class TestWithAdmission:
    def test_threshold_respected(self):
        sim = GeneralHoldingSimulator(
            20.0,
            LogNormalHolding(1.0, 1.0),
            Link(18.0),
            ThresholdAdmission(18),
        )
        res = sim.run(400.0, warmup=40.0, seed=7)
        assert res.trajectory.admitted.max() <= 18

    def test_utilities_match_static_model(self):
        # insensitivity extends to the utility comparison: the static
        # model's B/R (built on the Poisson census) hold under
        # non-exponential holding too
        from repro.models import VariableLoadModel

        rate, capacity = 20.0, 22.0
        holding = DeterministicHolding(1.0)
        utility = AdaptiveUtility()
        model = VariableLoadModel(PoissonLoad(rate), utility)
        be_run = GeneralHoldingSimulator(rate, holding, Link(capacity)).run(
            600.0, warmup=60.0, seed=9
        )
        sim_be, _ = mean_utilities(be_run, utility)
        assert sim_be == pytest.approx(model.best_effort(capacity), abs=0.03)

    def test_invalid_construction(self):
        with pytest.raises(ModelError):
            GeneralHoldingSimulator(0.0, ExponentialHolding(1.0), Link(5.0))

    def test_invalid_run_arguments(self):
        sim = GeneralHoldingSimulator(5.0, ExponentialHolding(1.0), Link(5.0))
        with pytest.raises(ValueError):
            sim.run(0.0)
        with pytest.raises(ModelError):
            sim.run(1000.0, max_events=10)
