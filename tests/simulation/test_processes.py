"""Tests for the demand processes."""

import numpy as np
import pytest

from repro.loads import GeometricLoad, PoissonLoad
from repro.simulation import BirthDeathProcess, ParetoBatchProcess, PoissonProcess


class TestBirthDeathProcess:
    def test_poisson_target_gives_constant_birth_rate(self):
        # lambda_k = mu (k+1) P(k+1)/P(k) = mu * nu for Poisson
        proc = BirthDeathProcess(PoissonLoad(9.0), mu=2.0)
        rates = [proc.arrival_rate(k) for k in (0, 3, 9, 20)]
        assert all(r == pytest.approx(18.0, rel=1e-9) for r in rates)

    def test_geometric_target_gives_linear_birth_rate(self):
        load = GeometricLoad.from_mean(9.0)
        proc = BirthDeathProcess(load, mu=1.0)
        # lambda_k = mu (k+1) q
        for k in (0, 4, 10):
            assert proc.arrival_rate(k) == pytest.approx((k + 1) * load.ratio)

    def test_detailed_balance(self):
        # P(k) lambda_k == P(k+1) mu (k+1): the stationarity identity
        load = GeometricLoad.from_mean(6.0)
        proc = BirthDeathProcess(load, mu=1.5)
        for k in (0, 2, 7, 15):
            lhs = load.pmf(k) * proc.arrival_rate(k)
            rhs = load.pmf(k + 1) * proc.departure_rate(k + 1)
            assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_reflecting_cap(self):
        proc = BirthDeathProcess(PoissonLoad(5.0), census_cap=40)
        assert proc.arrival_rate(40) == 0.0
        assert proc.arrival_rate(39) > 0.0

    def test_death_rate_zero_at_support_floor(self):
        from repro.loads import AlgebraicLoad

        load = AlgebraicLoad.from_mean(3.0, 6.0)
        proc = BirthDeathProcess(load)
        assert proc.departure_rate(1) == 0.0  # confined to k >= 1
        assert proc.departure_rate(2) == pytest.approx(2.0)

    def test_batch_size_is_one(self):
        proc = BirthDeathProcess(PoissonLoad(5.0))
        assert proc.batch_size(np.random.default_rng(0)) == 1

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            BirthDeathProcess(PoissonLoad(5.0), mu=0.0)


class TestPoissonProcess:
    def test_rates(self):
        proc = PoissonProcess(12.0, mu=2.0)
        assert proc.arrival_rate(100) == 12.0
        assert proc.departure_rate(5) == 10.0
        assert proc.mean_census == 6.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PoissonProcess(0.0)
        with pytest.raises(ValueError):
            PoissonProcess(1.0, mu=-1.0)


class TestParetoBatchProcess:
    def test_batch_sizes_heavy_tailed(self):
        proc = ParetoBatchProcess(1.0, shape=1.3)
        rng = np.random.default_rng(5)
        batches = np.array([proc.batch_size(rng) for _ in range(20_000)])
        assert batches.min() >= 1
        # a shape-1.3 Pareto routinely produces very large batches
        assert batches.max() > 50
        assert np.mean(batches) > 2.0

    def test_larger_shape_means_smaller_batches(self):
        rng1 = np.random.default_rng(1)
        rng2 = np.random.default_rng(1)
        light = ParetoBatchProcess(1.0, shape=5.0)
        heavy = ParetoBatchProcess(1.0, shape=1.2)
        mean_light = np.mean([light.batch_size(rng1) for _ in range(5000)])
        mean_heavy = np.mean([heavy.batch_size(rng2) for _ in range(5000)])
        assert mean_heavy > mean_light

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            ParetoBatchProcess(1.0, shape=1.0)
