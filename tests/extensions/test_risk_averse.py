"""Tests for the risk-averse scoring extension."""

import pytest

from repro.extensions import RiskAverseModel
from repro.models import SamplingModel, VariableLoadModel


class TestBlending:
    def test_zero_aversion_is_basic_model(self, geometric_load, adaptive):
        risk = RiskAverseModel(geometric_load, adaptive, samples=8, aversion=0.0)
        base = VariableLoadModel(geometric_load, adaptive)
        for c in (6.0, 12.0, 24.0):
            assert risk.best_effort(c) == pytest.approx(base.best_effort(c), abs=1e-10)
            assert risk.reservation(c) == pytest.approx(base.reservation(c), abs=1e-10)

    def test_full_aversion_is_sampling_model(self, geometric_load, adaptive):
        risk = RiskAverseModel(geometric_load, adaptive, samples=8, aversion=1.0)
        sampled = SamplingModel(geometric_load, adaptive, 8)
        for c in (6.0, 12.0):
            assert risk.best_effort(c) == pytest.approx(
                sampled.best_effort(c), abs=1e-10
            )

    def test_blend_is_convex_combination(self, geometric_load, adaptive):
        c = 12.0
        base = VariableLoadModel(geometric_load, adaptive).best_effort(c)
        worst = SamplingModel(geometric_load, adaptive, 8).best_effort(c)
        risk = RiskAverseModel(
            geometric_load, adaptive, samples=8, aversion=0.3
        ).best_effort(c)
        assert risk == pytest.approx(0.7 * base + 0.3 * worst, abs=1e-10)

    def test_invalid_aversion(self, geometric_load, adaptive):
        with pytest.raises(ValueError):
            RiskAverseModel(geometric_load, adaptive, aversion=1.5)


class TestRiskAmplifiesTheCase:
    def test_gap_grows_with_aversion(self, geometric_load, adaptive):
        c = 12.0
        gaps = [
            RiskAverseModel(
                geometric_load, adaptive, samples=8, aversion=w
            ).performance_gap(c)
            for w in (0.0, 0.5, 1.0)
        ]
        assert gaps[0] < gaps[1] < gaps[2]

    def test_bandwidth_gap_grows_with_aversion(self, geometric_load, adaptive):
        c = 12.0
        low = RiskAverseModel(geometric_load, adaptive, samples=8, aversion=0.1)
        high = RiskAverseModel(geometric_load, adaptive, samples=8, aversion=0.9)
        assert high.bandwidth_gap(c) > low.bandwidth_gap(c)

    def test_reservation_still_dominates(self, geometric_load, adaptive):
        m = RiskAverseModel(geometric_load, adaptive, samples=8, aversion=0.6)
        for c in (6.0, 12.0, 30.0):
            assert m.reservation(c) >= m.best_effort(c) - 1e-10

    def test_bandwidth_gap_solves_blended_equation(self, geometric_load, adaptive):
        m = RiskAverseModel(geometric_load, adaptive, samples=4, aversion=0.5)
        c = 10.0
        gap = m.bandwidth_gap(c)
        assert gap > 0.0
        assert m.best_effort(c + gap) == pytest.approx(m.reservation(c), abs=1e-6)

    def test_k_max_shared(self, geometric_load, adaptive):
        m = RiskAverseModel(geometric_load, adaptive, samples=4, aversion=0.5)
        base = VariableLoadModel(geometric_load, adaptive)
        assert m.k_max(15.0) == base.k_max(15.0)
