"""Tests for the heterogeneous-flows extension."""

import numpy as np
import pytest

from repro.extensions import MixtureUtility, ScaledUtility
from repro.models import VariableLoadModel
from repro.utility import (
    AdaptiveUtility,
    ExponentialElasticUtility,
    PiecewiseLinearUtility,
    RigidUtility,
)


class TestScaledUtility:
    def test_rescaling_identity(self):
        base = AdaptiveUtility()
        scaled = ScaledUtility(base, 2.0)
        for b in (0.5, 1.0, 4.0):
            assert scaled.value(b) == base.value(b / 2.0)

    def test_rigid_threshold_scales(self):
        scaled = ScaledUtility(RigidUtility(1.0), 3.0)
        assert scaled.value(2.9) == 0.0
        assert scaled.value(3.0) == 1.0

    def test_breakpoints_scale(self):
        scaled = ScaledUtility(PiecewiseLinearUtility(0.5), 2.0)
        assert scaled.breakpoints() == (1.0, 2.0)

    def test_derivative_chain_rule(self):
        base = AdaptiveUtility()
        scaled = ScaledUtility(base, 4.0)
        b = 2.0
        assert scaled.derivative(b) == pytest.approx(base.derivative(0.5) / 4.0)

    def test_vectorised_matches_scalar(self):
        scaled = ScaledUtility(AdaptiveUtility(), 1.7)
        bs = np.array([0.0, 0.5, 1.7, 5.0])
        np.testing.assert_allclose(
            scaled(bs), [scaled.value(float(b)) for b in bs], atol=1e-15
        )

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ScaledUtility(AdaptiveUtility(), 0.0)

    def test_scaled_population_needs_more_capacity(self, geometric_load):
        # doubling every flow's demand halves effective capacity
        unit = VariableLoadModel(geometric_load, RigidUtility(1.0))
        double = VariableLoadModel(geometric_load, ScaledUtility(RigidUtility(1.0), 2.0))
        assert double.best_effort(20.0) == pytest.approx(unit.best_effort(10.0))


class TestMixtureUtility:
    def test_weighted_average(self):
        mix = MixtureUtility([(1.0, RigidUtility(1.0)), (3.0, AdaptiveUtility())])
        b = 0.8
        expected = 0.25 * RigidUtility(1.0).value(b) + 0.75 * AdaptiveUtility().value(b)
        assert mix.value(b) == pytest.approx(expected)

    def test_weights_normalised(self):
        mix = MixtureUtility([(2.0, AdaptiveUtility()), (2.0, RigidUtility(1.0))])
        assert mix.weights == (0.5, 0.5)

    def test_still_a_valid_utility(self):
        mix = MixtureUtility([(1.0, RigidUtility(1.0)), (1.0, AdaptiveUtility())])
        assert mix.value(0.0) == 0.0
        assert mix.value(1e6) == pytest.approx(1.0, abs=1e-4)
        bs = np.linspace(0.0, 10.0, 200)
        assert np.all(np.diff(mix(bs)) >= -1e-12)

    def test_breakpoints_union(self):
        mix = MixtureUtility(
            [(1.0, RigidUtility(2.0)), (1.0, PiecewiseLinearUtility(0.5))]
        )
        assert mix.breakpoints() == (0.5, 1.0, 2.0)

    def test_empty_and_bad_weights(self):
        with pytest.raises(ValueError):
            MixtureUtility([])
        with pytest.raises(ValueError):
            MixtureUtility([(0.0, AdaptiveUtility())])

    def test_heterogeneous_population_in_model(self, geometric_load):
        # a rigid/elastic mixture behaves between its components
        rigid_only = VariableLoadModel(geometric_load, RigidUtility(1.0))
        mix = VariableLoadModel(
            geometric_load,
            MixtureUtility(
                [(0.5, RigidUtility(1.0)), (0.5, ExponentialElasticUtility())]
            ),
        )
        c = geometric_load.mean
        assert mix.best_effort(c) > rigid_only.best_effort(c)

    def test_mixture_gap_between_component_gaps(self, geometric_load):
        c = geometric_load.mean
        rigid_gap = VariableLoadModel(geometric_load, RigidUtility(1.0)).bandwidth_gap(c)
        adaptive_gap = VariableLoadModel(
            geometric_load, AdaptiveUtility()
        ).bandwidth_gap(c)
        mix_gap = VariableLoadModel(
            geometric_load,
            MixtureUtility([(0.5, RigidUtility(1.0)), (0.5, AdaptiveUtility())]),
        ).bandwidth_gap(c)
        assert adaptive_gap < mix_gap < rigid_gap
