"""Tests for the nonstationary (mixture) load extension."""

import numpy as np
import pytest

from repro.extensions import MixtureLoad
from repro.loads import AlgebraicLoad, GeometricLoad, PoissonLoad
from repro.models import RetryingModel, VariableLoadModel
from repro.utility import AdaptiveUtility


@pytest.fixture
def day_night():
    """A diurnal pattern: busy mean-20 regime 1/3 of the time."""
    return MixtureLoad(
        [(2.0, PoissonLoad(8.0)), (1.0, PoissonLoad(20.0))]
    )


class TestMixtureLoad:
    def test_pmf_is_weighted_sum(self, day_night):
        for k in (0, 5, 12, 25):
            expected = (2 / 3) * PoissonLoad(8.0).pmf(k) + (1 / 3) * PoissonLoad(
                20.0
            ).pmf(k)
            assert day_night.pmf(k) == pytest.approx(expected)

    def test_mean_is_weighted(self, day_night):
        assert day_night.mean == pytest.approx((2 / 3) * 8.0 + (1 / 3) * 20.0)

    def test_sf_and_mean_tail_weighted(self, day_night):
        for k in (3, 10, 22):
            assert day_night.sf(k) == pytest.approx(
                (2 / 3) * PoissonLoad(8.0).sf(k) + (1 / 3) * PoissonLoad(20.0).sf(k)
            )
        assert day_night.mean_tail(10) == pytest.approx(
            (2 / 3) * PoissonLoad(8.0).mean_tail(10)
            + (1 / 3) * PoissonLoad(20.0).mean_tail(10)
        )

    def test_pmf_array_matches_scalar(self, day_night):
        ks = np.arange(0, 40, dtype=float)
        np.testing.assert_allclose(
            day_night.pmf_array(ks), [day_night.pmf(int(k)) for k in ks], rtol=1e-12
        )

    def test_support_min_is_minimum(self):
        mix = MixtureLoad(
            [(1.0, AlgebraicLoad.from_mean(3.0, 10.0)), (1.0, PoissonLoad(5.0))]
        )
        assert mix.support_min == 0

    def test_rescaled_preserves_shape(self, day_night):
        scaled = day_night.rescaled(2.0 * day_night.mean)
        assert scaled.mean == pytest.approx(2.0 * day_night.mean)
        # regime ratio preserved
        m1, m2 = (load.mean for load in scaled.components)
        assert m2 / m1 == pytest.approx(20.0 / 8.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            MixtureLoad([])
        with pytest.raises(ValueError):
            MixtureLoad([(-1.0, PoissonLoad(5.0))])


class TestMixtureInModels:
    def test_variable_load_model_runs(self, day_night):
        m = VariableLoadModel(day_night, AdaptiveUtility())
        c = day_night.mean
        assert 0.0 < m.best_effort(c) <= m.reservation(c) <= 1.0
        assert m.bandwidth_gap(c) >= 0.0

    def test_variance_hurts_best_effort(self):
        # same mean, more regime variance -> lower best-effort utility
        steady = PoissonLoad(12.0)
        mixed = MixtureLoad([(1.0, PoissonLoad(4.0)), (1.0, PoissonLoad(20.0))])
        u = AdaptiveUtility()
        c = 12.0
        assert VariableLoadModel(mixed, u).best_effort(c) < VariableLoadModel(
            steady, u
        ).best_effort(c)

    def test_variance_widens_the_gap(self):
        steady = PoissonLoad(12.0)
        mixed = MixtureLoad([(1.0, PoissonLoad(4.0)), (1.0, PoissonLoad(20.0))])
        u = AdaptiveUtility()
        c = 12.0
        assert VariableLoadModel(mixed, u).performance_gap(c) > VariableLoadModel(
            steady, u
        ).performance_gap(c)

    def test_retrying_model_accepts_mixture(self, day_night):
        m = RetryingModel(day_night, AdaptiveUtility(), alpha=0.1)
        c = 2.5 * day_night.mean
        assert m.reservation(c) > 0.0

    def test_geometric_mixture_continuous_pmf(self):
        mix = MixtureLoad(
            [(1.0, GeometricLoad.from_mean(5.0)), (1.0, GeometricLoad.from_mean(15.0))]
        )
        assert mix.continuous_pmf(7.0) > 0.0
