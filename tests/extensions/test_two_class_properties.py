"""Property-based tests for the exact two-class model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions import ScaledUtility, TwoClassModel
from repro.loads import GeometricLoad, PoissonLoad
from repro.utility import AdaptiveUtility, PiecewiseLinearUtility

_UTILITY = AdaptiveUtility()


@st.composite
def two_class_case(draw):
    mean1 = draw(st.floats(min_value=2.0, max_value=15.0))
    mean2 = draw(st.floats(min_value=2.0, max_value=15.0))
    demand2 = draw(st.sampled_from([1.0, 2.0, 3.0]))
    family = draw(st.sampled_from(["poisson", "geometric"]))
    if family == "poisson":
        loads = (PoissonLoad(mean1), PoissonLoad(mean2))
    else:
        loads = (GeometricLoad.from_mean(mean1), GeometricLoad.from_mean(mean2))
    model = TwoClassModel(
        loads,
        (_UTILITY, ScaledUtility(_UTILITY, demand2)),
        demands=(1.0, demand2),
    )
    capacity = draw(st.floats(min_value=2.0, max_value=60.0))
    return model, capacity


class TestTwoClassProperties:
    @given(case=two_class_case())
    @settings(max_examples=40, deadline=None)
    def test_reservation_dominates(self, case):
        model, capacity = case
        assert model.reservation(capacity) >= model.best_effort(capacity) - 1e-9

    @given(case=two_class_case())
    @settings(max_examples=40, deadline=None)
    def test_utilities_in_unit_interval(self, case):
        model, capacity = case
        for value in (model.best_effort(capacity), model.reservation(capacity)):
            assert -1e-12 <= value <= 1.0 + 1e-9

    @given(case=two_class_case())
    @settings(max_examples=30, deadline=None)
    def test_best_effort_monotone_in_capacity(self, case):
        model, capacity = case
        assert model.best_effort(capacity) <= model.best_effort(1.5 * capacity) + 1e-10

    @given(case=two_class_case())
    @settings(max_examples=20, deadline=None)
    def test_bandwidth_gap_nonnegative(self, case):
        model, capacity = case
        assert model.bandwidth_gap(capacity) >= 0.0


class TestRampTwoClass:
    def test_ramp_classes_also_supported(self):
        model = TwoClassModel(
            (PoissonLoad(6.0), PoissonLoad(6.0)),
            (PiecewiseLinearUtility(0.3), PiecewiseLinearUtility(0.7)),
        )
        c = 10.0
        assert model.reservation(c) >= model.best_effort(c) - 1e-9
        # the less adaptive class (a = 0.7) drags the blend below an
        # all-a=0.3 population
        uniform = TwoClassModel(
            (PoissonLoad(6.0), PoissonLoad(6.0)),
            (PiecewiseLinearUtility(0.3), PiecewiseLinearUtility(0.3)),
        )
        assert model.best_effort(c) < uniform.best_effort(c)
