"""Tests for the exact two-class model."""

import pytest

from repro.errors import ModelError
from repro.extensions import ScaledUtility, TwoClassModel
from repro.loads import AlgebraicLoad, GeometricLoad, PoissonLoad
from repro.models import VariableLoadModel
from repro.utility import AdaptiveUtility, RigidUtility


@pytest.fixture
def mixed_model():
    """Video (unit demand) sharing a link with fat transfers (demand 3)."""
    return TwoClassModel(
        (PoissonLoad(8.0), PoissonLoad(3.0)),
        (AdaptiveUtility(), ScaledUtility(AdaptiveUtility(), 3.0)),
        demands=(1.0, 3.0),
    )


class TestPoissonReduction:
    """Poisson(a) + Poisson(b) census = Poisson(a+b): exact reduction."""

    def test_best_effort_matches_single_class(self):
        u = AdaptiveUtility()
        two = TwoClassModel((PoissonLoad(6.0), PoissonLoad(6.0)), (u, u))
        single = VariableLoadModel(PoissonLoad(12.0), u)
        for c in (8.0, 12.0, 20.0):
            assert two.best_effort(c) == pytest.approx(
                single.best_effort(c), abs=1e-9
            )

    def test_reservation_matches_single_class(self):
        u = AdaptiveUtility()
        two = TwoClassModel((PoissonLoad(6.0), PoissonLoad(6.0)), (u, u))
        single = VariableLoadModel(PoissonLoad(12.0), u)
        for c in (8.0, 12.0, 20.0):
            assert two.reservation(c) == pytest.approx(
                single.reservation(c), abs=1e-6
            )

    def test_rigid_classes_too(self):
        u = RigidUtility(1.0)
        two = TwoClassModel((PoissonLoad(5.0), PoissonLoad(7.0)), (u, u))
        single = VariableLoadModel(PoissonLoad(12.0), u)
        for c in (8.0, 14.0):
            assert two.best_effort(c) == pytest.approx(
                single.best_effort(c), abs=1e-9
            )


class TestHeterogeneousClasses:
    def test_reservation_dominates(self, mixed_model):
        for c in (8.0, 14.0, 25.0, 40.0):
            assert mixed_model.reservation(c) >= mixed_model.best_effort(c) - 1e-9

    def test_underload_states_tie(self, mixed_model):
        # with capacity far above total demand, everyone is admitted and
        # the redistribution equals the best-effort split
        c = 400.0
        assert mixed_model.reservation(c) == pytest.approx(
            mixed_model.best_effort(c), abs=1e-6
        )

    def test_bandwidth_gap_solves_equation(self, mixed_model):
        c = 12.0
        gap = mixed_model.bandwidth_gap(c)
        assert gap > 0.0
        assert mixed_model.best_effort(c + gap) == pytest.approx(
            mixed_model.reservation(c), abs=1e-6
        )

    def test_per_class_utilities_bounded(self, mixed_model):
        u1, u2 = mixed_model.per_class_best_effort(14.0)
        assert 0.0 < u1 < 1.0
        assert 0.0 < u2 < 1.0

    def test_fat_class_suffers_its_own_congestion(self, mixed_model):
        # per state the two classes see the same fairness level (their
        # utilities are demand-scaled twins), but class 2's size-biased
        # average is dragged down by the states *it* congests: a fat
        # flow is disproportionately present exactly when total demand
        # is high
        u1, u2 = mixed_model.per_class_best_effort(8.0)
        assert u2 < u1

    def test_agrees_with_network_monte_carlo(self):
        from repro.network import NetworkComparison, NetworkTopology, Route

        u = AdaptiveUtility()
        loads = (GeometricLoad.from_mean(8.0), GeometricLoad.from_mean(4.0))
        exact = TwoClassModel(loads, (u, ScaledUtility(u, 2.0)), demands=(1.0, 2.0))
        topo = NetworkTopology(
            {"l": 14.0},
            [
                Route("a", ("l",), loads[0], u, demand=1.0),
                Route("b", ("l",), loads[1], ScaledUtility(u, 2.0), demand=2.0),
            ],
        )
        mc = NetworkComparison(topo, draws=4000, seed=3)
        assert mc.best_effort().normalised == pytest.approx(
            exact.best_effort(14.0), abs=0.02
        )


class TestValidation:
    def test_bad_demands(self):
        with pytest.raises(ModelError):
            TwoClassModel(
                (PoissonLoad(3.0), PoissonLoad(3.0)),
                (AdaptiveUtility(), AdaptiveUtility()),
                demands=(1.0, 0.0),
            )

    def test_heavy_tail_grid_guard(self):
        with pytest.raises(ModelError, match="too heavy"):
            TwoClassModel(
                (AlgebraicLoad.from_mean(2.1, 50.0), PoissonLoad(3.0)),
                (AdaptiveUtility(), AdaptiveUtility()),
                grid_cap=256,
            )

    def test_zero_capacity(self, mixed_model):
        assert mixed_model.best_effort(0.0) == 0.0
        assert mixed_model.reservation(0.0) == 0.0
