"""Tests for the exception hierarchy and its use across the package."""

import pytest

from repro.errors import (
    BracketError,
    CalibrationError,
    ConvergenceError,
    ModelError,
    ReproError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (BracketError, CalibrationError, ConvergenceError, ModelError):
            assert issubclass(exc, ReproError)

    def test_bracket_is_a_convergence_error(self):
        assert issubclass(BracketError, ConvergenceError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise BracketError("no bracket")


class TestRaisedWhereDocumented:
    def test_calibration_error_from_kappa(self, monkeypatch):
        import repro.utility.adaptive as adaptive

        monkeypatch.setattr(
            adaptive, "find_root", lambda *a, **k: 42.0
        )  # lands far outside the expected neighbourhood
        with pytest.raises(CalibrationError):
            adaptive.calibrate_kappa()

    def test_model_error_from_topology(self):
        from repro.network import NetworkTopology

        with pytest.raises(ModelError):
            NetworkTopology({}, [])

    def test_convergence_error_from_series(self):
        from repro.numerics import sum_series

        with pytest.raises(ConvergenceError):
            sum_series(lambda k: 1.0, 0, max_terms=100)

    def test_bracket_error_names_the_quantity(self):
        from repro.numerics import find_root

        with pytest.raises(BracketError, match="gap at C=42"):
            find_root(lambda x: 1.0, 0.0, 1.0, label="gap at C=42")
