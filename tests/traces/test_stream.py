"""Tests for streaming trace ingestion: chunks, census, CSV/npz."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.loads import PoissonLoad
from repro.simulation import AdmitAll, BirthDeathProcess, FlowSimulator, Link
from repro.traces import (
    FlowTrace,
    census_at,
    census_samples,
    materialize,
    mean_census,
    open_trace,
    open_trace_csv,
    open_trace_npz,
    read_trace,
    stream_census_at,
    stream_census_samples,
    stream_mean_census,
    stream_trace,
    write_trace,
    write_trace_csv,
    write_trace_npz,
)
from repro.traces.stream import SEGMENT_SCHEMA, TraceChunk, TraceStream


@pytest.fixture
def edge_trace():
    # simultaneous arrivals, a zero-length flow, and an open flow
    return FlowTrace(
        arrival=np.array([0.0, 1.0, 1.0, 2.5, 4.0]),
        departure=np.array([3.0, 1.0, 6.0, np.inf, 4.5]),
        horizon=5.0,
        metadata={"site": "pop1"},
    )


@pytest.fixture
def sim_trace():
    load = PoissonLoad(12.0)
    res = FlowSimulator(BirthDeathProcess(load), Link(15.0), AdmitAll()).run(
        120.0, warmup=12.0, seed=9
    )
    return FlowTrace.from_simulation(res)


class TestTraceChunk:
    def test_validation(self):
        with pytest.raises(ModelError):
            TraceChunk(np.array([[0.0]]), np.array([[1.0]]))
        with pytest.raises(ModelError):
            TraceChunk(np.array([0.0, 1.0]), np.array([1.0]))
        with pytest.raises(ModelError):
            TraceChunk(np.array([-1.0]), np.array([2.0]))
        with pytest.raises(ModelError):
            TraceChunk(np.array([2.0]), np.array([1.0]))

    def test_zero_length_flows_are_valid(self):
        chunk = TraceChunk(np.array([1.0]), np.array([1.0]))
        assert len(chunk) == 1


class TestTraceStream:
    def test_header_before_first_chunk(self, edge_trace):
        stream = stream_trace(edge_trace)
        assert stream.horizon == edge_trace.horizon
        assert stream.metadata == {"site": "pop1"}
        assert stream.flows == len(edge_trace)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ModelError):
            TraceStream([], horizon=0.0)

    def test_streams_are_one_shot(self, edge_trace):
        stream = stream_trace(edge_trace)
        list(stream)
        with pytest.raises(ModelError):
            list(stream)

    def test_empty_chunks_are_skipped(self):
        chunks = [
            TraceChunk(np.empty(0), np.empty(0)),
            TraceChunk(np.array([1.0]), np.array([2.0])),
        ]
        stream = TraceStream(chunks, horizon=5.0)
        assert sum(len(c) for c in stream) == 1

    def test_stream_trace_chunks_and_sorts(self):
        trace = FlowTrace(
            arrival=np.array([3.0, 0.0, 2.0]),
            departure=np.array([4.0, 1.0, 6.0]),
            horizon=6.0,
        )
        chunks = list(stream_trace(trace, chunk_flows=2))
        assert [len(c) for c in chunks] == [2, 1]
        merged = np.concatenate([c.arrival for c in chunks])
        np.testing.assert_array_equal(merged, [0.0, 2.0, 3.0])

    def test_chunk_flows_must_be_positive(self, edge_trace):
        with pytest.raises(ModelError):
            stream_trace(edge_trace, chunk_flows=0)

    def test_materialize_round_trip(self, edge_trace):
        back = materialize(stream_trace(edge_trace, chunk_flows=2))
        order = np.argsort(edge_trace.arrival, kind="stable")
        np.testing.assert_array_equal(back.arrival, edge_trace.arrival[order])
        np.testing.assert_array_equal(back.departure, edge_trace.departure[order])
        assert back.horizon == edge_trace.horizon
        assert back.metadata == edge_trace.metadata

    def test_materialize_empty_stream(self):
        trace = materialize(TraceStream([], horizon=3.0))
        assert len(trace) == 0 and trace.horizon == 3.0


class TestStreamingCensus:
    def test_matches_in_memory_exactly(self, sim_trace):
        ts = np.linspace(0.0, sim_trace.horizon, 101)
        expected = census_at(sim_trace, ts)
        for chunk_flows in (1, 7, 64, 10**9):
            got = stream_census_at(stream_trace(sim_trace, chunk_flows=chunk_flows), ts)
            np.testing.assert_array_equal(got, expected)

    def test_edge_cases_match(self, edge_trace):
        ts = np.array([0.0, 1.0, 2.5, 4.0, 5.0])
        np.testing.assert_array_equal(
            stream_census_at(stream_trace(edge_trace, chunk_flows=2), ts),
            census_at(edge_trace, ts),
        )

    def test_query_outside_window_rejected(self, edge_trace):
        with pytest.raises(ModelError):
            stream_census_at(stream_trace(edge_trace), [6.0])

    def test_samples_replay_the_same_rng(self, sim_trace):
        expected = census_samples(sim_trace, 500, warmup=15.0, seed=42)
        got = stream_census_samples(
            stream_trace(sim_trace, chunk_flows=13), 500, warmup=15.0, seed=42
        )
        np.testing.assert_array_equal(got, expected)

    def test_samples_validation(self, edge_trace):
        with pytest.raises(ModelError):
            stream_census_samples(stream_trace(edge_trace), 0)
        with pytest.raises(ModelError):
            stream_census_samples(stream_trace(edge_trace), 5, warmup=5.0)

    def test_mean_census_matches(self, sim_trace):
        got = stream_mean_census(stream_trace(sim_trace, chunk_flows=11), warmup=12.0)
        assert got == pytest.approx(mean_census(sim_trace, warmup=12.0), rel=1e-12)

    def test_mean_census_validation(self, edge_trace):
        with pytest.raises(ModelError):
            stream_mean_census(stream_trace(edge_trace), warmup=-1.0)


class TestChunkedCsv:
    def test_round_trip_is_exact(self, edge_trace, tmp_path):
        path = write_trace_csv(stream_trace(edge_trace), tmp_path / "t.csv")
        back = materialize(open_trace_csv(path, chunk_flows=2))
        np.testing.assert_array_equal(back.arrival, edge_trace.arrival)
        np.testing.assert_array_equal(back.departure, edge_trace.departure)
        assert back.horizon == edge_trace.horizon
        assert back.metadata == edge_trace.metadata

    def test_reads_the_in_memory_writer_format(self, edge_trace, tmp_path):
        path = write_trace(edge_trace, tmp_path / "w.csv")
        stream = open_trace_csv(path)
        np.testing.assert_array_equal(
            materialize(stream).arrival, read_trace(path).arrival
        )

    def test_missing_horizon_header(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("arrival,departure\n0.0,1.0\n")
        with pytest.raises(ModelError, match="horizon"):
            open_trace_csv(bad)

    def test_bad_horizon_value(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("# horizon=soon\narrival,departure\n0.0,1.0\n")
        with pytest.raises(ModelError, match="bad horizon"):
            open_trace_csv(bad)

    @pytest.mark.parametrize(
        "row",
        ["0.5", "zero,one", "2.0,1.0", "-1.0,3.0"],
        ids=["short", "non-numeric", "departure-before-arrival", "negative"],
    )
    def test_malformed_rows_name_file_and_line(self, tmp_path, row):
        bad = tmp_path / "bad.csv"
        bad.write_text(f"# horizon=5.0\narrival,departure\n0.0,1.0\n{row}\n")
        with pytest.raises(ModelError, match=r"line 4"):
            list(open_trace_csv(bad))

    def test_chunk_flows_must_be_positive(self, tmp_path):
        with pytest.raises(ModelError):
            open_trace_csv(tmp_path / "x.csv", chunk_flows=0)


class TestNpzSegments:
    def test_round_trip_is_exact(self, edge_trace, tmp_path):
        path = write_trace_npz(stream_trace(edge_trace, chunk_flows=2), tmp_path / "seg")
        stream = open_trace_npz(path)
        assert stream.flows == len(edge_trace)
        back = materialize(stream)
        np.testing.assert_array_equal(back.arrival, edge_trace.arrival)
        np.testing.assert_array_equal(back.departure, edge_trace.departure)
        assert back.metadata == edge_trace.metadata

    def test_one_segment_per_chunk(self, edge_trace, tmp_path):
        path = write_trace_npz(stream_trace(edge_trace, chunk_flows=2), tmp_path / "seg")
        assert len(sorted(path.glob("segment-*.npz"))) == 3

    def test_missing_index(self, tmp_path):
        with pytest.raises(ModelError, match="index.json"):
            open_trace_npz(tmp_path)

    def test_corrupt_index(self, tmp_path):
        (tmp_path / "index.json").write_text("{nope")
        with pytest.raises(ModelError, match="corrupt"):
            open_trace_npz(tmp_path)

    def test_wrong_schema(self, tmp_path):
        (tmp_path / "index.json").write_text('{"schema": "other/v9"}')
        with pytest.raises(ModelError, match=SEGMENT_SCHEMA):
            open_trace_npz(tmp_path)

    def test_missing_segment_detected(self, edge_trace, tmp_path):
        path = write_trace_npz(stream_trace(edge_trace, chunk_flows=2), tmp_path / "seg")
        (path / "segment-00001.npz").unlink()
        with pytest.raises(ModelError, match="missing"):
            list(open_trace_npz(path))

    def test_flow_count_mismatch_detected(self, edge_trace, tmp_path):
        path = write_trace_npz(stream_trace(edge_trace, chunk_flows=2), tmp_path / "seg")
        np.savez_compressed(
            path / "segment-00000.npz",
            arrival=np.array([0.0]),
            departure=np.array([1.0]),
        )
        with pytest.raises(ModelError, match="index says"):
            list(open_trace_npz(path))


class TestOpenTraceDispatch:
    def test_directory_opens_as_npz(self, edge_trace, tmp_path):
        path = write_trace_npz(stream_trace(edge_trace), tmp_path / "seg")
        assert open_trace(path).flows == len(edge_trace)

    def test_file_opens_as_csv(self, edge_trace, tmp_path):
        path = write_trace_csv(stream_trace(edge_trace), tmp_path / "t.csv")
        got = materialize(open_trace(path))
        np.testing.assert_array_equal(got.arrival, edge_trace.arrival)
