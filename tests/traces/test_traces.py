"""Tests for the flow-trace format, census derivation, and pipeline."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.loads import AlgebraicLoad, PoissonLoad
from repro.simulation import AdmitAll, BirthDeathProcess, FlowSimulator, Link
from repro.traces import (
    FlowTrace,
    analyze_trace,
    census_at,
    census_samples,
    census_trajectory,
    mean_census,
    read_trace,
    write_trace,
)
from repro.utility import AdaptiveUtility


@pytest.fixture
def tiny_trace():
    # flows: [0,4], [1,2], [3,5(open->horizon)], horizon 5
    return FlowTrace(
        arrival=np.array([0.0, 1.0, 3.0]),
        departure=np.array([4.0, 2.0, np.inf]),
        horizon=5.0,
    )


class TestFlowTrace:
    def test_validation(self):
        with pytest.raises(ModelError):
            FlowTrace(np.array([1.0]), np.array([0.5]), horizon=5.0)
        with pytest.raises(ModelError):
            FlowTrace(np.array([1.0, 2.0]), np.array([3.0]), horizon=5.0)
        with pytest.raises(ModelError):
            FlowTrace(np.array([1.0]), np.array([2.0]), horizon=0.0)

    def test_durations_clip_open_flows(self, tiny_trace):
        np.testing.assert_allclose(tiny_trace.durations, [4.0, 1.0, 2.0])

    def test_from_simulation(self):
        load = PoissonLoad(8.0)
        res = FlowSimulator(BirthDeathProcess(load), Link(10.0), AdmitAll()).run(
            60.0, warmup=6.0, seed=3
        )
        trace = FlowTrace.from_simulation(res, source="test")
        assert len(trace) == len(res.flows)
        assert trace.metadata["source"] == "test"


class TestCensusTrajectory:
    def test_exact_counts(self, tiny_trace):
        times, counts = census_trajectory(tiny_trace)
        # t in [0,1): 1 flow; [1,2): 2; [2,3): 1; [3,4): 2; [4,5): 1
        for t, expected in [(0.5, 1), (1.5, 2), (2.5, 1), (3.5, 2), (4.5, 1)]:
            assert census_at(tiny_trace, [t])[0] == expected

    def test_mean_census_little_law(self, tiny_trace):
        # flow-seconds = 4 + 1 + 2 = 7 over horizon 5
        assert mean_census(tiny_trace) == pytest.approx(7.0 / 5.0)

    def test_mean_census_with_warmup(self, tiny_trace):
        # window [2, 5]: census 1 on [2,3), 2 on [3,4), 1 on [4,5)
        assert mean_census(tiny_trace, warmup=2.0) == pytest.approx(4.0 / 3.0)

    def test_samples_match_time_weights(self, tiny_trace):
        draws = census_samples(tiny_trace, 20_000, seed=1)
        # P(census == 2) = 2/5 of the window
        assert float(np.mean(draws == 2)) == pytest.approx(0.4, abs=0.02)

    def test_empty_trace_census_is_identically_zero(self):
        # regression: the simultaneous-event merge used to crash on a
        # zero-flow trace instead of reporting the all-zero trajectory
        empty = FlowTrace(np.empty(0), np.empty(0), horizon=4.0)
        times, counts = census_trajectory(empty)
        np.testing.assert_array_equal(times, [0.0])
        np.testing.assert_array_equal(counts, [0.0])
        assert census_at(empty, [2.0])[0] == 0
        assert mean_census(empty) == 0.0

    def test_query_outside_window_rejected(self, tiny_trace):
        with pytest.raises(ModelError):
            census_at(tiny_trace, [6.0])

    def test_matches_simulator_census(self):
        load = PoissonLoad(10.0)
        res = FlowSimulator(BirthDeathProcess(load), Link(12.0), AdmitAll()).run(
            200.0, warmup=20.0, seed=5
        )
        trace = FlowTrace.from_simulation(res)
        # compare the trace-derived census with the simulator's own
        ts = np.linspace(25.0, 195.0, 50)
        from_trace = census_at(trace, ts)
        from_sim = res.trajectory.value_at(ts)
        np.testing.assert_array_equal(from_trace, from_sim)


class TestPersistence:
    def test_round_trip(self, tiny_trace, tmp_path):
        path = write_trace(tiny_trace, tmp_path / "t.csv")
        loaded = read_trace(path)
        np.testing.assert_allclose(loaded.arrival, tiny_trace.arrival)
        np.testing.assert_allclose(loaded.departure, tiny_trace.departure)
        assert loaded.horizon == tiny_trace.horizon

    def test_metadata_round_trip(self, tmp_path):
        trace = FlowTrace(
            np.array([0.0]),
            np.array([1.0]),
            horizon=2.0,
            metadata={"site": "pop3", "vantage": "edge"},
        )
        loaded = read_trace(write_trace(trace, tmp_path / "m.csv"))
        assert loaded.metadata == {"site": "pop3", "vantage": "edge"}

    def test_missing_horizon_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("arrival,departure\n0.0,1.0\n")
        with pytest.raises(ModelError):
            read_trace(bad)

    def test_bad_horizon_value_names_the_line(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("# horizon=never\narrival,departure\n0.0,1.0\n")
        with pytest.raises(ModelError, match="line 1.*bad horizon"):
            read_trace(bad)

    @pytest.mark.parametrize(
        "row, message",
        [
            ("0.5", "expected"),
            ("a,b", "non-numeric"),
            ("3.0,1.0", "0 <= arrival <= departure"),
            ("-2.0,1.0", "0 <= arrival <= departure"),
        ],
        ids=["short-row", "non-numeric", "departs-early", "negative"],
    )
    def test_malformed_rows_name_file_and_line(self, tmp_path, row, message):
        bad = tmp_path / "bad.csv"
        bad.write_text(f"# horizon=9.0\narrival,departure\n0.0,1.0\n{row}\n")
        with pytest.raises(ModelError, match=message) as err:
            read_trace(bad)
        assert "line 4" in str(err.value)
        assert "bad.csv" in str(err.value)

    def test_zero_length_flows_round_trip(self, tmp_path):
        # departure == arrival is a valid (zero-duration) flow and must
        # survive persistence bit-for-bit without perturbing the census
        trace = FlowTrace(
            arrival=np.array([0.5, 1.0, 1.0]),
            departure=np.array([0.5, 1.0, 3.0]),
            horizon=4.0,
        )
        loaded = read_trace(write_trace(trace, tmp_path / "z.csv"))
        np.testing.assert_array_equal(loaded.arrival, trace.arrival)
        np.testing.assert_array_equal(loaded.departure, trace.departure)
        assert census_at(loaded, [1.0])[0] == 1

    def test_awkward_floats_round_trip_exactly(self, tmp_path):
        values = np.array([0.1 + 0.2, 1.0 / 3.0, np.pi])
        trace = FlowTrace(values, values + np.e, horizon=10.0)
        loaded = read_trace(write_trace(trace, tmp_path / "f.csv"))
        np.testing.assert_array_equal(loaded.arrival, trace.arrival)
        np.testing.assert_array_equal(loaded.departure, trace.departure)


class TestPipeline:
    def test_trace_to_verdict_poisson(self):
        load = PoissonLoad(40.0)
        res = FlowSimulator(BirthDeathProcess(load), Link(44.0), AdmitAll()).run(
            500.0, warmup=50.0, seed=7
        )
        trace = FlowTrace.from_simulation(res)
        rec = analyze_trace(trace, AdaptiveUtility(), price=0.02, samples=3000)
        assert rec.load_family == "poisson"
        assert not rec.reservations_recommended

    def test_zero_flow_trace_is_a_clear_error(self):
        empty = FlowTrace(np.empty(0), np.empty(0), horizon=10.0)
        with pytest.raises(ModelError, match="zero-flow"):
            analyze_trace(empty, AdaptiveUtility(), price=0.05)

    def test_warmup_at_or_past_horizon_is_a_clear_error(self, tiny_trace):
        with pytest.raises(ModelError, match="warmup"):
            analyze_trace(tiny_trace, AdaptiveUtility(), price=0.05, warmup=5.0)
        with pytest.raises(ModelError, match="warmup"):
            analyze_trace(tiny_trace, AdaptiveUtility(), price=0.05, warmup=7.0)
        with pytest.raises(ModelError, match="warmup"):
            analyze_trace(tiny_trace, AdaptiveUtility(), price=0.05, warmup=-1.0)

    def test_trace_to_verdict_heavy_tail(self):
        load = AlgebraicLoad.from_mean(3.0, 40.0)
        res = FlowSimulator(BirthDeathProcess(load), Link(60.0), AdmitAll()).run(
            4000.0, warmup=500.0, seed=11
        )
        trace = FlowTrace.from_simulation(res)
        rec = analyze_trace(trace, AdaptiveUtility(), price=0.01, samples=3000)
        # heavy-tailed dynamics: the tail estimator flags it even when
        # the finite trace's family fit is ambiguous
        assert rec.tail is not None and rec.tail.heavy_tailed
