"""Tests for the streaming occupancy sweep and CRN-paired replay."""

import json

import numpy as np
import pytest

from repro.errors import ModelError
from repro.loads import PoissonLoad
from repro.models import VariableLoadModel
from repro.traces import (
    FlowTrace,
    default_workload,
    replay_stream,
    replay_trace,
    stream_trace,
    sweep_occupancy,
)
from repro.traces.stream import TraceChunk, TraceStream
from repro.utility import AdaptiveUtility


@pytest.fixture(scope="module")
def bursty_trace():
    from repro.traces import materialize

    stream = default_workload("bursty", 20.0).stream(80.0, seed=6)
    return materialize(stream)


class TestSweepValidation:
    def test_needs_at_least_two_windows(self, bursty_trace):
        with pytest.raises(ModelError, match="windows"):
            sweep_occupancy(stream_trace(bursty_trace), windows=1)

    def test_warmup_must_precede_horizon(self, bursty_trace):
        with pytest.raises(ModelError, match="warmup"):
            sweep_occupancy(stream_trace(bursty_trace), warmup=80.0)

    def test_rejects_unsorted_chunks(self):
        stream = TraceStream(
            [
                TraceChunk(np.array([5.0]), np.array([6.0])),
                TraceChunk(np.array([1.0]), np.array([2.0])),
            ],
            horizon=10.0,
        )
        with pytest.raises(ModelError, match="arrival-ordered"):
            sweep_occupancy(stream)

    def test_rejects_unsorted_within_a_chunk(self):
        stream = TraceStream(
            [TraceChunk(np.array([3.0, 1.0]), np.array([4.0, 2.0]))],
            horizon=10.0,
        )
        with pytest.raises(ModelError, match="arrival-ordered"):
            sweep_occupancy(stream)


class TestSweepExactness:
    def test_chunking_is_invisible(self, bursty_trace):
        reference = sweep_occupancy(
            stream_trace(bursty_trace, chunk_flows=10**9), windows=6, warmup=8.0
        )
        for chunk_flows in (1, 7, 137, 1000):
            got = sweep_occupancy(
                stream_trace(bursty_trace, chunk_flows=chunk_flows),
                windows=6,
                warmup=8.0,
            )
            np.testing.assert_array_equal(got.occupancy, reference.occupancy)
            np.testing.assert_array_equal(got.edges, reference.edges)
            assert got.flows == reference.flows
            assert got.events == reference.events

    def test_rows_sum_to_window_widths(self, bursty_trace):
        occ = sweep_occupancy(stream_trace(bursty_trace), windows=5, warmup=8.0)
        np.testing.assert_allclose(
            occ.occupancy.sum(axis=1), np.diff(occ.edges), rtol=1e-9, atol=1e-9
        )

    def test_occupancy_matches_hand_computed_trajectory(self):
        # flows [0,4), [1,2), [3,5->horizon): census 1,2,1,2,1 on unit spans
        trace = FlowTrace(
            arrival=np.array([0.0, 1.0, 3.0]),
            departure=np.array([4.0, 2.0, np.inf]),
            horizon=5.0,
        )
        occ = sweep_occupancy(stream_trace(trace), windows=2, warmup=0.0)
        # window [0, 2.5): level 1 on [0,1)+[2,2.5), level 2 on [1,2)
        np.testing.assert_allclose(occ.occupancy[0, 1], 1.5)
        np.testing.assert_allclose(occ.occupancy[0, 2], 1.0)
        # window [2.5, 5): level 1 on [2.5,3)+[4,5), level 2 on [3,4)
        np.testing.assert_allclose(occ.occupancy[1, 1], 1.5)
        np.testing.assert_allclose(occ.occupancy[1, 2], 1.0)

    def test_empty_trace_sits_at_level_zero(self):
        occ = sweep_occupancy(TraceStream([], horizon=10.0), windows=2, warmup=2.0)
        np.testing.assert_allclose(occ.occupancy[:, 0], [4.0, 4.0])
        assert occ.flows == 0 and occ.max_census == 0

    def test_census_distribution_is_a_pmf(self, bursty_trace):
        occ = sweep_occupancy(stream_trace(bursty_trace), warmup=8.0)
        values, pmf = occ.census_distribution()
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf > 0.0)
        assert occ.mean_census() == pytest.approx(float(np.dot(values, pmf)))


class TestReplay:
    def test_poisson_replay_recovers_the_analytic_gap(self):
        utility = AdaptiveUtility()
        rate, capacity = 30.0, 33.0
        stream = default_workload("poisson", rate).stream(400.0, seed=12)
        result = replay_stream(stream, utility, capacity, warmup=40.0)
        model = VariableLoadModel(PoissonLoad(rate), utility)
        summary = result.summary()
        analytic_gap = float(model.performance_gap(capacity))
        assert abs(summary["best_effort"] - float(model.best_effort(capacity))) < 0.05
        assert abs(summary["gap"] - analytic_gap) <= 3.0 * summary["gap_ci"] + 2e-3

    def test_replay_trace_equals_replay_stream(self, bursty_trace):
        utility = AdaptiveUtility()
        a = replay_trace(bursty_trace, utility, 22.0, windows=6, warmup=8.0)
        b = replay_stream(
            stream_trace(bursty_trace, chunk_flows=13),
            utility,
            22.0,
            windows=6,
            warmup=8.0,
        )
        np.testing.assert_array_equal(a.paired.gap, b.paired.gap)
        np.testing.assert_array_equal(a.census_pmf, b.census_pmf)
        assert a.summary() == b.summary()

    def test_windows_double_as_replications(self, bursty_trace):
        result = replay_trace(
            bursty_trace, AdaptiveUtility(), 22.0, windows=6, warmup=8.0
        )
        assert result.windows == 6
        assert result.paired.gap.shape == (6,)
        assert result.summary()["replications"] == 6

    def test_capacity_must_be_positive(self, bursty_trace):
        occ = sweep_occupancy(stream_trace(bursty_trace), warmup=8.0)
        with pytest.raises(ModelError, match="capacity"):
            occ.evaluate(AdaptiveUtility(), 0.0)

    def test_summary_is_json_ready(self, bursty_trace):
        result = replay_trace(
            bursty_trace, AdaptiveUtility(), 22.0, windows=4, warmup=8.0
        )
        summary = result.summary()
        payload = json.loads(json.dumps(summary))
        assert payload["flows"] == len(bursty_trace)
        for key in (
            "best_effort",
            "best_effort_ci",
            "reservation",
            "reservation_ci",
            "gap",
            "gap_ci",
            "capacity",
            "threshold",
            "mean_census",
        ):
            assert isinstance(payload[key], float), key

    def test_reservation_caps_the_admitted_census(self, bursty_trace):
        # at very tight capacity the reservation admits fewer flows
        # than best effort but keeps per-flow service at full rate
        result = replay_trace(
            bursty_trace, AdaptiveUtility(), 8.0, windows=4, warmup=8.0
        )
        assert result.threshold < result.summary()["mean_census"]
        assert np.all(result.paired.reservation >= 0.0)
