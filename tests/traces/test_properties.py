"""Property-based tests for trace census derivation and streaming parity."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.traces import (
    FlowTrace,
    census_at,
    census_samples,
    census_trajectory,
    materialize,
    mean_census,
    open_trace_csv,
    open_trace_npz,
    stream_census_at,
    stream_census_samples,
    stream_trace,
    sweep_occupancy,
    write_trace_csv,
    write_trace_npz,
)
from repro.verify.strategies import trace_chunk_sizes, traces


@st.composite
def random_trace(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    horizon = draw(st.floats(min_value=1.0, max_value=50.0))
    arrivals = np.array(
        sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=horizon * 0.95),
                    min_size=n,
                    max_size=n,
                )
            )
        )
    )
    durations = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.01, max_value=horizon),
                min_size=n,
                max_size=n,
            )
        )
    )
    return FlowTrace(arrivals, arrivals + durations, horizon=horizon)


def brute_force_census(trace: FlowTrace, t: float) -> int:
    return int(np.sum((trace.arrival <= t) & (trace.departure > t)))


class TestCensusProperties:
    @given(trace=random_trace(), frac=st.floats(min_value=0.0, max_value=0.999))
    @settings(max_examples=120, deadline=None)
    def test_census_matches_brute_force(self, trace, frac):
        t = frac * trace.horizon
        fast = int(census_at(trace, [t])[0])
        slow = brute_force_census(trace, t)
        # event boundaries: the piecewise-constant census uses
        # right-open segments, same convention as the brute force
        assert fast == slow

    @given(trace=random_trace())
    @settings(max_examples=80, deadline=None)
    def test_counts_nonnegative_and_bounded(self, trace):
        _, counts = census_trajectory(trace)
        assert np.all(counts >= 0)
        assert counts.max() <= len(trace)

    @given(trace=random_trace())
    @settings(max_examples=80, deadline=None)
    def test_mean_census_is_flow_seconds(self, trace):
        flow_seconds = float(
            np.sum(np.minimum(trace.departure, trace.horizon) - trace.arrival)
        )
        assert mean_census(trace) == pytest.approx(
            flow_seconds / trace.horizon, rel=1e-9, abs=1e-9
        )

    @given(trace=random_trace())
    @settings(max_examples=60, deadline=None)
    def test_trajectory_starts_at_zero_time(self, trace):
        times, _ = census_trajectory(trace)
        assert times[0] == 0.0
        assert np.all(np.diff(times) > 0.0)


class TestStreamingParity:
    """Chunked-streamed results are byte-identical to in-memory ones."""

    @given(trace=traces(), chunk_flows=trace_chunk_sizes(), seed=st.integers(0, 2**16))
    @settings(max_examples=100, deadline=None)
    def test_census_samples_identical_for_any_chunking(
        self, trace, chunk_flows, seed
    ):
        expected = census_samples(trace, 64, seed=seed)
        got = stream_census_samples(
            stream_trace(trace, chunk_flows=chunk_flows), 64, seed=seed
        )
        np.testing.assert_array_equal(got, expected)

    @given(
        trace=traces(allow_empty=False),
        chunk_flows=trace_chunk_sizes(),
        frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_point_census_identical_for_any_chunking(
        self, trace, chunk_flows, frac
    ):
        ts = [0.0, frac * trace.horizon, trace.horizon]
        expected = census_at(trace, ts)
        got = stream_census_at(stream_trace(trace, chunk_flows=chunk_flows), ts)
        np.testing.assert_array_equal(got, expected)

    @given(trace=traces(), chunk_flows=trace_chunk_sizes())
    @settings(max_examples=60, deadline=None)
    def test_occupancy_sweep_identical_for_any_chunking(self, trace, chunk_flows):
        reference = sweep_occupancy(
            stream_trace(trace, chunk_flows=10**9), windows=3
        )
        got = sweep_occupancy(
            stream_trace(trace, chunk_flows=chunk_flows), windows=3
        )
        np.testing.assert_array_equal(got.occupancy, reference.occupancy)
        assert got.flows == reference.flows
        assert got.events == reference.events


class TestPersistenceRoundTrips:
    """CSV and npz round-trips preserve every flow bit-for-bit."""

    @given(trace=traces(), chunk_flows=trace_chunk_sizes())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_csv_round_trip_exact(self, tmp_path, trace, chunk_flows):
        sorted_trace = materialize(stream_trace(trace))
        path = write_trace_csv(
            stream_trace(trace, chunk_flows=chunk_flows), tmp_path / "t.csv"
        )
        back = materialize(open_trace_csv(path, chunk_flows=chunk_flows))
        np.testing.assert_array_equal(back.arrival, sorted_trace.arrival)
        np.testing.assert_array_equal(back.departure, sorted_trace.departure)
        assert back.horizon == trace.horizon

    @given(trace=traces(), chunk_flows=trace_chunk_sizes())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_npz_round_trip_exact(self, tmp_path, trace, chunk_flows):
        sorted_trace = materialize(stream_trace(trace))
        path = write_trace_npz(
            stream_trace(trace, chunk_flows=chunk_flows), tmp_path / "seg"
        )
        stream = open_trace_npz(path)
        assert stream.flows == len(trace)
        back = materialize(stream)
        np.testing.assert_array_equal(back.arrival, sorted_trace.arrival)
        np.testing.assert_array_equal(back.departure, sorted_trace.departure)
        assert back.horizon == trace.horizon
