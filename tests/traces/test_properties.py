"""Property-based tests for trace census derivation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import FlowTrace, census_at, census_trajectory, mean_census


@st.composite
def random_trace(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    horizon = draw(st.floats(min_value=1.0, max_value=50.0))
    arrivals = np.array(
        sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=horizon * 0.95),
                    min_size=n,
                    max_size=n,
                )
            )
        )
    )
    durations = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.01, max_value=horizon),
                min_size=n,
                max_size=n,
            )
        )
    )
    return FlowTrace(arrivals, arrivals + durations, horizon=horizon)


def brute_force_census(trace: FlowTrace, t: float) -> int:
    return int(np.sum((trace.arrival <= t) & (trace.departure > t)))


class TestCensusProperties:
    @given(trace=random_trace(), frac=st.floats(min_value=0.0, max_value=0.999))
    @settings(max_examples=120, deadline=None)
    def test_census_matches_brute_force(self, trace, frac):
        t = frac * trace.horizon
        fast = int(census_at(trace, [t])[0])
        slow = brute_force_census(trace, t)
        # event boundaries: the piecewise-constant census uses
        # right-open segments, same convention as the brute force
        assert fast == slow

    @given(trace=random_trace())
    @settings(max_examples=80, deadline=None)
    def test_counts_nonnegative_and_bounded(self, trace):
        _, counts = census_trajectory(trace)
        assert np.all(counts >= 0)
        assert counts.max() <= len(trace)

    @given(trace=random_trace())
    @settings(max_examples=80, deadline=None)
    def test_mean_census_is_flow_seconds(self, trace):
        flow_seconds = float(
            np.sum(np.minimum(trace.departure, trace.horizon) - trace.arrival)
        )
        assert mean_census(trace) == pytest.approx(
            flow_seconds / trace.horizon, rel=1e-9, abs=1e-9
        )

    @given(trace=random_trace())
    @settings(max_examples=60, deadline=None)
    def test_trajectory_starts_at_zero_time(self, trace):
        times, _ = census_trajectory(trace)
        assert times[0] == 0.0
        assert np.all(np.diff(times) > 0.0)
