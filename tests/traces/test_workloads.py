"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.traces import (
    WORKLOADS,
    BatchWorkload,
    BurstyWorkload,
    DiurnalWorkload,
    PoissonWorkload,
    default_workload,
    materialize,
    open_trace_csv,
    write_trace_csv,
)


def _flows(workload, horizon, seed, chunk_flows=4096):
    return materialize(workload.stream(horizon, seed=seed, chunk_flows=chunk_flows))


class TestValidation:
    def test_positive_parameters_required(self):
        with pytest.raises(ModelError):
            PoissonWorkload(0.0)
        with pytest.raises(ModelError):
            PoissonWorkload(5.0, mu=0.0)
        with pytest.raises(ModelError):
            BurstyWorkload(5.0, on_mean=0.0)

    def test_diurnal_amplitude_range(self):
        with pytest.raises(ModelError):
            DiurnalWorkload(5.0, amplitude=1.0)
        with pytest.raises(ModelError):
            DiurnalWorkload(5.0, amplitude=-0.1)

    def test_batch_mean_at_least_one(self):
        with pytest.raises(ModelError):
            BatchWorkload(2.0, mean_batch=0.5)

    def test_stream_argument_validation(self):
        wl = PoissonWorkload(5.0)
        with pytest.raises(ModelError):
            wl.stream(0.0)
        with pytest.raises(ModelError):
            wl.stream(10.0, chunk_flows=0)


class TestGeneration:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_deterministic_per_seed(self, name):
        wl = default_workload(name, 20.0)
        a = _flows(wl, 80.0, seed=3)
        b = _flows(wl, 80.0, seed=3)
        np.testing.assert_array_equal(a.arrival, b.arrival)
        np.testing.assert_array_equal(a.departure, b.departure)
        c = _flows(wl, 80.0, seed=4)
        assert len(c) != len(a) or not np.array_equal(c.arrival, a.arrival)

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_arrivals_ordered_and_inside_horizon(self, name):
        wl = default_workload(name, 20.0)
        trace = _flows(wl, 80.0, seed=1, chunk_flows=7)
        assert np.all(np.diff(trace.arrival) >= 0.0)
        assert np.all(trace.arrival >= 0.0)
        assert np.all(trace.arrival < 80.0)
        assert np.all(trace.departure >= trace.arrival)

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_chunking_does_not_change_the_flows(self, name):
        wl = default_workload(name, 20.0)
        # chunk_flows feeds the RNG draw block size, so it is part of
        # the generator's identity -- equal chunking must reproduce
        a = _flows(wl, 60.0, seed=5, chunk_flows=256)
        b = _flows(wl, 60.0, seed=5, chunk_flows=256)
        np.testing.assert_array_equal(a.arrival, b.arrival)

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_mean_rate_is_honest(self, name):
        wl = default_workload(name, 25.0)
        assert wl.mean_rate == pytest.approx(25.0)
        trace = _flows(wl, 400.0, seed=11)
        assert len(trace) / 400.0 == pytest.approx(25.0, rel=0.15)

    def test_mean_census_is_littles_law(self):
        wl = default_workload("poisson", 30.0, mu=2.0)
        assert wl.mean_census == pytest.approx(15.0)

    def test_bursty_mean_rate_formula(self):
        wl = BurstyWorkload(on_rate=40.0, on_mean=10.0, off_mean=30.0)
        assert wl.mean_rate == pytest.approx(10.0)


class TestMetadata:
    def test_shape_parameters_in_header(self):
        wl = default_workload("diurnal", 20.0)
        meta = wl.metadata()
        assert meta["workload"] == "diurnal"
        assert float(meta["base_rate"]) == 20.0
        assert float(meta["amplitude"]) == 0.6

    def test_seed_rides_the_stream_metadata(self):
        stream = default_workload("poisson", 10.0).stream(20.0, seed=77)
        assert stream.metadata["seed"] == "77"

    def test_metadata_survives_csv_round_trip(self, tmp_path):
        stream = default_workload("bursty", 15.0).stream(40.0, seed=2)
        path = write_trace_csv(stream, tmp_path / "b.csv")
        back = open_trace_csv(path)
        assert back.metadata["workload"] == "bursty"
        assert back.metadata["seed"] == "2"


class TestDefaultWorkload:
    def test_unknown_shape(self):
        with pytest.raises(ModelError, match="unknown workload"):
            default_workload("fractal", 10.0)

    def test_all_registry_names_resolve(self):
        for name in WORKLOADS:
            wl = default_workload(name, 12.0)
            assert wl.name == name
            assert wl.mean_rate == pytest.approx(12.0)

    def test_rate_must_be_positive(self):
        with pytest.raises(ModelError):
            default_workload("poisson", 0.0)
