"""Tests for scalar and integer maximisation."""

import math

import pytest

from repro.numerics.optimize import argmax_int, maximize_scalar


class TestMaximizeScalar:
    def test_parabola_peak(self):
        x, v = maximize_scalar(lambda t: -(t - 2.5) ** 2 + 7.0, 0.0, 10.0)
        assert x == pytest.approx(2.5, abs=1e-6)
        assert v == pytest.approx(7.0, abs=1e-10)

    def test_peak_at_boundary(self):
        x, v = maximize_scalar(lambda t: t, 0.0, 5.0)
        assert x == pytest.approx(5.0, abs=1e-4)
        assert v == pytest.approx(5.0, abs=1e-4)

    def test_degenerate_interval(self):
        x, v = maximize_scalar(lambda t: t * t, 3.0, 3.0)
        assert (x, v) == (3.0, 9.0)

    def test_no_polish_returns_grid_best(self):
        x, _ = maximize_scalar(
            lambda t: -(t - 0.5) ** 2, 0.0, 1.0, grid=4, polish=False
        )
        assert x == pytest.approx(0.5)

    def test_multimodal_picks_global_on_grid(self):
        # two peaks; the higher one (at 8) must win
        f = lambda t: math.exp(-((t - 2) ** 2)) + 2 * math.exp(-((t - 8) ** 2))  # noqa: E731
        x, _ = maximize_scalar(f, 0.0, 10.0, grid=128)
        assert x == pytest.approx(8.0, abs=1e-3)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            maximize_scalar(lambda t: t, 1.0, 0.0)


class TestArgmaxInt:
    def test_small_range_exhaustive(self):
        k, v = argmax_int(lambda k: -((k - 7) ** 2), 0, 20)
        assert (k, v) == (7, 0)

    def test_large_range_unimodal(self):
        peak = 12_345
        k, v = argmax_int(lambda k: -abs(k - peak), 0, 1_000_000)
        assert k == peak

    def test_fixed_load_shape(self):
        # V(k) = k * pi(C/k) for the paper's adaptive utility peaks near C
        from repro.utility import AdaptiveUtility

        u = AdaptiveUtility()
        capacity = 500.0
        k, _ = argmax_int(
            lambda k: u.fixed_load_total(k, capacity), 1, 50_000
        )
        assert abs(k - capacity) <= 2

    def test_peak_at_zero(self):
        k, v = argmax_int(lambda k: -k, 0, 10_000_000)
        assert (k, v) == (0, 0)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            argmax_int(lambda k: k, 5, 4)
