"""Tests for kink-aware quadrature."""

import math

import pytest

from repro.numerics.quadrature import integrate


class TestIntegrate:
    def test_polynomial(self):
        assert integrate(lambda x: 3.0 * x * x, 0.0, 2.0) == pytest.approx(8.0)

    def test_empty_interval(self):
        assert integrate(lambda x: x, 1.0, 1.0) == 0.0

    def test_semi_infinite_exponential(self):
        assert integrate(lambda x: math.exp(-x), 0.0, math.inf) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_step_function_with_breakpoint(self):
        f = lambda x: 1.0 if x >= 1.0 else 0.0  # noqa: E731
        value = integrate(f, 0.0, 3.0, points=[1.0])
        assert value == pytest.approx(2.0, abs=1e-9)

    def test_breakpoints_outside_interval_ignored(self):
        value = integrate(lambda x: x, 0.0, 1.0, points=[-5.0, 7.0])
        assert value == pytest.approx(0.5)

    def test_kinked_ramp(self):
        a = 0.5
        ramp = lambda x: min(max((x - a) / (1 - a), 0.0), 1.0)  # noqa: E731
        value = integrate(ramp, 0.0, 2.0, points=[a, 1.0])
        # triangle from a to 1 (area (1-a)/2) plus unit strip from 1 to 2
        assert value == pytest.approx((1 - a) / 2 + 1.0, abs=1e-10)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            integrate(lambda x: x, 2.0, 1.0)
