"""Tests for bracket expansion."""

import math

import pytest

from repro.errors import BracketError
from repro.numerics.brackets import expand_bracket_downward, expand_bracket_upward


class TestExpandUpward:
    def test_finds_sign_change_beyond_initial_interval(self):
        f = lambda x: x - 100.0  # noqa: E731
        lo, hi = expand_bracket_upward(f, 0.0, 1.0)
        assert f(lo) < 0.0 < f(hi)

    def test_immediate_sign_change_kept(self):
        f = lambda x: x - 0.5  # noqa: E731
        lo, hi = expand_bracket_upward(f, 0.0, 1.0)
        assert lo == 0.0 and hi == 1.0

    def test_root_at_lo_returns_degenerate_bracket(self):
        f = lambda x: x  # noqa: E731
        lo, hi = expand_bracket_upward(f, 0.0, 1.0)
        assert lo == hi == 0.0

    def test_respects_upper_limit(self):
        f = lambda x: x - 1e6  # noqa: E731
        with pytest.raises(BracketError):
            expand_bracket_upward(f, 0.0, 1.0, upper_limit=100.0)

    def test_no_sign_change_raises(self):
        f = lambda x: 1.0 + x * 0  # noqa: E731
        with pytest.raises(BracketError):
            expand_bracket_upward(f, 0.0, 1.0, max_steps=20)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            expand_bracket_upward(lambda x: x, 2.0, 1.0)

    def test_exponential_scale_target(self):
        # root near 2^40: geometric growth must reach it in few steps
        f = lambda x: x - 2.0**40  # noqa: E731
        lo, hi = expand_bracket_upward(f, 0.0, 1.0)
        assert f(hi) >= 0.0


class TestExpandDownward:
    def test_finds_sign_change_below(self):
        f = lambda x: math.log(x + 1e-12) + 5.0  # noqa: E731
        lo, hi = expand_bracket_downward(f, 0.5, 1.0)
        assert (f(lo) < 0.0) != (f(hi) < 0.0)

    def test_respects_lower_limit(self):
        f = lambda x: x + 1.0  # noqa: E731  (never negative above 0)
        with pytest.raises(BracketError):
            expand_bracket_downward(f, 0.5, 1.0, lower_limit=0.0)

    def test_root_at_hi_returns_degenerate_bracket(self):
        f = lambda x: x - 1.0  # noqa: E731
        lo, hi = expand_bracket_downward(f, 0.5, 1.0)
        assert lo == hi == 1.0

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            expand_bracket_downward(lambda x: x, 2.0, 1.0)
