"""Tests for root finding and monotone inversion."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BracketError
from repro.numerics.solvers import find_root, invert_monotone


class TestFindRoot:
    def test_simple_linear_root(self):
        assert find_root(lambda x: x - 3.0, 0.0, 10.0) == pytest.approx(3.0)

    def test_transcendental_root(self):
        root = find_root(lambda x: math.cos(x) - x, 0.0, 1.0)
        assert math.cos(root) == pytest.approx(root, abs=1e-10)

    def test_root_at_endpoints(self):
        assert find_root(lambda x: x, 0.0, 1.0) == 0.0
        assert find_root(lambda x: x - 1.0, 0.0, 1.0) == 1.0

    def test_expansion_needed(self):
        root = find_root(lambda x: x - 50.0, 0.0, 1.0, expand=True)
        assert root == pytest.approx(50.0)

    def test_no_sign_change_without_expand_raises(self):
        with pytest.raises(BracketError):
            find_root(lambda x: x - 50.0, 0.0, 1.0)

    def test_label_appears_in_error(self):
        with pytest.raises(BracketError, match="my quantity"):
            find_root(lambda x: x + 1.0, 0.0, 1.0, label="my quantity")

    @given(st.floats(min_value=-50.0, max_value=50.0))
    @settings(max_examples=50, deadline=None)
    def test_recovers_arbitrary_linear_roots(self, target):
        root = find_root(
            lambda x: x - target, -100.0, 100.0, xtol=1e-12
        )
        assert abs(root - target) < 1e-9


class TestInvertMonotone:
    def test_increasing_inverse(self):
        x = invert_monotone(lambda t: t * t, 9.0, 0.0, 10.0, increasing=True)
        assert x == pytest.approx(3.0)

    def test_decreasing_inverse(self):
        x = invert_monotone(
            lambda t: math.exp(-t), 0.5, 0.0, 10.0, increasing=False
        )
        assert x == pytest.approx(math.log(2.0), abs=1e-9)

    def test_expands_past_initial_interval(self):
        x = invert_monotone(lambda t: t, 400.0, 0.0, 1.0, increasing=True)
        assert x == pytest.approx(400.0)

    def test_target_met_at_lo_with_clip(self):
        x = invert_monotone(
            lambda t: t, -1.0, 0.0, 10.0, increasing=True, clip="lo"
        )
        assert x == 0.0

    def test_target_met_at_lo_without_clip_raises(self):
        with pytest.raises(BracketError):
            invert_monotone(lambda t: t, -1.0, 0.0, 10.0, increasing=True)

    def test_unreachable_target_clips_high(self):
        # f saturates at 1, target 2 unreachable
        x = invert_monotone(
            lambda t: 1.0 - math.exp(-t),
            2.0,
            0.0,
            1.0,
            increasing=True,
            upper_limit=50.0,
            clip="hi",
        )
        assert x == 50.0

    def test_unreachable_target_raises_without_clip(self):
        with pytest.raises(BracketError):
            invert_monotone(
                lambda t: 1.0 - math.exp(-t),
                2.0,
                0.0,
                1.0,
                increasing=True,
                upper_limit=50.0,
            )

    @given(st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=50, deadline=None)
    def test_exponential_cdf_inverse(self, q):
        x = invert_monotone(
            lambda t: 1.0 - math.exp(-t), q, 0.0, 1.0, increasing=True
        )
        assert x == pytest.approx(-math.log(1.0 - q), abs=1e-8)
