"""Tests for series summation, fixed-point iteration and the shared
moment-tail table / polynomial-tail machinery."""

import math

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.loads import AlgebraicLoad, GeometricLoad
from repro.numerics.series import (
    TAIL_DEGREE,
    fixed_point,
    power_series_tail,
    shared_moment_tail_table,
    sum_series,
)
from repro.utility import AdaptiveUtility


class TestSumSeries:
    def test_geometric_series(self):
        total = sum_series(lambda k: 0.5**k, 0, tol=1e-14)
        assert total == pytest.approx(2.0, abs=1e-10)

    def test_with_tail_bound_stops_early(self):
        calls = []

        def term(k):
            calls.append(k)
            return 0.5**k

        total = sum_series(
            term, 0, tol=1e-6, tail_bound=lambda k: 2.0 * 0.5**k
        )
        assert total == pytest.approx(2.0, abs=1e-5)
        assert max(calls) < 64  # the quiet-run path would go further

    def test_survives_a_dip_of_zero_terms(self):
        # zero for k in [0, 45): a naive "stop on first small term" rule
        # would truncate inside the dip; the quiet-run window (64
        # consecutive negligible terms) must carry the sum across it
        def term(k):
            if k < 45:
                return 0.0
            return 0.5 ** (k - 45) if k < 150 else 0.0

        total = sum_series(term, 0, tol=1e-12)
        assert total == pytest.approx(2.0, abs=1e-9)

    def test_dip_longer_than_quiet_run_is_a_known_limit(self):
        # dips longer than QUIET_RUN terms require a tail_bound; the
        # bare heuristic stops early by design
        def term(k):
            return 1.0 if k == 200 else 0.0

        assert sum_series(term, 0, tol=1e-12) == 0.0

    def test_divergent_series_raises(self):
        with pytest.raises(ConvergenceError):
            sum_series(lambda k: 1.0, 0, max_terms=1000)

    def test_poisson_mean_identity(self):
        nu = 7.0
        total = sum_series(
            lambda k: k * math.exp(-nu) * nu**k / math.factorial(k), 0
        )
        assert total == pytest.approx(nu, abs=1e-9)


class TestFixedPoint:
    def test_cosine_fixed_point(self):
        x = fixed_point(math.cos, 1.0)
        assert math.cos(x) == pytest.approx(x, abs=1e-9)

    def test_damping_stabilises_oscillation(self):
        # x -> 3.2 x (1 - x) (logistic, oscillatory); damping converges
        # to the unstable fixed point x* = 1 - 1/3.2
        f = lambda x: 3.2 * x * (1.0 - x)  # noqa: E731
        x = fixed_point(f, 0.5, damping=0.3, tol=1e-10)
        assert x == pytest.approx(1.0 - 1.0 / 3.2, abs=1e-8)

    def test_non_contracting_map_raises(self):
        with pytest.raises(ConvergenceError):
            fixed_point(lambda x: x + 1.0, 0.0, max_iter=50)

    def test_invalid_damping_rejected(self):
        with pytest.raises(ValueError):
            fixed_point(math.cos, 1.0, damping=0.0)
        with pytest.raises(ValueError):
            fixed_point(math.cos, 1.0, damping=1.5)

    def test_retry_style_map(self):
        # the retrying model's map m -> L/(1 - theta(m)) with a mild
        # blocking curve has a unique fixed point
        L = 10.0
        theta = lambda m: 0.2 * m / (m + 50.0)  # noqa: E731
        m_star = fixed_point(lambda m: L / (1.0 - theta(m)), L)
        assert m_star == pytest.approx(L / (1.0 - theta(m_star)), abs=1e-8)
        assert m_star > L


class TestPowerSeriesTail:
    def test_small_polynomial_exact(self):
        # sum_j a_j S_j C**j with a*S = (1, 2, 3): 1 + 2C + 3C^2
        caps = np.array([0.0, 1.0, 2.0])
        out = power_series_tail([1.0, 2.0, 3.0], [1.0, 1.0, 1.0], caps)
        np.testing.assert_allclose(out, 1.0 + 2.0 * caps + 3.0 * caps**2)

    def test_scalar_capacity_keeps_scalar_shape(self):
        out = power_series_tail([1.0, 2.0], [1.0, 1.0], 3.0)
        assert out.shape == ()
        assert float(out) == pytest.approx(7.0)

    def test_empty_grid_and_constant_series(self):
        assert power_series_tail([1.0, 2.0], [1.0, 1.0], np.array([])).size == 0
        out = power_series_tail([5.0], [2.0], np.array([1.0, 3.0]))
        np.testing.assert_array_equal(out, [10.0, 10.0])

    @staticmethod
    def _paper_weights(level):
        load = AlgebraicLoad.from_mean(3.0, 100.0)
        mac = AdaptiveUtility().maclaurin(TAIL_DEGREE)
        table = shared_moment_tail_table(load, level)
        assert table is not None
        return mac.coefficients, table

    def test_matches_horner_reference(self):
        coeffs, table = self._paper_weights(1024)
        caps = np.array([20.0, 100.0, 220.0, 400.0])
        out = power_series_tail(coeffs, table, caps)
        weights = np.asarray(coeffs, dtype=float) * np.asarray(table, dtype=float)
        ref = [
            float(np.polynomial.polynomial.polyval(c, weights)) for c in caps
        ]
        np.testing.assert_allclose(out, ref, rtol=1e-13)

    def test_large_capacity_rescale_path(self):
        """Past C ~ 1600 the raw power ladder overflows (C**96 = inf).

        The ldexp-rescaled path must agree with an extended-precision
        Horner reference instead of emitting inf/nan — this is the
        regression test for the welfare-envelope overflow bug.
        """
        level = 32768  # certified split point for capacities this deep
        coeffs, table = self._paper_weights(level)
        caps = np.array([2000.0, 6000.0, 12000.0])
        with np.errstate(over="raise", invalid="raise"):
            out = power_series_tail(coeffs, table, caps)
        assert np.all(np.isfinite(out))
        weights = (
            np.asarray(coeffs, dtype=np.longdouble)
            * np.asarray(table, dtype=np.longdouble)
        )
        ref = []
        for c in caps:
            acc = np.longdouble(0.0)
            for w in weights[::-1]:
                acc = acc * np.longdouble(c) + w
            ref.append(float(acc))
        np.testing.assert_allclose(out, ref, rtol=1e-11)


class TestSharedMomentTailTable:
    def test_memoised_per_load_value(self):
        # two distinct but equal loads share one table object: the cache
        # keys by value semantics, which is what lets every model over
        # the same distribution reuse the work
        a = GeometricLoad.from_mean(10.0)
        b = GeometricLoad.from_mean(10.0)
        assert a is not b
        table = shared_moment_tail_table(a, 64)
        assert shared_moment_tail_table(b, 64) is table

    def test_infeasible_level_memoises_none(self):
        calls = []

        class _Probe(GeometricLoad):
            def moment_tail_table(self, n, degree):
                calls.append(n)
                return None

            def __repr__(self):
                return f"_Probe({self._q!r})"

        load = _Probe.from_mean(10.0)
        assert shared_moment_tail_table(load, 128) is None
        assert shared_moment_tail_table(load, 128) is None
        assert calls == [128]  # the discovery is paid for exactly once
