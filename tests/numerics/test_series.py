"""Tests for series summation and fixed-point iteration."""

import math

import pytest

from repro.errors import ConvergenceError
from repro.numerics.series import fixed_point, sum_series


class TestSumSeries:
    def test_geometric_series(self):
        total = sum_series(lambda k: 0.5**k, 0, tol=1e-14)
        assert total == pytest.approx(2.0, abs=1e-10)

    def test_with_tail_bound_stops_early(self):
        calls = []

        def term(k):
            calls.append(k)
            return 0.5**k

        total = sum_series(
            term, 0, tol=1e-6, tail_bound=lambda k: 2.0 * 0.5**k
        )
        assert total == pytest.approx(2.0, abs=1e-5)
        assert max(calls) < 64  # the quiet-run path would go further

    def test_survives_a_dip_of_zero_terms(self):
        # zero for k in [0, 45): a naive "stop on first small term" rule
        # would truncate inside the dip; the quiet-run window (64
        # consecutive negligible terms) must carry the sum across it
        def term(k):
            if k < 45:
                return 0.0
            return 0.5 ** (k - 45) if k < 150 else 0.0

        total = sum_series(term, 0, tol=1e-12)
        assert total == pytest.approx(2.0, abs=1e-9)

    def test_dip_longer_than_quiet_run_is_a_known_limit(self):
        # dips longer than QUIET_RUN terms require a tail_bound; the
        # bare heuristic stops early by design
        def term(k):
            return 1.0 if k == 200 else 0.0

        assert sum_series(term, 0, tol=1e-12) == 0.0

    def test_divergent_series_raises(self):
        with pytest.raises(ConvergenceError):
            sum_series(lambda k: 1.0, 0, max_terms=1000)

    def test_poisson_mean_identity(self):
        nu = 7.0
        total = sum_series(
            lambda k: k * math.exp(-nu) * nu**k / math.factorial(k), 0
        )
        assert total == pytest.approx(nu, abs=1e-9)


class TestFixedPoint:
    def test_cosine_fixed_point(self):
        x = fixed_point(math.cos, 1.0)
        assert math.cos(x) == pytest.approx(x, abs=1e-9)

    def test_damping_stabilises_oscillation(self):
        # x -> 3.2 x (1 - x) (logistic, oscillatory); damping converges
        # to the unstable fixed point x* = 1 - 1/3.2
        f = lambda x: 3.2 * x * (1.0 - x)  # noqa: E731
        x = fixed_point(f, 0.5, damping=0.3, tol=1e-10)
        assert x == pytest.approx(1.0 - 1.0 / 3.2, abs=1e-8)

    def test_non_contracting_map_raises(self):
        with pytest.raises(ConvergenceError):
            fixed_point(lambda x: x + 1.0, 0.0, max_iter=50)

    def test_invalid_damping_rejected(self):
        with pytest.raises(ValueError):
            fixed_point(math.cos, 1.0, damping=0.0)
        with pytest.raises(ValueError):
            fixed_point(math.cos, 1.0, damping=1.5)

    def test_retry_style_map(self):
        # the retrying model's map m -> L/(1 - theta(m)) with a mild
        # blocking curve has a unique fixed point
        L = 10.0
        theta = lambda m: 0.2 * m / (m + 50.0)  # noqa: E731
        m_star = fixed_point(lambda m: L / (1.0 - theta(m)), L)
        assert m_star == pytest.approx(L / (1.0 - theta(m_star)), abs=1e-8)
        assert m_star > L
