"""Property-based tests of the batch numerics kernels.

The contract under test: every batch primitive is the scalar primitive
run element-wise — same roots, same endpoint conventions, and failures
*flagged* in the convergence mask rather than returned as plausible
numbers.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.batch import (
    find_roots,
    invert_monotone_batch,
    share_weighted_sums,
)
from repro.numerics.solvers import find_root, invert_monotone

#: Both paths resolve brackets to xtol + rtol*|x| with xtol = 1e-12;
#: element-wise agreement can therefore differ by ~2 ulps of that.
ROOT_RTOL = 1e-9
ROOT_ATOL = 1e-10

targets_arrays = st.lists(
    st.floats(min_value=1e-3, max_value=999.0), min_size=1, max_size=32
)


class TestFindRootsMatchesScalar:
    @given(cs=targets_arrays)
    @settings(max_examples=40, deadline=None)
    def test_cubic_family(self, cs):
        """x^3 = c element-wise, all well-bracketed in [0, 10]."""
        cs = np.asarray(cs)
        result = find_roots(
            lambda x, c: x**3 - c, 0.0, 10.0, args=(cs,), label="cubic"
        )
        assert bool(np.all(result.converged))
        scalar = np.array(
            [find_root(lambda x: x**3 - c, 0.0, 10.0) for c in cs]
        )
        assert np.allclose(result.roots, scalar, rtol=ROOT_RTOL, atol=ROOT_ATOL)

    @given(
        cs=targets_arrays,
        scale=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_exponential_family_with_expansion(self, cs, scale):
        """1 - exp(-x/s) = t needs upward bracket expansion for small s."""
        cs = np.asarray(cs)
        ts = cs / (1.0 + cs)  # targets in (0, 1), root = -s*log1p(-t)
        result = find_roots(
            lambda x, t: (1.0 - np.exp(-x / scale)) - t,
            0.0,
            1e-3,
            args=(ts,),
            expand=True,
            upper_limit=1e9,
            label="exp family",
        )
        assert bool(np.all(result.converged))
        exact = -scale * np.log1p(-ts)
        assert np.allclose(result.roots, exact, rtol=1e-7, atol=1e-10)


class TestNonConvergedFlaggedNotGarbage:
    @given(
        cs=st.lists(
            st.floats(min_value=0.5, max_value=50.0), min_size=2, max_size=24
        ),
        flips=st.lists(st.booleans(), min_size=2, max_size=24),
    )
    @settings(max_examples=40, deadline=None)
    def test_mixed_bracketed_and_rootless(self, cs, flips):
        """Elements with no sign change in-bracket must come back
        nan + converged=False, never a finite wrong answer; their
        well-posed neighbours must still solve correctly."""
        n = min(len(cs), len(flips))
        cs = np.asarray(cs[:n])
        rootless = np.asarray(flips[:n])
        # f(x) = x^2 - c solvable in [0, 8] iff c <= 64; rootless rows
        # get c shifted above the bracket's reach
        shifted = np.where(rootless, cs + 100.0, cs)
        result = find_roots(
            lambda x, c: x**2 - c, 0.0, 8.0, args=(shifted,), label="mixed"
        )
        assert not np.any(result.converged[rootless])
        assert np.all(np.isnan(result.roots[rootless]))
        ok = ~rootless
        assert bool(np.all(result.converged[ok]))
        assert np.allclose(
            result.roots[ok], np.sqrt(cs[ok]), rtol=1e-9, atol=1e-10
        )


class TestInvertMonotoneBatchMatchesScalar:
    @given(ts=st.lists(
        st.floats(min_value=1e-6, max_value=0.999), min_size=1, max_size=32
    ))
    @settings(max_examples=40, deadline=None)
    def test_saturating_curve(self, ts):
        ts = np.asarray(ts)
        curve = lambda x: 1.0 - np.exp(-np.asarray(x))  # noqa: E731
        result = invert_monotone_batch(
            curve, ts, np.zeros(ts.size), np.full(ts.size, 0.5),
            upper_limit=1e6, label="batch saturating",
        )
        assert bool(np.all(result.converged))
        scalar = np.array(
            [
                invert_monotone(
                    lambda x: 1.0 - np.exp(-x), t, 0.0, 0.5, upper_limit=1e6
                )
                for t in ts
            ]
        )
        assert np.allclose(result.roots, scalar, rtol=ROOT_RTOL, atol=ROOT_ATOL)


class TestShareWeightedSums:
    @given(
        n=st.integers(min_value=2, max_value=400),
        m=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_direct_sum(self, n, m, seed):
        rng = np.random.default_rng(seed)
        weights = rng.random(n)
        weights[rng.random(n) < 0.3] = 0.0  # exercise zero-run trimming
        caps = rng.uniform(0.5, 50.0, size=m)
        value_fn = lambda b: 1.0 - np.exp(-np.asarray(b))  # noqa: E731
        got = share_weighted_sums(caps, weights, value_fn, k_start=1)
        ks = np.arange(1, n, dtype=float)
        want = np.array(
            [np.dot(weights[1:], value_fn(c / ks)) for c in caps]
        )
        assert np.allclose(got, want, rtol=1e-12, atol=1e-14)

    @given(
        n=st.integers(min_value=4, max_value=200),
        m=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_kmax_masking(self, n, m, seed):
        rng = np.random.default_rng(seed)
        weights = rng.random(n)
        caps = rng.uniform(0.5, 50.0, size=m)
        kmax = rng.integers(1, n, size=m)
        value_fn = lambda b: np.asarray(b) / (1.0 + np.asarray(b))  # noqa: E731
        got = share_weighted_sums(
            caps, weights, value_fn, k_start=1, kmax=kmax
        )
        ks = np.arange(1, n, dtype=float)
        want = np.array(
            [
                np.dot(weights[1:] * (ks <= km), value_fn(c / ks))
                for c, km in zip(caps, kmax)
            ]
        )
        assert np.allclose(got, want, rtol=1e-12, atol=1e-14)
