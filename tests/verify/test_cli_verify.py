"""The ``verify`` CLI subcommand: exit codes, JSON envelope, caching."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.verify.report import REPORT_SCHEMA


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


SUBSET = ["--only", "B1", "E1", "S1"]


class TestSelections:
    def test_json_envelope_for_a_subset(self, capsys):
        assert main(["verify", *SUBSET, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["_meta"] == {"config": "default"}
        assert payload["suite"] == "fast"
        assert payload["ok"] is True
        assert payload["counts"] == {"passed": 3, "failed": 0}
        assert [row["id"] for row in payload["invariants"]] == ["B1", "E1", "S1"]
        for row in payload["invariants"]:
            assert isinstance(row["residual"], float)
            assert row["paper_ref"]

    def test_text_render(self, capsys):
        assert main(["verify", "--only", "B1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("[B1")
        assert "-- suite fast: 1 passed, 0 failed" in out

    def test_unknown_id_exits_2(self, capsys):
        assert main(["verify", "--only", "NOPE"]) == 2
        assert "unknown invariant ids" in capsys.readouterr().err

    def test_selections_bypass_the_cache(self, tmp_path, capsys):
        cache = str(tmp_path)
        assert main(["verify", *SUBSET, "--cache-dir", cache, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "cache" not in payload["_meta"]
        assert not any(tmp_path.iterdir())


class TestSuiteRuns:
    def test_full_fast_suite_cold_then_warm_cache(self, tmp_path, capsys):
        cache = str(tmp_path)
        assert main(["verify", "--cache-dir", cache, "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["_meta"]["cache"] == "miss"
        assert cold["ok"] is True
        assert cold["counts"]["passed"] >= 25
        assert cold["counts"]["failed"] == 0
        assert set(cold["engines"]) == {
            "scalar", "batch", "ensemble", "continuum", "meanfield"
        }

        assert main(["verify", "--cache-dir", cache, "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["_meta"]["cache"] == "hit"
        assert warm["invariants"] == cold["invariants"]

    def test_profile_meta_includes_metrics(self, capsys):
        assert main(["verify", "--only", "B1", "--json", "--profile"]) == 0
        out = capsys.readouterr().out
        # --profile appends a text report after the JSON document
        payload, _ = json.JSONDecoder().raw_decode(out)
        counters = payload["_meta"]["metrics"]["counters"]
        assert counters["verify.invariants.evaluated"] == 1
