"""Tolerance-policy mechanics: normalised residuals, bounds, monotone."""

import math

import numpy as np
import pytest

from repro.verify.tolerance import (
    EXACT,
    GOLDEN,
    MONTE_CARLO,
    STRUCTURAL,
    TIGHT,
    TolerancePolicy,
    bound_residual,
    monotone_residual,
)


class TestResidualSemantics:
    def test_zero_on_exact_agreement(self):
        assert TIGHT.residual(1.2345, 1.2345) == 0.0

    def test_one_at_the_allowance_edge(self):
        policy = TolerancePolicy(atol=1e-3)
        assert policy.residual(1.001, 1.0) == pytest.approx(1.0)

    def test_scales_linearly_past_the_edge(self):
        policy = TolerancePolicy(atol=1e-3)
        assert policy.residual(1.005, 1.0) == pytest.approx(5.0)

    def test_rtol_uses_reference_magnitude(self):
        policy = TolerancePolicy(rtol=1e-2)
        # allowance at ref=200 is 2; deviation 1 -> residual 0.5
        assert policy.residual(201.0, 200.0) == pytest.approx(0.5)

    def test_worst_element_wins(self):
        policy = TolerancePolicy(atol=1.0)
        got = np.array([1.0, 2.0, 5.0])
        ref = np.array([1.0, 1.0, 1.0])
        assert policy.residual(got, ref) == pytest.approx(4.0)

    def test_ci_halfwidth_widens_allowance(self):
        deviation = 0.01
        without = MONTE_CARLO.residual(0.5 + deviation, 0.5)
        with_ci = MONTE_CARLO.residual(0.5 + deviation, 0.5, ci_halfwidth=0.01)
        assert with_ci < without
        assert MONTE_CARLO.agree(0.5 + deviation, 0.5, ci_halfwidth=0.01)

    def test_broadcasts_scalar_reference(self):
        policy = TolerancePolicy(atol=1e-6)
        assert policy.residual(np.zeros(4), 0.0) == 0.0

    def test_empty_arrays_agree(self):
        assert TIGHT.residual(np.array([]), np.array([])) == 0.0

    def test_mismatched_nan_is_infinite(self):
        assert TIGHT.residual(float("nan"), 1.0) == math.inf
        assert TIGHT.residual(1.0, float("nan")) == math.inf

    def test_paired_nans_agree(self):
        got = np.array([1.0, np.nan])
        ref = np.array([1.0, np.nan])
        assert TIGHT.residual(got, ref) == 0.0

    def test_agree_is_residual_at_most_one(self):
        policy = TolerancePolicy(atol=1e-3)
        assert policy.agree(1.0005, 1.0)
        assert not policy.agree(1.002, 1.0)


class TestPolicyValidation:
    def test_rejects_negative_tolerances(self):
        with pytest.raises(ValueError):
            TolerancePolicy(rtol=-1e-9)

    def test_rejects_the_zero_policy(self):
        with pytest.raises(ValueError):
            TolerancePolicy()

    def test_named_policies_are_ordered_loosest_last(self):
        assert EXACT.atol < TIGHT.atol <= GOLDEN.rtol < MONTE_CARLO.atol

    def test_describe_mentions_every_nonzero_part(self):
        text = MONTE_CARLO.describe()
        assert "atol" in text and "ci*" in text and "rtol" not in text
        assert STRUCTURAL.describe() == "atol=1e-09"


class TestBoundResidual:
    def test_inside_band_is_zero(self):
        assert bound_residual([0.0, 0.5, 1.0], lower=0.0, upper=1.0) == 0.0

    def test_overshoot_normalised_by_atol(self):
        assert bound_residual([1.5], upper=1.0, atol=0.5) == pytest.approx(1.0)

    def test_worst_side_wins(self):
        residual = bound_residual([-2.0, 1.5], lower=0.0, upper=1.0, atol=1.0)
        assert residual == pytest.approx(2.0)

    def test_one_sided_bounds(self):
        assert bound_residual([5.0, 100.0], lower=0.0) == 0.0
        assert bound_residual([-1e-6], lower=0.0, atol=1e-9) > 1.0

    def test_nan_fails(self):
        assert bound_residual([float("nan")], lower=0.0) == math.inf


class TestMonotoneResidual:
    def test_increasing_sequence_passes(self):
        assert monotone_residual([1.0, 1.0, 2.0, 3.0]) == 0.0

    def test_violation_normalised_by_atol(self):
        assert monotone_residual([1.0, 0.5], atol=0.25) == pytest.approx(2.0)

    def test_decreasing_direction(self):
        assert monotone_residual([3.0, 2.0, 2.0], increasing=False) == 0.0
        assert monotone_residual([2.0, 3.0], increasing=False, atol=1.0) == 1.0

    def test_short_sequences_pass(self):
        assert monotone_residual([1.0]) == 0.0
        assert monotone_residual([]) == 0.0

    def test_nan_fails(self):
        assert monotone_residual([1.0, float("nan")]) == math.inf
