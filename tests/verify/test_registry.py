"""Registry and report mechanics, exercised on a private registry."""

import math

import pytest

from repro import obs
from repro.experiments.params import DEFAULT_CONFIG
from repro.verify.registry import (
    CheckResult,
    Invariant,
    InvariantRegistry,
)
from repro.verify.report import (
    REPORT_SCHEMA,
    InvariantOutcome,
    VerificationReport,
)
from repro.verify.tolerance import STRUCTURAL, TIGHT


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _passing(_config):
    return CheckResult(residual=0.25, detail="fine")


def _failing(_config):
    return CheckResult(residual=4.0, detail="off by 4 allowances")


def _raising(_config):
    raise ValueError("boom")


@pytest.fixture()
def registry():
    reg = InvariantRegistry()
    reg.invariant(
        "D1", "a passing check", paper_ref="s1", engines=("scalar",), tolerance=TIGHT
    )(_passing)
    reg.invariant(
        "D2",
        "a deep-only check",
        paper_ref="s2",
        engines=("ensemble",),
        tolerance=STRUCTURAL,
        suites=("deep",),
    )(_passing)
    reg.invariant(
        "D3", "a failing check", paper_ref="s3", engines=("batch",), tolerance=TIGHT
    )(_failing)
    return reg


class TestRegistration:
    def test_duplicate_id_rejected(self, registry):
        with pytest.raises(ValueError, match="duplicate"):
            registry.invariant(
                "D1", "again", paper_ref="s1", engines=("scalar",), tolerance=TIGHT
            )(_passing)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engines"):
            Invariant(
                inv_id="X",
                description="d",
                paper_ref="s",
                engines=("quantum",),
                suites=("fast",),
                tolerance=TIGHT,
                check=_passing,
            )

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suites"):
            Invariant(
                inv_id="X",
                description="d",
                paper_ref="s",
                engines=("scalar",),
                suites=("weekly",),
                tolerance=TIGHT,
                check=_passing,
            )

    def test_empty_engines_rejected(self):
        with pytest.raises(ValueError, match="at least one engine"):
            Invariant(
                inv_id="X",
                description="d",
                paper_ref="s",
                engines=(),
                suites=("fast",),
                tolerance=TIGHT,
                check=_passing,
            )

    def test_lookup_protocol(self, registry):
        assert len(registry) == 3
        assert "D1" in registry and "NOPE" not in registry
        assert registry.get("D3").description == "a failing check"
        assert [inv.inv_id for inv in registry.all()] == ["D1", "D2", "D3"]


class TestSelection:
    def test_fast_excludes_deep_only(self, registry):
        assert [i.inv_id for i in registry.select("fast")] == ["D1", "D3"]

    def test_deep_is_a_superset(self, registry):
        assert [i.inv_id for i in registry.select("deep")] == ["D1", "D2", "D3"]

    def test_ids_restrict(self, registry):
        assert [i.inv_id for i in registry.select("deep", ids=["D2"])] == ["D2"]

    def test_unknown_ids_raise(self, registry):
        with pytest.raises(KeyError, match="NOPE"):
            registry.select("fast", ids=["D1", "NOPE"])

    def test_unknown_suite_raises(self, registry):
        with pytest.raises(ValueError, match="unknown suite"):
            registry.select("weekly")


class TestEvaluation:
    def test_run_produces_a_report(self, registry):
        report = registry.run("fast", DEFAULT_CONFIG)
        assert report.suite == "fast"
        assert [o.inv_id for o in report.outcomes] == ["D1", "D3"]
        assert not report.ok
        assert report.counts() == {"passed": 1, "failed": 1}
        assert [o.inv_id for o in report.failures()] == ["D3"]
        assert report.engines == ("batch", "scalar")

    def test_check_exception_becomes_failure(self, registry):
        registry.invariant(
            "D4", "raises", paper_ref="s4", engines=("scalar",), tolerance=TIGHT
        )(_raising)
        outcome = registry.get("D4").evaluate(DEFAULT_CONFIG)
        assert not outcome.passed
        assert outcome.residual == math.inf
        assert "check raised ValueError: boom" in outcome.detail

    def test_run_meters_counters_when_obs_enabled(self, registry):
        obs.enable()
        registry.run("deep", DEFAULT_CONFIG)
        counters = obs.snapshot()["counters"]
        assert counters["verify.invariants.evaluated"] == 3
        assert counters["verify.invariants.failed"] == 1


class TestReportSerialisation:
    def test_round_trip(self, registry):
        report = registry.run("deep", DEFAULT_CONFIG)
        clone = VerificationReport.from_dict(report.to_dict())
        assert clone == report

    def test_infinite_residual_survives_json(self, registry):
        registry.invariant(
            "D4", "raises", paper_ref="s4", engines=("scalar",), tolerance=TIGHT
        )(_raising)
        report = registry.run("deep", DEFAULT_CONFIG)
        payload = report.to_dict()
        (bad,) = [o for o in payload["invariants"] if o["id"] == "D4"]
        assert bad["residual"] == "inf"
        clone = VerificationReport.from_dict(payload)
        assert clone.failures()[-1].residual == math.inf

    def test_unknown_schema_rejected(self, registry):
        payload = registry.run("fast", DEFAULT_CONFIG).to_dict()
        payload["schema"] = "repro.verify/v0"
        with pytest.raises(ValueError, match="schema"):
            VerificationReport.from_dict(payload)

    def test_dict_shape_is_the_cli_contract(self, registry):
        payload = registry.run("fast", DEFAULT_CONFIG).to_dict()
        assert payload["schema"] == REPORT_SCHEMA
        assert set(payload) == {
            "schema",
            "suite",
            "ok",
            "counts",
            "engines",
            "wall_seconds",
            "invariants",
        }
        for row in payload["invariants"]:
            assert set(row) == {
                "id",
                "description",
                "paper_ref",
                "engines",
                "passed",
                "residual",
                "tolerance",
                "detail",
                "seconds",
            }

    def test_render_has_a_row_per_invariant_and_a_summary(self, registry):
        report = registry.run("fast", DEFAULT_CONFIG)
        lines = report.render().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("[D1") and "ok" in lines[0]
        assert "FAIL" in lines[1]
        assert lines[2].startswith("-- suite fast: 1 passed, 1 failed")

    def test_outcome_round_trip(self):
        outcome = InvariantOutcome(
            inv_id="Z1",
            description="d",
            paper_ref="s",
            engines=("scalar", "batch"),
            passed=True,
            residual=0.5,
            tolerance="atol=1",
            detail="",
            seconds=0.01,
        )
        assert InvariantOutcome.from_dict(outcome.to_dict()) == outcome
