"""The real catalogue: fast-suite acceptance and cache plumbing."""

import pytest

from repro import obs
from repro.experiments.params import DEFAULT_CONFIG
from repro.runner.cache import ResultCache, decode_result, encode_result
from repro.verify import runner as verify_runner
from repro.verify import invariants
from repro.verify.registry import ENGINES, REGISTRY
from repro.verify.report import InvariantOutcome, VerificationReport


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def fast_report():
    """One evaluation of the fast suite shared by the assertions below."""
    return verify_runner.run_suite("fast")


class TestCatalogue:
    def test_at_least_25_invariants_registered(self):
        assert invariants.catalogue_size() >= 25

    def test_fast_suite_is_at_least_25_invariants(self):
        assert len(REGISTRY.select("fast")) >= 25

    def test_deep_suite_is_a_superset_of_fast(self):
        fast = {inv.inv_id for inv in REGISTRY.select("fast")}
        deep = {inv.inv_id for inv in REGISTRY.select("deep")}
        assert fast < deep
        assert {"S4", "S5"} <= deep - fast

    def test_catalogue_spans_all_four_engines(self):
        covered = set()
        for inv in REGISTRY.select("fast"):
            covered.update(inv.engines)
        assert covered == set(ENGINES)

    def test_every_invariant_cites_the_paper(self):
        for inv in REGISTRY.all():
            assert inv.paper_ref, inv.inv_id
            assert inv.description, inv.inv_id

    def test_trace_replay_invariants_ride_the_fast_suite(self):
        fast = {inv.inv_id for inv in REGISTRY.select("fast")}
        assert {"T1", "T2", "T3", "T4"} <= fast


class TestFastSuite:
    def test_everything_passes(self, fast_report):
        failures = [
            f"{o.inv_id}: residual={o.residual:.3g} {o.detail}"
            for o in fast_report.failures()
        ]
        assert fast_report.ok, "\n".join(failures)

    def test_report_covers_all_engines(self, fast_report):
        assert fast_report.engines == tuple(sorted(ENGINES))

    def test_trace_replay_invariants_ran(self, fast_report):
        ran = {o.inv_id for o in fast_report.outcomes}
        assert {"T1", "T2", "T3", "T4"} <= ran

    def test_residuals_are_reported_per_invariant(self, fast_report):
        assert len(fast_report.outcomes) >= 25
        for outcome in fast_report.outcomes:
            assert isinstance(outcome.residual, float)
            assert 0.0 <= outcome.residual <= 1.0
            assert outcome.seconds >= 0.0
            assert outcome.tolerance

    def test_json_report_round_trips(self, fast_report):
        import json

        payload = json.loads(json.dumps(fast_report.to_dict()))
        assert VerificationReport.from_dict(payload) == fast_report


def _tiny_report(suite="fast"):
    outcome = InvariantOutcome(
        inv_id="D1",
        description="stub",
        paper_ref="s1",
        engines=("scalar",),
        passed=True,
        residual=0.0,
        tolerance="atol=1",
        detail="",
        seconds=0.0,
    )
    return VerificationReport(suite=suite, outcomes=(outcome,), wall_seconds=0.0)


class TestCacheIntegration:
    def test_verification_kind_round_trips_through_codecs(self):
        report = _tiny_report()
        kind, payload = encode_result(report)
        assert kind == "verification"
        assert decode_result(kind, payload) == report

    def test_cached_suite_cold_then_warm(self, tmp_path, monkeypatch):
        calls = []

        def fake_run_suite(suite, config=None, *, ids=None):
            calls.append(suite)
            return _tiny_report(suite)

        monkeypatch.setattr(verify_runner, "run_suite", fake_run_suite)
        cache = ResultCache(tmp_path)
        report, from_cache = verify_runner.cached_suite("fast", cache=cache)
        assert not from_cache and calls == ["fast"]
        again, from_cache = verify_runner.cached_suite("fast", cache=cache)
        assert from_cache and calls == ["fast"]
        assert again == report

    def test_force_recomputes(self, tmp_path, monkeypatch):
        calls = []

        def fake_run_suite(suite, config=None, *, ids=None):
            calls.append(suite)
            return _tiny_report(suite)

        monkeypatch.setattr(verify_runner, "run_suite", fake_run_suite)
        cache = ResultCache(tmp_path)
        verify_runner.cached_suite("fast", cache=cache)
        verify_runner.cached_suite("fast", cache=cache, force=True)
        assert calls == ["fast", "fast"]

    def test_suites_address_distinct_entries(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            verify_runner, "run_suite", lambda s, c=None, *, ids=None: _tiny_report(s)
        )
        cache = ResultCache(tmp_path)
        verify_runner.cached_suite("fast", cache=cache)
        report, from_cache = verify_runner.cached_suite("deep", cache=cache)
        assert not from_cache
        assert report.suite == "deep"

    def test_suite_experiment_ids_carry_the_suite(self):
        assert verify_runner.suite_experiment("fast").exp_id == "V.fast"
        assert verify_runner.suite_experiment("deep").exp_id == "V.deep"


class TestDeepOnlyInvariantsAreDeclared:
    def test_deep_only_checks_exist_but_do_not_run_in_fast(self, fast_report):
        ran = {o.inv_id for o in fast_report.outcomes}
        assert "S4" not in ran and "S5" not in ran
        assert "S4" in REGISTRY and "S5" in REGISTRY


def test_default_config_is_the_implicit_argument(monkeypatch):
    seen = {}

    def spy(suite, config, *, ids=None):
        seen["config"] = config
        return _tiny_report(suite)

    monkeypatch.setattr(REGISTRY, "run", spy)
    verify_runner.run_suite("fast")
    assert seen["config"] is DEFAULT_CONFIG
