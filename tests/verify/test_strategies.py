"""Sanity of the shared strategy library itself."""

import pytest
from hypothesis import given, settings

from repro.experiments.params import PaperConfig
from repro.loads.base import LoadDistribution
from repro.meanfield import DriftField, solve_fixed_point
from repro.meanfield.scaling import SCALING_REGIMES, PopulationScale
from repro.models import SamplingModel, VariableLoadModel
from repro.simulation import PoissonProcess
from repro.verify import strategies


class TestDomainStrategies:
    @given(load=strategies.loads())
    @settings(max_examples=25, deadline=None)
    def test_loads_are_valid_distributions(self, load):
        assert isinstance(load, LoadDistribution)
        assert load.mean > 0.0

    @given(utility=strategies.utilities())
    @settings(max_examples=25, deadline=None)
    def test_utilities_are_normalised(self, utility):
        assert utility(0.0) == 0.0
        assert abs(utility(1e6) - 1.0) < 1e-9
        assert utility(0.5) <= utility(2.0) + 1e-12

    @given(model=strategies.models())
    @settings(max_examples=25, deadline=None)
    def test_models_satisfy_the_basic_ordering(self, model):
        assert isinstance(model, VariableLoadModel)
        assert model.reservation(10.0) >= model.best_effort(10.0) - 1e-10

    @given(model=strategies.sampling_models())
    @settings(max_examples=10, deadline=None)
    def test_sampling_models_have_at_least_two_samples(self, model):
        assert isinstance(model, SamplingModel)
        assert model.samples >= 2

    @given(pair=strategies.capacity_pairs())
    @settings(max_examples=25, deadline=None)
    def test_capacity_pairs_are_ordered(self, pair):
        lo, hi = pair
        assert lo <= hi

    @given(seed=strategies.seeds())
    @settings(max_examples=25, deadline=None)
    def test_seeds_fit_a_seed_sequence(self, seed):
        assert 0 <= seed < 2**32

    @given(config=strategies.paper_configs())
    @settings(max_examples=10, deadline=None)
    def test_paper_configs_construct_their_models(self, config):
        assert isinstance(config, PaperConfig)
        model = VariableLoadModel(config.load("poisson"), config.utility("adaptive"))
        assert 0.0 <= model.best_effort(config.kbar) <= 1.0

    @given(scale=strategies.populations())
    @settings(max_examples=25, deadline=None)
    def test_populations_are_valid_scales(self, scale):
        assert isinstance(scale, PopulationScale)
        assert scale.population > 0.0
        assert scale.regime in SCALING_REGIMES
        assert 1 <= scale.scaled_replications() <= scale.replications
        assert scale.capacity() > scale.population

    @given(scale=strategies.populations(regimes=("fluid",), max_population=400.0))
    @settings(max_examples=8, deadline=None)
    def test_fluid_fixed_point_tracks_any_drawn_population(self, scale):
        # the property the L-block checks at canonical scales, drawn
        # from the whole strategy domain: the fluid census density is
        # exact for linear-birth processes at every population
        fixed_point = solve_fixed_point(DriftField(PoissonProcess(scale.population)))
        assert fixed_point.census == pytest.approx(scale.population, rel=1e-9)


@given(model=strategies.models())
@settings(max_examples=1, deadline=None)
def test_model_memoisation_is_active(model):
    # drawing a model populates the shared cache (order-independent:
    # this test draws its own rather than relying on earlier tests)
    assert strategies.shared_model_cache_info()["size"] >= 1
