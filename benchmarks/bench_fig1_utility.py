"""Benchmark F1 — Figure 1: the adaptive utility curve (Eq. 2).

Regenerates the performance curve ``pi(b) = 1 - exp(-b^2/(kappa+b))``
with the paper's calibrated ``kappa = 0.62086`` and checks its shape
markers: convex start, unit asymptote, and the ``k_max(C) = C``
calibration property.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.figures import figure1
from repro.experiments.report import render_series
from repro.utility import AdaptiveUtility, calibrate_kappa


def test_fig1_adaptive_utility_curve(benchmark, config, record):
    series = run_once(benchmark, figure1, config)
    record("F1_adaptive_utility", render_series(series))
    values = series["utility"]
    # shape: starts at zero, monotone, saturates
    assert values[0] == 0.0
    assert np.all(np.diff(values) >= 0.0)
    assert values[-1] > 0.999


def test_fig1_kappa_calibration(benchmark, record):
    kappa = run_once(benchmark, calibrate_kappa)
    record("F1_kappa", f"calibrated kappa = {kappa:.6f} (paper: 0.62086)")
    assert abs(kappa - 0.62086) < 5e-6
    # calibration property: V(k) = k pi(C/k) peaks at k = C
    u = AdaptiveUtility(kappa)
    c = 100.0
    peak = max(range(80, 121), key=lambda k: u.fixed_load_total(k, c))
    assert abs(peak - c) <= 1
