"""Benchmark T4/S5.1 — the sampling extension (Section 5.1).

Records the sampling checkpoint table and the basic-vs-sampling sweep
(exponential load, adaptive apps) whose contrast the paper quotes:
delta jumps from <.01 to ~.2 and the bandwidth-gap peak from <10 to
~2 k_bar once performance is scored at the worst of S census samples.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.checkpoints import sampling_checkpoints
from repro.experiments.figures import sampling_series
from repro.experiments.report import render_checkpoints, render_series


def test_t4_sampling_checkpoints(benchmark, record):
    rows = run_once(benchmark, sampling_checkpoints)
    record("T4_sampling_checkpoints", render_checkpoints(rows))
    assert all(row.matches for row in rows)


def test_s51_sampling_sweep(benchmark, config, record):
    series = run_once(benchmark, sampling_series, "exponential", "adaptive", config)
    record("S51_sampling_sweep", render_series(series))

    basic = series["performance_gap_basic"]
    sampled = series["performance_gap_sampling"]
    # sampling widens the gap at every capacity
    assert np.all(sampled >= basic - 1e-12)
    # and by an order of magnitude in the mid range
    caps = series["capacity"]
    mid = (caps >= config.kbar) & (caps <= 3.0 * config.kbar)
    assert np.all(sampled[mid] > 5.0 * np.maximum(basic[mid], 1e-9))

    # the bandwidth-gap peak moves up by more than an order of magnitude
    assert series["bandwidth_gap_sampling"].max() > 10.0 * series[
        "bandwidth_gap_basic"
    ].max()
    # but still vanishes asymptotically for the exponential load
    assert series["bandwidth_gap_sampling"][-1] < series["bandwidth_gap_sampling"].max()
