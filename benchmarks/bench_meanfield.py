"""Benchmark — mean-field crossover vs the stochastic ensemble.

PR 9's tentpole claim: the fluid-diffusion engine answers the paper's
``B(C)``/``R(C)``/gap queries in O(1) time per population scale while
the ensemble's cost grows linearly in N, so past a (small) crossover
population the mean-field route dominates at matching statistical
precision.  This benchmark

* sweeps population scale N over ``SCALES``, timing an equal-budget
  CRN-paired ensemble gap (same replications/horizon/warmup) against
  ``MeanFieldSimulator.paired_gap`` built fresh each time (the fluid
  solve is inside the timing — no warm-cache flattery),
* asserts the issue's gate: speedup >= 50x at N >= 10^5 with the
  mean-field CI half-width within ``CI_MATCH_FACTOR`` of the
  ensemble's, and the two gap estimates compatible within their
  combined confidence intervals,
* records the measured crossover population (log-interpolated between
  scales; log-extrapolated and flagged when the smallest scale already
  favours the mean-field route), and
* demonstrates the refuse-don't-extrapolate envelope: below
  ``1/MAX_CV^2`` clients the Gaussian closure is invalid and the
  engine must raise ``OutOfDomainError`` rather than answer.

Results land in ``BENCH_meanfield.json`` at the repository root and
``benchmarks/results/meanfield_crossover.txt``; headline metrics feed
the bench-history ledger (``meanfield_speedup_1e5`` gates).

Run standalone (``python benchmarks/bench_meanfield.py``) or via the
harness (``pytest benchmarks/bench_meanfield.py``).
"""

from __future__ import annotations

import json
import math
import pathlib
import time
from typing import Dict, List

from repro import obs
from repro.errors import OutOfDomainError
from repro.experiments import DEFAULT_CONFIG
from repro.meanfield import MAX_CV, MeanFieldSimulator
from repro.simulation import Link, PoissonProcess, paired_gap

#: Population scales swept by the crossover study.  The top scale is
#: the issue's gate point; the bottom sits just above the validity
#: envelope's floor so the sweep brackets the whole usable range.
SCALES = (25.0, 100.0, 1_000.0, 10_000.0, 100_000.0)

#: The acceptance gate: mean-field over ensemble wall-clock at the
#: gate population, at matching CI width.
TARGET_SPEEDUP = 50.0
GATE_POPULATION = 1.0e5

#: "Matching CI width" tolerance: the mean-field gap CI half-width
#: must land within this factor of the ensemble's (both directions).
#: Empirically the ratio is ~1.0 at the gate scale and within ~1.3
#: across the sweep; 3.0 rejects a broken variance model without
#: flaking on replication noise.
CI_MATCH_FACTOR = 3.0

#: Equal budget handed to BOTH estimators at every scale.  The
#: horizon is ~12 census relaxation times, enough for the windowed
#: OU variance factor to sit in its ergodic regime.
REPLICATIONS = 4
HORIZON = 12.0
WARMUP = 3.0
SEED = 1998

#: Capacity tracks the population at fixed 95% provisioning so every
#: scale probes the same (interesting) blocking regime.
PROVISIONING = 0.95

#: Absolute slack on the gap agreement check, covering the fluid
#: limit's O(1/N) bias at the smallest scales.
GAP_BIAS_FLOOR = 5e-4

#: The Gaussian closure's validity floor for a Poisson census:
#: CV = 1/sqrt(N) <= MAX_CV.
ENVELOPE_FLOOR = 1.0 / MAX_CV**2

#: A population below the floor, used to prove the engine refuses.
REFUSAL_POPULATION = 10.0

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_meanfield.json"
HISTORY_PATH = ROOT / "benchmarks" / "results" / "history.jsonl"
EVENTS_PATH = ROOT / "benchmarks" / "results" / "meanfield_events.jsonl"

UTILITY = DEFAULT_CONFIG.utility("adaptive")


def _scale_case(population: float, seed: int) -> Dict:
    """Time the equal-budget paired gap through both engines."""
    process = PoissonProcess(population)
    link = Link(PROVISIONING * population)

    t0 = time.perf_counter()
    ensemble = paired_gap(
        process, link, UTILITY, REPLICATIONS, HORIZON, warmup=WARMUP, seed=seed
    ).summary()
    t_ensemble = time.perf_counter() - t0

    # a fresh simulator per scale: the fluid solve pays its full cost
    t0 = time.perf_counter()
    meanfield = (
        MeanFieldSimulator(process, link)
        .paired_gap(UTILITY, REPLICATIONS, HORIZON, warmup=WARMUP)
        .summary()
    )
    t_meanfield = time.perf_counter() - t0

    combined_ci = meanfield["gap_ci"] + ensemble["gap_ci"]
    return {
        "population": population,
        "capacity": PROVISIONING * population,
        "ensemble_s": round(t_ensemble, 4),
        "meanfield_ms": round(t_meanfield * 1e3, 3),
        "speedup": round(t_ensemble / t_meanfield, 1),
        "ensemble_gap": ensemble["gap"],
        "ensemble_gap_ci": ensemble["gap_ci"],
        "meanfield_gap": meanfield["gap"],
        "meanfield_gap_ci": meanfield["gap_ci"],
        "ensemble_be": ensemble["best_effort"],
        "meanfield_be": meanfield["best_effort"],
        "ci_ratio": round(meanfield["gap_ci"] / ensemble["gap_ci"], 3),
        "gap_compatible": bool(
            abs(meanfield["gap"] - ensemble["gap"]) <= combined_ci + GAP_BIAS_FLOOR
        ),
    }


def _crossover(cases: List[Dict]) -> Dict:
    """Locate the population where the speedup crosses 1x.

    Log-log interpolation between bracketing scales; when even the
    smallest scale favours the mean-field route, extrapolate below it
    from the first two points and note whether the crossing lands
    inside the validity envelope at all.
    """
    populations = [c["population"] for c in cases]
    speedups = [c["speedup"] for c in cases]

    def interp(i: int, j: int) -> float:
        x0, x1 = math.log(populations[i]), math.log(populations[j])
        y0, y1 = math.log(speedups[i]), math.log(speedups[j])
        if y1 == y0:
            return populations[i]
        return math.exp(x0 - y0 * (x1 - x0) / (y1 - y0))

    if speedups[0] >= 1.0:
        population = interp(0, 1)
        extrapolated = True
    else:
        idx = next(
            (i for i, s in enumerate(speedups) if s >= 1.0), len(speedups) - 1
        )
        population = interp(idx - 1, idx)
        extrapolated = False
    return {
        "population": round(population, 2),
        "extrapolated": extrapolated,
        "within_envelope": bool(population >= ENVELOPE_FLOOR),
        "envelope_floor": ENVELOPE_FLOOR,
    }


def _refusal_case() -> Dict:
    """Below the envelope floor the engine must refuse, not answer."""
    sim = MeanFieldSimulator(
        PoissonProcess(REFUSAL_POPULATION),
        Link(PROVISIONING * REFUSAL_POPULATION),
    )
    verdict = sim.validity()
    try:
        sim.paired_gap(UTILITY, REPLICATIONS, HORIZON, warmup=WARMUP)
        refused = False
    except OutOfDomainError:
        refused = True
    return {
        "population": REFUSAL_POPULATION,
        "cv": round(verdict["cv"], 4),
        "max_cv": MAX_CV,
        "refused": refused,
    }


def measure() -> Dict:
    started_journal = obs.journal() is None
    if started_journal:
        EVENTS_PATH.parent.mkdir(exist_ok=True)
        obs.open_journal(EVENTS_PATH, bench="bench_meanfield")
    obs.reset()
    obs.enable()
    try:
        cases = [_scale_case(n, SEED + i) for i, n in enumerate(SCALES)]
        refusal = _refusal_case()
    finally:
        obs.disable()
        if started_journal:
            obs.close_journal()
    gate = next(c for c in cases if c["population"] >= GATE_POPULATION)
    return {
        "generated_by": "benchmarks/bench_meanfield.py",
        "config": {
            "scales": list(SCALES),
            "replications": REPLICATIONS,
            "horizon": HORIZON,
            "warmup": WARMUP,
            "provisioning": PROVISIONING,
            "target_speedup": TARGET_SPEEDUP,
            "gate_population": GATE_POPULATION,
            "ci_match_factor": CI_MATCH_FACTOR,
            "gap_bias_floor": GAP_BIAS_FLOOR,
        },
        "cases": cases,
        "gate": gate,
        "crossover": _crossover(cases),
        "refusal": refusal,
    }


def render(stats: Dict) -> str:
    lines = [
        (
            f"equal budget R={REPLICATIONS}, t={HORIZON:g}, "
            f"warmup={WARMUP:g}, capacity={PROVISIONING:g}N"
        )
    ]
    for c in stats["cases"]:
        lines.append(
            f"  N={c['population']:>8.0f}: ensemble {c['ensemble_s']:8.3f}s  "
            f"meanfield {c['meanfield_ms']:6.2f}ms  "
            f"speedup {c['speedup']:>9.1f}x  ci_ratio {c['ci_ratio']:.2f}  "
            f"gap {c['meanfield_gap']:.6f}+/-{c['meanfield_gap_ci']:.6f} "
            f"(ens {c['ensemble_gap']:.6f}+/-{c['ensemble_gap_ci']:.6f})"
        )
    x = stats["crossover"]
    lines.append(
        f"crossover: N* ~ {x['population']:g} "
        f"({'extrapolated below sweep' if x['extrapolated'] else 'interpolated'}, "
        f"{'inside' if x['within_envelope'] else 'below'} the validity "
        f"envelope floor N >= {x['envelope_floor']:g})"
    )
    r = stats["refusal"]
    lines.append(
        f"envelope: N={r['population']:g} has CV {r['cv']:.3f} > "
        f"{r['max_cv']:g} -> refused={r['refused']} (no extrapolation)"
    )
    g = stats["gate"]
    lines.append(
        f"gate at N={g['population']:g}: {g['speedup']:.0f}x "
        f"(target >= {TARGET_SPEEDUP:g}x) at ci_ratio {g['ci_ratio']:.2f}"
    )
    return "\n".join(lines)


def check(stats: Dict) -> None:
    """Assert the acceptance criteria from the issue."""
    g = stats["gate"]
    assert g["speedup"] >= TARGET_SPEEDUP, (
        f"mean-field speedup {g['speedup']:.1f}x at N={g['population']:g} "
        f"below the {TARGET_SPEEDUP:g}x target"
    )
    assert 1.0 / CI_MATCH_FACTOR <= g["ci_ratio"] <= CI_MATCH_FACTOR, (
        f"gap CI ratio {g['ci_ratio']:.2f} at the gate scale outside "
        f"[1/{CI_MATCH_FACTOR:g}, {CI_MATCH_FACTOR:g}] — not matching width"
    )
    for c in stats["cases"]:
        assert c["gap_compatible"], (
            f"gap estimates incompatible at N={c['population']:g}: "
            f"meanfield {c['meanfield_gap']:.6f}+/-{c['meanfield_gap_ci']:.6f} "
            f"vs ensemble {c['ensemble_gap']:.6f}+/-{c['ensemble_gap_ci']:.6f}"
        )
    speedups = [c["speedup"] for c in stats["cases"]]
    assert speedups == sorted(speedups), (
        f"speedup must grow with population (ensemble cost ~ N): {speedups}"
    )
    assert stats["refusal"]["refused"], (
        "engine answered below the validity envelope instead of refusing"
    )


def write_json(stats: Dict) -> None:
    JSON_PATH.write_text(json.dumps(stats, indent=2) + "\n")


def append_history(stats: Dict) -> None:
    """Record the headline metrics in the bench-history ledger.

    The gate-scale speedup gates; the crossover population and the
    mean-field evaluation time are informational (``gated=False``) —
    both are machine- and noise-sensitive facts, not contracts.
    """
    from repro.obs import ledger

    digest = ledger.digest_config(stats["config"])
    g = stats["gate"]
    ledger.append_entries(
        HISTORY_PATH,
        [
            ledger.make_entry(
                "bench_meanfield",
                "meanfield_speedup_1e5",
                g["speedup"],
                direction=ledger.HIGHER_IS_BETTER,
                config_digest=digest,
                unit="x",
            ),
            ledger.make_entry(
                "bench_meanfield",
                "meanfield_eval_ms",
                g["meanfield_ms"],
                direction=ledger.LOWER_IS_BETTER,
                config_digest=digest,
                unit="ms",
                gated=False,
            ),
            ledger.make_entry(
                "bench_meanfield",
                "crossover_population",
                stats["crossover"]["population"],
                direction=ledger.LOWER_IS_BETTER,
                config_digest=digest,
                unit="clients",
                gated=False,
            ),
        ],
    )


def test_meanfield_crossover(benchmark, record):
    from benchmarks.conftest import run_once

    stats = run_once(benchmark, measure)
    record("meanfield_crossover", render(stats))
    write_json(stats)
    check(stats)
    append_history(stats)


def main() -> int:
    stats = measure()
    text = render(stats)
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "meanfield_crossover.txt").write_text(
        f"# meanfield_crossover\n{text}\n"
    )
    write_json(stats)
    print(text)
    check(stats)
    append_history(stats)
    print("mean-field crossover targets met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
