"""Benchmark — scalar-loop vs batch kernels on the figure grids.

PR 3's tentpole claim: an entire figure grid — δ(C), Δ(C) or γ(p)
over hundreds of points — computes in a handful of numpy calls through
`repro.numerics.batch` instead of one scalar solve per point, without
changing any reported number.  This benchmark measures both paths on
the Figure 2–4 model families (k̄ = 100, adaptive utility at the
paper's κ) and on the continuum closed forms, asserting

* the headline ≥10× speedup on a 512-point Poisson δ(C) sweep, and
* batch/scalar agreement to rtol = 1e-9 on every case (an absolute
  floor of 1e-12 absorbs noise-floor zeros: gaps the scalar path
  clips to exactly 0.0 while the batch path leaves at ~1e-16).

Δ(C) cases are compared as the solver root ``C + Δ`` rather than the
gap itself: both paths resolve the root to the same absolute
x-tolerance (~1e-12 relative to a root of order 100), so the *gap*
``Δ = root - C`` carries an irreducible ~1e-10 absolute slack that
swamps rtol = 1e-9 whenever Δ is small.  The root is the quantity the
solvers actually promise.

Results land in ``BENCH_batch.json`` at the repository root (committed,
so reviewers can diff the speedup across machines) and
``benchmarks/results/batch_speedup.txt``.

Run standalone (``python benchmarks/bench_batch.py``) or via the
harness (``pytest benchmarks/bench_batch.py``).
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Callable, Dict, List

import numpy as np

from repro.continuum import RigidExponentialContinuum
from repro.experiments.params import DEFAULT_CONFIG
from repro.models import VariableLoadModel

#: The acceptance target for the headline case.
TARGET_SPEEDUP = 10.0

#: Every per-load case must clear this speedup (ISSUE 7): the shared
#: zeta-tail tables make the heavy-tailed loads as batchable as the
#: Poisson headline, and the gate keeps them that way.
PER_LOAD_FLOOR = 8.0

#: Cases exempt from the per-load floor.  The continuum closed forms
#: are already microsecond-scale scalar calls — their batch win is
#: bounded by numpy dispatch overhead, not series work.
FLOOR_EXEMPT = {"continuum rigid/exp gamma(p) sweep"}

#: Ledger series appended per case (repro.obs/ledger/v1), so
#: ``obs regress`` guards every per-load speedup longitudinally.
CASE_METRICS = {
    "poisson delta(C) sweep": "poisson_delta_speedup",
    "poisson Delta(C) sweep": "poisson_bandwidth_gap_speedup",
    "exponential delta(C) sweep": "exponential_delta_speedup",
    "exponential Delta(C) sweep": "exponential_bandwidth_gap_speedup",
    "algebraic delta(C) sweep": "algebraic_delta_speedup",
    "algebraic Delta(C) sweep": "algebraic_bandwidth_gap_speedup",
    "continuum rigid/exp gamma(p) sweep": "continuum_gamma_speedup",
}

#: Relative agreement required between the scalar and batch paths.
RTOL = 1e-9

#: Absolute floor for noise-floor zeros (scalar clips tiny gaps to 0.0).
ATOL = 1e-12

#: Grid sizes: the headline δ(C) grid and the (solver-heavy) Δ(C) grid.
DELTA_POINTS = 512
GAP_POINTS = 128

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_batch.json"
HISTORY_PATH = ROOT / "benchmarks" / "results" / "history.jsonl"


#: Fresh-state repetitions per timed path; the minimum is reported.
#: Each repetition rebuilds its model (the per-capacity caches would
#: otherwise make later passes cache-hot and meaningless) while the
#: process-wide shared tables stay warm, exactly like a long-running
#: sweep workload.  min-of-N suppresses scheduler noise that would
#: otherwise flap the per-load floor gate.
REPEATS = 2


def _time(fn: Callable[[], np.ndarray]) -> tuple:
    best = float("inf")
    out = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _case(
    name: str,
    scalar_fn: Callable[[], np.ndarray],
    batch_fn: Callable[[], np.ndarray],
    points: int,
    shift: np.ndarray | None = None,
) -> Dict:
    """Time one scalar/batch pair and check numerical agreement.

    ``scalar_fn`` and ``batch_fn`` must build any per-case state (model
    instances) internally so every repetition starts cold.  ``shift``
    turns a gap comparison into a solver-root comparison: ``Δ`` values
    are checked as ``C + Δ`` (see module docstring).
    """
    t_scalar, ref = _time(scalar_fn)
    t_batch, out = _time(batch_fn)
    cmp_out, cmp_ref = out, ref
    if shift is not None:
        cmp_out, cmp_ref = shift + out, shift + ref
    matches = bool(np.allclose(cmp_out, cmp_ref, rtol=RTOL, atol=ATOL))
    denom = np.maximum(np.abs(cmp_ref), ATOL / RTOL)
    return {
        "case": name,
        "points": points,
        "scalar_ms": round(t_scalar * 1e3, 3),
        "batch_ms": round(t_batch * 1e3, 3),
        "speedup": round(t_scalar / t_batch, 2),
        "comparison": "value" if shift is None else "solver_root",
        "max_rel_err": float(np.max(np.abs(cmp_out - cmp_ref) / denom)),
        "matches_rtol_1e9": matches,
    }


def _model(load_name: str) -> VariableLoadModel:
    cfg = DEFAULT_CONFIG
    return VariableLoadModel(cfg.load(load_name), cfg.utility("adaptive"))


def _warmup() -> None:
    """Exercise both code paths once so timings reflect steady state.

    First-call costs (numpy/scipy dispatch set-up, lazy imports, pmf
    table construction machinery) otherwise land on whichever path
    runs first and distort small-grid timings.
    """
    caps = np.linspace(60.0, 120.0, 8)
    for load_name in ("poisson", "exponential", "algebraic"):
        m = _model(load_name)
        m.performance_gap_batch(caps)
        m.bandwidth_gap_batch(caps)
        m2 = _model(load_name)
        for c in caps[:2]:
            m2.performance_gap(float(c))
            m2.bandwidth_gap(float(c))
    cont = RigidExponentialContinuum(1.0)
    cont.equalizing_ratio_batch(np.array([1e-3, 1e-2]))
    cont.equalizing_ratio(1e-3)


def measure() -> Dict:
    """Run every scalar-vs-batch pair and collect the speedup table."""
    _warmup()
    cases: List[Dict] = []
    caps_delta = np.linspace(20.0, 220.0, DELTA_POINTS)
    caps_gap = np.linspace(60.0, 220.0, GAP_POINTS)

    def scalar_delta(name: str) -> np.ndarray:
        m = _model(name)
        return np.array([m.performance_gap(float(c)) for c in caps_delta])

    def scalar_gap(name: str) -> np.ndarray:
        m = _model(name)
        return np.array([m.bandwidth_gap(float(c)) for c in caps_gap])

    for load_name in ("poisson", "exponential", "algebraic"):
        cases.append(
            _case(
                f"{load_name} delta(C) sweep",
                lambda name=load_name: scalar_delta(name),
                lambda name=load_name: _model(name).performance_gap_batch(
                    caps_delta
                ),
                DELTA_POINTS,
            )
        )
        cases.append(
            _case(
                f"{load_name} Delta(C) sweep",
                lambda name=load_name: scalar_gap(name),
                lambda name=load_name: _model(name).bandwidth_gap_batch(
                    caps_gap
                ),
                GAP_POINTS,
                shift=caps_gap,
            )
        )

    cont = RigidExponentialContinuum(1.0)
    prices = np.geomspace(1e-6, 0.2, 256)
    cases.append(
        _case(
            "continuum rigid/exp gamma(p) sweep",
            lambda: np.array(
                [cont.equalizing_ratio(float(p)) for p in prices]
            ),
            lambda: cont.equalizing_ratio_batch(prices),
            prices.size,
        )
    )

    headline = cases[0]
    return {
        "generated_by": "benchmarks/bench_batch.py",
        "config": {
            "kbar": DEFAULT_CONFIG.kbar,
            "kappa": DEFAULT_CONFIG.kappa,
            "z": DEFAULT_CONFIG.z,
            "rtol": RTOL,
            "atol": ATOL,
            "target_speedup": TARGET_SPEEDUP,
            "per_load_floor": PER_LOAD_FLOOR,
            "repeats": REPEATS,
        },
        "headline": headline,
        "cases": cases,
    }


def render(stats: Dict) -> str:
    lines = [
        f"{'case':38s} {'points':>6s} {'scalar':>10s} {'batch':>10s} "
        f"{'speedup':>8s} {'max rel err':>12s}"
    ]
    for c in stats["cases"]:
        lines.append(
            f"{c['case']:38s} {c['points']:6d} "
            f"{c['scalar_ms']:8.1f}ms {c['batch_ms']:8.1f}ms "
            f"{c['speedup']:7.1f}x {c['max_rel_err']:12.2e}"
        )
    h = stats["headline"]
    lines.append(
        f"headline: {h['case']} at {h['speedup']:.1f}x "
        f"(target >= {TARGET_SPEEDUP:.0f}x, rtol {RTOL:g})"
    )
    return "\n".join(lines)


def check(stats: Dict) -> None:
    """Assert the acceptance criteria from the issue."""
    for c in stats["cases"]:
        assert c["matches_rtol_1e9"], (
            f"{c['case']}: batch diverged from scalar "
            f"(max rel err {c['max_rel_err']:.3e}, rtol {RTOL:g})"
        )
        if c["case"] not in FLOOR_EXEMPT:
            assert c["speedup"] >= PER_LOAD_FLOOR, (
                f"{c['case']} speedup {c['speedup']:.1f}x below the "
                f"per-load {PER_LOAD_FLOOR:.0f}x floor"
            )
    h = stats["headline"]
    assert h["speedup"] >= TARGET_SPEEDUP, (
        f"headline {h['case']} speedup {h['speedup']:.1f}x below the "
        f"{TARGET_SPEEDUP:.0f}x target"
    )


def write_json(stats: Dict) -> None:
    JSON_PATH.write_text(json.dumps(stats, indent=2) + "\n")


def append_history(stats: Dict) -> None:
    """Record every per-load speedup in the bench-history ledger.

    Speedup ratios transfer across machines, so each case's series
    gates (``obs regress`` guards them longitudinally); the raw batch
    wall time of the headline is a machine fact and rides along
    ``gated=False`` for trend plots only.
    """
    from repro.obs import ledger

    digest = ledger.digest_config(stats["config"])
    entries = [
        ledger.make_entry(
            "bench_batch",
            CASE_METRICS[c["case"]],
            c["speedup"],
            direction=ledger.HIGHER_IS_BETTER,
            config_digest=digest,
            unit="x",
        )
        for c in stats["cases"]
        if c["case"] in CASE_METRICS
    ]
    h = stats["headline"]
    entries.append(
        ledger.make_entry(
            "bench_batch",
            "poisson_delta_batch_ms",
            h["batch_ms"],
            direction=ledger.LOWER_IS_BETTER,
            config_digest=digest,
            unit="ms",
            gated=False,
        )
    )
    ledger.append_entries(HISTORY_PATH, entries)


def test_batch_speedup(benchmark, record):
    from benchmarks.conftest import run_once

    stats = run_once(benchmark, measure)
    record("batch_speedup", render(stats))
    write_json(stats)
    check(stats)
    append_history(stats)


def main() -> int:
    stats = measure()
    text = render(stats)
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "batch_speedup.txt").write_text(f"# batch_speedup\n{text}\n")
    write_json(stats)
    print(text)
    check(stats)
    append_history(stats)
    print("batch speedup targets met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
