"""Benchmark T1 — every Section 3.3 number quoted in the paper's prose.

Runs the discrete-model checkpoint battery at full paper scale
(k_bar = 100) and records the paper-vs-measured table.
"""

from benchmarks.conftest import run_once
from repro.experiments.checkpoints import section3_checkpoints
from repro.experiments.report import render_checkpoints


def test_t1_section3_text_checkpoints(benchmark, record):
    rows = run_once(benchmark, section3_checkpoints)
    record("T1_section3_checkpoints", render_checkpoints(rows))
    failures = [row.row() for row in rows if not row.matches]
    assert not failures, "\n".join(failures)
