"""Benchmark — overhead of the ``repro.obs`` instrumentation layer.

Measures what observability costs on a representative solver loop:
inverting the paper's adaptive utility curve with
:func:`repro.numerics.solvers.find_root`, the innermost primitive
every bandwidth-gap / welfare computation funnels into.  At ~25us a
solve this sits at the *cheap* end of real solves (model-level solves
evaluate quadrature-backed curves and run 10-100x longer), so the
relative overhead reported here is a pessimistic bound.

Three numbers are asserted:

* enabled overhead stays under ~10% (metered counters, residual
  histogram, batched under one lock per solve);
* disabled overhead stays under ~1% — the disabled path is a single
  module-global flag check per solve, which is timed directly so the
  assertion does not hinge on sub-1% wall-clock noise;
* with no journal open, ``obs.emit`` stays under ~1% per solve — that
  path is one module-global ``None`` check, timed the same way.

Wall-clock comparisons on shared machines drift by several percent, so
the enabled measurement interleaves disabled/enabled chunks and takes
the median of per-pair ratios; a same-run null measurement (disabled
vs disabled) quantifies the remaining harness noise and widens the
assertion threshold by exactly that much.

Run standalone (``python benchmarks/bench_obs_overhead.py``) or via
the harness (``pytest benchmarks/bench_obs_overhead.py``); both write
``benchmarks/results/obs_overhead.txt``, the gated ``BENCH_obs.json``
snapshot at the repository root, and a bench-history ledger append.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time
from typing import Callable, Dict

from repro import obs
from repro.numerics.solvers import find_root
from repro.utility import AdaptiveUtility

#: Solves per timed chunk (one sample ~ a few milliseconds).
CHUNK = 120

#: Interleaved (disabled, disabled, enabled) sample triples.
PAIRS = 80

#: Overhead targets from the issue ("~10% enabled, ~1% disabled").
ENABLED_LIMIT = 0.10
DISABLED_LIMIT = 0.01

#: The no-journal ``obs.emit`` guard must also stay under 1% per solve.
JOURNAL_LIMIT = 0.01

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_obs.json"
HISTORY_PATH = ROOT / "benchmarks" / "results" / "history.jsonl"


def _solver_chunk() -> None:
    """CHUNK utility-curve inversions (the representative solver loop)."""
    u = AdaptiveUtility()
    for i in range(CHUNK):
        target = 0.05 + (i % 17) * 0.05
        find_root(lambda x: u(x) - target, 0.0, 10.0, expand=True, label="bench")


def _sample(loop: Callable[[], None]) -> float:
    t0 = time.perf_counter()
    loop()
    return time.perf_counter() - t0


def measure_overhead() -> Dict[str, float]:
    """Interleaved paired-ratio measurement of obs overhead.

    Returns per-solve time, the median enabled/disabled ratio, the
    same-run null ratio (harness noise floor), and the directly timed
    disabled-path guard cost.
    """
    _solver_chunk()  # warm caches, kappa calibration, etc.
    null_ratios = []
    enabled_ratios = []
    per_solve = float("inf")
    for _ in range(PAIRS):
        obs.disable()
        obs.reset()
        base = _sample(_solver_chunk)
        null = _sample(_solver_chunk)
        obs.enable()
        enabled = _sample(_solver_chunk)
        null_ratios.append(null / base)
        enabled_ratios.append(enabled / base)
        per_solve = min(per_solve, base / CHUNK)
    obs.disable()
    obs.reset()

    # The disabled path adds exactly one obs.enabled() flag check per
    # solve; time it directly instead of hunting for <1% in the noise.
    checks = 200_000
    t0 = time.perf_counter()
    for _ in range(checks):
        obs.enabled()
    guard = (time.perf_counter() - t0) / checks

    # Same treatment for the journal: with no journal open, obs.emit
    # is one module-global None check (plus the call itself).
    obs.close_journal()
    t0 = time.perf_counter()
    for _ in range(checks):
        obs.emit("bench.noop")
    journal_guard = (time.perf_counter() - t0) / checks

    return {
        "per_solve_us": per_solve * 1e6,
        "null_overhead": statistics.median(null_ratios) - 1.0,
        "enabled_overhead": statistics.median(enabled_ratios) - 1.0,
        "guard_ns": guard * 1e9,
        "disabled_overhead": guard / per_solve,
        "journal_guard_ns": journal_guard * 1e9,
        "journal_disabled_overhead": journal_guard / per_solve,
    }


def render(stats: Dict[str, float]) -> str:
    noise = abs(stats["null_overhead"])
    return "\n".join(
        [
            f"representative solve      {stats['per_solve_us']:.2f} us "
            f"(adaptive-utility inversion, {CHUNK} solves/chunk, "
            f"{PAIRS} chunk pairs)",
            f"harness noise (null A/A)  {stats['null_overhead'] * 100:+.2f}%",
            f"enabled overhead          {stats['enabled_overhead'] * 100:+.2f}% "
            f"(target < {ENABLED_LIMIT * 100:.0f}% + noise)",
            f"disabled guard check      {stats['guard_ns']:.1f} ns/solve",
            f"disabled overhead         {stats['disabled_overhead'] * 100:.3f}% "
            f"(target < {DISABLED_LIMIT * 100:.0f}%)",
            f"journal-off emit guard    {stats['journal_guard_ns']:.1f} ns/solve",
            f"journal-off overhead      "
            f"{stats['journal_disabled_overhead'] * 100:.3f}% "
            f"(target < {JOURNAL_LIMIT * 100:.0f}%)",
            f"noise allowance applied   {noise * 100:.2f}%",
        ]
    )


def check(stats: Dict[str, float]) -> None:
    """Assert the issue's overhead targets (with the measured noise)."""
    noise = abs(stats["null_overhead"])
    assert stats["enabled_overhead"] < ENABLED_LIMIT + noise, (
        f"enabled obs overhead {stats['enabled_overhead']:.1%} exceeds "
        f"{ENABLED_LIMIT:.0%} target (+{noise:.1%} measured noise)"
    )
    assert stats["disabled_overhead"] < DISABLED_LIMIT, (
        f"disabled obs overhead {stats['disabled_overhead']:.3%} exceeds "
        f"{DISABLED_LIMIT:.0%} target"
    )
    assert stats["journal_disabled_overhead"] < JOURNAL_LIMIT, (
        f"journal-off emit overhead "
        f"{stats['journal_disabled_overhead']:.3%} exceeds "
        f"{JOURNAL_LIMIT:.0%} target"
    )


def write_json(stats: Dict[str, float]) -> None:
    JSON_PATH.write_text(
        json.dumps(
            {
                "generated_by": "benchmarks/bench_obs_overhead.py",
                "config": {
                    "chunk": CHUNK,
                    "pairs": PAIRS,
                    "enabled_limit": ENABLED_LIMIT,
                    "disabled_limit": DISABLED_LIMIT,
                    "journal_limit": JOURNAL_LIMIT,
                },
                "headline": stats,
            },
            indent=2,
        )
        + "\n"
    )


def append_history(stats: Dict[str, float]) -> None:
    """Record the overhead fractions in the bench-history ledger.

    All three overheads are ratios of times measured in the same run,
    so they transfer across machines and gate; the absolute per-solve
    time is informational.
    """
    from repro.obs import ledger

    digest = ledger.digest_config(
        {"chunk": CHUNK, "pairs": PAIRS, "solver": "adaptive-utility"}
    )
    ledger.append_entries(
        HISTORY_PATH,
        [
            ledger.make_entry(
                "bench_obs",
                "enabled_overhead",
                stats["enabled_overhead"],
                direction=ledger.LOWER_IS_BETTER,
                config_digest=digest,
            ),
            ledger.make_entry(
                "bench_obs",
                "disabled_overhead",
                stats["disabled_overhead"],
                direction=ledger.LOWER_IS_BETTER,
                config_digest=digest,
            ),
            ledger.make_entry(
                "bench_obs",
                "journal_disabled_overhead",
                stats["journal_disabled_overhead"],
                direction=ledger.LOWER_IS_BETTER,
                config_digest=digest,
            ),
            ledger.make_entry(
                "bench_obs",
                "per_solve_us",
                stats["per_solve_us"],
                direction=ledger.LOWER_IS_BETTER,
                config_digest=digest,
                unit="us",
                gated=False,
            ),
        ],
    )


def test_obs_overhead(benchmark, record):
    from benchmarks.conftest import run_once

    stats = run_once(benchmark, measure_overhead)
    record("obs_overhead", render(stats))
    write_json(stats)
    check(stats)
    append_history(stats)


def main() -> int:
    stats = measure_overhead()
    text = render(stats)
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "obs_overhead.txt").write_text(f"# obs_overhead\n{text}\n")
    write_json(stats)
    print(text)
    check(stats)
    append_history(stats)
    print("overhead targets met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
