"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three implementation decisions carry the numerical load of this
reproduction; each is ablated here:

1. **Euler-Maclaurin tail correction** (vs brute-force truncation) for
   heavy-tailed best-effort sums — accuracy preserved at a fraction of
   the terms.
2. **Welfare envelope sweep** (vs per-price exact optimisation) for
   gamma(p) curves — large speedup at matching accuracy.
3. **Analytic tail bounds** in the series truncation (vs a fixed large
   cutoff) — the adaptive truncation point tracks capacity.
"""

import time

import pytest

import repro.models.variable_load as vlm
from benchmarks.conftest import run_once
from repro.loads import AlgebraicLoad
from repro.models import VariableLoadModel, WelfareModel
from repro.utility import AdaptiveUtility


def test_ablation_euler_maclaurin_tail(benchmark, record):
    load = AlgebraicLoad.from_mean(3.0, 100.0)
    u = AdaptiveUtility()
    capacity = 600.0

    reference = VariableLoadModel(load, u).total_best_effort(capacity)

    def em_mode():
        original = vlm.BRUTE_FORCE_CAP
        vlm.BRUTE_FORCE_CAP = 1 << 16  # force the EM path
        try:
            return VariableLoadModel(load, u).total_best_effort(capacity)
        finally:
            vlm.BRUTE_FORCE_CAP = original

    em_value = run_once(benchmark, em_mode)
    record(
        "ablation_em_tail",
        f"V_B(C={capacity}) brute-force={reference:.10f} "
        f"euler-maclaurin={em_value:.10f} "
        f"abs diff={abs(reference - em_value):.2e} "
        f"(EM summed 2^16 terms vs ~2^21 brute-force)",
    )
    assert em_value == pytest.approx(reference, abs=1e-6)


def test_ablation_welfare_envelope_vs_exact(benchmark, record):
    load = AlgebraicLoad.from_mean(3.0, 100.0)
    model = VariableLoadModel(load, AdaptiveUtility())
    welfare = WelfareModel(model)
    prices = [0.1, 0.03, 0.01]

    t0 = time.perf_counter()
    exact = [welfare.equalizing_ratio(p) for p in prices]
    exact_seconds = time.perf_counter() - t0

    def envelope():
        fresh = WelfareModel(VariableLoadModel(load, AdaptiveUtility()))
        return fresh.ratio_curve(prices)

    t0 = time.perf_counter()
    curve = run_once(benchmark, envelope)
    envelope_seconds = time.perf_counter() - t0

    rows = [
        f"p={p:6.3f}  exact gamma={g:.4f}  envelope gamma={e:.4f}"
        for p, g, e in zip(prices, exact, curve["gamma"])
    ]
    rows.append(
        f"exact path: {exact_seconds:.2f}s for 3 points; "
        f"envelope: {envelope_seconds:.2f}s for the whole curve"
    )
    record("ablation_welfare_envelope", "\n".join(rows))
    for g, e in zip(exact, curve["gamma"]):
        assert e == pytest.approx(g, rel=0.03)


def test_ablation_truncation_scales_with_capacity(benchmark, record):
    """The adaptive truncation point grows with C instead of being fixed."""
    load = AlgebraicLoad.from_mean(3.0, 100.0)
    model = VariableLoadModel(load, AdaptiveUtility())

    def probe():
        return {
            c: model._truncation_point(c) or vlm.BRUTE_FORCE_CAP
            for c in (25.0, 100.0, 400.0)
        }

    points = run_once(benchmark, probe)
    record(
        "ablation_truncation",
        "\n".join(f"C={c:6.0f} -> truncation N={n}" for c, n in points.items()),
    )
    ns = list(points.values())
    assert ns[0] < ns[-1]  # tracks capacity
    # fixed-cutoff alternative would need the max everywhere
    assert ns[0] <= ns[-1] // 4


def test_ablation_threshold_sensitivity(benchmark, record):
    """How much does getting k_max exactly right matter?

    Admission controllers estimate the threshold from measurements; a
    trunk-reservation margin or an estimation error moves it off the
    optimum.  This ablation sweeps multiplicative threshold errors.
    """
    from repro.loads import GeometricLoad

    load = GeometricLoad.from_mean(100.0)
    model = VariableLoadModel(load, AdaptiveUtility())
    capacity = 120.0

    def sweep():
        k_star = model.k_max(capacity)
        rows = [f"k_max(C={capacity:.0f}) = {k_star}; B = {model.best_effort(capacity):.4f}"]
        values = {}
        for mult in (0.5, 0.75, 0.9, 1.0, 1.1, 1.5, 3.0):
            k = max(1, int(round(mult * k_star)))
            r = model.reservation_at_threshold(capacity, k)
            values[mult] = r
            rows.append(f"threshold = {mult:4.2f} * k_max ({k:4d}): R = {r:.4f}")
        return "\n".join(rows), values

    text, values = run_once(benchmark, sweep)
    record("ablation_threshold", text)
    best = values[1.0]
    # the optimum is flat nearby (10% error costs < 0.5% utility) but
    # halving the threshold costs real utility
    assert values[0.9] > best - 0.005
    assert values[1.1] > best - 0.005
    assert values[0.5] < best - 0.02
    # and an over-loose threshold degrades toward best effort
    assert values[3.0] < best
