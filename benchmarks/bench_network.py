"""Benchmark N1 — the comparison on a multi-link network (our extension).

Runs the parking-lot topology under light- and heavy-tailed cross
traffic and records the network-level analogue of the paper's headline
quantities: the normalised utilities, the uniform-overbuild factor
(network Delta), and the ILP-vs-greedy admission ablation.
"""

import pytest

from benchmarks.conftest import run_once
from repro.loads import AlgebraicLoad, GeometricLoad
from repro.network import NetworkComparison, NetworkTopology, Route
from repro.utility import AdaptiveUtility


def parking_lot(cross_load):
    u = AdaptiveUtility()
    return NetworkTopology(
        {"l1": 40.0, "l2": 40.0, "l3": 40.0},
        [
            Route("long", ("l1", "l2", "l3"), GeometricLoad.from_mean(12.0), u),
            Route("x1", ("l1",), cross_load, u),
            Route("x2", ("l2",), cross_load, u),
            Route("x3", ("l3",), cross_load, u),
        ],
    )


def test_n1_network_comparison(benchmark, record):
    def run():
        rows = ["case            BE        R       gap   overbuild  ilp-greedy"]
        out = {}
        for label, load in (
            ("geometric", GeometricLoad.from_mean(25.0)),
            ("algebraic", AlgebraicLoad.from_mean(2.5, 25.0)),
        ):
            cmp = NetworkComparison(parking_lot(load), draws=250, seed=17)
            be = cmp.best_effort().normalised
            res = cmp.reservation().normalised
            factor = cmp.bandwidth_gap_factor()
            ablation = cmp.admission_optimality_gap()
            out[label] = (be, res, factor)
            rows.append(
                f"{label:<12} {be:8.4f} {res:8.4f} {res - be:+8.4f} "
                f"x{factor:8.4f} {ablation:+10.4f}"
            )
        return "\n".join(rows), out

    text, out = run_once(benchmark, run)
    record("N1_network", text)

    for label, (be, res, factor) in out.items():
        assert res >= be - 0.01, label
        assert factor >= 1.0, label
    # heavy-tailed cross traffic needs the bigger overbuild
    assert out["algebraic"][2] > out["geometric"][2] - 0.02


def test_n1_single_link_network_reduces_to_paper_model(benchmark, record):
    """A one-link, one-route network must reproduce VariableLoadModel."""
    from repro.loads import PoissonLoad
    from repro.models import VariableLoadModel

    load = PoissonLoad(20.0)
    u = AdaptiveUtility()
    topo = NetworkTopology(
        {"l": 22.0}, [Route("r", ("l",), load, u)]
    )
    model = VariableLoadModel(load, u)

    def run():
        cmp = NetworkComparison(topo, draws=4000, seed=23)
        return cmp.best_effort().normalised, cmp.reservation().normalised

    be, res = run_once(benchmark, run)
    record(
        "N1_single_link_reduction",
        f"network MC: B={be:.4f} R={res:.4f}; "
        f"analytic: B={model.best_effort(22.0):.4f} R={model.reservation(22.0):.4f}",
    )
    assert be == pytest.approx(model.best_effort(22.0), abs=0.02)
    assert res == pytest.approx(model.reservation(22.0), abs=0.02)
