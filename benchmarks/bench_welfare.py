"""Benchmark T3 — the Section 4 welfare model.

Records the welfare checkpoint table plus a provisioning table (the
capacity a welfare-maximising provider builds at each price, per
architecture and load) — the quantity the paper says the provisioning
debate actually turns on.
"""

from benchmarks.conftest import run_once
from repro.experiments.checkpoints import welfare_checkpoints
from repro.experiments.report import render_checkpoints
from repro.models import Architecture, VariableLoadModel, WelfareModel


def test_t3_welfare_checkpoints(benchmark, record):
    rows = run_once(benchmark, welfare_checkpoints)
    record("T3_welfare_checkpoints", render_checkpoints(rows))
    assert all(row.matches for row in rows)


def test_t3_provisioning_table(benchmark, config, record):
    """C(p) per (load, architecture): who overprovisions, and when."""

    def build():
        lines = [
            "load         price     C_best_effort  C_reservation  gamma",
        ]
        results = {}
        for load_name in ("poisson", "exponential", "algebraic"):
            model = VariableLoadModel(
                config.load(load_name), config.utility("adaptive")
            )
            welfare = WelfareModel(model)
            for p in (0.1, 0.03, 0.01):
                cb = welfare.optimal_capacity(p, Architecture.BEST_EFFORT)
                cr = welfare.optimal_capacity(p, Architecture.RESERVATION)
                gamma = welfare.equalizing_ratio(p)
                results[(load_name, p)] = (cb, cr, gamma)
                lines.append(
                    f"{load_name:12s} {p:6.3f} {cb:14.1f} {cr:14.1f} {gamma:8.4f}"
                )
        return "\n".join(lines), results

    text, results = run_once(benchmark, build)
    record("T3_provisioning", text)

    for (load_name, p), (cb, cr, gamma) in results.items():
        # a best-effort provider overprovisions relative to reservations
        assert cb >= cr - 1.0, (load_name, p)
        assert gamma >= 1.0 - 1e-9
    # heavy tails keep gamma bounded away from 1 at cheap bandwidth
    assert results[("algebraic", 0.01)][2] > 1.01
    assert results[("poisson", 0.01)][2] < 1.01
