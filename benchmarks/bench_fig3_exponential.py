"""Benchmark F3 — Figure 3: exponential load, all six panels.

The exponential story: gentler utility curves than Poisson (a/d), a
rigid bandwidth gap that keeps *growing* (logarithmically) with
capacity even as the performance gap shrinks (b), an adaptive gap that
peaks near 9 and then decays (e), and gamma curves converging to 1 as
bandwidth gets cheap, slowly for rigid, fast for adaptive (c/f).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import figure3
from repro.experiments.report import render_series


def test_fig3_exponential_panels(benchmark, config, record):
    series = run_once(benchmark, figure3, config)
    record("F3_exponential", render_series(series))
    caps = series["capacity"]
    kbar = config.kbar

    # panel b: the paper's headline — Delta(C) monotone increasing for
    # rigid apps across the whole domain
    gaps = series["bandwidth_gap_rigid"]
    assert np.all(np.diff(gaps) > -1e-6)
    assert gaps[-1] > gaps[0]

    # while the performance gap *decreases* at large C (the paradox the
    # paper explains via the flattening B curve)
    late = caps >= 2.0 * kbar
    deltas = series["performance_gap_rigid"]
    assert deltas[late][-1] < deltas[late][0] or deltas[late][-1] < 0.1

    # panel e: adaptive gap rises then falls (peak near k_bar/2)
    adaptive_gap = series["bandwidth_gap_adaptive"]
    peak_idx = int(np.argmax(adaptive_gap))
    assert caps[peak_idx] < kbar
    assert adaptive_gap[-1] < adaptive_gap[peak_idx]

    # panels c/f: both gammas decrease toward 1 as p -> 0
    for tag in ("rigid", "adaptive"):
        gamma = series[f"gamma_{tag}"]
        ok = ~np.isnan(gamma)
        assert gamma[ok][0] <= gamma[ok][-1] + 1e-9  # increasing in p
        assert gamma[ok][0] < 2.2


def test_fig3_rigid_gap_log_growth(benchmark, config, record):
    # quantify the log growth: Delta(4k)-Delta(2k) ~ Delta(8k)-Delta(4k)
    from repro.models import VariableLoadModel

    kbar = config.kbar
    model = VariableLoadModel(config.load("exponential"), config.utility("rigid"))

    def gaps():
        return [model.bandwidth_gap(m * kbar) for m in (2.0, 4.0, 8.0)]

    g2, g4, g8 = run_once(benchmark, gaps)
    record(
        "F3_log_growth",
        f"Delta(2k)={g2:.2f} Delta(4k)={g4:.2f} Delta(8k)={g8:.2f} "
        f"(log growth: equal increments per doubling)",
    )
    assert g4 - g2 == pytest.approx(g8 - g4, rel=0.25)
