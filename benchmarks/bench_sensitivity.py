"""Sensitivity sweeps over the paper's free parameters.

The paper fixes z = 3, a = 0.5(-ish), S and alpha at single values;
these benchmarks sweep each dial and record how the headline
quantities respond — the ablation grid a reviewer would ask for:

- tail power ``z``: the whole reservation case strengthens as z -> 2+;
- ramp adaptivity ``a``: interpolates rigid (a -> 1) to no-gap (a = 0);
- sample count ``S``: worst-of-S scoring amplifies every gap;
- retry penalty ``alpha``: prices the delay of getting in eventually.
"""


from benchmarks.conftest import run_once
from repro.continuum import (
    AdaptiveAlgebraicContinuum,
    RigidAlgebraicContinuum,
)
from repro.loads import AlgebraicLoad, GeometricLoad
from repro.models import RetryingModel, SamplingModel, VariableLoadModel
from repro.utility import AdaptiveUtility


def test_sensitivity_tail_power(benchmark, record):
    """Discrete-model gap vs z at fixed mean load (k_bar = 100)."""

    def sweep():
        rows = ["z      delta(2k)   Delta(2k)   Delta(4k)  continuum Delta/C"]
        out = {}
        for z in (2.3, 2.6, 3.0, 4.0):
            load = AlgebraicLoad.from_mean(z, 100.0)
            model = VariableLoadModel(load, AdaptiveUtility())
            d = model.performance_gap(200.0)
            g2 = model.bandwidth_gap(200.0)
            g4 = model.bandwidth_gap(400.0)
            slope = AdaptiveAlgebraicContinuum(z, 0.5).gap_ratio() - 1.0
            out[z] = (d, g2, g4)
            rows.append(f"{z:4.1f} {d:11.5f} {g2:11.3f} {g4:11.3f} {slope:18.4f}")
        return "\n".join(rows), out

    text, out = run_once(benchmark, sweep)
    record("sensitivity_z", text)
    # heavier tails -> larger bandwidth gaps, monotonically (the
    # performance gap at one finite C is non-monotone because the mean
    # calibration shifts lam with z; Delta integrates the tail and is
    # the robust dial)
    gaps = [out[z][1] for z in (2.3, 2.6, 3.0, 4.0)]
    assert all(b < a for a, b in zip(gaps, gaps[1:]))
    # and the gap *growth* between 2k and 4k weakens as tails lighten
    growth = [out[z][2] / out[z][1] for z in (2.3, 2.6, 3.0, 4.0)]
    assert all(b < a for a, b in zip(growth, growth[1:]))


def test_sensitivity_adaptivity(benchmark, record):
    """Continuum gap ratio vs ramp dead zone a (z = 3)."""

    def sweep():
        rows = ["a       gap ratio   (rigid = 2.0 at z=3)"]
        values = {}
        for a in (0.1, 0.3, 0.5, 0.7, 0.9):
            ratio = AdaptiveAlgebraicContinuum(3.0, a).gap_ratio()
            values[a] = ratio
            rows.append(f"{a:4.1f} {ratio:11.4f}")
        return "\n".join(rows), values

    text, values = run_once(benchmark, sweep)
    record("sensitivity_a", text)
    ratios = [values[a] for a in (0.1, 0.3, 0.5, 0.7, 0.9)]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] < RigidAlgebraicContinuum(3.0).gap_ratio()
    assert ratios[0] > 1.0


def test_sensitivity_samples(benchmark, record):
    """Discrete sampling model vs S (exponential load, adaptive apps)."""
    load = GeometricLoad.from_mean(100.0)
    utility = AdaptiveUtility()

    def sweep():
        rows = ["S     delta(150)   Delta(150)"]
        values = {}
        for s in (1, 2, 5, 10, 20):
            model = SamplingModel(load, utility, s)
            d = model.performance_gap(150.0)
            g = model.bandwidth_gap(150.0)
            values[s] = (d, g)
            rows.append(f"{s:3d} {d:12.5f} {g:12.3f}")
        return "\n".join(rows), values

    text, values = run_once(benchmark, sweep)
    record("sensitivity_S", text)
    deltas = [values[s][0] for s in (1, 2, 5, 10, 20)]
    assert all(b > a for a, b in zip(deltas, deltas[1:]))


def test_sensitivity_retry_penalty(benchmark, record):
    """Retrying model vs alpha (algebraic load, adaptive apps)."""
    load = AlgebraicLoad.from_mean(3.0, 100.0)
    utility = AdaptiveUtility()
    capacity = 300.0

    def sweep():
        rows = ["alpha   R~(3k)     delta~(3k)"]
        values = {}
        for alpha in (0.0, 0.05, 0.1, 0.3, 0.6):
            model = RetryingModel(load, utility, alpha=alpha)
            r = model.reservation(capacity)
            d = model.performance_gap(capacity)
            values[alpha] = (r, d)
            rows.append(f"{alpha:5.2f} {r:9.4f} {d:12.5f}")
        return "\n".join(rows), values

    text, values = run_once(benchmark, sweep)
    record("sensitivity_alpha", text)
    utilities = [values[a][0] for a in (0.0, 0.05, 0.1, 0.3, 0.6)]
    assert all(b < a for a, b in zip(utilities, utilities[1:]))
    # at alpha = 0 (free retries) the advantage is largest
    assert values[0.0][1] > values[0.6][1]
