"""Benchmark F4 — Figure 4: algebraic load (z = 3), all six panels.

The heavy-tail story — the paper's strongest case for reservations:
the rigid R-B gap stays substantial across the whole capacity range
(a), the bandwidth gap grows *linearly* with slope ~1 (b), adaptive
apps shrink but do not kill the linear growth (d/e, slope reduced more
than twenty-fold), and gamma(p) does **not** converge to 1 as
bandwidth gets cheap — rigid gamma tends to (z-1)^{1/(z-2)} = 2 (c),
adaptive to ~1.02 (f).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import figure4
from repro.experiments.report import render_series


def test_fig4_algebraic_panels(benchmark, config, record):
    series = run_once(benchmark, figure4, config)
    record("F4_algebraic", render_series(series))
    caps = series["capacity"]
    kbar = config.kbar

    # panel a: the R-B gap persists across the range
    late = caps >= 2.0 * kbar
    assert np.all(series["performance_gap_rigid"][late] > 0.05)

    # panel b: linear Delta growth with slope ~ 1 at z = 3
    gaps = series["bandwidth_gap_rigid"]
    hi = caps >= 2.0 * kbar
    slope = np.polyfit(caps[hi], gaps[hi], 1)[0]
    assert slope == pytest.approx(1.0, abs=0.3)

    # panel e: adaptive gap still increasing but with a far smaller slope
    agaps = series["bandwidth_gap_adaptive"]
    aslope = np.polyfit(caps[hi], agaps[hi], 1)[0]
    assert 0.0 < aslope < slope / 20.0

    # panels c/f: gamma bounded away from 1 at the cheap end
    rigid_gamma = series["gamma_rigid"]
    ok = ~np.isnan(rigid_gamma)
    assert rigid_gamma[ok][0] > 1.8  # smallest price ~ (z-1)^{1/(z-2)} = 2
    adaptive_gamma = series["gamma_adaptive"]
    ok = ~np.isnan(adaptive_gamma)
    assert 1.005 < adaptive_gamma[ok][0] < 1.1  # paper: ~1.02


def test_fig4_crossover_against_exponential(benchmark, config, record):
    """Where the architectures' case flips: heavy tails vs light tails.

    At the same capacity and utility, the algebraic load keeps a large
    bandwidth gap where the exponential load's has collapsed — the
    crossover the paper's Section 6 discussion turns on.
    """
    from repro.models import VariableLoadModel

    kbar = config.kbar
    u = config.utility("adaptive")

    def both():
        alg = VariableLoadModel(config.load("algebraic"), u)
        exp = VariableLoadModel(config.load("exponential"), u)
        c = 6.0 * kbar
        return alg.bandwidth_gap(c), exp.bandwidth_gap(c)

    alg_gap, exp_gap = run_once(benchmark, both)
    record(
        "F4_crossover",
        f"bandwidth gap at C=6k: algebraic={alg_gap:.3f} exponential={exp_gap:.3f} "
        f"(heavy tails keep the reservation case alive)",
    )
    assert alg_gap > 10.0 * max(exp_gap, 1e-9)
