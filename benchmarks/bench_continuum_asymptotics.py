"""Benchmark T2 — the continuum closed forms and asymptotic limits.

Records the Section 3.2/3.3 table: Delta growth laws per (load,
utility) case and the conjectured z -> 2+ bounds (gamma -> e,
Delta/C -> e - 1), including their removal by the Section 5
extensions.
"""

import math

import pytest

from benchmarks.conftest import run_once
from repro.continuum import (
    AdaptiveAlgebraicContinuum,
    AdaptiveExponentialContinuum,
    RigidAlgebraicContinuum,
    RigidExponentialContinuum,
    adaptive_algebraic_ratio_limit,
    retrying_rigid_ratio,
    rigid_algebraic_ratio,
    sampling_rigid_ratio,
)
from repro.experiments.checkpoints import continuum_checkpoints
from repro.experiments.report import render_checkpoints


def test_t2_continuum_checkpoints(benchmark, record):
    rows = run_once(benchmark, continuum_checkpoints)
    record("T2_continuum_checkpoints", render_checkpoints(rows))
    assert all(row.matches for row in rows)


def test_t2_growth_law_table(benchmark, config, record):
    """The per-case Delta(C) growth-law table from Section 3.3."""

    def build():
        re = RigidExponentialContinuum(1.0)
        ae = AdaptiveExponentialContinuum(config.ramp_a, 1.0)
        ra = RigidAlgebraicContinuum(config.z)
        aa = AdaptiveAlgebraicContinuum(config.z, config.ramp_a)
        lines = [
            "case                 Delta(8)    Delta(64)  growth law",
            f"rigid x exp        {re.bandwidth_gap(8.0):9.4f}  {re.bandwidth_gap(64.0):9.4f}"
            f"  ~ ln(C)",
            f"ramp  x exp        {ae.bandwidth_gap(8.0):9.4f}  {ae.bandwidth_gap(64.0):9.4f}"
            f"  -> {ae.bandwidth_gap_limit():.4f} (constant)",
            f"rigid x alg (z=3)  {ra.bandwidth_gap(8.0):9.4f}  {ra.bandwidth_gap(64.0):9.4f}"
            f"  = {ra.gap_ratio() - 1.0:.4f} * C (linear)",
            f"ramp  x alg (z=3)  {aa.bandwidth_gap(8.0):9.4f}  {aa.bandwidth_gap(64.0):9.4f}"
            f"  = {aa.gap_ratio() - 1.0:.4f} * C (linear)",
        ]
        return "\n".join(lines), re, ae, ra, aa

    text, re, ae, ra, aa = run_once(benchmark, build)
    record("T2_growth_laws", text)
    # growth-law shape assertions
    assert re.bandwidth_gap(64.0) / re.bandwidth_gap(8.0) == pytest.approx(
        math.log(64.0) / math.log(8.0), rel=0.25
    )
    # probe the adaptive-exp limit at C=15: converged to ~1e-6 but the
    # raw gaps have not yet underflowed past the numerical floor
    assert ae.bandwidth_gap(15.0) == pytest.approx(ae.bandwidth_gap_limit(), abs=1e-5)
    assert ra.bandwidth_gap(64.0) / ra.bandwidth_gap(8.0) == pytest.approx(8.0)
    assert aa.bandwidth_gap(64.0) / aa.bandwidth_gap(8.0) == pytest.approx(8.0)


def test_t2_bound_table(benchmark, record):
    """The e / e-1 bounds and their removal by extensions."""

    def build():
        rows = []
        for z in (2.5, 2.1, 2.01, 2.001):
            rows.append(
                f"z={z:<6} basic={rigid_algebraic_ratio(z):10.4f} "
                f"sampling(S=3)={sampling_rigid_ratio(z, 3):14.4g} "
                f"retrying(a=.1)={retrying_rigid_ratio(z, 0.1):14.4g}"
            )
        rows.append(f"limit  basic -> e = {math.e:.5f}; extensions -> unbounded")
        rows.append(
            "adaptive z->2+ limits by a: "
            + ", ".join(
                f"a={a}: {adaptive_algebraic_ratio_limit(a):.4f}"
                for a in (0.1, 0.5, 0.9)
            )
        )
        return "\n".join(rows)

    text = run_once(benchmark, build)
    record("T2_bounds", text)
    assert rigid_algebraic_ratio(2.001) < math.e
    assert sampling_rigid_ratio(2.001, 3) > 1e100
    assert retrying_rigid_ratio(2.001, 0.1) > 1e100
