"""Batch-runner benchmarks: parallel speedup and warm-cache cost.

Two claims are measured here:

1. ``run_many(..., jobs=N)`` approaches linear speedup over ``jobs=1``
   on independent experiments (asserted only when the machine actually
   has the cores — CI boxes with 1-2 cores still *run* the benchmark,
   they just skip the ratio assertion).
2. A warm cache makes a re-run effectively free: every outcome is
   served from disk, no worker processes spawn, and the wall time is
   orders of magnitude below the cold run.
"""

from __future__ import annotations

import os

from repro import runner
from benchmarks.conftest import run_once

#: Independent, non-trivial experiments (each 0.1 s - 10 s at the
#: fast grids) — enough parallel slack for the speedup to show.
PARALLEL_IDS = ["F2", "F3", "T1", "T5"]

#: Cores needed before the >= 2x speedup assertion is meaningful.
MIN_CORES_FOR_ASSERT = 4


def _cold(ids, jobs, cache_dir, config):
    return runner.run_many(ids, config=config, jobs=jobs, cache_dir=cache_dir)


def test_runner_parallel_speedup(benchmark, config, record, tmp_path):
    serial = _cold(PARALLEL_IDS, 1, tmp_path / "serial", config)
    parallel = run_once(
        benchmark, _cold, PARALLEL_IDS, 4, tmp_path / "parallel", config
    )
    assert serial.ok and parallel.ok
    speedup = serial.wall_seconds / max(parallel.wall_seconds, 1e-9)
    cores = os.cpu_count() or 1
    record(
        "runner_speedup",
        f"ids        : {' '.join(PARALLEL_IDS)}\n"
        f"cores      : {cores}\n"
        f"jobs=1 wall: {serial.wall_seconds:.3f} s\n"
        f"jobs=4 wall: {parallel.wall_seconds:.3f} s\n"
        f"speedup    : {speedup:.2f}x",
    )
    if cores >= MIN_CORES_FOR_ASSERT:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup on {cores} cores, got {speedup:.2f}x"
        )


def test_runner_warm_cache_rerun(benchmark, config, record, tmp_path):
    cold = _cold(PARALLEL_IDS, 1, tmp_path, config)
    warm = run_once(benchmark, _cold, PARALLEL_IDS, 4, tmp_path, config)
    assert warm.counts() == {runner.STATUS_CACHED: len(PARALLEL_IDS)}
    record(
        "runner_warm_cache",
        f"cold wall: {cold.wall_seconds:.3f} s\n"
        f"warm wall: {warm.wall_seconds:.3f} s",
    )
    # "effectively free": pure cache reads, no recomputation
    assert warm.wall_seconds < max(0.05 * cold.wall_seconds, 0.5)
