"""Load test — the emulator service under concurrent clients.

PR 8's tentpole claim: the paper's headline quantities are servable at
interactive rates because a certified Chebyshev surface answers a
point query in microseconds where the exact scalar path costs
hundreds.  This benchmark measures three things and gates two:

* **point speedup** (gated ≥ 50x): ``EmulatorService.point`` versus
  the exact scalar solver path (`performance_gap` et al.) on the same
  random in-domain capacities, both warm — the per-query cost a
  non-emulated service would pay.
* **sustained throughput** (gated ≥ 1000 req/s): ``CLIENTS``
  keep-alive HTTP clients hammering ``GET /v1/point`` concurrently
  against a live :class:`~repro.service.http.BackgroundServer`;
  requests/s is total-requests over wall time, with p50/p99 latency
  recorded per request (informational — machine facts).
* **served accuracy** (hard assertion): a random sample of served
  points must agree with the exact batch solver within each surface's
  certified bound, and a burst of out-of-domain queries must come
  back ``source: exact`` — the fallback ladder working under load.

Results land in ``BENCH_service.json`` at the repository root and
``benchmarks/results/service_load.txt``; the gated ratios append to
the PR-6 bench-history ledger (``obs regress`` guards them in the CI
``service`` job).  Journal events (service lifecycle + fallbacks) are
captured to ``benchmarks/results/service_events.jsonl`` for artifact
upload.

``REPRO_BENCH_FULL=1`` stretches the load phase ~8x (the nightly
longer-horizon run); the default finishes in a few seconds.

Run standalone (``python benchmarks/bench_service.py``) or via the
harness (``pytest benchmarks/bench_service.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from typing import Dict, List

import numpy as np

from repro import obs
from repro.emulator import exact_scalar, exact_values
from repro.experiments.params import DEFAULT_CONFIG
from repro.runner.cache import ResultCache
from repro.service import BackgroundServer, EmulatorService, ServiceClient

#: The acceptance targets from ISSUE 8.
TARGET_POINT_SPEEDUP = 50.0
TARGET_RPS = 1000.0

#: Concurrent keep-alive clients (independent connections).
CLIENTS = 8

#: Requests per client: the default is a smoke-scale load; the nightly
#: full run stretches the horizon so throughput decay would show.
REQUESTS_PER_CLIENT = 300
REQUESTS_PER_CLIENT_FULL = 2500

#: Point-speedup measurement size (exact side dominates the cost).
SPEEDUP_POINTS = 120

#: Accuracy spot-check sample per (quantity, load) surface.
ACCURACY_POINTS = 25

#: Fresh-state repetitions per timed path; the minimum is reported.
REPEATS = 2

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_service.json"
HISTORY_PATH = ROOT / "benchmarks" / "results" / "history.jsonl"
EVENTS_PATH = ROOT / "benchmarks" / "results" / "service_events.jsonl"

#: Ledger series (repro.obs/ledger/v1).  The two ratios gate —
#: requests/s under fixed concurrency and the per-point speedup are
#: machine-transferable enough for the robust median/MAD gate — while
#: raw latencies ride along informationally.
GATED_METRICS = ("service_requests_per_sec", "service_point_speedup")


def _full() -> bool:
    return bool(os.environ.get("REPRO_BENCH_FULL"))


def _service() -> EmulatorService:
    cache_root = ROOT / ".repro-cache"
    return EmulatorService(DEFAULT_CONFIG, cache=ResultCache(cache_root))


def _measure_point_speedup(service: EmulatorService) -> Dict:
    """Exact-scalar path vs the served surface path, min-of-N.

    The exact side rebuilds its model every repetition: the model's
    per-capacity memo would otherwise serve the second pass from
    cache and time a dictionary lookup instead of a solver run.  The
    process-wide shared series tables stay warm, like a long-running
    service.  The emulated side keeps one service instance — that IS
    the steady state being claimed.
    """
    from repro.models import VariableLoadModel

    rng = np.random.default_rng(20260807)
    xs = rng.uniform(30.0, 390.0, SPEEDUP_POINTS)
    # warm shared state on both sides (series tables, surface bank,
    # numpy dispatch) before any timed pass
    for x in xs[:3]:
        exact_scalar("delta", DEFAULT_CONFIG, "poisson", "adaptive", float(x))
        service.point("delta", "poisson", "adaptive", float(x))
    t_exact = float("inf")
    for _ in range(REPEATS):
        model = VariableLoadModel(
            DEFAULT_CONFIG.load("poisson"), DEFAULT_CONFIG.utility("adaptive")
        )
        t0 = time.perf_counter()
        for x in xs:
            model.performance_gap(float(x))
        t_exact = min(t_exact, time.perf_counter() - t0)
    t_emul = float("inf")
    emul_rounds = 20  # the emulated side is microseconds; average it up
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(emul_rounds):
            for x in xs:
                service.point("delta", "poisson", "adaptive", float(x))
        t_emul = min(t_emul, (time.perf_counter() - t0) / emul_rounds)
    exact_us = t_exact / SPEEDUP_POINTS * 1e6
    emul_us = t_emul / SPEEDUP_POINTS * 1e6
    return {
        "points": SPEEDUP_POINTS,
        "exact_us_per_point": round(exact_us, 2),
        "emulated_us_per_point": round(emul_us, 2),
        "speedup": round(exact_us / emul_us, 1),
    }


def _measure_throughput(service: EmulatorService) -> Dict:
    """Concurrent keep-alive clients against a live HTTP server."""
    requests_per_client = (
        REQUESTS_PER_CLIENT_FULL if _full() else REQUESTS_PER_CLIENT
    )
    total = CLIENTS * requests_per_client
    latencies: List[List[float]] = [[] for _ in range(CLIENTS)]
    errors: List[int] = [0] * CLIENTS

    with BackgroundServer(service) as server:
        host, port = server.address

        def worker(idx: int) -> None:
            lat = latencies[idx]
            with ServiceClient(host, port) as client:
                for i in range(requests_per_client):
                    # sweep the domain so requests are not one cached line
                    x = 30.0 + ((idx * 37 + i) % 350)
                    t0 = time.perf_counter()
                    try:
                        client.request(
                            "GET",
                            "/v1/point?quantity=delta&load=poisson"
                            f"&utility=adaptive&x={x}",
                        )
                    except Exception:
                        errors[idx] += 1
                        continue
                    lat.append(time.perf_counter() - t0)

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"client-{i}")
            for i in range(CLIENTS)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0

    lat = np.array([v for chunk in latencies for v in chunk])
    failed = int(sum(errors))
    return {
        "clients": CLIENTS,
        "requests": total,
        "failed": failed,
        "wall_seconds": round(wall, 3),
        "requests_per_sec": round((total - failed) / wall, 1),
        "p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(lat, 99)) * 1e3, 3),
        "max_ms": round(float(np.max(lat)) * 1e3, 3),
    }


def _measure_accuracy(service: EmulatorService) -> Dict:
    """Served values vs the exact batch solver, in bound units.

    Also drives the out-of-domain fallback ladder: queries past the
    fitted range must come back ``source: exact`` and agree with the
    solver exactly.
    """
    rng = np.random.default_rng(7)
    worst = 0.0
    worst_case = "n/a"
    checked = 0
    for surface in service.bank.surfaces.values():
        if surface.log_x:
            xs = np.exp(
                rng.uniform(
                    np.log(surface.lo), np.log(surface.hi), ACCURACY_POINTS
                )
            )
        else:
            xs = rng.uniform(surface.lo, surface.hi, ACCURACY_POINTS)
        served = np.array(
            [
                service.point(
                    surface.quantity, surface.load, surface.utility, float(x)
                )["value"]
                for x in xs
            ]
        )
        exact = exact_values(
            surface.quantity,
            DEFAULT_CONFIG,
            surface.load,
            surface.utility,
            xs,
        )
        residual = float(np.max(np.abs(served - exact))) / surface.certified_bound
        checked += xs.size
        if residual > worst:
            worst, worst_case = residual, surface.key
    # out-of-domain burst: beyond every fitted capacity domain
    fallback = service.batch(
        "delta", "poisson", "adaptive", [450.0, 600.0, 900.0]
    )
    return {
        "points_checked": checked,
        "worst_residual_bound_units": round(worst, 4),
        "worst_surface": worst_case,
        "fallback_source": fallback["source"],
    }


def measure() -> Dict:
    started_journal = obs.journal() is None
    if started_journal:
        EVENTS_PATH.parent.mkdir(exist_ok=True)
        obs.open_journal(EVENTS_PATH, bench="bench_service")
    obs.reset()
    obs.enable()
    try:
        service = _service()
        speedup = _measure_point_speedup(service)
        throughput = _measure_throughput(service)
        accuracy = _measure_accuracy(service)
    finally:
        obs.disable()
        if started_journal:
            obs.close_journal()
    return {
        "generated_by": "benchmarks/bench_service.py",
        "config": {
            "kbar": DEFAULT_CONFIG.kbar,
            "kappa": DEFAULT_CONFIG.kappa,
            "z": DEFAULT_CONFIG.z,
            "clients": CLIENTS,
            "target_point_speedup": TARGET_POINT_SPEEDUP,
            "target_rps": TARGET_RPS,
            "repeats": REPEATS,
        },
        "full_horizon": _full(),
        "point_speedup": speedup,
        "throughput": throughput,
        "accuracy": accuracy,
    }


def render(stats: Dict) -> str:
    s = stats["point_speedup"]
    t = stats["throughput"]
    a = stats["accuracy"]
    return "\n".join(
        [
            f"point query: exact {s['exact_us_per_point']:.0f}us vs "
            f"emulated {s['emulated_us_per_point']:.1f}us = "
            f"{s['speedup']:.0f}x (target >= {TARGET_POINT_SPEEDUP:.0f}x)",
            f"throughput: {t['requests']} requests, {t['clients']} clients, "
            f"{t['requests_per_sec']:.0f} req/s "
            f"(target >= {TARGET_RPS:.0f}), p50 {t['p50_ms']:.2f}ms, "
            f"p99 {t['p99_ms']:.2f}ms, {t['failed']} failed",
            f"accuracy: {a['points_checked']} served points, worst "
            f"{a['worst_residual_bound_units']:.3f} certified bounds "
            f"({a['worst_surface']}); out-of-domain burst -> "
            f"{a['fallback_source']}",
        ]
    )


def check(stats: Dict) -> None:
    """Assert the acceptance criteria from the issue."""
    s = stats["point_speedup"]
    assert s["speedup"] >= TARGET_POINT_SPEEDUP, (
        f"point speedup {s['speedup']:.1f}x below the "
        f"{TARGET_POINT_SPEEDUP:.0f}x target"
    )
    t = stats["throughput"]
    assert t["failed"] == 0, f"{t['failed']} requests failed under load"
    assert t["requests_per_sec"] >= TARGET_RPS, (
        f"throughput {t['requests_per_sec']:.0f} req/s below the "
        f"{TARGET_RPS:.0f} req/s target"
    )
    a = stats["accuracy"]
    assert a["worst_residual_bound_units"] <= 1.0, (
        f"served point drifted past its certified bound: "
        f"{a['worst_surface']} at {a['worst_residual_bound_units']:.3f}"
    )
    assert a["fallback_source"] == "exact", (
        f"out-of-domain burst answered from {a['fallback_source']!r}, "
        "expected the exact fallback"
    )


def write_json(stats: Dict) -> None:
    JSON_PATH.write_text(json.dumps(stats, indent=2) + "\n")


def append_history(stats: Dict) -> None:
    """Ledger entries: gated ratios + informational latencies."""
    from repro.obs import ledger

    digest = ledger.digest_config(stats["config"])
    entries = [
        ledger.make_entry(
            "bench_service",
            "service_requests_per_sec",
            stats["throughput"]["requests_per_sec"],
            direction=ledger.HIGHER_IS_BETTER,
            config_digest=digest,
            unit="req/s",
        ),
        ledger.make_entry(
            "bench_service",
            "service_point_speedup",
            stats["point_speedup"]["speedup"],
            direction=ledger.HIGHER_IS_BETTER,
            config_digest=digest,
            unit="x",
        ),
        ledger.make_entry(
            "bench_service",
            "service_point_p50_ms",
            stats["throughput"]["p50_ms"],
            direction=ledger.LOWER_IS_BETTER,
            config_digest=digest,
            unit="ms",
            gated=False,
        ),
        ledger.make_entry(
            "bench_service",
            "service_point_p99_ms",
            stats["throughput"]["p99_ms"],
            direction=ledger.LOWER_IS_BETTER,
            config_digest=digest,
            unit="ms",
            gated=False,
        ),
    ]
    ledger.append_entries(HISTORY_PATH, entries)


def test_service_load(benchmark, record):
    from benchmarks.conftest import run_once

    stats = run_once(benchmark, measure)
    record("service_load", render(stats))
    write_json(stats)
    check(stats)
    append_history(stats)


def main() -> int:
    stats = measure()
    text = render(stats)
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "service_load.txt").write_text(f"# service_load\n{text}\n")
    write_json(stats)
    print(text)
    check(stats)
    append_history(stats)
    print("service load targets met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
