"""Shared machinery for the benchmark harness.

Each benchmark regenerates one of the paper's figures or text-quoted
tables and records the numeric series/rows to ``benchmarks/results/``
(plus stdout, visible with ``pytest -s``).  Timing is taken with a
single round — these are reproduction runs, not micro-benchmarks.

Set ``REPRO_BENCH_FULL=1`` to run at the paper's full grids; the
default uses the reduced grids so the whole harness finishes in a few
minutes.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.params import DEFAULT_CONFIG, FAST_CONFIG

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config():
    """Paper-scale or reduced grids depending on REPRO_BENCH_FULL."""
    if os.environ.get("REPRO_BENCH_FULL"):
        return DEFAULT_CONFIG
    return FAST_CONFIG


@pytest.fixture(scope="session")
def record():
    """Persist a rendered experiment output under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    scale = "paper-scale grids" if os.environ.get("REPRO_BENCH_FULL") else "fast grids"

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(f"# {name} ({scale})\n{text}\n")
        print(f"\n=== {name} ===\n{text}")

    return _record


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark with a single timed round (reproduction, not micro)."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
