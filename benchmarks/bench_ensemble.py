"""Benchmark — vectorized ensemble engine vs sequential scalar runs.

PR 4's tentpole claim: R replications of the flow simulator execute as
one numpy-batched computation in ``repro.simulation.ensemble`` at >= 8x
the aggregate event throughput of R sequential ``FlowSimulator.run``
calls, without changing a single event.  This benchmark

* times both paths on the headline configuration (R = 64 Poisson
  replications, census mean 50, capacity 55) and asserts the speedup,
* asserts exact parity — every ensemble replication's trajectory is
  event-for-event identical to the scalar engine replaying the same
  seed child's stream,
* estimates the paper's gap ``delta(C) = R(C) - B(C)`` with
  CRN-paired best-effort/reservation ensembles and asserts the
  analytic gap lies within the reported confidence interval (plus a
  tiny tolerance for the finite-horizon bias floor), and
* demonstrates precision-targeted stopping: ``run_until`` grows a
  fresh ensemble until the ``B(C)`` estimate reaches a requested CI
  half-width, and the result must bracket the analytic value.

Results land in ``BENCH_ensemble.json`` at the repository root
(committed, so reviewers can diff the speedup across machines) and
``benchmarks/results/ensemble_speedup.txt``.

Run standalone (``python benchmarks/bench_ensemble.py``) or via the
harness (``pytest benchmarks/bench_ensemble.py``).
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict

import numpy as np

from repro.loads import PoissonLoad
from repro.models import VariableLoadModel
from repro.simulation import (
    AdmitAll,
    BirthDeathProcess,
    EnsembleSimulator,
    FlowSimulator,
    Link,
    PoissonProcess,
    ReplicationStream,
    paired_gap,
    spawn_children,
)
from repro.utility import AdaptiveUtility

#: The acceptance target: ensemble aggregate events/sec over R
#: sequential scalar runs (single process, identical streams).
TARGET_SPEEDUP = 8.0

#: Headline throughput configuration.
REPLICATIONS = 64
HORIZON = 200.0
SPEED_SEED = 404

#: Statistical validation configuration (the S1 setting).
KBAR = 50.0
CAPACITY = 55.0
GAP_REPLICATIONS = 32
GAP_HORIZON = 400.0
GAP_WARMUP = 50.0
GAP_SEED = 2025

#: Slack added to CI half-widths when comparing against analytic
#: values: absorbs the residual finite-horizon bias of the level
#: estimates (empirically ~2e-3 at horizon 400) without letting a
#: genuinely wrong estimator through.
BIAS_FLOOR = 5e-3
#: The CRN-paired gap cancels the shared census-level bias, so its
#: floor only covers run-to-run numerical slack.
GAP_BIAS_FLOOR = 2e-4

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_ensemble.json"
HISTORY_PATH = ROOT / "benchmarks" / "results" / "history.jsonl"


def _speedup_case() -> Dict:
    """Time R sequential scalar runs vs one vectorized ensemble.

    Both paths consume the identical per-replication streams (the same
    ``SeedSequence`` children), so the event counts must agree and the
    comparison is work-for-work.
    """
    process = PoissonProcess(KBAR)
    link = Link(CAPACITY)

    # warm both paths so first-call costs don't land in the timings
    EnsembleSimulator(process, link, AdmitAll()).run(2, 10.0, seed=1)
    FlowSimulator(process, link, AdmitAll()).run(
        10.0, stream=ReplicationStream(spawn_children(1, 1)[0])
    )

    children = spawn_children(SPEED_SEED, REPLICATIONS)
    scalar_sim = FlowSimulator(process, link, AdmitAll())
    t0 = time.perf_counter()
    scalar_results = [
        scalar_sim.run(HORIZON, stream=ReplicationStream(child))
        for child in children
    ]
    t_scalar = time.perf_counter() - t0
    scalar_events = int(sum(r.events for r in scalar_results))

    ensemble = EnsembleSimulator(process, link, AdmitAll())
    t0 = time.perf_counter()
    result = ensemble.run(REPLICATIONS, HORIZON, seed=SPEED_SEED)
    t_ensemble = time.perf_counter() - t0
    ensemble_events = int(result.events.sum())

    parity = scalar_events == ensemble_events
    for r, scalar in enumerate(scalar_results):
        tr = result.trajectory(r)
        parity = parity and (
            np.array_equal(scalar.trajectory.times, tr.times)
            and np.array_equal(scalar.trajectory.census, tr.census)
            and np.array_equal(scalar.trajectory.admitted, tr.admitted)
        )
    return {
        "case": f"R={REPLICATIONS} Poisson(kbar={KBAR:.0f}) to t={HORIZON:.0f}",
        "replications": REPLICATIONS,
        "events": ensemble_events,
        "scalar_s": round(t_scalar, 3),
        "ensemble_s": round(t_ensemble, 3),
        "scalar_events_per_s": round(scalar_events / t_scalar),
        "ensemble_events_per_s": round(ensemble_events / t_ensemble),
        "speedup": round(t_scalar / t_ensemble, 2),
        "exact_parity": bool(parity),
    }


def _gap_case() -> Dict:
    """CRN-paired gap estimate vs the analytic ``delta(C)``."""
    load = PoissonLoad(KBAR)
    utility = AdaptiveUtility()
    model = VariableLoadModel(load, utility)
    gap = paired_gap(
        BirthDeathProcess(load),
        Link(CAPACITY),
        utility,
        GAP_REPLICATIONS,
        GAP_HORIZON,
        warmup=GAP_WARMUP,
        seed=GAP_SEED,
    )
    summary = gap.summary()
    analytic_be = float(model.best_effort(CAPACITY))
    analytic_res = float(model.reservation(CAPACITY))
    return {
        "case": (
            f"CRN paired gap, R={GAP_REPLICATIONS}, "
            f"t={GAP_HORIZON:.0f}, warmup={GAP_WARMUP:.0f}"
        ),
        "analytic_be": analytic_be,
        "analytic_res": analytic_res,
        "analytic_gap": analytic_res - analytic_be,
        "sim_be": summary["best_effort"],
        "sim_be_ci": summary["best_effort_ci"],
        "sim_res": summary["reservation"],
        "sim_res_ci": summary["reservation_ci"],
        "sim_gap": summary["gap"],
        "sim_gap_ci": summary["gap_ci"],
    }


def _adaptive_case() -> Dict:
    """Precision-targeted stopping on the best-effort estimate."""
    load = PoissonLoad(KBAR)
    utility = AdaptiveUtility()
    analytic_be = float(VariableLoadModel(load, utility).best_effort(CAPACITY))
    target = 5e-3
    estimate = EnsembleSimulator(
        BirthDeathProcess(load), Link(CAPACITY), AdmitAll()
    ).run_until(
        lambda result: result.utility_estimates(utility)[0],
        GAP_HORIZON,
        ci_halfwidth=target,
        warmup=GAP_WARMUP,
        seed=GAP_SEED + 1,
        min_replications=4,
        max_replications=256,
    )
    return {
        "case": f"run_until B(C) to ci<={target:g}",
        "target_ci": target,
        "analytic_be": analytic_be,
        "mean": estimate.mean,
        "ci_halfwidth": estimate.ci_halfwidth,
        "replications": estimate.replications,
        "converged": bool(estimate.converged),
    }


def measure() -> Dict:
    """Run the speedup, CRN-gap and adaptive-stopping cases."""
    speed = _speedup_case()
    gap = _gap_case()
    adaptive = _adaptive_case()
    return {
        "generated_by": "benchmarks/bench_ensemble.py",
        "config": {
            "kbar": KBAR,
            "capacity": CAPACITY,
            "target_speedup": TARGET_SPEEDUP,
            "bias_floor": BIAS_FLOOR,
            "gap_bias_floor": GAP_BIAS_FLOOR,
        },
        "headline": speed,
        "cases": [speed, gap, adaptive],
        "gap": gap,
        "adaptive": adaptive,
    }


def render(stats: Dict) -> str:
    h = stats["headline"]
    g = stats["gap"]
    a = stats["adaptive"]
    return "\n".join(
        [
            f"{h['case']}: {h['events']} events",
            (
                f"  scalar {h['scalar_s']:.2f}s "
                f"({h['scalar_events_per_s'] / 1e3:.0f}k ev/s)  "
                f"ensemble {h['ensemble_s']:.2f}s "
                f"({h['ensemble_events_per_s'] / 1e6:.2f}M ev/s)  "
                f"speedup {h['speedup']:.1f}x (target >= "
                f"{TARGET_SPEEDUP:.0f}x)  parity={h['exact_parity']}"
            ),
            f"{g['case']}:",
            (
                f"  B(C): sim {g['sim_be']:.5f} +/- {g['sim_be_ci']:.5f}  "
                f"analytic {g['analytic_be']:.5f}"
            ),
            (
                f"  R(C): sim {g['sim_res']:.5f} +/- {g['sim_res_ci']:.5f}  "
                f"analytic {g['analytic_res']:.5f}"
            ),
            (
                f"  gap:  sim {g['sim_gap']:.6f} +/- {g['sim_gap_ci']:.6f}  "
                f"analytic {g['analytic_gap']:.6f}"
            ),
            (
                f"{a['case']}: mean {a['mean']:.5f} +/- "
                f"{a['ci_halfwidth']:.5f} after {a['replications']} "
                f"replications (converged={a['converged']}, "
                f"analytic {a['analytic_be']:.5f})"
            ),
        ]
    )


def check(stats: Dict) -> None:
    """Assert the acceptance criteria from the issue."""
    h = stats["headline"]
    assert h["exact_parity"], (
        "ensemble trajectories diverged from scalar runs on shared streams"
    )
    assert h["speedup"] >= TARGET_SPEEDUP, (
        f"ensemble speedup {h['speedup']:.1f}x below the "
        f"{TARGET_SPEEDUP:.0f}x target"
    )
    g = stats["gap"]
    assert abs(g["sim_be"] - g["analytic_be"]) <= g["sim_be_ci"] + BIAS_FLOOR, (
        f"B(C) estimate {g['sim_be']:.5f} +/- {g['sim_be_ci']:.5f} too far "
        f"from analytic {g['analytic_be']:.5f}"
    )
    assert abs(g["sim_res"] - g["analytic_res"]) <= g["sim_res_ci"] + BIAS_FLOOR, (
        f"R(C) estimate {g['sim_res']:.5f} +/- {g['sim_res_ci']:.5f} too far "
        f"from analytic {g['analytic_res']:.5f}"
    )
    assert (
        abs(g["sim_gap"] - g["analytic_gap"])
        <= g["sim_gap_ci"] + GAP_BIAS_FLOOR
    ), (
        f"CRN gap {g['sim_gap']:.6f} +/- {g['sim_gap_ci']:.6f} does not "
        f"cover the analytic delta {g['analytic_gap']:.6f}"
    )
    a = stats["adaptive"]
    assert a["converged"], "run_until failed to reach the CI target"
    assert a["ci_halfwidth"] <= a["target_ci"], (
        f"reported CI {a['ci_halfwidth']:.5f} above target {a['target_ci']:g}"
    )
    assert abs(a["mean"] - a["analytic_be"]) <= a["ci_halfwidth"] + BIAS_FLOOR, (
        f"adaptive estimate {a['mean']:.5f} +/- {a['ci_halfwidth']:.5f} "
        f"too far from analytic {a['analytic_be']:.5f}"
    )


def write_json(stats: Dict) -> None:
    JSON_PATH.write_text(json.dumps(stats, indent=2) + "\n")


def append_history(stats: Dict) -> None:
    """Record the headline metrics in the bench-history ledger.

    The speedup ratio gates; raw throughput and the adaptive
    replication count are informational (``gated=False``) — the first
    is a machine fact, the second a stochastic one.
    """
    from repro.obs import ledger

    digest = ledger.digest_config(stats["config"])
    h = stats["headline"]
    a = stats["adaptive"]
    ledger.append_entries(
        HISTORY_PATH,
        [
            ledger.make_entry(
                "bench_ensemble",
                "vectorized_speedup",
                h["speedup"],
                direction=ledger.HIGHER_IS_BETTER,
                config_digest=digest,
                unit="x",
            ),
            ledger.make_entry(
                "bench_ensemble",
                "ensemble_events_per_s",
                h["ensemble_events_per_s"],
                direction=ledger.HIGHER_IS_BETTER,
                config_digest=digest,
                unit="events/s",
                gated=False,
            ),
            ledger.make_entry(
                "bench_ensemble",
                "adaptive_replications",
                a["replications"],
                direction=ledger.LOWER_IS_BETTER,
                config_digest=digest,
                gated=False,
            ),
        ],
    )


def test_ensemble_speedup(benchmark, record):
    from benchmarks.conftest import run_once

    stats = run_once(benchmark, measure)
    record("ensemble_speedup", render(stats))
    write_json(stats)
    check(stats)
    append_history(stats)


def main() -> int:
    stats = measure()
    text = render(stats)
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "ensemble_speedup.txt").write_text(f"# ensemble_speedup\n{text}\n")
    write_json(stats)
    print(text)
    check(stats)
    append_history(stats)
    print("ensemble speedup targets met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
