"""Benchmarks F8/F9 — the paper's footnotes, reproduced.

Footnote 8 (with the end of Section 3.3): for power-law satiation
``pi(b) = 1 - b^-tau`` under the Pareto(z) census, the bandwidth gap's
growth obeys a trichotomy in ``tau`` vs ``z``.  Footnote 9: with
retries, even *elastic* applications can prefer the reservation
architecture.
"""

import pytest

from benchmarks.conftest import run_once
from repro.continuum import AlgebraicTailAlgebraicContinuum
from repro.loads import AlgebraicLoad
from repro.models import RetryingModel, VariableLoadModel
from repro.utility import ExponentialElasticUtility


def test_f8_satiation_trichotomy(benchmark, record):
    """Delta ~ C^e with e = 1 (tau > z-2) or e = tau+3-z (else)."""

    cases = [(3.0, 2.0), (3.0, 0.5), (4.5, 1.2), (4.5, 0.9)]

    def sweep():
        rows = ["z     tau    predicted e   measured e   regime"]
        out = {}
        for z, tau in cases:
            model = AlgebraicTailAlgebraicContinuum(z, tau)
            predicted = model.gap_growth_exponent()
            measured = model.measured_growth_exponent(c_lo=500.0, c_hi=50_000.0)
            if tau > z - 2.0:
                regime = "linear"
            elif tau > z - 3.0:
                regime = "sublinear growth"
            else:
                regime = "shrinking gap"
            out[(z, tau)] = (predicted, measured)
            rows.append(
                f"{z:4.1f} {tau:5.1f} {predicted:+12.3f} {measured:+12.3f}   {regime}"
            )
        return "\n".join(rows), out

    text, out = run_once(benchmark, sweep)
    record("F8_trichotomy", text)
    for (z, tau), (predicted, measured) in out.items():
        assert measured == pytest.approx(predicted, abs=0.03), (z, tau)


def test_f9_elastic_reservations_with_retries(benchmark, record):
    """Footnote 9: elastic apps + free retries -> reservations win."""
    load = AlgebraicLoad.from_mean(3.0, 100.0)
    utility = ExponentialElasticUtility()
    capacity = 200.0

    def run():
        base = VariableLoadModel(load, utility)
        b = base.best_effort(capacity)
        rows = [f"B(C={capacity:.0f}) = {b:.4f} (elastic pi = 1 - e^-b)"]
        values = {"best_effort": b}
        for alpha in (0.0, 0.05, 0.5):
            retry = RetryingModel(
                load,
                utility,
                alpha=alpha,
                k_max_override=lambda c: int(0.8 * c),
            )
            r = retry.reservation(capacity)
            values[alpha] = r
            rows.append(f"R~(alpha={alpha:4.2f}, kmax=0.8C) = {r:.4f}")
        return "\n".join(rows), values

    text, values = run_once(benchmark, run)
    record("F9_elastic_retries", text)
    # free and cheap retries beat best effort; punitive ones do not
    assert values[0.0] > values["best_effort"]
    assert values[0.05] > values["best_effort"]
    assert values[0.5] < values[0.0]
