"""Benchmark F2 — Figure 2: Poisson load, all six panels.

The Poisson story the figure tells: a large rigid gap below C = k_bar
that vanishes superexponentially once C exceeds k_bar (panels a/b);
adaptive applications close the gap almost everywhere (d/e); the
equalizing price ratio sits near 1.1-1.2 for rigid apps and collapses
to 1 for adaptive ones (c/f).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.figures import figure2
from repro.experiments.report import render_series


def test_fig2_poisson_panels(benchmark, config, record):
    series = run_once(benchmark, figure2, config)
    record("F2_poisson", render_series(series))
    caps = series["capacity"]
    kbar = config.kbar

    # panel a: R above B everywhere; both reach ~1 by 2 k_bar
    assert np.all(series["reservation_rigid"] >= series["best_effort_rigid"] - 1e-12)
    late = caps >= 2.0 * kbar
    assert np.all(series["best_effort_rigid"][late] > 0.999)

    # panel b: rigid bandwidth gap dies after k_bar
    assert np.all(series["bandwidth_gap_rigid"][late] < 1e-6)

    # panels d/e: adaptive curves nearly coincide beyond k_bar
    mid = caps >= kbar
    assert np.all(series["performance_gap_adaptive"][mid] < 0.01)

    # panels c/f: rigid gamma meaningfully above 1, adaptive ~ 1
    rigid_gamma = series["gamma_rigid"][~np.isnan(series["gamma_rigid"])]
    adaptive_gamma = series["gamma_adaptive"][~np.isnan(series["gamma_adaptive"])]
    assert np.nanmedian(rigid_gamma) > 1.05
    assert np.nanmedian(adaptive_gamma) < 1.01
