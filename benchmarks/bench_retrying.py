"""Benchmark T5/S5.2 — the retrying extension (Section 5.2).

Records the retrying checkpoint table and the basic-vs-retrying sweep
(algebraic load, adaptive apps, alpha = 0.1): the gap amplification at
large C (~10x at 4 k_bar) and — the paper's most striking reversal —
the equalizing ratio gamma(p) turning *non-monotone*: with retries,
cheaper bandwidth can make reservations more attractive.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.models import ExtensionWelfare, RetryingModel
from repro.utility import AdaptiveUtility
from repro.experiments.checkpoints import retrying_checkpoints
from repro.experiments.figures import retrying_series
from repro.experiments.report import render_checkpoints, render_series


def test_t5_retrying_checkpoints(benchmark, record):
    rows = run_once(benchmark, retrying_checkpoints)
    record("T5_retrying_checkpoints", render_checkpoints(rows))
    assert all(row.matches for row in rows)


def test_s52_retrying_sweep(benchmark, config, record):
    series = run_once(benchmark, retrying_series, "algebraic", "adaptive", config)
    record("S52_retrying_sweep", render_series(series))

    caps = series["capacity"]
    late = caps >= 3.0 * config.kbar
    basic = series["performance_gap_basic"]
    retry = series["performance_gap_retrying"]

    # the retry effect is *more* visible at large C (paper Section 5.2)
    amp_late = retry[late] / np.maximum(basic[late], 1e-12)
    assert np.all(amp_late > 3.0)

    # retries per flow fall with capacity
    d = series["retries_per_flow"]
    assert np.all(np.diff(d) <= 1e-9)

    # bandwidth gap grows even faster than the basic model's
    hi = caps >= 2.0 * config.kbar
    slope_basic = np.polyfit(caps[hi], series["bandwidth_gap_basic"][hi], 1)[0]
    slope_retry = np.polyfit(caps[hi], series["bandwidth_gap_retrying"][hi], 1)[0]
    assert slope_retry > slope_basic > 0.0


def test_s52_retry_gamma_non_monotone(benchmark, config, record):
    """The Section 5.2 welfare reversal: gamma(p) peaks then falls.

    "the price ratio curve gamma(p), which in all previous cases was
    monotonically increasing, now decreases for very small p" — checked
    at paper scale with the exact grid-Legendre welfare transform.
    """
    load = config.load("algebraic")

    def run():
        retry = RetryingModel(load, AdaptiveUtility(config.kappa), alpha=config.alpha)
        welfare = ExtensionWelfare(
            retry,
            load.mean,
            c_min=2.2 * config.kbar,
            c_max=80.0 * config.kbar,
            points=110,
        )
        lo, hi = welfare.price_range()
        prices = np.geomspace(lo * 1.3, hi * 0.7, 10)
        return welfare.ratio_curve(prices)

    curve = run_once(benchmark, run)
    rows = [
        f"p={p:9.5f}  gamma={g:8.4f}"
        for p, g in zip(curve["price"], curve["gamma"])
        if np.isfinite(g)
    ]
    record("S52_retry_gamma", "\n".join(rows))

    gamma = curve["gamma"][np.isfinite(curve["gamma"])]
    peak = int(np.argmax(gamma))
    assert 0 < peak < len(gamma) - 1  # interior peak = non-monotone
    assert gamma.max() > 1.3  # far above the basic model's ~1.02
