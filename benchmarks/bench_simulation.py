"""Benchmark S1 — dynamic validation of the static model's premise.

The paper's variable-load model assumes flows experience a stationary
census.  This benchmark runs the flow-level simulator (exact
birth-death dynamics for the Poisson census) under both architectures
and compares the measured flow-average utilities with the analytic
``B(C)`` and ``R(C)``.
"""

import pytest

from benchmarks.conftest import run_once
from repro.loads import PoissonLoad
from repro.models import VariableLoadModel
from repro.simulation import (
    AdmitAll,
    BirthDeathProcess,
    FlowSimulator,
    Link,
    ThresholdAdmission,
    census_total_variation,
    mean_utilities,
)
from repro.utility import AdaptiveUtility


def test_s1_simulator_validates_static_model(benchmark, record):
    load = PoissonLoad(50.0)
    utility = AdaptiveUtility()
    capacity = 55.0
    model = VariableLoadModel(load, utility)

    ticks = []

    def run():
        # liveness: a progress tick every 20k events (kept in the
        # recorded output so a stalled run is distinguishable from a
        # slow one when scanning results)
        progress = lambda events, t: ticks.append(events)  # noqa: E731
        proc = BirthDeathProcess(load)
        be = FlowSimulator(proc, Link(capacity), AdmitAll()).run(
            500.0, warmup=50.0, seed=101,
            progress=progress, progress_every=20_000,
        )
        res = FlowSimulator(
            proc, Link(capacity), ThresholdAdmission.from_utility(utility)
        ).run(500.0, warmup=50.0, seed=102,
              progress=progress, progress_every=20_000)
        sim_be, _ = mean_utilities(be, utility)
        _, sim_res = mean_utilities(res, utility)
        tv = census_total_variation(be, load)
        return sim_be, sim_res, tv

    sim_be, sim_res, tv = run_once(benchmark, run)
    analytic_be = model.best_effort(capacity)
    analytic_res = model.reservation(capacity)
    record(
        "S1_simulation_validation",
        "quantity        simulated   analytic\n"
        f"B(C={capacity:.0f})      {sim_be:9.4f}  {analytic_be:9.4f}\n"
        f"R(C={capacity:.0f})      {sim_res:9.4f}  {analytic_res:9.4f}\n"
        f"census TV distance: {tv:.4f}\n"
        f"progress ticks: {len(ticks)} (every 20k events)",
    )
    assert tv < 0.06
    assert sim_be == pytest.approx(analytic_be, abs=0.02)
    assert sim_res == pytest.approx(analytic_res, abs=0.02)
    assert sim_res >= sim_be - 0.01
