"""Benchmark S1 — dynamic validation of the static model's premise.

The paper's variable-load model assumes flows experience a stationary
census.  This benchmark runs a CRN-paired ensemble of exact
birth-death trajectories (Poisson census, mean 50) under both
architectures and compares the measured flow-average utilities — now
with Student-t confidence half-widths — against the analytic ``B(C)``
and ``R(C)``.  Common random numbers make the simulated gap
``delta = R - B`` sharp enough to resolve even though it is an order
of magnitude smaller than the level estimates' own CIs.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.loads import PoissonLoad
from repro.models import VariableLoadModel
from repro.simulation import (
    AdmitAll,
    BirthDeathProcess,
    EnsembleSimulator,
    Link,
    paired_gap,
)
from repro.utility import AdaptiveUtility

#: CI slack for the level estimates' finite-horizon bias (the gap
#: cancels it; see benchmarks/bench_ensemble.py).
BIAS_FLOOR = 5e-3
GAP_BIAS_FLOOR = 2e-4


def _total_variation(values, probs, load) -> float:
    """TV distance between a pooled census pmf and the load's ``P(k)``."""
    hi = int(max(values.max(), 4 * load.mean)) + 1
    empirical = np.zeros(hi + 1)
    for v, p in zip(values.astype(int), probs):
        if 0 <= v <= hi:
            empirical[v] += p
    analytic = np.asarray(
        load.pmf_array(np.arange(hi + 1, dtype=float)), dtype=float
    )
    if load.support_min > 0:
        analytic[: load.support_min] = 0.0
    tv = 0.5 * float(np.abs(empirical - analytic).sum())
    return tv + 0.5 * float(load.sf(hi))


def test_s1_simulator_validates_static_model(benchmark, record):
    load = PoissonLoad(50.0)
    utility = AdaptiveUtility()
    capacity = 55.0
    replications, horizon, warmup, seed = 32, 400.0, 50.0, 2025
    model = VariableLoadModel(load, utility)

    def run():
        gap = paired_gap(
            BirthDeathProcess(load),
            Link(capacity),
            utility,
            replications,
            horizon,
            warmup=warmup,
            seed=seed,
        )
        be_run = EnsembleSimulator(
            BirthDeathProcess(load), Link(capacity), AdmitAll()
        ).run(replications, horizon, warmup=warmup, seed=seed)
        tv = _total_variation(*be_run.census_distribution(), load)
        return gap.summary(), tv

    summary, tv = run_once(benchmark, run)
    analytic_be = float(model.best_effort(capacity))
    analytic_res = float(model.reservation(capacity))
    analytic_gap = analytic_res - analytic_be
    record(
        "S1_simulation_validation",
        "quantity       simulated     ci        analytic\n"
        f"B(C={capacity:.0f})      {summary['best_effort']:9.5f} "
        f"{summary['best_effort_ci']:9.5f}  {analytic_be:9.5f}\n"
        f"R(C={capacity:.0f})      {summary['reservation']:9.5f} "
        f"{summary['reservation_ci']:9.5f}  {analytic_res:9.5f}\n"
        f"delta(C={capacity:.0f})  {summary['gap']:9.6f} "
        f"{summary['gap_ci']:9.6f}  {analytic_gap:9.6f}\n"
        f"census TV distance (pooled, {replications} reps): {tv:.4f}",
    )
    assert tv < 0.03
    assert summary["best_effort"] == pytest.approx(
        analytic_be, abs=summary["best_effort_ci"] + BIAS_FLOOR
    )
    assert summary["reservation"] == pytest.approx(
        analytic_res, abs=summary["reservation_ci"] + BIAS_FLOOR
    )
    assert summary["gap"] == pytest.approx(
        analytic_gap, abs=summary["gap_ci"] + GAP_BIAS_FLOOR
    )
    assert summary["gap"] > 0.0
