"""Benchmark — streaming trace replay at scale, at constant memory.

PR 10's tentpole claim: the trace subsystem replays a million-flow
workload through the CRN-paired estimators without ever materializing
the trace.  This benchmark

* generates a seeded Poisson workload of >= 1e6 flows and folds it
  through :func:`repro.traces.replay.sweep_occupancy` straight off the
  generator (no intermediate ``FlowTrace``),
* asserts the two constant-memory witnesses: the peak-RSS delta across
  the run stays under a fixed budget, and the sweep's pending-departure
  high-water mark tracks the *census* (thousands), never the flow
  count (millions),
* evaluates the paired best-effort/reservation verdict at a mildly
  tight capacity so the replay exercises the full estimator path, and
* records replay throughput to the bench-history ledger so ``repro obs
  regress`` flags slowdowns.

Results land in ``BENCH_traces.json`` at the repository root (committed
— the provenance verifier re-checks its gate flags) and
``benchmarks/results/traces_replay.txt``.

Run standalone (``python benchmarks/bench_traces.py``) or via the
harness (``pytest benchmarks/bench_traces.py``).
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict

from repro.obs.resources import peak_rss_bytes
from repro.traces.replay import sweep_occupancy
from repro.traces.workloads import PoissonWorkload
from repro.utility import AdaptiveUtility

#: Workload sizing: rate * horizon >= the 1e6-flow acceptance floor
#: with ~10% headroom for the seeded draw.
RATE = 2200.0
HORIZON = 500.0
WARMUP = 50.0
WINDOWS = 16
SEED = 2025

#: Acceptance floors/budgets.
MIN_FLOWS = 1_000_000
RSS_BUDGET_MB = 256.0
#: Pending departures may track the census (plus transient slack), not
#: the flow count: the constant-memory witness.
PENDING_BUDGET = int(8 * RATE)

#: Capacity for the paired verdict.  At this population the census
#: fluctuates only ~2% around its mean (sigma ~ sqrt(rate)), so the
#: over-provisioning factor must be inside that band for the
#: reservation threshold to ever bind and the gap to be nonzero.
CAPACITY = 1.01 * RATE

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_traces.json"
HISTORY_PATH = ROOT / "benchmarks" / "results" / "history.jsonl"


def measure() -> Dict:
    """Generate, sweep and evaluate one million-flow replay."""
    workload = PoissonWorkload(RATE)
    rss_before = peak_rss_bytes()
    t0 = time.perf_counter()
    stream = workload.stream(HORIZON, seed=SEED)
    occupancy = sweep_occupancy(stream, windows=WINDOWS, warmup=WARMUP)
    sweep_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    result = occupancy.evaluate(AdaptiveUtility(), CAPACITY)
    evaluate_s = time.perf_counter() - t0
    rss_after = peak_rss_bytes()
    rss_delta_mb = max(0.0, (rss_after - rss_before) / 2**20)
    summary = result.summary()

    constant_memory = (
        rss_delta_mb <= RSS_BUDGET_MB
        and occupancy.max_pending <= PENDING_BUDGET
    )
    headline = {
        "case": (
            f"Poisson(rate={RATE:.0f}) to t={HORIZON:.0f}, "
            f"{WINDOWS} windows, streamed off the generator"
        ),
        "flows": occupancy.flows,
        "events": occupancy.events,
        "sweep_s": round(sweep_s, 3),
        "evaluate_s": round(evaluate_s, 3),
        "flows_per_s": round(occupancy.flows / sweep_s),
        "max_pending": occupancy.max_pending,
        "pending_budget": PENDING_BUDGET,
        "rss_delta_mb": round(rss_delta_mb, 1),
        "rss_budget_mb": RSS_BUDGET_MB,
        "constant_memory": bool(constant_memory),
    }
    verdict = {
        "capacity": CAPACITY,
        "threshold": summary["threshold"],
        "mean_census": summary["mean_census"],
        "best_effort": summary["best_effort"],
        "best_effort_ci": summary["best_effort_ci"],
        "reservation": summary["reservation"],
        "reservation_ci": summary["reservation_ci"],
        "gap": summary["gap"],
        "gap_ci": summary["gap_ci"],
    }
    return {
        "generated_by": "benchmarks/bench_traces.py",
        "config": {
            "rate": RATE,
            "horizon": HORIZON,
            "warmup": WARMUP,
            "windows": WINDOWS,
            "seed": SEED,
            "capacity": CAPACITY,
            "min_flows": MIN_FLOWS,
            "rss_budget_mb": RSS_BUDGET_MB,
            "pending_budget": PENDING_BUDGET,
        },
        "headline": headline,
        "verdict": verdict,
    }


def render(stats: Dict) -> str:
    h = stats["headline"]
    v = stats["verdict"]
    return "\n".join(
        [
            f"{h['case']}:",
            (
                f"  {h['flows']} flows ({h['events']} events) swept in "
                f"{h['sweep_s']:.2f}s ({h['flows_per_s'] / 1e6:.2f}M flows/s), "
                f"evaluated in {h['evaluate_s']:.2f}s"
            ),
            (
                f"  constant memory: rss delta {h['rss_delta_mb']:.1f} MB "
                f"(budget {h['rss_budget_mb']:.0f}), max pending "
                f"{h['max_pending']} (budget {h['pending_budget']}) -> "
                f"{h['constant_memory']}"
            ),
            (
                f"  verdict at C={v['capacity']:.0f} (threshold "
                f"{v['threshold']:.0f}): B {v['best_effort']:.5f} +/- "
                f"{v['best_effort_ci']:.5f}  R {v['reservation']:.5f} +/- "
                f"{v['reservation_ci']:.5f}  gap {v['gap']:.6f} +/- "
                f"{v['gap_ci']:.6f}"
            ),
        ]
    )


def check(stats: Dict) -> None:
    """Assert the acceptance criteria from the issue."""
    h = stats["headline"]
    assert h["flows"] >= MIN_FLOWS, (
        f"replayed only {h['flows']} flows, need >= {MIN_FLOWS}"
    )
    assert h["rss_delta_mb"] <= RSS_BUDGET_MB, (
        f"peak-RSS delta {h['rss_delta_mb']:.1f} MB exceeds the "
        f"{RSS_BUDGET_MB:.0f} MB streaming budget"
    )
    assert h["max_pending"] <= PENDING_BUDGET, (
        f"pending departures peaked at {h['max_pending']} — memory is "
        f"tracking the flow count, not the census (budget {PENDING_BUDGET})"
    )
    v = stats["verdict"]
    assert 0.0 <= v["best_effort"] <= 1.0 and 0.0 <= v["reservation"] <= 1.0
    assert v["gap_ci"] > 0.0, "degenerate confidence interval"


def write_json(stats: Dict) -> None:
    JSON_PATH.write_text(json.dumps(stats, indent=2) + "\n")


def append_history(stats: Dict) -> None:
    """Record replay throughput (gated) and memory facts (informational)."""
    from repro.obs import ledger

    digest = ledger.digest_config(stats["config"])
    h = stats["headline"]
    ledger.append_entries(
        HISTORY_PATH,
        [
            ledger.make_entry(
                "bench_traces",
                "replay_flows_per_s",
                h["flows_per_s"],
                direction=ledger.HIGHER_IS_BETTER,
                config_digest=digest,
                unit="flows/s",
            ),
            ledger.make_entry(
                "bench_traces",
                "replay_rss_delta_mb",
                h["rss_delta_mb"],
                direction=ledger.LOWER_IS_BETTER,
                config_digest=digest,
                unit="MB",
                gated=False,
            ),
            ledger.make_entry(
                "bench_traces",
                "replay_max_pending",
                h["max_pending"],
                direction=ledger.LOWER_IS_BETTER,
                config_digest=digest,
                gated=False,
            ),
        ],
    )


def test_traces_replay(benchmark, record):
    from benchmarks.conftest import run_once

    stats = run_once(benchmark, measure)
    record("traces_replay", render(stats))
    write_json(stats)
    check(stats)
    append_history(stats)


def main() -> int:
    stats = measure()
    text = render(stats)
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "traces_replay.txt").write_text(f"# traces_replay\n{text}\n")
    write_json(stats)
    print(text)
    check(stats)
    append_history(stats)
    print("streaming replay targets met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
