"""Shape probes: is a utility elastic or inelastic?

Section 2's dichotomy: if ``pi`` has a convex (non-linear) neighbourhood
of the origin then the fixed-load total ``V(k) = k * pi(C/k)`` peaks at
a finite ``k_max`` and admission control helps (*inelastic*); if ``pi``
is strictly concave everywhere, ``V(k)`` increases forever and
best-effort-only is optimal (*elastic*).  These probes apply that test
numerically so arbitrary user-supplied utilities can be classified.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.utility.base import UtilityFunction


class UtilityClass(enum.Enum):
    """Paper Section 2 taxonomy of utility functions."""

    ELASTIC = "elastic"
    INELASTIC = "inelastic"
    INDETERMINATE = "indeterminate"


def second_difference(utility: UtilityFunction, b: float, h: float) -> float:
    """Symmetric second difference of ``pi`` at ``b`` with step ``h``."""
    if b - h < 0.0:
        raise ValueError(f"need b - h >= 0, got b={b!r}, h={h!r}")
    return utility.value(b + h) - 2.0 * utility.value(b) + utility.value(b - h)


def is_convex_near_origin(
    utility: UtilityFunction,
    *,
    span: float = 0.25,
    samples: int = 64,
    tol: float = 1e-9,
) -> bool:
    """True if ``pi`` is convex but not linear on ``(0, span]``.

    This is the paper's sufficient condition for a finite ``k_max``.
    We check non-negative second differences at ``samples`` interior
    points, with at least one strictly positive.
    """
    h = span / (2.0 * samples)
    points = np.linspace(2.0 * h, span - h, samples)
    diffs = np.array([second_difference(utility, float(b), h) for b in points])
    return bool(np.all(diffs >= -tol) and np.any(diffs > tol))


def is_strictly_concave_on(
    utility: UtilityFunction,
    lo: float,
    hi: float,
    *,
    samples: int = 64,
    tol: float = 1e-9,
) -> bool:
    """True if ``pi`` is strictly concave throughout ``[lo, hi]``."""
    if not 0.0 <= lo < hi:
        raise ValueError(f"need 0 <= lo < hi, got [{lo}, {hi}]")
    h = (hi - lo) / (4.0 * samples)
    points = np.linspace(lo + 2.0 * h, hi - 2.0 * h, samples)
    diffs = np.array([second_difference(utility, float(b), h) for b in points])
    return bool(np.all(diffs < tol) and np.any(diffs < -tol))


def classify(utility: UtilityFunction, *, horizon: float = 8.0) -> UtilityClass:
    """Classify a utility as elastic or inelastic per Section 2.

    Rigid and ramp utilities have a flat (hence weakly convex) dead
    zone, which :func:`is_convex_near_origin` does not flag as
    "strictly convex"; we treat a dead zone (``pi`` identically 0 on an
    initial interval while not globally 0) as inelastic too, since it
    forces a finite ``k_max`` the same way.
    """
    probe = utility.value(0.25)
    if probe == 0.0 and utility.value(horizon) > 0.0:
        return UtilityClass.INELASTIC
    if is_convex_near_origin(utility):
        return UtilityClass.INELASTIC
    if is_strictly_concave_on(utility, 0.0, horizon):
        return UtilityClass.ELASTIC
    return UtilityClass.INDETERMINATE
