"""Piecewise-linear adaptive utility — the continuum model's Section 3.2.

The continuum calculations are intractable with the smooth adaptive
utility of Eq. 2, so the paper swaps in a ramp parametrised by
``a in (0, 1)``:

    pi(b) = 0              for b <= a
    pi(b) = (b - a)/(1-a)  for a <  b <  1
    pi(b) = 1              for b >= 1

``a -> 1`` recovers the rigid case; decreasing ``a`` means a more
adaptive application.  For every ``a > 0`` the fixed-load optimum is at
one unit per flow, ``k_max(C) = C``, so the reservation-side results
coincide with the rigid ones and only the best-effort side changes.
"""

from __future__ import annotations

import numpy as np

from repro.utility.base import UtilityFunction
from repro.utility.rigid import RigidUtility


class PiecewiseLinearUtility(UtilityFunction):
    """Ramp utility with dead zone ``[0, a]`` and saturation at 1."""

    name = "piecewise-linear"

    def __init__(self, a: float):
        if not 0.0 <= a < 1.0:
            raise ValueError(f"adaptivity parameter a must be in [0, 1), got {a!r}")
        self._a = float(a)

    @property
    def a(self) -> float:
        """Dead-zone width; 0 is maximally adaptive, ->1 approaches rigid."""
        return self._a

    def value(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        a = self._a
        if b <= a:
            return 0.0
        if b >= 1.0:
            return 1.0
        return (b - a) / (1.0 - a)

    def _values(self, b: np.ndarray) -> np.ndarray:
        if np.any(b < 0.0):
            raise ValueError("bandwidth must be >= 0")
        a = self._a
        return np.clip((b - a) / (1.0 - a), 0.0, 1.0)

    def derivative(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        a = self._a
        if a < b < 1.0:
            return 1.0 / (1.0 - a)
        return 0.0

    def breakpoints(self) -> tuple:
        if self._a > 0.0:
            return (self._a, 1.0)
        return (1.0,)

    def as_rigid_limit(self) -> RigidUtility:
        """The ``a -> 1`` limit of this family (unit-threshold rigid)."""
        return RigidUtility(b_hat=1.0)

    def k_max(self, capacity: float) -> float:
        """Fixed-load optimum: one unit per flow, ``k_max(C) = C``.

        For ``a > 0`` the total ``k * pi(C/k)`` strictly decreases once
        shares drop below 1 (each admitted flow loses ``1/(1-a)`` per
        unit of dilution but only ``1`` is gained per extra flow), so
        the continuum optimum is exactly ``C``.  For ``a = 0`` the
        utility is no longer inelastic and no finite optimum exists;
        we still return ``C`` as the conventional comparison point,
        matching the paper's treatment.
        """
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        return capacity

    def __repr__(self) -> str:
        return f"PiecewiseLinearUtility(a={self._a!r})"
