"""Utilities with algebraic (power-law) approach to full satisfaction.

Section 3.3 of the paper notes that how fast ``pi`` approaches 1
matters under algebraic loads: with ``pi(b) = 1 - b**-tau`` above the
threshold, the bandwidth gap ``Delta(C)`` can grow like ``C``,
``C**(tau+3-z)`` or even *decrease*, depending on how ``tau`` compares
with ``z - 2`` and ``z - 3``.  Footnote 8 also mentions the companion
form ``pi(b) = b**r`` below the threshold.
"""

from __future__ import annotations

import numpy as np

from repro.utility.base import UtilityFunction


class AlgebraicTailUtility(UtilityFunction):
    """``pi(b) = 0`` for ``b <= 1``; ``1 - b**-tau`` for ``b > 1``.

    Captures slow, power-law satiation at high bandwidth while ignoring
    the low-bandwidth region (which does not affect the large-C
    asymptotics it exists to study).  The fixed-load optimum is
    ``k_max(C) = C * (tau + 1)**(-1/tau)`` — strictly below ``C``,
    because admitted flows keep gaining utility past one unit each.
    """

    name = "algebraic-tail"

    def __init__(self, tau: float):
        if tau <= 0.0:
            raise ValueError(f"tau must be > 0, got {tau!r}")
        self._tau = float(tau)

    @property
    def tau(self) -> float:
        """Power of the approach to full utility."""
        return self._tau

    def value(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        if b <= 1.0:
            return 0.0
        return 1.0 - b ** (-self._tau)

    def _values(self, b: np.ndarray) -> np.ndarray:
        if np.any(b < 0.0):
            raise ValueError("bandwidth must be >= 0")
        safe = np.maximum(b, 1.0)
        return np.where(b > 1.0, 1.0 - safe ** (-self._tau), 0.0)

    def derivative(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        if b <= 1.0:
            return 0.0
        return self._tau * b ** (-self._tau - 1.0)

    def k_max(self, capacity: float) -> float:
        """Continuum fixed-load optimum of ``k * pi(C/k)``.

        Stationarity ``pi(b) = b pi'(b)`` gives ``1 - b**-tau =
        tau * b**-tau``, i.e. ``b* = (tau + 1)**(1/tau)`` and
        ``k_max(C) = C / b*``.  (The paper states the equivalent
        ``k_max(C) = C * (tau + 1)**(-1/tau)``.)
        """
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        return capacity * (self._tau + 1.0) ** (-1.0 / self._tau)

    def __repr__(self) -> str:
        return f"AlgebraicTailUtility(tau={self._tau!r})"


class PowerLowUtility(UtilityFunction):
    """``pi(b) = b**r`` for ``b <= 1``; ``1`` for ``b > 1`` (footnote 8).

    A convex low-bandwidth profile (for ``r > 1``) with hard saturation.
    ``r = inf`` would be rigid; ``r = 1`` is the ``a = 0`` ramp.
    """

    name = "power-low"

    def __init__(self, r: float):
        if r < 1.0:
            raise ValueError(
                f"exponent r must be >= 1 for an inelastic profile, got {r!r}"
            )
        self._r = float(r)

    @property
    def r(self) -> float:
        """Low-bandwidth exponent; larger r means a deader dead zone."""
        return self._r

    def value(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        if b >= 1.0:
            return 1.0
        return b**self._r

    def _values(self, b: np.ndarray) -> np.ndarray:
        if np.any(b < 0.0):
            raise ValueError("bandwidth must be >= 0")
        return np.where(b >= 1.0, 1.0, b**self._r)

    def derivative(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        if b >= 1.0:
            return 0.0
        return self._r * b ** (self._r - 1.0)

    def k_max(self, capacity: float) -> float:
        """Fixed-load optimum: exactly one unit per flow for ``r > 1``.

        ``V(k) = k (C/k)**r = C**r k**(1-r)`` decreases in ``k`` once
        shares fall below 1, while admitting more fully-served flows
        adds utility linearly, so the optimum is ``k_max(C) = C``.
        """
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        return capacity

    def __repr__(self) -> str:
        return f"PowerLowUtility(r={self._r!r})"
