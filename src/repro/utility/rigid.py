"""Rigid (hard real-time) utility — Equation 1 of the paper.

A rigid application needs ``b_hat`` units of bandwidth: below that it is
worthless, at or above it it is fully satisfied.  Traditional telephony
and other circuit-switched applications are the motivating examples.

    pi(b) = 0  for b <  b_hat
    pi(b) = 1  for b >= b_hat
"""

from __future__ import annotations

import numpy as np

from repro.utility.base import UtilityFunction


class RigidUtility(UtilityFunction):
    """Step utility with threshold ``b_hat`` (paper Eq. 1).

    With a link of capacity ``C`` the fixed-load total utility is
    ``V(k) = k`` for ``k <= C / b_hat`` and ``0`` beyond, so admission
    control at ``k_max(C) = floor(C / b_hat)`` is essential: one flow
    too many destroys *all* utility.
    """

    name = "rigid"

    def __init__(self, b_hat: float = 1.0):
        if b_hat <= 0.0:
            raise ValueError(f"rigid threshold must be > 0, got {b_hat!r}")
        self._b_hat = float(b_hat)

    @property
    def b_hat(self) -> float:
        """Bandwidth requirement of the application."""
        return self._b_hat

    def value(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        return 1.0 if b >= self._b_hat else 0.0

    def _values(self, b: np.ndarray) -> np.ndarray:
        if np.any(b < 0.0):
            raise ValueError("bandwidth must be >= 0")
        return (b >= self._b_hat).astype(float)

    def derivative(self, b: float) -> float:
        """Zero everywhere except the (measure-zero) step."""
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        return 0.0

    def breakpoints(self) -> tuple:
        return (self._b_hat,)

    def k_max(self, capacity: float) -> int:
        """Largest flow count with nonzero total utility: floor(C/b_hat)."""
        if capacity < 0.0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        return int(capacity / self._b_hat)

    def __repr__(self) -> str:
        return f"RigidUtility(b_hat={self._b_hat!r})"
