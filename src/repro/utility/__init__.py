"""Application utility functions ``pi(b)`` from the paper.

Concrete families:

- :class:`RigidUtility` — hard threshold (Eq. 1); telephony-style.
- :class:`AdaptiveUtility` — smooth sigmoid (Eq. 2); Internet audio/video.
- :class:`PiecewiseLinearUtility` — the continuum model's ramp (§3.2).
- :class:`ExponentialElasticUtility`, :class:`HyperbolicElasticUtility`
  — everywhere-concave data-application utilities (§2, footnote 9).
- :class:`AlgebraicTailUtility`, :class:`PowerLowUtility` — power-law
  satiation variants (§3.3, footnote 8).

Plus the Section 2 classification probes (:func:`classify`) and the
paper's kappa calibration (:func:`calibrate_kappa`).
"""

from repro.utility.adaptive import KAPPA_PAPER, AdaptiveUtility, calibrate_kappa
from repro.utility.algebraic_tail import AlgebraicTailUtility, PowerLowUtility
from repro.utility.base import UtilityFunction
from repro.utility.elastic import ExponentialElasticUtility, HyperbolicElasticUtility
from repro.utility.piecewise import PiecewiseLinearUtility
from repro.utility.probes import (
    UtilityClass,
    classify,
    is_convex_near_origin,
    is_strictly_concave_on,
)
from repro.utility.rigid import RigidUtility

__all__ = [
    "KAPPA_PAPER",
    "AdaptiveUtility",
    "AlgebraicTailUtility",
    "ExponentialElasticUtility",
    "HyperbolicElasticUtility",
    "PiecewiseLinearUtility",
    "PowerLowUtility",
    "RigidUtility",
    "UtilityClass",
    "UtilityFunction",
    "calibrate_kappa",
    "classify",
    "is_convex_near_origin",
    "is_strictly_concave_on",
]
