"""Adaptive (rate- and delay-adaptive) utility — Equation 2 of the paper.

Internet audio/video applications adapt to the bandwidth they get, but
human perception makes very low rates nearly worthless and very high
rates barely better than merely good ones.  The paper models this with

    pi(b) = 1 - exp(-b**2 / (kappa + b))

which is convex near the origin (``pi(b) ~ b**2 / kappa`` for small
``b``) and approaches 1 like ``1 - exp(-b)`` for large ``b``.  The
constant ``kappa = 0.62086`` is chosen so that the fixed-load optimum
sits at one unit of bandwidth per flow, ``k_max(C) = C``, matching the
rigid case and making the two utility classes directly comparable.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import CalibrationError
from repro.numerics.solvers import find_root
from repro.utility.base import UtilityFunction

#: The paper's calibrated constant (footnote 4).
KAPPA_PAPER = 0.62086


class AdaptiveUtility(UtilityFunction):
    """Smooth sigmoid-like utility ``1 - exp(-b^2/(kappa+b))`` (Eq. 2)."""

    name = "adaptive"

    def __init__(self, kappa: float = KAPPA_PAPER):
        if kappa <= 0.0:
            raise ValueError(f"kappa must be > 0, got {kappa!r}")
        self._kappa = float(kappa)

    @property
    def kappa(self) -> float:
        """Shape constant; larger kappa widens the low-value region."""
        return self._kappa

    def value(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        return 1.0 - math.exp(-b * b / (self._kappa + b))

    def _values(self, b: np.ndarray) -> np.ndarray:
        if np.any(b < 0.0):
            raise ValueError("bandwidth must be >= 0")
        return 1.0 - np.exp(-b * b / (self._kappa + b))

    def derivative(self, b: float) -> float:
        """Exact marginal utility.

        d/db [b^2/(kappa+b)] = (b^2 + 2*kappa*b) / (kappa+b)^2, so
        pi'(b) = exp(-b^2/(kappa+b)) * (b^2 + 2*kappa*b) / (kappa+b)^2.
        """
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        k = self._kappa
        exponent = math.exp(-b * b / (k + b))
        return exponent * (b * b + 2.0 * k * b) / ((k + b) ** 2)

    def __repr__(self) -> str:
        return f"AdaptiveUtility(kappa={self._kappa!r})"


def _stationarity_residual(kappa: float) -> float:
    """Residual of the condition placing the fixed-load optimum at b = 1.

    ``V(k) = k * pi(C/k)`` is stationary in ``k`` where
    ``pi(b) - b * pi'(b) = 0`` with ``b = C/k``; requiring that root at
    ``b = 1`` (so ``k_max(C) = C``) gives ``pi(1) = pi'(1)``.
    """
    u = AdaptiveUtility(kappa)
    return u.value(1.0) - u.derivative(1.0)


def calibrate_kappa(*, tol: float = 1e-12) -> float:
    """Solve for the kappa that puts ``k_max(C)`` exactly at ``C``.

    Reproduces the paper's footnote-4 constant 0.62086.  Raises
    :class:`CalibrationError` if the root is not where expected (which
    would indicate a broken utility implementation, not bad luck).
    """
    try:
        kappa = find_root(
            _stationarity_residual, 0.05, 5.0, xtol=tol, label="kappa calibration"
        )
    except Exception as exc:
        raise CalibrationError(f"kappa calibration failed: {exc}") from exc
    if not 0.5 < kappa < 0.8:  # paper value is 0.62086
        raise CalibrationError(
            f"kappa calibration landed at {kappa!r}, outside the expected "
            "neighbourhood of the paper's 0.62086"
        )
    return kappa
