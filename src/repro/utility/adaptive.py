"""Adaptive (rate- and delay-adaptive) utility — Equation 2 of the paper.

Internet audio/video applications adapt to the bandwidth they get, but
human perception makes very low rates nearly worthless and very high
rates barely better than merely good ones.  The paper models this with

    pi(b) = 1 - exp(-b**2 / (kappa + b))

which is convex near the origin (``pi(b) ~ b**2 / kappa`` for small
``b``) and approaches 1 like ``1 - exp(-b)`` for large ``b``.  The
constant ``kappa = 0.62086`` is chosen so that the fixed-load optimum
sits at one unit of bandwidth per flow, ``k_max(C) = C``, matching the
rigid case and making the two utility classes directly comparable.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.errors import CalibrationError
from repro.numerics.solvers import find_root
from repro.utility.base import MaclaurinExpansion, UtilityFunction

#: The paper's calibrated constant (footnote 4).
KAPPA_PAPER = 0.62086

#: Fraction of ``kappa`` used as the certified coefficient-envelope
#: radius.  ``pi`` is analytic in the disc ``|b| < kappa`` (the only
#: singularity is the essential one at ``b = -kappa``), so a Cauchy
#: estimate on the circle ``|b| = 0.8 kappa`` bounds every Maclaurin
#: coefficient by ``M / (0.8 kappa)**j`` with
#: ``M = 1 + exp(rho^2 / (kappa - rho))``.
_ENVELOPE_FRACTION = 0.8


class AdaptiveUtility(UtilityFunction):
    """Smooth sigmoid-like utility ``1 - exp(-b^2/(kappa+b))`` (Eq. 2)."""

    name = "adaptive"

    def __init__(self, kappa: float = KAPPA_PAPER):
        if kappa <= 0.0:
            raise ValueError(f"kappa must be > 0, got {kappa!r}")
        self._kappa = float(kappa)
        self._maclaurin_cache: Dict[int, MaclaurinExpansion] = {}

    @property
    def kappa(self) -> float:
        """Shape constant; larger kappa widens the low-value region."""
        return self._kappa

    def value(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        return 1.0 - math.exp(-b * b / (self._kappa + b))

    def _values(self, b: np.ndarray) -> np.ndarray:
        if np.any(b < 0.0):
            raise ValueError("bandwidth must be >= 0")
        return 1.0 - np.exp(-b * b / (self._kappa + b))

    def derivative(self, b: float) -> float:
        """Exact marginal utility.

        d/db [b^2/(kappa+b)] = (b^2 + 2*kappa*b) / (kappa+b)^2, so
        pi'(b) = exp(-b^2/(kappa+b)) * (b^2 + 2*kappa*b) / (kappa+b)^2.
        """
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        k = self._kappa
        exponent = math.exp(-b * b / (k + b))
        return exponent * (b * b + 2.0 * k * b) / ((k + b) ** 2)

    def maclaurin(self, degree: int) -> Optional[MaclaurinExpansion]:
        """Exact Maclaurin coefficients of ``1 - exp(-b^2/(kappa+b))``.

        Composed from the geometric series of the exponent,
        ``e(b) = b^2/(kappa+b) = sum_{m>=0} (-1)^m b^{m+2}/kappa^{m+1}``,
        through ``pi = sum_{i>=1} (-1)^{i+1} e^i / i!`` with every
        product truncated at ``degree`` — so the retained coefficients
        are the true ones up to float roundoff, and the envelope
        certificate is the Cauchy estimate described at
        :data:`_ENVELOPE_FRACTION`.
        """
        if degree < 2:
            return None
        cached = self._maclaurin_cache.get(int(degree))
        if cached is not None:
            return cached
        kappa = self._kappa
        exponent = np.zeros(degree + 1)
        for m in range(degree - 1):
            exponent[m + 2] = (-1.0) ** m / kappa ** (m + 1)
        coeffs = np.zeros(degree + 1)
        power = exponent.copy()  # e(b)^i, truncated at `degree`
        factorial = 1.0
        for i in range(1, degree + 1):
            coeffs += ((-1.0) ** (i + 1) / factorial) * power
            if 2 * (i + 1) > degree:
                break  # e^i starts at degree 2i: higher powers vanish
            factorial *= i + 1
            power = np.convolve(power, exponent)[: degree + 1]
        rho = _ENVELOPE_FRACTION * kappa
        bound = 1.0 + math.exp(rho * rho / (kappa - rho))
        expansion = MaclaurinExpansion(coeffs, radius=rho, bound=bound)
        self._maclaurin_cache[int(degree)] = expansion
        return expansion

    def __repr__(self) -> str:
        return f"AdaptiveUtility(kappa={self._kappa!r})"


def _stationarity_residual(kappa: float) -> float:
    """Residual of the condition placing the fixed-load optimum at b = 1.

    ``V(k) = k * pi(C/k)`` is stationary in ``k`` where
    ``pi(b) - b * pi'(b) = 0`` with ``b = C/k``; requiring that root at
    ``b = 1`` (so ``k_max(C) = C``) gives ``pi(1) = pi'(1)``.
    """
    u = AdaptiveUtility(kappa)
    return u.value(1.0) - u.derivative(1.0)


def calibrate_kappa(*, tol: float = 1e-12) -> float:
    """Solve for the kappa that puts ``k_max(C)`` exactly at ``C``.

    Reproduces the paper's footnote-4 constant 0.62086.  Raises
    :class:`CalibrationError` if the root is not where expected (which
    would indicate a broken utility implementation, not bad luck).
    """
    try:
        kappa = find_root(
            _stationarity_residual, 0.05, 5.0, xtol=tol, label="kappa calibration"
        )
    except Exception as exc:
        raise CalibrationError(f"kappa calibration failed: {exc}") from exc
    if not 0.5 < kappa < 0.8:  # paper value is 0.62086
        raise CalibrationError(
            f"kappa calibration landed at {kappa!r}, outside the expected "
            "neighbourhood of the paper's 0.62086"
        )
    return kappa
