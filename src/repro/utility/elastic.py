"""Elastic (everywhere-concave) utilities.

Traditional data applications — mail, file transfer — tolerate delay
and have diminishing returns to bandwidth everywhere, so their ``pi`` is
strictly concave and the fixed-load total ``V(k)`` increases forever:
admission control only hurts, and best-effort-only is ideal (Section 2).
The paper's footnote 9 uses ``pi(b) = 1 - e**-b`` when discussing how
even elastic applications can benefit from reservations under retries.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utility.base import UtilityFunction


class ExponentialElasticUtility(UtilityFunction):
    """``pi(b) = 1 - exp(-rate * b)`` — strictly concave everywhere."""

    name = "elastic-exponential"

    def __init__(self, rate: float = 1.0):
        if rate <= 0.0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        self._rate = float(rate)

    @property
    def rate(self) -> float:
        """Decay rate; higher means satiation at lower bandwidth."""
        return self._rate

    def value(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        return 1.0 - math.exp(-self._rate * b)

    def _values(self, b: np.ndarray) -> np.ndarray:
        if np.any(b < 0.0):
            raise ValueError("bandwidth must be >= 0")
        return 1.0 - np.exp(-self._rate * b)

    def derivative(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        return self._rate * math.exp(-self._rate * b)

    def __repr__(self) -> str:
        return f"ExponentialElasticUtility(rate={self._rate!r})"


class HyperbolicElasticUtility(UtilityFunction):
    """``pi(b) = b / (half + b)`` — concave with an algebraic approach to 1.

    Reaches one half of full utility at ``b = half``.  Its slow
    (``1 - pi ~ half/b``) tail makes it a useful stress case for the
    welfare model: utility keeps accruing far past nominal satiation.
    """

    name = "elastic-hyperbolic"

    def __init__(self, half: float = 1.0):
        if half <= 0.0:
            raise ValueError(f"half-saturation point must be > 0, got {half!r}")
        self._half = float(half)

    @property
    def half(self) -> float:
        """Bandwidth at which utility reaches 1/2."""
        return self._half

    def value(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        return b / (self._half + b)

    def _values(self, b: np.ndarray) -> np.ndarray:
        if np.any(b < 0.0):
            raise ValueError("bandwidth must be >= 0")
        return b / (self._half + b)

    def derivative(self, b: float) -> float:
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        return self._half / (self._half + b) ** 2

    def __repr__(self) -> str:
        return f"HyperbolicElasticUtility(half={self._half!r})"
