"""Base class for application utility functions ``pi(b)``.

The paper models each application by a nondecreasing performance (or
utility) function of the bandwidth ``b`` allotted to it, normalised so
that ``pi(0) = 0`` (no bandwidth, no value) and ``pi(inf) = 1`` (fully
satisfied).  Everything else in the paper — which architecture wins,
by how much — is determined by the *shape* of ``pi`` between those
endpoints, so this class keeps the contract minimal: a value, a
derivative, and vectorised evaluation.
"""

from __future__ import annotations

import abc
from typing import Optional, Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

#: Step used by the default central-difference derivative.
_DIFF_STEP = 1e-6


class MaclaurinExpansion:
    """A truncated power series ``pi(b) ~ sum_j a_j b^j`` with a certificate.

    The discrete models use this to replace deep series tails: because a
    monomial separates capacity and flow count
    (``(C/k)^j = C^j * k^-j``), a utility with a Maclaurin expansion
    turns ``sum_{k>=M} P(k) k pi(C/k)`` into a short polynomial in ``C``
    whose coefficients are capacity-independent moment tails of the load
    (see :meth:`LoadDistribution.moment_tail_table`).

    The certificate is a geometric coefficient envelope: the supplying
    utility guarantees ``|a_j| <= bound / radius**j`` for *all* ``j``
    (typically a Cauchy estimate on a circle of that radius inside the
    true convergence disc), so the truncation error after degree ``J``
    is at most ``bound * t**(J+1) / (1 - t)`` with ``t = b/radius``.
    :meth:`remainder_bound` evaluates that bound (``inf`` once ``t``
    approaches 1 — callers shrink ``b`` by raising the series split
    point until the bound fits their tolerance).
    """

    __slots__ = ("coefficients", "radius", "bound")

    def __init__(self, coefficients, radius: float, bound: float):
        self.coefficients = np.asarray(coefficients, dtype=float)
        if radius <= 0.0:
            raise ValueError(f"envelope radius must be > 0, got {radius!r}")
        if bound <= 0.0:
            raise ValueError(f"envelope bound must be > 0, got {bound!r}")
        self.radius = float(radius)
        self.bound = float(bound)

    @property
    def degree(self) -> int:
        """Highest retained power of ``b``."""
        return int(self.coefficients.size - 1)

    def remainder_bound(self, b: ArrayLike) -> np.ndarray:
        """Upper bound on ``|pi(b) - poly(b)|`` for ``0 <= b`` (vectorised)."""
        t = np.asarray(b, dtype=float) / self.radius
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            out = self.bound * t ** (self.degree + 1) / (1.0 - t)
        return np.where(t < 0.96875, out, np.inf)

    def __call__(self, b: ArrayLike) -> np.ndarray:
        """Evaluate the truncated polynomial by Horner's rule."""
        x = np.asarray(b, dtype=float)
        out = np.zeros_like(x)
        for a in self.coefficients[::-1]:
            out = out * x + a
        return out


class UtilityFunction(abc.ABC):
    """A normalised application utility function ``pi(b)``.

    Subclasses implement :meth:`value` for scalar ``b >= 0`` and may
    override :meth:`derivative` with an analytic form.  Instances are
    immutable and hashable so they can key caches in the models.

    The normalisation contract (checked by the test suite for every
    concrete subclass):

    - ``pi(0) == 0``
    - ``pi`` is nondecreasing
    - ``pi(b) -> 1`` as ``b -> inf``
    """

    #: Human-readable short name, overridden per subclass.
    name: str = "utility"

    @abc.abstractmethod
    def value(self, b: float) -> float:
        """Utility at bandwidth ``b`` (scalar, ``b >= 0``)."""

    def __call__(self, b: ArrayLike) -> ArrayLike:
        """Evaluate at a scalar or an array of bandwidths."""
        if np.isscalar(b):
            return self.value(float(b))
        return self._values(np.asarray(b, dtype=float))

    def _values(self, b: np.ndarray) -> np.ndarray:
        """Vectorised evaluation hook.

        The default loops over :meth:`value`; concrete families override
        it with numpy expressions because the discrete-model sums can
        run over millions of bandwidth shares.
        """
        out = np.empty_like(b)
        flat_in = b.ravel()
        flat_out = out.ravel()
        for i, x in enumerate(flat_in):
            flat_out[i] = self.value(float(x))
        return out

    def derivative(self, b: float) -> float:
        """Marginal utility ``pi'(b)``.

        Default: central difference, one-sided at the origin.  Concrete
        utilities override this with exact expressions where they are
        smooth; the default is good enough for the convexity probes.
        """
        if b < 0.0:
            raise ValueError(f"bandwidth must be >= 0, got {b!r}")
        h = _DIFF_STEP * max(1.0, abs(b))
        if b < h:
            return (self.value(b + h) - self.value(b)) / h
        return (self.value(b + h) - self.value(b - h)) / (2.0 * h)

    def maclaurin(self, degree: int) -> Optional[MaclaurinExpansion]:
        """Certified Maclaurin expansion of ``pi`` up to ``degree``.

        Returns ``None`` when the utility has no useful power series at
        the origin (rigid steps, kinked ramps) — the models then keep
        their dense summation paths.  Implementations must return
        coefficients of the *exact* Maclaurin series together with a
        sound geometric envelope (see :class:`MaclaurinExpansion`).
        """
        return None

    def breakpoints(self) -> tuple:
        """Bandwidths where ``pi`` is non-smooth (kinks or jumps).

        Quadrature-based tail corrections split their integrals at the
        corresponding flow counts so adaptive quadrature never straddles
        a kink.  Smooth utilities return the default ``(1.0,)`` (a
        harmless split at the nominal satiation point).
        """
        return (1.0,)

    def fixed_load_total(self, k: float, capacity: float) -> float:
        """Total utility ``V(k) = k * pi(C / k)`` of ``k`` equal shares.

        This is the paper's fixed-load objective (Section 2): ``k``
        identical flows splitting capacity ``C`` evenly.  ``k = 0``
        returns 0.
        """
        if k < 0:
            raise ValueError(f"flow count must be >= 0, got {k!r}")
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        if k == 0:
            return 0.0
        return k * self.value(capacity / k)

    # Utilities are value objects: equality and hashing go through the
    # repr, which every subclass builds from its full parameter set.
    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and repr(self) == repr(other)

    def __hash__(self) -> int:
        return hash((type(self), repr(self)))
