"""Experiment registry: id -> (description, generator).

Single lookup table mapping the DESIGN.md experiment ids to the code
that regenerates them, used by the CLI and the benchmark harness.
"""

from __future__ import annotations

from typing import Callable, Dict, NamedTuple, Optional

from repro.experiments import checkpoints, figures, simulation, traces
from repro.experiments.params import PaperConfig


class Experiment(NamedTuple):
    """A registered experiment.

    ``target`` declares the canonical generator the entry wraps when
    ``run`` is an adapter (a lambda rebinding arguments).  The result
    cache digests experiments by their target's qualified name, so an
    id registered through a lambda hashes identically to one
    registered with the callable directly.
    """

    exp_id: str
    description: str
    run: Callable[[Optional[PaperConfig]], object]
    target: Optional[Callable[..., object]] = None

    @property
    def digest_target(self) -> Callable[..., object]:
        """The callable cache digests are computed from."""
        return self.target if self.target is not None else self.run


EXPERIMENTS: Dict[str, Experiment] = {
    exp.exp_id: exp
    for exp in [
        Experiment("F1", "Figure 1: adaptive utility curve", figures.figure1),
        Experiment(
            "F2", "Figure 2: Poisson load, all six panels", figures.figure2
        ),
        Experiment(
            "F3", "Figure 3: exponential load, all six panels", figures.figure3
        ),
        Experiment(
            "F4", "Figure 4: algebraic load, all six panels", figures.figure4
        ),
        Experiment(
            "T1",
            "Section 3.3 text checkpoints (discrete model)",
            checkpoints.section3_checkpoints,
        ),
        Experiment(
            "T2",
            "Section 3.2/3.3 continuum closed-form checkpoints",
            checkpoints.continuum_checkpoints,
        ),
        Experiment(
            "T3", "Section 4 welfare checkpoints", checkpoints.welfare_checkpoints
        ),
        Experiment(
            "T4", "Section 5.1 sampling checkpoints", checkpoints.sampling_checkpoints
        ),
        Experiment(
            "T5", "Section 5.2 retrying checkpoints", checkpoints.retrying_checkpoints
        ),
        Experiment(
            "C1",
            "Continuum closed-form overlays (all four worked cases)",
            figures.continuum_series,
        ),
        Experiment(
            "S5.1",
            "Section 5.1 sampling sweep (exponential/adaptive)",
            # bind config to its keyword: the generator's first two
            # positionals are load/utility names, not the config
            lambda config=None: figures.sampling_series(config=config),
            target=figures.sampling_series,
        ),
        Experiment(
            "S5.2",
            "Section 5.2 retrying sweep (algebraic/adaptive)",
            lambda config=None: figures.retrying_series(config=config),
            target=figures.retrying_series,
        ),
        Experiment(
            "S1",
            "Ensemble simulation validation (CRN-paired B/R vs analytic)",
            simulation.ensemble_validation,
        ),
        Experiment(
            "TR1",
            "Poisson trace replay vs analytic delta (streaming sweep)",
            traces.poisson_replay,
        ),
        Experiment(
            "TR2",
            "Diurnal (sinusoidal-rate) workload replay: gap vs capacity",
            traces.diurnal_sweep,
        ),
        Experiment(
            "TR3",
            "Bursty (Markov on/off) workload replay: gap vs capacity",
            traces.bursty_sweep,
        ),
    ]
}


def get(exp_id: str) -> Experiment:
    """Look up an experiment, with a helpful error on typos."""
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {exp_id!r}; known ids: {known}") from None
