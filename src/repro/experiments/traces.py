"""Trace-replay experiments: the paper's verdict on non-Poisson loads.

``TR1`` closes the loop on the streaming replay path itself: a seeded
Poisson workload replayed through the CRN-paired estimators must
recover the analytic ``delta(C)`` of the matching
:class:`~repro.models.VariableLoadModel`.  ``TR2``/``TR3`` then ask the
question the paper could not: what does the best-effort-vs-reservation
gap look like under a diurnal (sinusoidal-rate) and a bursty
(Markov-modulated on/off) load at the same mean rate?  Each sweep
sweeps capacity over one shared occupancy (the occupancy is
capacity-independent, so the trace is generated and swept exactly
once per experiment).

All results are flat dicts of equal-length arrays (scalars as length-1
arrays), the shape the PR-2 result cache serialises natively.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.experiments.params import DEFAULT_CONFIG, PaperConfig
from repro.loads import PoissonLoad
from repro.models import VariableLoadModel
from repro.traces.replay import sweep_occupancy
from repro.traces.workloads import default_workload

#: Capacity grid for the workload sweeps, as multiples of the mean
#: census: from mildly under- to comfortably over-provisioned.
CAPACITY_FACTORS = (1.0, 1.1, 1.25, 1.5)

#: Replay windows for the TR experiments (each window is one synthetic
#: replication in the CRN pairing).
TR_WINDOWS = 16


def _sweep(workload, config: PaperConfig) -> Dict[str, np.ndarray]:
    """Generate once, sweep the occupancy once, evaluate per capacity."""
    utility = config.utility("adaptive")
    horizon = float(config.sim_horizon)
    warmup = float(config.sim_warmup)
    stream = workload.stream(horizon, seed=config.sim_seed)
    occupancy = sweep_occupancy(stream, windows=TR_WINDOWS, warmup=warmup)
    mean = workload.mean_census
    capacities = [mean * f for f in CAPACITY_FACTORS]
    rows = [occupancy.evaluate(utility, c) for c in capacities]
    return {
        "capacity": np.asarray(capacities),
        "best_effort": np.asarray([r.summary()["best_effort"] for r in rows]),
        "reservation": np.asarray([r.summary()["reservation"] for r in rows]),
        "gap": np.asarray([r.summary()["gap"] for r in rows]),
        "gap_ci": np.asarray([r.summary()["gap_ci"] for r in rows]),
        "threshold": np.asarray([r.threshold for r in rows]),
        "mean_census": np.asarray([occupancy.mean_census()]),
        "flows": np.asarray([float(occupancy.flows)]),
        "windows": np.asarray([float(TR_WINDOWS)]),
    }


def poisson_replay(config: Optional[PaperConfig] = None) -> Dict[str, np.ndarray]:
    """TR1: Poisson-workload replay vs the analytic delta.

    One seeded Poisson trace at the ``sim_*`` parameters, replayed at
    ``sim_capacity``; the analytic ``B``/``R``/``delta`` of the same
    load/utility ride along so the result is self-checking.
    """
    if config is None:
        config = DEFAULT_CONFIG
    utility = config.utility("adaptive")
    rate = float(config.sim_kbar)
    capacity = float(config.sim_capacity)
    workload = default_workload("poisson", rate)
    stream = workload.stream(float(config.sim_horizon), seed=config.sim_seed)
    occupancy = sweep_occupancy(
        stream, windows=TR_WINDOWS, warmup=float(config.sim_warmup)
    )
    result = occupancy.evaluate(utility, capacity)
    summary = result.summary()
    model = VariableLoadModel(PoissonLoad(rate), utility)
    analytic_be = float(model.best_effort(capacity))
    analytic_res = float(model.reservation(capacity))
    return {
        "capacity": np.asarray([capacity]),
        "flows": np.asarray([float(result.flows)]),
        "windows": np.asarray([float(result.windows)]),
        "replay_be": np.asarray([summary["best_effort"]]),
        "replay_be_ci": np.asarray([summary["best_effort_ci"]]),
        "replay_res": np.asarray([summary["reservation"]]),
        "replay_res_ci": np.asarray([summary["reservation_ci"]]),
        "replay_gap": np.asarray([summary["gap"]]),
        "replay_gap_ci": np.asarray([summary["gap_ci"]]),
        "analytic_be": np.asarray([analytic_be]),
        "analytic_res": np.asarray([analytic_res]),
        "analytic_gap": np.asarray([analytic_res - analytic_be]),
        "mean_census": np.asarray([result.mean_census]),
    }


def diurnal_sweep(config: Optional[PaperConfig] = None) -> Dict[str, np.ndarray]:
    """TR2: gap sweep under the sinusoidal-rate diurnal workload."""
    if config is None:
        config = DEFAULT_CONFIG
    return _sweep(default_workload("diurnal", float(config.sim_kbar)), config)


def bursty_sweep(config: Optional[PaperConfig] = None) -> Dict[str, np.ndarray]:
    """TR3: gap sweep under the Markov-modulated on/off workload."""
    if config is None:
        config = DEFAULT_CONFIG
    return _sweep(default_workload("bursty", float(config.sim_kbar)), config)
