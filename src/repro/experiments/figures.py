"""Generators for every figure in the paper.

Each function returns the numeric series behind one figure — exactly
the data a plotting script would need to redraw it:

- :func:`figure1` — the adaptive utility curve (Eq. 2).
- :func:`figure2` / :func:`figure3` / :func:`figure4` — the six-panel
  grids for Poisson / exponential / algebraic loads: panels (a,d) are
  ``B(C)`` and ``R(C)`` for rigid and adaptive apps, (b,e) the
  bandwidth gap ``Delta(C)``, and (c,f) the equalizing price ratio
  ``gamma(p)``.
- :func:`sampling_series` / :func:`retrying_series` — the Section 5
  extension sweeps quoted in the text.

All output is plain ``{name: ndarray}`` dicts, JSON-serialisable after
``.tolist()`` — the benchmark harness prints them as the paper's
rows/series.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.experiments.params import DEFAULT_CONFIG, PaperConfig
from repro.models import (
    RetryingModel,
    SamplingModel,
    VariableLoadModel,
    WelfareModel,
)
from repro.utility import AdaptiveUtility


def figure1(config: Optional[PaperConfig] = None, *, points: int = 200) -> dict:
    """Figure 1: the adaptive performance curve ``pi(b)`` (Eq. 2)."""
    cfg = config or DEFAULT_CONFIG
    utility = AdaptiveUtility(cfg.kappa)
    bandwidth = np.linspace(0.0, 10.0, points)
    return {
        "bandwidth": bandwidth,
        "utility": np.asarray(utility(bandwidth)),
        "kappa": np.array([cfg.kappa]),
    }


def _figure_panels(load_name: str, config: Optional[PaperConfig]) -> dict:
    """The six-panel data grid for one load distribution."""
    cfg = config or DEFAULT_CONFIG
    load = cfg.load(load_name)
    out: dict = {"capacity": np.asarray(cfg.capacities, dtype=float)}
    for util_name, tag in (("rigid", "rigid"), ("adaptive", "adaptive")):
        model = VariableLoadModel(load, cfg.utility(util_name))
        sweep = model.sweep(cfg.capacities)
        out[f"best_effort_{tag}"] = sweep["best_effort"]
        out[f"reservation_{tag}"] = sweep["reservation"]
        out[f"performance_gap_{tag}"] = sweep["performance_gap"]
        out[f"bandwidth_gap_{tag}"] = sweep["bandwidth_gap"]
        welfare = WelfareModel(model)
        curve = welfare.ratio_curve(cfg.prices)
        out[f"gamma_price_{tag}"] = curve["price"]
        out[f"gamma_{tag}"] = curve["gamma"]
    return out


def figure2(config: Optional[PaperConfig] = None) -> dict:
    """Figure 2: Poisson load — utility, bandwidth gap, price ratio."""
    return _figure_panels("poisson", config)


def figure3(config: Optional[PaperConfig] = None) -> dict:
    """Figure 3: exponential load — utility, bandwidth gap, price ratio."""
    return _figure_panels("exponential", config)


def figure4(config: Optional[PaperConfig] = None) -> dict:
    """Figure 4: algebraic load — utility, bandwidth gap, price ratio."""
    return _figure_panels("algebraic", config)


def continuum_series(config: Optional[PaperConfig] = None, *, points: int = 30) -> dict:
    """Analytic continuum overlays: B, R and Delta per worked case.

    Capacities are in mean-load units (k_bar = 1 for the continuum
    model); multiply by k_bar to overlay on the discrete figures.
    """
    from repro.continuum import (
        AdaptiveAlgebraicContinuum,
        AdaptiveExponentialContinuum,
        RigidAlgebraicContinuum,
        RigidExponentialContinuum,
    )

    cfg = config or DEFAULT_CONFIG
    caps = np.geomspace(1.05, 10.0, points)
    cases = {
        "rigid_exp": RigidExponentialContinuum(1.0),
        "adaptive_exp": AdaptiveExponentialContinuum(cfg.ramp_a, 1.0),
        "rigid_alg": RigidAlgebraicContinuum(cfg.z),
        "adaptive_alg": AdaptiveAlgebraicContinuum(cfg.z, cfg.ramp_a),
    }
    out: dict = {"capacity_over_kbar": caps}
    for tag, model in cases.items():
        for name in ("best_effort", "reservation", "bandwidth_gap"):
            batch = getattr(model, f"{name}_batch", None)
            if batch is not None:
                series = np.asarray(batch(caps), dtype=float)
            else:
                series = np.array(
                    [getattr(model, name)(float(c)) for c in caps]
                )
            out[f"{name}_{tag}"] = series
    return out


def sampling_series(
    load_name: str = "exponential",
    util_name: str = "adaptive",
    config: Optional[PaperConfig] = None,
) -> dict:
    """Section 5.1 sweep: basic model vs worst-of-S sampling."""
    cfg = config or DEFAULT_CONFIG
    load = cfg.load(load_name)
    utility = cfg.utility(util_name)
    base = VariableLoadModel(load, utility)
    sampled = SamplingModel(load, utility, cfg.samples)
    base_sweep = base.sweep(cfg.capacities)
    sample_sweep = sampled.sweep(cfg.capacities)
    return {
        "capacity": base_sweep["capacity"],
        "samples": np.array([cfg.samples]),
        "performance_gap_basic": base_sweep["performance_gap"],
        "performance_gap_sampling": sample_sweep["performance_gap"],
        "bandwidth_gap_basic": base_sweep["bandwidth_gap"],
        "bandwidth_gap_sampling": sample_sweep["bandwidth_gap"],
    }


def retrying_series(
    load_name: str = "algebraic",
    util_name: str = "adaptive",
    config: Optional[PaperConfig] = None,
) -> dict:
    """Section 5.2 sweep: basic model vs retrying with penalty alpha."""
    cfg = config or DEFAULT_CONFIG
    load = cfg.load(load_name)
    utility = cfg.utility(util_name)
    base = VariableLoadModel(load, utility)
    retry = RetryingModel(load, utility, alpha=cfg.alpha)
    # the retry fixed point diverges under heavy blocking (offered load
    # grows without bound); the paper's Section 5.2 numbers live in the
    # provisioned regime, so the sweep starts at 2 k_bar
    caps = [c for c in cfg.capacities if c >= 2.0 * cfg.kbar]
    if len(caps) < 4:
        caps = list(np.linspace(2.0 * cfg.kbar, 8.0 * cfg.kbar, 7))
    base_sweep = base.sweep(caps)
    retry_sweep = retry.sweep(caps)
    return {
        "capacity": base_sweep["capacity"],
        "alpha": np.array([cfg.alpha]),
        "performance_gap_basic": base_sweep["performance_gap"],
        "performance_gap_retrying": retry_sweep["performance_gap"],
        "bandwidth_gap_basic": base_sweep["bandwidth_gap"],
        "bandwidth_gap_retrying": retry_sweep["bandwidth_gap"],
        "retries_per_flow": np.array(
            [retry.retries_per_flow(float(c)) for c in base_sweep["capacity"]]
        ),
    }
