"""Experiment harness: regenerate every table and figure in the paper.

- :mod:`repro.experiments.params` — the paper's constants and grids.
- :mod:`repro.experiments.figures` — series generators for Figures 1-4
  and the Section 5 sweeps.
- :mod:`repro.experiments.checkpoints` — every number quoted in the
  paper's prose, recomputed and compared.
- :mod:`repro.experiments.registry` — id -> generator lookup.
- :mod:`repro.experiments.report` — text/JSON/markdown rendering.
"""

from repro.experiments.checkpoints import Checkpoint, all_checkpoints
from repro.experiments.figures import (
    continuum_series,
    figure1,
    figure2,
    figure3,
    figure4,
    retrying_series,
    sampling_series,
)
from repro.experiments.params import DEFAULT_CONFIG, FAST_CONFIG, PaperConfig
from repro.experiments.registry import EXPERIMENTS, Experiment, get

__all__ = [
    "DEFAULT_CONFIG",
    "EXPERIMENTS",
    "FAST_CONFIG",
    "Checkpoint",
    "Experiment",
    "PaperConfig",
    "all_checkpoints",
    "continuum_series",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "get",
    "retrying_series",
    "sampling_series",
]
