"""Per-experiment wall-time and metric capture (``repro-experiments profile``).

Runs registered experiments under the observability layer
(:mod:`repro.obs`), recording for each one its wall time, a span in
the shared trace, and the *delta* of every counter — so a profile of
twelve experiments tells you which one spent 40k solver iterations,
not just that the process did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.experiments import registry
from repro.experiments.params import PaperConfig


@dataclass(frozen=True)
class ProfileEntry:
    """Timing + metric record of one experiment run."""

    exp_id: str
    description: str
    seconds: float
    ok: bool
    error: Optional[str] = None
    counters: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (the machine-readable report row)."""
        out: Dict[str, object] = {
            "id": self.exp_id,
            "description": self.description,
            "seconds": self.seconds,
            "ok": self.ok,
            "counters": dict(self.counters),
        }
        if self.error is not None:
            out["error"] = self.error
        return out


def _counter_values() -> Dict[str, float]:
    return dict(obs.snapshot()["counters"])


def run_profiled(
    exp: registry.Experiment, config: Optional[PaperConfig]
) -> Tuple[object, ProfileEntry]:
    """Run one experiment inside a span, capturing time + counter deltas.

    Assumes :mod:`repro.obs` is enabled (callers that only want the
    timing still get it when disabled; counter deltas are then empty).
    Experiment exceptions are captured in the entry, not raised — a
    profile sweep should report a broken experiment, not die on it.
    """
    before = _counter_values()
    result: object = None
    error: Optional[str] = None
    start = time.perf_counter()
    try:
        with obs.span("experiment", id=exp.exp_id):
            result = exp.run(config)
    except Exception as exc:  # profile must survive one bad experiment
        error = f"{type(exc).__name__}: {exc}"
    seconds = time.perf_counter() - start
    after = _counter_values()
    deltas = {
        name: value - before.get(name, 0.0)
        for name, value in after.items()
        if value != before.get(name, 0.0)
    }
    entry = ProfileEntry(
        exp_id=exp.exp_id,
        description=exp.description,
        seconds=seconds,
        ok=error is None,
        error=error,
        counters=deltas,
    )
    return result, entry


def profile_all(
    config: Optional[PaperConfig], *, only: Optional[Sequence[str]] = None
) -> List[ProfileEntry]:
    """Time every registered experiment (or the ``only`` subset)."""
    if only:
        experiments = [registry.get(exp_id) for exp_id in only]
    else:
        experiments = list(registry.EXPERIMENTS.values())
    entries: List[ProfileEntry] = []
    for exp in experiments:
        _, entry = run_profiled(exp, config)
        entries.append(entry)
    return entries


def report_dict(
    entries: Sequence[ProfileEntry], *, config_name: str
) -> Dict[str, object]:
    """The machine-readable profile report."""
    return {
        "schema": "repro.obs.profile/v1",
        "config": config_name,
        "total_seconds": sum(e.seconds for e in entries),
        "experiments": [e.to_dict() for e in entries],
    }


def render_entries(entries: Sequence[ProfileEntry]) -> str:
    """Aligned text table of per-experiment timings."""
    lines = [f"{'id':6s} {'seconds':>9s}  {'status':6s} description"]
    for e in entries:
        status = "ok" if e.ok else "FAILED"
        lines.append(
            f"{e.exp_id:6s} {e.seconds:9.3f}  {status:6s} {e.description}"
        )
    lines.append(
        f"-- {sum(1 for e in entries if e.ok)}/{len(entries)} ok, "
        f"total {sum(e.seconds for e in entries):.3f} s"
    )
    return "\n".join(lines)
