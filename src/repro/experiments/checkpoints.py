"""Paper-vs-measured checkpoints: every number quoted in the text.

The paper quotes specific values in prose (Section 3.3's "delta is
approximately .27 and .07 at capacities 2k and 4k", Section 4's
"between 1.1 and 1.2", Section 5's sampling and retrying contrasts,
the continuum limits e and e-1).  Each checkpoint here recomputes one
of those from our models and reports it next to the paper's claim.
``EXPERIMENTS.md`` is generated from these rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.continuum import (
    AdaptiveAlgebraicContinuum,
    AdaptiveExponentialContinuum,
    RigidAlgebraicContinuum,
    RigidExponentialContinuum,
    adaptive_algebraic_ratio_limit,
    retrying_rigid_ratio,
    rigid_algebraic_ratio,
    sampling_rigid_ratio,
)
from repro.experiments.params import DEFAULT_CONFIG, PaperConfig
from repro.models import (
    RetryingModel,
    SamplingModel,
    VariableLoadModel,
    WelfareModel,
)


@dataclass(frozen=True)
class Checkpoint:
    """One paper-quoted value next to our measurement."""

    exp_id: str
    description: str
    paper_value: str
    measured: float
    matches: bool

    def row(self) -> str:
        """One formatted report line."""
        flag = "ok" if self.matches else "DIFFERS"
        return (
            f"[{self.exp_id}] {self.description}: paper={self.paper_value} "
            f"measured={self.measured:.6g} [{flag}]"
        )


def section3_checkpoints(config: Optional[PaperConfig] = None) -> List[Checkpoint]:
    """Section 3.3 prose numbers (discrete variable-load model)."""
    cfg = config or DEFAULT_CONFIG
    rows: List[Checkpoint] = []
    kbar = cfg.kbar

    # Poisson, rigid: delta peaks near 0.8, Delta peaks near 80
    m = VariableLoadModel(cfg.load("poisson"), cfg.utility("rigid"))
    caps = [40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]
    delta_peak = max(m.performance_gap(c) for c in caps)
    rows.append(
        Checkpoint(
            "T1.1",
            "Poisson/rigid: peak performance gap",
            "~0.8",
            delta_peak,
            0.7 <= delta_peak <= 0.9,
        )
    )
    # the bandwidth-gap peak sits at small C, where R(C) ~ C/k is
    # linear but B(C) only wakes up near C = k (see Figure 2b)
    gap_peak = max(m.bandwidth_gap(c) for c in (5.0, 10.0, 20.0, 30.0, *caps))
    rows.append(
        Checkpoint(
            "T1.2",
            "Poisson/rigid: peak bandwidth gap",
            "~80",
            gap_peak,
            60.0 <= gap_peak <= 100.0,
        )
    )
    tiny = m.performance_gap(2.0 * kbar)
    rows.append(
        Checkpoint(
            "T1.3",
            "Poisson/rigid: gap at C=2k (superexponential vanishing)",
            "<1e-15",
            tiny,
            tiny < 1e-15,
        )
    )

    # exponential, rigid: delta ~ .27 at 2k, ~.07 at 4k
    m = VariableLoadModel(cfg.load("exponential"), cfg.utility("rigid"))
    d2 = m.performance_gap(2.0 * kbar)
    d4 = m.performance_gap(4.0 * kbar)
    rows.append(
        Checkpoint(
            "T1.4", "exponential/rigid: delta(2k)", "~0.27", d2, abs(d2 - 0.27) < 0.03
        )
    )
    rows.append(
        Checkpoint(
            "T1.5", "exponential/rigid: delta(4k)", "~0.07", d4, abs(d4 - 0.07) < 0.02
        )
    )
    increasing = all(
        m.bandwidth_gap(c2) > m.bandwidth_gap(c1)
        for c1, c2 in [(100.0, 200.0), (200.0, 400.0), (400.0, 800.0)]
    )
    rows.append(
        Checkpoint(
            "T1.6",
            "exponential/rigid: Delta(C) monotone increasing",
            "increasing",
            float(increasing),
            increasing,
        )
    )

    # exponential, adaptive: delta < .01 at 2k, < .001 at 4k; Delta peak ~ 9
    m = VariableLoadModel(cfg.load("exponential"), cfg.utility("adaptive"))
    d2 = m.performance_gap(2.0 * kbar)
    d4 = m.performance_gap(4.0 * kbar)
    rows.append(
        Checkpoint(
            "T1.7", "exponential/adaptive: delta(2k)", "<0.01", d2, d2 < 0.01
        )
    )
    rows.append(
        Checkpoint(
            "T1.8", "exponential/adaptive: delta(4k)", "<0.001", d4, d4 < 0.001
        )
    )
    peak = max(m.bandwidth_gap(c) for c in (30.0, 40.0, 50.0, 60.0, 80.0))
    rows.append(
        Checkpoint(
            "T1.9",
            "exponential/adaptive: peak bandwidth gap",
            "~9",
            peak,
            7.0 <= peak <= 11.0,
        )
    )

    # algebraic, rigid: gap ~.20 at 2k / ~.10 at 4k; Delta slope ~1
    m = VariableLoadModel(cfg.load("algebraic"), cfg.utility("rigid"))
    d2 = m.performance_gap(2.0 * kbar)
    d4 = m.performance_gap(4.0 * kbar)
    rows.append(
        Checkpoint(
            "T1.10",
            "algebraic/rigid: R-B gap at 2k (paper ~.20)",
            "~0.20",
            d2,
            0.1 <= d2 <= 0.3,
        )
    )
    rows.append(
        Checkpoint(
            "T1.11",
            "algebraic/rigid: R-B gap at 4k (paper ~.10)",
            "~0.10",
            d4,
            0.05 <= d4 <= 0.2,
        )
    )
    slope_rigid = (m.bandwidth_gap(8.0 * kbar) - m.bandwidth_gap(4.0 * kbar)) / (
        4.0 * kbar
    )
    rows.append(
        Checkpoint(
            "T1.12",
            "algebraic/rigid: Delta slope (linear growth, ~1 at z=3)",
            "~1",
            slope_rigid,
            0.7 <= slope_rigid <= 1.3,
        )
    )

    # algebraic, adaptive: still linear but slope reduced > 20x
    m = VariableLoadModel(cfg.load("algebraic"), cfg.utility("adaptive"))
    slope_adaptive = (m.bandwidth_gap(8.0 * kbar) - m.bandwidth_gap(4.0 * kbar)) / (
        4.0 * kbar
    )
    reduction = slope_rigid / max(slope_adaptive, 1e-12)
    rows.append(
        Checkpoint(
            "T1.13",
            "algebraic: rigid/adaptive Delta slope ratio (paper: >20x)",
            ">20",
            reduction,
            reduction > 20.0,
        )
    )
    return rows


def continuum_checkpoints(config: Optional[PaperConfig] = None) -> List[Checkpoint]:
    """Section 3.2/3.3 continuum closed-form results."""
    cfg = config or DEFAULT_CONFIG
    rows: List[Checkpoint] = []

    # rigid-exponential: Delta grows like ln(beta C)/beta
    re = RigidExponentialContinuum(beta=1.0)
    big = 1e5
    measured = re.bandwidth_gap(big) / math.log(big)
    rows.append(
        Checkpoint(
            "T2.1",
            "rigid/exp continuum: Delta(C)/ln(C) -> 1/beta",
            "1.0",
            measured,
            abs(measured - 1.0) < 0.15,
        )
    )

    # adaptive-exponential: Delta -> -ln(1-a)/beta
    ae = AdaptiveExponentialContinuum(a=cfg.ramp_a, beta=1.0)
    limit = ae.bandwidth_gap_limit()
    # C = 15 mean loads: the correction term ~ e^{-C} is ~3e-7 while the
    # raw gaps are still far above the numerical floor
    measured = ae.bandwidth_gap(15.0)
    rows.append(
        Checkpoint(
            "T2.2",
            f"adaptive(a={cfg.ramp_a})/exp continuum: Delta -> -ln(1-a)",
            f"{limit:.6g}",
            measured,
            abs(measured - limit) < 1e-3,
        )
    )

    # rigid-algebraic: Delta(C) = C((z-1)^{1/(z-2)} - 1), exactly linear
    ra = RigidAlgebraicContinuum(cfg.z)
    ratio = ra.gap_ratio()
    rows.append(
        Checkpoint(
            "T2.3",
            f"rigid/alg continuum: (C+Delta)/C at z={cfg.z}",
            f"{(cfg.z - 1.0) ** (1.0 / (cfg.z - 2.0)):.6g}",
            ratio,
            abs(ratio - (cfg.z - 1.0) ** (1.0 / (cfg.z - 2.0))) < 1e-12,
        )
    )
    worst = rigid_algebraic_ratio(2.0005)
    rows.append(
        Checkpoint(
            "T2.4",
            "rigid/alg continuum: z->2+ ratio -> e (Delta/C -> e-1)",
            f"{math.e:.6g}",
            worst,
            abs(worst - math.e) < 0.01,
        )
    )

    # adaptive-algebraic: z->2+ ratio -> a^{-a/(1-a)} in [1, e)
    aa_limit = adaptive_algebraic_ratio_limit(cfg.ramp_a)
    aa = AdaptiveAlgebraicContinuum(2.0005, cfg.ramp_a)
    rows.append(
        Checkpoint(
            "T2.5",
            f"adaptive(a={cfg.ramp_a})/alg continuum: z->2+ ratio -> a^(-a/(1-a))",
            f"{aa_limit:.6g}",
            aa.gap_ratio(),
            abs(aa.gap_ratio() - aa_limit) < 0.01,
        )
    )
    return rows


def welfare_checkpoints(config: Optional[PaperConfig] = None) -> List[Checkpoint]:
    """Section 4 prose numbers (welfare / equalizing price ratio)."""
    cfg = config or DEFAULT_CONFIG
    rows: List[Checkpoint] = []

    # Poisson rigid: gamma in [1.1, 1.2] over most of the price range
    w = WelfareModel(VariableLoadModel(cfg.load("poisson"), cfg.utility("rigid")))
    gammas = [w.equalizing_ratio(p) for p in (0.2, 0.1, 0.05, 0.02)]
    in_band = all(1.05 <= g <= 1.25 for g in gammas)
    rows.append(
        Checkpoint(
            "T3.1",
            "Poisson/rigid: gamma(p) over mid prices",
            "1.1-1.2",
            sum(gammas) / len(gammas),
            in_band,
        )
    )

    # Poisson adaptive: gamma effectively 1 except at high prices
    w = WelfareModel(VariableLoadModel(cfg.load("poisson"), cfg.utility("adaptive")))
    g = w.equalizing_ratio(0.02)
    rows.append(
        Checkpoint(
            "T3.2", "Poisson/adaptive: gamma(0.02)", "~1.0", g, g < 1.01
        )
    )

    # algebraic rigid: gamma -> (z-1)^{1/(z-2)} = 2 at z=3
    w = WelfareModel(VariableLoadModel(cfg.load("algebraic"), cfg.utility("rigid")))
    g = w.equalizing_ratio(0.003)
    rows.append(
        Checkpoint(
            "T3.3",
            "algebraic/rigid: gamma(p->0) -> (z-1)^{1/(z-2)} = 2",
            "~2",
            g,
            1.8 <= g <= 2.3,
        )
    )

    # algebraic adaptive: gamma ~ 1.02 as p -> 0 (discrete model)
    w = WelfareModel(VariableLoadModel(cfg.load("algebraic"), cfg.utility("adaptive")))
    g = w.equalizing_ratio(0.003)
    rows.append(
        Checkpoint(
            "T3.4",
            "algebraic/adaptive: gamma(p->0) (paper ~1.02)",
            "~1.02",
            g,
            1.005 <= g <= 1.08,
        )
    )

    # continuum gamma -> e bound as z -> 2+
    g = RigidAlgebraicContinuum(2.0005).equalizing_ratio()
    rows.append(
        Checkpoint(
            "T3.5",
            "continuum: gamma bound as z->2+ -> e",
            f"{math.e:.6g}",
            g,
            abs(g - math.e) < 0.01,
        )
    )
    return rows


def sampling_checkpoints(config: Optional[PaperConfig] = None) -> List[Checkpoint]:
    """Section 5.1 prose numbers (sampling extension)."""
    cfg = config or DEFAULT_CONFIG
    rows: List[Checkpoint] = []
    kbar = cfg.kbar

    load = cfg.load("exponential")
    utility = cfg.utility("adaptive")
    base = VariableLoadModel(load, utility)
    sampled = SamplingModel(load, utility, cfg.samples)

    d_sampled = sampled.performance_gap(0.5 * kbar)
    rows.append(
        Checkpoint(
            "T4.1",
            f"exp/adaptive S={cfg.samples}: delta(0.5k) (paper ~0.21)",
            "~0.21",
            d_sampled,
            0.1 <= d_sampled <= 0.3,
        )
    )
    rows.append(
        Checkpoint(
            "T4.2",
            "exp/adaptive basic: delta(2k) for contrast",
            "<0.01",
            base.performance_gap(2.0 * kbar),
            base.performance_gap(2.0 * kbar) < 0.01,
        )
    )
    peak_c, peak_v = max(
        ((c, sampled.bandwidth_gap(c)) for c in (100.0, 130.0, 150.0, 180.0, 220.0)),
        key=lambda cv: cv[1],
    )
    rows.append(
        Checkpoint(
            "T4.3",
            "exp/adaptive sampling: Delta peak ~2k at C~1.5k",
            "~200 at C~150",
            peak_v,
            120.0 <= peak_v <= 280.0 and 100.0 <= peak_c <= 220.0,
        )
    )

    # asymptotic ratio (S(z-1))^{1/(z-2)} and its divergence as z->2+
    pred = sampling_rigid_ratio(cfg.z, 3)
    rows.append(
        Checkpoint(
            "T4.4",
            "continuum sampling rigid ratio (S=3, z=3) = (S(z-1))^{1/(z-2)}",
            f"{3 * (cfg.z - 1.0):.6g}",
            pred,
            abs(pred - 6.0) < 1e-12,
        )
    )
    divergent = sampling_rigid_ratio(2.1, 3) > 100.0
    rows.append(
        Checkpoint(
            "T4.5",
            "sampling ratio diverges as z->2+ (S>1)",
            "divergent",
            sampling_rigid_ratio(2.1, 3),
            divergent,
        )
    )
    return rows


def retrying_checkpoints(config: Optional[PaperConfig] = None) -> List[Checkpoint]:
    """Section 5.2 prose numbers (retrying extension)."""
    cfg = config or DEFAULT_CONFIG
    rows: List[Checkpoint] = []
    kbar = cfg.kbar

    load = cfg.load("algebraic")
    utility = cfg.utility("adaptive")
    base = VariableLoadModel(load, utility)
    retry = RetryingModel(load, utility, alpha=cfg.alpha)

    d_base = base.performance_gap(4.0 * kbar)
    d_retry = retry.performance_gap(4.0 * kbar)
    amplification = d_retry / max(d_base, 1e-12)
    rows.append(
        Checkpoint(
            "T5.1",
            "alg/adaptive: retry/basic delta ratio at 4k (paper .027/.0025 ~ 10.8)",
            "~10.8",
            amplification,
            5.0 <= amplification <= 20.0,
        )
    )

    # retries matter more at large C (the paper's "more apparent in C >> k")
    rel_2k = retry.performance_gap(2.0 * kbar) / max(
        base.performance_gap(2.0 * kbar), 1e-12
    )
    rows.append(
        Checkpoint(
            "T5.2",
            "alg/adaptive: retry amplification grows with C",
            "grows",
            amplification - rel_2k,
            amplification > rel_2k,
        )
    )

    # Poisson/exponential: retrying has minimal effect
    for i, name in enumerate(("poisson", "exponential")):
        b = VariableLoadModel(cfg.load(name), utility)
        r = RetryingModel(cfg.load(name), utility, alpha=cfg.alpha)
        diff = abs(r.performance_gap(4.0 * kbar) - b.performance_gap(4.0 * kbar))
        rows.append(
            Checkpoint(
                f"T5.{3 + i}",
                f"{name}/adaptive: retrying changes delta(4k) only minimally",
                "<0.01",
                diff,
                diff < 0.01,
            )
        )

    # asymptotic ratio ((z-1)/alpha)^{1/(z-2)} unbounded as z -> 2+
    pred = retrying_rigid_ratio(cfg.z, cfg.alpha)
    rows.append(
        Checkpoint(
            "T5.5",
            f"continuum retrying rigid ratio (z={cfg.z}, alpha={cfg.alpha})",
            f"{(cfg.z - 1.0) / cfg.alpha:.6g}",
            pred,
            abs(pred - (cfg.z - 1.0) / cfg.alpha) < 1e-12,
        )
    )
    divergent = retrying_rigid_ratio(2.1, cfg.alpha) > 1e10
    rows.append(
        Checkpoint(
            "T5.6",
            "retrying ratio diverges as z->2+",
            "divergent",
            min(retrying_rigid_ratio(2.1, cfg.alpha), 1e300),
            divergent,
        )
    )
    return rows


def all_checkpoints(config: Optional[PaperConfig] = None) -> List[Checkpoint]:
    """Every checkpoint, in experiment-id order."""
    cfg = config or DEFAULT_CONFIG
    rows: List[Checkpoint] = []
    rows.extend(section3_checkpoints(cfg))
    rows.extend(continuum_checkpoints(cfg))
    rows.extend(welfare_checkpoints(cfg))
    rows.extend(sampling_checkpoints(cfg))
    rows.extend(retrying_checkpoints(cfg))
    return rows
