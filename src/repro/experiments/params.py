"""Standard parameters for reproducing the paper's figures.

One frozen configuration object holds every constant the paper pins
down (k_bar = 100, kappa = 0.62086, z = 3, alpha = 0.1) plus the sweep
grids the figures are evaluated on.  The benchmark harness and the CLI
both build their runs from here so the "paper run" is defined in
exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.loads import AlgebraicLoad, GeometricLoad, PoissonLoad
from repro.loads.base import LoadDistribution
from repro.utility import KAPPA_PAPER, AdaptiveUtility, RigidUtility
from repro.utility.base import UtilityFunction


def _default_capacities() -> Tuple[float, ...]:
    """Figure x-axis: 25 points spanning C in [10, 1000] (k_bar = 100)."""
    return tuple(np.unique(np.concatenate([
        np.linspace(10.0, 200.0, 14),
        np.geomspace(200.0, 1000.0, 12),
    ]).round(0)))


def _default_prices() -> Tuple[float, ...]:
    """Price axis for the gamma(p) panels: log grid over [1e-3, 0.3]."""
    return tuple(np.geomspace(1e-3, 0.3, 16))


@dataclass(frozen=True)
class PaperConfig:
    """All constants of the paper's numerical experiments.

    The ``sim_*`` block parameterizes the dynamic (simulation)
    validation experiments: a lighter mean census than the analytic
    ``kbar`` keeps Monte Carlo runs fast, and since the whole config is
    hashed into the result-cache address, changing replications or the
    CI target from the CLI re-addresses the cache automatically.
    """

    kbar: float = 100.0
    kappa: float = KAPPA_PAPER
    z: float = 3.0
    alpha: float = 0.1
    samples: int = 10
    ramp_a: float = 0.5
    capacities: Tuple[float, ...] = field(default_factory=_default_capacities)
    prices: Tuple[float, ...] = field(default_factory=_default_prices)
    sim_kbar: float = 50.0
    sim_capacity: float = 55.0
    sim_replications: int = 32
    sim_horizon: float = 400.0
    sim_warmup: float = 50.0
    sim_seed: int = 2025
    sim_ci_halfwidth: Optional[float] = None

    def load(self, name: str) -> LoadDistribution:
        """The paper's load distribution by name (mean ``kbar``)."""
        if name == "poisson":
            return PoissonLoad(self.kbar)
        if name == "exponential":
            return GeometricLoad.from_mean(self.kbar)
        if name == "algebraic":
            return AlgebraicLoad.from_mean(self.z, self.kbar)
        raise ValueError(
            f"unknown load {name!r}; expected poisson/exponential/algebraic"
        )

    def utility(self, name: str) -> UtilityFunction:
        """The paper's utility function by name."""
        if name == "rigid":
            return RigidUtility(1.0)
        if name == "adaptive":
            return AdaptiveUtility(self.kappa)
        raise ValueError(f"unknown utility {name!r}; expected rigid/adaptive")


#: The configuration every benchmark and report uses by default.
DEFAULT_CONFIG = PaperConfig()

#: A smaller configuration for quick smoke runs and CI.
FAST_CONFIG = PaperConfig(
    capacities=tuple(np.linspace(20.0, 500.0, 8).round(0)),
    prices=tuple(np.geomspace(3e-3, 0.2, 6)),
)
