"""Simulation experiments: ensemble validation of the static model.

The analytic experiments evaluate the paper's formulas; this module
closes the loop dynamically.  ``S1`` runs a CRN-paired ensemble of
birth-death trajectories at the ``sim_*`` configuration and reports the
simulated ``B(C)``, ``R(C)`` and gap with Student-t confidence
half-widths next to the analytic values — so a result is a statistical
statement ("the analytic delta lies inside the simulated CI"), not a
single-seed point estimate.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.experiments.params import DEFAULT_CONFIG, PaperConfig
from repro.loads import PoissonLoad
from repro.models import VariableLoadModel
from repro.simulation import (
    BirthDeathProcess,
    EnsembleSimulator,
    Link,
    RunningStat,
    ThresholdAdmission,
    paired_gap,
)


def ensemble_validation(config: Optional[PaperConfig] = None) -> Dict[str, float]:
    """S1: CRN-paired ensemble estimates vs the analytic B/R/delta.

    Runs ``sim_replications`` paired best-effort/reservation
    replications of the exact birth-death dynamics for the Poisson
    census (mean ``sim_kbar``) at capacity ``sim_capacity``, scoring
    both with the adaptive utility.  When ``sim_ci_halfwidth`` is set,
    an adaptive ``run_until`` pass afterwards grows a fresh best-effort
    ensemble until the ``B(C)`` estimate reaches that precision.
    """
    if config is None:
        config = DEFAULT_CONFIG
    load = PoissonLoad(config.sim_kbar)
    utility = config.utility("adaptive")
    capacity = float(config.sim_capacity)
    model = VariableLoadModel(load, utility)

    gap = paired_gap(
        BirthDeathProcess(load),
        Link(capacity),
        utility,
        config.sim_replications,
        config.sim_horizon,
        warmup=config.sim_warmup,
        seed=config.sim_seed,
    )
    summary = gap.summary()

    analytic_be = float(model.best_effort(capacity))
    analytic_res = float(model.reservation(capacity))
    out: Dict[str, float] = {
        "capacity": capacity,
        "replications": float(summary["replications"]),
        "analytic_be": analytic_be,
        "analytic_res": analytic_res,
        "analytic_gap": analytic_res - analytic_be,
        "sim_be": float(summary["best_effort"]),
        "sim_be_ci": float(summary["best_effort_ci"]),
        "sim_res": float(summary["reservation"]),
        "sim_res_ci": float(summary["reservation_ci"]),
        "sim_gap": float(summary["gap"]),
        "sim_gap_ci": float(summary["gap_ci"]),
    }

    if config.sim_ci_halfwidth is not None:
        estimate = EnsembleSimulator(
            BirthDeathProcess(load),
            Link(capacity),
            ThresholdAdmission.from_utility(utility, readmit_waiting=True),
        ).run_until(
            lambda result: result.utility_estimates(utility)[1],
            config.sim_horizon,
            ci_halfwidth=float(config.sim_ci_halfwidth),
            warmup=config.sim_warmup,
            seed=config.sim_seed + 1,
            min_replications=4,
            max_replications=max(64, 4 * config.sim_replications),
        )
        out["adaptive_mean"] = float(estimate.mean)
        out["adaptive_ci"] = float(estimate.ci_halfwidth)
        out["adaptive_replications"] = float(estimate.replications)
        out["adaptive_converged"] = float(estimate.converged)

    return out


def mean_census_check(config: Optional[PaperConfig] = None) -> Dict[str, float]:
    """Per-replication mean-census sanity line for the S1 ensemble.

    A cheap cross-check that the engineered birth-death dynamics hold
    the census at its target mean: the ensemble's per-replication
    time-average census should bracket ``sim_kbar``.
    """
    if config is None:
        config = DEFAULT_CONFIG
    load = PoissonLoad(config.sim_kbar)
    result = EnsembleSimulator(
        BirthDeathProcess(load), Link(config.sim_capacity)
    ).run(
        config.sim_replications,
        config.sim_horizon,
        warmup=config.sim_warmup,
        seed=config.sim_seed,
    )
    means = result.mean_census()
    stat = RunningStat()
    stat.push(means)
    return {
        "target_mean": float(config.sim_kbar),
        "mean_census": float(stat.mean),
        "mean_census_ci": float(stat.ci_halfwidth()),
        "replications": float(result.replications),
        "events": float(np.sum(result.events)),
    }
