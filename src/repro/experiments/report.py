"""Plain-text rendering of experiment output.

Figures become aligned numeric tables (one row per capacity/price),
checkpoint lists become paper-vs-measured lines — the same content the
paper presents graphically, in a form that diffs and greps well.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.experiments.checkpoints import Checkpoint


def render_series(series: dict, *, max_rows: int = 40) -> str:
    """Render a ``{name: ndarray}`` dict as an aligned text table.

    Scalars (length-1 arrays) are printed as a header; equal-length
    arrays become columns.
    """
    header_items: List[str] = []
    columns: dict = {}
    for name, values in series.items():
        arr = np.asarray(values)
        if arr.size == 1:
            header_items.append(f"{name}={arr.reshape(-1)[0]:g}")
        else:
            columns[name] = arr
    lines: List[str] = []
    if header_items:
        lines.append("# " + "  ".join(header_items))
    # columns of different lengths (e.g. capacity-axis vs price-axis
    # panels of one figure) render as separate tables
    by_length: dict = {}
    for name, arr in columns.items():
        by_length.setdefault(len(arr), {})[name] = arr
    for block_index, (n, block) in enumerate(sorted(by_length.items(), reverse=True)):
        if block_index > 0:
            lines.append("")
        names = list(block)
        widths = [max(14, len(name) + 2) for name in names]
        lines.append("  ".join(f"{name:>{w}}" for name, w in zip(names, widths)))
        step = max(1, n // max_rows)
        for i in range(0, n, step):
            row = []
            for name, w in zip(names, widths):
                value = block[name][i]
                if isinstance(value, (float, np.floating)) and np.isnan(value):
                    row.append(f"{'nan':>{w}}")
                else:
                    row.append(f"{value:>{w}.6g}")
            lines.append("  ".join(row))
    return "\n".join(lines)


def render_checkpoints(rows: Sequence[Checkpoint]) -> str:
    """Render checkpoint rows, ending with a pass/total summary."""
    lines = [row.row() for row in rows]
    passed = sum(1 for row in rows if row.matches)
    lines.append(f"-- {passed}/{len(rows)} checkpoints match the paper")
    return "\n".join(lines)


def render(result: object) -> str:
    """Render whatever an experiment generator returned."""
    if isinstance(result, dict):
        return render_series(result)
    if isinstance(result, (list, tuple)) and result and isinstance(result[0], Checkpoint):
        return render_checkpoints(result)
    return repr(result)


def result_payload(result: object) -> object:
    """JSON-ready form of whatever an experiment generator returned."""
    if isinstance(result, dict):
        return {k: np.asarray(v).tolist() for k, v in result.items()}
    if isinstance(result, (list, tuple)) and result and isinstance(result[0], Checkpoint):
        return [
            {
                "id": row.exp_id,
                "description": row.description,
                "paper": row.paper_value,
                "measured": row.measured,
                "matches": row.matches,
            }
            for row in result
        ]
    return repr(result)


def to_json(result: object, *, meta: Optional[dict] = None) -> str:
    """JSON form of an experiment result (for machine consumption).

    Every result — dict-shaped series, checkpoint tables, scalars —
    is wrapped in the same ``{"_meta": ..., "result": ...}`` envelope,
    so consumers read one shape regardless of the experiment kind.
    ``meta`` (elapsed time, metrics, config name — see the CLI)
    defaults to an empty object when the caller has nothing to attach.
    """
    envelope = {
        "_meta": meta if meta is not None else {},
        "result": result_payload(result),
    }
    return json.dumps(envelope, indent=2)


def markdown_checkpoint_table(rows: Iterable[Checkpoint]) -> str:
    """Markdown table of checkpoints (used to regenerate EXPERIMENTS.md)."""
    lines = [
        "| id | quantity | paper | measured | match |",
        "|---|---|---|---|---|",
    ]
    for row in rows:
        flag = "yes" if row.matches else "**no**"
        lines.append(
            f"| {row.exp_id} | {row.description} | {row.paper_value} "
            f"| {row.measured:.6g} | {flag} |"
        )
    return "\n".join(lines)
