"""Exporting experiment series: CSV and gnuplot.

The benchmark harness prints series as text tables; for actually
redrawing the paper's figures most people want files.  These helpers
write any ``{name: ndarray}`` series dict as CSV (one file per distinct
axis length, since figures mix capacity-axis and price-axis panels)
and emit a ready-to-run gnuplot script per figure.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Dict, List

import numpy as np

from repro.ioutils import atomic_write_text


def _split_blocks(series: Dict[str, np.ndarray]) -> Dict[int, Dict[str, np.ndarray]]:
    """Group columns by length; scalars (length 1) are dropped here."""
    blocks: Dict[int, Dict[str, np.ndarray]] = {}
    for name, values in series.items():
        arr = np.asarray(values)
        if arr.size <= 1:
            continue
        blocks.setdefault(len(arr), {})[name] = arr
    if not blocks:
        raise ValueError("series contains no exportable columns")
    return blocks


def write_csv(series: Dict[str, np.ndarray], stem) -> List[pathlib.Path]:
    """Write the series to ``<stem>.csv`` (or ``<stem>_N.csv`` per block).

    Returns the written paths.  Scalar entries become a comment line in
    every file, so the parameters travel with the data.  Each file is
    written atomically (temp file + rename), so an interrupted export
    never leaves a truncated CSV behind.
    """
    stem = pathlib.Path(stem)
    scalars = {
        name: float(np.asarray(v).reshape(-1)[0])
        for name, v in series.items()
        if np.asarray(v).size == 1
    }
    blocks = _split_blocks(series)
    paths: List[pathlib.Path] = []
    for index, (length, block) in enumerate(sorted(blocks.items(), reverse=True)):
        suffix = "" if len(blocks) == 1 else f"_{index}"
        path = stem.with_name(stem.name + suffix).with_suffix(".csv")
        buffer = io.StringIO()
        if scalars:
            buffer.write(
                "# " + " ".join(f"{k}={v:g}" for k, v in scalars.items()) + "\n"
            )
        writer = csv.writer(buffer)
        names = list(block)
        writer.writerow(names)
        for i in range(length):
            writer.writerow([f"{block[name][i]:.10g}" for name in names])
        atomic_write_text(path, buffer.getvalue(), newline="")
        paths.append(path)
    return paths


def write_gnuplot(
    series: Dict[str, np.ndarray],
    stem,
    *,
    x_column: str,
    y_columns: List[str],
    title: str = "",
    logscale_x: bool = False,
) -> pathlib.Path:
    """Write ``<stem>.csv`` + ``<stem>.gp`` plotting the chosen columns.

    The gnuplot script renders to ``<stem>.png`` with
    ``gnuplot <stem>.gp``.  Only columns sharing ``x_column``'s length
    are eligible.
    """
    stem = pathlib.Path(stem)
    x = np.asarray(series[x_column])
    block = {x_column: x}
    for name in y_columns:
        arr = np.asarray(series[name])
        if len(arr) != len(x):
            raise ValueError(
                f"column {name!r} has length {len(arr)}, x axis has {len(x)}"
            )
        block[name] = arr
    csv_path = write_csv(block, stem)[0]

    lines = [
        "set datafile separator ','",
        f"set output '{stem.name}.png'",
        "set terminal pngcairo size 900,600",
        f"set title '{title or stem.name}'",
        f"set xlabel '{x_column}'",
        "set key left top",
    ]
    if logscale_x:
        lines.append("set logscale x")
    plots = [
        f"'{csv_path.name}' using 1:{i + 2} with linespoints title '{name}'"
        for i, name in enumerate(y_columns)
    ]
    lines.append("plot " + ", \\\n     ".join(plots))
    gp_path = stem.with_suffix(".gp")
    atomic_write_text(gp_path, "\n".join(lines) + "\n")
    return gp_path


def export_figure(series: Dict[str, np.ndarray], directory, name: str) -> List[pathlib.Path]:
    """One-call export of a figure-generator dict: CSVs + plot scripts.

    Capacity-axis panels (utility curves, gaps) and price-axis panels
    (gamma) each get a CSV; a gnuplot script is emitted per natural
    panel grouping found in the column names.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = write_csv(series, directory / name)

    # standard panel groupings from the figure generators
    groups = []
    if "capacity" in series:
        utilities = [
            c
            for c in series
            if c.startswith(("best_effort", "reservation"))
            and len(np.asarray(series[c])) == len(np.asarray(series["capacity"]))
        ]
        if utilities:
            groups.append(("utility", "capacity", utilities, False))
        gaps = [c for c in series if c.startswith("bandwidth_gap")]
        if gaps:
            groups.append(("bandwidth_gap", "capacity", gaps, False))
    if "gamma_price_rigid" in series:
        groups.append(
            ("gamma_rigid", "gamma_price_rigid", ["gamma_rigid"], True)
        )
    if "gamma_price_adaptive" in series:
        groups.append(
            ("gamma_adaptive", "gamma_price_adaptive", ["gamma_adaptive"], True)
        )
    for label, x_col, y_cols, logx in groups:
        written.append(
            write_gnuplot(
                series,
                directory / f"{name}_{label}",
                x_column=x_col,
                y_columns=y_cols,
                title=f"{name}: {label}",
                logscale_x=logx,
            )
        )
    return written
