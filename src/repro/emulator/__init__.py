"""Certified emulator surfaces for delta(C), Delta(C) and gamma(p).

The north-star workload queries the paper's headline comparisons at
interactive rates; this package replaces the per-query exact solver
run with low-degree Chebyshev surfaces that carry *certified* max
error bounds (dense differential sampling against the exact batch
engines — see :mod:`repro.emulator.surfaces`).  The service layer
(:mod:`repro.service`) serves these surfaces and falls back through
the result cache to the exact solvers whenever a surface refuses.
"""

from repro.emulator.bank import (
    DOMAINS,
    FITTED_UTILITY,
    KBAR_DOMAIN,
    LOADS,
    QUANTITIES,
    SCHEMA,
    SurfaceBank,
    check_bank,
    default_bank,
    exact_scalar,
    exact_values,
    fit_bank,
    replace_axis,
)
from repro.emulator.surfaces import (
    ChebyshevSurface,
    ChebyshevSurface2D,
    ErrorBudget,
    default_budget,
    default_degree,
    fit_surface,
    fit_surface_2d,
    surface_from_dict,
    surfaces_summary,
)
from repro.errors import CertificationError, EmulatorError, OutOfDomainError

__all__ = [
    "SCHEMA",
    "QUANTITIES",
    "LOADS",
    "FITTED_UTILITY",
    "DOMAINS",
    "KBAR_DOMAIN",
    "SurfaceBank",
    "fit_bank",
    "default_bank",
    "check_bank",
    "exact_values",
    "exact_scalar",
    "replace_axis",
    "ChebyshevSurface",
    "ChebyshevSurface2D",
    "ErrorBudget",
    "default_budget",
    "default_degree",
    "fit_surface",
    "fit_surface_2d",
    "surface_from_dict",
    "surfaces_summary",
    "EmulatorError",
    "CertificationError",
    "OutOfDomainError",
]
