"""Surface banks: fitting, lookup and on-disk persistence.

A :class:`SurfaceBank` holds every certified surface for one
:class:`~repro.experiments.params.PaperConfig` — the unit the service
loads at startup and the ``EM*`` verify invariants re-check.  Fitting
the default bank costs a few seconds (it runs the exact batch solvers
at every Chebyshev node and dense certification sample), so banks are
process-memoised per config and serialisable to JSON
(``repro.emulator/v1``) for ``repro emulate fit --out``.

The module-level ``exact_*_series`` functions are the *fallback
targets*: when the service receives a query a surface refuses
(out-of-domain, or a quantity/load pair that never certified), it
evaluates one of these through the PR-2 content-addressed result
cache, addressed by ``dataclasses.replace(config, capacities=...)`` so
repeat misses on the same grid are disk hits.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.errors import CertificationError, OutOfDomainError
from repro.experiments.params import DEFAULT_CONFIG, PaperConfig
from repro.ioutils import atomic_write_text
from repro.models.variable_load import VariableLoadModel
from repro.models.welfare import WelfareModel
from repro.runner.cache import config_digest
from repro.emulator.surfaces import (
    ChebyshevSurface,
    ChebyshevSurface2D,
    ErrorBudget,
    default_budget,
    default_degree,
    fit_surface,
    fit_surface_2d,
    surface_from_dict,
)

SCHEMA = "repro.emulator/v1"

#: The quantities the bank fits, in catalogue order.
QUANTITIES: Tuple[str, ...] = ("delta", "Delta", "gamma")

#: Load families every bank covers (the paper's three).
LOADS: Tuple[str, ...] = ("poisson", "exponential", "algebraic")

#: Only the adaptive utility is fitted: under the rigid utility
#: ``delta``/``Delta`` are step functions of capacity (jumps at
#: multiples of ``b_hat``) that no polynomial basis can certify; the
#: service answers rigid queries through the exact fallback instead.
FITTED_UTILITY = "adaptive"

#: Fit domains.  ``delta``/``Delta`` cover the capacity range where
#: the gap is numerically alive (beyond ~4x k_bar both vanish below
#: the solvers' own noise floor and the exact path is instant anyway);
#: ``Delta`` starts higher because near C = 20 the best-effort curve
#: is so flat that the gap inversion amplifies kink noise beyond any
#: certifiable budget.  ``gamma`` spans the paper's full price axis.
DOMAINS: Dict[str, Tuple[float, float]] = {
    "delta": (20.0, 400.0),
    "Delta": (60.0, 400.0),
    "gamma": (1e-3, 0.3),
}

#: ``gamma(p)`` varies on a log price axis (the paper plots it that
#: way); fitting in log p keeps the node density where the curve bends.
LOG_X = {"delta": False, "Delta": False, "gamma": True}

#: 2-D surface: ``delta`` over (capacity, mean load k_bar) — the
#: "what if demand grows 20%" question answered without a refit.
KBAR_DOMAIN: Tuple[float, float] = (60.0, 140.0)
DEGREES_2D: Tuple[int, int] = (24, 6)

#: The 2-D budget is looser than the 1-D delta budget: the integer
#: ``k_max`` kinks sweep across the capacity axis as ``kbar`` varies,
#: so a smooth tensor basis cannot reach the single-section error
#: floor (observed ~9e-5 at degrees 24x6 vs ~1.4e-5 in 1-D).
BUDGET_2D = ErrorBudget(atol=5e-4)


# ----------------------------------------------------------------------
# exact evaluators (also the service's cache-addressed fallback targets)
# ----------------------------------------------------------------------


@lru_cache(maxsize=64)
def _variable_model(config: PaperConfig, load: str, utility: str) -> VariableLoadModel:
    return VariableLoadModel(config.load(load), config.utility(utility))


@lru_cache(maxsize=64)
def _welfare_model(config: PaperConfig, load: str, utility: str) -> WelfareModel:
    return WelfareModel(_variable_model(config, load, utility))


def exact_values(
    quantity: str,
    config: PaperConfig,
    load: str,
    utility: str,
    xs,
) -> np.ndarray:
    """The exact engine's answer for any quantity over any grid."""
    arr = np.asarray(xs, dtype=float).ravel()
    if quantity == "delta":
        return _variable_model(config, load, utility).performance_gap_batch(arr)
    if quantity == "Delta":
        return _variable_model(config, load, utility).bandwidth_gap_batch(arr)
    if quantity == "gamma":
        return _welfare_model(config, load, utility).equalizing_ratio_batch(arr)
    raise ValueError(
        f"unknown quantity {quantity!r}; expected one of {sorted(QUANTITIES)}"
    )


def exact_scalar(
    quantity: str, config: PaperConfig, load: str, utility: str, x: float
) -> float:
    """One exact point through the *scalar* model path.

    This is the per-query cost the emulator replaces — the baseline of
    the bench speedup gate — kept separate from :func:`exact_values`
    so the comparison is honest about what a non-emulated service
    would pay per request.
    """
    if quantity == "delta":
        return _variable_model(config, load, utility).performance_gap(x)
    if quantity == "Delta":
        return _variable_model(config, load, utility).bandwidth_gap(x)
    if quantity == "gamma":
        return _welfare_model(config, load, utility).equalizing_ratio(x)
    raise ValueError(
        f"unknown quantity {quantity!r}; expected one of {sorted(QUANTITIES)}"
    )


def exact_delta_series(config: PaperConfig, load: str, utility: str) -> dict:
    """``delta`` over ``config.capacities`` (cache fallback target)."""
    xs = np.asarray(config.capacities, dtype=float)
    return {"x": xs, "value": exact_values("delta", config, load, utility, xs)}


def exact_Delta_series(config: PaperConfig, load: str, utility: str) -> dict:
    """``Delta`` over ``config.capacities`` (cache fallback target)."""
    xs = np.asarray(config.capacities, dtype=float)
    return {"x": xs, "value": exact_values("Delta", config, load, utility, xs)}


def exact_gamma_series(config: PaperConfig, load: str, utility: str) -> dict:
    """``gamma`` over ``config.prices`` (cache fallback target)."""
    xs = np.asarray(config.prices, dtype=float)
    return {"x": xs, "value": exact_values("gamma", config, load, utility, xs)}


#: quantity -> (series target, axis attribute on PaperConfig)
SERIES_TARGETS = {
    "delta": (exact_delta_series, "capacities"),
    "Delta": (exact_Delta_series, "capacities"),
    "gamma": (exact_gamma_series, "prices"),
}


def replace_axis(config: PaperConfig, quantity: str, xs) -> PaperConfig:
    """Re-address a config at the query grid for cache lookups."""
    _, axis = SERIES_TARGETS[quantity]
    return dataclasses.replace(
        config, **{axis: tuple(float(x) for x in np.asarray(xs, dtype=float).ravel())}
    )


# ----------------------------------------------------------------------
# the bank
# ----------------------------------------------------------------------


@dataclass
class SurfaceBank:
    """Every certified surface for one configuration."""

    config_digest: str
    surfaces: Dict[str, ChebyshevSurface] = field(default_factory=dict)
    surfaces_2d: Dict[str, ChebyshevSurface2D] = field(default_factory=dict)

    def add(self, surface: Union[ChebyshevSurface, ChebyshevSurface2D]) -> None:
        if isinstance(surface, ChebyshevSurface2D):
            self.surfaces_2d[surface.key] = surface
        else:
            self.surfaces[surface.key] = surface

    def lookup(
        self, quantity: str, load: str, utility: str
    ) -> Optional[ChebyshevSurface]:
        """The 1-D surface for a query triple, or ``None`` (fallback)."""
        return self.surfaces.get(f"{quantity}/{load}/{utility}")

    def lookup_2d(
        self, quantity: str, load: str, utility: str
    ) -> Optional[ChebyshevSurface2D]:
        return self.surfaces_2d.get(f"{quantity}2d/{load}/{utility}")

    def __len__(self) -> int:
        return len(self.surfaces) + len(self.surfaces_2d)

    def all_surfaces(self) -> List:
        return list(self.surfaces.values()) + list(self.surfaces_2d.values())

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "config_digest": self.config_digest,
            "surfaces": [s.to_dict() for s in self.all_surfaces()],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SurfaceBank":
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported bank schema {payload.get('schema')!r}; "
                f"expected {SCHEMA}"
            )
        bank = cls(config_digest=str(payload["config_digest"]))
        for entry in payload["surfaces"]:
            bank.add(surface_from_dict(entry))
        return bank

    def save(self, path) -> pathlib.Path:
        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path) -> "SurfaceBank":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))


def fit_bank(
    config: Optional[PaperConfig] = None,
    *,
    quantities: Sequence[str] = QUANTITIES,
    loads: Iterable[str] = LOADS,
    include_2d: bool = False,
) -> SurfaceBank:
    """Fit and certify the full bank for one configuration.

    Raises :class:`~repro.errors.CertificationError` if any surface
    misses its budget — a bank is all-certified or not built.  The 2-D
    ``delta(C, k_bar)`` surfaces are opt-in (``include_2d``): they cost
    one exact sweep per parameter node/sample and belong to the deep
    verify suite and the CLI, not the import path.
    """
    cfg = DEFAULT_CONFIG if config is None else config
    bank = SurfaceBank(config_digest=config_digest(cfg))
    for quantity in quantities:
        lo, hi = DOMAINS[quantity]
        budget = default_budget(quantity)
        for load in loads:
            with obs.span("emulator.fit", surface=f"{quantity}/{load}"):
                surface = fit_surface(
                    lambda xs, q=quantity, ld=load: exact_values(
                        q, cfg, ld, FITTED_UTILITY, xs
                    ),
                    quantity=quantity,
                    load=load,
                    utility=FITTED_UTILITY,
                    xname="price" if quantity == "gamma" else "capacity",
                    lo=lo,
                    hi=hi,
                    degree=default_degree(quantity),
                    budget=budget,
                    log_x=LOG_X[quantity],
                )
            bank.add(surface)
            if obs.enabled():
                obs.emit(
                    "emulator.fit",
                    surface=surface.key,
                    degree=surface.degree,
                    certified_bound=surface.certified_bound,
                    allowance=surface.allowance,
                )
    if include_2d and "delta" in quantities:
        lo, hi = DOMAINS["delta"]
        for load in loads:
            with obs.span("emulator.fit", surface=f"delta2d/{load}"):
                surface2d = fit_surface_2d(
                    lambda xs, kbar, ld=load: exact_values(
                        "delta",
                        dataclasses.replace(cfg, kbar=float(kbar)),
                        ld,
                        FITTED_UTILITY,
                        xs,
                    ),
                    quantity="delta",
                    load=load,
                    utility=FITTED_UTILITY,
                    xname="capacity",
                    pname="kbar",
                    x_lo=lo,
                    x_hi=hi,
                    p_lo=KBAR_DOMAIN[0],
                    p_hi=KBAR_DOMAIN[1],
                    degree_x=DEGREES_2D[0],
                    degree_p=DEGREES_2D[1],
                    budget=BUDGET_2D,
                )
            bank.add(surface2d)
            if obs.enabled():
                obs.emit(
                    "emulator.fit",
                    surface=surface2d.key,
                    degree=list(surface2d.degrees),
                    certified_bound=surface2d.certified_bound,
                    allowance=surface2d.allowance,
                )
    return bank


@lru_cache(maxsize=8)
def default_bank(config: Optional[PaperConfig] = None) -> SurfaceBank:
    """Process-memoised bank for a config (1-D surfaces only).

    The verify invariants and the service both call this; the fit cost
    is paid once per process per config.
    """
    return fit_bank(DEFAULT_CONFIG if config is None else config)


def check_bank(
    bank: SurfaceBank,
    config: Optional[PaperConfig] = None,
    *,
    probes: int = 41,
) -> List[dict]:
    """Re-verify every surface's bound on a fresh probe grid.

    Returns one report row per surface with the worst fresh residual in
    certified-bound units (``<= 1.0`` passes).  Used by
    ``repro emulate check`` and mirrored by the ``EM*`` invariants.
    """
    cfg = DEFAULT_CONFIG if config is None else config
    rows: List[dict] = []
    for surface in bank.surfaces.values():
        # probe offsets chosen irrationally so they avoid both the fit
        # nodes and the certification sample
        frac = (np.arange(probes) + np.sqrt(0.5)) / probes
        if surface.log_x:
            xs = surface.lo * (surface.hi / surface.lo) ** frac
        else:
            xs = surface.lo + (surface.hi - surface.lo) * frac
        exact = exact_values(
            surface.quantity, cfg, surface.load, surface.utility, xs
        )
        residual = float(
            np.max(np.abs(surface.evaluate(xs) - exact)) / surface.certified_bound
        )
        rows.append(
            {
                "surface": surface.key,
                "residual": residual,
                "certified_bound": surface.certified_bound,
                "ok": residual <= 1.0,
            }
        )
    for surface2d in bank.surfaces_2d.values():
        frac = (np.arange(probes) + np.sqrt(0.5)) / probes
        xs = surface2d.x_lo + (surface2d.x_hi - surface2d.x_lo) * frac
        worst = 0.0
        for t in (0.17, 0.55, 0.93):
            p = surface2d.p_lo + (surface2d.p_hi - surface2d.p_lo) * t
            exact = exact_values(
                surface2d.quantity,
                dataclasses.replace(cfg, kbar=float(p)),
                surface2d.load,
                surface2d.utility,
                xs,
            )
            worst = max(worst, float(np.max(np.abs(surface2d.evaluate(xs, p) - exact))))
        residual = worst / surface2d.certified_bound
        rows.append(
            {
                "surface": surface2d.key,
                "residual": residual,
                "certified_bound": surface2d.certified_bound,
                "ok": residual <= 1.0,
            }
        )
    return rows


__all__ = [
    "SCHEMA",
    "QUANTITIES",
    "LOADS",
    "FITTED_UTILITY",
    "DOMAINS",
    "KBAR_DOMAIN",
    "SurfaceBank",
    "fit_bank",
    "default_bank",
    "check_bank",
    "exact_values",
    "exact_scalar",
    "exact_delta_series",
    "exact_Delta_series",
    "exact_gamma_series",
    "SERIES_TARGETS",
    "replace_axis",
    "CertificationError",
    "OutOfDomainError",
]
