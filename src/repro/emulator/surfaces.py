"""Certified Chebyshev emulator surfaces for the paper's headline curves.

The quantities the comparison debate actually queries — ``delta(C)``,
``Delta(C)`` and ``gamma(p)`` — are smooth (piecewise-smooth in the
worst case: integer ``k_max`` jumps put small kinks in ``delta``) maps
from one or two parameters to a scalar.  A low-degree Chebyshev
expansion therefore reproduces them to ~1e-4 absolute while costing a
few microseconds per evaluation, versus ~0.3-100 ms for a full solver
run — the surrogate move that makes a "millions of queries" service
economical.

Every surface here is **certified**: after fitting on Chebyshev nodes
the residual is sampled densely against the exact solver (a sample set
disjoint from the fit nodes), and the surface records a
``certified_bound`` — twice the worst observed residual — that every
served value promises to honour.  A fit whose bound exceeds the
declared allowance raises :class:`~repro.errors.CertificationError`
and is never constructed; queries outside the fitted domain raise
:class:`~repro.errors.OutOfDomainError` instead of extrapolating.
The PR-5 verify registry re-checks the served-vs-exact agreement as
the ``EM*`` invariants under the ``EMULATOR`` tolerance policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np
from numpy.polynomial import chebyshev as _cheb

from repro.errors import CertificationError, OutOfDomainError

#: Safety factor on the worst dense-sample residual: the certified
#: bound must cover the residual oscillation *between* sample points,
#: which for a sampling rate of ~8 points per fitted degree is well
#: inside a factor of two.
SAFETY_FACTOR = 2.0

#: Absolute floor on any certified bound (a perfect fit still cannot
#: promise better than roundoff on the exact side).
BOUND_FLOOR = 1e-12

#: Dense residual samples per polynomial degree (per axis).
SAMPLES_PER_DEGREE = 8


def _as_grid(values) -> np.ndarray:
    return np.asarray(values, dtype=float).ravel()


@dataclass(frozen=True)
class ErrorBudget:
    """The allowance a fit must clear to certify.

    ``allowance = atol + rtol * max|exact|`` over the dense residual
    sample — the same shape as a verify tolerance policy, evaluated at
    the scale of the surface being fitted.
    """

    atol: float
    rtol: float = 0.0

    def __post_init__(self):
        if self.atol < 0.0 or self.rtol < 0.0:
            raise ValueError(
                f"tolerances must be >= 0: atol={self.atol!r}, rtol={self.rtol!r}"
            )
        if self.atol == 0.0 and self.rtol == 0.0:
            raise ValueError("an error budget must grant some allowance")

    def allowance(self, exact: np.ndarray) -> float:
        scale = float(np.max(np.abs(exact))) if exact.size else 0.0
        return self.atol + self.rtol * scale


@dataclass(frozen=True)
class ChebyshevSurface:
    """A certified 1-D Chebyshev fit of one paper quantity.

    Frozen and value-only (coefficients are a tuple), so instances are
    safe to share across service worker threads without locking.
    """

    quantity: str  #: "delta" | "Delta" | "gamma"
    load: str
    utility: str
    xname: str  #: "capacity" | "price"
    lo: float
    hi: float
    log_x: bool
    coefficients: Tuple[float, ...]
    certified_bound: float
    observed_residual: float
    allowance: float
    residual_samples: int
    #: private cache of the scaled-domain constants for eval_scalar
    _scale: Tuple[float, float] = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        lo, hi = (np.log(self.lo), np.log(self.hi)) if self.log_x else (self.lo, self.hi)
        object.__setattr__(self, "_scale", (2.0 / (hi - lo), lo))

    # ------------------------------------------------------------------
    # identity / serialisation
    # ------------------------------------------------------------------

    @property
    def key(self) -> str:
        """Bank/service lookup key."""
        return f"{self.quantity}/{self.load}/{self.utility}"

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    def to_dict(self) -> dict:
        return {
            "kind": "chebyshev1d",
            "quantity": self.quantity,
            "load": self.load,
            "utility": self.utility,
            "xname": self.xname,
            "domain": [self.lo, self.hi],
            "log_x": self.log_x,
            "coefficients": list(self.coefficients),
            "certified_bound": self.certified_bound,
            "observed_residual": self.observed_residual,
            "allowance": self.allowance,
            "residual_samples": self.residual_samples,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChebyshevSurface":
        if payload.get("kind") != "chebyshev1d":
            raise ValueError(f"not a chebyshev1d surface: {payload.get('kind')!r}")
        return cls(
            quantity=str(payload["quantity"]),
            load=str(payload["load"]),
            utility=str(payload["utility"]),
            xname=str(payload["xname"]),
            lo=float(payload["domain"][0]),
            hi=float(payload["domain"][1]),
            log_x=bool(payload["log_x"]),
            coefficients=tuple(float(c) for c in payload["coefficients"]),
            certified_bound=float(payload["certified_bound"]),
            observed_residual=float(payload["observed_residual"]),
            allowance=float(payload["allowance"]),
            residual_samples=int(payload["residual_samples"]),
        )

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def contains(self, xs) -> np.ndarray:
        """Elementwise domain membership."""
        arr = _as_grid(xs)
        return (arr >= self.lo) & (arr <= self.hi)

    def _to_unit(self, xs: np.ndarray) -> np.ndarray:
        scale, lo = self._scale
        t = np.log(xs) if self.log_x else xs
        return scale * (t - lo) - 1.0

    def evaluate(self, xs) -> np.ndarray:
        """Surface values over a grid; refuses out-of-domain points."""
        arr = _as_grid(xs)
        inside = self.contains(arr)
        if not bool(np.all(inside)):
            bad = arr[~inside]
            raise OutOfDomainError(
                f"{self.key}: {bad.size} point(s) outside the fitted "
                f"{self.xname} domain [{self.lo:g}, {self.hi:g}] "
                f"(first offender {float(bad[0]):g}); certified bounds do "
                "not extrapolate — use the exact fallback"
            )
        return _cheb.chebval(self._to_unit(arr), np.asarray(self.coefficients))

    def eval_scalar(self, x: float) -> float:
        """One point, pure-Python Clenshaw — the service hot path.

        ~2 us at degree 32 versus ~10 us through ``numpy`` scalar
        dispatch; the point-query speedup gate in
        ``benchmarks/bench_service.py`` rides on this.
        """
        if not self.lo <= x <= self.hi:
            raise OutOfDomainError(
                f"{self.key}: {x:g} outside the fitted {self.xname} domain "
                f"[{self.lo:g}, {self.hi:g}]"
            )
        import math

        scale, lo = self._scale
        t = scale * ((math.log(x) if self.log_x else x) - lo) - 1.0
        c = self.coefficients
        b1 = 0.0
        b2 = 0.0
        t2 = 2.0 * t
        for a in c[:0:-1]:
            b1, b2 = a + t2 * b1 - b2, b1
        return c[0] + t * b1 - b2


@dataclass(frozen=True)
class ChebyshevSurface2D:
    """A certified tensor-product fit over (x, parameter) — e.g.
    ``delta(C, kbar)``: one surface answers load-scale what-ifs the
    1-D surfaces would each need a refit for."""

    quantity: str
    load: str
    utility: str
    xname: str
    pname: str  #: the second (parameter) axis, e.g. "kbar"
    x_lo: float
    x_hi: float
    p_lo: float
    p_hi: float
    log_x: bool
    coefficients: Tuple[Tuple[float, ...], ...]  #: [deg_x+1][deg_p+1]
    certified_bound: float
    observed_residual: float
    allowance: float
    residual_samples: int

    @property
    def key(self) -> str:
        return f"{self.quantity}2d/{self.load}/{self.utility}"

    @property
    def degrees(self) -> Tuple[int, int]:
        return (len(self.coefficients) - 1, len(self.coefficients[0]) - 1)

    def to_dict(self) -> dict:
        return {
            "kind": "chebyshev2d",
            "quantity": self.quantity,
            "load": self.load,
            "utility": self.utility,
            "xname": self.xname,
            "pname": self.pname,
            "x_domain": [self.x_lo, self.x_hi],
            "p_domain": [self.p_lo, self.p_hi],
            "log_x": self.log_x,
            "coefficients": [list(row) for row in self.coefficients],
            "certified_bound": self.certified_bound,
            "observed_residual": self.observed_residual,
            "allowance": self.allowance,
            "residual_samples": self.residual_samples,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChebyshevSurface2D":
        if payload.get("kind") != "chebyshev2d":
            raise ValueError(f"not a chebyshev2d surface: {payload.get('kind')!r}")
        return cls(
            quantity=str(payload["quantity"]),
            load=str(payload["load"]),
            utility=str(payload["utility"]),
            xname=str(payload["xname"]),
            pname=str(payload["pname"]),
            x_lo=float(payload["x_domain"][0]),
            x_hi=float(payload["x_domain"][1]),
            p_lo=float(payload["p_domain"][0]),
            p_hi=float(payload["p_domain"][1]),
            log_x=bool(payload["log_x"]),
            coefficients=tuple(
                tuple(float(c) for c in row) for row in payload["coefficients"]
            ),
            certified_bound=float(payload["certified_bound"]),
            observed_residual=float(payload["observed_residual"]),
            allowance=float(payload["allowance"]),
            residual_samples=int(payload["residual_samples"]),
        )

    def contains(self, xs, p: float) -> bool:
        arr = _as_grid(xs)
        return bool(
            np.all((arr >= self.x_lo) & (arr <= self.x_hi))
            and self.p_lo <= p <= self.p_hi
        )

    def evaluate(self, xs, p: float) -> np.ndarray:
        """Values over an x-grid at one parameter setting."""
        arr = _as_grid(xs)
        if not self.contains(arr, p):
            raise OutOfDomainError(
                f"{self.key}: query outside the fitted domain "
                f"{self.xname} in [{self.x_lo:g}, {self.x_hi:g}], "
                f"{self.pname} in [{self.p_lo:g}, {self.p_hi:g}]"
            )
        t = np.log(arr) if self.log_x else arr
        t_lo, t_hi = (
            (np.log(self.x_lo), np.log(self.x_hi))
            if self.log_x
            else (self.x_lo, self.x_hi)
        )
        u = 2.0 * (t - t_lo) / (t_hi - t_lo) - 1.0
        v = 2.0 * (p - self.p_lo) / (self.p_hi - self.p_lo) - 1.0
        coef = np.asarray(self.coefficients)
        # collapse the parameter axis first, then evaluate the x-series
        cx = _cheb.chebval(v, coef.T)
        return _cheb.chebval(u, cx)


# ----------------------------------------------------------------------
# fitting
# ----------------------------------------------------------------------


def _fit_nodes(lo: float, hi: float, degree: int, log_x: bool) -> np.ndarray:
    """Chebyshev (first-kind) nodes mapped into the fit domain."""
    t = _cheb.chebpts1(degree + 1)
    t_lo, t_hi = (np.log(lo), np.log(hi)) if log_x else (lo, hi)
    mapped = 0.5 * (t_hi + t_lo) + 0.5 * (t_hi - t_lo) * t
    return np.exp(mapped) if log_x else mapped


def _sample_grid(lo: float, hi: float, count: int, log_x: bool) -> np.ndarray:
    """Dense residual sample: endpoint-inclusive, disjoint from the nodes."""
    if log_x:
        return np.geomspace(lo, hi, count)
    return np.linspace(lo, hi, count)


def _certify(
    observed: float, allowance: float, *, what: str, samples: int
) -> Tuple[float, float]:
    bound = max(SAFETY_FACTOR * observed, BOUND_FLOOR)
    if bound > allowance:
        raise CertificationError(
            f"{what}: certified bound {bound:.3e} "
            f"({SAFETY_FACTOR:g}x the worst residual {observed:.3e} over "
            f"{samples} dense samples) exceeds the allowance "
            f"{allowance:.3e}; raise the degree, shrink the domain or "
            "loosen the budget"
        )
    return bound, observed


def fit_surface(
    exact_batch: Callable[[np.ndarray], np.ndarray],
    *,
    quantity: str,
    load: str,
    utility: str,
    xname: str,
    lo: float,
    hi: float,
    degree: int,
    budget: ErrorBudget,
    log_x: bool = False,
    samples: Optional[int] = None,
) -> ChebyshevSurface:
    """Fit and certify one 1-D surface against an exact batch solver.

    ``exact_batch`` is called twice: once on the ``degree + 1``
    Chebyshev nodes (the fit) and once on a dense, node-disjoint
    sample (the certification) — so the certificate is differential
    evidence, not an in-sample statistic.
    """
    if not 0.0 < lo < hi:
        raise ValueError(f"need 0 < lo < hi, got [{lo!r}, {hi!r}]")
    if degree < 2:
        raise ValueError(f"degree must be >= 2, got {degree!r}")
    nodes = _fit_nodes(lo, hi, degree, log_x)
    node_vals = np.asarray(exact_batch(nodes), dtype=float)
    if not np.all(np.isfinite(node_vals)):
        raise CertificationError(
            f"{quantity}/{load}/{utility}: exact solver returned non-finite "
            f"values on the fit nodes; shrink the domain"
        )
    t_lo, t_hi = (np.log(lo), np.log(hi)) if log_x else (lo, hi)
    t = np.log(nodes) if log_x else nodes
    unit = 2.0 * (t - t_lo) / (t_hi - t_lo) - 1.0
    coef = _cheb.chebfit(unit, node_vals, degree)

    n_samples = samples if samples is not None else SAMPLES_PER_DEGREE * degree + 1
    grid = _sample_grid(lo, hi, n_samples, log_x)
    exact = np.asarray(exact_batch(grid), dtype=float)
    t = np.log(grid) if log_x else grid
    fitted = _cheb.chebval(2.0 * (t - t_lo) / (t_hi - t_lo) - 1.0, coef)
    observed = float(np.max(np.abs(fitted - exact)))
    allowance = budget.allowance(exact)
    bound, observed = _certify(
        observed,
        allowance,
        what=f"{quantity}/{load}/{utility} over [{lo:g}, {hi:g}]",
        samples=n_samples,
    )
    return ChebyshevSurface(
        quantity=quantity,
        load=load,
        utility=utility,
        xname=xname,
        lo=float(lo),
        hi=float(hi),
        log_x=log_x,
        coefficients=tuple(float(c) for c in coef),
        certified_bound=bound,
        observed_residual=observed,
        allowance=allowance,
        residual_samples=n_samples,
    )


def fit_surface_2d(
    exact_batch: Callable[[np.ndarray, float], np.ndarray],
    *,
    quantity: str,
    load: str,
    utility: str,
    xname: str,
    pname: str,
    x_lo: float,
    x_hi: float,
    p_lo: float,
    p_hi: float,
    degree_x: int,
    degree_p: int,
    budget: ErrorBudget,
    log_x: bool = False,
    samples: Optional[Tuple[int, int]] = None,
) -> ChebyshevSurface2D:
    """Fit and certify a tensor-product surface over (x, parameter).

    ``exact_batch(xs, p)`` evaluates the exact solver over an x-grid at
    one parameter setting (one model build per setting); the fit runs
    one call per parameter node and certification one per dense
    parameter sample.
    """
    if not 0.0 < x_lo < x_hi or not 0.0 < p_lo < p_hi:
        raise ValueError("need 0 < lo < hi on both axes")
    x_nodes = _fit_nodes(x_lo, x_hi, degree_x, log_x)
    p_nodes = _fit_nodes(p_lo, p_hi, degree_p, False)
    values = np.stack(
        [np.asarray(exact_batch(x_nodes, float(p)), dtype=float) for p in p_nodes],
        axis=1,
    )  # shape (len(x_nodes), len(p_nodes))
    if not np.all(np.isfinite(values)):
        raise CertificationError(
            f"{quantity}2d/{load}/{utility}: exact solver returned "
            "non-finite values on the fit nodes; shrink the domain"
        )
    t_lo, t_hi = (np.log(x_lo), np.log(x_hi)) if log_x else (x_lo, x_hi)
    t = np.log(x_nodes) if log_x else x_nodes
    u = 2.0 * (t - t_lo) / (t_hi - t_lo) - 1.0
    v = 2.0 * (p_nodes - p_lo) / (p_hi - p_lo) - 1.0
    # tensor-product projection: 1-D fits along x for each parameter
    # node, then 1-D fits along the parameter axis per x-coefficient
    cx = _cheb.chebfit(u, values, degree_x)  # (degree_x+1, len(p_nodes))
    coef = _cheb.chebfit(v, cx.T, degree_p).T  # (degree_x+1, degree_p+1)

    if samples is None:
        samples = (
            SAMPLES_PER_DEGREE * degree_x + 1,
            2 * degree_p + 1,
        )
    x_grid = _sample_grid(x_lo, x_hi, samples[0], log_x)
    p_grid = np.linspace(p_lo, p_hi, samples[1])
    surface = ChebyshevSurface2D(
        quantity=quantity,
        load=load,
        utility=utility,
        xname=xname,
        pname=pname,
        x_lo=float(x_lo),
        x_hi=float(x_hi),
        p_lo=float(p_lo),
        p_hi=float(p_hi),
        log_x=log_x,
        coefficients=tuple(tuple(float(c) for c in row) for row in coef),
        certified_bound=float("inf"),
        observed_residual=float("inf"),
        allowance=0.0,
        residual_samples=samples[0] * samples[1],
    )
    observed = 0.0
    scale = 0.0
    for p in p_grid:
        exact = np.asarray(exact_batch(x_grid, float(p)), dtype=float)
        # bypass the certified-bound check while measuring it
        t = np.log(x_grid) if log_x else x_grid
        u = 2.0 * (t - t_lo) / (t_hi - t_lo) - 1.0
        vv = 2.0 * (float(p) - p_lo) / (p_hi - p_lo) - 1.0
        fitted = _cheb.chebval(u, _cheb.chebval(vv, coef.T))
        observed = max(observed, float(np.max(np.abs(fitted - exact))))
        scale = max(scale, float(np.max(np.abs(exact))))
    allowance = budget.atol + budget.rtol * scale
    bound, observed = _certify(
        observed,
        allowance,
        what=(
            f"{quantity}2d/{load}/{utility} over "
            f"[{x_lo:g}, {x_hi:g}] x [{p_lo:g}, {p_hi:g}]"
        ),
        samples=samples[0] * samples[1],
    )
    return ChebyshevSurface2D(
        **{
            **{f.name: getattr(surface, f.name) for f in surface.__dataclass_fields__.values()},
            "certified_bound": bound,
            "observed_residual": observed,
            "allowance": allowance,
        }
    )


def surface_from_dict(payload: dict):
    """Deserialise either surface kind by its ``kind`` tag."""
    kind = payload.get("kind")
    if kind == "chebyshev1d":
        return ChebyshevSurface.from_dict(payload)
    if kind == "chebyshev2d":
        return ChebyshevSurface2D.from_dict(payload)
    raise ValueError(f"unknown surface kind {kind!r}")


#: Per-quantity default error budgets.  ``delta`` values are O(0.05)
#: and kink-limited near 1e-5, so a flat absolute budget; ``Delta``
#: scales with capacity (up to ~16 at k_bar = 100), so mostly
#: relative; ``gamma`` is O(1) by construction.
DEFAULT_BUDGETS: Dict[str, ErrorBudget] = {
    "delta": ErrorBudget(atol=1e-4),
    "Delta": ErrorBudget(atol=1e-3, rtol=2e-3),
    "gamma": ErrorBudget(atol=2e-3, rtol=2e-3),
}

#: Per-quantity default fit degrees (1-D surfaces).
DEFAULT_DEGREES: Dict[str, int] = {"delta": 32, "Delta": 48, "gamma": 32}


def default_budget(quantity: str) -> ErrorBudget:
    try:
        return DEFAULT_BUDGETS[quantity]
    except KeyError:
        raise ValueError(
            f"unknown quantity {quantity!r}; expected one of "
            f"{sorted(DEFAULT_BUDGETS)}"
        ) from None


def default_degree(quantity: str) -> int:
    return DEFAULT_DEGREES[quantity]


def surfaces_summary(surfaces: Sequence) -> str:
    """Text table of fitted surfaces (CLI ``emulate fit`` output)."""
    lines = [
        f"{'surface':34s} {'domain':>22s} {'deg':>4s} "
        f"{'bound':>10s} {'allowance':>10s}"
    ]
    for s in surfaces:
        if isinstance(s, ChebyshevSurface2D):
            domain = f"[{s.x_lo:g},{s.x_hi:g}]x[{s.p_lo:g},{s.p_hi:g}]"
            deg = "x".join(str(d) for d in s.degrees)
        else:
            domain = f"[{s.lo:g}, {s.hi:g}]"
            deg = str(s.degree)
        lines.append(
            f"{s.key:34s} {domain:>22s} {deg:>4s} "
            f"{s.certified_bound:10.2e} {s.allowance:10.2e}"
        )
    return "\n".join(lines)
