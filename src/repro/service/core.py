"""The service core: certified surfaces in front, exact solvers behind.

:class:`EmulatorService` is the synchronous, thread-safe query engine
the HTTP layer (:mod:`repro.service.http`) wraps.  Every query walks
the same ladder:

1. **Surface** — if a certified surface covers the query triple and
   the point is inside its fitted domain, answer from the Chebyshev
   expansion (microseconds, error ≤ the surface's certified bound).
2. **Cache** — otherwise evaluate the exact solver *through* the PR-2
   content-addressed result cache, addressed by the query grid
   (``dataclasses.replace(config, capacities=...)``), so repeated
   misses on the same grid are disk hits.
3. **Exact** — a cold miss runs the batch solver and stores the
   result for the next identical query.

Per-triple locks serialise concurrent cold misses (a thundering herd
of identical queries computes the solver answer once); distinct
triples fall back concurrently.  Everything is metered through
:mod:`repro.obs` when enabled: ``service.*`` counters, the cache's own
hit/miss counters, and a journal event per fallback.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.emulator.bank import (
    LOADS,
    QUANTITIES,
    SERIES_TARGETS,
    SurfaceBank,
    default_bank,
    replace_axis,
)
from repro.errors import OutOfDomainError, ReproError
from repro.experiments.params import DEFAULT_CONFIG, PaperConfig
from repro.experiments.registry import Experiment
from repro.runner.cache import ResultCache, decode_result

#: Utilities the service accepts (rigid is always exact-path).
UTILITIES: Tuple[str, ...] = ("rigid", "adaptive")

#: Engines a query may explicitly request instead of the default
#: surface/exact ladder.  The mean-field engine answers ``delta``
#: queries from the fluid-diffusion fixed point in O(1) per capacity —
#: and *refuses* (HTTP 400) outside its validity envelope rather than
#: extrapolating.
ENGINE_HINTS: Tuple[str, ...] = ("meanfield",)


class QueryError(ReproError):
    """A malformed query (unknown quantity/load/utility, bad grid).

    The HTTP layer maps this to a 400 response; everything else
    non-deliberate becomes a 500.
    """


def _validate_triple(quantity: str, load: str, utility: str) -> None:
    if quantity not in QUANTITIES:
        raise QueryError(
            f"unknown quantity {quantity!r}; expected one of {sorted(QUANTITIES)}"
        )
    if load not in LOADS:
        raise QueryError(
            f"unknown load {load!r}; expected one of {sorted(LOADS)}"
        )
    if utility not in UTILITIES:
        raise QueryError(
            f"unknown utility {utility!r}; expected one of {sorted(UTILITIES)}"
        )


def _validate_grid(xs) -> np.ndarray:
    arr = np.asarray(xs, dtype=float).ravel()
    if arr.size == 0:
        raise QueryError("empty query grid")
    if not np.all(np.isfinite(arr)) or np.any(arr <= 0.0):
        raise QueryError("query points must be finite and > 0")
    return arr


class EmulatorService:
    """Thread-safe query engine over one surface bank.

    Parameters
    ----------
    config:
        The configuration surfaces were fitted for (defaults to the
        paper's).  Fallback queries evaluate exactly under this config
        (with the axis, and optionally ``kbar``, replaced).
    bank:
        A pre-fitted :class:`SurfaceBank`; fitted on first use when
        omitted.
    cache:
        A :class:`~repro.runner.cache.ResultCache` the fallback path
        reads/writes through, or ``None`` to always recompute.
    """

    def __init__(
        self,
        config: Optional[PaperConfig] = None,
        *,
        bank: Optional[SurfaceBank] = None,
        cache: Optional[ResultCache] = None,
    ):
        self.config = DEFAULT_CONFIG if config is None else config
        self.bank = bank if bank is not None else default_bank(self.config)
        self.cache = cache
        self._locks: Dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self._meanfield_sims: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # public queries
    # ------------------------------------------------------------------

    def point(
        self,
        quantity: str,
        load: str,
        utility: str,
        x: float,
        *,
        kbar: Optional[float] = None,
        engine: Optional[str] = None,
    ) -> dict:
        """One point — the latency-critical path.

        Inside a fitted domain this is a pure-Python Clenshaw
        evaluation (no numpy, no locks); everything else routes
        through :meth:`batch`.  An explicit ``engine`` hint bypasses
        the surface ladder entirely.
        """
        _validate_triple(quantity, load, utility)
        x = float(x)
        if not (np.isfinite(x) and x > 0.0):
            raise QueryError("query point must be finite and > 0")
        if kbar is None and engine is None:
            surface = self.bank.lookup(quantity, load, utility)
            if surface is not None and surface.lo <= x <= surface.hi:
                value = surface.eval_scalar(x)
                if quantity != "gamma" and value < 0.0:
                    value = 0.0
                if obs.enabled():
                    obs.counter("service.points.surface").inc()
                return {
                    "quantity": quantity,
                    "load": load,
                    "utility": utility,
                    "x": x,
                    "value": value,
                    "source": "surface",
                    "certified_bound": surface.certified_bound,
                }
        result = self.batch(quantity, load, utility, [x], kbar=kbar, engine=engine)
        return {
            "quantity": quantity,
            "load": load,
            "utility": utility,
            "x": x,
            "value": result["values"][0],
            "source": result["source"],
            "certified_bound": result["certified_bound"],
        }

    def batch(
        self,
        quantity: str,
        load: str,
        utility: str,
        xs: Sequence[float],
        *,
        kbar: Optional[float] = None,
        engine: Optional[str] = None,
    ) -> dict:
        """A grid query: surface where certified, exact elsewhere.

        In-domain points are answered from the surface; out-of-domain
        points (and whole triples no surface certifies, e.g. the rigid
        utility) fall back to the exact batch solver through the
        result cache.  The response says how many points took each
        path and carries the certified bound whenever *any* point came
        from a surface (``None`` means all-exact).  An explicit
        ``engine="meanfield"`` hint answers from the fluid-diffusion
        engine instead (``delta`` only; refusals propagate).
        """
        _validate_triple(quantity, load, utility)
        arr = _validate_grid(xs)
        if engine is not None:
            if engine not in ENGINE_HINTS:
                raise QueryError(
                    f"unknown engine {engine!r}; expected one of "
                    f"{sorted(ENGINE_HINTS)}"
                )
            return self._meanfield_batch(quantity, load, utility, arr, kbar)
        if kbar is not None:
            return self._batch_kbar(quantity, load, utility, arr, float(kbar))
        surface = self.bank.lookup(quantity, load, utility)
        values = np.empty_like(arr)
        if surface is None:
            inside = np.zeros(arr.shape, dtype=bool)
        else:
            inside = surface.contains(arr)
            if np.any(inside):
                fitted = surface.evaluate(arr[inside])
                if quantity != "gamma":
                    fitted = np.maximum(0.0, fitted)
                values[inside] = fitted
        n_exact = int(np.count_nonzero(~inside))
        if n_exact:
            values[~inside] = self._exact_via_cache(
                quantity, load, utility, arr[~inside]
            )
        if obs.enabled():
            obs.counter("service.points.surface").inc(arr.size - n_exact)
        return {
            "quantity": quantity,
            "load": load,
            "utility": utility,
            "x": arr.tolist(),
            "values": values.tolist(),
            "source": self._source_label(arr.size - n_exact, n_exact),
            "sources": {"surface": int(arr.size - n_exact), "exact": n_exact},
            "certified_bound": surface.certified_bound
            if surface is not None and n_exact < arr.size
            else None,
        }

    def describe(self) -> dict:
        """Bank metadata for ``GET /v1/surfaces`` (no coefficients)."""
        def strip(payload: dict) -> dict:
            return {k: v for k, v in payload.items() if k != "coefficients"}

        return {
            "config_digest": self.bank.config_digest,
            "quantities": list(QUANTITIES),
            "loads": list(LOADS),
            "utilities": list(UTILITIES),
            "engines": list(ENGINE_HINTS),
            "surfaces": [strip(s.to_dict()) for s in self.bank.all_surfaces()],
            "cache": self.cache is not None,
        }

    # ------------------------------------------------------------------
    # fallback ladder
    # ------------------------------------------------------------------

    @staticmethod
    def _source_label(n_surface: int, n_exact: int) -> str:
        if n_exact == 0:
            return "surface"
        if n_surface == 0:
            return "exact"
        return "mixed"

    def _batch_kbar(
        self, quantity: str, load: str, utility: str, arr: np.ndarray, kbar: float
    ) -> dict:
        """A what-if query at a non-default mean load.

        Served from the 2-D ``delta(C, kbar)`` surface when one is in
        the bank and covers the query; otherwise exact under a
        ``kbar``-replaced config (cache-addressed like any fallback).
        """
        import dataclasses

        if not (np.isfinite(kbar) and kbar > 0.0):
            raise QueryError("kbar must be finite and > 0")
        surface2d = self.bank.lookup_2d(quantity, load, utility)
        if surface2d is not None and surface2d.contains(arr, kbar):
            values = surface2d.evaluate(arr, kbar)
            if quantity != "gamma":
                values = np.maximum(0.0, values)
            if obs.enabled():
                obs.counter("service.points.surface").inc(arr.size)
            return {
                "quantity": quantity,
                "load": load,
                "utility": utility,
                "x": arr.tolist(),
                "kbar": kbar,
                "values": values.tolist(),
                "source": "surface",
                "sources": {"surface": int(arr.size), "exact": 0},
                "certified_bound": surface2d.certified_bound,
            }
        config = dataclasses.replace(self.config, kbar=kbar)
        values = self._exact_via_cache(quantity, load, utility, arr, config=config)
        return {
            "quantity": quantity,
            "load": load,
            "utility": utility,
            "x": arr.tolist(),
            "kbar": kbar,
            "values": values.tolist(),
            "source": "exact",
            "sources": {"surface": 0, "exact": int(arr.size)},
            "certified_bound": None,
        }

    def _meanfield_batch(
        self,
        quantity: str,
        load: str,
        utility: str,
        arr: np.ndarray,
        kbar: Optional[float],
    ) -> dict:
        """Answer a batch through the fluid-diffusion engine.

        Explicit opt-in only.  The quantity is restricted to ``delta``
        (the paired gap is what the engine computes to O(1/N)); every
        other quantity, and any configuration outside the validity
        envelope, is refused — the engine never extrapolates, and the
        HTTP layer maps the :class:`OutOfDomainError` to a 400.
        """
        if quantity != "delta":
            raise QueryError(
                f"engine=meanfield serves only quantity 'delta', "
                f"not {quantity!r}"
            )
        if kbar is not None and not (np.isfinite(kbar) and kbar > 0.0):
            raise QueryError("kbar must be finite and > 0")
        population = float(kbar) if kbar is not None else self.config.kbar
        sim = self._meanfield_sim(load, population)
        values = sim.gap_batch(self.config.utility(utility), arr)
        if obs.enabled():
            obs.counter("service.points.meanfield").inc(arr.size)
        obs.emit(
            "service.meanfield",
            load=load,
            utility=utility,
            population=population,
            points=int(arr.size),
        )
        response = {
            "quantity": quantity,
            "load": load,
            "utility": utility,
            "x": arr.tolist(),
            "values": values.tolist(),
            "source": "meanfield",
            "sources": {"surface": 0, "exact": 0, "meanfield": int(arr.size)},
            "certified_bound": None,
        }
        if kbar is not None:
            response["kbar"] = population
        return response

    def _meanfield_sim(self, load: str, population: float):
        """One memoised simulator per ``(load, population)``.

        The fluid solve is capacity-independent, so a single cached
        equilibrium serves every query grid at this pair; the lock
        serialises concurrent first solves the same way the fallback
        locks serialise cold cache misses.
        """
        import dataclasses

        from repro.meanfield import MeanFieldSimulator
        from repro.simulation import BirthDeathProcess, Link

        key = f"{load}/{population:g}"
        with self._lock_for(f"meanfield/{key}"):
            sim = self._meanfield_sims.get(key)
            if sim is None:
                config = (
                    dataclasses.replace(self.config, kbar=population)
                    if population != self.config.kbar
                    else self.config
                )
                sim = MeanFieldSimulator(
                    BirthDeathProcess(config.load(load)), Link(population)
                )
                self._meanfield_sims[key] = sim
        return sim

    def _lock_for(self, key: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    def _exact_via_cache(
        self,
        quantity: str,
        load: str,
        utility: str,
        xs: np.ndarray,
        *,
        config: Optional[PaperConfig] = None,
    ) -> np.ndarray:
        """Exact values through the content-addressed cache.

        The query is wrapped as a synthetic :class:`Experiment` whose
        digest target is the module-level ``exact_*_series`` function,
        and the config's axis is replaced by the query grid — so the
        cache address covers code version, config *and* the exact
        points asked for.
        """
        target, _ = SERIES_TARGETS[quantity]
        exp = Experiment(
            exp_id=f"SVC.{quantity}.{load}.{utility}",
            description=f"service fallback: exact {quantity} ({load}/{utility})",
            run=lambda cfg: target(cfg, load, utility),
            target=target,
        )
        cfg = replace_axis(
            self.config if config is None else config, quantity, xs
        )
        if obs.enabled():
            obs.counter("service.fallback.calls").inc()
            obs.counter("service.points.exact").inc(xs.size)
        obs.emit(
            "service.fallback",
            quantity=quantity,
            load=load,
            utility=utility,
            points=int(xs.size),
        )
        lock = self._lock_for(f"{exp.exp_id}/{cfg.kbar}")
        with lock:
            if self.cache is not None:
                entry = self.cache.load(exp, cfg)
                if entry is not None:
                    series = decode_result(entry["result_kind"], entry["result"])
                    return np.asarray(series["value"], dtype=float)
            series = target(cfg, load, utility)
            if self.cache is not None:
                self.cache.store(exp, cfg, series)
        return np.asarray(series["value"], dtype=float)


__all__ = ["ENGINE_HINTS", "EmulatorService", "QueryError", "UTILITIES"]
