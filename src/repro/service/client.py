"""A small keep-alive JSON client for the emulator service.

Used by the load-test bench and the service tests; also convenient
interactively::

    from repro.service import ServiceClient
    with ServiceClient("127.0.0.1", 8321) as client:
        client.point("delta", "poisson", "adaptive", 120.0)

One :class:`ServiceClient` wraps one persistent HTTP/1.1 connection
(``http.client`` under the hood), so per-request overhead is a single
round trip — the load bench runs many of these concurrently to model
independent users.
"""

from __future__ import annotations

import http.client
import json
from typing import Optional, Sequence

from repro.errors import ReproError


class ServiceClientError(ReproError):
    """A non-2xx response from the service (carries the status)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """One persistent connection to one service instance."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0):
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        """One JSON round trip; reconnects once on a dropped socket."""
        payload = None if body is None else json.dumps(body)
        headers = {} if payload is None else {"Content-Type": "application/json"}
        for attempt in (0, 1):
            try:
                self._conn.request(method, path, body=payload, headers=headers)
                response = self._conn.getresponse()
                data = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
            ):
                self._conn.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(data.decode("utf-8"))
        except ValueError:
            raise ServiceClientError(
                response.status, f"non-JSON response: {data[:200]!r}"
            ) from None
        if response.status != 200:
            raise ServiceClientError(
                response.status, str(decoded.get("error", decoded))
            )
        return decoded

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def health(self) -> dict:
        return self.request("GET", "/healthz")

    def surfaces(self) -> dict:
        return self.request("GET", "/v1/surfaces")

    def metrics(self) -> dict:
        return self.request("GET", "/v1/metrics")

    def point(
        self,
        quantity: str,
        load: str,
        utility: str,
        x: float,
        *,
        kbar: Optional[float] = None,
        engine: Optional[str] = None,
    ) -> dict:
        body = {
            "quantity": quantity,
            "load": load,
            "utility": utility,
            "x": x,
        }
        if kbar is not None:
            body["kbar"] = kbar
        if engine is not None:
            body["engine"] = engine
        return self.request("POST", "/v1/point", body)

    def batch(
        self,
        quantity: str,
        load: str,
        utility: str,
        xs: Sequence[float],
        *,
        kbar: Optional[float] = None,
        engine: Optional[str] = None,
    ) -> dict:
        body = {
            "quantity": quantity,
            "load": load,
            "utility": utility,
            "x": list(xs),
        }
        if kbar is not None:
            body["kbar"] = kbar
        if engine is not None:
            body["engine"] = engine
        return self.request("POST", "/v1/batch", body)


__all__ = ["ServiceClient", "ServiceClientError"]
