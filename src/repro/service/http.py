"""Async HTTP/JSON front end for the emulator service — stdlib only.

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server`
(no web framework; the package's no-new-runtime-deps rule is load
bearing).  Surface evaluations answer inline on the event loop — a
point query is ~2 us of pure Python — while exact fallbacks are pushed
to a thread pool so one cold solver run cannot stall every other
connection.

Endpoints (all JSON):

- ``GET  /healthz``                      liveness + bank size
- ``GET  /v1/surfaces``                  bank metadata (bounds, domains)
- ``GET  /v1/point?quantity=&load=&utility=&x=[&kbar=]``
- ``POST /v1/point``                     same fields as JSON body
- ``POST /v1/batch``                     ``{"x": [...], ...}`` grids
- ``GET  /v1/metrics``                   obs snapshot (when enabled)

Per-endpoint request counters and latency histograms are recorded
under ``service.http.*`` when :mod:`repro.obs` is enabled; server
lifecycle and fallback decisions go to the event journal.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.parse
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

from repro import obs
from repro.errors import OutOfDomainError, ReproError
from repro.service.core import EmulatorService, QueryError

#: Largest accepted request body (a 100k-point batch is ~2 MB).
MAX_BODY_BYTES = 8 << 20

#: Largest accepted request-line + headers block.
MAX_HEADER_BYTES = 64 << 10

#: Exact fallbacks run here so the event loop never blocks on a solver.
DEFAULT_EXECUTOR_WORKERS = 4


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _response_bytes(status: int, payload: dict, *, keep_alive: bool) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


class ServiceServer:
    """One service instance bound to one listening socket."""

    def __init__(
        self,
        service: EmulatorService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_workers: int = DEFAULT_EXECUTOR_WORKERS,
    ):
        self.service = service
        self.host = host
        self.port = port  #: updated to the bound port after start()
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="svc-exact"
        )
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "ServiceServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        obs.emit("service.start", host=self.host, port=self.port)
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False)
        obs.emit("service.stop", host=self.host, port=self.port)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                method, path, query, body, keep_alive = request
                status, payload = await self._route(method, path, query, body)
                writer.write(
                    _response_bytes(status, payload, keep_alive=keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except _HttpError as exc:
            # malformed framing: answer if the socket still works, then drop
            try:
                writer.write(
                    _response_bytes(
                        exc.status, {"error": exc.message}, keep_alive=False
                    )
                )
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, dict, Optional[dict], bool]]:
        """One parsed request, or ``None`` on a clean EOF."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "headers too large") from None
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(413, "headers too large")
        try:
            lines = head.decode("ascii").split("\r\n")
            method, target, version = lines[0].split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "malformed request line") from None
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "body too large")
        body: Optional[dict] = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                raise _HttpError(400, "body is not valid JSON") from None
            if not isinstance(body, dict):
                raise _HttpError(400, "body must be a JSON object")
        parsed = urllib.parse.urlsplit(target)
        query = {
            k: v[-1] for k, v in urllib.parse.parse_qs(parsed.query).items()
        }
        return method.upper(), parsed.path, query, body, keep_alive

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    async def _route(
        self, method: str, path: str, query: dict, body: Optional[dict]
    ) -> Tuple[int, dict]:
        endpoint = {
            "/healthz": "healthz",
            "/v1/surfaces": "surfaces",
            "/v1/metrics": "metrics",
            "/v1/point": "point",
            "/v1/batch": "batch",
        }.get(path)
        if endpoint is None:
            return 404, {"error": f"no such endpoint: {path}"}
        started = time.perf_counter()
        try:
            if endpoint in ("healthz", "surfaces", "metrics"):
                if method != "GET":
                    return 405, {"error": f"{endpoint} is GET-only"}
                if endpoint == "healthz":
                    return 200, {"ok": True, "surfaces": len(self.service.bank)}
                if endpoint == "surfaces":
                    return 200, self.service.describe()
                return 200, {"enabled": obs.enabled(), "metrics": obs.snapshot()}
            if method not in ("GET", "POST"):
                return 405, {"error": f"{endpoint} accepts GET or POST"}
            if endpoint == "batch" and method != "POST":
                return 405, {"error": "batch is POST-only"}
            params = dict(query)
            if body:
                params.update(body)
            return 200, await self._answer(endpoint, params)
        except QueryError as exc:
            return 400, {"error": str(exc)}
        except OutOfDomainError as exc:
            # the mean-field engine refuses rather than extrapolates;
            # a refusal is the client's answer, not a server fault
            return 400, {"error": f"OutOfDomainError: {exc}"}
        except ReproError as exc:
            # surfaces never raise through the default service ladder
            # (the core falls back), so any ReproError here is a
            # solver-side failure on a valid-looking query
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        except (TypeError, ValueError, KeyError) as exc:
            return 400, {"error": f"bad query: {exc}"}
        finally:
            if obs.enabled():
                elapsed_ms = (time.perf_counter() - started) * 1e3
                obs.counter(f"service.http.{endpoint}.requests").inc()
                obs.histogram(f"service.http.{endpoint}.latency_ms").observe(
                    elapsed_ms
                )

    async def _answer(self, endpoint: str, params: dict) -> dict:
        quantity = str(params.get("quantity", "delta"))
        load = str(params.get("load", "poisson"))
        utility = str(params.get("utility", "adaptive"))
        kbar = params.get("kbar")
        kbar_f = None if kbar is None else float(kbar)
        engine = params.get("engine")
        engine_s = None if engine is None else str(engine)
        if endpoint == "point":
            if "x" not in params:
                raise QueryError("missing required parameter: x")
            x = float(params["x"])
            surface_only = (
                kbar_f is None
                and engine_s is None
                and (s := self.service.bank.lookup(quantity, load, utility))
                is not None
                and s.lo <= x <= s.hi
            )
            if surface_only:
                # certified fast path: answer on the event loop
                return self.service.point(quantity, load, utility, x)
            return await self._offload(
                lambda: self.service.point(
                    quantity, load, utility, x, kbar=kbar_f, engine=engine_s
                )
            )
        xs = params.get("x")
        if not isinstance(xs, (list, tuple)):
            raise QueryError("batch requires x as a JSON array")
        grid = [float(v) for v in xs]
        surface = self.service.bank.lookup(quantity, load, utility)
        if (
            kbar_f is None
            and engine_s is None
            and surface is not None
            and all(surface.lo <= v <= surface.hi for v in grid)
        ):
            return self.service.batch(quantity, load, utility, grid)
        return await self._offload(
            lambda: self.service.batch(
                quantity, load, utility, grid, kbar=kbar_f, engine=engine_s
            )
        )

    async def _offload(self, call):
        """Run a possibly-exact query on the fallback thread pool."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, call
        )


async def serve(
    service: EmulatorService,
    *,
    host: str = "127.0.0.1",
    port: int = 8321,
    executor_workers: int = DEFAULT_EXECUTOR_WORKERS,
) -> None:
    """Run the service until cancelled (the ``repro serve`` entry)."""
    server = ServiceServer(
        service, host=host, port=port, executor_workers=executor_workers
    )
    await server.start()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


class BackgroundServer:
    """A server on a daemon thread — the test/bench harness.

    ::

        with BackgroundServer(EmulatorService()) as server:
            client = ServiceClient(*server.address)
            ...
    """

    def __init__(
        self,
        service: EmulatorService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_workers: int = DEFAULT_EXECUTOR_WORKERS,
    ):
        self._server = ServiceServer(
            service, host=host, port=port, executor_workers=executor_workers
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self._server.host, self._server.port)

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="svc-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service failed to start within 30s")
        if self._failure is not None:
            raise RuntimeError("service failed to start") from self._failure
        return self

    def __exit__(self, *exc_info) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(self._shutdown(), loop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def _serve():
            try:
                await self._server.start()
            except BaseException as exc:  # bind failures must unblock wait()
                self._failure = exc
                raise
            finally:
                self._ready.set()
            assert self._server._server is not None
            await self._server._server.serve_forever()

        try:
            loop.run_until_complete(_serve())
        except asyncio.CancelledError:
            pass
        except BaseException:
            if not self._ready.is_set():
                self._ready.set()
        finally:
            loop.close()

    async def _shutdown(self) -> None:
        await self._server.stop()
        for task in asyncio.all_tasks():
            task.cancel()


__all__ = [
    "ServiceServer",
    "BackgroundServer",
    "serve",
    "MAX_BODY_BYTES",
    "DEFAULT_EXECUTOR_WORKERS",
]
