"""Async HTTP/JSON service over the certified emulator surfaces.

The production face of the reproduction: :class:`EmulatorService`
answers delta/Delta/gamma queries from certified Chebyshev surfaces
(:mod:`repro.emulator`) in microseconds, falling back through the
content-addressed result cache to the exact batch solvers whenever a
surface refuses (out-of-domain capacity, rigid utility, off-grid
``kbar``).  :mod:`repro.service.http` serves it over stdlib asyncio —
``repro serve`` from the CLI — and :mod:`repro.service.client`
provides the matching keep-alive client used by the load bench.
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.core import ENGINE_HINTS, UTILITIES, EmulatorService, QueryError
from repro.service.http import (
    DEFAULT_EXECUTOR_WORKERS,
    MAX_BODY_BYTES,
    BackgroundServer,
    ServiceServer,
    serve,
)

__all__ = [
    "ENGINE_HINTS",
    "EmulatorService",
    "QueryError",
    "UTILITIES",
    "ServiceServer",
    "BackgroundServer",
    "serve",
    "ServiceClient",
    "ServiceClientError",
    "MAX_BODY_BYTES",
    "DEFAULT_EXECUTOR_WORKERS",
]
