"""Infinite-series summation and fixed-point iteration.

The discrete variable-load model sums ``P(k) * k * pi(C/k)`` over all
``k >= 0``.  For Poisson and geometric loads the terms die fast; for the
algebraic load they die like ``k**-(z+1)`` and a naive truncation at a
fixed K either wastes work or silently loses tail mass.
:func:`sum_series` truncates adaptively and can account for the missing
tail with an analytic bound supplied by the caller (the load classes
supply Hurwitz-zeta tails).

The shared-table machinery (:func:`shared_moment_tail_table`,
:func:`power_series_tail`) replaces the *deep* part of those sums with a
polynomial identity: for a utility with Maclaurin coefficients ``a_j``,

    sum_{k >= n} P(k) k pi(C/k) = sum_j a_j C**j S_j(n)

where ``S_j(n) = sum_{k >= n} k**(1-j) P(k)`` depends only on the load
and the split point — never on the capacity.  One memoised table per
``(load, n)`` therefore serves every capacity of every sweep, which is
what lets the heavy-tailed batch paths stop paying for their tails per
point (and per Chandrupatla iteration inside root-level sweeps).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.caching import BoundedCache
from repro.errors import ConvergenceError

#: Default absolute tolerance for series truncation.
SERIES_TOL = 1e-12

#: Degree of the shared Maclaurin/moment-tail machinery.  96 terms of
#: the adaptive utility's series reach machine precision for arguments
#: up to ~0.45 and keep the *certified* remainder bound small enough
#: that bandwidth-gap solver probes (capacities up to ~2x the sweep
#: grid) usually stay at the lowest series level — halving their dense
#: heads.  The load tables are cheap and built once, so one fixed
#: degree keeps every cache key simple.
TAIL_DEGREE = 96

#: Process-wide memo of load moment-tail tables keyed by
#: ``(load, level, degree)``.  Loads hash by repr (value semantics), so
#: equal distributions share tables across model instances and sweeps.
#: Each entry is ~400 bytes; 512 of them is generous for any workload.
_TAIL_TABLES: BoundedCache = BoundedCache(maxsize=512)

#: Sentinel distinguishing "memoised None" (load cannot build a table at
#: this level) from a cache miss — BoundedCache.get's default is None.
_MISSING = object()


def shared_moment_tail_table(load, level: int, degree: int = TAIL_DEGREE):
    """Memoised ``load.moment_tail_table(level, degree)``.

    Returns the cached ``numpy`` coefficient vector ``S_j(level)`` for
    ``j = 0..degree``, or ``None`` when the load reports it cannot build
    one (that outcome is memoised too, so callers probing an infeasible
    level pay for the discovery once).  The caller must treat the table
    as read-only — it is shared across every model holding an equal
    load.
    """
    key = (load, int(level), int(degree))
    cached = _TAIL_TABLES.get(key, _MISSING)
    if cached is not _MISSING:
        return cached
    table = load.moment_tail_table(int(level), int(degree))
    _TAIL_TABLES.put(key, table)
    return table


def power_series_tail(
    coefficients: np.ndarray, moment_tails: np.ndarray, capacities: np.ndarray
) -> np.ndarray:
    """Evaluate ``sum_j a_j S_j C**j`` for a whole capacity grid.

    ``coefficients`` are the utility's Maclaurin coefficients ``a_j``,
    ``moment_tails`` the load's ``S_j(n)`` table at the chosen split
    point, and the contraction ``d_j = a_j S_j`` collapses the 2-D sum
    into ``sum_j d_j C**j`` — O(degree * len(C)) with no per-capacity
    series work at all.  The powers come from one C-level cumulative
    product plus a matrix-vector product rather than a Horner loop:
    gap solvers call this on small grids every iteration, where a
    ~100-step Python loop of tiny numpy ops would dominate the cost.
    """
    weights = np.asarray(coefficients, dtype=float) * np.asarray(
        moment_tails, dtype=float
    )
    caps = np.asarray(capacities, dtype=float)
    flat = np.atleast_1d(caps)
    if weights.size == 1 or flat.size == 0:
        return np.full(caps.shape, weights[0] if weights.size else 0.0)
    top = float(np.max(flat))
    if top > 1.0 and (weights.size - 1) * math.log2(top) > 1000.0:
        # the raw power ladder would overflow (C**96 is inf past
        # C ~ 1600) even though the *weighted* terms are tiny for any
        # capacity the certified remainder bound admits.  Fold the
        # scale into the weights through exact ldexp arithmetic and
        # evaluate in powers of C/top <= 1 instead.
        exps = np.arange(weights.size, dtype=float) * math.log2(top)
        whole = np.floor(exps)
        weights = np.ldexp(weights * np.exp2(exps - whole), whole.astype(np.int64))
        flat = flat / top
    powers = np.multiply.accumulate(
        np.broadcast_to(flat, (weights.size - 1, flat.size)), axis=0
    )  # row j holds caps**(j+1)
    out = weights[0] + powers.T @ weights[1:]
    return out.reshape(caps.shape)

#: Default hard cap on summed terms.
MAX_TERMS = 5_000_000

#: Number of consecutive negligible terms required before stopping when
#: no analytic tail bound is available.  Protects against premature
#: truncation on terms that dip (e.g. a utility that is zero for a
#: stretch of k before the distribution mass arrives).
QUIET_RUN = 64


def sum_series(
    term: Callable[[int], float],
    start: int = 0,
    *,
    tol: float = SERIES_TOL,
    max_terms: int = MAX_TERMS,
    tail_bound: Optional[Callable[[int], float]] = None,
    label: str = "series",
) -> float:
    """Sum ``term(k)`` for ``k = start, start+1, ...`` adaptively.

    Parameters
    ----------
    term:
        Non-negative series term (negative terms are allowed but the
        stopping rule assumes the magnitude eventually decays).
    tail_bound:
        Optional function giving an upper bound on ``sum_{j>=k} |term(j)|``.
        When provided, summation stops as soon as the bound drops below
        ``tol`` and the bound's midpoint is *not* added (bounds from the
        load classes are tight enough that adding half the bound buys
        nothing but complicates testing).
    label:
        Name used in error messages.

    Raises
    ------
    ConvergenceError
        If ``max_terms`` terms are summed without meeting the tolerance.
    """
    total = 0.0
    quiet = 0
    k = start
    for _ in range(max_terms):
        value = term(k)
        total += value
        k += 1
        if tail_bound is not None:
            if tail_bound(k) < tol:
                return total
        else:
            if abs(value) < tol:
                quiet += 1
                if quiet >= QUIET_RUN:
                    return total
            else:
                quiet = 0
    raise ConvergenceError(
        f"{label}: series did not converge within {max_terms} terms "
        f"(last term at k={k - 1} was {value!r})"
    )


def fixed_point(
    func: Callable[[float], float],
    x0: float,
    *,
    tol: float = 1e-10,
    max_iter: int = 500,
    damping: float = 1.0,
    label: str = "fixed point",
) -> float:
    """Solve ``x = func(x)`` by damped iteration.

    Used by the retrying model to find the self-consistent offered load
    ``L~ = L * (1 + D(L~))``.  ``damping`` in ``(0, 1]`` mixes the new
    iterate with the old one; the retry map is a contraction at sane
    blocking rates, so the default undamped iteration converges fast,
    but heavy blocking benefits from damping < 1.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"{label}: damping must be in (0, 1], got {damping!r}")
    x = x0
    for _ in range(max_iter):
        x_next = func(x)
        x_next = damping * x_next + (1.0 - damping) * x
        if abs(x_next - x) <= tol * max(1.0, abs(x_next)):
            return x_next
        x = x_next
    raise ConvergenceError(
        f"{label}: no convergence after {max_iter} iterations (last x={x!r})"
    )
