"""Infinite-series summation and fixed-point iteration.

The discrete variable-load model sums ``P(k) * k * pi(C/k)`` over all
``k >= 0``.  For Poisson and geometric loads the terms die fast; for the
algebraic load they die like ``k**-(z+1)`` and a naive truncation at a
fixed K either wastes work or silently loses tail mass.
:func:`sum_series` truncates adaptively and can account for the missing
tail with an analytic bound supplied by the caller (the load classes
supply Hurwitz-zeta tails).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConvergenceError

#: Default absolute tolerance for series truncation.
SERIES_TOL = 1e-12

#: Default hard cap on summed terms.
MAX_TERMS = 5_000_000

#: Number of consecutive negligible terms required before stopping when
#: no analytic tail bound is available.  Protects against premature
#: truncation on terms that dip (e.g. a utility that is zero for a
#: stretch of k before the distribution mass arrives).
QUIET_RUN = 64


def sum_series(
    term: Callable[[int], float],
    start: int = 0,
    *,
    tol: float = SERIES_TOL,
    max_terms: int = MAX_TERMS,
    tail_bound: Optional[Callable[[int], float]] = None,
    label: str = "series",
) -> float:
    """Sum ``term(k)`` for ``k = start, start+1, ...`` adaptively.

    Parameters
    ----------
    term:
        Non-negative series term (negative terms are allowed but the
        stopping rule assumes the magnitude eventually decays).
    tail_bound:
        Optional function giving an upper bound on ``sum_{j>=k} |term(j)|``.
        When provided, summation stops as soon as the bound drops below
        ``tol`` and the bound's midpoint is *not* added (bounds from the
        load classes are tight enough that adding half the bound buys
        nothing but complicates testing).
    label:
        Name used in error messages.

    Raises
    ------
    ConvergenceError
        If ``max_terms`` terms are summed without meeting the tolerance.
    """
    total = 0.0
    quiet = 0
    k = start
    for _ in range(max_terms):
        value = term(k)
        total += value
        k += 1
        if tail_bound is not None:
            if tail_bound(k) < tol:
                return total
        else:
            if abs(value) < tol:
                quiet += 1
                if quiet >= QUIET_RUN:
                    return total
            else:
                quiet = 0
    raise ConvergenceError(
        f"{label}: series did not converge within {max_terms} terms "
        f"(last term at k={k - 1} was {value!r})"
    )


def fixed_point(
    func: Callable[[float], float],
    x0: float,
    *,
    tol: float = 1e-10,
    max_iter: int = 500,
    damping: float = 1.0,
    label: str = "fixed point",
) -> float:
    """Solve ``x = func(x)`` by damped iteration.

    Used by the retrying model to find the self-consistent offered load
    ``L~ = L * (1 + D(L~))``.  ``damping`` in ``(0, 1]`` mixes the new
    iterate with the old one; the retry map is a contraction at sane
    blocking rates, so the default undamped iteration converges fast,
    but heavy blocking benefits from damping < 1.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"{label}: damping must be in (0, 1], got {damping!r}")
    x = x0
    for _ in range(max_iter):
        x_next = func(x)
        x_next = damping * x_next + (1.0 - damping) * x
        if abs(x_next - x) <= tol * max(1.0, abs(x_next)):
            return x_next
        x = x_next
    raise ConvergenceError(
        f"{label}: no convergence after {max_iter} iterations (last x={x!r})"
    )
