"""Root finding and monotone-function inversion.

Thin, defensive wrappers around :func:`scipy.optimize.brentq` that
(1) expand brackets automatically and (2) give errors that name the
quantity being solved for, which matters because these solvers sit at
the bottom of every gap/welfare computation in the package.

Diagnostics: :func:`find_root_diag` returns a
:class:`SolverDiagnostics` record (iterations, function calls, final
residual, convergence flag) alongside the root, and
:func:`last_diagnostics` retrieves the most recent record on the
current thread.  ``find_root`` keeps its scalar return for the many
call sites that only want the root; with observability
(:mod:`repro.obs`) enabled it meters every solve into aggregate
counters and a residual histogram without allocating a per-solve
record, and disabled it pays one flag check and nothing else.  A
brentq stop that misses the x-tolerance is no longer silent: it is
counted, recorded in the diagnostics, and surfaced as a
:class:`~repro.errors.ConvergenceWarning` while the best root found
is still returned.
"""

from __future__ import annotations

import math
import threading
import warnings
from typing import Callable, Optional, Tuple

from scipy import optimize

from repro import obs
from repro.errors import BracketError, ConvergenceError, ConvergenceWarning
from repro.numerics.brackets import expand_bracket_upward

#: Default absolute tolerance on the root location.
XTOL = 1e-12

#: Default relative tolerance on the root location.
RTOL = 1e-12


class SolverDiagnostics:
    """What one root solve actually did (the result path's black box).

    ``converged`` is brentq's own verdict on the x-tolerance;
    ``residual`` is ``f(root)``, which brentq does *not* bound — a
    large residual with ``converged=True`` flags a near-discontinuity.

    A plain ``__slots__`` class rather than a dataclass: one record is
    allocated per observed solve, inside loops that run thousands of
    sub-20-microsecond brentq calls, and dataclass ``__init__``
    overhead is measurable there.
    """

    __slots__ = (
        "label",
        "root",
        "converged",
        "iterations",
        "function_calls",
        "residual",
        "bracket_expanded",
    )

    def __init__(
        self,
        label: str,
        root: float,
        converged: bool,
        iterations: int,
        function_calls: int,
        residual: float,
        bracket_expanded: bool = False,
    ):
        self.label = label
        self.root = root
        self.converged = converged
        self.iterations = iterations
        self.function_calls = function_calls
        self.residual = residual
        self.bracket_expanded = bracket_expanded

    @property
    def met_tolerance(self) -> bool:
        """Alias for ``converged`` (the solver's tolerance verdict)."""
        return self.converged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SolverDiagnostics(label={self.label!r}, root={self.root!r}, "
            f"converged={self.converged!r}, iterations={self.iterations!r}, "
            f"function_calls={self.function_calls!r}, "
            f"residual={self.residual!r}, "
            f"bracket_expanded={self.bracket_expanded!r})"
        )


_last = threading.local()


def last_diagnostics() -> Optional[SolverDiagnostics]:
    """Diagnostics of this thread's most recent diagnosed solve.

    Populated by every :func:`find_root_diag` call.  Plain
    :func:`find_root` solves are metered in aggregate but do not
    allocate per-solve records, so they never appear here.
    """
    return getattr(_last, "diag", None)


# Cached instrument handles for the hot metering path, keyed on the
# active registry and its generation so both ``obs.enable(registry=...)``
# swaps and ``registry.reset()`` invalidate the cache.  The three
# per-solve instruments share one lock (``obs.share_lock``) so a solve
# pays a single lock round-trip, not three.
_instruments_cache: Optional[tuple] = None


def _instruments() -> tuple:
    global _instruments_cache
    reg = obs.registry()
    cache = _instruments_cache
    if (
        cache is None
        or cache[0] is not reg
        or cache[1] != reg.generation
    ):
        calls = reg.counter("solver.find_root.calls")
        iterations = reg.counter("solver.find_root.iterations")
        residuals = reg.histogram("solver.find_root.residual")
        lock = obs.share_lock(calls, iterations, residuals)
        cache = (reg, reg.generation, lock, calls, iterations, residuals)
        _instruments_cache = cache
    return cache


#: Metered ``find_root`` solves record ``|f(root)|`` into the residual
#: histogram on every Nth solve only — the residual costs one extra
#: function evaluation, which would otherwise dominate metering cost on
#: sub-30us solves.  :func:`find_root_diag` always records it exactly.
RESIDUAL_SAMPLE_EVERY = 16


def _meter(
    iterations: int,
    residual: Optional[float],
    expanded: bool,
    converged: bool,
) -> None:
    """Fold one solve into the solver metrics (caller checked enabled).

    ``residual=None`` means the residual was not sampled this solve.
    """
    _, _, lock, calls, iteration_total, residuals = _instruments()
    with lock:
        calls.inc_unlocked()
        iteration_total.inc_unlocked(iterations)
        if residual is not None:
            residuals.observe_unlocked(abs(residual))
    if expanded:
        obs.counter("solver.bracket_expansions").inc()
    if not converged:
        obs.counter("solver.convergence_failures").inc()


def _record(diag: SolverDiagnostics) -> None:
    _last.diag = diag
    if obs.enabled():
        _meter(
            diag.iterations,
            diag.residual,
            diag.bracket_expanded,
            diag.converged,
        )


def _solve(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    expand: bool,
    upper_limit: float,
    xtol: float,
    rtol: float,
    label: str,
    want_diag: bool,
) -> Tuple[float, Optional[SolverDiagnostics]]:
    """Shared solver core.

    ``want_diag=True`` (the :func:`find_root_diag` path) allocates a
    :class:`SolverDiagnostics` record and remembers it for
    :func:`last_diagnostics`.  Without it, the solve is still metered
    into the aggregate obs instruments when observability is enabled,
    but skips the per-solve record allocation — that keeps the metered
    :func:`find_root` hot path cheap.
    """
    expanded = False
    f_lo = func(lo)
    if f_lo == 0.0:
        if want_diag:
            diag = SolverDiagnostics(label, lo, True, 0, 1, 0.0)
            _record(diag)
            return lo, diag
        if obs.enabled():
            _meter(0, 0.0, False, True)
        return lo, None
    f_hi = func(hi)
    if f_hi == 0.0:
        if want_diag:
            diag = SolverDiagnostics(label, hi, True, 0, 2, 0.0)
            _record(diag)
            return hi, diag
        if obs.enabled():
            _meter(0, 0.0, False, True)
        return hi, None
    if (f_lo < 0.0) == (f_hi < 0.0):
        if not expand:
            raise BracketError(
                f"{label}: no sign change on [{lo}, {hi}] "
                f"(f(lo)={f_lo!r}, f(hi)={f_hi!r})"
            )
        lo, hi = expand_bracket_upward(func, lo, hi, upper_limit=upper_limit)
        expanded = True
        if lo == hi:
            if want_diag:
                diag = SolverDiagnostics(
                    label, lo, True, 0, 2, func(lo), bracket_expanded=True
                )
                _record(diag)
                return lo, diag
            if obs.enabled():
                _meter(0, func(lo), True, True)
            return lo, None
    try:
        root, results = optimize.brentq(
            func, lo, hi, xtol=xtol, rtol=max(rtol, 4e-16), full_output=True
        )
    except (ValueError, RuntimeError) as exc:  # pragma: no cover - scipy detail
        if obs.enabled():
            obs.counter("solver.convergence_failures").inc()
        raise ConvergenceError(f"{label}: brentq failed on [{lo}, {hi}]: {exc}") from exc
    root = float(root)
    # RootResults is dict-backed (scipy _RichResult): plain attribute
    # access funnels through ``__getattr__`` at ~0.6us a read, which
    # triples the metering cost on a ~16us solve.  Read the dict.
    if isinstance(results, dict):
        converged = bool(results["converged"])
        iterations = int(results["iterations"])
    else:  # pragma: no cover - pre-_RichResult scipy
        converged = bool(results.converged)
        iterations = int(results.iterations)
    diag = None
    if want_diag:
        function_calls = int(
            results["function_calls"]
            if isinstance(results, dict)
            else results.function_calls  # pragma: no cover
        )
        diag = SolverDiagnostics(
            label,
            root,
            converged,
            iterations,
            function_calls,
            func(root),
            bracket_expanded=expanded,
        )
        _record(diag)
    elif obs.enabled():
        # _meter, inlined: this is the one metering site hot enough
        # that the extra call layers and a second cache lookup show up.
        _, _, lock, calls, iteration_total, residuals = _instruments()
        sampled = calls.value % RESIDUAL_SAMPLE_EVERY == 0
        residual = abs(func(root)) if sampled else None
        with lock:
            calls.inc_unlocked()
            iteration_total.inc_unlocked(iterations)
            if residual is not None:
                residuals.observe_unlocked(residual)
        if expanded:
            obs.counter("solver.bracket_expansions").inc()
        if not converged:
            obs.counter("solver.convergence_failures").inc()
    if not converged:  # pragma: no cover - brentq rarely reports this
        warnings.warn(
            f"{label}: brentq stopped after {iterations} iterations "
            f"without meeting tolerance on [{lo}, {hi}]; "
            "returning the best root found",
            ConvergenceWarning,
            stacklevel=3,
        )
    return root, diag


def find_root_diag(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    expand: bool = False,
    upper_limit: float = float("inf"),
    xtol: float = XTOL,
    rtol: float = RTOL,
    label: str = "root",
) -> Tuple[float, SolverDiagnostics]:
    """Find a root of ``func`` in ``[lo, hi]``; return it with diagnostics.

    Parameters
    ----------
    func:
        Continuous scalar function.
    lo, hi:
        Search interval.  If ``expand`` is true and ``func`` does not
        change sign on the interval, ``hi`` is grown geometrically
        (up to ``upper_limit``) until it does.
    label:
        Human-readable name of the quantity, used in error messages.

    Returns
    -------
    (float, SolverDiagnostics)
        The root location and the solve record.  If brentq stops
        without meeting the x-tolerance, the best root is still
        returned, the diagnostics carry ``converged=False``, and a
        :class:`~repro.errors.ConvergenceWarning` is emitted — a
        recorded degradation instead of a silent one.

    Raises
    ------
    BracketError
        If no sign change exists in the (possibly expanded) interval.
    ConvergenceError
        If brentq fails outright (raises) on the bracketed interval.
    """
    root, diag = _solve(
        func, lo, hi, expand, upper_limit, xtol, rtol, label, want_diag=True
    )
    return root, diag


def find_root(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    expand: bool = False,
    upper_limit: float = float("inf"),
    xtol: float = XTOL,
    rtol: float = RTOL,
    label: str = "root",
) -> float:
    """Find a root of ``func`` in ``[lo, hi]`` (see :func:`find_root_diag`).

    The scalar-return form every model call site uses.  With
    observability enabled the solve is metered (call/iteration
    counters, residual histogram); per-solve :class:`SolverDiagnostics`
    records come from :func:`find_root_diag`.  Disabled, it costs one
    flag check over plain brentq.
    """
    root, _ = _solve(
        func, lo, hi, expand, upper_limit, xtol, rtol, label,
        want_diag=False,
    )
    return root


def invert_monotone(
    func: Callable[[float], float],
    target: float,
    lo: float,
    hi: float,
    *,
    increasing: bool = True,
    upper_limit: float = float("inf"),
    xtol: float = XTOL,
    rtol: float = RTOL,
    label: str = "inverse",
    clip: Optional[str] = None,
) -> float:
    """Solve ``func(x) = target`` for a monotone ``func``.

    This is the workhorse behind the bandwidth gap (invert ``B`` at the
    reservation utility) and the equalizing price ratio (invert ``W_R``
    at the best-effort welfare).

    Parameters
    ----------
    increasing:
        Direction of monotonicity; used only to orient the residual so
        bracket expansion knows which way to grow.
    clip:
        ``"lo"`` or ``"hi"`` return the corresponding endpoint instead
        of raising when the target is unreachable on that side (e.g.
        a bandwidth gap of exactly zero when ``R(C) <= B(C)`` due to
        floating-point rounding).  ``None`` raises.
    """
    if increasing:
        residual = lambda x: func(x) - target  # noqa: E731 - tiny adapters
    else:
        residual = lambda x: target - func(x)  # noqa: E731

    r_lo = residual(lo)
    if r_lo >= 0.0:
        # target already met (or overshot) at the left endpoint
        if r_lo == 0.0 or clip == "lo":
            return lo
        raise BracketError(
            f"{label}: target {target!r} already exceeded at lo={lo!r}"
        )
    try:
        return find_root(
            residual,
            lo,
            hi,
            expand=True,
            upper_limit=upper_limit,
            xtol=xtol,
            rtol=rtol,
            label=label,
        )
    except BracketError:
        if clip == "hi":
            # target unreachable within the expansion limit: clip there
            return upper_limit if math.isfinite(upper_limit) else hi
        raise
