"""Root finding and monotone-function inversion.

Thin, defensive wrappers around :func:`scipy.optimize.brentq` that
(1) expand brackets automatically and (2) give errors that name the
quantity being solved for, which matters because these solvers sit at
the bottom of every gap/welfare computation in the package.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from scipy import optimize

from repro.errors import BracketError, ConvergenceError
from repro.numerics.brackets import expand_bracket_upward

#: Default absolute tolerance on the root location.
XTOL = 1e-12

#: Default relative tolerance on the root location.
RTOL = 1e-12


def find_root(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    expand: bool = False,
    upper_limit: float = float("inf"),
    xtol: float = XTOL,
    rtol: float = RTOL,
    label: str = "root",
) -> float:
    """Find a root of ``func`` in ``[lo, hi]``.

    Parameters
    ----------
    func:
        Continuous scalar function.
    lo, hi:
        Search interval.  If ``expand`` is true and ``func`` does not
        change sign on the interval, ``hi`` is grown geometrically
        (up to ``upper_limit``) until it does.
    label:
        Human-readable name of the quantity, used in error messages.

    Returns
    -------
    float
        The root location.

    Raises
    ------
    BracketError
        If no sign change exists in the (possibly expanded) interval.
    ConvergenceError
        If brentq fails to converge.
    """
    f_lo = func(lo)
    if f_lo == 0.0:
        return lo
    f_hi = func(hi)
    if f_hi == 0.0:
        return hi
    if (f_lo < 0.0) == (f_hi < 0.0):
        if not expand:
            raise BracketError(
                f"{label}: no sign change on [{lo}, {hi}] "
                f"(f(lo)={f_lo!r}, f(hi)={f_hi!r})"
            )
        lo, hi = expand_bracket_upward(func, lo, hi, upper_limit=upper_limit)
        if lo == hi:
            return lo
    try:
        root, results = optimize.brentq(
            func, lo, hi, xtol=xtol, rtol=max(rtol, 4e-16), full_output=True
        )
    except (ValueError, RuntimeError) as exc:  # pragma: no cover - scipy detail
        raise ConvergenceError(f"{label}: brentq failed on [{lo}, {hi}]: {exc}") from exc
    if not results.converged:  # pragma: no cover - brentq rarely reports this
        raise ConvergenceError(f"{label}: brentq did not converge on [{lo}, {hi}]")
    return float(root)


def invert_monotone(
    func: Callable[[float], float],
    target: float,
    lo: float,
    hi: float,
    *,
    increasing: bool = True,
    upper_limit: float = float("inf"),
    xtol: float = XTOL,
    rtol: float = RTOL,
    label: str = "inverse",
    clip: Optional[str] = None,
) -> float:
    """Solve ``func(x) = target`` for a monotone ``func``.

    This is the workhorse behind the bandwidth gap (invert ``B`` at the
    reservation utility) and the equalizing price ratio (invert ``W_R``
    at the best-effort welfare).

    Parameters
    ----------
    increasing:
        Direction of monotonicity; used only to orient the residual so
        bracket expansion knows which way to grow.
    clip:
        ``"lo"`` or ``"hi"`` return the corresponding endpoint instead
        of raising when the target is unreachable on that side (e.g.
        a bandwidth gap of exactly zero when ``R(C) <= B(C)`` due to
        floating-point rounding).  ``None`` raises.
    """
    if increasing:
        residual = lambda x: func(x) - target  # noqa: E731 - tiny adapters
    else:
        residual = lambda x: target - func(x)  # noqa: E731

    r_lo = residual(lo)
    if r_lo >= 0.0:
        # target already met (or overshot) at the left endpoint
        if r_lo == 0.0 or clip == "lo":
            return lo
        raise BracketError(
            f"{label}: target {target!r} already exceeded at lo={lo!r}"
        )
    try:
        return find_root(
            residual,
            lo,
            hi,
            expand=True,
            upper_limit=upper_limit,
            xtol=xtol,
            rtol=rtol,
            label=label,
        )
    except BracketError:
        if clip == "hi":
            # target unreachable within the expansion limit: clip there
            return upper_limit if math.isfinite(upper_limit) else hi
        raise
