"""Bracket expansion helpers for root finding.

Every implicit quantity in the paper (bandwidth gap, equalizing price,
retry fixed point) is the root of a monotone function whose scale is not
known in advance: the gap can be 0.3 units of bandwidth or 500.  These
helpers grow a bracket geometrically until the function changes sign,
so the caller never has to guess the scale.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.errors import BracketError

#: Default geometric growth factor for bracket expansion.
GROWTH = 2.0

#: Default cap on the number of expansion steps (2**60 of initial span).
MAX_STEPS = 200


def expand_bracket_upward(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    growth: float = GROWTH,
    max_steps: int = MAX_STEPS,
    upper_limit: float = float("inf"),
) -> Tuple[float, float]:
    """Grow ``[lo, hi]`` to the right until ``func`` changes sign.

    Parameters
    ----------
    func:
        Continuous function whose sign change we want to bracket.
        ``func(lo)`` fixes the reference sign.
    lo, hi:
        Initial bracket; ``hi`` moves right geometrically.
    growth:
        Multiplier applied to the bracket span each step.
    max_steps:
        Give up (raise :class:`BracketError`) after this many steps.
    upper_limit:
        Never move ``hi`` beyond this value; reaching it without a sign
        change raises :class:`BracketError`.

    Returns
    -------
    (a, b):
        Bracket with ``func(a)`` and ``func(b)`` of opposite signs
        (zero counts as a sign change).
    """
    if hi <= lo:
        raise ValueError(f"need hi > lo, got lo={lo!r} hi={hi!r}")
    f_lo = func(lo)
    if f_lo == 0.0:
        return lo, lo
    span = hi - lo
    a = lo
    for _ in range(max_steps):
        b = min(a + span, upper_limit)
        f_b = func(b)
        if f_b == 0.0 or (f_lo < 0.0) != (f_b < 0.0):
            return lo, b
        if b >= upper_limit:
            break
        a = b
        span *= growth
    raise BracketError(
        f"no sign change found expanding upward from [{lo}, {hi}] "
        f"(limit {upper_limit}, f(lo)={f_lo!r})"
    )


def expand_bracket_downward(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    growth: float = GROWTH,
    max_steps: int = MAX_STEPS,
    lower_limit: float = 0.0,
) -> Tuple[float, float]:
    """Grow ``[lo, hi]`` to the left until ``func`` changes sign.

    The mirror image of :func:`expand_bracket_upward`; ``lo`` moves left
    geometrically, never below ``lower_limit``.  Useful for price-domain
    quantities that live on ``(0, p0]``.
    """
    if hi <= lo:
        raise ValueError(f"need hi > lo, got lo={lo!r} hi={hi!r}")
    f_hi = func(hi)
    if f_hi == 0.0:
        return hi, hi
    span = hi - lo
    b = hi
    for _ in range(max_steps):
        a = max(b - span, lower_limit)
        f_a = func(a)
        if f_a == 0.0 or (f_hi < 0.0) != (f_a < 0.0):
            return a, hi
        if a <= lower_limit:
            break
        b = a
        span *= growth
    raise BracketError(
        f"no sign change found expanding downward from [{lo}, {hi}] "
        f"(limit {lower_limit}, f(hi)={f_hi!r})"
    )
