"""Scalar maximisation over continuous and integer domains.

Two maximisers cover everything the models need:

- :func:`maximize_scalar` for smooth objectives such as the welfare
  ``V(C) - p*C`` over capacity, using a coarse grid scan to locate the
  basin followed by a bounded Brent polish.  The grid stage matters
  because rigid utilities make ``V_B`` piecewise-constant, so a purely
  local method can stall on a flat.
- :func:`argmax_int` for integer objectives such as ``V(k) = k*pi(C/k)``
  over the number of admitted flows.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np
from scipy import optimize

from repro import obs
from repro.errors import ConvergenceError


def maximize_scalar(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    grid: int = 256,
    polish: bool = True,
    xtol: float = 1e-10,
    label: str = "maximum",
) -> Tuple[float, float]:
    """Maximise ``func`` on ``[lo, hi]``.

    Returns ``(x_star, f_star)``.  The interval is scanned on a uniform
    grid of ``grid + 1`` points to locate the best basin, then the
    bracketing neighbourhood is polished with bounded Brent (unless
    ``polish`` is false, e.g. for piecewise-constant objectives where
    the grid value is already exact up to grid resolution).
    """
    if hi < lo:
        raise ValueError(f"{label}: need hi >= lo, got [{lo}, {hi}]")
    if hi == lo:
        return lo, func(lo)
    if obs.enabled():
        obs.counter("optimize.maximize_scalar.calls").inc()
        obs.counter("optimize.maximize_scalar.evaluations").inc(grid + 1)
    xs = np.linspace(lo, hi, grid + 1)
    values = np.array([func(float(x)) for x in xs], dtype=float)
    if not np.all(np.isfinite(values)):
        raise ConvergenceError(f"{label}: objective non-finite on grid over [{lo}, {hi}]")
    best = int(np.argmax(values))
    x_best, f_best = float(xs[best]), float(values[best])
    if not polish:
        return x_best, f_best
    left = float(xs[max(best - 1, 0)])
    right = float(xs[min(best + 1, grid)])
    if right > left:
        result = optimize.minimize_scalar(
            lambda x: -func(x),
            bounds=(left, right),
            method="bounded",
            options={"xatol": xtol},
        )
        if result.success:
            x_polished = float(result.x)
            f_polished = float(-result.fun)
            if f_polished > f_best:
                x_best, f_best = x_polished, f_polished
    return x_best, f_best


def argmax_int(
    func: Callable[[int], float],
    lo: int,
    hi: int,
    *,
    unimodal_window: int = 64,
    label: str = "integer maximum",
) -> Tuple[int, float]:
    """Maximise ``func`` over integers in ``[lo, hi]``.

    The objectives we face (``k * pi(C/k)``) are unimodal in ``k``, so a
    full scan is wasteful at large ``hi``.  We scan geometrically spaced
    probes to find the best coarse region, then scan exhaustively within
    ``unimodal_window`` of it, and finally walk outward while the value
    keeps improving so a slightly-off window cannot clip the peak.
    """
    if hi < lo:
        raise ValueError(f"{label}: need hi >= lo, got [{lo}, {hi}]")
    if obs.enabled():
        # admission-search accounting: every V(k) probe is one step
        obs.counter("optimize.argmax_int.calls").inc()
        func = obs.CallCounter(func)
        try:
            return _argmax_int_impl(func, lo, hi, unimodal_window, label)
        finally:
            obs.counter("optimize.argmax_int.evaluations").inc(func.calls)
    return _argmax_int_impl(func, lo, hi, unimodal_window, label)


def _argmax_int_impl(
    func: Callable[[int], float],
    lo: int,
    hi: int,
    unimodal_window: int,
    label: str,
) -> Tuple[int, float]:
    if hi - lo <= 4 * unimodal_window:
        ks = range(lo, hi + 1)
        best_k = max(ks, key=func)
        return best_k, func(best_k)

    # geometric probe points (always including the endpoints)
    probes = sorted(
        {lo, hi}
        | {int(round(lo + (hi - lo) * (2.0**-i))) for i in range(1, 40)}
        | {int(round(lo * (hi / max(lo, 1)) ** (i / 32.0))) for i in range(33)}
    )
    probes = [k for k in probes if lo <= k <= hi]
    best_probe = max(probes, key=func)

    window_lo = max(lo, best_probe - unimodal_window)
    window_hi = min(hi, best_probe + unimodal_window)
    best_k = max(range(window_lo, window_hi + 1), key=func)
    best_v = func(best_k)

    # walk outward in case the window clipped the peak
    k = best_k
    while k > lo and func(k - 1) > best_v:
        k -= 1
        best_v = func(k)
    if k == best_k:
        while k < hi and func(k + 1) > best_v:
            k += 1
            best_v = func(k)
    return k, best_v
