"""Numerical substrate used by every model in the package.

The paper's quantities are defined implicitly far more often than
explicitly: the bandwidth gap ``Delta(C)`` is the solution of
``B(C + Delta) = R(C)``, the welfare-optimal capacity ``C(p)`` is an
argmax, the equalizing price ratio ``gamma(p)`` is the solution of
``W_R(gamma * p) = W_B(p)``, and the discrete sums run over infinite
supports.  This subpackage provides the small set of robust primitives
those definitions need:

- :func:`find_root` / :func:`invert_monotone` — bracketed root finding
  with automatic bracket expansion,
- :func:`maximize_scalar` / :func:`argmax_int` — scalar maximisation for
  smooth and integer-domain objectives,
- :func:`sum_series` — adaptive truncation of infinite series with an
  optional analytic tail bound,
- :func:`integrate` — quadrature over finite or semi-infinite intervals,
- :func:`fixed_point` — damped fixed-point iteration (retry model).

Whole-grid sweeps go through the batch forms in
:mod:`repro.numerics.batch` — :func:`find_roots`,
:func:`invert_monotone_batch`, :func:`share_weighted_sums`,
:func:`adaptive_quad_batch` — which solve a vector of independent
scalar problems in a handful of numpy calls and report per-element
convergence masks instead of raising on the first bad element.
"""

from repro.numerics.batch import (
    BatchRootResult,
    adaptive_quad_batch,
    expand_brackets_upward,
    find_roots,
    invert_monotone_batch,
    share_weighted_sums,
)
from repro.numerics.brackets import expand_bracket_downward, expand_bracket_upward
from repro.numerics.optimize import argmax_int, maximize_scalar
from repro.numerics.quadrature import integrate
from repro.numerics.series import fixed_point, sum_series
from repro.numerics.solvers import find_root, invert_monotone

__all__ = [
    "BatchRootResult",
    "adaptive_quad_batch",
    "argmax_int",
    "expand_bracket_downward",
    "expand_bracket_upward",
    "expand_brackets_upward",
    "find_root",
    "find_roots",
    "fixed_point",
    "integrate",
    "invert_monotone",
    "invert_monotone_batch",
    "maximize_scalar",
    "share_weighted_sums",
    "sum_series",
]
