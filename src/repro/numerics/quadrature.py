"""Quadrature for the continuum model.

The continuum utilities are piecewise (rigid steps, piecewise-linear
adaptive), so blind adaptive quadrature over a semi-infinite interval
can miss the kinks.  :func:`integrate` accepts explicit break points and
splits the integral there before handing each smooth piece to
:func:`scipy.integrate.quad`.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Callable

from scipy import integrate as _spi

from repro import obs
from repro.errors import ConvergenceError

#: Default target absolute error for a single integral.
QUAD_TOL = 1e-11


def integrate(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    points: Optional[Iterable[float]] = None,
    tol: float = QUAD_TOL,
    label: str = "integral",
) -> float:
    """Integrate ``func`` over ``[lo, hi]`` (``hi`` may be ``inf``).

    Parameters
    ----------
    points:
        Interior break points (kinks / discontinuities).  Points outside
        ``(lo, hi)`` are ignored.  The integral is computed piecewise
        between consecutive break points so each piece is smooth.
    """
    if hi < lo:
        raise ValueError(f"{label}: need hi >= lo, got [{lo}, {hi}]")
    if hi == lo:
        return 0.0

    cuts = [lo]
    if points is not None:
        cuts.extend(p for p in sorted(points) if lo < p < hi and math.isfinite(p))
    cuts.append(hi)

    # meter integrand evaluations only when observability is on; the
    # counting wrapper would otherwise tax every quad call for nothing
    metered = obs.enabled()
    if metered:
        func = obs.CallCounter(func)

    total = 0.0
    pieces = 0
    for a, b in zip(cuts[:-1], cuts[1:]):
        if a == b:
            continue
        pieces += 1
        value, err = _spi.quad(func, a, b, epsabs=tol, epsrel=tol, limit=200)
        if err > max(100 * tol, 1e-7 * max(1.0, abs(value))):
            raise ConvergenceError(
                f"{label}: quadrature error {err!r} too large on [{a}, {b}]"
            )
        total += value
    if metered:
        obs.counter("quadrature.integrals").inc()
        obs.counter("quadrature.pieces").inc(pieces)
        obs.counter("quadrature.evaluations").inc(func.calls)
    return total
