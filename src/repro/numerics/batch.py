"""Array-in/array-out batch numerics for whole-grid sweeps.

Every figure in the paper is a sweep: ``delta(C)`` and ``Delta(C)``
over a capacity grid, ``gamma(p)`` over a price grid.  The scalar
primitives in :mod:`repro.numerics.solvers` solve one implicit equation
at a time, so a 512-point sweep pays 512 rounds of Python call
overhead, bracket handling and scipy dispatch.  This module provides
the same primitives over a *vector of independent scalar problems*:

- :func:`find_roots` — bracketed root finding (bisection-safeguarded
  inverse-quadratic interpolation, Chandrupatla's algorithm — the same
  convergence class as Brent) over element-wise independent equations,
  with a per-element convergence mask,
- :func:`expand_brackets_upward` — vectorised geometric bracket growth,
- :func:`invert_monotone_batch` — the batch form of
  :func:`repro.numerics.solvers.invert_monotone`,
- :func:`share_weighted_sums` — the truncated-series kernel behind the
  discrete-model totals ``sum_k w_k * pi(C_i / k)``, chunked so a
  512 x 4M grid never materialises,
- :func:`adaptive_quad_batch` — fixed-node Gauss-Legendre quadrature
  with panel doubling, one node layout shared by every grid row.

Batch results carry per-element diagnostics and aggregate into a
single :class:`~repro.numerics.solvers.SolverDiagnostics` record so the
observability layer sees batch solves and scalar solves through one
vocabulary.  Non-converged elements are *flagged in the mask*, never
returned silently: callers are expected to re-solve flagged elements
through the scalar path (and count the fallback via
``batch.fallback_scalar``).

With :mod:`repro.obs` enabled each batch call meters
``batch.solve.calls`` / ``points`` / ``converged`` / ``failures`` /
``iterations`` / ``evaluations`` plus ``batch.series.*`` and
``batch.quadrature.*``; disabled, the cost is one flag check per call.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.numerics.solvers import RTOL, XTOL, SolverDiagnostics

#: Growth factor for vectorised bracket expansion (matches the scalar
#: :mod:`repro.numerics.brackets` default).
GROWTH = 2.0

#: Cap on vectorised expansion steps.
MAX_EXPAND_STEPS = 200

#: Iteration cap for :func:`find_roots`.  Chandrupatla falls back to
#: bisection at worst, so ~60 iterations resolve any double-precision
#: bracket; the default leaves comfortable headroom.
MAX_ITERATIONS = 128

#: Largest number of matrix elements :func:`share_weighted_sums` will
#: materialise at once (elements, not bytes; 2^17 doubles = 1 MiB).
#: Each utility evaluation streams several same-sized temporaries, so
#: keeping the chunk cache-resident beats larger chunks by ~4x on
#: million-term heavy-tailed series.
DEFAULT_CHUNK_ELEMENTS = 1 << 17


class BatchRootResult:
    """Roots and per-element diagnostics of one vectorised solve.

    Attributes
    ----------
    roots:
        Root estimates, one per problem.  Elements whose bracket never
        contained a sign change are ``nan``; elements that ran out of
        iterations hold the best estimate found (and are flagged).
    converged:
        Boolean mask — ``True`` where the root met the tolerance.
    residuals:
        ``f(root)`` per element (``nan`` where no bracket existed).
    iterations:
        Per-element iteration counts.
    function_evaluations:
        Total scalar evaluations across the batch (every element of
        every vector call counts once).
    bracket_expanded:
        Mask of elements whose bracket had to be grown.
    """

    __slots__ = (
        "label",
        "roots",
        "converged",
        "residuals",
        "iterations",
        "function_evaluations",
        "bracket_expanded",
    )

    def __init__(
        self,
        label: str,
        roots: np.ndarray,
        converged: np.ndarray,
        residuals: np.ndarray,
        iterations: np.ndarray,
        function_evaluations: int,
        bracket_expanded: np.ndarray,
    ):
        self.label = label
        self.roots = roots
        self.converged = converged
        self.residuals = residuals
        self.iterations = iterations
        self.function_evaluations = function_evaluations
        self.bracket_expanded = bracket_expanded

    @property
    def all_converged(self) -> bool:
        """True when every element met the tolerance."""
        return bool(np.all(self.converged))

    @property
    def size(self) -> int:
        """Number of independent problems in the batch."""
        return int(self.roots.size)

    def aggregate(self) -> SolverDiagnostics:
        """Fold the batch into one :class:`SolverDiagnostics` record.

        ``iterations`` and ``function_calls`` are batch totals,
        ``residual`` is the worst absolute residual among bracketed
        elements, ``converged`` is the all-elements verdict, and
        ``root`` is the single root for one-element batches (``nan``
        otherwise — there is no one root of 512 problems).
        """
        finite = self.residuals[np.isfinite(self.residuals)]
        worst = float(np.max(np.abs(finite))) if finite.size else math.nan
        return SolverDiagnostics(
            self.label,
            float(self.roots[0]) if self.size == 1 else math.nan,
            self.all_converged,
            int(np.sum(self.iterations)),
            int(self.function_evaluations),
            worst,
            bracket_expanded=bool(np.any(self.bracket_expanded)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchRootResult(label={self.label!r}, size={self.size}, "
            f"converged={int(np.sum(self.converged))}/{self.size}, "
            f"evaluations={self.function_evaluations})"
        )


def _meter_solve(result: BatchRootResult) -> None:
    if not obs.enabled():
        return
    obs.counter("batch.solve.calls").inc()
    obs.counter("batch.solve.points").inc(result.size)
    hits = int(np.sum(result.converged))
    obs.counter("batch.solve.converged").inc(hits)
    if hits < result.size:
        obs.counter("batch.solve.failures").inc(result.size - hits)
    obs.counter("batch.solve.iterations").inc(int(np.sum(result.iterations)))
    obs.counter("batch.solve.evaluations").inc(result.function_evaluations)


def _as_batch(*arrays) -> Tuple[np.ndarray, ...]:
    """Broadcast the inputs to one flat float vector each."""
    broadcast = np.broadcast_arrays(*[np.asarray(a, dtype=float) for a in arrays])
    return tuple(np.array(b, dtype=float).ravel() for b in broadcast)


def expand_brackets_upward(
    func: Callable[..., np.ndarray],
    lo: np.ndarray,
    f_lo: np.ndarray,
    hi: np.ndarray,
    f_hi: np.ndarray,
    *,
    args: Sequence[np.ndarray] = (),
    growth: float = GROWTH,
    max_steps: int = MAX_EXPAND_STEPS,
    upper_limit: float = float("inf"),
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Grow ``hi`` geometrically per element until the sign changes.

    The vector counterpart of
    :func:`repro.numerics.brackets.expand_bracket_upward`: for every
    element whose ``[lo, hi]`` interval does not contain a sign change,
    the right endpoint moves right by a geometrically growing span
    (never beyond ``upper_limit``).  Elements that exhaust the limit
    are reported in the failure mask instead of raising, so one
    hopeless element cannot abort a 512-point sweep.

    ``args`` are per-element parameter vectors sliced alongside the
    endpoints on every trial evaluation (see :func:`find_roots`).

    Returns ``(hi, f_hi, expanded, failed, evaluations)`` where
    ``expanded`` marks elements whose endpoint moved and ``failed``
    marks elements with no sign change within the limit.
    """
    hi = hi.copy()
    f_hi = f_hi.copy()
    span = hi - lo
    need = ((f_lo < 0.0) == (f_hi < 0.0)) & (f_lo != 0.0) & (f_hi != 0.0)
    expanded = np.zeros_like(need)
    evaluations = 0
    for _ in range(max_steps):
        need &= hi < upper_limit
        if not np.any(need):
            break
        hi[need] = np.minimum(hi[need] + span[need], upper_limit)
        span[need] *= growth
        expanded |= need
        idx = np.flatnonzero(need)
        trial = np.asarray(func(hi[idx], *[a[idx] for a in args]), dtype=float)
        evaluations += idx.size
        f_hi[idx] = trial
        found = (trial == 0.0) | ((f_lo[idx] < 0.0) != (trial < 0.0))
        need[idx[found]] = False
    failed = ((f_lo < 0.0) == (f_hi < 0.0)) & (f_lo != 0.0) & (f_hi != 0.0)
    return hi, f_hi, expanded, failed, evaluations


@obs.timed("batch.find_roots")
def find_roots(
    func: Callable[..., np.ndarray],
    lo,
    hi,
    *,
    args: Sequence = (),
    xtol: float = XTOL,
    rtol: float = RTOL,
    expand: bool = False,
    upper_limit: float = float("inf"),
    max_iterations: int = MAX_ITERATIONS,
    label: str = "batch root",
) -> BatchRootResult:
    """Find a root of every element-wise independent equation at once.

    Parameters
    ----------
    func:
        Vectorised function: ``func(x, *params)[i]`` must depend only
        on ``x[i]`` (and ``params[j][i]``).  It is called on
        *compressed* vectors containing only the still-active elements,
        so converged problems stop costing evaluations immediately.
    lo, hi:
        Bracket endpoints (scalars or arrays, broadcast together).
        Elements whose bracket holds no sign change are expanded
        geometrically when ``expand`` is true, else flagged.
    args:
        Per-element parameter vectors (broadcast with the endpoints)
        compressed alongside ``x`` and passed to ``func`` — this is how
        a family like ``B(x) - target_i`` threads its targets through
        the active-set compression.
    xtol, rtol:
        Convergence is declared where the bracket has shrunk below
        ``xtol + rtol * |root|`` — the same criterion family brentq
        uses in the scalar path.
    label:
        Name used in diagnostics.

    Returns
    -------
    BatchRootResult
        Roots plus per-element convergence mask and diagnostics.
        Elements that never bracketed a sign change come back ``nan``
        with ``converged=False`` — callers re-solve those through the
        scalar path rather than trusting garbage.

    Notes
    -----
    The iteration is Chandrupatla's algorithm: inverse-quadratic
    interpolation accepted only when the interpolant is well behaved,
    bisection otherwise.  Worst case it *is* bisection, so convergence
    is guaranteed on any valid bracket; typical smooth problems
    converge superlinearly like Brent's method.
    """
    vectors = _as_batch(lo, hi, *args)
    lo_v, hi_v = vectors[0], vectors[1]
    params = vectors[2:]
    n = lo_v.size
    roots = np.full(n, math.nan)
    converged = np.zeros(n, dtype=bool)
    residuals = np.full(n, math.nan)
    iterations = np.zeros(n, dtype=np.int64)

    f_lo = np.asarray(func(lo_v, *params), dtype=float)
    f_hi = np.asarray(func(hi_v, *params), dtype=float)
    evaluations = 2 * n

    expanded = np.zeros(n, dtype=bool)
    failed = ((f_lo < 0.0) == (f_hi < 0.0)) & (f_lo != 0.0) & (f_hi != 0.0)
    if expand and np.any(failed):
        hi_v, f_hi, expanded, failed, extra = expand_brackets_upward(
            func, lo_v, f_lo, hi_v, f_hi, args=params, upper_limit=upper_limit
        )
        evaluations += extra

    # exact hits at the endpoints
    hit_lo = f_lo == 0.0
    hit_hi = (f_hi == 0.0) & ~hit_lo
    for mask, endpoint in ((hit_lo, lo_v), (hit_hi, hi_v)):
        roots[mask] = endpoint[mask]
        residuals[mask] = 0.0
        converged[mask] = True

    active = np.flatnonzero(~(hit_lo | hit_hi | failed))
    if active.size:
        # Chandrupatla state, kept compressed to the active subset: a
        # is the newest iterate, b the opposite bracket end, c the
        # previous point on a's side of the root.
        b = lo_v[active]
        fb = f_lo[active]
        a = hi_v[active]
        fa = f_hi[active]
        c = a.copy()
        fc = fa.copy()
        t = np.full(active.size, 0.5)
        for _ in range(max_iterations):
            xt = a + t * (b - a)
            ft = np.asarray(func(xt, *[p[active] for p in params]), dtype=float)
            evaluations += int(active.size)
            iterations[active] += 1

            same = np.signbit(ft) == np.signbit(fa)
            c = np.where(same, a, b)
            fc = np.where(same, fa, fb)
            b = np.where(same, b, a)
            fb = np.where(same, fb, fa)
            a, fa = xt, ft

            a_best = np.abs(fa) < np.abs(fb)
            xm = np.where(a_best, a, b)
            fm = np.where(a_best, fa, fb)

            span = np.abs(b - a)
            tol = xtol + rtol * np.abs(xm)
            with np.errstate(divide="ignore", invalid="ignore"):
                tlim = 0.5 * tol / span
            done = (tlim >= 0.5) | (fm == 0.0) | ~np.isfinite(span)

            if np.any(done):
                idx = active[done]
                roots[idx] = xm[done]
                residuals[idx] = fm[done]
                converged[idx] = True
                keep = ~done
                active = active[keep]
                if not active.size:
                    break
                a, fa = a[keep], fa[keep]
                b, fb = b[keep], fb[keep]
                c, fc = c[keep], fc[keep]
                xm = xm[keep]
                tlim = tlim[keep]

            with np.errstate(divide="ignore", invalid="ignore"):
                xi = (a - b) / (c - b)
                phi = (fa - fb) / (fc - fb)
                use_iqi = (phi * phi < xi) & ((1.0 - phi) ** 2 < 1.0 - xi)
                t_iqi = (fa / (fb - fa)) * (fc / (fb - fc)) + (
                    (c - a) / (b - a)
                ) * (fa / (fc - fa)) * (fb / (fc - fb))
            t = np.where(use_iqi & np.isfinite(t_iqi), t_iqi, 0.5)
            t = np.clip(t, tlim, 1.0 - tlim)

        if active.size:
            # out of iterations: best estimate, flagged not converged
            a_best = np.abs(fa) < np.abs(fb)
            roots[active] = np.where(a_best, a, b)
            residuals[active] = np.where(a_best, fa, fb)

    result = BatchRootResult(
        label,
        roots,
        converged,
        residuals,
        iterations,
        evaluations,
        bracket_expanded=expanded,
    )
    _meter_solve(result)
    return result


def invert_monotone_batch(
    func: Callable[[np.ndarray], np.ndarray],
    targets,
    lo,
    hi,
    *,
    increasing: bool = True,
    upper_limit: float = float("inf"),
    xtol: float = XTOL,
    rtol: float = RTOL,
    label: str = "batch inverse",
    clip: Optional[str] = None,
) -> BatchRootResult:
    """Solve ``func(x_i) = targets_i`` for a monotone vectorised ``func``.

    The batch counterpart of
    :func:`repro.numerics.solvers.invert_monotone`: the bandwidth-gap
    sweep inverts ``B`` at 512 reservation utilities in one call.
    Unlike the scalar form it never raises on a target already met at
    ``lo`` — with ``clip='lo'`` the element clips to ``lo`` exactly as
    the scalar path does, otherwise it is flagged unconverged in the
    mask and left for the caller's scalar fallback.  Brackets expand
    upward geometrically (to ``upper_limit``) just like the scalar
    path; elements whose target stays unreachable clip to
    ``upper_limit`` under ``clip='hi'`` and are flagged otherwise.
    """
    targets_v, lo_v, hi_v = _as_batch(targets, lo, hi)

    if increasing:
        def residual(x: np.ndarray, t: np.ndarray) -> np.ndarray:
            return np.asarray(func(x), dtype=float) - t
    else:
        def residual(x: np.ndarray, t: np.ndarray) -> np.ndarray:
            return t - np.asarray(func(x), dtype=float)

    result = find_roots(
        residual,
        lo_v,
        hi_v,
        args=(targets_v,),
        xtol=xtol,
        rtol=rtol,
        expand=True,
        upper_limit=upper_limit,
        max_iterations=MAX_ITERATIONS,
        label=label,
    )

    # scalar-parity endpoint handling: a target already (over)met at lo
    r_lo = residual(lo_v, targets_v)
    at_lo = r_lo >= 0.0
    if clip == "lo":
        result.roots[at_lo] = lo_v[at_lo]
        result.residuals[at_lo] = r_lo[at_lo]
        result.converged[at_lo] = True
    else:
        # f(lo) == 0 exactly is a legitimate root; anything past the
        # target at lo has no solution in the bracket — flag it
        overshoot = at_lo & (r_lo != 0.0)
        result.roots[overshoot] = math.nan
        result.converged[overshoot] = False

    if clip == "hi":
        missed = ~result.converged & np.isnan(result.roots) & ~at_lo
        if math.isfinite(upper_limit):
            result.roots[missed] = upper_limit
            result.converged[missed] = True
    return result


@obs.timed("batch.share_weighted_sums")
def share_weighted_sums(
    capacities,
    weights: np.ndarray,
    value_fn: Callable[[np.ndarray], np.ndarray],
    *,
    k_start: int = 1,
    k_stop: Optional[int] = None,
    kmax: Optional[np.ndarray] = None,
    chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
) -> np.ndarray:
    """``S_i = sum_k weights[k] * value_fn(C_i / k)`` for a whole grid.

    The truncated-series kernel of the discrete variable-load model,
    evaluated as chunked outer products: the ``(capacity, k)`` matrix
    is materialised at most ``chunk_elements`` elements at a time, so a
    heavy-tailed load that truncates at millions of terms never
    allocates a multi-gigabyte intermediate.

    Parameters
    ----------
    capacities:
        Capacity grid (1-D).
    weights:
        Series weights indexed by ``k`` (``weights[k]`` multiplies the
        ``pi(C/k)`` term).  Typically ``k * P(k)`` or max-order-statistic
        increments.
    value_fn:
        Vectorised ``pi`` evaluation (broadcasts over a 2-D array).
    k_start, k_stop:
        Half-open term range ``[k_start, k_stop)``; ``k_stop`` defaults
        to ``len(weights)``.
    kmax:
        Optional per-capacity inclusive upper index: terms with
        ``k > kmax[i]`` contribute nothing to row ``i`` (the
        reservation model's admission cut).
    """
    caps = np.asarray(capacities, dtype=float).ravel()
    weights = np.asarray(weights, dtype=float)
    stop = weights.size if k_stop is None else min(int(k_stop), weights.size)
    if k_start >= stop or caps.size == 0:
        return np.zeros(caps.size)
    # terms whose weight is exactly 0.0 (underflowed pmf, zeroed
    # support) contribute exactly nothing — skip the value_fn work for
    # any leading/trailing run of them
    nonzero = np.flatnonzero(weights[k_start:stop])
    if nonzero.size == 0:
        return np.zeros(caps.size)
    stop = k_start + int(nonzero[-1]) + 1
    k_start = k_start + int(nonzero[0])
    kmax_col = None
    if kmax is not None:
        kmax_col = np.asarray(kmax, dtype=float).reshape(-1, 1)

    chunk = max(1, int(chunk_elements) // max(1, caps.size))
    totals = np.zeros(caps.size)
    elements = 0
    caps_col = caps.reshape(-1, 1)
    for start in range(k_start, stop, chunk):
        end = min(stop, start + chunk)
        ks = np.arange(start, end, dtype=float)
        shares = caps_col / ks
        values = np.asarray(value_fn(shares), dtype=float)
        if kmax_col is not None:
            values = values * (ks <= kmax_col)
        totals += values @ weights[start:end]
        elements += values.size
    if obs.enabled():
        obs.counter("batch.series.calls").inc()
        obs.counter("batch.series.elements").inc(elements)
    return totals


@obs.timed("batch.adaptive_quad")
def adaptive_quad_batch(
    integrand: Callable[[np.ndarray], np.ndarray],
    lo,
    hi,
    *,
    tol: float = 1e-11,
    base_nodes: int = 24,
    max_doublings: int = 11,
    label: str = "batch integral",
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Integrate one parametric family over per-row limits.

    Gauss-Legendre quadrature with global panel doubling: every row of
    the batch shares one reference node layout mapped into its own
    ``[lo_i, hi_i]``, the node count doubles until each row's estimate
    is stable to ``tol``, and rows that converge early simply stop
    being refined.

    ``integrand`` receives a 2-D array whose row ``i`` holds the nodes
    for problem ``i`` and must evaluate row-wise independently.

    Returns ``(values, converged, evaluations)``; non-converged rows
    carry the last estimate and a ``False`` mask entry so the caller
    can fall back to scalar adaptive quadrature.
    """
    lo_v, hi_v = _as_batch(lo, hi)
    n = lo_v.size
    if n == 0:
        return np.zeros(0), np.ones(0, dtype=bool), 0

    values = np.zeros(n)
    converged = np.zeros(n, dtype=bool)
    evaluations = 0

    span = hi_v - lo_v
    converged |= span <= 0.0

    active = np.flatnonzero(~converged)
    previous = np.full(n, math.nan)
    nodes = int(base_nodes)
    for doubling in range(max_doublings + 1):
        if not active.size:
            break
        x_ref, w_ref = np.polynomial.legendre.leggauss(nodes)
        mid = 0.5 * (lo_v[active] + hi_v[active])
        half = 0.5 * span[active]
        xs = mid[:, None] + half[:, None] * x_ref[None, :]
        ys = np.asarray(integrand(xs), dtype=float)
        evaluations += ys.size
        estimate = half * (ys @ w_ref)
        values[active] = estimate
        if doubling > 0:
            err = np.abs(estimate - previous[active])
            good = err <= np.maximum(tol, 1e-14 * np.abs(estimate))
            previous[active] = estimate
            converged[active[good]] = True
            active = active[~good]
        else:
            previous[active] = estimate
        nodes *= 2
    if obs.enabled():
        obs.counter("batch.quadrature.calls").inc()
        obs.counter("batch.quadrature.evaluations").inc(evaluations)
        misses = int(np.count_nonzero(~converged))
        if misses:
            obs.counter("batch.quadrature.failures").inc(misses)
    return values, converged, evaluations
