"""Trace export and hotspot attribution for recorded span trees.

Two consumers of the same :class:`~repro.obs.tracing.SpanRecord`
forest:

* :func:`chrome_trace` converts it to Chrome trace-event JSON
  (``"X"`` complete events, microsecond timestamps) loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` — the
  visual answer to "where did the sweep spend its time".
* :func:`hotspots` aggregates the forest per span *name* into
  cumulative time, self time (cumulative minus child time), call
  counts and p50/p99 durations — the numeric answer, sortable and
  diffable across runs.

Span trees arrive either live (real ``perf_counter`` anchors) or
rehydrated from worker JSON via :meth:`SpanRecord.from_dict`, where
every start is pinned to 0.  The exporter handles both: children with
real in-parent timestamps keep them; pinned children are laid out
sequentially inside their parent so the trace stays readable (and the
durations — the part that matters — stay exact).
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Sequence

from repro.obs.tracing import SpanRecord

#: Schema tag recorded in the exported trace's ``otherData``.
TRACE_SCHEMA = "repro.obs/chrome-trace/v1"


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    idx = min(
        len(sorted_values) - 1,
        int(round(q / 100.0 * (len(sorted_values) - 1))),
    )
    return sorted_values[idx]


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------


def _emit_span(
    span: SpanRecord,
    ts_us: float,
    parent_has_clock: bool,
    parent_start: float,
    tid: int,
    out: List[Dict[str, object]],
) -> None:
    dur_us = span.duration * 1e6
    event: Dict[str, object] = {
        "name": span.name,
        "ph": "X",
        "ts": ts_us,
        "dur": dur_us,
        "pid": int(span.labels.get("worker", 0) or 0),
        "tid": tid,
        "cat": span.name.split(".", 1)[0],
    }
    if span.labels:
        event["args"] = {k: _jsonable(v) for k, v in span.labels.items()}
    out.append(event)
    # children with live clocks are placed at their true offset inside
    # the parent; rehydrated (pinned) children pack sequentially
    has_clock = parent_has_clock and span.start > 0.0
    cursor = ts_us
    for child in span.children:
        if has_clock and child.start >= span.start > 0.0:
            child_ts = ts_us + (child.start - span.start) * 1e6
        else:
            child_ts = cursor
        _emit_span(child, child_ts, has_clock, span.start, tid, out)
        cursor = child_ts + child.duration * 1e6


def chrome_trace(
    roots: Sequence[SpanRecord], *, run_id: Optional[str] = None
) -> Dict[str, object]:
    """The span forest as a Chrome trace-event JSON object.

    Each root becomes its own track (``tid``) starting at ``ts = 0``,
    so concurrent roots (threads, workers) render side by side; within
    a root, nesting reproduces the recorded tree.
    """
    events: List[Dict[str, object]] = []
    for tid, root in enumerate(roots):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": int(root.labels.get("worker", 0) or 0),
                "tid": tid,
                "args": {"name": f"root:{root.name}"},
            }
        )
        _emit_span(root, 0.0, True, root.start, tid, events)
    other: Dict[str, object] = {"schema": TRACE_SCHEMA}
    if run_id:
        other["run"] = run_id
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def validate_chrome_trace(trace: object) -> List[str]:
    """Schema-check a trace object; returns a list of violations.

    Covers the subset of the trace-event format the exporter produces
    (and Perfetto requires): a ``traceEvents`` array whose entries are
    ``"X"`` complete events with numeric non-negative ``ts``/``dur``
    and integer ``pid``/``tid``, or ``"M"`` metadata events.
    """
    errors: List[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M"):
            errors.append(f"{where}: unsupported phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing/empty name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: {key} must be an integer")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool)
                    or not math.isfinite(value)
                    or value < 0.0
                ):
                    errors.append(
                        f"{where}: {key} must be a finite number >= 0"
                    )
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            errors.append(f"{where}: args must be an object")
    return errors


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# ----------------------------------------------------------------------
# hotspot aggregation
# ----------------------------------------------------------------------


class Hotspot:
    """Aggregated statistics for every span sharing one name."""

    __slots__ = ("name", "count", "cumulative", "self_time", "_durations")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.cumulative = 0.0
        self.self_time = 0.0
        self._durations: List[float] = []

    def to_dict(self) -> Dict[str, object]:
        durations = sorted(self._durations)
        return {
            "name": self.name,
            "count": self.count,
            "cumulative_seconds": self.cumulative,
            "self_seconds": self.self_time,
            "mean_seconds": self.cumulative / self.count if self.count else 0.0,
            "p50_seconds": _percentile(durations, 50.0),
            "p99_seconds": _percentile(durations, 99.0),
        }


def hotspots(
    roots: Sequence[SpanRecord], *, wall_seconds: Optional[float] = None
) -> Dict[str, object]:
    """Aggregate a span forest into a per-name hotspot table.

    Self time is a span's duration minus its children's (clamped at
    zero against clock skew), so the ``self_seconds`` column sums to
    the total traced time and directly names the code actually burning
    it.  With ``wall_seconds`` the table also reports *coverage* — the
    fraction of wall time attributed to any named span — which is the
    honesty metric for the instrumentation itself: low coverage means
    the hot path is running between spans, not inside them.
    """
    table: Dict[str, Hotspot] = {}

    def visit(span: SpanRecord) -> None:
        spot = table.get(span.name)
        if spot is None:
            spot = table[span.name] = Hotspot(span.name)
        duration = span.duration
        child_total = sum(c.duration for c in span.children)
        spot.count += 1
        spot.cumulative += duration
        spot.self_time += max(0.0, duration - child_total)
        spot._durations.append(duration)
        for child in span.children:
            visit(child)

    for root in roots:
        visit(root)

    rows = [
        spot.to_dict()
        for spot in sorted(
            table.values(), key=lambda s: s.self_time, reverse=True
        )
    ]
    traced = sum(root.duration for root in roots)
    out: Dict[str, object] = {
        "schema": "repro.obs/hotspots/v1",
        "spans": sum(row["count"] for row in rows),
        "traced_seconds": traced,
        "hotspots": rows,
    }
    if wall_seconds is not None and wall_seconds > 0.0:
        out["wall_seconds"] = wall_seconds
        out["coverage"] = min(1.0, traced / wall_seconds)
    return out


def render_hotspots(report: Dict[str, object], *, top: int = 0) -> str:
    """The hotspot table as aligned text, hottest self-time first."""
    rows = report["hotspots"]
    if top:
        rows = rows[:top]
    if not rows:
        return "(no spans recorded)"
    name_width = max(len(str(r["name"])) for r in rows)
    lines = [
        f"{'span':<{name_width}}  {'count':>6}  {'self s':>10}  "
        f"{'cum s':>10}  {'mean s':>10}  {'p50 s':>10}  {'p99 s':>10}"
    ]
    for row in rows:
        lines.append(
            f"{row['name']:<{name_width}}  {row['count']:>6}  "
            f"{row['self_seconds']:>10.4f}  {row['cumulative_seconds']:>10.4f}  "
            f"{row['mean_seconds']:>10.4f}  {row['p50_seconds']:>10.4f}  "
            f"{row['p99_seconds']:>10.4f}"
        )
    lines.append(
        f"-- {report['spans']} spans, {report['traced_seconds']:.4f} s traced"
        + (
            f"; coverage {report['coverage'] * 100:.1f}% of "
            f"{report['wall_seconds']:.4f} s wall"
            if "coverage" in report
            else ""
        )
    )
    return "\n".join(lines)


def spans_from_trace_json(payload: object) -> List[SpanRecord]:
    """Rebuild a span forest from a ``--trace-json`` dump (list form)."""
    if not isinstance(payload, list):
        raise ValueError(
            "expected a JSON array of span trees (the --trace-json format)"
        )
    return [SpanRecord.from_dict(item) for item in payload]


def load_trace_file(path) -> List[SpanRecord]:
    """Read a ``--trace-json`` file into a span forest."""
    with open(path, "r", encoding="utf-8") as fh:
        return spans_from_trace_json(json.load(fh))
