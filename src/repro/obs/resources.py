"""Resource profiling: peak-RSS and allocation sampling around hot blocks.

The chunked batch kernels and the ensemble's era buffers were sized by
argument, not by measurement; this module supplies the measurement.
:func:`profile_block` wraps a region of code and records

* the process peak RSS after the block (``getrusage`` high-water mark,
  monotone per process — an *upper bound* attribution, cheap enough
  for production paths), exported as the gauge
  ``resources.<label>.peak_rss_bytes``;
* with tracemalloc active (:func:`enable_alloc_tracing`, or the
  ``REPRO_TRACEMALLOC=1`` environment variable), the block's traced
  peak and net allocation plus its top allocation sites, exported as
  ``resources.<label>.alloc_peak_bytes`` / ``.alloc_net_bytes`` and a
  ``resources.sample`` journal event.

The disabled path is one :func:`repro.obs.enabled` flag plus one
journal ``None`` check: with observability off and no journal open,
:func:`profile_block` returns a shared no-op context manager and
touches nothing else.  tracemalloc in particular is never started
implicitly — it costs 2-4x on allocation-heavy paths and must remain a
deliberate opt-in.
"""

from __future__ import annotations

import os
import sys
import tracemalloc
from typing import Dict, List, Optional

from repro import obs
from repro.obs import events
from repro.obs.tracing import NULL_SPAN

#: Environment opt-in for allocation tracing (checked once per block,
#: so flipping it mid-process works in tests).
TRACEMALLOC_ENV = "REPRO_TRACEMALLOC"

#: How many top allocation sites a sample records.
TOP_ALLOCATIONS = 5


def peak_rss_bytes() -> int:
    """The process' lifetime peak resident set size, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalised
    here.  Returns 0 on platforms without :mod:`resource` (Windows),
    so callers can treat 0 as "unavailable".
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return int(peak)
    return int(peak) * 1024


def alloc_tracing_active() -> bool:
    """True when tracemalloc is collecting (however it was started)."""
    return tracemalloc.is_tracing()


def enable_alloc_tracing(nframes: int = 1) -> None:
    """Start tracemalloc if it is not already running."""
    if not tracemalloc.is_tracing():
        tracemalloc.start(nframes)


def disable_alloc_tracing() -> None:
    """Stop tracemalloc if running."""
    if tracemalloc.is_tracing():
        tracemalloc.stop()


def top_allocations(
    snapshot_before: Optional[tracemalloc.Snapshot],
    snapshot_after: tracemalloc.Snapshot,
    *,
    top: int = TOP_ALLOCATIONS,
) -> List[Dict[str, object]]:
    """The block's largest allocation sites as JSON-ready rows."""
    if snapshot_before is not None:
        stats = snapshot_after.compare_to(snapshot_before, "lineno")
        rows = [
            {
                "site": f"{s.traceback[0].filename}:{s.traceback[0].lineno}",
                "size_bytes": s.size_diff,
                "count": s.count_diff,
            }
            for s in stats[:top]
        ]
    else:  # pragma: no cover - defensive fallback
        stats = snapshot_after.statistics("lineno")
        rows = [
            {
                "site": f"{s.traceback[0].filename}:{s.traceback[0].lineno}",
                "size_bytes": s.size,
                "count": s.count,
            }
            for s in stats[:top]
        ]
    return rows


class _ResourceBlock:
    """Live context manager behind :func:`profile_block`."""

    __slots__ = ("label", "extra", "_trace", "_before", "_trace_before")

    def __init__(self, label: str, extra: Dict[str, object]):
        self.label = label
        self.extra = extra
        self._trace = False
        self._before: Optional[tracemalloc.Snapshot] = None
        self._trace_before = (0, 0)

    def __enter__(self) -> "_ResourceBlock":
        self._trace = tracemalloc.is_tracing() or bool(
            os.environ.get(TRACEMALLOC_ENV)
        )
        if self._trace:
            enable_alloc_tracing()
            tracemalloc.reset_peak()
            self._trace_before = tracemalloc.get_traced_memory()
            self._before = tracemalloc.take_snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        rss = peak_rss_bytes()
        fields: Dict[str, object] = {"label": self.label, "peak_rss_bytes": rss}
        fields.update(self.extra)
        if obs.enabled():
            obs.gauge(f"resources.{self.label}.peak_rss_bytes").set(rss)
        if self._trace:
            current, peak = tracemalloc.get_traced_memory()
            net = current - self._trace_before[0]
            after = tracemalloc.take_snapshot()
            sites = top_allocations(self._before, after)
            fields["alloc_peak_bytes"] = peak
            fields["alloc_net_bytes"] = net
            fields["top_allocations"] = sites
            if obs.enabled():
                obs.gauge(f"resources.{self.label}.alloc_peak_bytes").set(peak)
                obs.gauge(f"resources.{self.label}.alloc_net_bytes").set(net)
        events.emit("resources.sample", **fields)
        return False


def profile_block(label: str, **extra):
    """Context manager sampling resources around one labelled block.

    Near-free when both metrics and the journal are off (returns the
    shared no-op span).  ``extra`` fields ride along on the gauge-less
    journal event for correlation (grid sizes, replication counts).
    """
    if not obs.enabled() and events.journal() is None:
        return NULL_SPAN
    return _ResourceBlock(label, extra)
