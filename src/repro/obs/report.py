"""Human-readable rendering of traces and metrics (``--profile``).

Sibling spans with the same name are aggregated (count, total, mean)
so a 25-point figure sweep renders as one line, not 25 — the tree
stays readable at any fan-out.  The JSON exports elsewhere keep every
individual span; aggregation is a display decision only.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Sequence

from repro.ioutils import atomic_write_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanRecord


class _Aggregate:
    """Sibling spans of one name, merged for display."""

    __slots__ = ("name", "count", "total", "labels", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.labels: Dict[str, object] = {}
        self.children: List[SpanRecord] = []


def _aggregate_siblings(spans: Sequence[SpanRecord]) -> List[_Aggregate]:
    groups: Dict[str, _Aggregate] = {}
    for span in spans:
        agg = groups.get(span.name)
        if agg is None:
            agg = groups[span.name] = _Aggregate(span.name)
            agg.labels = dict(span.labels)
        else:
            # keep only labels every sibling agrees on
            agg.labels = {
                k: v for k, v in agg.labels.items() if span.labels.get(k) == v
            }
        agg.count += 1
        agg.total += span.duration
        agg.children.extend(span.children)
    return list(groups.values())


def _render_level(
    spans: Sequence[SpanRecord], lines: List[str], indent: int, name_width: int
) -> None:
    for agg in _aggregate_siblings(spans):
        label = " ".join(f"{k}={v}" for k, v in sorted(agg.labels.items()))
        name = "  " * indent + agg.name
        timing = f"{agg.total:10.4f} s"
        if agg.count > 1:
            timing += f"  x{agg.count}  mean {agg.total / agg.count:.4f} s"
        if label:
            timing += f"  [{label}]"
        lines.append(f"{name:<{name_width}}{timing}")
        _render_level(agg.children, lines, indent + 1, name_width)


def render_span_tree(roots: Sequence[SpanRecord]) -> str:
    """The trace as an indented text tree with per-name aggregation."""
    if not roots:
        return "(no spans recorded)"

    def max_depth(spans, depth=0):
        return max(
            [depth] + [max_depth(s.children, depth + 1) for s in spans]
        )

    name_width = 2 * max_depth(list(roots)) + max(
        len(s.name) for root in roots for s in _walk(root)
    )
    lines: List[str] = []
    _render_level(list(roots), lines, 0, name_width + 4)
    return "\n".join(lines)


def _walk(span: SpanRecord):
    yield span
    for child in span.children:
        yield from _walk(child)


def render_report(registry: MetricsRegistry, roots: Sequence[SpanRecord]) -> str:
    """The full ``--profile`` report: span tree then metrics."""
    return (
        "== span tree (wall time) ==\n"
        + render_span_tree(roots)
        + "\n\n== metrics ==\n"
        + registry.render_text()
    )


def write_report_text(path, text: str) -> pathlib.Path:
    """Atomically write a rendered report/trace/export to ``path``.

    All CLI report files (``--trace-json``, ``profile --out``) go
    through here so an interrupted process can never leave a truncated
    JSON or text report under the final name.
    """
    return atomic_write_text(path, text)
