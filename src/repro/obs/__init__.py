"""``repro.obs`` — opt-in observability: metrics, tracing, profiling.

The package is **disabled by default** and costs nearly nothing while
disabled: instrumented code guards every metric touch with
:func:`enabled` (a module-global read) and :func:`span` hands back a
shared no-op context manager.  Enabling flips one flag; the active
:class:`MetricsRegistry` and :class:`Tracer` then start collecting.

Typical use::

    from repro import obs

    obs.enable()
    ...  # run experiments / simulations
    print(obs.render_report())
    obs.disable()

Instrumented library code follows one pattern — check, then touch::

    if obs.enabled():
        obs.counter("solver.find_root.calls").inc()
    with obs.span("simulation.run", horizon=horizon):
        ...
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.obs.events import (
    EventJournal,
    close_journal,
    emit,
    ensure_journal_from_env,
    journal,
    open_journal,
)
from repro.obs.events import share_env as share_journal_env
from repro.obs.metrics import (
    CallCounter,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricTypeMismatchError,
    merge_snapshots,
    share_lock,
)
from repro.obs.report import render_report as _render_report
from repro.obs.report import render_span_tree, write_report_text
from repro.obs.tracing import NULL_SPAN, SpanRecord, Tracer

__all__ = [
    "CallCounter",
    "Counter",
    "EventJournal",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricTypeMismatchError",
    "SpanRecord",
    "Tracer",
    "close_journal",
    "counter",
    "disable",
    "emit",
    "enable",
    "enabled",
    "ensure_journal_from_env",
    "gauge",
    "histogram",
    "journal",
    "merge_snapshots",
    "open_journal",
    "registry",
    "render_report",
    "render_span_tree",
    "reset",
    "session",
    "share_journal_env",
    "share_lock",
    "snapshot",
    "span",
    "timed",
    "trace_json",
    "trace_roots",
    "tracer",
    "write_report_text",
]

_enabled: bool = False
_registry = MetricsRegistry()
_tracer = Tracer()


def enabled() -> bool:
    """True when the observability layer is collecting."""
    return _enabled


def enable(
    registry: Optional[MetricsRegistry] = None, tracer: Optional[Tracer] = None
) -> None:
    """Turn collection on, optionally swapping in fresh sinks."""
    global _enabled, _registry, _tracer
    if registry is not None:
        _registry = registry
    if tracer is not None:
        _tracer = tracer
    _enabled = True


def disable() -> None:
    """Turn collection off (recorded data stays readable)."""
    global _enabled
    _enabled = False


def registry() -> MetricsRegistry:
    """The active metrics registry."""
    return _registry


def tracer() -> Tracer:
    """The active tracer."""
    return _tracer


def reset() -> None:
    """Clear all recorded metrics and spans (enabled state unchanged)."""
    _registry.reset()
    _tracer.clear()


@contextmanager
def session(*, reset_first: bool = True):
    """Enable within a block, restoring the previous state after.

    Yields ``(registry, tracer)`` for convenience::

        with obs.session() as (reg, tr):
            run_workload()
            print(reg.render_text())
    """
    was_enabled = _enabled
    if reset_first:
        reset()
    enable()
    try:
        yield _registry, _tracer
    finally:
        if not was_enabled:
            disable()


# ----------------------------------------------------------------------
# metric conveniences (active registry by name)
# ----------------------------------------------------------------------


def counter(name: str) -> Counter:
    """Counter ``name`` on the active registry."""
    return _registry.counter(name)


def gauge(name: str) -> Gauge:
    """Gauge ``name`` on the active registry."""
    return _registry.gauge(name)


def histogram(name: str) -> Histogram:
    """Histogram ``name`` on the active registry."""
    return _registry.histogram(name)


def snapshot() -> Dict[str, Dict[str, object]]:
    """Plain-dict export of every metric on the active registry."""
    return _registry.snapshot()


# ----------------------------------------------------------------------
# tracing conveniences
# ----------------------------------------------------------------------


def span(name: str, **labels):
    """A timed span context manager (shared no-op when disabled)."""
    if not _enabled:
        return NULL_SPAN
    return _tracer.span(name, **labels)


def timed(name: Optional[str] = None, **labels):
    """Decorator recording each call of the function as a span.

    ``name`` defaults to the function's qualified name.  The disabled
    fast path is one flag check on top of the call itself.
    """

    def decorate(func):
        span_name = name if name is not None else func.__qualname__

        def wrapper(*args, **kwargs):
            if not _enabled:
                return func(*args, **kwargs)
            with _tracer.span(span_name, **labels):
                return func(*args, **kwargs)

        wrapper.__name__ = getattr(func, "__name__", span_name)
        wrapper.__qualname__ = getattr(func, "__qualname__", span_name)
        wrapper.__doc__ = func.__doc__
        wrapper.__wrapped__ = func
        return wrapper

    return decorate


def trace_roots() -> List[SpanRecord]:
    """Finished top-level spans from the active tracer."""
    return _tracer.roots()


def trace_json(*, indent: int = 2) -> str:
    """The active trace as JSON (array of span trees)."""
    return _tracer.to_json(indent=indent)


def render_report() -> str:
    """Text report of the active trace and metrics (``--profile``)."""
    return _render_report(_registry, _tracer.roots())
