"""Bench-history ledger: longitudinal record of gated benchmark metrics.

Every gated benchmark appends its headline metrics to an append-only
JSONL ledger (``benchmarks/results/history.jsonl``), one line per
(bench id, metric) pair, keyed by git sha and config digest
(``repro.obs/ledger/v1``).  The ledger is the repo's performance
memory: where ``BENCH_*.json`` files are the *latest* snapshot, the
ledger is the *trajectory*, and ``repro obs regress`` walks it to
answer "did this commit regress the Poisson kernel?" with a number
instead of a feeling.

Regression gating is deliberately robust rather than clever: for each
(bench id, metric, config digest) series the latest point is compared
against the **median** of the previous ``window`` points, with a
significance band of ``mad_sigmas`` robust standard deviations
(1.4826·MAD) — the median/MAD pair shrugs off the single-run outliers
that wall-clock benches produce, and because CI machines and developer
laptops both append to the same series, the MAD *learns* cross-machine
variance instead of hard-coding it.  A relative floor (``rel_floor``)
keeps near-zero-MAD series (ratios that repeat to 4 digits) from
flagging noise.  Only *adverse* deviations gate: slower where lower is
better, smaller where higher is better.  Metrics appended with
``gated=False`` are recorded and reported but never fail the gate —
use that for raw wall-clock timings, which are machine facts rather
than code facts; the gated metrics should be ratios (speedups,
overhead fractions) that transfer across machines.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.events import PathLike, git_sha

#: Schema tag on every ledger line.
LEDGER_SCHEMA = "repro.obs/ledger/v1"

#: Metric directions (which way is worse).
LOWER_IS_BETTER = "lower_is_better"
HIGHER_IS_BETTER = "higher_is_better"
DIRECTIONS = (LOWER_IS_BETTER, HIGHER_IS_BETTER)

#: Keys every ledger line must carry (the schema-drift contract).
REQUIRED_KEYS = (
    "schema",
    "ts",
    "git_sha",
    "bench_id",
    "metric",
    "value",
    "direction",
    "config_digest",
    "gated",
)

#: Gate defaults — see the module docstring for the reasoning.
DEFAULT_WINDOW = 8
DEFAULT_MAD_SIGMAS = 5.0
DEFAULT_REL_FLOOR = 0.10
DEFAULT_MIN_HISTORY = 3


def digest_config(payload: object) -> str:
    """Short stable digest of a bench configuration object.

    Ledger series are keyed by this digest, so changing a bench's
    configuration starts a fresh series instead of comparing
    incomparable numbers.
    """
    import hashlib

    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


def make_entry(
    bench_id: str,
    metric: str,
    value: float,
    *,
    direction: str,
    config_digest: str,
    unit: str = "",
    gated: bool = True,
    sha: Optional[str] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One schema-complete ledger line, ready to append."""
    if direction not in DIRECTIONS:
        raise ValueError(
            f"direction must be one of {DIRECTIONS}, got {direction!r}"
        )
    entry: Dict[str, object] = {
        "schema": LEDGER_SCHEMA,
        "ts": time.time(),
        "git_sha": sha if sha is not None else git_sha(),
        "bench_id": bench_id,
        "metric": metric,
        "value": float(value),
        "unit": unit,
        "direction": direction,
        "config_digest": config_digest,
        "gated": bool(gated),
    }
    if extra:
        entry["extra"] = extra
    return entry


def append_entries(
    path: PathLike, entries: Sequence[Dict[str, object]]
) -> int:
    """Append ledger lines (validated first); returns how many."""
    for entry in entries:
        problems = validate_entry(entry)
        if problems:
            raise ValueError(
                f"refusing to append malformed ledger entry: {problems[0]}"
            )
    import pathlib

    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with open(p, "a", encoding="utf-8", newline="\n") as fh:
        for entry in entries:
            fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
    return len(entries)


def validate_entry(entry: object) -> List[str]:
    """Schema-drift check for one ledger line; returns violations."""
    if not isinstance(entry, dict):
        return [f"not an object: {type(entry).__name__}"]
    problems = []
    for key in REQUIRED_KEYS:
        if key not in entry:
            problems.append(f"missing key {key!r}")
    if entry.get("schema") not in (None, LEDGER_SCHEMA):
        problems.append(
            f"schema {entry.get('schema')!r} != {LEDGER_SCHEMA!r}"
        )
    if "value" in entry and not isinstance(entry["value"], (int, float)):
        problems.append(f"value must be numeric, got {entry['value']!r}")
    if "direction" in entry and entry["direction"] not in DIRECTIONS:
        problems.append(f"direction {entry['direction']!r} unknown")
    if "gated" in entry and not isinstance(entry["gated"], bool):
        problems.append(f"gated must be boolean, got {entry['gated']!r}")
    return problems


def load_history(
    path: PathLike, *, strict: bool = False
) -> Tuple[List[Dict[str, object]], int]:
    """Read a ledger; returns ``(entries, damaged_line_count)``.

    ``strict`` raises on the first malformed line instead of skipping
    — that mode is the CI schema-drift check.
    """
    entries: List[Dict[str, object]] = []
    damaged = 0
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: not JSON ({exc})"
                    ) from None
                damaged += 1
                continue
            problems = validate_entry(entry)
            if problems:
                if strict:
                    raise ValueError(f"{path}:{lineno}: {problems[0]}")
                damaged += 1
                continue
            entries.append(entry)
    return entries, damaged


# ----------------------------------------------------------------------
# regression detection
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MetricVerdict:
    """The gate's decision for one (bench, metric, config) series."""

    bench_id: str
    metric: str
    config_digest: str
    status: str  # "ok" | "regression" | "insufficient-history" | "informational"
    latest: float
    baseline_median: float = float("nan")
    baseline_mad: float = float("nan")
    baseline_points: int = 0
    deviation: float = float("nan")  # latest - median, adverse-signed
    threshold: float = float("nan")
    direction: str = LOWER_IS_BETTER

    @property
    def ok(self) -> bool:
        return self.status != "regression"

    def to_dict(self) -> Dict[str, object]:
        return {
            "bench_id": self.bench_id,
            "metric": self.metric,
            "config_digest": self.config_digest,
            "status": self.status,
            "latest": self.latest,
            "baseline_median": self.baseline_median,
            "baseline_mad": self.baseline_mad,
            "baseline_points": self.baseline_points,
            "deviation": self.deviation,
            "threshold": self.threshold,
            "direction": self.direction,
        }


@dataclass(frozen=True)
class RegressionReport:
    """Every series' verdict plus the overall gate decision."""

    verdicts: Tuple[MetricVerdict, ...]
    window: int
    mad_sigmas: float
    rel_floor: float
    damaged_lines: int = 0
    checked_path: str = ""

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def regressions(self) -> List[MetricVerdict]:
        return [v for v in self.verdicts if not v.ok]

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro.obs/regress-report/v1",
            "ok": self.ok,
            "window": self.window,
            "mad_sigmas": self.mad_sigmas,
            "rel_floor": self.rel_floor,
            "damaged_lines": self.damaged_lines,
            "history": self.checked_path,
            "series": [v.to_dict() for v in self.verdicts],
        }

    def render(self) -> str:
        if not self.verdicts:
            return "(empty ledger: nothing to gate)"
        lines = []
        width = max(
            len(f"{v.bench_id}:{v.metric}") for v in self.verdicts
        )
        for v in self.verdicts:
            key = f"{v.bench_id}:{v.metric}"
            if v.status == "insufficient-history":
                detail = (
                    f"latest {v.latest:g} "
                    f"({v.baseline_points} baseline pts, need more)"
                )
            else:
                detail = (
                    f"latest {v.latest:g} vs median {v.baseline_median:g} "
                    f"(adverse dev {v.deviation:+g}, threshold {v.threshold:g})"
                )
            lines.append(f"{key:<{width}}  {v.status:<22} {detail}")
        verdict = "OK" if self.ok else f"{len(self.regressions)} REGRESSION(S)"
        lines.append(
            f"-- {len(self.verdicts)} series, window {self.window}, "
            f"{self.mad_sigmas:g} robust sigmas, rel floor "
            f"{self.rel_floor:.0%}: {verdict}"
        )
        return "\n".join(lines)


def _series_key(entry: Dict[str, object]) -> Tuple[str, str, str]:
    return (
        str(entry["bench_id"]),
        str(entry["metric"]),
        str(entry["config_digest"]),
    )


def detect_regressions(
    entries: Sequence[Dict[str, object]],
    *,
    window: int = DEFAULT_WINDOW,
    mad_sigmas: float = DEFAULT_MAD_SIGMAS,
    rel_floor: float = DEFAULT_REL_FLOOR,
    min_history: int = DEFAULT_MIN_HISTORY,
) -> RegressionReport:
    """Gate each series' newest point against its rolling robust baseline.

    The baseline for a series is the up-to-``window`` points preceding
    the latest one (file order = append order = time order).  The
    significance threshold is::

        max(mad_sigmas * 1.4826 * MAD, rel_floor * |median|)

    and only adverse deviations beyond it flag.  Fewer than
    ``min_history`` baseline points yields ``insufficient-history``
    (reported, never failing) — a brand-new bench cannot regress.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window!r}")
    series: Dict[Tuple[str, str, str], List[Dict[str, object]]] = {}
    for entry in entries:
        series.setdefault(_series_key(entry), []).append(entry)

    verdicts: List[MetricVerdict] = []
    for key in sorted(series):
        bench_id, metric, digest = key
        points = series[key]
        latest = points[-1]
        value = float(latest["value"])
        direction = str(latest.get("direction", LOWER_IS_BETTER))
        gated = bool(latest.get("gated", True))
        baseline = [
            float(p["value"]) for p in points[:-1][-window:]
        ]
        common = dict(
            bench_id=bench_id,
            metric=metric,
            config_digest=digest,
            latest=value,
            direction=direction,
            baseline_points=len(baseline),
        )
        if len(baseline) < min_history:
            verdicts.append(
                MetricVerdict(status="insufficient-history", **common)
            )
            continue
        median = statistics.median(baseline)
        mad = statistics.median(abs(b - median) for b in baseline)
        threshold = max(
            mad_sigmas * 1.4826 * mad, rel_floor * abs(median)
        )
        if direction == LOWER_IS_BETTER:
            adverse = value - median  # positive = got worse
        else:
            adverse = median - value
        significant = adverse > threshold
        status = (
            "regression"
            if (significant and gated)
            else ("informational" if (significant and not gated) else "ok")
        )
        verdicts.append(
            MetricVerdict(
                status=status,
                baseline_median=median,
                baseline_mad=mad,
                deviation=adverse,
                threshold=threshold,
                **common,
            )
        )
    return RegressionReport(
        verdicts=tuple(verdicts),
        window=window,
        mad_sigmas=mad_sigmas,
        rel_floor=rel_floor,
    )


def check_history(
    path: PathLike,
    *,
    window: int = DEFAULT_WINDOW,
    mad_sigmas: float = DEFAULT_MAD_SIGMAS,
    rel_floor: float = DEFAULT_REL_FLOOR,
    min_history: int = DEFAULT_MIN_HISTORY,
) -> RegressionReport:
    """Load a ledger file and run :func:`detect_regressions` on it."""
    entries, damaged = load_history(path)
    report = detect_regressions(
        entries,
        window=window,
        mad_sigmas=mad_sigmas,
        rel_floor=rel_floor,
        min_history=min_history,
    )
    return RegressionReport(
        verdicts=report.verdicts,
        window=report.window,
        mad_sigmas=report.mad_sigmas,
        rel_floor=report.rel_floor,
        damaged_lines=damaged,
        checked_path=str(path),
    )
